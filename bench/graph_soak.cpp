// Fused attention-graph soak: 8 concurrent token sessions through a
// 4-device DevicePool, fused GraphRequests vs per-stage submission, gated
// against recorded bars.
//
// Both arms serve the same workload — every session's decode stream, each
// step covering the stream's grown prefix under the full mask's block-row
// re-slice:
//   * fused: each step is ONE GraphRequest (serve/graph.hpp) — the
//     SDDMM -> softmax+quantize -> SpMM DAG priced as one merged roofline
//     with a single kernel launch (the softmax folds into the SDDMM
//     epilogue per §IV-C), intermediates in an engine-owned arena;
//   * staged: each step submits its SDDMM and SpMM as separate requests to
//     an identically-configured pool, plus the interlude kernels fusion
//     eliminates (quant-QKV elementwise, score copy-out, standalone
//     softmax, attention-weight copy-in) charged analytically at perfect
//     device parallelism — a deliberately charitable lower bound on the
//     staged arm's cost, so the gated ratio under-reports the fusion win.
//
// Everything gated is *modeled* and deterministic: one dispatch round per
// arm (long linger + queue bound), no faults, EDF arrival order. The gate:
// staged_makespan / fused_makespan >= the recorded bar (the >= 1.3x fusion
// throughput win at 8 concurrent sessions). Hard invariants
// (MAGICUBE_CHECK, not bars): session-0 responses are bit-exact vs the
// composed one-shot attention over the reconstructed prefix, every graph
// places whole (never sharded), the session population is admitted exactly
// and a ninth session is shed.
//
// Like the other perf benches: --smoke is peeled off argv, the rest
// forwards to google-benchmark; gates compare against
// bench/baselines/graph_soak.json (bars move by re-recording, never by
// editing the gate); sanitizer builds report without enforcing.
// --trace-out=PATH exports the fused pool's TraceLog JSON (stage_* spans
// included — the CI artifact trace_report aggregates).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "transformer/attention.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MAGICUBE_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MAGICUBE_BENCH_SANITIZED 1
#endif
#endif
#ifndef MAGICUBE_BENCH_SANITIZED
#define MAGICUBE_BENCH_SANITIZED 0
#endif

#ifndef MAGICUBE_BENCH_BASELINE_DIR
#define MAGICUBE_BENCH_BASELINE_DIR "bench/baselines"
#endif

namespace {

using namespace magicube;

constexpr std::size_t kDevices = 4;
constexpr std::size_t kSessions = 8;
constexpr auto kScheme = transformer::AttentionScheme::magicube_8b_8b;

struct SoakShape {
  std::size_t steps = 4;
  std::size_t grow = 64;  // token rows appended per step (multiple of V)
  std::size_t dk = 64;
  int v = 8;
  std::size_t max_len() const { return steps * grow; }
};

SoakShape shape_for(bool smoke) {
  SoakShape s;
  if (smoke) {
    s.steps = 3;
    s.grow = 32;
  }
  return s;
}

/// One session's token feed, pre-generated so both arms and the reference
/// replay the identical stream.
struct Feed {
  std::vector<Matrix<float>> q, k, v;  // per step: grow x dk row blocks
};

std::vector<Feed> make_feeds(const SoakShape& s) {
  std::vector<Feed> feeds(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    Rng rng(0x6a0 + i);
    for (std::size_t st = 0; st < s.steps; ++st) {
      Matrix<float> q(s.grow, s.dk), k(s.grow, s.dk), v(s.grow, s.dk);
      fill_normal(q, rng, 0.4);
      fill_normal(k, rng, 0.4);
      fill_normal(v, rng, 0.4);
      feeds[i].q.push_back(std::move(q));
      feeds[i].k.push_back(std::move(k));
      feeds[i].v.push_back(std::move(v));
    }
  }
  return feeds;
}

serve::DevicePoolConfig pool_config(std::size_t queue_depth) {
  serve::DevicePoolConfig cfg;
  cfg.device_count = kDevices;
  // One deterministic dispatch round: long linger, the queue bound cuts it
  // short the instant the last submit lands.
  cfg.linger = std::chrono::seconds(2);
  cfg.max_queue_depth = queue_depth;
  cfg.trace_capacity = queue_depth + 16;
  return cfg;
}

struct SoakMetrics {
  double fused_makespan = 0.0;
  double staged_pool_makespan = 0.0;
  double interlude_seconds = 0.0;  // analytic, already divided by kDevices
  double staged_makespan = 0.0;
  double fusion_ratio = 0.0;       // staged / fused modeled throughput
  double fused_steps_per_sec = 0.0;
  std::uint64_t plan_hits = 0;     // fused arm's shared plan cache
};

/// The fused arm: kSessions token streams, every step one GraphRequest,
/// steps submitted round-robin so concurrent sessions coalesce in the one
/// dispatch round (continuous batching). Returns the modeled makespan and
/// bit-exactness-checks session 0 against the composed one-shot reference.
double run_fused(const SoakShape& s,
                 const std::shared_ptr<const sparse::BlockPattern>& mask,
                 const std::vector<Feed>& feeds, const char* trace_out,
                 std::uint64_t* plan_hits) {
  serve::DevicePoolConfig cfg = pool_config(kSessions * s.steps);
  // Admission sized to the exact population: the ninth session sheds.
  const double step_cost = serve::price_session_step_seconds(
      *mask, s.dk, kScheme, cfg.device);
  cfg.session_budget_seconds = (kSessions + 0.5) * step_cost;
  serve::DevicePool pool(cfg);

  std::vector<serve::TokenSession> sessions;
  serve::SessionConfig sess;
  sess.mask = mask;
  sess.dk = s.dk;
  sess.scheme = kScheme;
  for (std::size_t i = 0; i < kSessions; ++i) {
    sessions.push_back(pool.open_session(sess));
  }
  bool ninth_shed = false;
  try {
    pool.open_session(sess);
  } catch (const serve::ShedError&) {
    ninth_shed = true;
  }
  MAGICUBE_CHECK_MSG(ninth_shed, "the admission budget did not shed the "
                                 "ninth session");

  // Round-robin submission: step r of every session lands in the same
  // dispatch round — the continuous-batching shape.
  std::vector<std::vector<std::future<serve::Response>>> futures(kSessions);
  for (std::size_t st = 0; st < s.steps; ++st) {
    for (std::size_t i = 0; i < kSessions; ++i) {
      futures[i].push_back(
          sessions[i].step(feeds[i].q[st], feeds[i].k[st], feeds[i].v[st]));
    }
  }

  for (std::size_t i = 0; i < kSessions; ++i) {
    for (std::size_t st = 0; st < s.steps; ++st) {
      const serve::Response resp = futures[i][st].get();
      MAGICUBE_CHECK_MSG(resp.graph != nullptr, "a session step came back "
                                                "without its graph result");
      MAGICUBE_CHECK_MSG(resp.shards == 1, "a graph was sharded");
      if (i != 0) continue;
      // Session 0: every step bit-exact vs the composed one-shot attention
      // over the reconstructed prefix under the re-sliced mask.
      const std::size_t l = (st + 1) * s.grow;
      Matrix<float> q(l, s.dk), k(l, s.dk), v(l, s.dk);
      for (std::size_t b = 0; b <= st; ++b) {
        for (std::size_t r = 0; r < s.grow; ++r) {
          for (std::size_t c = 0; c < s.dk; ++c) {
            q(b * s.grow + r, c) = feeds[0].q[b](r, c);
            k(b * s.grow + r, c) = feeds[0].k[b](r, c);
            v(b * s.grow + r, c) = feeds[0].v[b](r, c);
          }
        }
      }
      const auto sliced = serve::slice_session_mask(*mask, l);
      const Matrix<float> ref =
          transformer::attention_forward(q, k, v, *sliced, kScheme);
      MAGICUBE_CHECK_MSG(resp.graph->out == ref,
                         "a fused session step diverged from the composed "
                         "reference");
    }
  }
  pool.drain();

  const serve::DevicePoolStats st = pool.stats();
  MAGICUBE_CHECK(st.graph_requests == kSessions * s.steps);
  MAGICUBE_CHECK(st.session_steps == kSessions * s.steps);
  MAGICUBE_CHECK(st.sessions_opened == kSessions);
  MAGICUBE_CHECK(st.sessions_shed == 1);
  MAGICUBE_CHECK(st.failed == 0);
  if (plan_hits != nullptr) *plan_hits = pool.plan_cache().stats().hits;

  if (trace_out != nullptr) {
    if (pool.traces().write_json(trace_out)) {
      std::printf("per-request traces written to %s\n", trace_out);
    } else {
      std::printf("warning: could not write traces to %s\n", trace_out);
    }
  }
  return st.modeled_makespan_seconds();
}

/// The staged arm: the same steps as separate SDDMM and SpMM requests
/// through an identically-configured pool, plus the interlude kernels
/// charged analytically at perfect parallelism (returned separately).
std::pair<double, double> run_staged(
    const SoakShape& s,
    const std::shared_ptr<const sparse::BlockPattern>& mask) {
  // Per step-index prototypes (operands shared across sessions — more
  // cache reuse than the fused arm's distinct feeds get, keeping the
  // comparison charitable to the staged arm).
  struct StepProto {
    serve::Request sddmm, spmm;
    double interlude = 0.0;  // per submission, on the reference device
  };
  serve::OperandCache scratch(64ull << 20);
  std::vector<StepProto> protos;
  for (std::size_t st = 0; st < s.steps; ++st) {
    const std::size_t l = (st + 1) * s.grow;
    const auto sliced = serve::slice_session_mask(*mask, l);
    Rng rng(0x57a + st);
    StepProto p;
    p.sddmm.op = serve::OpKind::sddmm;
    p.sddmm.precision = precision::L8R8;
    p.sddmm.pattern = sliced;
    p.sddmm.lhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(l, s.dk, Scalar::s8, rng));
    p.sddmm.rhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(s.dk, l, Scalar::s8, rng));
    p.spmm.op = serve::OpKind::spmm;
    p.spmm.precision = precision::L8R8;
    p.spmm.pattern = sliced;
    p.spmm.lhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(l, l, Scalar::s8, rng));
    p.spmm.rhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(l, s.dk, Scalar::s8, rng));

    // The interlude kernels fusion eliminates: price_staged_graph returns
    // [quant-QKV, SDDMM, score copy-out, softmax, weight copy-in, SpMM];
    // everything but the two kernel stages (indices 1 and 5) is interlude.
    serve::GraphRequest g;
    auto zeros = std::make_shared<const Matrix<float>>(l, s.dk);
    g.q = zeros;
    g.k = zeros;
    g.v = zeros;
    g.mask = sliced;
    g.scheme = kScheme;
    const std::vector<simt::KernelRun> runs =
        serve::price_staged_graph(g, scratch);
    MAGICUBE_CHECK(runs.size() == 6);
    for (const std::size_t idx : {std::size_t{0}, std::size_t{2},
                                  std::size_t{3}, std::size_t{4}}) {
      p.interlude += simt::estimate_seconds(simt::a100(), runs[idx]);
    }
    protos.push_back(std::move(p));
  }

  serve::DevicePool pool(pool_config(2 * kSessions * s.steps));
  std::vector<std::future<serve::Response>> futures;
  double interlude_total = 0.0;
  for (std::size_t st = 0; st < s.steps; ++st) {
    for (std::size_t i = 0; i < kSessions; ++i) {
      futures.push_back(pool.submit(serve::Request(protos[st].sddmm)));
      futures.push_back(pool.submit(serve::Request(protos[st].spmm)));
      interlude_total += protos[st].interlude;
    }
  }
  for (auto& f : futures) f.get();
  pool.drain();
  // Interludes at perfect device parallelism: the charitable lower bound.
  return {pool.stats().modeled_makespan_seconds(),
          interlude_total / static_cast<double>(kDevices)};
}

SoakMetrics run_soak(const SoakShape& s, const char* trace_out) {
  Rng rng(0x6a5);
  const auto mask = std::make_shared<const sparse::BlockPattern>(
      sparse::make_attention_mask_pattern(s.max_len(), s.v, 0.7, rng));
  const std::vector<Feed> feeds = make_feeds(s);

  SoakMetrics m;
  m.fused_makespan = run_fused(s, mask, feeds, trace_out, &m.plan_hits);
  const auto [staged_pool, interlude] = run_staged(s, mask);
  m.staged_pool_makespan = staged_pool;
  m.interlude_seconds = interlude;
  m.staged_makespan = staged_pool + interlude;
  MAGICUBE_CHECK(m.fused_makespan > 0.0 && m.staged_makespan > 0.0);
  m.fusion_ratio = m.staged_makespan / m.fused_makespan;
  m.fused_steps_per_sec =
      static_cast<double>(kSessions * s.steps) / m.fused_makespan;
  return m;
}

bool g_smoke = false;
std::string g_trace_out;

bool soak_and_gate(bool smoke, const char* trace_out) {
  const SoakShape s = shape_for(smoke);
  std::printf("== Fused attention-graph soak%s ==\n", smoke ? " [smoke]" : "");
  std::printf("%zu sessions x %zu steps (L up to %zu, dk %zu) over %zu "
              "devices; fused DAG vs per-stage submission\n\n",
              kSessions, s.steps, s.max_len(), s.dk, kDevices);

  const SoakMetrics m = run_soak(s, trace_out);

  bench::Table table({"metric", "value"});
  table.add_row({"fused modeled makespan (us)",
                 bench::fmt(m.fused_makespan * 1e6, 2)});
  table.add_row({"staged pool makespan (us)",
                 bench::fmt(m.staged_pool_makespan * 1e6, 2)});
  table.add_row({"staged interlude (us)",
                 bench::fmt(m.interlude_seconds * 1e6, 2)});
  table.add_row({"staged modeled makespan (us)",
                 bench::fmt(m.staged_makespan * 1e6, 2)});
  table.add_row({"fusion throughput ratio", bench::fmt(m.fusion_ratio, 3)});
  table.add_row({"fused steps / modeled s",
                 bench::fmt(m.fused_steps_per_sec, 1)});
  table.add_row({"plan-cache hits (fused)", std::to_string(m.plan_hits)});
  table.print();

  const bench::Baselines bars = bench::load_baselines(
      MAGICUBE_BENCH_BASELINE_DIR, "graph_soak.json");
  const std::string prefix = smoke ? "smoke_" : "full_";
  bool bars_ok = bars.loaded;
  double ratio_min = 0;
  if (bars.loaded) {
    ratio_min = bars.get(prefix + "fusion_ratio_min", &bars_ok);
  }

  bool gate = true;
  if (!bars_ok) {
    std::printf("\ncannot read recorded baselines from %s — gate FAILED\n",
                bars.path.c_str());
    gate = false;
  } else {
    const bool ok = m.fusion_ratio >= ratio_min;
    gate = ok;
    std::printf("\nfusion throughput ratio: %.3f (recorded bar: >= %.3f) — "
                "%s\n",
                m.fusion_ratio, ratio_min, ok ? "PASS" : "FAIL");
    std::printf("(bars recorded in %s; move them by re-recording, not by "
                "editing the gate)%s\n\n",
                bars.path.c_str(),
                MAGICUBE_BENCH_SANITIZED
                    ? " [sanitized build: gates reported, not enforced]"
                    : "");
  }
  return gate || MAGICUBE_BENCH_SANITIZED;
}

// google-benchmark surface (the BENCH_graph_soak JSON artifact): wall clock
// of the fused submit-to-drain soak, smoke-sized in CI.
void BM_GraphSoak(benchmark::State& state) {
  const SoakShape s = shape_for(g_smoke);
  Rng rng(0x6a5);
  const auto mask = std::make_shared<const sparse::BlockPattern>(
      sparse::make_attention_mask_pattern(s.max_len(), s.v, 0.7, rng));
  const std::vector<Feed> feeds = make_feeds(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_fused(s, mask, feeds, nullptr, nullptr));
  }
}
BENCHMARK(BM_GraphSoak)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> fwd = {argv[0]};
  bool help = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      g_trace_out = argv[i] + 12;
    } else {
      if (std::strcmp(argv[i], "--help") == 0 ||
          std::strcmp(argv[i], "-h") == 0) {
        help = true;
      }
      fwd.push_back(argv[i]);
    }
  }
  bool gate_passed = true;
  if (help) {
    std::printf("usage: %s [--smoke] [--trace-out=PATH] [--benchmark_* "
                "flags]\n"
                "  --smoke           small streams, a few seconds\n"
                "  --trace-out=PATH  export per-request trace JSON\n"
                "  other flags forward to google-benchmark (below)\n\n",
                argv[0]);
  } else {
    gate_passed = soak_and_gate(
        g_smoke, g_trace_out.empty() ? nullptr : g_trace_out.c_str());
  }
  int bench_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&bench_argc, fwd.data());
  benchmark::RunSpecifiedBenchmarks();
  return gate_passed ? 0 : 1;
}
