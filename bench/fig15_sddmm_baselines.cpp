// E5 — Fig. 15: SDDMM speedup over cublasHgemm across the DLMC collection:
// cuBLAS fp16/int8 (dense M x N GEMM), vectorSparse-like fp16, Magicube
// {L16-R16, L8-R8, L4-R4}; V x K panels, sparsity sweep.

#include <cstdio>
#include <mutex>

#include "baselines/dense_gemm.hpp"
#include "baselines/vector_sparse_like.hpp"
#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "core/api.hpp"
#include "dlmc/dlmc.hpp"

using namespace magicube;

namespace {

constexpr const char* kSchemes[] = {"cuBLAS(fp16)",      "cuBLAS(int8)",
                                    "vectorSparse(f16)", "Magicube L16-R16",
                                    "Magicube L8-R8",    "Magicube L4-R4"};
constexpr std::size_t kNumSchemes = std::size(kSchemes);

void scheme_seconds(const sparse::BlockPattern& pattern, std::size_t k,
                    double out[kNumSchemes]) {
  const simt::DeviceSpec& dev = simt::a100();
  // The dense counterpart of a sampled product is the full M x N GEMM.
  const std::size_t m = pattern.rows, n = pattern.cols;
  out[0] = simt::estimate_seconds(dev,
                                  baselines::dense_gemm_fp16_estimate(m, n, k));
  out[1] = simt::estimate_seconds(dev,
                                  baselines::dense_gemm_int8_estimate(m, n, k));
  out[2] = simt::estimate_seconds(dev,
                                  baselines::vs_sddmm_estimate(pattern, k));
  const PrecisionPair mc[] = {precision::L16R16, precision::L8R8,
                              precision::L4R4};
  for (std::size_t i = 0; i < std::size(mc); ++i) {
    core::SddmmConfig cfg;
    cfg.precision = mc[i];
    out[3 + i] =
        simt::estimate_seconds(dev, core::sddmm_estimate(pattern, k, cfg));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  std::printf("== E5 / Fig. 15: SDDMM speedup over cuBLAS fp16 (geomean over "
              "the DLMC slice)%s ==\n\n", opt.smoke ? " [smoke]" : "");

  bench::GeoMean l16r16_vs_vectorsparse;  // V=8, K=256 headline

  const std::vector<double> levels =
      bench::dlmc_levels(opt, dlmc::sparsity_levels());
  const std::size_t matrices_per_level = bench::dlmc_matrices_per_level(opt);
  const std::vector<std::size_t> ks =
      opt.smoke ? std::vector<std::size_t>{256}
                : std::vector<std::size_t>{128, 256};
  const std::vector<int> vs =
      opt.smoke ? std::vector<int>{8} : std::vector<int>{2, 4, 8};
  for (int v : vs) {
    std::vector<std::vector<std::vector<bench::GeoMean>>> geo(
        ks.size(), std::vector<std::vector<bench::GeoMean>>(
                       kNumSchemes,
                       std::vector<bench::GeoMean>(levels.size())));
    std::mutex mu;
    for (std::size_t si = 0; si < levels.size(); ++si) {
      const auto specs = dlmc::collection(levels[si], matrices_per_level);
      parallel_for(specs.size(), [&](std::size_t i) {
        const auto pattern = dlmc::instantiate(specs[i], v);
        for (std::size_t ki = 0; ki < ks.size(); ++ki) {
          double secs[kNumSchemes];
          scheme_seconds(pattern, ks[ki], secs);
          std::lock_guard<std::mutex> lock(mu);
          for (std::size_t s = 0; s < kNumSchemes; ++s) {
            geo[ki][s][si].add(secs[0] / secs[s]);
          }
          if (v == 8 && ks[ki] == 256) {
            l16r16_vs_vectorsparse.add(secs[2] / secs[3]);
          }
        }
      });
    }
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      std::vector<std::string> headers = {"scheme"};
      for (double s : levels) headers.push_back("s=" + bench::fmt(s, 2));
      bench::Table table(std::move(headers));
      for (std::size_t s = 0; s < kNumSchemes; ++s) {
        std::vector<std::string> row = {kSchemes[s]};
        for (std::size_t si = 0; si < levels.size(); ++si) {
          row.push_back(bench::fmt(geo[ki][s][si].mean(), 2));
        }
        table.add_row(std::move(row));
      }
      std::printf("-- V = %d, K = %zu --\n", v, ks[ki]);
      table.print();
      std::printf("\n");
    }
  }
  std::printf("Headline comparison (V=8, K=256%s; paper values in brackets):\n"
              "  Magicube(L16-R16) vs vectorSparse: geomean %.2fx, max %.2fx"
              "   [1.58x, 2.15x]\n",
              opt.smoke ? ", [smoke] slice only — not comparable" : "",
              l16r16_vs_vectorsparse.mean(),
              l16r16_vs_vectorsparse.max_value);
  return 0;
}
