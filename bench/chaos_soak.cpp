// Self-healing chaos soak: a 4-device heterogeneous DevicePool streamed
// through a fault storm concentrated on one device, gated against
// recorded bars.
//
// The FaultPlan pins a high-probability window to device 0 (its first 30
// kernel executions fail ~45% of the time) on top of a zero background
// rate, so only device-0 executions consume the fault RNG: the storm is a
// deterministic per-device schedule no matter how the stream interleaves.
// The healing layer (serve/device_pool.hpp) has to ride it out end to end:
//   * the health EWMA trips the circuit breaker on device 0 and the pool
//     re-places its queued work (the breaker MUST open — hard invariant,
//     not a bar),
//   * probe executions offered to the quarantined device rebuild the
//     success streak once the window passes and reinstate it (again a hard
//     invariant: the soak fails if recovery never happens),
//   * deadline-carrying requests whose placements drift past the hedge
//     fraction duplicate onto the best alternative device; winners are
//     decided on the modeled clock and every served result — hedged,
//     probed, re-placed or retried — is checked bit-exact against the
//     sequential reference.
// Requests stream through a bounded in-flight window (submit i waits on
// future i-32) so dispatch rounds interleave with completions and the
// probe/reinstate machinery actually turns over mid-soak instead of
// seeing one giant dispatch round.
//
// Scheduling (which requests share a dispatch round) is wall-clock
// dependent, so the gates are bands rather than exact counts:
//   * goodput (served / submitted) clears the recorded floor — the fleet
//     keeps serving through the storm,
//   * the failure rate (shed + retry-exhausted + poisoned) stays under the
//     recorded ceiling.
// Like the other perf benches: --smoke is peeled off argv, the rest
// forwards to google-benchmark; gates compare against
// bench/baselines/chaos_soak.json (bars move by re-recording, never by
// editing the gate); sanitizer builds report without enforcing.
// --trace-out=PATH exports the pool's TraceLog JSON (hedge/probe/
// quarantine spans included — the CI artifact trace_report aggregates).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/api.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MAGICUBE_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MAGICUBE_BENCH_SANITIZED 1
#endif
#endif
#ifndef MAGICUBE_BENCH_SANITIZED
#define MAGICUBE_BENCH_SANITIZED 0
#endif

#ifndef MAGICUBE_BENCH_BASELINE_DIR
#define MAGICUBE_BENCH_BASELINE_DIR "bench/baselines"
#endif

namespace {

using namespace magicube;

constexpr std::size_t kInFlight = 32;

struct SoakShape {
  std::size_t requests = 1000;
  std::size_t m = 192, k = 128, n = 128;
  double sparsity = 0.7;
};

SoakShape shape_for(bool smoke) {
  SoakShape s;
  if (smoke) {
    s.requests = 240;
    s.m = s.k = 96;
    s.n = 64;
  }
  return s;
}

/// The warm working set: three SpMM precisions + one SDDMM, small enough
/// that the storm cycles the whole catalogue many times.
struct Layer {
  serve::Request req;
  double est = 0.0;  // modeled seconds on the a100 reference spec
};

std::vector<Layer> make_layers(const SoakShape& s) {
  static const PrecisionPair spmm_pairs[] = {precision::L16R8,
                                             precision::L8R8,
                                             precision::L4R4};
  std::vector<Layer> layers;
  std::uint64_t next_id = 1;
  for (const PrecisionPair prec : spmm_pairs) {
    Rng rng(0xc4a0 + next_id);
    Layer l;
    l.req.op = serve::OpKind::spmm;
    l.req.precision = prec;
    l.req.pattern = std::make_shared<const sparse::BlockPattern>(
        sparse::make_uniform_pattern(s.m, s.k, 8, s.sparsity, rng));
    l.req.lhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(s.m, s.k, prec.lhs, rng));
    l.req.rhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(s.k, s.n, prec.rhs, rng));
    l.req.lhs_id = next_id;
    l.req.rhs_id = 100 + next_id;
    next_id += 1;
    layers.push_back(std::move(l));
  }
  {
    Rng rng(0xc4a0 + 99);
    Layer l;
    l.req.op = serve::OpKind::sddmm;
    l.req.precision = precision::L8R8;
    l.req.pattern = std::make_shared<const sparse::BlockPattern>(
        sparse::make_uniform_pattern(s.m, s.n, 8, s.sparsity, rng));
    l.req.lhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(s.m, s.k, Scalar::s8, rng));
    l.req.rhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(s.k, s.n, Scalar::s8, rng));
    l.req.lhs_id = next_id;
    l.req.rhs_id = 100 + next_id;
    layers.push_back(std::move(l));
  }
  serve::OperandCache scratch(64ull << 20);
  for (Layer& l : layers) {
    l.est = simt::estimate_seconds(simt::a100(),
                                   serve::price_request(l.req, scratch));
    MAGICUBE_CHECK(l.est > 0.0);
  }
  return layers;
}

struct SoakMetrics {
  std::size_t total = 0;
  std::size_t served = 0;
  std::size_t failed = 0;
  std::size_t hedged_served = 0;  // served responses carrying hedged=true
  double goodput = 0.0;           // served / total
  double fail_rate = 0.0;
  serve::DevicePoolStats stats;
};

SoakMetrics run_soak(const SoakShape& s, const std::vector<Layer>& layers,
                     const char* trace_out) {
  serve::DevicePoolConfig cfg;
  cfg.devices = {simt::a100(), simt::edge(), simt::a100(), simt::edge()};
  cfg.shard_threshold_seconds = 0;  // the healing axis, not sharding
  cfg.linger = std::chrono::microseconds(20);
  cfg.max_queue_depth = kInFlight;
  cfg.max_retries = 8;
  cfg.trace_capacity = s.requests + 16;
  // The storm: ~45% of device 0's first 30 executions fault; nothing else
  // draws the fault RNG, so the per-device pattern is schedule-invariant.
  cfg.fault_plan.probability = 0.0;
  cfg.fault_plan.windows.push_back(
      {/*device=*/0, /*probability=*/0.45, /*from=*/1, /*to=*/30});
  cfg.fault_plan.seed = 0x50ca;
  cfg.healing.enabled = true;
  cfg.healing.health_alpha = 0.3;
  cfg.healing.quarantine_below = 0.6;
  cfg.healing.min_health_samples = 4;
  cfg.healing.probe_interval = 4;
  cfg.healing.reinstate_after = 3;
  cfg.healing.hedge_deadline_fraction = 0.02;
  cfg.healing.poison_fault_devices = 2;
  serve::DevicePool pool(cfg);

  // Sequential references (one per layer) for the bit-exactness check on
  // every served response.
  std::vector<serve::Response> refs;
  for (const Layer& l : layers) {
    serve::OperandCache ref_cache(256ull << 20);
    refs.push_back(serve::serve_request(l.req, ref_cache));
  }

  SoakMetrics m;
  m.total = s.requests;
  struct Submitted {
    std::size_t layer = 0;
    std::future<serve::Response> future;
  };
  std::vector<Submitted> stream(s.requests);

  auto settle = [&](Submitted& sub) {
    try {
      const serve::Response resp = sub.future.get();
      const serve::Response& want = refs[sub.layer];
      if (resp.op == serve::OpKind::spmm) {
        MAGICUBE_CHECK_MSG(resp.spmm->c == want.spmm->c,
                           "pooled SpMM diverged from the reference");
      } else {
        MAGICUBE_CHECK_MSG(resp.sddmm->c.values == want.sddmm->c.values,
                           "pooled SDDMM diverged from the reference");
      }
      m.served += 1;
      if (resp.hedged) m.hedged_served += 1;
    } catch (const Error&) {
      m.failed += 1;  // shed / budget-exhausted / poisoned: clean failures
    }
  };

  for (std::size_t i = 0; i < s.requests; ++i) {
    serve::Request req = layers[i % layers.size()].req;
    if (i % 4 == 3) {
      // A deadline generous against the observed backlog (admits cleanly)
      // but far past the 2% hedge fraction once any backlog builds.
      double max_busy = 0.0;
      for (const serve::DeviceStats& d : pool.stats().devices) {
        max_busy = std::max(max_busy, d.modeled_busy_seconds);
      }
      req.deadline_seconds =
          max_busy + 10.0 * layers[i % layers.size()].est;
    }
    stream[i].layer = i % layers.size();
    stream[i].future = pool.submit(std::move(req));
    // Bounded in-flight window: completions interleave with dispatch, so
    // probes and reinstatements turn over mid-soak.
    if (i >= kInFlight) settle(stream[i - kInFlight]);
  }
  for (std::size_t i = s.requests - std::min(s.requests, kInFlight);
       i < s.requests; ++i) {
    settle(stream[i]);
  }
  pool.drain();

  m.stats = pool.stats();
  m.goodput = static_cast<double>(m.served) / static_cast<double>(m.total);
  m.fail_rate =
      static_cast<double>(m.failed) / static_cast<double>(m.total);

  // Hard invariants (MAGICUBE_CHECK, not bars): the healing arc must
  // actually happen, and the counters must be mutually consistent.
  const serve::DevicePoolStats& st = m.stats;
  MAGICUBE_CHECK_MSG(st.quarantines >= 1,
                     "the fault storm never tripped the circuit breaker");
  MAGICUBE_CHECK_MSG(st.reinstatements >= 1,
                     "no probe-driven reinstatement happened in the soak");
  MAGICUBE_CHECK_MSG(st.hedges_placed >= 1,
                     "no deadline request ever hedged");
  MAGICUBE_CHECK(st.probes_placed >= st.probe_successes);
  MAGICUBE_CHECK(st.hedges_placed >= st.hedges_won);
  MAGICUBE_CHECK(st.reinstatements <= st.quarantines);
  MAGICUBE_CHECK(st.poison_failures <= st.failed);
  MAGICUBE_CHECK(st.submitted == m.total && st.completed == m.total);
  MAGICUBE_CHECK(st.failed == m.failed);
  MAGICUBE_CHECK(pool.plan_cache().pinned_count() == 0);

  if (trace_out != nullptr) {
    if (pool.traces().write_json(trace_out)) {
      std::printf("per-request traces written to %s\n", trace_out);
    } else {
      std::printf("warning: could not write traces to %s\n", trace_out);
    }
  }
  return m;
}

bool g_smoke = false;
std::string g_trace_out;

bool soak_and_gate(bool smoke, const char* trace_out) {
  const SoakShape s = shape_for(smoke);
  std::printf("== self-healing chaos soak%s ==\n", smoke ? " [smoke]" : "");
  std::printf("%zu requests over 4 devices; ~45%%-fault window pinned to "
              "device 0, healing enabled\n\n",
              s.requests);

  const std::vector<Layer> layers = make_layers(s);
  const SoakMetrics m = run_soak(s, layers, trace_out);

  bench::Table table({"metric", "value"});
  table.add_row({"requests", std::to_string(m.total)});
  table.add_row({"served", std::to_string(m.served)});
  table.add_row({"failed", std::to_string(m.failed)});
  table.add_row({"goodput", bench::fmt(m.goodput, 3)});
  table.add_row({"faults injected", std::to_string(m.stats.faults_injected)});
  table.add_row({"retries", std::to_string(m.stats.retries)});
  table.add_row({"quarantines", std::to_string(m.stats.quarantines)});
  table.add_row({"reinstatements", std::to_string(m.stats.reinstatements)});
  table.add_row({"probes placed / ok",
                 std::to_string(m.stats.probes_placed) + " / " +
                     std::to_string(m.stats.probe_successes)});
  table.add_row({"hedges placed / won",
                 std::to_string(m.stats.hedges_placed) + " / " +
                     std::to_string(m.stats.hedges_won)});
  table.add_row({"served hedged", std::to_string(m.hedged_served)});
  table.add_row({"poison failures", std::to_string(m.stats.poison_failures)});
  table.print();

  const bench::Baselines bars = bench::load_baselines(
      MAGICUBE_BENCH_BASELINE_DIR, "chaos_soak.json");
  const std::string prefix = smoke ? "smoke_" : "full_";
  bool bars_ok = bars.loaded;
  double goodput_min = 0, fail_rate_max = 0;
  if (bars.loaded) {
    goodput_min = bars.get(prefix + "goodput_min", &bars_ok);
    fail_rate_max = bars.get(prefix + "fail_rate_max", &bars_ok);
  }

  bool gate = true;
  if (!bars_ok) {
    std::printf("\ncannot read recorded baselines from %s — gate FAILED\n",
                bars.path.c_str());
    gate = false;
  } else {
    struct GateRow {
      const char* name;
      double value, bar;
      bool is_max;  // true: value <= bar passes; false: value >= bar
    } rows[] = {
        {"goodput", m.goodput, goodput_min, false},
        {"failure rate", m.fail_rate, fail_rate_max, true},
    };
    std::printf("\n");
    for (const GateRow& r : rows) {
      const bool ok = r.is_max ? r.value <= r.bar : r.value >= r.bar;
      gate = gate && ok;
      std::printf("%s: %.3f (recorded bar: %s %.3f) — %s\n", r.name, r.value,
                  r.is_max ? "<=" : ">=", r.bar, ok ? "PASS" : "FAIL");
    }
    std::printf("(bars recorded in %s; move them by re-recording, not by "
                "editing the gate)%s\n\n",
                bars.path.c_str(),
                MAGICUBE_BENCH_SANITIZED
                    ? " [sanitized build: gates reported, not enforced]"
                    : "");
  }
  return gate || MAGICUBE_BENCH_SANITIZED;
}

// google-benchmark surface (the BENCH_chaos_soak JSON artifact): wall
// clock of the whole streamed soak, smoke-sized in CI.
void BM_ChaosSoak(benchmark::State& state) {
  const SoakShape s = shape_for(g_smoke);
  const std::vector<Layer> layers = make_layers(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_soak(s, layers, nullptr));
  }
}
BENCHMARK(BM_ChaosSoak)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> fwd = {argv[0]};
  bool help = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      g_trace_out = argv[i] + 12;
    } else {
      if (std::strcmp(argv[i], "--help") == 0 ||
          std::strcmp(argv[i], "-h") == 0) {
        help = true;
      }
      fwd.push_back(argv[i]);
    }
  }
  bool gate_passed = true;
  if (help) {
    std::printf("usage: %s [--smoke] [--trace-out=PATH] [--benchmark_* "
                "flags]\n"
                "  --smoke           small stream, a few seconds\n"
                "  --trace-out=PATH  export per-request trace JSON\n"
                "  other flags forward to google-benchmark (below)\n\n",
                argv[0]);
  } else {
    gate_passed = soak_and_gate(
        g_smoke, g_trace_out.empty() ? nullptr : g_trace_out.c_str());
  }
  int bench_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&bench_argc, fwd.data());
  benchmark::RunSpecifiedBenchmarks();
  return gate_passed ? 0 : 1;
}
