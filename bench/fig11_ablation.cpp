// E1 — Fig. 11: ablation of the SpMM optimizations on one DLMC matrix
// (scalar shape 256 x 2304, dilated by V, N = 512): basic -> conflict-free
// -> +prefetch -> +column-index shuffling, for sparsity {0.7, 0.9},
// precisions {L16-R8, L8-R8, L8-R4, L4-R4} and V {2, 8}. TOP/s counted on
// useful (logical-precision) operations, as the paper plots.

#include <cstdio>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "dlmc/dlmc.hpp"

using namespace magicube;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  std::printf(
      "== E1 / Fig. 11: SpMM optimization ablation (M=256, K=2304, N=512)%s "
      "==\n\n", opt.smoke ? " [smoke]" : "");
  const std::size_t n = 512;
  const std::vector<double> sparsities =
      opt.smoke ? std::vector<double>{0.7} : std::vector<double>{0.7, 0.9};
  const core::SpmmVariant variants[] = {
      core::SpmmVariant::basic, core::SpmmVariant::conflict_free,
      core::SpmmVariant::conflict_free_prefetch, core::SpmmVariant::full};
  const PrecisionPair precisions[] = {precision::L16R8, precision::L8R8,
                                      precision::L8R4, precision::L4R4};

  for (double sparsity : sparsities) {
    std::printf("-- sparsity = %.1f --\n", sparsity);
    bench::Table table({"precision", "V", "basic", "conflict-free",
                        "cf+prefetch", "cf+pf+shuffle", "shuffle gain"});
    for (const auto prec : precisions) {
      for (int v : {2, 8}) {
        const auto spec = dlmc::ablation_matrix(sparsity);
        const auto pattern = dlmc::instantiate(spec, v);
        std::vector<std::string> row = {to_string(prec), std::to_string(v)};
        double prev = 0.0, with_shuffle = 0.0, without_shuffle = 0.0;
        for (const auto variant : variants) {
          core::SpmmConfig cfg;
          cfg.precision = prec;
          cfg.variant = variant;
          const auto run = core::spmm_estimate(pattern, n, cfg);
          const double t =
              bench::tops(core::spmm_useful_ops(pattern, n),
                          simt::estimate_seconds(simt::a100(), run));
          row.push_back(bench::fmt(t, 2));
          if (variant == core::SpmmVariant::conflict_free_prefetch) {
            without_shuffle = t;
          }
          if (variant == core::SpmmVariant::full) with_shuffle = t;
          prev = t;
        }
        (void)prev;
        // The shuffle column only moves on the int4 datapath.
        row.push_back(bench::fmt(with_shuffle / without_shuffle, 2) + "x");
        table.add_row(std::move(row));
      }
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): every step helps; index shuffling gives the\n"
      "largest jump on the 4-bit RHS datapaths (paper: ~1.45x for L4-R4,\n"
      "V=8, sparsity 0.7 after all other optimizations).\n");
  return 0;
}
