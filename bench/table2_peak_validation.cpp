// E8 — Table II validation: the simulated device must reproduce the
// published A100 peaks that calibrate every other experiment, and the
// google-benchmark cases below measure the host-side cost of the analytic
// estimators themselves (they must stay cheap enough for the 1,536-matrix
// sweeps).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "dlmc/dlmc.hpp"

namespace {

using namespace magicube;

void print_peak_table() {
  const simt::DeviceSpec& dev = simt::a100();
  std::printf("== E8 / Table II: simulated-device peak validation ==\n");
  std::printf("device: %s\n\n", dev.name.c_str());

  bench::Table table({"datapath", "published peak", "modeled peak", "error"});
  struct Row {
    const char* name;
    double published_tops;
    std::uint64_t mma_count;
    int which;  // 0=fp16, 1=int8, 2=int4
  } rows[] = {
      {"fp16 tensor core (TFLOP/s)", 312.0, 50'000'000, 0},
      {"int8 tensor core (TOP/s)", 624.0, 100'000'000, 1},
      {"int4 tensor core (TOP/s)", 1248.0, 100'000'000, 2},
  };
  for (const auto& r : rows) {
    simt::KernelRun run;
    run.launch = {static_cast<std::uint64_t>(dev.sm_count) * 8, 4, 0};
    run.kernel_launches = 0;
    std::uint64_t ops = 0;
    if (r.which == 0) {
      run.counters.mma_fp16 = r.mma_count;
      ops = r.mma_count * 4096;
    } else if (r.which == 1) {
      run.counters.mma_int8 = r.mma_count;
      ops = r.mma_count * 2048;
    } else {
      run.counters.mma_int4 = r.mma_count;
      ops = r.mma_count * 4096;
    }
    const double modeled = bench::tops(ops, simt::estimate_seconds(dev, run));
    table.add_row({r.name, bench::fmt(r.published_tops, 0),
                   bench::fmt(modeled, 1),
                   bench::fmt(100.0 * (modeled / r.published_tops - 1.0), 2) +
                       "%"});
  }

  // Memory bandwidth check: a pure streaming kernel.
  {
    simt::KernelRun run;
    run.launch = {static_cast<std::uint64_t>(dev.sm_count) * 8, 4, 0};
    run.kernel_launches = 0;
    const std::uint64_t bytes = 64ull << 30;
    run.counters.gmem_load_sectors = bytes / 32;
    run.counters.dram_bytes = bytes;
    const double gbps = static_cast<double>(bytes) /
                        simt::estimate_seconds(dev, run) / 1e9;
    table.add_row({"HBM2e bandwidth (GB/s)", bench::fmt(1555.0, 0),
                   bench::fmt(gbps, 0),
                   bench::fmt(100.0 * (gbps / 1555.0 - 1.0), 2) + "%"});
  }
  table.print();
  std::printf("\n");
}

// Host-side throughput of the analytic estimators (must stay cheap: the
// Fig. 12 sweep calls them ~32k times).
void BM_SpmmEstimate(benchmark::State& state) {
  Rng rng(1);
  const auto pattern = sparse::make_uniform_pattern(
      2048, 2304, 8, 0.9, rng);
  core::SpmmConfig cfg{precision::L8R8, core::SpmmVariant::full};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::spmm_estimate(pattern, 256, cfg));
  }
}
BENCHMARK(BM_SpmmEstimate);

void BM_SddmmEstimate(benchmark::State& state) {
  Rng rng(2);
  const auto pattern = sparse::make_uniform_pattern(
      2048, 2048, 8, 0.9, rng);
  core::SddmmConfig cfg{precision::L8R8, false, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sddmm_estimate(pattern, 128, cfg));
  }
}
BENCHMARK(BM_SddmmEstimate);

void BM_PatternInstantiation(benchmark::State& state) {
  const auto spec = dlmc::collection(0.9, 4)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(dlmc::instantiate(spec, 8));
  }
}
BENCHMARK(BM_PatternInstantiation);

}  // namespace

int main(int argc, char** argv) {
  // This binary forwards unrecognized flags (--benchmark_filter, ...) to
  // google-benchmark, so it peels --smoke off itself instead of using
  // bench::parse_args.
  bool smoke = false;
  std::vector<char*> fwd = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      fwd.push_back(argv[i]);
    }
  }
  print_peak_table();
  if (smoke) {
    // The peak table above is the validation; the estimator-cost
    // micro-benchmarks need google-benchmark's repetitions and are skipped.
    std::printf("[smoke] skipping estimator micro-benchmarks\n");
    return 0;
  }
  int bench_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&bench_argc, fwd.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
