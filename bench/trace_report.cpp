// Trace regression report: aggregates the TRACE_*.json artifacts the
// serving benches export (serve/trace.cpp's magicube.trace.v1 documents)
// into per-span-kind latency percentiles.
//
// CI pipes the stdout markdown into $GITHUB_STEP_SUMMARY after the soak
// benches run, so a reviewer reads p50/p99/max modeled span durations per
// kind (queue, replay, retry, shed, replace, hedge, probe, quarantine,
// ...) without downloading the artifact; --out=FILE.json additionally
// emits a machine-readable magicube.trace_report.v1 document that rides
// next to the BENCH_*.json uploads.
//
// --fail-on-failed-spans[=kind1,kind2] turns the report into a gate: the
// exit code goes nonzero when any listed span kind carries an ok="false"
// span. The default list is just `merge` — a failed merge means a sharded
// request died after its slices ran, which no soak tolerates — because
// chaos artifacts legitimately contain failed `replay` spans (injected
// faults) that must NOT turn CI red. Durations are *modeled* microseconds (end - begin on the
// request's modeled timeline), the same clock the placement and the gates
// reason about — zero-width marker spans (price, place, shed, merge)
// aggregate like everything else, their counts being the interesting part.
//
// --self-test runs the aggregation against an in-process document and is
// registered as the bench-smoke CTest entry (the tool has no recorded
// bars of its own — it reports; the soak gates).
//
// Parsing uses tests/support/json.hpp — the same reader the trace schema
// tests trust, so the report stays honest about well-formedness.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace {

using magicube::testjson::Parser;
using magicube::testjson::Value;

struct KindStats {
  std::size_t spans = 0;             // every span of the kind
  std::vector<double> completed_us;  // durations of spans without ok="false"
  std::size_t failed_spans = 0;      // spans with ok="false"
};

struct Report {
  std::map<std::string, KindStats> kinds;  // ordered for stable output
  std::size_t files = 0;
  std::size_t traces = 0;
  std::size_t traces_failed = 0;
  std::size_t traces_dropped = 0;  // ring-capacity drops reported upstream
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void accumulate_document(const Value& doc, Report* report) {
  const Value* schema = doc.find("schema");
  if (schema == nullptr || schema->str != "magicube.trace.v1") {
    throw std::runtime_error("not a magicube.trace.v1 document");
  }
  const Value* dropped = doc.find("dropped");
  if (dropped != nullptr) {
    report->traces_dropped += static_cast<std::size_t>(dropped->num);
  }
  for (const Value& trace : doc.at("traces").arr) {
    report->traces += 1;
    const Value* ok = trace.find("ok");
    if (ok != nullptr && !ok->b) report->traces_failed += 1;
    for (const Value& span : trace.at("spans").arr) {
      KindStats& ks = report->kinds[span.at("name").str];
      const double begin = span.at("begin").num;
      const double end = span.at("end").num;
      ks.spans += 1;
      bool failed = false;
      const Value* attrs = span.find("attrs");
      if (attrs != nullptr) {
        const Value* span_ok = attrs->find("ok");
        failed = span_ok != nullptr && span_ok->str == "false";
      }
      if (failed) {
        // Failed spans count but never enter the percentile set: a faulted
        // replay's rolled-back duration would skew the latency a reader
        // takes as the completed-work profile.
        ks.failed_spans += 1;
      } else {
        ks.completed_us.push_back((end - begin) * 1e6);
      }
    }
  }
}

bool accumulate_file(const std::string& path, Report* report) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    accumulate_document(Parser(ss.str()).parse(), report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_report: %s: %s\n", path.c_str(), e.what());
    return false;
  }
  report->files += 1;
  return true;
}

void print_markdown(const Report& r) {
  std::printf("### Trace regression report\n\n");
  std::printf("%zu file(s), %zu trace(s), %zu failed, %zu dropped by the "
              "ring\n\n",
              r.files, r.traces, r.traces_failed, r.traces_dropped);
  std::printf("| span kind | count | failed | p50 (us) | p99 (us) | max "
              "(us) |\n");
  std::printf("|---|---|---|---|---|---|\n");
  for (const auto& [kind, stats] : r.kinds) {
    std::vector<double> sorted = stats.completed_us;
    std::sort(sorted.begin(), sorted.end());
    // Percentiles cover completed spans only; a kind whose spans all
    // failed still gets a clean zero row (count and failed carry the
    // information), never an out-of-range read.
    std::printf("| %s | %zu | %zu | %.2f | %.2f | %.2f |\n", kind.c_str(),
                stats.spans, stats.failed_spans, percentile(sorted, 0.5),
                percentile(sorted, 0.99), sorted.empty() ? 0.0
                                                         : sorted.back());
  }
  std::printf("\nDurations are modeled microseconds on each request's own "
              "timeline; percentiles cover completed (non-failed) spans.\n");
}

bool write_json(const Report& r, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "trace_report: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"schema\": \"magicube.trace_report.v1\",\n";
  out << "  \"files\": " << r.files << ",\n";
  out << "  \"traces\": " << r.traces << ",\n";
  out << "  \"traces_failed\": " << r.traces_failed << ",\n";
  out << "  \"traces_dropped\": " << r.traces_dropped << ",\n";
  out << "  \"kinds\": {";
  bool first = true;
  for (const auto& [kind, stats] : r.kinds) {
    std::vector<double> sorted = stats.completed_us;
    std::sort(sorted.begin(), sorted.end());
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\n    \"%s\": {\"count\": %zu, \"failed\": %zu, "
                  "\"p50_us\": %.6g, \"p99_us\": %.6g, \"max_us\": %.6g}",
                  kind.c_str(), stats.spans, stats.failed_spans,
                  percentile(sorted, 0.5), percentile(sorted, 0.99),
                  sorted.empty() ? 0.0 : sorted.back());
    out << (first ? "" : ",") << buf;
    first = false;
  }
  out << "\n  }\n}\n";
  return static_cast<bool>(out);
}

/// Splits a comma-separated kind list ("merge,replay"); empty input
/// yields the default gate set.
std::vector<std::string> parse_gate_kinds(const std::string& list) {
  if (list.empty()) return {"merge"};
  std::vector<std::string> kinds;
  std::string cur;
  for (const char c : list) {
    if (c == ',') {
      if (!cur.empty()) kinds.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) kinds.push_back(cur);
  return kinds;
}

/// ok="false" spans among the gated kinds (the --fail-on-failed-spans
/// verdict).
std::size_t gated_failed_spans(const Report& r,
                               const std::vector<std::string>& kinds) {
  std::size_t n = 0;
  for (const std::string& kind : kinds) {
    const auto it = r.kinds.find(kind);
    if (it != r.kinds.end()) n += it->second.failed_spans;
  }
  return n;
}

/// In-process check of the whole pipeline: parse a known document,
/// aggregate, verify counts and percentiles exactly. Exercised by CTest
/// (bench-smoke label) and safe to run anywhere — no files touched.
int self_test() {
  const std::string doc = R"({
    "schema": "magicube.trace.v1", "engine": "device_pool", "dropped": 2,
    "traces": [
      {"ok": true, "spans": [
        {"name": "queue", "begin": 0, "end": 1e-6},
        {"name": "replay", "begin": 1e-6, "end": 5e-6,
         "attrs": {"ok": "true"}}]},
      {"ok": false, "spans": [
        {"name": "replay", "begin": 0, "end": 3e-6,
         "attrs": {"ok": "false"}},
        {"name": "shed", "begin": 3e-6, "end": 3e-6}]}
    ]})";
  Report r;
  accumulate_document(Parser(doc).parse(), &r);
  auto fail = [](const char* what) {
    std::fprintf(stderr, "trace_report --self-test FAILED: %s\n", what);
    return 1;
  };
  if (r.traces != 2 || r.traces_failed != 1 || r.traces_dropped != 2) {
    return fail("trace counts");
  }
  if (r.kinds.size() != 3 || r.kinds.count("queue") == 0 ||
      r.kinds.count("replay") == 0 || r.kinds.count("shed") == 0) {
    return fail("span kinds");
  }
  const KindStats& replay = r.kinds.at("replay");
  if (replay.spans != 2 || replay.completed_us.size() != 1 ||
      replay.failed_spans != 1) {
    return fail("replay aggregation");
  }
  // Percentiles cover completed spans only: the failed 3us replay stays
  // out of the set, so p50 is the lone completed span's 4us.
  std::vector<double> sorted = replay.completed_us;
  std::sort(sorted.begin(), sorted.end());
  if (std::abs(percentile(sorted, 0.5) - 4.0) > 1e-9 ||
      std::abs(sorted.back() - 4.0) > 1e-9) {
    return fail("replay percentiles");
  }
  if (r.kinds.at("shed").completed_us.front() != 0.0) {
    return fail("zero-width shed span");
  }
  // A kind whose spans ALL failed has an empty percentile set: the report
  // must produce a clean zero row, not an out-of-range read.
  const std::string all_failed_doc = R"({
    "schema": "magicube.trace.v1", "engine": "device_pool",
    "traces": [
      {"ok": false, "spans": [
        {"name": "merge", "begin": 0, "end": 2e-6, "attrs": {"ok": "false"}},
        {"name": "merge", "begin": 2e-6, "end": 5e-6,
         "attrs": {"ok": "false"}}]}
    ]})";
  Report af;
  accumulate_document(Parser(all_failed_doc).parse(), &af);
  const KindStats& af_merge = af.kinds.at("merge");
  if (af_merge.spans != 2 || af_merge.failed_spans != 2 ||
      !af_merge.completed_us.empty()) {
    return fail("all-failed kind aggregation");
  }
  std::vector<double> af_sorted = af_merge.completed_us;
  if (percentile(af_sorted, 0.5) != 0.0 || percentile(af_sorted, 0.99) != 0.0) {
    return fail("all-failed kind percentiles must be a clean zero");
  }
  print_markdown(af);  // must not crash on the empty percentile set
  // An empty TRACE document (no traces at all) aggregates to a report with
  // no kinds and renders cleanly.
  Report empty;
  accumulate_document(
      Parser(R"({"schema": "magicube.trace.v1", "traces": []})").parse(),
      &empty);
  if (empty.traces != 0 || !empty.kinds.empty()) {
    return fail("empty trace document");
  }
  print_markdown(empty);
  // The self-healing span kinds aggregate like any other, and the
  // --fail-on-failed-spans gate fires on its listed kinds only: the
  // failed replay above must not trip the default (merge-only) gate, a
  // failed merge must.
  const std::string healing_doc = R"({
    "schema": "magicube.trace.v1", "engine": "device_pool",
    "traces": [
      {"ok": true, "spans": [
        {"name": "hedge", "begin": 0, "end": 2e-6,
         "attrs": {"action": "place"}},
        {"name": "hedge", "begin": 2e-6, "end": 2e-6,
         "attrs": {"action": "cancel", "winner": "primary"}},
        {"name": "probe", "begin": 0, "end": 0},
        {"name": "quarantine", "begin": 1e-6, "end": 1e-6,
         "attrs": {"action": "enter"}}]},
      {"ok": false, "spans": [
        {"name": "merge", "begin": 0, "end": 4e-6,
         "attrs": {"ok": "false"}}]}
    ]})";
  Report h;
  accumulate_document(Parser(healing_doc).parse(), &h);
  if (h.kinds.at("hedge").completed_us.size() != 2 ||
      h.kinds.count("probe") == 0 || h.kinds.count("quarantine") == 0) {
    return fail("healing span kinds");
  }
  if (gated_failed_spans(r, parse_gate_kinds("")) != 0) {
    return fail("default gate tripped on an injected-fault replay");
  }
  if (gated_failed_spans(h, parse_gate_kinds("")) != 1 ||
      gated_failed_spans(h, parse_gate_kinds("merge,replay")) != 1 ||
      gated_failed_spans(r, parse_gate_kinds("replay")) != 1) {
    return fail("gate kind selection");
  }
  // A malformed document must be rejected, not half-aggregated.
  try {
    Report bad;
    accumulate_document(Parser(R"({"schema": "other", "traces": []})")
                            .parse(), &bad);
    return fail("schema check");
  } catch (const std::exception&) {
  }
  std::printf("trace_report --self-test PASSED\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> inputs;
  bool gate_failed_spans = false;
  std::vector<std::string> gate_kinds;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) {
      return self_test();
    }
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--fail-on-failed-spans") == 0) {
      gate_failed_spans = true;
      gate_kinds = parse_gate_kinds("");
    } else if (std::strncmp(argv[i], "--fail-on-failed-spans=", 23) == 0) {
      gate_failed_spans = true;
      gate_kinds = parse_gate_kinds(argv[i] + 23);
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: %s [--out=FILE.json] [--fail-on-failed-spans[=KINDS]] "
          "TRACE_*.json...\n"
          "       %s --self-test\n"
          "Aggregates magicube.trace.v1 documents into per-span-kind "
          "modeled-latency percentiles (markdown to stdout).\n"
          "--fail-on-failed-spans exits nonzero when a gated span kind "
          "carries ok=\"false\" spans (default gate: merge).\n",
          argv[0], argv[0]);
      return 0;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "trace_report: no input files (try --help)\n");
    return 2;
  }
  Report report;
  bool ok = true;
  for (const std::string& path : inputs) {
    ok = accumulate_file(path, &report) && ok;
  }
  print_markdown(report);
  if (!out_path.empty()) ok = write_json(report, out_path) && ok;
  if (gate_failed_spans) {
    const std::size_t bad = gated_failed_spans(report, gate_kinds);
    std::string joined;
    for (const std::string& k : gate_kinds) {
      joined += (joined.empty() ? "" : ",") + k;
    }
    std::printf("\nfailed-span gate over [%s]: %zu failed span(s) — %s\n",
                joined.c_str(), bad, bad == 0 ? "PASS" : "FAIL");
    ok = ok && bad == 0;
  }
  return ok ? 0 : 1;
}
