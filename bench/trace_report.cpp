// Trace regression report: aggregates the TRACE_*.json artifacts the
// serving benches export (serve/trace.cpp's magicube.trace.v1 documents)
// into per-span-kind latency percentiles.
//
// CI pipes the stdout markdown into $GITHUB_STEP_SUMMARY after the soak
// benches run, so a reviewer reads p50/p99/max modeled span durations per
// kind (queue, replay, retry, shed, replace, ...) without downloading the
// artifact; --out=FILE.json additionally emits a machine-readable
// magicube.trace_report.v1 document that rides next to the BENCH_*.json
// uploads. Durations are *modeled* microseconds (end - begin on the
// request's modeled timeline), the same clock the placement and the gates
// reason about — zero-width marker spans (price, place, shed, merge)
// aggregate like everything else, their counts being the interesting part.
//
// --self-test runs the aggregation against an in-process document and is
// registered as the bench-smoke CTest entry (the tool has no recorded
// bars of its own — it reports; the soak gates).
//
// Parsing uses tests/support/json.hpp — the same reader the trace schema
// tests trust, so the report stays honest about well-formedness.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace {

using magicube::testjson::Parser;
using magicube::testjson::Value;

struct KindStats {
  std::vector<double> durations_us;
  std::size_t failed_spans = 0;  // spans with ok="false"
};

struct Report {
  std::map<std::string, KindStats> kinds;  // ordered for stable output
  std::size_t files = 0;
  std::size_t traces = 0;
  std::size_t traces_failed = 0;
  std::size_t traces_dropped = 0;  // ring-capacity drops reported upstream
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void accumulate_document(const Value& doc, Report* report) {
  const Value* schema = doc.find("schema");
  if (schema == nullptr || schema->str != "magicube.trace.v1") {
    throw std::runtime_error("not a magicube.trace.v1 document");
  }
  const Value* dropped = doc.find("dropped");
  if (dropped != nullptr) {
    report->traces_dropped += static_cast<std::size_t>(dropped->num);
  }
  for (const Value& trace : doc.at("traces").arr) {
    report->traces += 1;
    const Value* ok = trace.find("ok");
    if (ok != nullptr && !ok->b) report->traces_failed += 1;
    for (const Value& span : trace.at("spans").arr) {
      KindStats& ks = report->kinds[span.at("name").str];
      const double begin = span.at("begin").num;
      const double end = span.at("end").num;
      ks.durations_us.push_back((end - begin) * 1e6);
      const Value* attrs = span.find("attrs");
      if (attrs != nullptr) {
        const Value* span_ok = attrs->find("ok");
        if (span_ok != nullptr && span_ok->str == "false") {
          ks.failed_spans += 1;
        }
      }
    }
  }
}

bool accumulate_file(const std::string& path, Report* report) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    accumulate_document(Parser(ss.str()).parse(), report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_report: %s: %s\n", path.c_str(), e.what());
    return false;
  }
  report->files += 1;
  return true;
}

void print_markdown(const Report& r) {
  std::printf("### Trace regression report\n\n");
  std::printf("%zu file(s), %zu trace(s), %zu failed, %zu dropped by the "
              "ring\n\n",
              r.files, r.traces, r.traces_failed, r.traces_dropped);
  std::printf("| span kind | count | failed | p50 (us) | p99 (us) | max "
              "(us) |\n");
  std::printf("|---|---|---|---|---|---|\n");
  for (const auto& [kind, stats] : r.kinds) {
    std::vector<double> sorted = stats.durations_us;
    std::sort(sorted.begin(), sorted.end());
    std::printf("| %s | %zu | %zu | %.2f | %.2f | %.2f |\n", kind.c_str(),
                sorted.size(), stats.failed_spans, percentile(sorted, 0.5),
                percentile(sorted, 0.99), sorted.empty() ? 0.0
                                                         : sorted.back());
  }
  std::printf("\nDurations are modeled microseconds on each request's own "
              "timeline.\n");
}

bool write_json(const Report& r, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "trace_report: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"schema\": \"magicube.trace_report.v1\",\n";
  out << "  \"files\": " << r.files << ",\n";
  out << "  \"traces\": " << r.traces << ",\n";
  out << "  \"traces_failed\": " << r.traces_failed << ",\n";
  out << "  \"traces_dropped\": " << r.traces_dropped << ",\n";
  out << "  \"kinds\": {";
  bool first = true;
  for (const auto& [kind, stats] : r.kinds) {
    std::vector<double> sorted = stats.durations_us;
    std::sort(sorted.begin(), sorted.end());
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\n    \"%s\": {\"count\": %zu, \"failed\": %zu, "
                  "\"p50_us\": %.6g, \"p99_us\": %.6g, \"max_us\": %.6g}",
                  kind.c_str(), sorted.size(), stats.failed_spans,
                  percentile(sorted, 0.5), percentile(sorted, 0.99),
                  sorted.empty() ? 0.0 : sorted.back());
    out << (first ? "" : ",") << buf;
    first = false;
  }
  out << "\n  }\n}\n";
  return static_cast<bool>(out);
}

/// In-process check of the whole pipeline: parse a known document,
/// aggregate, verify counts and percentiles exactly. Exercised by CTest
/// (bench-smoke label) and safe to run anywhere — no files touched.
int self_test() {
  const std::string doc = R"({
    "schema": "magicube.trace.v1", "engine": "device_pool", "dropped": 2,
    "traces": [
      {"ok": true, "spans": [
        {"name": "queue", "begin": 0, "end": 1e-6},
        {"name": "replay", "begin": 1e-6, "end": 5e-6,
         "attrs": {"ok": "true"}}]},
      {"ok": false, "spans": [
        {"name": "replay", "begin": 0, "end": 3e-6,
         "attrs": {"ok": "false"}},
        {"name": "shed", "begin": 3e-6, "end": 3e-6}]}
    ]})";
  Report r;
  accumulate_document(Parser(doc).parse(), &r);
  auto fail = [](const char* what) {
    std::fprintf(stderr, "trace_report --self-test FAILED: %s\n", what);
    return 1;
  };
  if (r.traces != 2 || r.traces_failed != 1 || r.traces_dropped != 2) {
    return fail("trace counts");
  }
  if (r.kinds.size() != 3 || r.kinds.count("queue") == 0 ||
      r.kinds.count("replay") == 0 || r.kinds.count("shed") == 0) {
    return fail("span kinds");
  }
  const KindStats& replay = r.kinds.at("replay");
  if (replay.durations_us.size() != 2 || replay.failed_spans != 1) {
    return fail("replay aggregation");
  }
  std::vector<double> sorted = replay.durations_us;
  std::sort(sorted.begin(), sorted.end());
  if (std::abs(percentile(sorted, 0.5) - 3.5) > 1e-9 ||
      std::abs(sorted.back() - 4.0) > 1e-9) {
    return fail("replay percentiles");
  }
  if (r.kinds.at("shed").durations_us.front() != 0.0) {
    return fail("zero-width shed span");
  }
  // A malformed document must be rejected, not half-aggregated.
  try {
    Report bad;
    accumulate_document(Parser(R"({"schema": "other", "traces": []})")
                            .parse(), &bad);
    return fail("schema check");
  } catch (const std::exception&) {
  }
  std::printf("trace_report --self-test PASSED\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) {
      return self_test();
    }
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: %s [--out=FILE.json] TRACE_*.json...\n"
                  "       %s --self-test\n"
                  "Aggregates magicube.trace.v1 documents into per-span-kind "
                  "modeled-latency percentiles (markdown to stdout).\n",
                  argv[0], argv[0]);
      return 0;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "trace_report: no input files (try --help)\n");
    return 2;
  }
  Report report;
  bool ok = true;
  for (const std::string& path : inputs) {
    ok = accumulate_file(path, &report) && ok;
  }
  print_markdown(report);
  if (!out_path.empty()) ok = write_json(report, out_path) && ok;
  return ok ? 0 : 1;
}
