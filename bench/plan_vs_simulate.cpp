// Replay engines vs lane-accurate simulation: wall-clock comparison of the
// block-panel replay (ExecMode::fast, ReplayKernel::panel — the default),
// the PR-3 per-fragment replay (ReplayKernel::fragment) and
// ExecMode::simulate, plus the one-time plan-build cost, on the Fig. 12
// SpMM shapes (uniform DLMC-style patterns, every precision pair) and the
// Fig. 13 SDDMM pairs.
//
// Bit-exactness and counter equality across all three engines are
// re-asserted inline on every shape before timing (a bench that measured a
// wrong kernel would be worse than no bench). The enforced acceptance
// gates compare against the *recorded baseline* JSON in bench/baselines/
// (bars rise by re-recording, never by editing code):
//   * aggregate SpMM panel-vs-simulate speedup >= recorded bar
//   * aggregate SpMM panel-vs-fragment speedup >= recorded bar (the
//     micro-kernel must keep beating the engine it replaced)
// The binary exits nonzero on a miss, so the bench-smoke CTest
// registration turns a fast-path regression into a red build. Sanitizer
// builds report without enforcing (distorted timings).
//
// Like serve_throughput, --smoke is peeled off argv and the rest forwards
// to google-benchmark (--benchmark_out, ...); CI uploads the JSON so the
// BENCH_* perf trajectory populates — once per MAGICUBE_SIMD leg.

#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "core/plan.hpp"
#include "simt/tensor_core.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MAGICUBE_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MAGICUBE_BENCH_SANITIZED 1
#endif
#endif
#ifndef MAGICUBE_BENCH_SANITIZED
#define MAGICUBE_BENCH_SANITIZED 0
#endif

#ifndef MAGICUBE_BENCH_BASELINE_DIR
#define MAGICUBE_BENCH_BASELINE_DIR "bench/baselines"
#endif

namespace {

using namespace magicube;
using Clock = std::chrono::steady_clock;

struct Shape {
  std::size_t m = 512, k = 512, n = 512;
  double sparsity = 0.9;
  int v = 8;
  int reps = 3;  // interleaved timing rounds (plan built once)
};

Shape shape_for(bool smoke) {
  Shape s;
  if (smoke) {
    s.m = 128;
    s.k = 128;
    s.n = 128;
    s.reps = 5;
  }
  return s;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Times a contiguous batch of `reps` calls of `fn` and folds the per-call
/// mean into `best` (minimum over rounds). Each mode is timed in its own
/// warm batch — steady-state is what plan replay looks like in serving
/// traffic, and interleaving the modes would hand the replay a cache
/// thrashed by the simulator every round — while min-over-rounds keeps the
/// estimate robust when the bench shares the machine (CTest runs the smoke
/// registration alongside other tests).
template <typename Fn>
void time_batch_min(int reps, Fn&& fn, double& best) {
  const auto start = Clock::now();
  for (int i = 0; i < reps; ++i) fn();
  best = std::min(best, seconds_since(start) / reps);
}

constexpr int kTimingRounds = 2;

struct OpTimings {
  double simulate_s = 1e30, fragment_s = 1e30, panel_s = 1e30;
  double plan_build_s = 0;
  /// Plan-recorded bucket census (which specialized kernel each block row /
  /// block replays through) — surfaced in the table and the JSON artifact.
  std::array<std::uint64_t, simt::kSpmmBucketKinds> spmm_buckets{};
  std::array<std::uint64_t, simt::kSddmmBucketKinds> sddmm_buckets{};
};

OpTimings time_spmm(const Shape& shape, PrecisionPair prec,
                    std::uint64_t seed) {
  Rng rng(seed);
  const auto pattern = sparse::make_uniform_pattern(shape.m, shape.k, shape.v,
                                                    shape.sparsity, rng);
  const auto a_vals = core::random_values(shape.m, shape.k, prec.lhs, rng);
  const auto b_vals = core::random_values(shape.k, shape.n, prec.rhs, rng);

  core::SpmmConfig cfg;
  cfg.precision = prec;
  const auto a = core::prepare_spmm_lhs(pattern, a_vals, prec,
                                        core::needs_shuffle(cfg));
  const auto b = core::prepare_spmm_rhs(b_vals, prec);

  OpTimings t;
  auto start = Clock::now();
  const core::SpmmPlanHandle plan = core::build_spmm_plan(a, shape.n, cfg);
  t.plan_build_s = seconds_since(start);
  t.spmm_buckets = plan->run.counters.spmm_bucket_blocks;

  // Correctness anchor before timing: all three engines bit-exact, counters
  // equal.
  cfg.mode = core::ExecMode::simulate;
  const core::SpmmResult sim = core::spmm(a, b, cfg);
  cfg.mode = core::ExecMode::fast;
  cfg.replay = core::ReplayKernel::fragment;
  const core::SpmmResult frag = core::spmm(a, b, cfg, *plan);
  cfg.replay = core::ReplayKernel::panel;
  const core::SpmmResult panel = core::spmm(a, b, cfg, *plan);
  MAGICUBE_CHECK_MSG(frag.c == sim.c, "fragment/simulate result mismatch");
  MAGICUBE_CHECK_MSG(panel.c == sim.c, "panel/simulate result mismatch");
  MAGICUBE_CHECK_MSG(panel.run.counters == sim.run.counters,
                     "fast/simulate counter mismatch");

  for (int round = 0; round < kTimingRounds; ++round) {
    cfg.mode = core::ExecMode::simulate;
    cfg.replay = std::nullopt;
    time_batch_min(
        shape.reps, [&] { benchmark::DoNotOptimize(core::spmm(a, b, cfg)); },
        t.simulate_s);
    cfg.mode = core::ExecMode::fast;
    cfg.replay = core::ReplayKernel::fragment;
    time_batch_min(
        shape.reps,
        [&] { benchmark::DoNotOptimize(core::spmm(a, b, cfg, *plan)); },
        t.fragment_s);
    cfg.replay = core::ReplayKernel::panel;
    time_batch_min(
        shape.reps,
        [&] { benchmark::DoNotOptimize(core::spmm(a, b, cfg, *plan)); },
        t.panel_s);
  }
  return t;
}

OpTimings time_sddmm(const Shape& shape, PrecisionPair prec,
                     std::uint64_t seed) {
  Rng rng(seed);
  // K must satisfy the SDDMM alignment on both datapaths.
  const std::size_t k = shape.k;
  const auto pattern = sparse::make_uniform_pattern(shape.m, shape.n, shape.v,
                                                    shape.sparsity, rng);
  const auto a_vals = core::random_values(shape.m, k, prec.lhs, rng);
  const auto b_vals = core::random_values(k, shape.n, prec.rhs, rng);

  core::SddmmConfig cfg;
  cfg.precision = prec;
  const int chunk = core::rhs_chunk_bits(prec);
  const auto a = core::prepare_dense(a_vals, prec.lhs, true, chunk);
  const auto b = core::prepare_dense(b_vals, prec.rhs, false, chunk);

  OpTimings t;
  auto start = Clock::now();
  const core::SddmmPlanHandle plan = core::build_sddmm_plan(pattern, k, cfg);
  t.plan_build_s = seconds_since(start);
  t.sddmm_buckets = plan->run.counters.sddmm_bucket_blocks;

  cfg.mode = core::ExecMode::simulate;
  const core::SddmmResult sim = core::sddmm(a, b, pattern, cfg);
  cfg.mode = core::ExecMode::fast;
  cfg.replay = core::ReplayKernel::fragment;
  const core::SddmmResult frag = core::sddmm(a, b, pattern, cfg, *plan);
  cfg.replay = core::ReplayKernel::panel;
  const core::SddmmResult panel = core::sddmm(a, b, pattern, cfg, *plan);
  MAGICUBE_CHECK_MSG(frag.c.values == sim.c.values,
                     "fragment/simulate result mismatch");
  MAGICUBE_CHECK_MSG(panel.c.values == sim.c.values,
                     "panel/simulate result mismatch");
  MAGICUBE_CHECK_MSG(panel.run.counters == sim.run.counters,
                     "fast/simulate counter mismatch");

  for (int round = 0; round < kTimingRounds; ++round) {
    cfg.mode = core::ExecMode::simulate;
    cfg.replay = std::nullopt;
    time_batch_min(
        shape.reps,
        [&] { benchmark::DoNotOptimize(core::sddmm(a, b, pattern, cfg)); },
        t.simulate_s);
    cfg.mode = core::ExecMode::fast;
    cfg.replay = core::ReplayKernel::fragment;
    time_batch_min(
        shape.reps,
        [&] {
          benchmark::DoNotOptimize(core::sddmm(a, b, pattern, cfg, *plan));
        },
        t.fragment_s);
    cfg.replay = core::ReplayKernel::panel;
    time_batch_min(
        shape.reps,
        [&] {
          benchmark::DoNotOptimize(core::sddmm(a, b, pattern, cfg, *plan));
        },
        t.panel_s);
  }
  return t;
}

bool g_smoke = false;

bool comparison_table(bool smoke) {
  const Shape shape = shape_for(smoke);
  std::printf("== replay engines: panel vs fragment vs ExecMode::simulate"
              "%s (SIMD micro-kernel: %s) ==\n",
              smoke ? " [smoke]" : "",
              simt::simd_enabled() ? "on" : "off (scalar fallback)");
  std::printf("SpMM shapes (Fig. 12): M=%zu K=%zu N=%zu V=%d, sparsity "
              "%.2f; SDDMM (Fig. 13) on the M x N pattern at K=%zu\n\n",
              shape.m, shape.k, shape.n, shape.v, shape.sparsity, shape.k);

  bench::Table table({"op", "precision", "simulate (ms)", "fragment (ms)",
                      "panel (ms)", "panel vs sim", "panel vs frag",
                      "plan build (ms)"});
  double sim_total = 0, frag_total = 0, panel_total = 0;
  std::array<std::uint64_t, simt::kSpmmBucketKinds> spmm_buckets{};
  std::array<std::uint64_t, simt::kSddmmBucketKinds> sddmm_buckets{};

  const PrecisionPair spmm_pairs[] = {
      precision::L16R16, precision::L16R8, precision::L8R8,
      precision::L16R4,  precision::L12R4, precision::L8R4,
      precision::L4R4};
  for (const PrecisionPair prec : spmm_pairs) {
    const OpTimings t =
        time_spmm(shape, prec, 0x916 + bits_of(prec.lhs) * 8u +
                                   static_cast<unsigned>(bits_of(prec.rhs)));
    sim_total += t.simulate_s;
    frag_total += t.fragment_s;
    panel_total += t.panel_s;
    for (std::size_t i = 0; i < spmm_buckets.size(); ++i) {
      spmm_buckets[i] += t.spmm_buckets[i];
    }
    table.add_row({"spmm", to_string(prec), bench::fmt(t.simulate_s * 1e3, 2),
                   bench::fmt(t.fragment_s * 1e3, 2),
                   bench::fmt(t.panel_s * 1e3, 2),
                   bench::fmt(t.simulate_s / t.panel_s, 2) + "x",
                   bench::fmt(t.fragment_s / t.panel_s, 2) + "x",
                   bench::fmt(t.plan_build_s * 1e3, 3)});
  }

  const PrecisionPair sddmm_pairs[] = {precision::L8R8, precision::L4R4,
                                       precision::L16R16};
  for (const PrecisionPair prec : sddmm_pairs) {
    const OpTimings t = time_sddmm(shape, prec, 0x5dd1 + bits_of(prec.lhs));
    for (std::size_t i = 0; i < sddmm_buckets.size(); ++i) {
      sddmm_buckets[i] += t.sddmm_buckets[i];
    }
    table.add_row({"sddmm", to_string(prec),
                   bench::fmt(t.simulate_s * 1e3, 2),
                   bench::fmt(t.fragment_s * 1e3, 2),
                   bench::fmt(t.panel_s * 1e3, 2),
                   bench::fmt(t.simulate_s / t.panel_s, 2) + "x",
                   bench::fmt(t.fragment_s / t.panel_s, 2) + "x",
                   bench::fmt(t.plan_build_s * 1e3, 3)});
  }
  table.print();

  // Bucket census across all shapes: which specialized replay kernel the
  // plans selected per block row (SpMM) / block (SDDMM).
  std::printf("\nspmm bucket census (block rows x column blocks):");
  for (std::size_t i = 0; i < spmm_buckets.size(); ++i) {
    std::printf(" %s=%llu",
                core::to_string(static_cast<core::PanelKernelId>(i)),
                static_cast<unsigned long long>(spmm_buckets[i]));
  }
  std::printf("\nsddmm bucket census (blocks):");
  for (std::size_t i = 0; i < sddmm_buckets.size(); ++i) {
    std::printf(" %s=%llu",
                core::to_string(static_cast<core::SddmmKernelId>(i)),
                static_cast<unsigned long long>(sddmm_buckets[i]));
  }
  std::printf("\n");

  const double vs_sim = sim_total / panel_total;
  const double vs_frag = frag_total / panel_total;

  const bench::Baselines bars = bench::load_baselines(
      MAGICUBE_BENCH_BASELINE_DIR, "plan_vs_simulate.json");
  // Bars are recorded per shape set and per MAGICUBE_SIMD build flavor (the
  // scalar fallback is a correctness kernel first; its bar only guards
  // against pathological regressions).
  const std::string prefix = std::string(smoke ? "smoke_" : "full_") +
                             (simt::simd_enabled() ? "simd_" : "scalar_");
  bool bars_ok = bars.loaded;
  double sim_bar = 0, frag_bar = 0;
  if (bars.loaded) {
    sim_bar = bars.get(prefix + "spmm_panel_vs_simulate_min", &bars_ok);
    frag_bar = bars.get(prefix + "spmm_panel_vs_fragment_min", &bars_ok);
  }

  bool gate = true;
  if (!bars_ok) {
    std::printf("\ncannot read recorded baselines from %s — gate FAILED\n",
                bars.path.c_str());
    gate = false;
  } else {
    const bool sim_ok = vs_sim >= sim_bar;
    const bool frag_ok = vs_frag >= frag_bar;
    gate = sim_ok && frag_ok;
    std::printf("\naggregate SpMM panel-vs-simulate speedup: %.2fx "
                "(recorded bar: >= %.2fx) — %s\n",
                vs_sim, sim_bar, sim_ok ? "PASS" : "FAIL");
    std::printf("aggregate SpMM panel-vs-fragment speedup: %.2fx "
                "(recorded bar: >= %.2fx) — %s\n",
                vs_frag, frag_bar, frag_ok ? "PASS" : "FAIL");
    std::printf("(bars recorded in %s; raise them by re-recording, not by "
                "editing the gate)%s\n\n",
                bars.path.c_str(),
                MAGICUBE_BENCH_SANITIZED
                    ? " [sanitized build: gates reported, not enforced]"
                    : "");
  }
  return gate || MAGICUBE_BENCH_SANITIZED;
}

// google-benchmark cases (JSON-artifact surface), smoke-sized in CI.
void BM_SpmmSimulate(benchmark::State& state) {
  const Shape shape = shape_for(g_smoke);
  Rng rng(1);
  const auto pattern = sparse::make_uniform_pattern(shape.m, shape.k, shape.v,
                                                    shape.sparsity, rng);
  const auto a_vals = core::random_values(shape.m, shape.k, Scalar::s8, rng);
  const auto b_vals = core::random_values(shape.k, shape.n, Scalar::s8, rng);
  core::SpmmConfig cfg;
  cfg.mode = core::ExecMode::simulate;
  const auto a = core::prepare_spmm_lhs(pattern, a_vals, cfg.precision,
                                        core::needs_shuffle(cfg));
  const auto b = core::prepare_spmm_rhs(b_vals, cfg.precision);
  for (auto _ : state) benchmark::DoNotOptimize(core::spmm(a, b, cfg));
}
BENCHMARK(BM_SpmmSimulate)->Unit(benchmark::kMillisecond);

void BM_SpmmPanelReplay(benchmark::State& state) {
  const Shape shape = shape_for(g_smoke);
  Rng rng(1);
  const auto pattern = sparse::make_uniform_pattern(shape.m, shape.k, shape.v,
                                                    shape.sparsity, rng);
  const auto a_vals = core::random_values(shape.m, shape.k, Scalar::s8, rng);
  const auto b_vals = core::random_values(shape.k, shape.n, Scalar::s8, rng);
  core::SpmmConfig cfg;
  cfg.mode = core::ExecMode::fast;
  cfg.replay = core::ReplayKernel::panel;
  const auto a = core::prepare_spmm_lhs(pattern, a_vals, cfg.precision,
                                        core::needs_shuffle(cfg));
  const auto b = core::prepare_spmm_rhs(b_vals, cfg.precision);
  const auto plan = core::build_spmm_plan(a, shape.n, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::spmm(a, b, cfg, *plan));
  }
  // Per-bucket kernel-id census into the JSON artifact (BENCH_* trajectory).
  for (std::size_t i = 0; i < simt::kSpmmBucketKinds; ++i) {
    state.counters[std::string("bucket_") +
                   core::to_string(static_cast<core::PanelKernelId>(i))] =
        static_cast<double>(plan->run.counters.spmm_bucket_blocks[i]);
  }
}
BENCHMARK(BM_SpmmPanelReplay)->Unit(benchmark::kMillisecond);

void BM_SpmmFragmentReplay(benchmark::State& state) {
  const Shape shape = shape_for(g_smoke);
  Rng rng(1);
  const auto pattern = sparse::make_uniform_pattern(shape.m, shape.k, shape.v,
                                                    shape.sparsity, rng);
  const auto a_vals = core::random_values(shape.m, shape.k, Scalar::s8, rng);
  const auto b_vals = core::random_values(shape.k, shape.n, Scalar::s8, rng);
  core::SpmmConfig cfg;
  cfg.mode = core::ExecMode::fast;
  cfg.replay = core::ReplayKernel::fragment;
  const auto a = core::prepare_spmm_lhs(pattern, a_vals, cfg.precision,
                                        core::needs_shuffle(cfg));
  const auto b = core::prepare_spmm_rhs(b_vals, cfg.precision);
  const auto plan = core::build_spmm_plan(a, shape.n, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::spmm(a, b, cfg, *plan));
  }
}
BENCHMARK(BM_SpmmFragmentReplay)->Unit(benchmark::kMillisecond);

void BM_SpmmPlanBuild(benchmark::State& state) {
  const Shape shape = shape_for(g_smoke);
  Rng rng(1);
  const auto pattern = sparse::make_uniform_pattern(shape.m, shape.k, shape.v,
                                                    shape.sparsity, rng);
  const auto a_vals = core::random_values(shape.m, shape.k, Scalar::s8, rng);
  core::SpmmConfig cfg;
  const auto a = core::prepare_spmm_lhs(pattern, a_vals, cfg.precision,
                                        core::needs_shuffle(cfg));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_spmm_plan(a, shape.n, cfg));
  }
}
BENCHMARK(BM_SpmmPlanBuild)->Unit(benchmark::kMillisecond);

void BM_SddmmPanelReplay(benchmark::State& state) {
  const Shape shape = shape_for(g_smoke);
  Rng rng(2);
  const auto pattern = sparse::make_uniform_pattern(shape.m, shape.n, shape.v,
                                                    shape.sparsity, rng);
  const auto a_vals = core::random_values(shape.m, shape.k, Scalar::s8, rng);
  const auto b_vals = core::random_values(shape.k, shape.n, Scalar::s8, rng);
  core::SddmmConfig cfg;
  cfg.mode = core::ExecMode::fast;
  cfg.replay = core::ReplayKernel::panel;
  const auto a = core::prepare_dense(a_vals, Scalar::s8, true, 8);
  const auto b = core::prepare_dense(b_vals, Scalar::s8, false, 8);
  const auto plan = core::build_sddmm_plan(pattern, shape.k, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sddmm(a, b, pattern, cfg, *plan));
  }
  for (std::size_t i = 0; i < simt::kSddmmBucketKinds; ++i) {
    state.counters[std::string("bucket_") +
                   core::to_string(static_cast<core::SddmmKernelId>(i))] =
        static_cast<double>(plan->run.counters.sddmm_bucket_blocks[i]);
  }
}
BENCHMARK(BM_SddmmPanelReplay)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Forwards unrecognized flags (--benchmark_out, ...) to google-benchmark,
  // so it peels --smoke off itself instead of using bench::parse_args.
  std::vector<char*> fwd = {argv[0]};
  bool help = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      if (std::strcmp(argv[i], "--help") == 0 ||
          std::strcmp(argv[i], "-h") == 0) {
        help = true;
      }
      fwd.push_back(argv[i]);
    }
  }
  bool gate_passed = true;
  if (help) {
    std::printf("usage: %s [--smoke] [--benchmark_* flags]\n"
                "  --smoke  tiny shapes, a few seconds\n"
                "  other flags forward to google-benchmark (below)\n\n",
                argv[0]);
  } else {
    gate_passed = comparison_table(g_smoke);
  }
  int bench_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&bench_argc, fwd.data());
  benchmark::RunSpecifiedBenchmarks();
  return gate_passed ? 0 : 1;
}
