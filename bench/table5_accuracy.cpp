// E7 — Table V: test accuracy of the sparse-Transformer classifier under
// every kernel scheme.
//
// Substitution note (documented in DESIGN.md): the paper trains an LRA text
// classifier at seq_len 4096 on GPUs; here a synthetic long-range task at
// seq_len 64 is trained in fp32 on the host (dense, plus finetuned variants
// for each sparse mask, mirroring "train with dense and sparse attention
// masks ... and finetune it for quantization"). Evaluation routes the
// trained model's attention through the *actual simulated kernels*: dense
// fp16 GEMMs, vectorSparse fp16 SDDMM/SpMM, and Magicube's quantized
// integer pipeline of Fig. 16 — so sparsity and quantization degrade
// accuracy through exactly the mechanisms the paper measures.

#include <cstdio>

#include "bench_util.hpp"
#include "transformer/model.hpp"

using namespace magicube;
using namespace magicube::transformer;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  std::printf("== E7 / Table V: test accuracy of the sparse Transformer "
              "classifier%s ==\n\n", opt.smoke ? " [smoke]" : "");
  constexpr std::size_t kSeqLen = 64;
  const std::size_t kTrain = opt.smoke ? 32 : 192;
  const std::size_t kTest = opt.smoke ? 32 : 256;
  const int kEpochs = opt.smoke ? 2 : 12;

  Rng data_rng(0x7ab1e5);
  const auto train_set = make_dataset(kTrain, kSeqLen, data_rng);
  const auto test_set = make_dataset(kTest, kSeqLen, data_rng);

  // Full (dense) pattern used to evaluate the dense schemes through the
  // same masked-softmax machinery.
  Rng mask_rng(0xfeed);
  const auto dense_mask =
      sparse::make_uniform_pattern(kSeqLen, kSeqLen, 8, 0.0, mask_rng);
  const auto mask90 =
      sparse::make_attention_mask_pattern(kSeqLen, 8, 0.9, mask_rng);
  const auto mask95 =
      sparse::make_attention_mask_pattern(kSeqLen, 8, 0.95, mask_rng);

  // Dense-trained model.
  TinyTransformer dense_model;
  dense_model.seq_len = kSeqLen;
  Rng init_rng(0x11117);
  dense_model.init(init_rng);
  const auto dense_stats =
      train(dense_model, train_set, nullptr, kEpochs, 2e-3, init_rng);
  std::printf("dense training:   loss %.3f, train acc %.3f\n",
              dense_stats.final_loss, dense_stats.train_accuracy);

  // Sparse-finetuned models (trained with the mask applied).
  auto finetune = [&](const sparse::BlockPattern& mask) {
    TinyTransformer m = dense_model;
    Rng r(0x22227);
    train(m, train_set, &mask, kEpochs / 2, 1e-3, r);
    return m;
  };
  const TinyTransformer model90 = finetune(mask90);
  const TinyTransformer model95 = finetune(mask95);
  std::printf("finetuned models for sparsity 0.90 and 0.95\n\n");

  bench::Table table({"configuration", "scheme", "test accuracy"});
  table.add_row({"dense", "PyTorch (fp32)",
                 bench::fmt(100.0 * evaluate_fp32(dense_model, test_set,
                                                  nullptr),
                            2) + "%"});
  table.add_row({"dense", "PyTorch+cuDNN (fp16)",
                 bench::fmt(100.0 * evaluate(dense_model, test_set,
                                             dense_mask,
                                             AttentionScheme::dense_fp16),
                            2) + "%"});
  struct SchemeRow {
    AttentionScheme scheme;
    const char* name;
  };
  const SchemeRow rows[] = {
      {AttentionScheme::vector_sparse_fp16, "vectorSparse (fp16)"},
      {AttentionScheme::magicube_16b_8b, "Magicube (16b-8b)"},
      {AttentionScheme::magicube_8b_8b, "Magicube (8b-8b)"},
      {AttentionScheme::magicube_8b_4b, "Magicube (8b-4b)"},
  };
  for (const auto& r : rows) {
    table.add_row({"sparsity=0.90", r.name,
                   bench::fmt(100.0 * evaluate(model90, test_set, mask90,
                                               r.scheme),
                              2) + "%"});
  }
  for (const auto& r : rows) {
    table.add_row({"sparsity=0.95", r.name,
                   bench::fmt(100.0 * evaluate(model95, test_set, mask95,
                                               r.scheme),
                              2) + "%"});
  }
  table.print();
  std::printf(
      "\nExpected shape (paper: 57.50 / 57.14 / 57.32 / 57.11 / 56.79 and\n"
      "56.21 / 55.79 / 55.62 / 55.73): dense fp16 ~= fp32; 16b-8b tracks\n"
      "the fp16 sparse model; 8-bit softmax output costs a little more;\n"
      "sparsity 0.95 drops roughly another point. Absolute values differ\n"
      "(synthetic task), the ordering and deltas are the reproduction.\n");
  return 0;
}
