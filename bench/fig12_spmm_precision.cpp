// E2 — Fig. 12: SpMM TOP/s across the DLMC collection for every supported
// precision pair, sparsity in {0.5,...,0.98} and V in {2,4,8}, N = 512.
// Reported value per cell: geometric mean of per-matrix TOP/s over the
// 256-matrix slice, exactly how §V aggregates.

#include <atomic>
#include <cstdio>
#include <mutex>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "core/api.hpp"
#include "dlmc/dlmc.hpp"

using namespace magicube;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  const std::size_t n = opt.smoke ? 128 : 512;
  std::printf("== E2 / Fig. 12: Magicube SpMM, precision x sparsity x V "
              "(N=%zu, geomean TOP/s over the DLMC slice)%s ==\n\n",
              n, opt.smoke ? " [smoke]" : "");
  const std::size_t matrices_per_level = bench::dlmc_matrices_per_level(opt);
  const std::vector<double> levels =
      bench::dlmc_levels(opt, dlmc::sparsity_levels());
  const PrecisionPair precisions[] = {
      precision::L16R16, precision::L16R8, precision::L8R8,
      precision::L16R4,  precision::L12R4, precision::L8R4,
      precision::L4R4};

  for (double sparsity : levels) {
    bench::Table table({"precision", "V=2", "V=4", "V=8"});
    const auto specs = dlmc::collection(sparsity, matrices_per_level);

    // geo[prec][v]
    std::vector<std::vector<bench::GeoMean>> geo(
        std::size(precisions), std::vector<bench::GeoMean>(3));
    std::mutex mu;
    parallel_for(specs.size(), [&](std::size_t i) {
      const auto& spec = specs[i];
      for (int vi = 0; vi < 3; ++vi) {
        const int v = 2 << vi;
        const auto pattern = dlmc::instantiate(spec, v);
        const std::uint64_t ops = core::spmm_useful_ops(pattern, n);
        for (std::size_t pi = 0; pi < std::size(precisions); ++pi) {
          core::SpmmConfig cfg;
          cfg.precision = precisions[pi];
          cfg.variant = core::SpmmVariant::full;
          const auto run = core::spmm_estimate(pattern, n, cfg);
          const double t =
              bench::tops(ops, simt::estimate_seconds(simt::a100(), run));
          std::lock_guard<std::mutex> lock(mu);
          geo[pi][static_cast<std::size_t>(vi)].add(t);
        }
      }
    });

    for (std::size_t pi = 0; pi < std::size(precisions); ++pi) {
      table.add_row({to_string(precisions[pi]),
                     bench::fmt(geo[pi][0].mean(), 2),
                     bench::fmt(geo[pi][1].mean(), 2),
                     bench::fmt(geo[pi][2].mean(), 2)});
    }
    std::printf("-- sparsity = %.2f --\n", sparsity);
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): lower precision => higher TOP/s; V=8 > V=4 >\n"
      "V=2; emulated pairs track their RHS datapath closely (cheap\n"
      "emulation); at 0.98 sparsity L16-R4 drops below L8-R8 because the\n"
      "emulation overhead is no longer amortized.\n");
  return 0;
}
