// E6 — Fig. 17: end-to-end sparse-Transformer inference latency.
// 4 encoder layers, head dim 64; panels over sparsity {0.9, 0.95}, sequence
// length {4096, 8192}, heads {4, 8}; bars over batch {2, 8} and scheme
// {PyTorch dense fp16, vectorSparse fp16, Magicube 16b-8b / 8b-8b / 8b-4b /
// 4b-4b}. Dense cells that exceed the 40 GB device OOM, as in the paper.

#include <cstdio>
#include <map>
#include <memory>

#include "bench_util.hpp"
#include "serve/operand_cache.hpp"
#include "transformer/latency.hpp"

using namespace magicube;
using transformer::AttentionScheme;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  std::printf("== E6 / Fig. 17: end-to-end sparse Transformer inference "
              "latency (ms)%s ==\n\n", opt.smoke ? " [smoke]" : "");
  const AttentionScheme schemes[] = {
      AttentionScheme::dense_fp16,      AttentionScheme::vector_sparse_fp16,
      AttentionScheme::magicube_16b_8b, AttentionScheme::magicube_8b_8b,
      AttentionScheme::magicube_8b_4b,  AttentionScheme::magicube_4b_4b};

  const std::vector<std::size_t> seqs =
      opt.smoke ? std::vector<std::size_t>{4096}
                : std::vector<std::size_t>{4096, 8192};
  const std::vector<double> sparsities =
      opt.smoke ? std::vector<double>{0.9} : std::vector<double>{0.9, 0.95};
  const std::vector<int> head_counts =
      opt.smoke ? std::vector<int>{4} : std::vector<int>{4, 8};

  // Mask patterns are shared per (seq_len, sparsity), and each mask gets
  // one AttentionPlanContext over a shared operand cache: the attention
  // execution plans build once per (mask, precision, op) and every layer /
  // batch / head-count sweep replays them — no per-call plan rebuilds.
  const auto plan_cache = std::make_shared<serve::OperandCache>();
  std::map<std::pair<std::size_t, int>, sparse::BlockPattern> masks;
  std::map<std::pair<std::size_t, int>,
           std::unique_ptr<transformer::AttentionPlanContext>>
      plan_contexts;
  for (std::size_t seq : seqs) {
    for (double sparsity : sparsities) {
      Rng rng(0xa77e + seq + static_cast<std::uint64_t>(sparsity * 100));
      const auto key = std::make_pair(seq, static_cast<int>(sparsity * 100));
      masks[key] = sparse::make_attention_mask_pattern(seq, 8, sparsity, rng);
      plan_contexts[key] = std::make_unique<transformer::AttentionPlanContext>(
          plan_cache, masks.at(key));
    }
  }

  for (double sparsity : sparsities) {
    for (std::size_t seq : seqs) {
      for (int heads : head_counts) {
        std::printf("-- sparsity=%.2f  seq_len=%zu  num_heads=%d --\n",
                    sparsity, seq, heads);
        bench::Table table({"scheme", "batch=2", "batch=8",
                            "speedup vs dense (b=2)",
                            "speedup vs vectorSparse (b=2)"});
        const auto& mask =
            masks.at({seq, static_cast<int>(sparsity * 100)});
        transformer::AttentionPlanContext* plans =
            plan_contexts.at({seq, static_cast<int>(sparsity * 100)}).get();
        double dense_b2 = 0.0, vs_b2 = 0.0;
        for (const auto scheme : schemes) {
          std::string cells[2];
          double b2_seconds = 0.0;
          for (int bi = 0; bi < 2; ++bi) {
            transformer::TransformerConfig cfg;
            cfg.layers = 4;
            cfg.heads = heads;
            cfg.head_dim = 64;
            cfg.seq_len = seq;
            cfg.batch = bi == 0 ? 2 : 8;
            cfg.sparsity = sparsity;
            const auto result =
                transformer::transformer_inference(cfg, scheme, mask, plans);
            cells[bi] = result.oom ? "OOM"
                                   : bench::fmt(result.seconds * 1e3, 2);
            if (bi == 0 && !result.oom) b2_seconds = result.seconds;
          }
          if (scheme == AttentionScheme::dense_fp16) dense_b2 = b2_seconds;
          if (scheme == AttentionScheme::vector_sparse_fp16) {
            vs_b2 = b2_seconds;
          }
          table.add_row(
              {to_string(scheme), cells[0], cells[1],
               (dense_b2 > 0 && b2_seconds > 0)
                   ? bench::fmt(dense_b2 / b2_seconds, 2) + "x"
                   : "-",
               (vs_b2 > 0 && b2_seconds > 0)
                   ? bench::fmt(vs_b2 / b2_seconds, 2) + "x"
                   : "-"});
        }
        table.print();
        std::printf("\n");
      }
    }
  }
  std::printf(
      "Expected shape (paper): Magicube 1.4-1.9x over vectorSparse and\n"
      "1.5-1.7x over dense fp16 at seq 4096 / sparsity 0.9; dense OOMs at\n"
      "seq 8192 with batch 8; runtime roughly doubles from 4 to 8 heads;\n"
      "longer sequences and higher sparsity favor the sparse schemes.\n\n");

  // Plan-reuse gate: per mask, the four Magicube schemes touch exactly 2
  // SDDMM plans ({s8,s8} and {s4,s4} — 16b-8b and 8b-8b share the QKV
  // precision) and 4 SpMM plans (distinct {softmax, qkv} pairs), so every
  // lookup beyond those 6 must be a replay. Any extra build means a
  // per-call plan rebuild crept back in.
  constexpr std::uint64_t kPlansPerMask = 6;
  bool reuse_ok = true;
  std::uint64_t builds = 0, replays = 0;
  for (const auto& [key, ctx] : plan_contexts) {
    builds += ctx->plan_builds;
    replays += ctx->plan_replays;
    if (ctx->plan_builds != kPlansPerMask || ctx->plan_replays == 0) {
      reuse_ok = false;
    }
  }
  std::printf("attention plan cache: %llu plans built once, %llu replays "
              "across layers/batches/heads — %s\n",
              static_cast<unsigned long long>(builds),
              static_cast<unsigned long long>(replays),
              reuse_ok ? "no per-call plan rebuilds"
                       : "REBUILD DETECTED (gate failure)");
  return reuse_ok ? 0 : 1;
}
