// E3 — Fig. 13: SDDMM TOP/s across the DLMC collection, basic vs
// LHS-prefetch variants, precisions {L16-R16, L8-R8, L4-R4}, K = 128.
// The finding to reproduce: prefetching the LHS does *not* pay off, because
// the LHS tile is shared and reused by both warps while the RHS register
// loads stay on the critical path (§V-A).

#include <cstdio>
#include <mutex>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "core/api.hpp"
#include "dlmc/dlmc.hpp"

using namespace magicube;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  std::printf("== E3 / Fig. 13: Magicube SDDMM, precision x sparsity x V "
              "(K=128, geomean TOP/s)%s ==\n\n", opt.smoke ? " [smoke]" : "");
  const std::size_t k = 128;
  const std::size_t matrices_per_level = bench::dlmc_matrices_per_level(opt);
  const std::vector<double> levels =
      bench::dlmc_levels(opt, dlmc::sparsity_levels());
  const PrecisionPair precisions[] = {precision::L16R16, precision::L8R8,
                                      precision::L4R4};

  for (double sparsity : levels) {
    bench::Table table({"precision", "variant", "V=2", "V=4", "V=8"});
    const auto specs = dlmc::collection(sparsity, matrices_per_level);

    // geo[prec][prefetch][v]
    std::vector<bench::GeoMean> geo(std::size(precisions) * 2 * 3);
    auto slot = [&](std::size_t pi, int pf, int vi) -> bench::GeoMean& {
      return geo[(pi * 2 + static_cast<std::size_t>(pf)) * 3 +
                 static_cast<std::size_t>(vi)];
    };
    std::mutex mu;
    parallel_for(specs.size(), [&](std::size_t i) {
      const auto& spec = specs[i];
      for (int vi = 0; vi < 3; ++vi) {
        const int v = 2 << vi;
        const auto pattern = dlmc::instantiate(spec, v);
        const std::uint64_t ops = core::sddmm_useful_ops(pattern, k);
        for (std::size_t pi = 0; pi < std::size(precisions); ++pi) {
          for (int pf = 0; pf < 2; ++pf) {
            core::SddmmConfig cfg;
            cfg.precision = precisions[pi];
            cfg.prefetch = pf == 1;
            const auto run = core::sddmm_estimate(pattern, k, cfg);
            const double t =
                bench::tops(ops, simt::estimate_seconds(simt::a100(), run));
            std::lock_guard<std::mutex> lock(mu);
            slot(pi, pf, vi).add(t);
          }
        }
      }
    });

    for (std::size_t pi = 0; pi < std::size(precisions); ++pi) {
      for (int pf = 0; pf < 2; ++pf) {
        table.add_row({to_string(precisions[pi]),
                       pf ? "prefetch" : "basic",
                       bench::fmt(slot(pi, pf, 0).mean(), 2),
                       bench::fmt(slot(pi, pf, 1).mean(), 2),
                       bench::fmt(slot(pi, pf, 2).mean(), 2)});
      }
    }
    std::printf("-- sparsity = %.2f --\n", sparsity);
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): lower precision faster; prefetch rows track\n"
      "the basic rows (no benefit, occasionally marginally slower through\n"
      "the doubled shared-memory footprint).\n");
  return 0;
}
