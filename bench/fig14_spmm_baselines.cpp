// E4 — Fig. 14: SpMM speedup over cublasHgemm (dense fp16) across the DLMC
// collection: cuBLAS fp16/int8, cuSPARSE-like Blocked-ELL fp16/int8,
// vectorSparse-like fp16, Magicube {L16-R8, L8-R8, L8-R4, L4-R4};
// V x N panels, sparsity sweep. Also prints the headline geomeans of §V-B.

#include <cmath>
#include <cstdio>
#include <mutex>

#include "baselines/cusparse_like.hpp"
#include "baselines/dense_gemm.hpp"
#include "baselines/vector_sparse_like.hpp"
#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "core/api.hpp"
#include "dlmc/dlmc.hpp"

using namespace magicube;

namespace {

constexpr const char* kSchemes[] = {
    "cuBLAS(fp16)",   "cuBLAS(int8)",     "cuSPARSE(fp16)",
    "cuSPARSE(int8)", "vectorSparse(f16)", "Magicube L16-R8",
    "Magicube L8-R8", "Magicube L8-R4",   "Magicube L4-R4"};
constexpr std::size_t kNumSchemes = std::size(kSchemes);

/// Seconds per scheme for one dilated matrix.
void scheme_seconds(const sparse::BlockPattern& pattern, std::size_t n,
                    double out[kNumSchemes]) {
  const simt::DeviceSpec& dev = simt::a100();
  const std::size_t m = pattern.rows, k = pattern.cols;
  out[0] = simt::estimate_seconds(dev, baselines::dense_gemm_fp16_estimate(
                                           m, n, k));
  out[1] = simt::estimate_seconds(dev, baselines::dense_gemm_int8_estimate(
                                           m, n, k));
  // Blocked-ELL with the same element density (8x8 blocks).
  const std::uint64_t bell_blocks =
      (m / 8) * static_cast<std::uint64_t>(std::lround(
                    (1.0 - pattern.sparsity()) *
                    static_cast<double>(k) / 8.0));
  out[2] = simt::estimate_seconds(
      dev, baselines::bell_spmm_estimate(m, n, k, bell_blocks, false));
  out[3] = simt::estimate_seconds(
      dev, baselines::bell_spmm_estimate(m, n, k, bell_blocks, true));
  out[4] = simt::estimate_seconds(dev,
                                  baselines::vs_spmm_estimate(pattern, n));
  const PrecisionPair mc[] = {precision::L16R8, precision::L8R8,
                              precision::L8R4, precision::L4R4};
  for (std::size_t i = 0; i < std::size(mc); ++i) {
    core::SpmmConfig cfg;
    cfg.precision = mc[i];
    cfg.variant = core::SpmmVariant::full;
    out[5 + i] =
        simt::estimate_seconds(dev, core::spmm_estimate(pattern, n, cfg));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  std::printf("== E4 / Fig. 14: SpMM speedup over cuBLAS fp16 (geomean over "
              "the DLMC slice)%s ==\n\n", opt.smoke ? " [smoke]" : "");

  // Headline accumulators (V=8, N=256 panel, all 1,536 matrices).
  bench::GeoMean vs_cusparse_int8, vs_cublas_int8, l16r8_vs_vectorsparse;

  const std::vector<double> levels =
      bench::dlmc_levels(opt, dlmc::sparsity_levels());
  const std::size_t matrices_per_level = bench::dlmc_matrices_per_level(opt);
  const std::vector<std::size_t> ns =
      opt.smoke ? std::vector<std::size_t>{256}
                : std::vector<std::size_t>{128, 256};
  const std::vector<int> vs =
      opt.smoke ? std::vector<int>{8} : std::vector<int>{2, 4, 8};
  for (int v : vs) {
    // geo[n][scheme][sparsity]
    std::vector<std::vector<std::vector<bench::GeoMean>>> geo(
        ns.size(), std::vector<std::vector<bench::GeoMean>>(
                       kNumSchemes,
                       std::vector<bench::GeoMean>(levels.size())));
    std::mutex mu;
    for (std::size_t si = 0; si < levels.size(); ++si) {
      const auto specs = dlmc::collection(levels[si], matrices_per_level);
      parallel_for(specs.size(), [&](std::size_t i) {
        const auto pattern = dlmc::instantiate(specs[i], v);
        for (std::size_t ni = 0; ni < ns.size(); ++ni) {
          double secs[kNumSchemes];
          scheme_seconds(pattern, ns[ni], secs);
          std::lock_guard<std::mutex> lock(mu);
          for (std::size_t s = 0; s < kNumSchemes; ++s) {
            geo[ni][s][si].add(secs[0] / secs[s]);  // vs cuBLAS fp16
          }
          if (v == 8 && ns[ni] == 256) {
            vs_cusparse_int8.add(secs[3] / secs[6]);   // L8R8 / cuSPARSE i8
            vs_cublas_int8.add(secs[1] / secs[6]);     // L8R8 / cuBLAS i8
            l16r8_vs_vectorsparse.add(secs[4] / secs[5]);
          }
        }
      });
    }
    for (std::size_t ni = 0; ni < ns.size(); ++ni) {
      std::vector<std::string> headers = {"scheme"};
      for (double s : levels) headers.push_back("s=" + bench::fmt(s, 2));
      bench::Table table(std::move(headers));
      for (std::size_t s = 0; s < kNumSchemes; ++s) {
        std::vector<std::string> row = {kSchemes[s]};
        for (std::size_t si = 0; si < levels.size(); ++si) {
          row.push_back(bench::fmt(geo[ni][s][si].mean(), 2));
        }
        table.add_row(std::move(row));
      }
      std::printf("-- V = %d, N = %zu --\n", v, ns[ni]);
      table.print();
      std::printf("\n");
    }
  }

  std::printf("Headline comparisons (V=8, N=256, %s; paper values "
              "in brackets):\n",
              opt.smoke ? "[smoke] slice only — not comparable"
                        : "all matrices");
  std::printf("  Magicube(L8-R8) vs cuSPARSE(int8): geomean %.2fx, "
              "max %.2fx   [1.44x, 2.37x]\n",
              vs_cusparse_int8.mean(), vs_cusparse_int8.max_value);
  std::printf("  Magicube(L8-R8) vs cuBLAS(int8):   geomean %.2fx, "
              "max %.2fx   [2.88x, 15.26x]\n",
              vs_cublas_int8.mean(), vs_cublas_int8.max_value);
  std::printf("  Magicube(L16-R8) vs vectorSparse:  geomean %.2fx, "
              "max %.2fx   [2.50x, 5.27x]\n",
              l16r8_vs_vectorsparse.mean(),
              l16r8_vs_vectorsparse.max_value);
  return 0;
}
