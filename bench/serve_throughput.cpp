// Serving-engine throughput: cached + batched execution vs. the naive
// prepare-per-request loop on a repeated-pattern traffic mix.
//
// The traffic model is a Transformer serving loop: a fixed set of pruned
// weight-matrix patterns (layers) is hit over and over by client requests,
// and one activation batch is reused across the layers it feeds (rhs_id).
// The naive loop re-runs quantize → SR-BCRS encode → plane decomposition for
// every request; the engine memoizes preparation in the OperandCache and
// dispatches compatible requests as batches over the thread pool. The
// aggregate speedup (total naive time / total engine time across the
// precision pairs) is the enforced acceptance gate: the binary exits
// nonzero when the engine fails to beat the naive loop overall, so the
// bench-smoke CTest registration catches a regression; per-pair speedups
// are reported but not individually gated (they are noisier), and
// sanitizer builds report without enforcing (distorted timings).
//
// Like table2_peak_validation, this binary peels --smoke off argv and
// forwards the rest (--benchmark_format, --benchmark_out, ...) to
// google-benchmark; CI uploads the JSON for perf-trajectory tracking.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "serve/serve.hpp"

// Sanitizer builds distort relative timings (and run on loaded CI runners),
// so the speedup gate reports without failing the process there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MAGICUBE_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MAGICUBE_BENCH_SANITIZED 1
#endif
#endif
#ifndef MAGICUBE_BENCH_SANITIZED
#define MAGICUBE_BENCH_SANITIZED 0
#endif

namespace {

using namespace magicube;
using Clock = std::chrono::steady_clock;

struct TrafficShape {
  std::size_t m = 512, k = 512, n = 128;
  std::size_t distinct_patterns = 8;   // weight matrices in rotation
  std::size_t distinct_activations = 4;
  std::size_t requests = 256;
  double sparsity = 0.9;
};

TrafficShape shape_for(bool smoke) {
  TrafficShape s;
  if (smoke) {
    s.m = 128;
    s.k = 128;
    s.n = 64;
    s.distinct_patterns = 4;
    s.distinct_activations = 2;
    s.requests = 48;
  }
  return s;
}

struct Traffic {
  std::vector<serve::Request> requests;
};

/// A repeated-pattern request stream: round-robin over the weight set, with
/// activation batches shared across consecutive layers.
Traffic make_traffic(const TrafficShape& shape, PrecisionPair prec,
                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::shared_ptr<const sparse::BlockPattern>> patterns;
  std::vector<std::shared_ptr<const Matrix<std::int32_t>>> weights;
  for (std::size_t i = 0; i < shape.distinct_patterns; ++i) {
    patterns.push_back(std::make_shared<const sparse::BlockPattern>(
        sparse::make_uniform_pattern(shape.m, shape.k, 8, shape.sparsity,
                                     rng)));
    weights.push_back(std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(shape.m, shape.k, prec.lhs, rng)));
  }
  std::vector<std::shared_ptr<const Matrix<std::int32_t>>> activations;
  for (std::size_t i = 0; i < shape.distinct_activations; ++i) {
    activations.push_back(std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(shape.k, shape.n, prec.rhs, rng)));
  }

  Traffic t;
  for (std::size_t i = 0; i < shape.requests; ++i) {
    serve::Request req;
    req.op = serve::OpKind::spmm;
    req.precision = prec;
    const std::size_t p = i % shape.distinct_patterns;
    const std::size_t a = (i / shape.distinct_patterns) %
                          shape.distinct_activations;
    req.pattern = patterns[p];
    req.lhs_values = weights[p];
    req.rhs_values = activations[a];
    req.rhs_id = a + 1;  // activation batches are reused across layers
    t.requests.push_back(std::move(req));
  }
  return t;
}

/// Prepare-per-request baseline: what the repo could do before src/serve/.
double run_naive(const Traffic& traffic) {
  const auto start = Clock::now();
  for (const auto& req : traffic.requests) {
    core::SpmmConfig cfg;
    cfg.precision = req.precision;
    cfg.variant = req.variant;
    const auto lhs = core::prepare_spmm_lhs(*req.pattern, *req.lhs_values,
                                            req.precision,
                                            core::needs_shuffle(cfg));
    const auto rhs = core::prepare_spmm_rhs(*req.rhs_values, req.precision);
    benchmark::DoNotOptimize(core::spmm(lhs, rhs, cfg));
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct EngineRun {
  double seconds = 0;
  serve::CacheStats cache;
  serve::SchedulerStats sched;
};

EngineRun run_engine(const Traffic& traffic) {
  serve::BatchSchedulerConfig cfg;
  cfg.linger = std::chrono::microseconds(50);
  serve::BatchScheduler engine(cfg);
  const auto start = Clock::now();
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(traffic.requests.size());
  for (const auto& req : traffic.requests) {
    futures.push_back(engine.submit(req));
  }
  for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  EngineRun out;
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  out.cache = engine.cache().stats();
  out.sched = engine.stats();
  return out;
}

bool g_smoke = false;

bool comparison_table(bool smoke) {
  const TrafficShape shape = shape_for(smoke);
  std::printf("== serving throughput: naive prepare-per-request vs. "
              "cached+batched engine%s ==\n", smoke ? " [smoke]" : "");
  std::printf("traffic: %zu requests over %zu patterns (%zux%zu, 0.9 "
              "sparse) x %zu activation batches (N=%zu)\n\n",
              shape.requests, shape.distinct_patterns, shape.m, shape.k,
              shape.distinct_activations, shape.n);

  bench::Table table({"precision", "naive (ms)", "engine (ms)", "speedup",
                      "req/s", "cache hit rate", "mean batch"});
  double naive_total = 0.0, engine_total = 0.0;
  const PrecisionPair pairs[] = {precision::L8R8, precision::L16R8,
                                 precision::L4R4};
  for (const PrecisionPair prec : pairs) {
    const Traffic traffic = make_traffic(shape, prec, 0x5e47e + bits_of(prec.lhs));
    const double naive_s = run_naive(traffic);
    const EngineRun engine = run_engine(traffic);
    naive_total += naive_s;
    engine_total += engine.seconds;
    table.add_row(
        {to_string(prec), bench::fmt(naive_s * 1e3, 1),
         bench::fmt(engine.seconds * 1e3, 1),
         bench::fmt(naive_s / engine.seconds, 2) + "x",
         bench::fmt(static_cast<double>(shape.requests) / engine.seconds, 0),
         bench::fmt(100.0 * engine.cache.hit_rate(), 1) + "%",
         bench::fmt(engine.sched.mean_batch_size(), 1)});
  }
  table.print();
  const bool faster = engine_total < naive_total;
  std::printf("\ncached+batched engine beats the naive loop overall: %s "
              "(%.2fx aggregate)%s\n\n",
              faster ? "yes" : "NO", naive_total / engine_total,
              MAGICUBE_BENCH_SANITIZED
                  ? " [sanitized build: gate reported, not enforced]"
                  : "");
  return faster || MAGICUBE_BENCH_SANITIZED;
}

// google-benchmark cases (JSON-artifact surface): one end-to-end traffic
// sweep per serving mode, smoke-sized so CI stays fast.
void BM_NaivePreparePerRequest(benchmark::State& state) {
  const Traffic traffic = make_traffic(shape_for(g_smoke), precision::L8R8, 1);
  for (auto _ : state) benchmark::DoNotOptimize(run_naive(traffic));
  state.counters["requests"] =
      static_cast<double>(traffic.requests.size());
}
BENCHMARK(BM_NaivePreparePerRequest)->Unit(benchmark::kMillisecond);

void BM_CachedBatchedEngine(benchmark::State& state) {
  const Traffic traffic = make_traffic(shape_for(g_smoke), precision::L8R8, 1);
  for (auto _ : state) benchmark::DoNotOptimize(run_engine(traffic));
  state.counters["requests"] =
      static_cast<double>(traffic.requests.size());
}
BENCHMARK(BM_CachedBatchedEngine)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Forwards unrecognized flags (--benchmark_out, ...) to google-benchmark,
  // so it peels --smoke off itself instead of using bench::parse_args.
  std::vector<char*> fwd = {argv[0]};
  bool help = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      if (std::strcmp(argv[i], "--help") == 0 ||
          std::strcmp(argv[i], "-h") == 0) {
        help = true;
      }
      fwd.push_back(argv[i]);
    }
  }
  bool gate_passed = true;
  if (help) {
    std::printf("usage: %s [--smoke] [--benchmark_* flags]\n"
                "  --smoke  tiny traffic mix, a few seconds\n"
                "  other flags forward to google-benchmark (below)\n\n",
                argv[0]);
  } else {
    gate_passed = comparison_table(g_smoke);
  }
  int bench_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&bench_argc, fwd.data());
  benchmark::RunSpecifiedBenchmarks();
  return gate_passed ? 0 : 1;
}
