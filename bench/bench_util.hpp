#pragma once
// Shared helpers for the figure/table reproduction benches: TOP/s math,
// geometric-mean accumulation, and aligned table printing.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace magicube::bench {

/// Command-line options shared by every bench binary. `--smoke` shrinks the
/// sweep to a sub-second sanity pass (one sparsity level, a handful of
/// matrices, tiny panels) so CTest can exercise each binary on every commit
/// (the `bench-smoke` label); the default run reproduces the full figure.
struct Options {
  bool smoke = false;
};

inline Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: %s [--smoke]\n"
                  "  --smoke  tiny shapes / single sweep point, < 1 s\n",
                  argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return opt;
}

/// The DLMC sweep bounds every figure bench shares: one sparsity level and a
/// handful of matrices under --smoke, the full collection otherwise.
inline std::vector<double> dlmc_levels(const Options& opt,
                                       const std::vector<double>& full) {
  return opt.smoke ? std::vector<double>{0.9} : full;
}
inline std::size_t dlmc_matrices_per_level(const Options& opt) {
  return opt.smoke ? 4 : 256;
}

inline double tops(std::uint64_t useful_ops, double seconds) {
  return static_cast<double>(useful_ops) / seconds / 1e12;
}

/// Geometric mean with max tracking (the paper reports "on average
/// (geometric mean) ... (up to ...)").
struct GeoMean {
  double log_sum = 0.0;
  std::size_t n = 0;
  double max_value = 0.0;

  void add(double v) {
    if (v <= 0.0) return;
    log_sum += std::log(v);
    n += 1;
    if (v > max_value) max_value = v;
  }
  double mean() const { return n == 0 ? 0.0 : std::exp(log_sum / n); }
};

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      w[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c) {
        if (r[c].size() > w[c]) w[c] = r[c].size();
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < w.size(); ++c) {
        std::printf(" %-*s |", static_cast<int>(w[c]),
                    c < cells.size() ? cells[c].c_str() : "");
      }
      std::printf("\n");
    };
    line(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < w.size(); ++c) {
      std::printf("%s|", std::string(w[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// Recorded-baseline bar sheet: a flat {"key": number} lookup over a
/// hand-recorded JSON file in bench/baselines/ (string scan, no JSON
/// dependency — the file is a bar sheet, not machine output). Shared by
/// every bench that gates against recorded bars; bars rise by
/// re-recording, never by editing a gate.
struct Baselines {
  bool loaded = false;
  std::string path;
  std::string text;

  /// Reads key's number; clears *ok on a missing key or malformed value
  /// (the caller fails its gate cleanly instead of throwing).
  double get(const std::string& key, bool* ok) const {
    const std::string needle = "\"" + key + "\"";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos) {
      *ok = false;
      return 0;
    }
    const std::size_t colon = text.find(':', at + needle.size());
    if (colon == std::string::npos) {
      *ok = false;
      return 0;
    }
    try {
      return std::stod(text.substr(colon + 1));
    } catch (const std::exception&) {
      *ok = false;
      return 0;
    }
  }
};

inline Baselines load_baselines(const std::string& dir,
                                const std::string& file) {
  Baselines b;
  b.path = dir + "/" + file;
  std::ifstream in(b.path);
  if (in) {
    std::ostringstream ss;
    ss << in.rdbuf();
    b.text = ss.str();
    b.loaded = true;
  }
  return b;
}

}  // namespace magicube::bench
