// Multi-device scaling: modeled throughput of the DevicePool at N in
// {1, 2, 4} simulated A100s, gated against recorded bars.
//
// Two scaling axes, both deterministic (placement and sharding consume
// only the analytic cost model, so the modeled makespans are exact
// functions of the request stream):
//   * placement scaling — the Fig. 12 SpMM mix (all seven precision
//     pairs, several rounds) streamed through pools of 1/2/4 devices with
//     sharding disabled; scaling_N = makespan_1 / makespan_N, where the
//     makespan is the busiest device's modeled clock. This is the
//     aggregate-throughput gate the acceptance criteria name (>= 1.7x at
//     N=2, >= 3x at N=4).
//   * shard scaling — one giant pattern split row-wise across the pool
//     (threshold-triggered, default wave floor); its modeled makespan is
//     the slowest slice, so scaling measures how evenly plan_row_shards
//     balances block-row work.
//
// Bit-exactness is re-asserted inline before any gate: a pooled response
// from the Fig. 12 mix and the N=4 sharded giant must equal the
// sequential single-device reference exactly. Gates compare against
// bench/baselines/multi_device_scaling.json (bars rise by re-recording,
// never by editing the gate); sanitizer builds report without enforcing.
// Like the other perf benches, --smoke is peeled off argv and the rest
// forwards to google-benchmark; CI uploads BENCH_multi_device_scaling
// JSON from the perf-smoke matrix.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/api.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MAGICUBE_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MAGICUBE_BENCH_SANITIZED 1
#endif
#endif
#ifndef MAGICUBE_BENCH_SANITIZED
#define MAGICUBE_BENCH_SANITIZED 0
#endif

#ifndef MAGICUBE_BENCH_BASELINE_DIR
#define MAGICUBE_BENCH_BASELINE_DIR "bench/baselines"
#endif

namespace {

using namespace magicube;

struct Shapes {
  std::size_t m = 512, k = 512, n = 512;   // Fig. 12 mix
  double sparsity = 0.9;
  int rounds = 4;                           // mix repetitions
  // The giant pattern is sized so modeled *compute* dominates the 3.5 us
  // per-launch floor each slice pays — shard scaling measures work
  // balance, not launch amortization (~88 us full / ~25 us smoke).
  std::size_t gm = 8192, gk = 1024, gn = 512;
  double gsparsity = 0.5;
};

Shapes shapes_for(bool smoke) {
  Shapes s;
  if (smoke) {
    s.m = s.k = s.n = 128;
    s.rounds = 2;
    s.gm = 4096;
    s.gk = 1024;
    s.gn = 256;
  }
  return s;
}

struct Mix {
  std::vector<serve::Request> requests;  // one round of the Fig. 12 mix
  core::SpmmResult reference;            // sequential result of request 0
};

Mix make_fig12_mix(const Shapes& s) {
  static const PrecisionPair pairs[] = {
      precision::L16R16, precision::L16R8, precision::L8R8,
      precision::L16R4,  precision::L12R4, precision::L8R4,
      precision::L4R4};
  Mix mix;
  std::uint64_t next_rhs_id = 1;
  for (const PrecisionPair prec : pairs) {
    Rng rng(0xf16 + bits_of(prec.lhs) * 8u +
            static_cast<unsigned>(bits_of(prec.rhs)));
    serve::Request req;
    req.op = serve::OpKind::spmm;
    req.precision = prec;
    req.pattern = std::make_shared<const sparse::BlockPattern>(
        sparse::make_uniform_pattern(s.m, s.k, 8, s.sparsity, rng));
    req.lhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(s.m, s.k, prec.lhs, rng));
    req.rhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(s.k, s.n, prec.rhs, rng));
    req.rhs_id = next_rhs_id++;
    mix.requests.push_back(std::move(req));
  }
  serve::OperandCache ref_cache(512ull << 20);
  mix.reference =
      *serve::serve_request(mix.requests.front(), ref_cache).spmm;
  return mix;
}

serve::Request make_giant_request(const Shapes& s) {
  Rng rng(0x61a27);
  serve::Request req;
  req.op = serve::OpKind::spmm;
  req.precision = precision::L8R8;
  req.pattern = std::make_shared<const sparse::BlockPattern>(
      sparse::make_uniform_pattern(s.gm, s.gk, 8, s.gsparsity, rng));
  req.lhs_values = std::make_shared<const Matrix<std::int32_t>>(
      core::random_values(s.gm, s.gk, Scalar::s8, rng));
  req.rhs_values = std::make_shared<const Matrix<std::int32_t>>(
      core::random_values(s.gk, s.gn, Scalar::s8, rng));
  return req;
}

/// Streams `rounds` copies of the mix through an N-device pool (sharding
/// off — placement only) and returns the modeled makespan.
double placement_makespan(const Mix& mix, int rounds, std::size_t devices,
                          bool check_first) {
  serve::DevicePoolConfig cfg;
  cfg.device_count = devices;
  cfg.shard_threshold_seconds = 0;  // isolate the placement axis
  cfg.linger = std::chrono::microseconds(100);
  serve::DevicePool pool(cfg);

  std::vector<std::future<serve::Response>> futures;
  for (int r = 0; r < rounds; ++r) {
    for (const serve::Request& req : mix.requests) {
      futures.push_back(pool.submit(serve::Request(req)));
    }
  }
  bool first = true;
  for (auto& f : futures) {
    const serve::Response resp = f.get();
    MAGICUBE_CHECK_MSG(resp.spmm.has_value(), "pool dropped a result");
    if (first && check_first) {
      MAGICUBE_CHECK_MSG(resp.spmm->c == mix.reference.c,
                         "pooled result diverged from the sequential "
                         "reference");
    }
    first = false;
  }
  pool.drain();
  const serve::DevicePoolStats ps = pool.stats();
  MAGICUBE_CHECK(ps.failed == 0);
  return ps.modeled_makespan_seconds();
}

/// Serves the giant request through an N-device pool with sharding enabled
/// and returns {makespan, shards}; verifies bit-exactness vs `want`. When
/// `trace_json_path` is given, the pool's TraceLog is exported there (the
/// per-request span artifact that rides next to the BENCH_* JSON).
std::pair<double, std::size_t> shard_makespan(
    const serve::Request& giant, std::size_t devices,
    const Matrix<std::int32_t>* want,
    const char* trace_json_path = nullptr) {
  serve::DevicePoolConfig cfg;
  cfg.device_count = devices;
  cfg.shard_threshold_seconds = 1e-9;  // the giant is always over threshold
  serve::DevicePool pool(cfg);
  const serve::Response resp = pool.submit(serve::Request(giant)).get();
  MAGICUBE_CHECK(resp.spmm.has_value());
  if (want != nullptr) {
    MAGICUBE_CHECK_MSG(resp.spmm->c == *want,
                       "sharded result diverged from the single-device "
                       "reference");
  }
  pool.drain();
  if (trace_json_path != nullptr) {
    if (pool.traces().write_json(trace_json_path)) {
      std::printf("per-request traces written to %s\n", trace_json_path);
    } else {
      std::printf("warning: could not write traces to %s\n", trace_json_path);
    }
  }
  return {pool.stats().modeled_makespan_seconds(), resp.shards};
}

bool g_smoke = false;

bool comparison_table(bool smoke) {
  const Shapes s = shapes_for(smoke);
  std::printf("== multi-device modeled throughput scaling%s ==\n",
              smoke ? " [smoke]" : "");
  std::printf("Fig. 12 mix: M=K=%zu N=%zu x 7 precision pairs x %d rounds; "
              "giant pattern: M=%zu K=%zu N=%zu\n\n",
              s.m, s.n, s.rounds, s.gm, s.gk, s.gn);

  const Mix mix = make_fig12_mix(s);
  const double base = placement_makespan(mix, s.rounds, 1, true);
  const double p2 = base / placement_makespan(mix, s.rounds, 2, false);
  const double p4 = base / placement_makespan(mix, s.rounds, 4, false);

  const serve::Request giant = make_giant_request(s);
  serve::OperandCache ref_cache(1ull << 30);
  const core::SpmmResult giant_ref =
      *serve::serve_request(giant, ref_cache).spmm;
  const auto [g1, shards1] = shard_makespan(giant, 1, &giant_ref.c);
  const auto [g2, shards2] = shard_makespan(giant, 2, &giant_ref.c);
  const auto [g4, shards4] = shard_makespan(giant, 4, &giant_ref.c,
                                            "TRACE_multi_device_scaling.json");
  MAGICUBE_CHECK(shards1 == 1 && shards2 == 2 && shards4 == 4);

  bench::Table table({"axis", "N=1 makespan (us)", "N=2", "N=4",
                      "scaling N=2", "scaling N=4"});
  table.add_row({"placement (fig12 mix)", bench::fmt(base * 1e6, 2),
                 bench::fmt(base / p2 * 1e6, 2),
                 bench::fmt(base / p4 * 1e6, 2), bench::fmt(p2, 2) + "x",
                 bench::fmt(p4, 2) + "x"});
  table.add_row({"row shards (giant)", bench::fmt(g1 * 1e6, 2),
                 bench::fmt(g2 * 1e6, 2), bench::fmt(g4 * 1e6, 2),
                 bench::fmt(g1 / g2, 2) + "x", bench::fmt(g1 / g4, 2) + "x"});
  table.print();

  const bench::Baselines bars = bench::load_baselines(
      MAGICUBE_BENCH_BASELINE_DIR, "multi_device_scaling.json");
  const std::string prefix = smoke ? "smoke_" : "full_";
  bool bars_ok = bars.loaded;
  double p2_bar = 0, p4_bar = 0, s2_bar = 0, s4_bar = 0;
  if (bars.loaded) {
    p2_bar = bars.get(prefix + "placement_n2_min", &bars_ok);
    p4_bar = bars.get(prefix + "placement_n4_min", &bars_ok);
    s2_bar = bars.get(prefix + "shard_n2_min", &bars_ok);
    s4_bar = bars.get(prefix + "shard_n4_min", &bars_ok);
  }

  bool gate = true;
  if (!bars_ok) {
    std::printf("\ncannot read recorded baselines from %s — gate FAILED\n",
                bars.path.c_str());
    gate = false;
  } else {
    struct GateRow {
      const char* name;
      double value, bar;
    } rows[] = {{"placement scaling N=2", p2, p2_bar},
                {"placement scaling N=4", p4, p4_bar},
                {"shard scaling N=2", g1 / g2, s2_bar},
                {"shard scaling N=4", g1 / g4, s4_bar}};
    std::printf("\n");
    for (const GateRow& r : rows) {
      const bool ok = r.value >= r.bar;
      gate = gate && ok;
      std::printf("%s: %.2fx (recorded bar: >= %.2fx) — %s\n", r.name,
                  r.value, r.bar, ok ? "PASS" : "FAIL");
    }
    std::printf("(bars recorded in %s; raise them by re-recording, not by "
                "editing the gate)%s\n\n",
                bars.path.c_str(),
                MAGICUBE_BENCH_SANITIZED
                    ? " [sanitized build: gates reported, not enforced]"
                    : "");
  }
  return gate || MAGICUBE_BENCH_SANITIZED;
}

// google-benchmark cases (JSON-artifact surface): wall-clock of the full
// submit-to-drain mix per pool size, smoke-sized in CI.
void pool_mix_case(benchmark::State& state, std::size_t devices) {
  const Shapes s = shapes_for(g_smoke);
  const Mix mix = make_fig12_mix(s);
  for (auto _ : state) {
    serve::DevicePoolConfig cfg;
    cfg.device_count = devices;
    cfg.linger = std::chrono::microseconds(50);
    serve::DevicePool pool(cfg);
    std::vector<std::future<serve::Response>> futures;
    for (const serve::Request& req : mix.requests) {
      futures.push_back(pool.submit(serve::Request(req)));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
    pool.drain();
  }
}

void BM_PoolMixN1(benchmark::State& state) { pool_mix_case(state, 1); }
void BM_PoolMixN2(benchmark::State& state) { pool_mix_case(state, 2); }
void BM_PoolMixN4(benchmark::State& state) { pool_mix_case(state, 4); }
// Real-time measurement: the interesting time is submit-to-drain wall
// clock (the calling thread mostly waits on futures, so CPU time would
// drive the iteration count through the roof).
BENCHMARK(BM_PoolMixN1)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_PoolMixN2)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_PoolMixN4)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> fwd = {argv[0]};
  bool help = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      if (std::strcmp(argv[i], "--help") == 0 ||
          std::strcmp(argv[i], "-h") == 0) {
        help = true;
      }
      fwd.push_back(argv[i]);
    }
  }
  bool gate_passed = true;
  if (help) {
    std::printf("usage: %s [--smoke] [--benchmark_* flags]\n"
                "  --smoke  tiny shapes, a few seconds\n"
                "  other flags forward to google-benchmark (below)\n\n",
                argv[0]);
  } else {
    gate_passed = comparison_table(g_smoke);
  }
  int bench_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&bench_argc, fwd.data());
  benchmark::RunSpecifiedBenchmarks();
  return gate_passed ? 0 : 1;
}
