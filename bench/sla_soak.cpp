// SLA-aware overload soak: a 4-device DevicePool under ~2x modeled
// overload, gated against recorded bars.
//
// The stream mixes three priority classes over a rotating set of warm
// patterns (the warmup manifest pre-builds and pins every plan, so the
// first dispatch round already prices from cached plans):
//   * high (priority 2, 20%) — a generous deadline the EDF-first placement
//     must always meet: the class places before everything else, so its
//     modeled completions see only high-class backlog;
//   * mid (priority 1, 30%) — a deadline sized to the class boundary:
//     servable after the high class, mostly;
//   * low (priority 0, 50%) — a deadline below the backlog the two upper
//     classes leave behind, so most of the class is shed at admission.
// Deadlines derive from D_base = W / (2N) (W = total modeled work of the
// stream, N = devices): the stream carries twice the work the deadline
// horizon admits, which is the overload the shed gate measures.
//
// Everything gated is *modeled* and therefore deterministic: placement,
// EDF order, deadline admission and the shed set are exact functions of
// the request stream and the analytic cost model (no faults injected, one
// dispatch round via the long-linger + queue-bound idiom). The gates:
//   * the high class is never shed and its worst completion/deadline
//     ratio stays under the recorded bar,
//   * the overall shed rate stays within the recorded band (sheds bounded
//     — but the overload IS shedding, so a floor asserts the gate bites),
//   * modeled goodput (served work / total work) clears the recorded floor.
// Hard invariants (MAGICUBE_CHECK, not bars): every shed future carries a
// ShedError, every shed trace carries a `shed` span, and served results
// stay bit-exact vs the sequential reference.
//
// Like the other perf benches: --smoke is peeled off argv, the rest
// forwards to google-benchmark; gates compare against
// bench/baselines/sla_soak.json (bars move by re-recording, never by
// editing the gate); sanitizer builds report without enforcing.
// --trace-out=PATH exports the pool's TraceLog JSON (the CI artifact the
// trace_report tool aggregates).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/api.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MAGICUBE_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MAGICUBE_BENCH_SANITIZED 1
#endif
#endif
#ifndef MAGICUBE_BENCH_SANITIZED
#define MAGICUBE_BENCH_SANITIZED 0
#endif

#ifndef MAGICUBE_BENCH_BASELINE_DIR
#define MAGICUBE_BENCH_BASELINE_DIR "bench/baselines"
#endif

namespace {

using namespace magicube;

constexpr std::size_t kDevices = 4;

struct SoakShape {
  std::size_t requests = 1200;
  std::size_t m = 256, k = 256, n = 128;
  double sparsity = 0.8;
};

SoakShape shape_for(bool smoke) {
  SoakShape s;
  if (smoke) {
    s.requests = 200;
    s.m = s.k = 128;
    s.n = 64;
  }
  return s;
}

/// The warm working set: six layers (five SpMM precisions + one SDDMM)
/// whose plans the warmup manifest pre-builds and pins.
struct Layer {
  serve::Request req;    // operands + identity; deadline/priority set later
  double est = 0.0;      // modeled seconds on the a100 reference spec
};

std::vector<Layer> make_layers(const SoakShape& s) {
  static const PrecisionPair spmm_pairs[] = {
      precision::L16R16, precision::L16R8, precision::L8R8,
      precision::L8R4,   precision::L4R4};
  std::vector<Layer> layers;
  std::uint64_t next_id = 1;
  for (const PrecisionPair prec : spmm_pairs) {
    Rng rng(0x51a + next_id);
    Layer l;
    l.req.op = serve::OpKind::spmm;
    l.req.precision = prec;
    l.req.pattern = std::make_shared<const sparse::BlockPattern>(
        sparse::make_uniform_pattern(s.m, s.k, 8, s.sparsity, rng));
    l.req.lhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(s.m, s.k, prec.lhs, rng));
    l.req.rhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(s.k, s.n, prec.rhs, rng));
    l.req.lhs_id = next_id;
    l.req.rhs_id = 100 + next_id;
    next_id += 1;
    layers.push_back(std::move(l));
  }
  {
    Rng rng(0x5dd);
    Layer l;
    l.req.op = serve::OpKind::sddmm;
    l.req.precision = precision::L8R8;
    l.req.pattern = std::make_shared<const sparse::BlockPattern>(
        sparse::make_uniform_pattern(s.m, s.n, 8, s.sparsity, rng));
    l.req.lhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(s.m, s.k, Scalar::s8, rng));
    l.req.rhs_values = std::make_shared<const Matrix<std::int32_t>>(
        core::random_values(s.k, s.n, Scalar::s8, rng));
    l.req.lhs_id = next_id;
    l.req.rhs_id = 100 + next_id;
    layers.push_back(std::move(l));
  }
  serve::OperandCache scratch(64ull << 20);
  for (Layer& l : layers) {
    l.est = simt::estimate_seconds(simt::a100(),
                                   serve::price_request(l.req, scratch));
    MAGICUBE_CHECK(l.est > 0.0);
  }
  return layers;
}

serve::WarmupManifest manifest_for(const std::vector<Layer>& layers) {
  serve::WarmupManifest m;
  for (const Layer& l : layers) {
    serve::WarmupEntry e;
    e.op = l.req.op;
    e.precision = l.req.precision;
    e.pattern = l.req.pattern;
    e.cols = l.req.op == serve::OpKind::spmm ? l.req.rhs_values->cols()
                                             : l.req.lhs_values->cols();
    e.pin = true;
    m.entries.push_back(std::move(e));
  }
  return m;
}

/// Priority class by stream index: 20% high, 30% mid, 50% low.
int priority_of(std::size_t i) {
  const std::size_t slot = i % 10;
  if (slot < 2) return 2;
  if (slot < 5) return 1;
  return 0;
}

struct SoakMetrics {
  std::size_t total = 0;
  std::size_t shed = 0;
  std::size_t high_total = 0;
  std::size_t high_shed = 0;
  double high_worst_ratio = 0.0;  // max completion/deadline over served high
  double shed_rate = 0.0;
  double goodput = 0.0;           // served modeled work / total modeled work
  std::uint64_t affinity_hits = 0;
  std::uint64_t urgent_rounds = 0;
  std::uint64_t shed_spans = 0;   // traces carrying a `shed` span
};

SoakMetrics run_soak(const SoakShape& s, const std::vector<Layer>& layers,
                     const char* trace_out) {
  serve::DevicePoolConfig cfg;
  cfg.device_count = kDevices;
  cfg.shard_threshold_seconds = 0;  // the SLA axis, not the sharding axis
  // One deterministic dispatch round: long linger, the queue bound cuts it
  // short the instant the last submit lands.
  cfg.linger = std::chrono::seconds(2);
  cfg.max_queue_depth = s.requests;
  cfg.trace_capacity = s.requests + 16;
  // A tenth of the smallest estimate: tight enough to keep placements
  // essentially earliest-completion, wide enough to exercise the path.
  double min_est = layers.front().est;
  double max_est = 0.0;
  for (const Layer& l : layers) {
    min_est = std::min(min_est, l.est);
    max_est = std::max(max_est, l.est);
  }
  cfg.affinity_tolerance_seconds = 0.1 * min_est;
  serve::DevicePool pool(cfg);

  const serve::WarmupReport warm = pool.warmup(manifest_for(layers));
  MAGICUBE_CHECK_MSG(warm.plans_built == layers.size() &&
                         warm.pinned == layers.size(),
                     "warmup did not build/pin the whole manifest");

  // Deadline horizon: D_base is half the per-device share of the stream's
  // total modeled work — a 2x overload for the classes priced against it.
  double total_work = 0.0;
  for (std::size_t i = 0; i < s.requests; ++i) {
    total_work += layers[i % layers.size()].est;
  }
  const double d_base = total_work / (2.0 * kDevices);
  const double deadline_high = 2.2 * d_base + max_est;
  const double deadline_mid = 1.2 * d_base;
  const double deadline_low = 0.8 * d_base;

  struct Submitted {
    std::size_t layer = 0;
    int priority = 0;
    double deadline = 0.0;
    std::future<serve::Response> future;
  };
  std::vector<Submitted> stream;
  stream.reserve(s.requests);
  for (std::size_t i = 0; i < s.requests; ++i) {
    Submitted sub;
    sub.layer = i % layers.size();
    sub.priority = priority_of(i);
    sub.deadline = sub.priority == 2   ? deadline_high
                   : sub.priority == 1 ? deadline_mid
                                       : deadline_low;
    serve::Request req = layers[sub.layer].req;  // shared operand handles
    req.priority = sub.priority;
    req.deadline_seconds = sub.deadline;
    sub.future = pool.submit(std::move(req));
    stream.push_back(std::move(sub));
  }

  // Sequential references for the bit-exactness spot check (one per layer).
  std::vector<serve::Response> refs;
  for (const Layer& l : layers) {
    serve::OperandCache ref_cache(256ull << 20);
    refs.push_back(serve::serve_request(l.req, ref_cache));
  }

  SoakMetrics m;
  m.total = s.requests;
  double served_work = 0.0;
  std::vector<char> checked(layers.size(), 0);
  for (Submitted& sub : stream) {
    try {
      const serve::Response resp = sub.future.get();
      served_work += layers[sub.layer].est;
      MAGICUBE_CHECK_MSG(resp.modeled_completion_seconds > 0.0 &&
                             resp.modeled_completion_seconds <= sub.deadline,
                         "a served request missed its deadline");
      if (sub.priority == 2) {
        m.high_total += 1;
        const double ratio = resp.modeled_completion_seconds / sub.deadline;
        m.high_worst_ratio = std::max(m.high_worst_ratio, ratio);
      }
      if (checked[sub.layer] == 0) {
        checked[sub.layer] = 1;
        const serve::Response& want = refs[sub.layer];
        if (resp.op == serve::OpKind::spmm) {
          MAGICUBE_CHECK_MSG(resp.spmm->c == want.spmm->c,
                             "pooled SpMM diverged from the reference");
        } else {
          MAGICUBE_CHECK_MSG(resp.sddmm->c.values == want.sddmm->c.values,
                             "pooled SDDMM diverged from the reference");
        }
      }
    } catch (const serve::ShedError&) {
      m.shed += 1;
      if (sub.priority == 2) {
        m.high_total += 1;
        m.high_shed += 1;
      }
    }
    // Any other exception propagates: the soak tolerates shedding only.
  }
  pool.drain();

  const serve::DevicePoolStats st = pool.stats();
  MAGICUBE_CHECK(st.shed == m.shed);
  MAGICUBE_CHECK(st.failed == m.shed);  // shedding is the only failure mode
  m.shed_rate = static_cast<double>(m.shed) / static_cast<double>(m.total);
  m.goodput = served_work / total_work;
  m.affinity_hits = st.affinity_hits;
  m.urgent_rounds = st.urgent_rounds;

  // Shedding is never silent: every shed trace carries its `shed` span.
  std::size_t failed_traces = 0;
  for (const auto& trace : pool.traces().snapshot()) {
    bool has_shed = false;
    for (const serve::TraceSpan& span : trace->spans) {
      has_shed = has_shed || span.name == "shed";
    }
    if (has_shed) m.shed_spans += 1;
    if (!trace->ok) {
      failed_traces += 1;
      MAGICUBE_CHECK_MSG(has_shed, "a shed request's trace lacks its shed "
                                   "span");
    }
  }
  MAGICUBE_CHECK(m.shed_spans == m.shed && failed_traces == m.shed);

  if (trace_out != nullptr) {
    if (pool.traces().write_json(trace_out)) {
      std::printf("per-request traces written to %s\n", trace_out);
    } else {
      std::printf("warning: could not write traces to %s\n", trace_out);
    }
  }
  return m;
}

bool g_smoke = false;
std::string g_trace_out;

bool soak_and_gate(bool smoke, const char* trace_out) {
  const SoakShape s = shape_for(smoke);
  std::printf("== SLA overload soak%s ==\n", smoke ? " [smoke]" : "");
  std::printf("%zu requests over %zu devices at 2x modeled overload "
              "(20%% high / 30%% mid / 50%% low priority)\n\n",
              s.requests, kDevices);

  const std::vector<Layer> layers = make_layers(s);
  const SoakMetrics m = run_soak(s, layers, trace_out);

  bench::Table table({"metric", "value"});
  table.add_row({"requests", std::to_string(m.total)});
  table.add_row({"shed", std::to_string(m.shed)});
  table.add_row({"shed rate", bench::fmt(m.shed_rate, 3)});
  table.add_row({"modeled goodput", bench::fmt(m.goodput, 3)});
  table.add_row({"high-priority shed",
                 std::to_string(m.high_shed) + " / " +
                     std::to_string(m.high_total)});
  table.add_row({"high-priority worst completion/deadline",
                 bench::fmt(m.high_worst_ratio, 3)});
  table.add_row({"affinity hits", std::to_string(m.affinity_hits)});
  table.add_row({"urgent dispatch rounds", std::to_string(m.urgent_rounds)});
  table.print();

  const bench::Baselines bars = bench::load_baselines(
      MAGICUBE_BENCH_BASELINE_DIR, "sla_soak.json");
  const std::string prefix = smoke ? "smoke_" : "full_";
  bool bars_ok = bars.loaded;
  double high_ratio_max = 0, shed_max = 0, shed_min = 0, goodput_min = 0;
  if (bars.loaded) {
    high_ratio_max = bars.get(prefix + "high_worst_ratio_max", &bars_ok);
    shed_max = bars.get(prefix + "shed_rate_max", &bars_ok);
    shed_min = bars.get(prefix + "shed_rate_min", &bars_ok);
    goodput_min = bars.get(prefix + "goodput_min", &bars_ok);
  }

  bool gate = true;
  if (!bars_ok) {
    std::printf("\ncannot read recorded baselines from %s — gate FAILED\n",
                bars.path.c_str());
    gate = false;
  } else {
    struct GateRow {
      const char* name;
      double value, bar;
      bool is_max;  // true: value <= bar passes; false: value >= bar
    } rows[] = {
        {"high-priority shed count", static_cast<double>(m.high_shed), 0.0,
         true},
        {"high-priority worst completion/deadline", m.high_worst_ratio,
         high_ratio_max, true},
        {"shed rate (upper)", m.shed_rate, shed_max, true},
        {"shed rate (lower)", m.shed_rate, shed_min, false},
        {"modeled goodput", m.goodput, goodput_min, false},
    };
    std::printf("\n");
    for (const GateRow& r : rows) {
      const bool ok = r.is_max ? r.value <= r.bar : r.value >= r.bar;
      gate = gate && ok;
      std::printf("%s: %.3f (recorded bar: %s %.3f) — %s\n", r.name, r.value,
                  r.is_max ? "<=" : ">=", r.bar, ok ? "PASS" : "FAIL");
    }
    std::printf("(bars recorded in %s; move them by re-recording, not by "
                "editing the gate)%s\n\n",
                bars.path.c_str(),
                MAGICUBE_BENCH_SANITIZED
                    ? " [sanitized build: gates reported, not enforced]"
                    : "");
  }
  return gate || MAGICUBE_BENCH_SANITIZED;
}

// google-benchmark surface (the BENCH_sla_soak JSON artifact): wall clock
// of the whole submit-to-drain soak, smoke-sized in CI.
void BM_SlaSoak(benchmark::State& state) {
  const SoakShape s = shape_for(g_smoke);
  const std::vector<Layer> layers = make_layers(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_soak(s, layers, nullptr));
  }
}
BENCHMARK(BM_SlaSoak)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> fwd = {argv[0]};
  bool help = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      g_trace_out = argv[i] + 12;
    } else {
      if (std::strcmp(argv[i], "--help") == 0 ||
          std::strcmp(argv[i], "-h") == 0) {
        help = true;
      }
      fwd.push_back(argv[i]);
    }
  }
  bool gate_passed = true;
  if (help) {
    std::printf("usage: %s [--smoke] [--trace-out=PATH] [--benchmark_* "
                "flags]\n"
                "  --smoke           small stream, a few seconds\n"
                "  --trace-out=PATH  export per-request trace JSON\n"
                "  other flags forward to google-benchmark (below)\n\n",
                argv[0]);
  } else {
    gate_passed = soak_and_gate(
        g_smoke, g_trace_out.empty() ? nullptr : g_trace_out.c_str());
  }
  int bench_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&bench_argc, fwd.data());
  benchmark::RunSpecifiedBenchmarks();
  return gate_passed ? 0 : 1;
}
