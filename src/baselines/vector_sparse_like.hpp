#pragma once
// "vectorSparse-like" baseline: Chen et al.'s fp16 1-D-block kernels on
// tensor cores (SC'21) — the state-of-the-art sparse comparator of
// Figs. 14, 15 and 17.
//
// Structure mirrors Magicube's thread-block decomposition (it is the design
// Magicube extends): BCRS column-vector encoding, one vector row and a
// 64-wide column tile per block, software-pipelined RHS staging with a
// conflict-free layout. The differences that the counters expose:
//   * operands are fp16 — half the tensor-core rate of int8 and a quarter
//     of int4, and 2-4x the bytes moved per element;
//   * no online transpose is needed (fp16 ldmatrix handles the layout), so
//     the ALU cost of marshalling is negligible;
//   * no mixed precision, no stacking: V < 8 leaves the mma underutilized.

#include <cstdint>

#include "common/half.hpp"
#include "common/matrix.hpp"
#include "simt/cost_model.hpp"
#include "sparse/bcrs.hpp"
#include "sparse/pattern.hpp"

namespace magicube::baselines {

struct VsSpmmResult {
  Matrix<half> c;
  simt::KernelRun run;
};

/// Functional fp16 SpMM on a BCRS operand (fp32 accumulate, rounded once).
VsSpmmResult vs_spmm(const sparse::Bcrs<half>& a, const Matrix<half>& b);

/// Counters for the fp16 SpMM on this pattern (N columns).
simt::KernelRun vs_spmm_estimate(const sparse::BlockPattern& pattern,
                                 std::size_t n_cols);

struct VsSddmmResult {
  sparse::Bcrs<half> c;
  simt::KernelRun run;
};

/// Functional fp16 SDDMM (A row-major, B column-major conceptually; both
/// passed row-major here with B accessed by column).
VsSddmmResult vs_sddmm(const Matrix<half>& a, const Matrix<half>& b,
                       const sparse::BlockPattern& pattern);

/// Counters for the fp16 SDDMM at reduction depth K.
simt::KernelRun vs_sddmm_estimate(const sparse::BlockPattern& pattern,
                                  std::size_t k_depth);

}  // namespace magicube::baselines
