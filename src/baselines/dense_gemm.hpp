#pragma once
// "cuBLAS-like" dense GEMM baselines on the simulated device.
//
// Two datapaths, matching the comparison points of Figs. 14/15/17:
//
//  * fp16 (cublasHgemm): 128x128x32-step tiles on fp16 tensor cores with
//    software pipelining — the normalization baseline of every speedup plot.
//  * int8 (IMMA): the paper observes that cuBLAS int8 is *slower* than fp16
//    on DLMC-sized problems. The reproduced mechanism: IMMA kernels require
//    NT operand layouts and interleaved output formats, so a layout
//    transformation pass over both operands precedes the GEMM (extra kernel
//    launch + full memory sweep), and the IMMA pipeline issues at half rate
//    on shapes that do not fill its wide tiles (`kImmaIssueFactor`).
//
// Baseline kernels are modelled at tile granularity (counters derived from
// tile traffic), not at register granularity like the Magicube kernels; the
// functional results are exact (fp32 accumulation, rounded to half once at
// the output, as cublasHgemm does).

#include <cstdint>

#include "common/half.hpp"
#include "common/matrix.hpp"
#include "simt/cost_model.hpp"

namespace magicube::baselines {

/// Issue-efficiency penalty of IMMA kernels on non-native layouts.
inline constexpr double kImmaIssueFactor = 2.0;

struct GemmFp16Result {
  Matrix<half> c;
  simt::KernelRun run;
};

/// C = A * B in fp16 (fp32 accumulate, one rounding at the output).
GemmFp16Result dense_gemm_fp16(const Matrix<half>& a, const Matrix<half>& b);

/// Counters for an M x N x K fp16 GEMM without executing it.
simt::KernelRun dense_gemm_fp16_estimate(std::size_t m, std::size_t n,
                                         std::size_t k);

struct GemmInt8Result {
  Matrix<std::int32_t> c;
  simt::KernelRun run;
};

/// C = A * B for int8 operands (int32 accumulate).
GemmInt8Result dense_gemm_int8(const Matrix<std::int32_t>& a,
                               const Matrix<std::int32_t>& b);

/// Counters for an M x N x K int8 IMMA GEMM (includes the transform pass).
simt::KernelRun dense_gemm_int8_estimate(std::size_t m, std::size_t n,
                                         std::size_t k);

}  // namespace magicube::baselines
