#include "baselines/vector_sparse_like.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace magicube::baselines {

namespace {

constexpr std::size_t kBsn = 64;   // column tile, as in Magicube
constexpr int kBsk = 16;           // fp16 mma k

/// Per-block counters for one vector row with `steps` k-steps and `valid`
/// nonzero vectors (fp16 datapath, 2 bytes/element).
simt::KernelCounters vs_block_counters(int v, std::uint64_t steps,
                                       std::uint64_t valid) {
  simt::KernelCounters c;
  // Indices + LHS vectors, coalesced via shared memory.
  c.gmem_load_requests = steps * 2 + valid;
  c.gmem_load_sectors =
      steps * 2 +  // 16 indices (64B) = 2 sectors per step
      steps * std::max<std::uint64_t>(1, static_cast<std::uint64_t>(v) / 2) +
      valid * 4;  // one RHS row: 64 cols * 2B = 128B = 4 sectors
  // fp16 rows are 32 words wide: one full-warp store request per row.
  c.smem_store_requests = steps * (1 + 1 + kBsk);
  c.smem_store_transactions = c.smem_store_requests;
  // Fragment loads: conflict-free ldmatrix staging, but fp16 operands are
  // twice the words of int8 — 8 load phases per warp per step.
  c.smem_load_requests = steps * 2 * (1 + 8);
  c.smem_load_transactions = c.smem_load_requests;
  // Two warps x 2 fp16 mma per step (8x32x16 tile halves).
  c.mma_fp16 = steps * 4;
  c.syncthreads = steps * 3 + 1;
  // Epilogue staging + fp16 writeback (half the bytes of int32).
  c.smem_store_requests += 16;
  c.smem_store_transactions += 16;
  c.smem_load_requests += static_cast<std::uint64_t>(v);
  c.smem_load_transactions += static_cast<std::uint64_t>(v);
  c.gmem_store_requests += static_cast<std::uint64_t>(v);
  c.gmem_store_sectors += static_cast<std::uint64_t>(v) * 4;
  return c;
}

}  // namespace

VsSpmmResult vs_spmm(const sparse::Bcrs<half>& a, const Matrix<half>& b) {
  MAGICUBE_CHECK(a.cols == b.rows());
  VsSpmmResult out;
  out.c = Matrix<half>(a.rows, b.cols());
  const std::size_t v = static_cast<std::size_t>(a.vector_length);
  for (std::size_t r = 0; r < a.vector_rows(); ++r) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      for (std::size_t rb = 0; rb < v; ++rb) {
        float acc = 0.0f;
        for (std::uint32_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
          acc += float(a.values[i * v + rb]) * float(b(a.col_idx[i], j));
        }
        out.c(r * v + rb, j) = half(acc);
      }
    }
  }
  sparse::BlockPattern pattern;
  pattern.rows = a.rows;
  pattern.cols = a.cols;
  pattern.vector_length = a.vector_length;
  pattern.row_ptr = a.row_ptr;
  pattern.col_idx = a.col_idx;
  out.run = vs_spmm_estimate(pattern, b.cols());
  return out;
}

simt::KernelRun vs_spmm_estimate(const sparse::BlockPattern& pattern,
                                 std::size_t n_cols) {
  MAGICUBE_CHECK(n_cols % kBsn == 0);
  const std::size_t col_tiles = n_cols / kBsn;
  simt::KernelRun run;
  run.launch.grid_blocks = pattern.vector_rows() * col_tiles;
  run.launch.warps_per_block = 2;
  // Double-buffered LHS + padded fp16 RHS tile.
  run.launch.smem_bytes_per_block =
      2 * (16 * 4 + static_cast<std::size_t>(pattern.vector_length) * 16 * 2) +
      (16 * kBsn * 2 + 4 * 32);
  run.pipeline.prefetch = true;

  std::uint64_t total_steps = 0, valid_total = 0;
  for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
    const std::uint64_t n_r = pattern.vectors_in_row(r);
    const std::uint64_t steps = (n_r + kBsk - 1) / kBsk;
    total_steps += steps;
    valid_total += n_r;
    simt::KernelCounters c =
        vs_block_counters(pattern.vector_length, steps, n_r);
    for (auto* f : {&c.gmem_load_requests, &c.gmem_load_sectors,
                    &c.gmem_store_requests, &c.gmem_store_sectors,
                    &c.smem_load_requests, &c.smem_load_transactions,
                    &c.smem_store_requests, &c.smem_store_transactions,
                    &c.mma_fp16, &c.syncthreads}) {
      *f *= col_tiles;
    }
    run.counters += c;
  }
  run.pipeline.total_steps = total_steps * col_tiles;
  run.counters.dram_bytes =
      valid_total * static_cast<std::uint64_t>(pattern.vector_length) * 2 +
      valid_total * 4 +
      std::min<std::uint64_t>(pattern.cols * n_cols * 2,
                              valid_total * col_tiles * kBsn * 2) +
      pattern.rows * n_cols * 2;
  return run;
}

VsSddmmResult vs_sddmm(const Matrix<half>& a, const Matrix<half>& b,
                       const sparse::BlockPattern& pattern) {
  MAGICUBE_CHECK(a.cols() == b.rows());
  MAGICUBE_CHECK(a.rows() == pattern.rows && b.cols() == pattern.cols);
  VsSddmmResult out;
  out.c.rows = pattern.rows;
  out.c.cols = pattern.cols;
  out.c.vector_length = pattern.vector_length;
  out.c.row_ptr = pattern.row_ptr;
  out.c.col_idx = pattern.col_idx;
  const std::size_t v = static_cast<std::size_t>(pattern.vector_length);
  out.c.values.assign(pattern.vector_count() * v, half(0.0f));
  for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
    for (std::uint32_t i = pattern.row_ptr[r]; i < pattern.row_ptr[r + 1];
         ++i) {
      for (std::size_t rb = 0; rb < v; ++rb) {
        float acc = 0.0f;
        for (std::size_t k = 0; k < a.cols(); ++k) {
          acc += float(a(r * v + rb, k)) * float(b(k, pattern.col_idx[i]));
        }
        out.c.values[i * v + rb] = half(acc);
      }
    }
  }
  out.run = vs_sddmm_estimate(pattern, a.cols());
  return out;
}

simt::KernelRun vs_sddmm_estimate(const sparse::BlockPattern& pattern,
                                  std::size_t k_depth) {
  MAGICUBE_CHECK(k_depth % 16 == 0);
  simt::KernelRun run;
  run.launch.warps_per_block = 2;
  run.launch.smem_bytes_per_block =
      static_cast<std::size_t>(pattern.vector_length) * 16 * 2 + 64;
  run.pipeline.prefetch = false;

  const std::uint64_t steps = k_depth / kBsk;
  std::uint64_t blocks = 0;
  for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
    std::uint64_t n_r = pattern.vectors_in_row(r);
    for (std::uint64_t base = 0; base < n_r; base += 16) {
      const std::uint64_t valid = std::min<std::uint64_t>(16, n_r - base);
      auto& c = run.counters;
      c.gmem_load_requests += 1 + steps * (1 + 2);
      c.gmem_load_sectors +=
          2 + steps * (static_cast<std::uint64_t>(pattern.vector_length) +
                       valid);  // A tile rows + one sector per RHS column
      c.smem_store_requests += steps + 4;
      c.smem_store_transactions += steps + 4;
      c.smem_load_requests += steps * 2 + 1;
      c.smem_load_transactions += steps * 2 + 1;
      c.mma_fp16 += steps * 2;  // one 8x8x16 half-tile per warp
      c.syncthreads += steps + 1;
      const std::uint64_t bytes =
          valid * static_cast<std::uint64_t>(pattern.vector_length) * 2;
      c.gmem_store_requests += (bytes + 127) / 128;
      c.gmem_store_sectors += (bytes + 31) / 32;
      blocks += 1;
    }
  }
  run.launch.grid_blocks = blocks;
  run.pipeline.total_steps = blocks * steps;
  run.counters.dram_bytes =
      pattern.rows * k_depth * 2 +
      std::min<std::uint64_t>(pattern.cols * k_depth * 2,
                              pattern.vector_count() * k_depth * 2) +
      pattern.nnz() * 2 + pattern.vector_count() * 4;
  return run;
}

}  // namespace magicube::baselines
