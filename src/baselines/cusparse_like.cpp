#include "baselines/cusparse_like.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/reference.hpp"

namespace magicube::baselines {

sparse::BlockedEll<std::int32_t> make_bell_pattern(std::size_t rows,
                                                   std::size_t cols,
                                                   double sparsity,
                                                   Rng& rng) {
  constexpr std::size_t kB = 8;
  MAGICUBE_CHECK(rows % kB == 0 && cols % kB == 0);
  sparse::BlockedEll<std::int32_t> out;
  out.rows = rows;
  out.cols = cols;
  out.block_size = static_cast<int>(kB);
  const std::size_t bcols = cols / kB;
  out.ell_width = static_cast<std::size_t>(std::max<long>(
      0, std::lround((1.0 - sparsity) * static_cast<double>(bcols))));
  const std::size_t brs = out.block_rows();
  out.block_cols.assign(brs * out.ell_width, sparse::kInvalidCol);
  out.values.assign(out.stored_elems(), 0);

  std::vector<std::uint32_t> picked;
  for (std::size_t br = 0; br < brs; ++br) {
    picked.clear();
    while (picked.size() < out.ell_width) {
      const std::uint32_t c =
          static_cast<std::uint32_t>(rng.next_below(bcols));
      if (std::find(picked.begin(), picked.end(), c) == picked.end()) {
        picked.push_back(c);
      }
    }
    std::sort(picked.begin(), picked.end());
    for (std::size_t e = 0; e < picked.size(); ++e) {
      out.block_cols[br * out.ell_width + e] = picked[e];
      // Dense 8x8 block of small values.
      std::int32_t* blk =
          out.values.data() + (br * out.ell_width + e) * kB * kB;
      for (std::size_t i = 0; i < kB * kB; ++i) {
        blk[i] = static_cast<std::int32_t>(rng.next_in(-128, 127));
      }
    }
  }
  out.validate();
  return out;
}

BellSpmmResult bell_spmm(const sparse::BlockedEll<std::int32_t>& a,
                         const Matrix<std::int32_t>& b, bool int8_path) {
  MAGICUBE_CHECK(a.cols == b.rows());
  BellSpmmResult out;
  out.c = core::reference_gemm(a.to_dense(), b);
  out.run = bell_spmm_estimate(a.rows, b.cols(), a.cols, a.block_count(),
                               int8_path);
  return out;
}

simt::KernelRun bell_spmm_estimate(std::size_t m, std::size_t n,
                                   std::size_t k,
                                   std::uint64_t stored_blocks,
                                   bool int8_path) {
  constexpr std::uint64_t kB = 8;
  const int bytes_per_elem = int8_path ? 1 : 2;

  simt::KernelRun run;
  const std::size_t bsn = 64;
  const std::size_t col_tiles = (n + bsn - 1) / bsn;
  run.launch.grid_blocks = (m / kB) * col_tiles;
  run.launch.warps_per_block = 2;
  run.launch.smem_bytes_per_block =
      (kB * kB + kB * bsn) * static_cast<std::size_t>(bytes_per_elem) + 64;
  // No double-buffered pipeline in the generic library kernel.
  run.pipeline.prefetch = false;

  auto& c = run.counters;
  // Per stored block, per column tile: one 8x8 A block, 8 RHS rows of bsn.
  const std::uint64_t work_units = stored_blocks * col_tiles;
  run.pipeline.total_steps = work_units;
  const std::uint64_t tile_ops = 2 * kB * kB * bsn;
  if (int8_path) {
    c.mma_int8 = work_units * (tile_ops / 2048);
  } else {
    c.mma_fp16 = work_units * (tile_ops / 4096);
  }

  const std::uint64_t a_block_bytes = kB * kB * bytes_per_elem;
  const std::uint64_t rhs_bytes = kB * bsn * bytes_per_elem;
  c.gmem_load_sectors = work_units * (a_block_bytes + rhs_bytes) / 32;
  c.gmem_load_requests = work_units * (1 + kB / 2);
  c.gmem_store_sectors = m * n * 4 / 32;  // int32 output either path
  c.gmem_store_requests = c.gmem_store_sectors / 4 + 1;

  // RHS staging with the generic (unpadded) layout: 2-way replay on the
  // fragment reads.
  c.smem_store_requests = work_units * kB;
  c.smem_store_transactions = c.smem_store_requests;
  c.smem_load_requests = work_units * kB;
  c.smem_load_transactions = 2 * c.smem_load_requests;
  c.syncthreads = work_units;

  c.dram_bytes = stored_blocks * a_block_bytes +
                 std::min<std::uint64_t>(
                     k * n * static_cast<std::uint64_t>(bytes_per_elem),
                     work_units * rhs_bytes) +
                 m * n * 4;
  if (int8_path) {
    // Column-major RHS conversion sweep, as cusparseSpMM requires for
    // integer inputs on Blocked-ELL.
    simt::KernelRun transform;
    const std::uint64_t bytes = k * n;
    transform.launch.grid_blocks = std::max<std::uint64_t>(1, bytes / 16384);
    transform.launch.warps_per_block = 4;
    transform.counters.gmem_load_sectors = bytes / 32 + 1;
    transform.counters.gmem_load_requests = bytes / 128 + 1;
    transform.counters.gmem_store_sectors = bytes / 32 + 1;
    transform.counters.gmem_store_requests = bytes / 128 + 1;
    run.merge(transform);
  }
  return run;
}

}  // namespace magicube::baselines
