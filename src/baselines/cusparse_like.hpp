#pragma once
// "cuSPARSE-like" Blocked-ELL SpMM baseline (fp16 and int8), the comparator
// of Fig. 14.
//
// The paper (following Chen et al.) generates Blocked-ELL instances with
// the same sparsity and problem size as the 1-D-block matrices: 8x8 blocks
// at the same element density, so the useful work matches. The baseline's
// deficits relative to Magicube, all visible in the counters:
//   * no conflict-free staging: the RHS marshalling replays 2-way in shared
//     memory (the library kernel is generic, not shape-specialized),
//   * no software pipelining of the RHS stream (exposed load latency),
//   * the int8 variant needs column-major RHS, adding a transform sweep.
// Performance is also independent of the vector length V, since the format
// always works on 8x8 blocks — visible in Fig. 14, where the cuSPARSE
// curves barely move across the V panels.

#include <cstdint>

#include "common/half.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "simt/cost_model.hpp"
#include "sparse/blocked_ell.hpp"

namespace magicube::baselines {

/// A Blocked-ELL pattern with 8x8 blocks at the requested element sparsity
/// (the benchmark-generation recipe of §V).
sparse::BlockedEll<std::int32_t> make_bell_pattern(std::size_t rows,
                                                   std::size_t cols,
                                                   double sparsity, Rng& rng);

struct BellSpmmResult {
  Matrix<std::int32_t> c;
  simt::KernelRun run;
};

/// Functional Blocked-ELL SpMM (int8 value domain; fp16 timing uses the
/// estimate below with the same structure).
BellSpmmResult bell_spmm(const sparse::BlockedEll<std::int32_t>& a,
                         const Matrix<std::int32_t>& b, bool int8_path);

/// Counters for a Blocked-ELL SpMM with `stored_blocks` 8x8 blocks over an
/// (m x k) x (k x n) problem; `int8_path` selects int8 vs fp16.
simt::KernelRun bell_spmm_estimate(std::size_t m, std::size_t n,
                                   std::size_t k,
                                   std::uint64_t stored_blocks,
                                   bool int8_path);

}  // namespace magicube::baselines
