#include "baselines/dense_gemm.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace magicube::baselines {

namespace {

// Shared tile geometry of the modelled dense kernels.
constexpr std::size_t kTileM = 128, kTileN = 128;

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Tile-level counters of a dense GEMM with `bytes_per_elem`-wide operands
/// and a K-step of `kstep`. Traffic per block-step: one A tile slice
/// (kTileM x kstep) and one B slice (kstep x kTileN), both through shared
/// memory; mma work is the full tile product.
simt::KernelRun tiled_gemm_counters(std::size_t m, std::size_t n,
                                    std::size_t k, int bytes_per_elem,
                                    bool int8_path) {
  simt::KernelRun run;
  const std::size_t bm = ceil_div(m, kTileM), bn = ceil_div(n, kTileN);
  const std::size_t kstep = int8_path ? 64 : 32;
  const std::size_t steps = ceil_div(k, kstep);

  run.launch.grid_blocks = bm * bn;
  run.launch.warps_per_block = 8;
  // Double-buffered A and B slices.
  run.launch.smem_bytes_per_block =
      2 * (kTileM * kstep + kstep * kTileN) *
      static_cast<std::size_t>(bytes_per_elem);
  run.pipeline.prefetch = true;
  run.pipeline.total_steps = run.launch.grid_blocks * steps;

  auto& c = run.counters;
  const std::uint64_t tile_ops = 2ull * kTileM * kTileN * kstep;
  const std::uint64_t mma_ops_per_issue = int8_path ? 2048 : 4096;
  std::uint64_t mmas = run.launch.grid_blocks * steps *
                       (tile_ops / mma_ops_per_issue);
  if (int8_path) {
    mmas = static_cast<std::uint64_t>(
        static_cast<double>(mmas) * kImmaIssueFactor);
    c.mma_int8 = mmas;
  } else {
    c.mma_fp16 = mmas;
  }

  // Global traffic per block-step: both slices, coalesced.
  const std::uint64_t slice_bytes =
      (kTileM * kstep + kstep * kTileN) *
      static_cast<std::uint64_t>(bytes_per_elem);
  c.gmem_load_sectors = run.launch.grid_blocks * steps * slice_bytes / 32;
  c.gmem_load_requests = run.launch.grid_blocks * steps * slice_bytes / 128;
  // C writeback (fp16 out for fp16 path, int32 out for IMMA).
  const std::uint64_t c_bytes = m * n *
                                (int8_path ? 4ull
                                           : static_cast<std::uint64_t>(2));
  c.gmem_store_sectors = c_bytes / 32 + 1;
  c.gmem_store_requests = c_bytes / 128 + 1;
  // Shared-memory staging: each slice byte is stored and loaded once;
  // 128 bytes per conflict-free transaction.
  c.smem_store_requests = c.smem_store_transactions =
      run.launch.grid_blocks * steps * slice_bytes / 128;
  c.smem_load_requests = c.smem_load_transactions =
      c.smem_store_requests * 2;  // fragments re-read operands twice
  c.syncthreads = run.launch.grid_blocks * steps;

  // Compulsory DRAM: operands + output once (the working set of every
  // benchmarked shape fits the 40 MB L2).
  c.dram_bytes =
      (m * k + k * n) * static_cast<std::uint64_t>(bytes_per_elem) + c_bytes;
  return run;
}

/// The IMMA layout-transform passes: operands are re-tiled into the
/// interleaved NT layout before the GEMM and the int32 output is
/// de-interleaved afterwards — two extra kernels sweeping all three
/// matrices (the reason cublasLtMatmul int8 needs explicit transform calls).
simt::KernelRun imma_transform_pass(std::size_t m, std::size_t n,
                                    std::size_t k) {
  simt::KernelRun run;
  const std::uint64_t bytes = (m * k + k * n) + m * n * 4;
  run.launch.grid_blocks = std::max<std::uint64_t>(1, bytes / 16384);
  run.launch.warps_per_block = 4;
  run.kernel_launches = 2;
  auto& c = run.counters;
  c.gmem_load_sectors = bytes / 32 + 1;
  c.gmem_load_requests = bytes / 128 + 1;
  c.gmem_store_sectors = c.gmem_load_sectors;
  c.gmem_store_requests = c.gmem_load_requests;
  c.alu_ops = bytes / 128;  // per-warp permute work
  c.dram_bytes = 0;         // stays in L2 between passes
  return run;
}

}  // namespace

GemmFp16Result dense_gemm_fp16(const Matrix<half>& a, const Matrix<half>& b) {
  MAGICUBE_CHECK(a.cols() == b.rows());
  GemmFp16Result out;
  out.c = Matrix<half>(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) {
        acc += float(a(i, kk)) * float(b(kk, j));
      }
      out.c(i, j) = half(acc);
    }
  }
  out.run = dense_gemm_fp16_estimate(a.rows(), b.cols(), a.cols());
  return out;
}

simt::KernelRun dense_gemm_fp16_estimate(std::size_t m, std::size_t n,
                                         std::size_t k) {
  return tiled_gemm_counters(m, n, k, 2, /*int8_path=*/false);
}

GemmInt8Result dense_gemm_int8(const Matrix<std::int32_t>& a,
                               const Matrix<std::int32_t>& b) {
  MAGICUBE_CHECK(a.cols() == b.rows());
  GemmInt8Result out;
  out.c = Matrix<std::int32_t>(a.rows(), b.cols(), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t kk = 0; kk < a.cols(); ++kk) {
      const std::int64_t av = a(i, kk);
      if (av == 0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out.c(i, j) = static_cast<std::int32_t>(
            static_cast<std::int64_t>(out.c(i, j)) + av * b(kk, j));
      }
    }
  }
  out.run = dense_gemm_int8_estimate(a.rows(), b.cols(), a.cols());
  return out;
}

simt::KernelRun dense_gemm_int8_estimate(std::size_t m, std::size_t n,
                                         std::size_t k) {
  simt::KernelRun run = tiled_gemm_counters(m, n, k, 1, /*int8_path=*/true);
  run.merge(imma_transform_pass(m, n, k));
  return run;
}

}  // namespace magicube::baselines
