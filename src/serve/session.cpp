#include "serve/session.hpp"

#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "serve/device_pool.hpp"

namespace magicube::serve {

std::shared_ptr<const sparse::BlockPattern> slice_session_mask(
    const sparse::BlockPattern& full, std::size_t length) {
  const std::size_t v = static_cast<std::size_t>(full.vector_length);
  MAGICUBE_CHECK_MSG(full.rows == full.cols, "session masks are square");
  MAGICUBE_CHECK_MSG(length > 0 && length <= full.rows,
                     "session slice length out of range");
  MAGICUBE_CHECK_MSG(length % v == 0,
                     "session slice must land on an SR-BCRS block-row "
                     "boundary (a multiple of the mask's vector length)");
  // Rows: a plain block-row slice of the full mask.
  const sparse::BlockPattern rows =
      sparse::slice_vector_rows(full, 0, length / v);
  // Columns: clamp to the visible prefix. col_idx is strictly increasing
  // within a row, so each row keeps a prefix of its slots.
  auto out = std::make_shared<sparse::BlockPattern>();
  out->rows = length;
  out->cols = length;
  out->vector_length = full.vector_length;
  out->row_ptr.reserve(rows.row_ptr.size());
  out->row_ptr.push_back(0);
  for (std::size_t r = 0; r + 1 < rows.row_ptr.size(); ++r) {
    for (std::uint32_t i = rows.row_ptr[r]; i < rows.row_ptr[r + 1]; ++i) {
      if (rows.col_idx[i] < length) out->col_idx.push_back(rows.col_idx[i]);
    }
    out->row_ptr.push_back(static_cast<std::uint32_t>(out->col_idx.size()));
  }
  return out;
}

TokenSession::TokenSession(DevicePool* pool, std::uint64_t id,
                           SessionConfig cfg)
    : pool_(pool), id_(id), cfg_(std::move(cfg)) {}

TokenSession::TokenSession(TokenSession&& o) noexcept
    : pool_(o.pool_),
      id_(o.id_),
      cfg_(std::move(o.cfg_)),
      dk_(o.dk_),
      length_(o.length_),
      steps_(o.steps_),
      q_(std::move(o.q_)),
      k_(std::move(o.k_)),
      v_(std::move(o.v_)) {
  o.pool_ = nullptr;
}

TokenSession& TokenSession::operator=(TokenSession&& o) noexcept {
  if (this != &o) {
    close();
    pool_ = o.pool_;
    id_ = o.id_;
    cfg_ = std::move(o.cfg_);
    dk_ = o.dk_;
    length_ = o.length_;
    steps_ = o.steps_;
    q_ = std::move(o.q_);
    k_ = std::move(o.k_);
    v_ = std::move(o.v_);
    o.pool_ = nullptr;
  }
  return *this;
}

TokenSession::~TokenSession() { close(); }

void TokenSession::close() {
  if (pool_ != nullptr) {
    pool_->close_session(id_);
    pool_ = nullptr;
  }
}

std::future<Response> TokenSession::step(const Matrix<float>& q_rows,
                                         const Matrix<float>& k_rows,
                                         const Matrix<float>& v_rows) {
  MAGICUBE_CHECK_MSG(pool_ != nullptr, "step() on a closed session");
  const std::size_t grow = q_rows.rows();
  const std::size_t v = static_cast<std::size_t>(cfg_.mask->vector_length);
  MAGICUBE_CHECK_MSG(grow > 0 && grow % v == 0,
                     "token rows arrive in multiples of the mask's "
                     "SR-BCRS vector length");
  MAGICUBE_CHECK_MSG(k_rows.rows() == grow && v_rows.rows() == grow &&
                         k_rows.cols() == q_rows.cols() &&
                         v_rows.cols() == q_rows.cols(),
                     "Q/K/V row blocks must agree in shape");
  if (dk_ == 0) {
    dk_ = q_rows.cols();
    MAGICUBE_CHECK_MSG(dk_ == cfg_.dk,
                       "session dk differs from the admitted SessionConfig "
                       "(admission priced the wrong stream)");
  }
  MAGICUBE_CHECK_MSG(q_rows.cols() == dk_, "session dk changed mid-stream");
  MAGICUBE_CHECK_MSG(length_ + grow <= cfg_.mask->rows,
                     "token stream grew past its full-length mask");

  q_.insert(q_.end(), q_rows.data(), q_rows.data() + q_rows.size());
  k_.insert(k_.end(), k_rows.data(), k_rows.data() + k_rows.size());
  v_.insert(v_.end(), v_rows.data(), v_rows.data() + v_rows.size());
  length_ += grow;

  // Materialize the prefix operands for this step. The copies are the
  // request's own (the engine holds them past submit()).
  auto q = std::make_shared<Matrix<float>>(length_, dk_);
  auto k = std::make_shared<Matrix<float>>(length_, dk_);
  auto vv = std::make_shared<Matrix<float>>(length_, dk_);
  std::memcpy(q->data(), q_.data(), q_.size() * sizeof(float));
  std::memcpy(k->data(), k_.data(), k_.size() * sizeof(float));
  std::memcpy(vv->data(), v_.data(), v_.size() * sizeof(float));

  auto graph = std::make_shared<GraphRequest>();
  graph->q = std::move(q);
  graph->k = std::move(k);
  graph->v = std::move(vv);
  graph->mask = slice_session_mask(*cfg_.mask, length_);
  graph->scheme = cfg_.scheme;
  graph->session_id = id_;
  graph->step = steps_;
  steps_ += 1;

  Request req = make_graph_request(std::move(graph), cfg_.priority,
                                   cfg_.step_deadline_seconds);
  pool_->note_session_step();
  return pool_->submit(std::move(req));
}

}  // namespace magicube::serve
