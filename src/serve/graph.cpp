#include "serve/graph.hpp"

#include <utility>

#include "common/check.hpp"
#include "core/api.hpp"
#include "transformer/ops.hpp"

namespace magicube::serve {

namespace {

Scalar scalar_for_bits(int bits) {
  switch (bits) {
    case 4: return Scalar::s4;
    case 8: return Scalar::s8;
    default: return Scalar::s16;
  }
}

void validate_graph(const GraphRequest& g) {
  MAGICUBE_CHECK_MSG(g.q && g.k && g.v && g.mask,
                     "graph request is missing operands or mask");
  MAGICUBE_CHECK_MSG(transformer::is_magicube(g.scheme),
                     "graph requests serve the Magicube schemes only");
  MAGICUBE_CHECK(g.q->rows() == g.k->rows() && g.q->cols() == g.k->cols());
  MAGICUBE_CHECK(g.v->rows() == g.q->rows() && g.v->cols() == g.q->cols());
  MAGICUBE_CHECK_MSG(
      g.mask->rows == g.q->rows() && g.mask->cols == g.q->rows(),
      "graph mask must be L x L for L x dk activations");
}

core::SddmmConfig graph_sddmm_cfg(transformer::AttentionScheme scheme) {
  const Scalar qkv = scalar_for_bits(transformer::qkv_bits(scheme));
  core::SddmmConfig cfg;
  cfg.precision = PrecisionPair{qkv, qkv};
  return cfg;
}

core::SpmmConfig graph_spmm_cfg(transformer::AttentionScheme scheme) {
  core::SpmmConfig cfg;
  cfg.precision =
      PrecisionPair{scalar_for_bits(transformer::softmax_bits(scheme)),
                    scalar_for_bits(transformer::qkv_bits(scheme))};
  return cfg;
}

/// The fused DAG's merged run: quant-QKV + SDDMM + softmax + SpMM under one
/// roofline (max-of-sums across resources — the modeled fusion win over the
/// per-stage sum-of-maxes). The sparse softmax(+quantize) is fused into the
/// SDDMM epilogue on device (§IV-C: the SDDMM writes SR-BCRS directly), so
/// its traffic is merged but its kernel launch disappears. Used identically
/// by pricing and execution, keeping estimate-equals-execute exact.
simt::KernelRun assemble_fused_run(std::size_t l, std::size_t dk,
                                   std::uint64_t mask_nnz,
                                   const simt::KernelRun& sddmm_run,
                                   const simt::KernelRun& spmm_run) {
  simt::KernelRun run =
      transformer::elementwise_kernel(3 * l * dk, 2.0, 5.0);  // quant QKV
  run.merge(sddmm_run);
  const simt::KernelRun sm = transformer::softmax_kernel(mask_nnz, 2);
  run.pipeline.total_steps += sm.pipeline.total_steps;
  run.counters += sm.counters;  // launch folded into the SDDMM epilogue
  run.merge(spmm_run);
  return run;
}

/// Stage-plan runs from the plan cache when resident, closed-form
/// estimates otherwise (the two are equal by construction — estimates ARE
/// the plans' analytic runs).
simt::KernelRun sddmm_run_for(const GraphRequest& g, OperandCache& plans) {
  const core::SddmmConfig cfg = graph_sddmm_cfg(g.scheme);
  const std::uint64_t fp = plans.pattern_identity(g.mask);
  const CachedOperand hit =
      plans.find(sddmm_plan_key(fp, g.q->cols(), cfg));
  return hit ? hit.sddmm_plan->run
             : core::sddmm_estimate(*g.mask, g.q->cols(), cfg);
}

simt::KernelRun spmm_run_for(const GraphRequest& g, OperandCache& plans) {
  const core::SpmmConfig cfg = graph_spmm_cfg(g.scheme);
  const std::uint64_t fp = plans.pattern_identity(g.mask);
  const CachedOperand hit = plans.find(spmm_plan_key(fp, g.q->cols(), cfg));
  return hit ? hit.spmm_plan->run
             : core::spmm_estimate(*g.mask, g.q->cols(), cfg);
}

}  // namespace

Request make_graph_request(std::shared_ptr<const GraphRequest> graph,
                           int priority, double deadline_seconds) {
  MAGICUBE_CHECK_MSG(graph != nullptr, "make_graph_request needs a graph");
  validate_graph(*graph);
  Request req;
  // The DAG's first stage: keeps the wrapper's placement affinity in the
  // SDDMM identity domain so a stream's steps land near their cached
  // operands and plans.
  req.op = OpKind::sddmm;
  const Scalar qkv = scalar_for_bits(transformer::qkv_bits(graph->scheme));
  req.precision = PrecisionPair{qkv, qkv};
  req.pattern = graph->mask;
  req.lhs_id = graph->session_id;
  req.priority = priority;
  req.deadline_seconds = deadline_seconds;
  req.graph = std::move(graph);
  return req;
}

simt::KernelRun price_graph_request(const GraphRequest& g,
                                    OperandCache& plans) {
  validate_graph(g);
  return assemble_fused_run(g.q->rows(), g.q->cols(), g.mask->nnz(),
                            sddmm_run_for(g, plans), spmm_run_for(g, plans));
}

std::vector<simt::KernelRun> price_staged_graph(const GraphRequest& g,
                                                OperandCache& plans) {
  validate_graph(g);
  const std::size_t l = g.q->rows(), dk = g.q->cols();
  const std::uint64_t nnz = g.mask->nnz();
  std::vector<simt::KernelRun> runs;
  runs.reserve(6);
  runs.push_back(transformer::elementwise_kernel(3 * l * dk, 2.0, 5.0));
  runs.push_back(sddmm_run_for(g, plans));
  // The interlude fusion eliminates (§IV-C): dequantize the sampled scores
  // out of the SDDMM's integer output (read int32 + write fp32 per nnz)...
  runs.push_back(transformer::elementwise_kernel(nnz, 1.0, 8.0));
  runs.push_back(transformer::softmax_kernel(nnz, 2));
  // ...then re-quantize and scatter the attention weights over the dense
  // L x L SpMM LHS image the unfused kernel consumes.
  runs.push_back(transformer::elementwise_kernel(l * l, 1.0, 5.0));
  runs.push_back(spmm_run_for(g, plans));
  return runs;
}

double price_session_step_seconds(const sparse::BlockPattern& mask,
                                  std::size_t dk,
                                  transformer::AttentionScheme scheme,
                                  const simt::DeviceSpec& device) {
  MAGICUBE_CHECK_MSG(mask.rows == mask.cols,
                     "session masks are square (L x L)");
  const std::size_t l = mask.rows;
  const core::SddmmConfig scfg = graph_sddmm_cfg(scheme);
  const core::SpmmConfig pcfg = graph_spmm_cfg(scheme);
  const simt::KernelRun run =
      assemble_fused_run(l, dk, mask.nnz(), core::sddmm_estimate(mask, dk, scfg),
                         core::spmm_estimate(mask, dk, pcfg));
  return simt::estimate_seconds(device, run);
}

Response serve_graph_request(const GraphRequest& g, OperandCache& operands,
                             OperandCache& plans,
                             const simt::DeviceSpec& device) {
  validate_graph(g);
  transformer::AttentionArena arena;
  arena.scheme = g.scheme;
  arena.mask = g.mask;

  transformer::AttentionStageFlags f1, f3;
  attention_stage_sddmm(arena, *g.q, *g.k, *g.v, &operands, &plans, &f1);
  attention_stage_softmax_quantize(arena);
  // cache_lhs=false: the quantized attention weights are the DAG's
  // intermediate — prepared straight into the arena, never cached.
  attention_stage_spmm(arena, &operands, &plans, /*cache_lhs=*/false, &f3);

  auto result = std::make_shared<GraphResult>();
  result->out = attention_stage_output(arena);

  // Per-stage breakdown: each stage priced on its own (its own launches),
  // for the trace spans and the fusion-win accounting.
  const std::size_t l = arena.l, dk = arena.dk;
  simt::KernelRun s1 = transformer::elementwise_kernel(3 * l * dk, 2.0, 5.0);
  s1.merge(arena.sddmm.run);
  const simt::KernelRun s2 = transformer::softmax_kernel(g.mask->nnz(), 2);
  const simt::KernelRun s3 = arena.spmm.run;
  result->stages.push_back(GraphStage{
      "sddmm", s1, simt::estimate_seconds(device, s1), f1.lhs_cache_hit,
      f1.rhs_cache_hit, f1.plan_cache_hit});
  result->stages.push_back(GraphStage{
      "softmax_quantize", s2, simt::estimate_seconds(device, s2), false,
      false, false});
  result->stages.push_back(GraphStage{
      "spmm", s3, simt::estimate_seconds(device, s3), f3.lhs_cache_hit,
      f3.rhs_cache_hit, f3.plan_cache_hit});

  Response resp;
  resp.op = OpKind::sddmm;  // the wrapper request's op
  resp.lhs_cache_hit = f1.lhs_cache_hit;   // quantized Q
  resp.rhs_cache_hit = f3.rhs_cache_hit;   // quantized V
  resp.plan_cache_hit = f1.plan_cache_hit && f3.plan_cache_hit;
  // The fused estimate: one merged roofline over all stages, the softmax
  // launch folded away. Matches price_graph_request exactly.
  resp.modeled_seconds = simt::estimate_seconds(
      device, assemble_fused_run(l, dk, g.mask->nnz(), arena.sddmm.run,
                                 arena.spmm.run));
  resp.graph = std::move(result);
  return resp;
}

}  // namespace magicube::serve
