#pragma once
// SLA layer of the serving engines: deadline shedding, cost-model request
// pricing, and manifest-driven cache warmup.
//
// The paper's analytic kernel characterization gives every plan a free
// `KernelRun`, so `simt::estimate_seconds` prices any candidate placement
// *before* dispatch. This header holds the pieces the SLA-aware traffic
// management builds on that price signal:
//
//   - ShedError: the clean rejection a request receives when its modeled
//     completion (queue wait + execution on the best candidate device)
//     already exceeds its deadline — admission control instead of serving
//     work that is guaranteed late, and never a silent drop (the future
//     throws, the trace records a `shed` span, stats count it);
//   - price_request(): the shared one-stop pricing path — the cached plan's
//     KernelRun when the plan is resident (O(1)), the analytic estimator
//     otherwise (identical numbers by the estimate-equals-execute
//     invariant), without building or caching anything;
//   - WarmupManifest: a deployment's known-hot layers (pattern + precision
//     + width per entry), pre-built into a plan cache at startup and
//     optionally pinned against LRU eviction via the existing PinScope —
//     repeat-pattern traffic starts with plan hits instead of paying
//     pure-LRU cold starts;
//   - HealingConfig: the self-healing policy knobs of the DevicePool —
//     per-device health scoring (an EWMA over execution outcomes),
//     circuit-breaker quarantine with probe-driven reinstatement, hedged
//     execution for deadline traffic drifting toward its budget, and
//     poison-request isolation. The machinery lives in
//     serve/device_pool.cpp; this is its policy surface, beside the other
//     SLA knobs because both reason on the same modeled-price signal.
//
// Both engines consume this layer: DevicePool::warmup / the deadline-aware
// dispatcher (serve/device_pool.hpp) and BatchScheduler::warmup / the
// modeled-work batch sizing (serve/scheduler.hpp).

#include <cstddef>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "serve/operand_cache.hpp"
#include "serve/request.hpp"
#include "simt/cost_model.hpp"

namespace magicube::serve {

/// Thrown (on the request's future) when the SLA layer sheds a request
/// whose modeled completion exceeds its deadline on every active device.
/// Derives Error so generic failure handling treats it like any rejection;
/// catch it specifically to distinguish load shedding from real failures.
class ShedError : public Error {
 public:
  using Error::Error;
};

/// Self-healing policy of a DevicePool. Disabled by default: with
/// enabled=false the fleet behaves exactly as before this layer existed
/// (no scoring, no quarantine, no hedging, no poison fast-fail), which is
/// what keeps the pre-healing schedules — and the trace golden file —
/// byte-identical.
///
/// Health is an EWMA over per-device execution outcomes,
///   health' = (1 - health_alpha) * health + health_alpha * [ok],
/// starting at 1.0. A device whose score falls below quarantine_below
/// (with at least min_health_samples outcomes behind it) is quarantined:
/// removed from placement candidates, its queued tickets re-placed via the
/// drain re-placement path. Every probe_interval placements, a quarantined
/// device is offered one low-risk probe (a deadline-free whole request);
/// reinstate_after consecutive probe successes close the breaker and reset
/// the score. Should every active device end up quarantined, placement
/// falls back to the quarantined candidates — the breaker degrades, it
/// never deadlocks the fleet.
struct HealingConfig {
  bool enabled = false;
  /// EWMA weight of the newest outcome, in (0, 1].
  double health_alpha = 0.3;
  /// Quarantine a device when health < this threshold, in [0, 1].
  double quarantine_below = 0.5;
  /// Outcomes a device must have produced before the breaker may trip.
  std::uint64_t min_health_samples = 4;
  /// Whole placements between probe offers to a quarantined device.
  std::uint64_t probe_interval = 8;
  /// Consecutive probe successes that reinstate a quarantined device.
  std::uint64_t reinstate_after = 3;
  /// Hedged execution: when > 0, a deadline-carrying whole request whose
  /// modeled completion exceeds this fraction of its deadline (at
  /// admission or after a re-placement) gets a duplicate on the best
  /// alternative device; the copy with the earlier modeled completion
  /// wins, the loser rolls off the modeled clock unexecuted. 0 disables.
  double hedge_deadline_fraction = 0.0;
  /// Fail a request fast (PoisonError) once it has faulted on this many
  /// distinct devices. 0 disables poison isolation.
  std::size_t poison_fault_devices = 2;

  /// Throws Error on out-of-range knobs (DevicePool validates at
  /// construction).
  void validate() const;
};

/// Prices a request without executing (or caching) anything: the cached
/// plan's KernelRun when one is resident in `plans`, the analytic
/// estimator otherwise — identical numbers either way by the
/// estimate-equals-execute invariant. Shared by the DevicePool dispatcher
/// (placement, shedding, shard decisions) and the BatchScheduler's
/// modeled-work batch sizing.
simt::KernelRun price_request(const Request& req, OperandCache& plans);

/// One known-hot layer of a deployment manifest: enough identity to
/// pre-build its execution plan (plans are pattern-only, so no weights are
/// needed — layers warm up before any weight version exists).
struct WarmupEntry {
  OpKind op = OpKind::spmm;
  PrecisionPair precision = precision::L8R8;
  /// SpMM: the M x K LHS sparsity. SDDMM: the M x N output sampling.
  std::shared_ptr<const sparse::BlockPattern> pattern;
  /// SpMM: RHS width N. SDDMM: reduction depth K.
  std::size_t cols = 0;
  core::SpmmVariant variant = core::SpmmVariant::full;  // SpMM only
  int bsn = 64;                                         // SpMM only
  bool sddmm_prefetch = false;                          // SDDMM only
  /// Hot layer: pin the built plan against LRU eviction for the lifetime
  /// of the warmup scope (the engine's, for DevicePool/BatchScheduler
  /// warmup()).
  bool pin = false;
};

/// The warmup manifest: the pattern fingerprints + precisions a deployment
/// serves hot, listed as buildable entries. See the README "SLA-aware
/// serving" section for the field-by-field format.
struct WarmupManifest {
  std::vector<WarmupEntry> entries;
};

struct WarmupReport {
  std::size_t plans_built = 0;     // cold entries built by this warmup
  std::size_t plans_resident = 0;  // entries already cached
  std::size_t pinned = 0;          // entries pinned as hot layers
};

/// Pre-builds every manifest entry's execution plan into `plans` and pins
/// the entries marked hot into `pins` (the caller keeps the scope alive —
/// releasing it returns the entries to ordinary LRU). Idempotent: already
/// resident entries count as plans_resident and are still pinned when
/// requested. Throws Error on a malformed entry (missing pattern, zero
/// width).
WarmupReport warmup_plans(OperandCache& plans, const WarmupManifest& manifest,
                          OperandCache::PinScope* pins);

}  // namespace magicube::serve
