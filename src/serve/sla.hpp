#pragma once
// SLA layer of the serving engines: deadline shedding, cost-model request
// pricing, and manifest-driven cache warmup.
//
// The paper's analytic kernel characterization gives every plan a free
// `KernelRun`, so `simt::estimate_seconds` prices any candidate placement
// *before* dispatch. This header holds the pieces the SLA-aware traffic
// management builds on that price signal:
//
//   - ShedError: the clean rejection a request receives when its modeled
//     completion (queue wait + execution on the best candidate device)
//     already exceeds its deadline — admission control instead of serving
//     work that is guaranteed late, and never a silent drop (the future
//     throws, the trace records a `shed` span, stats count it);
//   - price_request(): the shared one-stop pricing path — the cached plan's
//     KernelRun when the plan is resident (O(1)), the analytic estimator
//     otherwise (identical numbers by the estimate-equals-execute
//     invariant), without building or caching anything;
//   - WarmupManifest: a deployment's known-hot layers (pattern + precision
//     + width per entry), pre-built into a plan cache at startup and
//     optionally pinned against LRU eviction via the existing PinScope —
//     repeat-pattern traffic starts with plan hits instead of paying
//     pure-LRU cold starts.
//
// Both engines consume this layer: DevicePool::warmup / the deadline-aware
// dispatcher (serve/device_pool.hpp) and BatchScheduler::warmup / the
// modeled-work batch sizing (serve/scheduler.hpp).

#include <cstddef>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "serve/operand_cache.hpp"
#include "serve/request.hpp"
#include "simt/cost_model.hpp"

namespace magicube::serve {

/// Thrown (on the request's future) when the SLA layer sheds a request
/// whose modeled completion exceeds its deadline on every active device.
/// Derives Error so generic failure handling treats it like any rejection;
/// catch it specifically to distinguish load shedding from real failures.
class ShedError : public Error {
 public:
  using Error::Error;
};

/// Prices a request without executing (or caching) anything: the cached
/// plan's KernelRun when one is resident in `plans`, the analytic
/// estimator otherwise — identical numbers either way by the
/// estimate-equals-execute invariant. Shared by the DevicePool dispatcher
/// (placement, shedding, shard decisions) and the BatchScheduler's
/// modeled-work batch sizing.
simt::KernelRun price_request(const Request& req, OperandCache& plans);

/// One known-hot layer of a deployment manifest: enough identity to
/// pre-build its execution plan (plans are pattern-only, so no weights are
/// needed — layers warm up before any weight version exists).
struct WarmupEntry {
  OpKind op = OpKind::spmm;
  PrecisionPair precision = precision::L8R8;
  /// SpMM: the M x K LHS sparsity. SDDMM: the M x N output sampling.
  std::shared_ptr<const sparse::BlockPattern> pattern;
  /// SpMM: RHS width N. SDDMM: reduction depth K.
  std::size_t cols = 0;
  core::SpmmVariant variant = core::SpmmVariant::full;  // SpMM only
  int bsn = 64;                                         // SpMM only
  bool sddmm_prefetch = false;                          // SDDMM only
  /// Hot layer: pin the built plan against LRU eviction for the lifetime
  /// of the warmup scope (the engine's, for DevicePool/BatchScheduler
  /// warmup()).
  bool pin = false;
};

/// The warmup manifest: the pattern fingerprints + precisions a deployment
/// serves hot, listed as buildable entries. See the README "SLA-aware
/// serving" section for the field-by-field format.
struct WarmupManifest {
  std::vector<WarmupEntry> entries;
};

struct WarmupReport {
  std::size_t plans_built = 0;     // cold entries built by this warmup
  std::size_t plans_resident = 0;  // entries already cached
  std::size_t pinned = 0;          // entries pinned as hot layers
};

/// Pre-builds every manifest entry's execution plan into `plans` and pins
/// the entries marked hot into `pins` (the caller keeps the scope alive —
/// releasing it returns the entries to ordinary LRU). Idempotent: already
/// resident entries count as plans_resident and are still pinned when
/// requested. Throws Error on a malformed entry (missing pattern, zero
/// width).
WarmupReport warmup_plans(OperandCache& plans, const WarmupManifest& manifest,
                          OperandCache::PinScope* pins);

}  // namespace magicube::serve
