#include "serve/device_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "core/plan.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard.hpp"
#include "simt/cost_model.hpp"

namespace magicube::serve {

namespace {

struct Pending {
  Request req;
  std::promise<Response> promise;
};

}  // namespace

struct DevicePool::Impl {
  DevicePool* owner = nullptr;

  std::mutex mutex;
  std::condition_variable queue_changed;  // dispatcher wakes on submits/stop
  std::condition_variable queue_space;    // bounded submitters wake on drain
  std::condition_variable idle;           // drain()/dtor wake on completion
  std::deque<Pending> queue;
  bool stopping = false;
  DevicePoolStats stats;
  std::uint64_t outstanding = 0;
  std::uint64_t blocked_submitters = 0;
  std::uint64_t next_batch_id = 1;
  std::uint64_t rr_cursor = 0;  // round-robin tie-break cursor
  std::thread thread;

  /// Rendezvous of one sharded request: slice tasks fill disjoint parts and
  /// the last finisher merges — no pool task ever waits on another.
  struct ShardState {
    Pending pending;
    std::uint64_t full_lhs_content = 0;
    std::vector<RowSlice> slices;
    std::vector<std::shared_ptr<const sparse::BlockPattern>> patterns;
    std::vector<core::SpmmPlanHandle> plans;
    std::vector<std::size_t> devices;
    std::vector<core::SpmmResult> parts;
    std::vector<char> lhs_hits;
    std::vector<double> ests;  // per-slice modeled seconds (rollback needs)
    core::DenseOperandHandle rhs;
    bool rhs_hit = false;
    bool all_plan_hits = true;
    double modeled_makespan = 0.0;
    std::uint64_t batch_id = 0;
    std::size_t batch_size = 0;
    OperandCache::PinScope plan_pins;  // held until the merge completes
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  void loop() {
    for (;;) {
      std::deque<Pending> taken;
      {
        std::unique_lock<std::mutex> lock(mutex);
        queue_changed.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping && drained
        if (!stopping && owner->cfg_.linger.count() > 0) {
          // Linger so bursts coalesce into one placement round (better
          // spreading than placing each arrival against a stale backlog
          // picture). A full bounded queue cuts the linger short.
          const std::size_t depth = owner->cfg_.max_queue_depth;
          queue_changed.wait_for(lock, owner->cfg_.linger, [&] {
            return stopping || (depth > 0 && queue.size() >= depth);
          });
        }
        taken.swap(queue);
        queue_space.notify_all();
      }
      dispatch(std::move(taken));
    }
  }

  void dispatch(std::deque<Pending> taken) {
    std::vector<Pending> batch;
    batch.reserve(taken.size());
    while (!taken.empty()) {
      batch.push_back(std::move(taken.front()));
      taken.pop_front();
    }
    // Priority classes: higher priorities place (and therefore claim the
    // least-loaded devices) first; equal priorities keep arrival order.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Pending& a, const Pending& b) {
                       return a.req.priority > b.req.priority;
                     });
    std::uint64_t batch_id;
    {
      std::lock_guard<std::mutex> lock(mutex);
      batch_id = next_batch_id++;
    }
    const std::size_t batch_size = batch.size();
    for (Pending& p : batch) {
      try {
        // place() moves from p only once placement is committed; on a
        // throw before that (malformed request, plan build failure) the
        // promise is still here to carry the failure.
        place(p, batch_id, batch_size);
      } catch (...) {
        p.promise.set_exception(std::current_exception());
        complete(/*failed=*/true);
      }
    }
  }

  /// Earliest modeled completion wins. The pool is homogeneous, so the
  /// request's estimate is a uniform addend and the argmin over
  /// backlog + estimate reduces to least modeled backlog (a heterogeneous
  /// pool would price the run per candidate spec here — the ROADMAP
  /// follow-on). Exact ties — the idle-pool common case — are broken
  /// round-robin so bursts spread instead of piling onto device 0. Lock
  /// held.
  std::size_t choose_device_locked() {
    double best = 0.0;
    std::vector<std::size_t> tied;
    for (std::size_t d = 0; d < stats.devices.size(); ++d) {
      const double t = stats.devices[d].modeled_busy_seconds;
      if (tied.empty() || t < best) {
        best = t;
        tied.assign(1, d);
      } else if (t == best) {
        tied.push_back(d);
      }
    }
    if (tied.size() == 1) return tied.front();
    stats.tie_breaks += 1;
    return tied[rr_cursor++ % tied.size()];
  }

  void place(Pending& p, std::uint64_t batch_id, std::size_t batch_size) {
    const Request& req = p.req;
    MAGICUBE_CHECK_MSG(req.pattern && req.lhs_values && req.rhs_values,
                       "serve request is missing pattern or operand values");
    const DevicePoolConfig& cfg = owner->cfg_;

    // Price the request on its cached plan when one is resident (O(1));
    // otherwise fall back to the analytic estimator — identical numbers by
    // the estimate-equals-execute invariant — WITHOUT building or caching
    // anything: a request about to shard would only churn the plan cache
    // with a full plan no one replays. The executing path builds and
    // caches the plan it actually needs (and reports plan_cache_hit from
    // what it observed at execution time, so an eviction between pricing
    // and execution is not masked).
    const std::uint64_t pattern_fp =
        owner->plan_cache_.pattern_identity(req.pattern);
    simt::KernelRun run;
    core::SpmmConfig scfg;
    if (req.op == OpKind::spmm) {
      scfg.precision = req.precision;
      scfg.variant = req.variant;
      scfg.bsn = req.bsn;
      const CachedOperand hit = owner->plan_cache_.find(
          spmm_plan_key(pattern_fp, req.rhs_values->cols(), scfg));
      run = hit ? hit.spmm_plan->run
                : core::spmm_estimate(*req.pattern, req.rhs_values->cols(),
                                      scfg);
    } else {
      core::SddmmConfig dcfg;
      dcfg.precision = req.precision;
      dcfg.prefetch = req.sddmm_prefetch;
      const CachedOperand hit = owner->plan_cache_.find(
          sddmm_plan_key(pattern_fp, req.lhs_values->cols(), dcfg));
      run = hit ? hit.sddmm_plan->run
                : core::sddmm_estimate(*req.pattern, req.lhs_values->cols(),
                                       dcfg);
    }
    const double est = simt::estimate_seconds(cfg.device, run);

    // Shard decision: SpMM over threshold, and never below one block per
    // SM per device — a slice that cannot put work on every SM of the
    // device it moves to would trade real occupancy for modeled
    // parallelism (the "fill a modeled wave" floor).
    if (req.op == OpKind::spmm && cfg.device_count > 1 &&
        cfg.shard_threshold_seconds > 0 &&
        est > cfg.shard_threshold_seconds) {
      const std::uint64_t wave_blocks =
          cfg.wave_floor_blocks != 0
              ? cfg.wave_floor_blocks
              : static_cast<std::uint64_t>(cfg.device.sm_count);
      const std::size_t by_wave = static_cast<std::size_t>(std::max<
          std::uint64_t>(1, run.launch.grid_blocks /
                                std::max<std::uint64_t>(1, wave_blocks)));
      const std::size_t by_cost = static_cast<std::size_t>(
          std::ceil(est / cfg.shard_threshold_seconds));
      const std::size_t want = std::min(
          {cfg.max_shards == 0 ? cfg.device_count
                               : std::min(cfg.max_shards, cfg.device_count),
           by_cost, by_wave});
      if (want > 1) {
        // Defer the O(pattern) slicing and the sub-plan builds to the
        // pool: the single dispatcher thread must keep placing the rest
        // of the queue (no head-of-line blocking behind a cold giant).
        auto item = std::make_shared<Pending>(std::move(p));
        ThreadPool::instance().post([this, item, scfg, pattern_fp, want,
                                     est, batch_id, batch_size] {
          prepare_shards(item, scfg, pattern_fp, want, est, batch_id,
                         batch_size);
        });
        return;
      }
    }

    std::size_t dev;
    {
      std::lock_guard<std::mutex> lock(mutex);
      dev = choose_device_locked();
      stats.devices[dev].placed += 1;
      stats.devices[dev].modeled_busy_seconds += est;
    }
    auto item = std::make_shared<Pending>(std::move(p));
    ThreadPool::instance().post([this, item, dev, est, batch_id,
                                 batch_size] {
      run_single(*item, dev, est, batch_id, batch_size);
    });
  }

  void run_single(Pending& item, std::size_t dev, double est,
                  std::uint64_t batch_id, std::size_t batch_size) {
    bool failed = false;
    try {
      // serve_request reports plan_cache_hit as observed at execution
      // time (builds into the shared plan cache on a miss).
      Response resp =
          serve_request(item.req, *owner->device_caches_[dev],
                        owner->plan_cache_, owner->cfg_.device);
      resp.device = static_cast<int>(dev);
      resp.shards = 1;
      resp.batch_id = batch_id;
      resp.batch_size = batch_size;
      item.promise.set_value(std::move(resp));
    } catch (...) {
      failed = true;
      item.promise.set_exception(std::current_exception());
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.devices[dev].completed += 1;
      // Modeled clocks only accumulate work that actually ran: a failed
      // request returns its estimate so the placer stops dodging this
      // device over phantom backlog.
      if (failed) stats.devices[dev].modeled_busy_seconds -= est;
    }
    complete(failed);
  }

  /// Pool-task body of the sharded path: slices the pattern, builds (or
  /// finds) the pinned sub-plans, assigns devices, then fans the slices
  /// out. Runs on a ThreadPool worker so a cold giant never head-of-line
  /// blocks the dispatcher.
  void prepare_shards(const std::shared_ptr<Pending>& item,
                      const core::SpmmConfig& scfg, std::uint64_t pattern_fp,
                      std::size_t want, double est, std::uint64_t batch_id,
                      std::size_t batch_size) {
    const Request& req = item->req;
    const std::size_t n_cols = req.rhs_values->cols();
    auto st = std::make_shared<ShardState>();
    try {
      st->slices = plan_row_shards(*req.pattern,
                                   core::stride_for(req.precision), want);
      if (st->slices.size() <= 1) {
        // The pattern would not split (e.g. a single block row): place it
        // whole from here — we are already on a pool thread.
        std::size_t dev;
        {
          std::lock_guard<std::mutex> lock(mutex);
          dev = choose_device_locked();
          stats.devices[dev].placed += 1;
          stats.devices[dev].modeled_busy_seconds += est;
        }
        run_single(*item, dev, est, batch_id, batch_size);
        return;
      }

      st->full_lhs_content = req.lhs_id != 0 ? req.lhs_id : pattern_fp;
      st->batch_id = batch_id;
      st->batch_size = batch_size;
      st->plan_pins = OperandCache::PinScope(owner->plan_cache_);

      const std::size_t n = st->slices.size();
      st->patterns.reserve(n);
      st->plans.reserve(n);
      st->parts.resize(n);
      st->lhs_hits.assign(n, 0);
      st->ests.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        const RowSlice& s = st->slices[i];
        st->patterns.push_back(std::make_shared<const sparse::BlockPattern>(
            sparse::slice_vector_rows(*req.pattern, s.vr_begin, s.vr_end)));
        // Sub-plans key on (full pattern identity, slice bounds):
        // shareable across every weight version and every request over
        // this pattern.
        const std::uint64_t plan_id = slice_content_id(pattern_fp, s);
        bool hit = false;
        st->plans.push_back(owner->plan_cache_.get_or_build_spmm_plan(
            st->patterns.back(), n_cols, scfg, plan_id, &hit));
        st->all_plan_hits = st->all_plan_hits && hit;
        // Pin the sub-plan entry for the request's lifetime: concurrent
        // eviction must not drop a plan another slice is about to replay.
        // A pin can race an eviction in the get→pin window; re-insert and
        // retry (correctness never depends on the pin — the handle keeps
        // the plan alive — but residency is what prevents rebuild churn).
        const OperandKey pk = spmm_plan_key(plan_id, n_cols, scfg);
        for (int attempt = 0; !st->plan_pins.pin(pk) && attempt < 3;
             ++attempt) {
          st->plans.back() = owner->plan_cache_.get_or_build_spmm_plan(
              st->patterns.back(), n_cols, scfg, plan_id);
        }
        st->ests[i] = simt::estimate_seconds(owner->cfg_.device,
                                             st->plans.back()->run);
      }
    } catch (...) {
      item->promise.set_exception(std::current_exception());
      complete(/*failed=*/true);
      return;  // st's PinScope releases on destruction
    }

    const std::size_t n = st->slices.size();
    st->devices.resize(n);
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.sharded_requests += 1;
      stats.shard_slices += n;
      // Slices go wherever modeled completion is earliest — usually one
      // per device, but a device carrying a big backlog may be skipped
      // entirely, co-locating slices on the others. The request's modeled
      // makespan therefore sums the estimates per assigned device
      // (co-located slices serialize on their device's modeled clock).
      std::vector<double> per_device(stats.devices.size(), 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t d = choose_device_locked();
        st->devices[i] = d;
        stats.devices[d].shard_slices += 1;
        stats.devices[d].modeled_busy_seconds += st->ests[i];
        per_device[d] += st->ests[i];
      }
      for (const double busy : per_device) {
        if (busy > st->modeled_makespan) st->modeled_makespan = busy;
      }
    }

    st->pending = std::move(*item);
    st->remaining.store(n, std::memory_order_relaxed);
    try {
      // The shared full-K RHS is prepared once (cached in the first
      // slice's device when the client named it) and aliased by every
      // slice — operands are immutable shared handles.
      st->rhs = owner->device_caches_[st->devices.front()]
                    ->get_or_prepare_dense(OperandKind::spmm_rhs,
                                           *st->pending.req.rhs_values,
                                           st->pending.req.precision,
                                           st->pending.req.rhs_id,
                                           &st->rhs_hit);
    } catch (...) {
      // No slice task was posted yet: fail the request directly and roll
      // the assignment back — modeled clocks must not keep busy seconds
      // (nor the counters slices) for work that never executed.
      {
        std::lock_guard<std::mutex> lock(mutex);
        stats.sharded_requests -= 1;
        stats.shard_slices -= n;
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t d = st->devices[i];
          stats.devices[d].shard_slices -= 1;
          stats.devices[d].modeled_busy_seconds -= st->ests[i];
        }
      }
      st->pending.promise.set_exception(std::current_exception());
      st->plan_pins.release();
      complete(/*failed=*/true);
      return;
    }
    for (std::size_t i = 1; i < st->slices.size(); ++i) {
      ThreadPool::instance().post([this, st, i] { run_slice(st, i); });
    }
    run_slice(st, 0);
  }

  void run_slice(const std::shared_ptr<ShardState>& st, std::size_t i) {
    bool failed = false;
    try {
      SliceExecution se = execute_spmm_slice(
          st->pending.req, st->patterns[i], st->slices[i],
          st->full_lhs_content, st->plans[i], st->rhs,
          *owner->device_caches_[st->devices[i]]);
      st->parts[i] = std::move(se.result);
      st->lhs_hits[i] = se.lhs_cache_hit ? 1 : 0;
    } catch (...) {
      failed = true;
      std::lock_guard<std::mutex> lock(st->error_mutex);
      if (!st->error) st->error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.devices[st->devices[i]].completed += 1;
      // Modeled clocks only accumulate work that actually ran (see
      // run_single's failure path).
      if (failed) {
        stats.devices[st->devices[i]].modeled_busy_seconds -= st->ests[i];
      }
    }
    if (st->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finish_shard(st);
    }
  }

  void finish_shard(const std::shared_ptr<ShardState>& st) {
    bool failed = false;
    if (st->error) {
      failed = true;
      st->pending.promise.set_exception(st->error);
    } else {
      try {
        const Request& req = st->pending.req;
        Response resp;
        resp.op = OpKind::spmm;
        resp.spmm = merge_row_shards(req.pattern->rows,
                                     req.rhs_values->cols(),
                                     req.pattern->vector_length, st->slices,
                                     std::move(st->parts));
        // Usually the slices spanned several devices (-1); under a skewed
        // backlog they may all have co-located on one, which is then
        // reported like a whole placement.
        const bool one_device = std::all_of(
            st->devices.begin(), st->devices.end(),
            [&](std::size_t d) { return d == st->devices.front(); });
        resp.device =
            one_device ? static_cast<int>(st->devices.front()) : -1;
        resp.shards = st->slices.size();
        resp.plan_cache_hit = st->all_plan_hits;
        resp.lhs_cache_hit =
            std::all_of(st->lhs_hits.begin(), st->lhs_hits.end(),
                        [](char h) { return h != 0; });
        resp.rhs_cache_hit = st->rhs_hit;
        resp.modeled_seconds = st->modeled_makespan;
        resp.batch_id = st->batch_id;
        resp.batch_size = st->batch_size;
        st->pending.promise.set_value(std::move(resp));
      } catch (...) {
        failed = true;
        st->pending.promise.set_exception(std::current_exception());
      }
    }
    st->plan_pins.release();
    complete(failed);
  }

  void complete(bool failed) {
    std::lock_guard<std::mutex> lock(mutex);
    stats.completed += 1;
    if (failed) stats.failed += 1;
    outstanding -= 1;
    // Notify under the lock: a drain()/destructor waiter may destroy this
    // condition variable as soon as it observes outstanding == 0.
    idle.notify_all();
  }
};

DevicePool::DevicePool(DevicePoolConfig cfg)
    : cfg_(cfg), plan_cache_(cfg.plan_cache_capacity_bytes),
      impl_(new Impl) {
  MAGICUBE_CHECK_MSG(cfg_.device_count > 0,
                     "a DevicePool needs at least one device");
  device_caches_.reserve(cfg_.device_count);
  for (std::size_t d = 0; d < cfg_.device_count; ++d) {
    device_caches_.push_back(
        std::make_unique<OperandCache>(cfg_.cache_capacity_bytes));
  }
  impl_->owner = this;
  impl_->stats.devices.resize(cfg_.device_count);
  impl_->thread = std::thread([impl = impl_.get()] { impl->loop(); });
}

DevicePool::~DevicePool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->queue_changed.notify_all();
  impl_->queue_space.notify_all();  // blocked submitters must observe stop
  impl_->thread.join();  // loop exits only once the queue is drained
  // Wait for in-flight pool tasks (they reference the caches and stats)
  // and for backpressure-blocked submitters to leave the wait.
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->idle.wait(lock, [&] {
    return impl_->outstanding == 0 && impl_->blocked_submitters == 0;
  });
}

std::future<Response> DevicePool::submit(Request req) {
  Pending p;
  p.req = std::move(req);
  std::future<Response> out = p.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    MAGICUBE_CHECK_MSG(!impl_->stopping, "submit on a stopping DevicePool");
    if (cfg_.max_queue_depth > 0) {
      // Backpressure, same discipline as BatchScheduler::submit: the
      // dispatcher drains the whole queue, never submits, so the wait
      // cannot deadlock; the blocked count lets the destructor outlive
      // woken submitters' unwinding.
      impl_->blocked_submitters += 1;
      impl_->queue_space.wait(lock, [&] {
        return impl_->stopping ||
               impl_->queue.size() < cfg_.max_queue_depth;
      });
      impl_->blocked_submitters -= 1;
      if (impl_->blocked_submitters == 0) impl_->idle.notify_all();
      MAGICUBE_CHECK_MSG(!impl_->stopping,
                         "submit on a stopping DevicePool");
    }
    impl_->queue.push_back(std::move(p));
    impl_->stats.submitted += 1;
    impl_->outstanding += 1;
  }
  impl_->queue_changed.notify_all();
  return out;
}

void DevicePool::drain() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->idle.wait(lock, [&] { return impl_->outstanding == 0; });
}

OperandCache& DevicePool::device_cache(std::size_t d) {
  MAGICUBE_CHECK(d < device_caches_.size());
  return *device_caches_[d];
}

DevicePoolStats DevicePool::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace magicube::serve
