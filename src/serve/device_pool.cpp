#include "serve/device_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/plan.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard.hpp"
#include "serve/submit_queue.hpp"
#include "simt/cost_model.hpp"

namespace magicube::serve {

namespace {

using detail::PendingRequest;

std::string describe_exception(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

std::string fmt_seconds(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

// The submit/backpressure/shutdown half lives in detail::SubmitQueueCore
// (shared with BatchScheduler); this Impl is the placement half: pricing,
// device choice, sharding, fault injection, retry and tracing. Its mutex
// guards the fleet state (stats, specs, active flags, caches, fault
// counters) and is never held across a core call or a kernel execution.
struct DevicePool::Impl {
  DevicePool* owner = nullptr;
  detail::SubmitQueueCore core;

  mutable std::mutex mutex;
  DevicePoolStats stats;
  std::vector<simt::DeviceSpec> specs;
  std::vector<char> active;  // 1 = accepting placements
  std::vector<std::shared_ptr<OperandCache>> caches;
  std::vector<std::uint64_t> executions;  // per-device, for FaultPlan::exact
  Rng fault_rng;
  std::uint64_t next_batch_id = 1;
  std::uint64_t rr_cursor = 0;  // round-robin tie-break cursor
  TraceLog traces;

  explicit Impl(const DevicePoolConfig& cfg)
      : fault_rng(cfg.fault_plan.seed),
        traces("device_pool", cfg.trace_capacity) {}

  /// One committed device assignment: where, its per-spec estimate, and
  /// the device's modeled backlog at commit time (the request-relative
  /// trace start of its replay).
  struct Placement {
    std::size_t device = 0;
    double est = 0.0;
    double start = 0.0;
  };

  /// Rendezvous of one sharded request: slice tasks fill disjoint parts and
  /// the last finisher merges — no pool task ever waits on another.
  struct ShardState {
    PendingRequest pending;
    OpKind op = OpKind::spmm;
    std::uint64_t full_lhs_content = 0;
    std::vector<RowSlice> slices;
    std::vector<std::shared_ptr<const sparse::BlockPattern>> patterns;
    std::vector<core::SpmmPlanHandle> spmm_plans;
    std::vector<core::SddmmPlanHandle> sddmm_plans;
    std::vector<simt::KernelRun> runs;  // per-slice, for retry repricing
    std::vector<Placement> placements;  // guarded by the pool mutex
    std::vector<core::SpmmResult> spmm_parts;
    std::vector<core::SddmmResult> sddmm_parts;
    std::vector<char> lhs_hits;
    core::DenseOperandHandle rhs;
    bool rhs_hit = false;
    bool all_plan_hits = true;
    /// This request's modeled busy seconds per device (makespan input);
    /// guarded by the pool mutex, grown on add_device.
    std::vector<double> per_device_busy;
    std::uint64_t retries = 0;  // requeues across slices (pool mutex)
    std::uint64_t batch_id = 0;
    std::size_t batch_size = 0;
    OperandCache::PinScope plan_pins;  // held until the merge completes
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  std::size_t active_count_locked() const {
    std::size_t n = 0;
    for (const char a : active) n += a != 0;
    return n;
  }

  /// Counts one kernel execution on `dev` and decides whether the
  /// FaultPlan fails it. Lock held.
  bool inject_fault_locked(std::size_t dev) {
    executions[dev] += 1;
    const FaultPlan& plan = owner->cfg_.fault_plan;
    if (!plan.enabled()) return false;
    bool fire = false;
    for (const FaultPlan::Exact& e : plan.exact) {
      if (e.device == dev && e.nth == executions[dev]) fire = true;
    }
    if (!fire && plan.probability > 0.0 &&
        fault_rng.next_double() < plan.probability) {
      fire = true;
    }
    if (fire) stats.faults_injected += 1;
    return fire;
  }

  /// Earliest modeled completion wins: every active candidate prices the
  /// run on its own spec (backlog + per-spec estimate), so a fast part
  /// absorbs more traffic than a slow one; on a homogeneous fleet the
  /// estimate is a uniform addend and the argmin reduces to least modeled
  /// backlog. Exact ties — the idle-pool common case — are broken
  /// round-robin so bursts spread instead of piling onto device 0.
  /// `exclude` skips one device (retry placement). Returns false when no
  /// active candidate exists. Lock held.
  bool choose_device_locked(const simt::KernelRun& run, std::ptrdiff_t exclude,
                            Placement* out) {
    double best = 0.0;
    double best_est = 0.0;
    std::vector<std::size_t> tied;
    for (std::size_t d = 0; d < specs.size(); ++d) {
      if (active[d] == 0 || static_cast<std::ptrdiff_t>(d) == exclude) {
        continue;
      }
      const double est = simt::estimate_seconds(specs[d], run);
      const double t = stats.devices[d].modeled_busy_seconds + est;
      if (tied.empty() || t < best) {
        best = t;
        best_est = est;
        tied.assign(1, d);
      } else if (t == best) {
        tied.push_back(d);
      }
    }
    if (tied.empty()) return false;
    std::size_t dev = tied.front();
    if (tied.size() > 1) {
      stats.tie_breaks += 1;
      dev = tied[rr_cursor++ % tied.size()];
      best_est = simt::estimate_seconds(specs[dev], run);
    }
    out->device = dev;
    out->est = best_est;
    out->start = stats.devices[dev].modeled_busy_seconds;
    return true;
  }

  /// Retry placement: prefer a surviving device other than the one that
  /// failed; fall back to the failed device itself when it is the only
  /// active one. Lock held.
  bool choose_retry_device_locked(const simt::KernelRun& run,
                                  std::size_t failed, Placement* out) {
    if (choose_device_locked(run, static_cast<std::ptrdiff_t>(failed), out)) {
      return true;
    }
    return choose_device_locked(run, -1, out);
  }

  /// Commits a whole-request placement (device choice + modeled clock).
  /// Returns false when every device is drained.
  bool commit_whole(const simt::KernelRun& run, Placement* pl) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!choose_device_locked(run, -1, pl)) return false;
    stats.devices[pl->device].placed += 1;
    stats.devices[pl->device].modeled_busy_seconds += pl->est;
    return true;
  }

  void complete(bool failed) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.completed += 1;
      if (failed) stats.failed += 1;
    }
    core.complete();
  }

  /// Fails a request whose promise is still held here: finalizes the
  /// trace, surfaces `err` on the future and retires the request.
  void fail_request(PendingRequest& p, const std::exception_ptr& err) {
    if (p.trace) {
      p.trace->ok = false;
      p.trace->error = describe_exception(err);
      traces.add(p.trace);
    }
    p.promise.set_exception(err);
    complete(/*failed=*/true);
  }

  void dispatch(std::deque<PendingRequest> taken) {
    std::vector<PendingRequest> batch;
    batch.reserve(taken.size());
    while (!taken.empty()) {
      batch.push_back(std::move(taken.front()));
      taken.pop_front();
    }
    // Priority classes: higher priorities place (and therefore claim the
    // least-loaded devices) first; equal priorities keep arrival order.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const PendingRequest& a, const PendingRequest& b) {
                       return a.req.priority > b.req.priority;
                     });
    std::uint64_t batch_id;
    {
      std::lock_guard<std::mutex> lock(mutex);
      batch_id = next_batch_id++;
    }
    const std::size_t batch_size = batch.size();
    for (PendingRequest& p : batch) {
      try {
        // place() moves from p only once placement is committed; on a
        // throw before that (malformed request, no active device, plan
        // build failure) the promise is still here to carry the failure.
        place(p, batch_id, batch_size);
      } catch (...) {
        fail_request(p, std::current_exception());
      }
    }
  }

  void place(PendingRequest& p, std::uint64_t batch_id,
             std::size_t batch_size) {
    const Request& req = p.req;
    MAGICUBE_CHECK_MSG(req.pattern && req.lhs_values && req.rhs_values,
                       "serve request is missing pattern or operand values");
    const DevicePoolConfig& cfg = owner->cfg_;

    // Price the request on its cached plan when one is resident (O(1));
    // otherwise fall back to the analytic estimator — identical numbers by
    // the estimate-equals-execute invariant — WITHOUT building or caching
    // anything: a request about to shard would only churn the plan cache
    // with a full plan no one replays. The executing path builds and
    // caches the plan it actually needs (and reports plan_cache_hit from
    // what it observed at execution time, so an eviction between pricing
    // and execution is not masked). Per-device pricing happens at device
    // choice; the shard decision uses the reference spec so thresholds
    // keep one meaning across fleet compositions.
    const std::uint64_t pattern_fp =
        owner->plan_cache_.pattern_identity(req.pattern);
    simt::KernelRun run;
    if (req.op == OpKind::spmm) {
      core::SpmmConfig scfg;
      scfg.precision = req.precision;
      scfg.variant = req.variant;
      scfg.bsn = req.bsn;
      const CachedOperand hit = owner->plan_cache_.find(
          spmm_plan_key(pattern_fp, req.rhs_values->cols(), scfg));
      run = hit ? hit.spmm_plan->run
                : core::spmm_estimate(*req.pattern, req.rhs_values->cols(),
                                      scfg);
    } else {
      core::SddmmConfig dcfg;
      dcfg.precision = req.precision;
      dcfg.prefetch = req.sddmm_prefetch;
      const CachedOperand hit = owner->plan_cache_.find(
          sddmm_plan_key(pattern_fp, req.lhs_values->cols(), dcfg));
      run = hit ? hit.sddmm_plan->run
                : core::sddmm_estimate(*req.pattern, req.lhs_values->cols(),
                                       dcfg);
    }
    const double est_ref = simt::estimate_seconds(cfg.device, run);
    if (p.trace) {
      p.trace->op = to_string(req.op);
      p.trace->precision = to_string(req.precision);
      p.trace->add_span(
          TraceSpan("price", 0.0, 0.0)
              .attr("est_ref_seconds", fmt_seconds(est_ref)));
    }

    // Shard decision: over threshold, several active devices, and never
    // below one block per SM of the largest active part — a slice that
    // cannot put work on every SM of the device it moves to would trade
    // real occupancy for modeled parallelism (the "fill a modeled wave"
    // floor).
    std::size_t active_devices;
    std::uint64_t max_sm = 1;
    {
      std::lock_guard<std::mutex> lock(mutex);
      active_devices = active_count_locked();
      for (std::size_t d = 0; d < specs.size(); ++d) {
        if (active[d] != 0 && static_cast<std::uint64_t>(
                                  specs[d].sm_count) > max_sm) {
          max_sm = static_cast<std::uint64_t>(specs[d].sm_count);
        }
      }
    }
    if (active_devices > 1 && cfg.shard_threshold_seconds > 0 &&
        est_ref > cfg.shard_threshold_seconds) {
      const std::uint64_t wave_blocks =
          cfg.wave_floor_blocks != 0 ? cfg.wave_floor_blocks : max_sm;
      const std::size_t by_wave = static_cast<std::size_t>(std::max<
          std::uint64_t>(1, run.launch.grid_blocks /
                                std::max<std::uint64_t>(1, wave_blocks)));
      const std::size_t by_cost = static_cast<std::size_t>(
          std::ceil(est_ref / cfg.shard_threshold_seconds));
      const std::size_t want = std::min(
          {cfg.max_shards == 0
               ? active_devices
               : std::min(cfg.max_shards, active_devices),
           by_cost, by_wave});
      if (want > 1) {
        // Defer the O(pattern) slicing and the sub-plan builds to the
        // pool: the single dispatcher thread must keep placing the rest
        // of the queue (no head-of-line blocking behind a cold giant).
        auto item = std::make_shared<PendingRequest>(std::move(p));
        ThreadPool::instance().post([this, item, pattern_fp, want, run,
                                     batch_id, batch_size] {
          prepare_shards(item, pattern_fp, want, run, batch_id, batch_size);
        });
        return;
      }
    }

    Placement pl;
    if (!commit_whole(run, &pl)) {
      throw Error("DevicePool: no active device to place a request on "
                  "(every device is drained)");
    }
    if (p.trace) {
      p.trace->add_span(TraceSpan("queue", 0.0, pl.start));
      p.trace->add_span(
          TraceSpan("place", pl.start, pl.start,
                    static_cast<int>(pl.device))
              .attr("est_seconds", fmt_seconds(pl.est))
              .attr("batch_id", std::to_string(batch_id))
              .attr("batch_size", std::to_string(batch_size)));
    }
    auto item = std::make_shared<PendingRequest>(std::move(p));
    ThreadPool::instance().post([this, item, pl, run, batch_id,
                                 batch_size] {
      run_single(item, pl, /*attempt=*/0, run, batch_id, batch_size);
    });
  }

  void run_single(const std::shared_ptr<PendingRequest>& item, Placement pl,
                  std::size_t attempt, const simt::KernelRun& run,
                  std::uint64_t batch_id, std::size_t batch_size) {
    const std::size_t dev = pl.device;
    bool injected = false;
    std::uint64_t execution = 0;
    std::shared_ptr<OperandCache> cache;
    simt::DeviceSpec spec;
    {
      std::lock_guard<std::mutex> lock(mutex);
      injected = inject_fault_locked(dev);
      execution = executions[dev];
      cache = caches[dev];
      spec = specs[dev];
    }
    std::exception_ptr err;
    Response resp;
    try {
      if (injected) {
        if (item->trace) item->trace->faults_injected.fetch_add(1);
        throw FaultError("injected fault: kernel execution " +
                         std::to_string(execution) + " on device " +
                         std::to_string(dev));
      }
      // serve_request reports plan_cache_hit as observed at execution
      // time (builds into the shared plan cache on a miss).
      resp = serve_request(item->req, *cache, owner->plan_cache_, spec);
    } catch (...) {
      err = std::current_exception();
    }

    if (!err) {
      resp.device = static_cast<int>(dev);
      resp.shards = 1;
      resp.batch_id = batch_id;
      resp.batch_size = batch_size;
      resp.retries = attempt;
      if (item->trace) {
        item->trace->add_span(
            TraceSpan("replay", pl.start, pl.start + pl.est,
                      static_cast<int>(dev))
                .attr("ok", "true")
                .attr("plan_cache_hit",
                      resp.plan_cache_hit ? "true" : "false")
                .attr("lhs_cache_hit", resp.lhs_cache_hit ? "true" : "false")
                .attr("rhs_cache_hit",
                      resp.rhs_cache_hit ? "true" : "false"));
        item->trace->ok = true;
        item->trace->device = static_cast<int>(dev);
        item->trace->shards = 1;
        item->trace->retries.store(attempt);
        resp.trace = item->trace;
        traces.add(item->trace);
      }
      item->promise.set_value(std::move(resp));
      {
        std::lock_guard<std::mutex> lock(mutex);
        stats.devices[dev].completed += 1;
      }
      complete(/*failed=*/false);
      return;
    }

    // Failed attempt (injected or genuine): the modeled clock only
    // accumulates work that actually ran, so the estimate rolls off the
    // device and — budget permitting — the request requeues to a
    // surviving device.
    const double fail_end = pl.start + pl.est;
    if (item->trace) {
      item->trace->add_span(
          TraceSpan("replay", pl.start, fail_end, static_cast<int>(dev))
              .attr("ok", "false")
              .attr("fault", injected ? "injected" : "genuine")
              .attr("error", describe_exception(err)));
    }
    Placement next;
    bool requeue = false;
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.devices[dev].completed += 1;
      stats.devices[dev].modeled_busy_seconds -= pl.est;
      if (attempt < owner->cfg_.max_retries &&
          choose_retry_device_locked(run, dev, &next)) {
        requeue = true;
        stats.retries += 1;
        stats.devices[next.device].placed += 1;
        stats.devices[next.device].modeled_busy_seconds += next.est;
      }
    }
    if (requeue) {
      // The request's timeline is monotone: the retry bridges from the
      // failed attempt's modeled end to the new device's backlog (or is
      // instantaneous when that backlog is already behind us).
      if (next.start < fail_end) next.start = fail_end;
      if (item->trace) {
        item->trace->retries.fetch_add(1);
        item->trace->add_span(
            TraceSpan("retry", fail_end, next.start,
                      static_cast<int>(next.device))
                .attr("attempt", std::to_string(attempt + 1))
                .attr("from_device", std::to_string(dev)));
      }
      ThreadPool::instance().post([this, item, next, attempt, run, batch_id,
                                   batch_size] {
        run_single(item, next, attempt + 1, run, batch_id, batch_size);
      });
      return;
    }
    if (attempt >= owner->cfg_.max_retries) {
      err = std::make_exception_ptr(Error(
          "request failed after " + std::to_string(attempt + 1) +
          " attempts (retry budget exhausted): " + describe_exception(err)));
    } else {
      err = std::make_exception_ptr(Error(
          "request failed and no active device survives to requeue it: " +
          describe_exception(err)));
    }
    fail_request(*item, err);
  }

  /// Pool-task body of the sharded path: slices the pattern, builds (or
  /// finds) the pinned sub-plans, assigns devices, then fans the slices
  /// out. Runs on a ThreadPool worker so a cold giant never head-of-line
  /// blocks the dispatcher.
  void prepare_shards(const std::shared_ptr<PendingRequest>& item,
                      std::uint64_t pattern_fp, std::size_t want,
                      const simt::KernelRun& run, std::uint64_t batch_id,
                      std::size_t batch_size) {
    const Request& req = item->req;
    auto st = std::make_shared<ShardState>();
    st->op = req.op;
    core::SpmmConfig scfg;
    core::SddmmConfig dcfg;
    std::size_t n_cols = 0;  // SpMM N
    std::size_t k_depth = 0; // SDDMM K
    try {
      int stride;
      if (req.op == OpKind::spmm) {
        scfg.precision = req.precision;
        scfg.variant = req.variant;
        scfg.bsn = req.bsn;
        n_cols = req.rhs_values->cols();
        stride = core::stride_for(req.precision);
        st->full_lhs_content = req.lhs_id != 0 ? req.lhs_id : pattern_fp;
      } else {
        dcfg.precision = req.precision;
        dcfg.prefetch = req.sddmm_prefetch;
        k_depth = req.lhs_values->cols();
        // SDDMM blocks own groups of 16 output vectors: balancing on that
        // granularity mirrors what each block actually executes.
        stride = core::detail::kSddmmSlotsPerBlock;
        st->full_lhs_content = req.lhs_id;  // 0 = anonymous activation
      }
      st->slices = plan_row_shards(*req.pattern, stride, want);
      if (st->slices.size() <= 1) {
        // The pattern would not split (e.g. a single block row): place it
        // whole from here — we are already on a pool thread.
        Placement pl;
        if (!commit_whole(run, &pl)) {
          throw Error("DevicePool: no active device to place a request on "
                      "(every device is drained)");
        }
        if (item->trace) {
          item->trace->add_span(TraceSpan("queue", 0.0, pl.start));
          item->trace->add_span(
              TraceSpan("place", pl.start, pl.start,
                        static_cast<int>(pl.device))
                  .attr("est_seconds", fmt_seconds(pl.est)));
        }
        run_single(item, pl, /*attempt=*/0, run, batch_id, batch_size);
        return;
      }

      st->batch_id = batch_id;
      st->batch_size = batch_size;
      st->plan_pins = OperandCache::PinScope(owner->plan_cache_);

      const std::size_t n = st->slices.size();
      st->patterns.reserve(n);
      st->runs.resize(n);
      st->lhs_hits.assign(n, 0);
      if (req.op == OpKind::spmm) {
        st->spmm_plans.reserve(n);
        st->spmm_parts.resize(n);
      } else {
        st->sddmm_plans.reserve(n);
        st->sddmm_parts.resize(n);
      }
      for (std::size_t i = 0; i < n; ++i) {
        const RowSlice& s = st->slices[i];
        st->patterns.push_back(std::make_shared<const sparse::BlockPattern>(
            sparse::slice_vector_rows(*req.pattern, s.vr_begin, s.vr_end)));
        // Sub-plans key on (full pattern identity, slice bounds):
        // shareable across every weight version and every request over
        // this pattern. Pin the sub-plan entry for the request's
        // lifetime: concurrent eviction must not drop a plan another
        // slice is about to replay. A pin can race an eviction in the
        // get→pin window; re-insert and retry (correctness never depends
        // on the pin — the handle keeps the plan alive — but residency is
        // what prevents rebuild churn).
        const std::uint64_t plan_id = slice_content_id(pattern_fp, s);
        bool hit = false;
        if (req.op == OpKind::spmm) {
          st->spmm_plans.push_back(owner->plan_cache_.get_or_build_spmm_plan(
              st->patterns.back(), n_cols, scfg, plan_id, &hit));
          const OperandKey pk = spmm_plan_key(plan_id, n_cols, scfg);
          for (int att = 0; !st->plan_pins.pin(pk) && att < 3; ++att) {
            st->spmm_plans.back() = owner->plan_cache_.get_or_build_spmm_plan(
                st->patterns.back(), n_cols, scfg, plan_id);
          }
          st->runs[i] = st->spmm_plans.back()->run;
        } else {
          st->sddmm_plans.push_back(
              owner->plan_cache_.get_or_build_sddmm_plan(
                  st->patterns.back(), k_depth, dcfg, plan_id, &hit));
          const OperandKey pk = sddmm_plan_key(plan_id, k_depth, dcfg);
          for (int att = 0; !st->plan_pins.pin(pk) && att < 3; ++att) {
            st->sddmm_plans.back() =
                owner->plan_cache_.get_or_build_sddmm_plan(
                    st->patterns.back(), k_depth, dcfg, plan_id);
          }
          st->runs[i] = st->sddmm_plans.back()->run;
        }
        st->all_plan_hits = st->all_plan_hits && hit;
      }
    } catch (...) {
      fail_request(*item, std::current_exception());
      return;  // st's PinScope releases on destruction
    }

    const std::size_t n = st->slices.size();
    st->placements.resize(n);
    {
      std::lock_guard<std::mutex> lock(mutex);
      // Slices go wherever modeled completion is earliest — usually one
      // per device, but a slow or backlogged device may be skipped,
      // co-locating slices on the others. The request's modeled makespan
      // sums the per-spec estimates per assigned device (co-located
      // slices serialize on their device's modeled clock).
      st->per_device_busy.assign(specs.size(), 0.0);
      bool placed_all = true;
      for (std::size_t i = 0; i < n; ++i) {
        Placement pl;
        if (!choose_device_locked(st->runs[i], -1, &pl)) {
          // Every device drained while the plans were building: roll the
          // earlier slices back and fail below.
          for (std::size_t j = 0; j < i; ++j) {
            const Placement& q = st->placements[j];
            stats.devices[q.device].shard_slices -= 1;
            stats.devices[q.device].modeled_busy_seconds -= q.est;
          }
          placed_all = false;
          break;
        }
        st->placements[i] = pl;
        stats.devices[pl.device].shard_slices += 1;
        stats.devices[pl.device].modeled_busy_seconds += pl.est;
        st->per_device_busy[pl.device] += pl.est;
      }
      if (placed_all) {
        stats.sharded_requests += 1;
        stats.shard_slices += n;
      } else {
        st->per_device_busy.clear();
      }
    }
    if (st->per_device_busy.empty()) {
      fail_request(*item, std::make_exception_ptr(Error(
                              "DevicePool: no active device to place a "
                              "request on (every device is drained)")));
      return;
    }
    if (item->trace) {
      item->trace->add_span(
          TraceSpan("shard", 0.0, 0.0)
              .attr("slices", std::to_string(n))
              .attr("batch_id", std::to_string(batch_id)));
      for (std::size_t i = 0; i < n; ++i) {
        const Placement& pl = st->placements[i];
        item->trace->add_span(TraceSpan("queue", 0.0, pl.start)
                                  .attr("slice", std::to_string(i)));
        item->trace->add_span(
            TraceSpan("place", pl.start, pl.start,
                      static_cast<int>(pl.device))
                .attr("slice", std::to_string(i))
                .attr("est_seconds", fmt_seconds(pl.est)));
      }
    }

    st->pending = std::move(*item);
    st->remaining.store(n, std::memory_order_relaxed);
    try {
      // The shared RHS (SpMM: the full-K dense B; SDDMM: the column-major
      // B) is prepared once — cached in the first slice's device when the
      // client named it — and aliased by every slice: operands are
      // immutable shared handles.
      st->rhs =
          cache_for(st->placements.front().device)
              ->get_or_prepare_dense(st->op == OpKind::spmm
                                         ? OperandKind::spmm_rhs
                                         : OperandKind::sddmm_rhs,
                                     *st->pending.req.rhs_values,
                                     st->pending.req.precision,
                                     st->pending.req.rhs_id, &st->rhs_hit);
    } catch (...) {
      // No slice task was posted yet: fail the request directly and roll
      // the assignment back — modeled clocks must not keep busy seconds
      // (nor the counters slices) for work that never executed.
      {
        std::lock_guard<std::mutex> lock(mutex);
        stats.sharded_requests -= 1;
        stats.shard_slices -= n;
        for (std::size_t i = 0; i < n; ++i) {
          const Placement& pl = st->placements[i];
          stats.devices[pl.device].shard_slices -= 1;
          stats.devices[pl.device].modeled_busy_seconds -= pl.est;
        }
      }
      st->plan_pins.release();
      fail_request(st->pending, std::current_exception());
      return;
    }
    for (std::size_t i = 1; i < n; ++i) {
      const Placement pl = st->placements[i];
      ThreadPool::instance().post(
          [this, st, i, pl] { run_slice(st, i, pl, /*attempt=*/0); });
    }
    run_slice(st, 0, st->placements[0], /*attempt=*/0);
  }

  std::shared_ptr<OperandCache> cache_for(std::size_t dev) {
    std::lock_guard<std::mutex> lock(mutex);
    return caches[dev];
  }

  void run_slice(const std::shared_ptr<ShardState>& st, std::size_t i,
                 Placement pl, std::size_t attempt) {
    const std::size_t dev = pl.device;
    bool injected = false;
    std::shared_ptr<OperandCache> cache;
    {
      std::lock_guard<std::mutex> lock(mutex);
      injected = inject_fault_locked(dev);
      cache = caches[dev];
    }
    std::exception_ptr err;
    try {
      if (injected) {
        if (st->pending.trace) st->pending.trace->faults_injected.fetch_add(1);
        throw FaultError("injected fault: shard slice " + std::to_string(i) +
                         " on device " + std::to_string(dev));
      }
      if (st->op == OpKind::spmm) {
        SliceExecution se = execute_spmm_slice(
            st->pending.req, st->patterns[i], st->slices[i],
            st->full_lhs_content, st->spmm_plans[i], st->rhs, *cache);
        st->spmm_parts[i] = std::move(se.result);
        st->lhs_hits[i] = se.lhs_cache_hit ? 1 : 0;
      } else {
        SddmmSliceExecution se = execute_sddmm_slice(
            st->pending.req, st->patterns[i], st->slices[i],
            st->sddmm_plans[i], st->rhs, *cache);
        st->sddmm_parts[i] = std::move(se.result);
        st->lhs_hits[i] = se.lhs_cache_hit ? 1 : 0;
      }
    } catch (...) {
      err = std::current_exception();
    }

    if (!err) {
      if (st->pending.trace) {
        st->pending.trace->add_span(
            TraceSpan("replay", pl.start, pl.start + pl.est,
                      static_cast<int>(dev))
                .attr("ok", "true")
                .attr("slice", std::to_string(i)));
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        stats.devices[dev].completed += 1;
        st->placements[i] = pl;
      }
      if (st->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        finish_shard(st);
      }
      return;
    }

    // Failed slice: roll the estimate off the modeled clock and requeue
    // the slice alone — the siblings' work stands.
    const double fail_end = pl.start + pl.est;
    if (st->pending.trace) {
      st->pending.trace->add_span(
          TraceSpan("replay", pl.start, fail_end, static_cast<int>(dev))
              .attr("ok", "false")
              .attr("slice", std::to_string(i))
              .attr("fault", injected ? "injected" : "genuine")
              .attr("error", describe_exception(err)));
    }
    Placement next;
    bool requeue = false;
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.devices[dev].completed += 1;
      stats.devices[dev].modeled_busy_seconds -= pl.est;
      if (dev < st->per_device_busy.size()) {
        st->per_device_busy[dev] -= pl.est;
      }
      if (attempt < owner->cfg_.max_retries &&
          choose_retry_device_locked(st->runs[i], dev, &next)) {
        requeue = true;
        stats.retries += 1;
        st->retries += 1;
        stats.shard_slices += 1;
        stats.devices[next.device].shard_slices += 1;
        stats.devices[next.device].modeled_busy_seconds += next.est;
        if (next.device >= st->per_device_busy.size()) {
          st->per_device_busy.resize(next.device + 1, 0.0);
        }
        st->per_device_busy[next.device] += next.est;
      }
    }
    if (requeue) {
      if (next.start < fail_end) next.start = fail_end;
      if (st->pending.trace) {
        st->pending.trace->retries.fetch_add(1);
        st->pending.trace->add_span(
            TraceSpan("retry", fail_end, next.start,
                      static_cast<int>(next.device))
                .attr("slice", std::to_string(i))
                .attr("attempt", std::to_string(attempt + 1))
                .attr("from_device", std::to_string(dev)));
      }
      ThreadPool::instance().post([this, st, i, next, attempt] {
        run_slice(st, i, next, attempt + 1);
      });
      return;
    }
    if (attempt >= owner->cfg_.max_retries) {
      err = std::make_exception_ptr(Error(
          "shard slice " + std::to_string(i) + " failed after " +
          std::to_string(attempt + 1) +
          " attempts (retry budget exhausted): " + describe_exception(err)));
    } else {
      err = std::make_exception_ptr(Error(
          "shard slice " + std::to_string(i) +
          " failed and no active device survives to requeue it: " +
          describe_exception(err)));
    }
    {
      std::lock_guard<std::mutex> lock(st->error_mutex);
      if (!st->error) st->error = err;
    }
    if (st->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finish_shard(st);
    }
  }

  void finish_shard(const std::shared_ptr<ShardState>& st) {
    if (st->error) {
      st->plan_pins.release();
      fail_request(st->pending, st->error);
      return;
    }
    bool failed = false;
    try {
      const Request& req = st->pending.req;
      Response resp;
      resp.op = st->op;
      if (st->op == OpKind::spmm) {
        resp.spmm = merge_row_shards(req.pattern->rows,
                                     req.rhs_values->cols(),
                                     req.pattern->vector_length, st->slices,
                                     std::move(st->spmm_parts));
      } else {
        resp.sddmm = merge_sddmm_row_shards(*req.pattern, st->slices,
                                            std::move(st->sddmm_parts));
      }
      double makespan = 0.0;
      std::uint64_t retries = 0;
      bool one_device = true;
      int first_device = -1;
      {
        std::lock_guard<std::mutex> lock(mutex);
        for (const double busy : st->per_device_busy) {
          if (busy > makespan) makespan = busy;
        }
        retries = st->retries;
        first_device = static_cast<int>(st->placements.front().device);
        for (const Placement& pl : st->placements) {
          one_device = one_device &&
                       static_cast<int>(pl.device) == first_device;
        }
      }
      // Usually the slices spanned several devices (-1); under a skewed
      // backlog they may all have co-located on one, which is then
      // reported like a whole placement.
      resp.device = one_device ? first_device : -1;
      resp.shards = st->slices.size();
      resp.plan_cache_hit = st->all_plan_hits;
      resp.lhs_cache_hit =
          std::all_of(st->lhs_hits.begin(), st->lhs_hits.end(),
                      [](char h) { return h != 0; });
      resp.rhs_cache_hit = st->rhs_hit;
      resp.modeled_seconds = makespan;
      resp.batch_id = st->batch_id;
      resp.batch_size = st->batch_size;
      resp.retries = retries;
      if (st->pending.trace) {
        RequestTrace& t = *st->pending.trace;
        t.add_span(TraceSpan("merge", t.total_modeled_seconds,
                             t.total_modeled_seconds)
                       .attr("slices", std::to_string(st->slices.size())));
        t.ok = true;
        t.device = resp.device;
        t.shards = st->slices.size();
        resp.trace = st->pending.trace;
        traces.add(st->pending.trace);
      }
      // Release before the future resolves: the merge has consumed the
      // sub-plans, and a caller returning from get() may immediately
      // assert that no pin outlives its request.
      st->plan_pins.release();
      st->pending.promise.set_value(std::move(resp));
    } catch (...) {
      failed = true;
      if (st->pending.trace) {
        st->pending.trace->ok = false;
        st->pending.trace->error =
            describe_exception(std::current_exception());
        traces.add(st->pending.trace);
      }
      st->plan_pins.release();
      st->pending.promise.set_exception(std::current_exception());
    }
    complete(failed);
  }
};

DevicePool::DevicePool(DevicePoolConfig cfg)
    : cfg_(std::move(cfg)), plan_cache_(cfg_.plan_cache_capacity_bytes),
      impl_(new Impl(cfg_)) {
  std::vector<simt::DeviceSpec> specs = cfg_.devices;
  if (specs.empty()) {
    MAGICUBE_CHECK_MSG(cfg_.device_count > 0,
                       "a DevicePool needs at least one device");
    specs.assign(cfg_.device_count, cfg_.device);
  }
  MAGICUBE_CHECK_MSG(cfg_.fault_plan.probability >= 0.0 &&
                         cfg_.fault_plan.probability <= 1.0,
                     "FaultPlan probability must lie in [0, 1]");
  impl_->owner = this;
  impl_->specs = std::move(specs);
  const std::size_t n = impl_->specs.size();
  impl_->active.assign(n, 1);
  impl_->executions.assign(n, 0);
  impl_->caches.reserve(n);
  for (std::size_t d = 0; d < n; ++d) {
    impl_->caches.push_back(
        std::make_shared<OperandCache>(cfg_.cache_capacity_bytes));
  }
  impl_->stats.devices.resize(n);
  detail::SubmitQueueCore::Tuning tuning;
  tuning.label = "DevicePool";
  tuning.engine_id = "device_pool";
  tuning.linger = cfg_.linger;
  tuning.max_queue_depth = cfg_.max_queue_depth;
  tuning.collect_traces = cfg_.collect_traces;
  impl_->core.start(tuning, [impl = impl_.get()](
                                std::deque<PendingRequest> taken) {
    impl->dispatch(std::move(taken));
  });
}

DevicePool::~DevicePool() { impl_->core.shutdown(); }

std::future<Response> DevicePool::submit(Request req) {
  return impl_->core.submit(std::move(req));
}

void DevicePool::drain() { impl_->core.drain(); }

void DevicePool::shutdown() { impl_->core.shutdown(); }

std::size_t DevicePool::add_device(const simt::DeviceSpec& spec) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->specs.push_back(spec);
  impl_->active.push_back(1);
  impl_->executions.push_back(0);
  impl_->caches.push_back(
      std::make_shared<OperandCache>(cfg_.cache_capacity_bytes));
  impl_->stats.devices.emplace_back();
  return impl_->specs.size() - 1;
}

void DevicePool::drain_device(std::size_t d) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MAGICUBE_CHECK_MSG(d < impl_->specs.size(),
                     "drain_device: no device " << d << " in the pool");
  impl_->active[d] = 0;
}

std::size_t DevicePool::device_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->specs.size();
}

std::size_t DevicePool::active_device_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->active_count_locked();
}

simt::DeviceSpec DevicePool::device_spec(std::size_t d) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MAGICUBE_CHECK(d < impl_->specs.size());
  return impl_->specs[d];
}

bool DevicePool::device_active(std::size_t d) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MAGICUBE_CHECK(d < impl_->specs.size());
  return impl_->active[d] != 0;
}

OperandCache& DevicePool::device_cache(std::size_t d) {
  std::shared_ptr<OperandCache> cache;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    MAGICUBE_CHECK(d < impl_->caches.size());
    cache = impl_->caches[d];
  }
  // The pool never removes a device, so the cache outlives every caller.
  return *cache;
}

const TraceLog& DevicePool::traces() const { return impl_->traces; }

DevicePoolStats DevicePool::stats() const {
  DevicePoolStats out;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    out = impl_->stats;
  }
  out.submitted = impl_->core.submitted();
  return out;
}

}  // namespace magicube::serve
