#include "serve/device_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/plan.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "serve/graph.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"
#include "serve/shard.hpp"
#include "serve/submit_queue.hpp"
#include "simt/cost_model.hpp"

namespace magicube::serve {

namespace {

using detail::PendingRequest;

std::string describe_exception(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

std::string fmt_seconds(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Affinity identity of a whole request: the pattern it replays (the proxy
/// for where its prepared operands are resident), folded with the named
/// weight version and the op so SpMM and SDDMM traffic over one pattern
/// track separate residency.
std::uint64_t affinity_key(const Request& req, std::uint64_t pattern_fp) {
  std::uint64_t h = pattern_fp;
  h ^= req.lhs_id * 0x9e3779b97f4a7c15ull;
  if (req.op == OpKind::sddmm) h ^= 0xddull << 56;
  return h;
}

}  // namespace

// The submit/backpressure/shutdown half lives in detail::SubmitQueueCore
// (shared with BatchScheduler); this Impl is the placement half: pricing,
// device choice, sharding, fault injection, retry and tracing. Its mutex
// guards the fleet state (stats, specs, active flags, caches, fault
// counters) and is never held across a core call or a kernel execution.
struct DevicePool::Impl {
  DevicePool* owner = nullptr;
  detail::SubmitQueueCore core;

  mutable std::mutex mutex;
  DevicePoolStats stats;
  std::vector<simt::DeviceSpec> specs;
  std::vector<char> active;  // 1 = accepting placements
  /// 1 = circuit breaker open: the device's health score tripped the
  /// quarantine floor. Distinct from !active (a drain is an operator
  /// decision and permanent; quarantine is automatic and reversible) —
  /// probes still execute on a quarantined device, never on a drained one.
  std::vector<char> quarantined;
  std::vector<std::uint64_t> probe_streak;  // consecutive probe successes
  /// Whole placements since the device was last offered a probe.
  std::vector<std::uint64_t> placements_since_probe;
  std::vector<std::shared_ptr<OperandCache>> caches;
  std::vector<std::uint64_t> executions;  // per-device, for FaultPlan::exact
  Rng fault_rng;
  std::uint64_t next_batch_id = 1;
  std::uint64_t rr_cursor = 0;  // round-robin tie-break cursor
  TraceLog traces;
  /// Hedge copies whose task is posted but not yet claimed. The losing
  /// copy's task can outlive its request's promise (the winner resolves
  /// it), so shutdown must wait for these before the Impl dies — the core
  /// only waits for promises. Guarded by `mutex`, signalled on claim.
  std::size_t hedge_tasks = 0;
  std::condition_variable hedge_cv;
  /// Open token streams (serve/session.hpp): id -> modeled full-length
  /// step cost. The summed load is what open_session admission compares
  /// against cfg.session_budget_seconds.
  std::unordered_map<std::uint64_t, double> session_cost;
  double session_load = 0.0;
  std::uint64_t next_session_id = 1;

  /// Blocks until every posted hedge task has claimed (and, for a loser,
  /// discarded) its ticket. Called after core.shutdown() — no new hedges
  /// can appear once the core stops accepting work.
  void wait_hedge_tasks() {
    std::unique_lock<std::mutex> lock(mutex);
    hedge_cv.wait(lock, [this] { return hedge_tasks == 0; });
  }

  explicit Impl(const DevicePoolConfig& cfg)
      : fault_rng(cfg.fault_plan.seed),
        traces("device_pool", cfg.trace_capacity) {}

  /// One committed device assignment: where, its per-spec estimate, and
  /// the device's modeled backlog at commit time (the request-relative
  /// trace start of its replay).
  struct Placement {
    std::size_t device = 0;
    double est = 0.0;
    double start = 0.0;
  };

  /// Rendezvous of one sharded request: slice tasks fill disjoint parts and
  /// the last finisher merges — no pool task ever waits on another.
  struct ShardState {
    PendingRequest pending;
    OpKind op = OpKind::spmm;
    std::uint64_t full_lhs_content = 0;
    std::vector<RowSlice> slices;
    std::vector<std::shared_ptr<const sparse::BlockPattern>> patterns;
    std::vector<core::SpmmPlanHandle> spmm_plans;
    std::vector<core::SddmmPlanHandle> sddmm_plans;
    std::vector<simt::KernelRun> runs;  // per-slice, for retry repricing
    std::vector<Placement> placements;  // guarded by the pool mutex
    std::vector<core::SpmmResult> spmm_parts;
    std::vector<core::SddmmResult> sddmm_parts;
    std::vector<char> lhs_hits;
    core::DenseOperandHandle rhs;
    bool rhs_hit = false;
    bool all_plan_hits = true;
    /// This request's modeled busy seconds per device (makespan input);
    /// guarded by the pool mutex, grown on add_device.
    std::vector<double> per_device_busy;
    std::uint64_t retries = 0;  // requeues across slices (pool mutex)
    std::uint64_t batch_id = 0;
    std::size_t batch_size = 0;
    OperandCache::PinScope plan_pins;  // held until the merge completes
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  /// Both copies of a hedged whole request share one HedgeState (all
  /// fields guarded by the pool mutex). The race is decided at the FIRST
  /// claim of either copy by comparing the copies' final modeled
  /// completions — not by which ThreadPool task happened to start first —
  /// so the winner set is a deterministic function of the modeled
  /// schedule (asserted across repeated runs and fleet sizes by
  /// tests/test_healing.cpp).
  struct HedgeState {
    std::uint64_t primary = 0;
    std::uint64_t secondary = 0;
    int winner = 0;  // 0 undecided, 1 primary, 2 secondary
  };

  /// Work placed but not yet executing: the placement its ThreadPool task
  /// will claim when it starts running. Between registration and claim,
  /// drain_device's re-placement may rewrite the placement; the executing
  /// task reads the final word under claim_ticket. Ordered by ticket id
  /// (= placement order) so re-placement after a drain is deterministic.
  struct Ticket {
    simt::KernelRun run;
    Placement pl;
    bool is_slice = false;
    std::size_t slice = 0;
    /// Hedge copy that lost the modeled race: its claim returns without
    /// executing (clock already rolled back at decision time).
    bool canceled = false;
    /// Low-risk probe offered to a quarantined device: its outcome feeds
    /// the reinstatement streak and its requeue is budget-free.
    bool probe = false;
    std::shared_ptr<HedgeState> hedge;    // set on both copies of a pair
    std::shared_ptr<ShardState> shard;    // slice tickets only
    std::shared_ptr<RequestTrace> trace;  // for `replace` spans
    /// Whole-request executor context, attached after registration so a
    /// re-placement that crosses the hedge fraction can spawn the
    /// duplicate itself (null for slices).
    std::shared_ptr<PendingRequest> item;
    /// Distinct devices this request has faulted on (poison isolation);
    /// shared across the request's retry chain, mutated under the pool
    /// mutex.
    std::shared_ptr<std::vector<std::size_t>> faulted;
    std::size_t attempt = 0;
    std::uint64_t batch_id = 0;
    std::size_t batch_size = 0;
  };
  std::map<std::uint64_t, Ticket> tickets;  // guarded by the pool mutex
  std::uint64_t next_ticket_id = 1;
  /// Last device that served each affinity key — where that traffic's
  /// prepared operands are resident. Maintained only when
  /// affinity_tolerance_seconds > 0.
  std::unordered_map<std::uint64_t, std::size_t> affinity;
  /// Hot-layer plan pins taken by warmup(), held for the pool's lifetime.
  OperandCache::PinScope warmup_pins;

  std::uint64_t register_ticket_locked(
      const simt::KernelRun& run, const Placement& pl,
      std::shared_ptr<RequestTrace> trace, bool is_slice = false,
      std::size_t slice = 0, std::shared_ptr<ShardState> shard = nullptr) {
    const std::uint64_t id = next_ticket_id++;
    Ticket t;
    t.run = run;
    t.pl = pl;
    t.is_slice = is_slice;
    t.slice = slice;
    t.shard = std::move(shard);
    t.trace = std::move(trace);
    tickets.emplace(id, std::move(t));
    return id;
  }

  /// What an executing task learns when it claims its ticket: the final
  /// (possibly re-placed) placement plus the per-device execution state it
  /// needs, read under one lock.
  struct Claimed {
    Placement pl;
    bool injected = false;
    /// This copy lost a hedge race on the modeled clock: do not execute
    /// (no fault dice were rolled, no execution was counted; the winner
    /// carries the promise).
    bool canceled = false;
    bool probe = false;   // ticket was a quarantine probe
    bool hedged = false;  // ticket belonged to a hedged pair
    std::uint64_t execution = 0;
    std::shared_ptr<OperandCache> cache;
    simt::DeviceSpec spec;
  };

  /// Decides a hedged pair: the copy with the earlier final modeled
  /// completion wins (ties go to the primary), the loser is canceled — its
  /// estimate rolls off its device's modeled clock and its claim returns
  /// without executing. Both placements are read under the lock *now*, so
  /// drains/quarantines that re-placed either copy since admission are
  /// priced in; wall-clock claim order cannot change the outcome. Lock
  /// held.
  void decide_hedge_locked(HedgeState& h) {
    const auto pit = tickets.find(h.primary);
    const auto sit = tickets.find(h.secondary);
    MAGICUBE_CHECK_MSG(pit != tickets.end() && sit != tickets.end(),
                       "hedged pair decided with a copy already claimed");
    Ticket& p = pit->second;
    Ticket& s = sit->second;
    h.winner = s.pl.start + s.pl.est < p.pl.start + p.pl.est ? 2 : 1;
    if (h.winner == 2) stats.hedges_won += 1;
    Ticket& loser = h.winner == 1 ? s : p;
    loser.canceled = true;
    stats.devices[loser.pl.device].placed -= 1;
    stats.devices[loser.pl.device].modeled_busy_seconds -= loser.pl.est;
    if (loser.trace) {
      loser.trace->add_span(
          TraceSpan("hedge", loser.pl.start, loser.pl.start,
                    static_cast<int>(loser.pl.device))
              .attr("action", "cancel")
              .attr("winner", h.winner == 1 ? "primary" : "secondary"));
    }
  }

  /// Claims a ticket at execution start: reads its placement, removes it
  /// from the re-placement window (in-flight work is never moved), and
  /// rolls the fault-injection dice on the device it finally landed on.
  /// For a hedged copy the first claim of the pair decides the race; a
  /// losing copy's claim reports canceled instead of a placement.
  Claimed claim_ticket(std::uint64_t id) {
    Claimed c;
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = tickets.find(id);
    MAGICUBE_CHECK_MSG(it != tickets.end(),
                       "DevicePool ticket " << id << " claimed twice");
    Ticket& t = it->second;
    if (t.hedge) {
      c.hedged = true;
      if (t.hedge->winner == 0) decide_hedge_locked(*t.hedge);
    }
    if (t.canceled) {
      c.canceled = true;
      tickets.erase(it);
      // One claim per hedged pair lands here (the loser); shutdown blocks
      // on this count so the lagging task never outlives the Impl.
      hedge_tasks -= 1;
      hedge_cv.notify_all();
      return c;
    }
    c.pl = t.pl;
    c.probe = t.probe;
    tickets.erase(it);
    c.injected = inject_fault_locked(c.pl.device);
    c.execution = executions[c.pl.device];
    c.cache = caches[c.pl.device];
    c.spec = specs[c.pl.device];
    return c;
  }

  /// Attaches the whole-request executor context to a just-registered
  /// ticket (the hedging and poison paths read it). Lock held.
  void attach_context_locked(
      std::uint64_t id, const std::shared_ptr<PendingRequest>& item,
      const std::shared_ptr<std::vector<std::size_t>>& faulted,
      std::size_t attempt, std::uint64_t batch_id, std::size_t batch_size) {
    const auto it = tickets.find(id);
    if (it == tickets.end()) return;
    Ticket& t = it->second;
    t.item = item;
    t.faulted = faulted;
    t.attempt = attempt;
    t.batch_id = batch_id;
    t.batch_size = batch_size;
  }

  std::size_t active_count_locked() const {
    std::size_t n = 0;
    for (const char a : active) n += a != 0;
    return n;
  }

  /// Counts one kernel execution on `dev` and decides whether the
  /// FaultPlan fails it. The probabilistic draw uses the max of the global
  /// rate and every window covering this execution count, so a plan
  /// without windows draws on exactly the schedule it always did. Lock
  /// held.
  bool inject_fault_locked(std::size_t dev) {
    executions[dev] += 1;
    const FaultPlan& plan = owner->cfg_.fault_plan;
    if (!plan.enabled()) return false;
    bool fire = false;
    for (const FaultPlan::Exact& e : plan.exact) {
      if (e.device == dev && e.nth == executions[dev]) fire = true;
    }
    double p = plan.probability;
    for (const FaultPlan::Window& w : plan.windows) {
      if (w.device == dev && executions[dev] >= w.from &&
          executions[dev] <= w.to && w.probability > p) {
        p = w.probability;
      }
    }
    if (!fire && p > 0.0 && fault_rng.next_double() < p) fire = true;
    if (fire) stats.faults_injected += 1;
    return fire;
  }

  /// Earliest modeled completion wins: every active candidate prices the
  /// run on its own spec (backlog + per-spec estimate), so a fast part
  /// absorbs more traffic than a slow one; on a homogeneous fleet the
  /// estimate is a uniform addend and the argmin reduces to least modeled
  /// backlog. Exact ties — the idle-pool common case — are broken
  /// round-robin so bursts spread instead of piling onto device 0.
  /// `exclude` skips one device (retry placement). Returns false when no
  /// active candidate exists. Quarantined devices are skipped first; when
  /// the breaker has every active device open, the scan falls back to the
  /// quarantined candidates — a degraded fleet still serves (and the "no
  /// active device" error keeps meaning a genuinely drained pool). Lock
  /// held.
  bool choose_device_locked(const simt::KernelRun& run, std::ptrdiff_t exclude,
                            Placement* out) {
    if (scan_devices_locked(run, exclude, /*allow_quarantined=*/false, out)) {
      return true;
    }
    return scan_devices_locked(run, exclude, /*allow_quarantined=*/true, out);
  }

  bool scan_devices_locked(const simt::KernelRun& run, std::ptrdiff_t exclude,
                           bool allow_quarantined, Placement* out) {
    double best = 0.0;
    double best_est = 0.0;
    std::vector<std::size_t> tied;
    for (std::size_t d = 0; d < specs.size(); ++d) {
      if (active[d] == 0 || static_cast<std::ptrdiff_t>(d) == exclude ||
          (!allow_quarantined && quarantined[d] != 0)) {
        continue;
      }
      const double est = simt::estimate_seconds(specs[d], run);
      const double t = stats.devices[d].modeled_busy_seconds + est;
      if (tied.empty() || t < best) {
        best = t;
        best_est = est;
        tied.assign(1, d);
      } else if (t == best) {
        tied.push_back(d);
      }
    }
    if (tied.empty()) return false;
    std::size_t dev = tied.front();
    if (tied.size() > 1) {
      stats.tie_breaks += 1;
      dev = tied[rr_cursor++ % tied.size()];
      best_est = simt::estimate_seconds(specs[dev], run);
    }
    out->device = dev;
    out->est = best_est;
    out->start = stats.devices[dev].modeled_busy_seconds;
    return true;
  }

  /// Retry placement: prefer a surviving device other than the one that
  /// failed; fall back to the failed device itself when it is the only
  /// active one. Lock held.
  bool choose_retry_device_locked(const simt::KernelRun& run,
                                  std::size_t failed, Placement* out) {
    if (choose_device_locked(run, static_cast<std::ptrdiff_t>(failed), out)) {
      return true;
    }
    return choose_device_locked(run, -1, out);
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Feeds one execution outcome on `dev` into the health EWMA (and, on
  /// success, the completion-vs-estimate drift EWMA) and trips the circuit
  /// breaker when the score falls below the configured floor with enough
  /// samples behind it. Quarantining re-places the device's queued tickets
  /// through the same path a drain uses. Lock held.
  void score_execution_locked(std::size_t dev, bool ok, const Placement& pl,
                              const std::shared_ptr<RequestTrace>& trace) {
    const HealingConfig& h = owner->cfg_.healing;
    if (!h.enabled) return;
    DeviceStats& ds = stats.devices[dev];
    ds.health =
        (1.0 - h.health_alpha) * ds.health + (ok ? h.health_alpha : 0.0);
    ds.health_samples += 1;
    if (ok && pl.est > 0.0) {
      ds.completion_ratio_ewma =
          (1.0 - h.health_alpha) * ds.completion_ratio_ewma +
          h.health_alpha * ((pl.start + pl.est) / pl.est);
    }
    if (quarantined[dev] == 0 && ds.health_samples >= h.min_health_samples &&
        ds.health < h.quarantine_below) {
      quarantined[dev] = 1;
      stats.quarantines += 1;
      probe_streak[dev] = 0;
      placements_since_probe[dev] = 0;
      if (trace) {
        trace->add_span(
            TraceSpan("quarantine", pl.start + pl.est, pl.start + pl.est,
                      static_cast<int>(dev))
                .attr("action", "enter")
                .attr("health", fmt_seconds(ds.health)));
      }
      replace_queued_locked(dev);
    }
  }

  /// Ticks every quarantined active device's probe clock and returns one
  /// that is due a probe (lowest index wins when several are), or npos.
  /// Called once per whole-request commit. Lock held.
  std::size_t probe_tick_locked() {
    const HealingConfig& h = owner->cfg_.healing;
    if (!h.enabled) return npos;
    std::size_t due = npos;
    for (std::size_t d = 0; d < specs.size(); ++d) {
      if (quarantined[d] == 0 || active[d] == 0) continue;
      placements_since_probe[d] += 1;
      if (due == npos && placements_since_probe[d] >= h.probe_interval) {
        due = d;
      }
    }
    return due;
  }

  /// A probe came back clean: extend the device's streak and reinstate it
  /// after reinstate_after consecutive successes — breaker closed, health
  /// and sample count reset so it re-arms fresh. Lock held.
  void probe_success_locked(std::size_t dev, double at,
                            const std::shared_ptr<RequestTrace>& trace) {
    if (quarantined[dev] == 0) return;
    probe_streak[dev] += 1;
    stats.probe_successes += 1;
    if (probe_streak[dev] >= owner->cfg_.healing.reinstate_after) {
      quarantined[dev] = 0;
      stats.reinstatements += 1;
      probe_streak[dev] = 0;
      placements_since_probe[dev] = 0;
      stats.devices[dev].health = 1.0;
      stats.devices[dev].health_samples = 0;
      if (trace) {
        trace->add_span(TraceSpan("quarantine", at, at,
                                  static_cast<int>(dev))
                            .attr("action", "reinstate"));
      }
    }
  }

  /// Drift check for a whole-request ticket: when hedging is on and the
  /// ticket's modeled completion has crossed hedge_deadline_fraction of
  /// its deadline, a duplicate is registered on the best alternative
  /// device and both copies race on the modeled clock (the first claim
  /// decides; see decide_hedge_locked). Called after admission and after
  /// every re-placement that rewrote the ticket's completion. Lock held.
  void maybe_hedge_locked(std::uint64_t id) {
    const HealingConfig& h = owner->cfg_.healing;
    if (!h.enabled || h.hedge_deadline_fraction <= 0.0) return;
    const auto it = tickets.find(id);
    if (it == tickets.end()) return;
    Ticket& t = it->second;
    if (t.is_slice || t.probe || t.canceled || t.hedge || !t.item) return;
    const double deadline = t.item->req.deadline_seconds;
    if (deadline <= 0.0) return;
    if (t.pl.start + t.pl.est <= h.hedge_deadline_fraction * deadline) return;
    Placement alt;
    if (!choose_device_locked(t.run, static_cast<std::ptrdiff_t>(t.pl.device),
                              &alt)) {
      return;  // nowhere to duplicate to
    }
    auto hs = std::make_shared<HedgeState>();
    hs->primary = id;
    stats.devices[alt.device].placed += 1;
    stats.devices[alt.device].modeled_busy_seconds += alt.est;
    stats.hedges_placed += 1;
    hedge_tasks += 1;  // the pair's losing task; released at its claim
    const std::uint64_t sec = register_ticket_locked(t.run, alt, t.trace);
    hs->secondary = sec;
    // The map insert does not invalidate `it`/`t`.
    Ticket& s = tickets.find(sec)->second;
    s.hedge = hs;
    s.item = t.item;
    s.faulted = t.faulted;
    s.attempt = t.attempt;
    s.batch_id = t.batch_id;
    s.batch_size = t.batch_size;
    t.hedge = hs;
    if (t.trace) {
      t.trace->add_span(
          TraceSpan("hedge", 0.0, alt.start, static_cast<int>(alt.device))
              .attr("action", "place")
              .attr("primary_device", std::to_string(t.pl.device))
              .attr("est_seconds", fmt_seconds(alt.est)));
    }
    // Posting under the lock is safe: the worker that picks the task up
    // blocks on this same mutex in claim_ticket until we release it.
    ThreadPool::instance().post([this, item = s.item, sec,
                                 attempt = s.attempt, run = s.run,
                                 batch_id = s.batch_id,
                                 batch_size = s.batch_size,
                                 faulted = s.faulted] {
      run_single(item, sec, attempt, run, batch_id, batch_size, faulted);
    });
  }

  struct CommitResult {
    bool placed = false;
    bool shed = false;  // deadline unmet on every active candidate
    bool probe = false;  // placed as a quarantine probe
    bool affinity_hit = false;
    /// Modeled completion: committed placement's start + est, or the best
    /// candidate's when shed.
    double completion = 0.0;
    Placement pl;
    std::uint64_t ticket = 0;
  };

  /// Commits a whole-request placement: earliest-completion device choice,
  /// deadline admission, optional affinity upgrade, then modeled clock +
  /// ticket registration. `!placed && !shed` means every device is drained.
  CommitResult commit_whole(const simt::KernelRun& run, double deadline,
                            std::uint64_t aff_key,
                            const std::shared_ptr<RequestTrace>& trace) {
    CommitResult out;
    std::lock_guard<std::mutex> lock(mutex);
    // Probe offer: every whole-request commit ticks the quarantined
    // devices' probe clocks; a deadline-free request due at a quarantined
    // device is routed there as the low-risk probe whose outcome feeds the
    // reinstatement streak (deadline traffic is never risked on a
    // suspect device).
    const std::size_t probe_dev = probe_tick_locked();
    if (probe_dev != npos && deadline <= 0.0) {
      Placement pl;
      pl.device = probe_dev;
      pl.est = simt::estimate_seconds(specs[probe_dev], run);
      pl.start = stats.devices[probe_dev].modeled_busy_seconds;
      placements_since_probe[probe_dev] = 0;
      stats.probes_placed += 1;
      stats.devices[probe_dev].placed += 1;
      stats.devices[probe_dev].modeled_busy_seconds += pl.est;
      out.placed = true;
      out.probe = true;
      out.completion = pl.start + pl.est;
      out.pl = pl;
      out.ticket = register_ticket_locked(run, pl, trace);
      tickets.find(out.ticket)->second.probe = true;
      if (trace) {
        trace->add_span(
            TraceSpan("probe", pl.start, pl.start,
                      static_cast<int>(probe_dev))
                .attr("streak", std::to_string(probe_streak[probe_dev])));
      }
      return out;
    }
    Placement best;
    if (!choose_device_locked(run, -1, &best)) return out;
    const double best_completion = best.start + best.est;
    // Deadline admission: when even the earliest modeled completion misses
    // the budget, the request is shed *before* any clock commits — serving
    // it would be guaranteed late and would push everything behind it late
    // too.
    if (deadline > 0.0 && best_completion > deadline) {
      out.shed = true;
      out.completion = best_completion;
      return out;
    }
    Placement chosen = best;
    out.completion = best_completion;
    // Affinity upgrade: repeat-pattern traffic goes back to the device
    // that served the pattern last — where its prepared operands are
    // resident — as long as the modeled completion there trails the best
    // candidate by at most the tolerance (and still meets the deadline).
    const double tol = owner->cfg_.affinity_tolerance_seconds;
    if (tol > 0.0) {
      const auto it = affinity.find(aff_key);
      if (it != affinity.end() && it->second < specs.size() &&
          it->second != best.device && active[it->second] != 0) {
        const std::size_t d = it->second;
        const double est = simt::estimate_seconds(specs[d], run);
        const double t = stats.devices[d].modeled_busy_seconds + est;
        if (t - best_completion <= tol && (deadline <= 0.0 || t <= deadline)) {
          chosen.device = d;
          chosen.est = est;
          chosen.start = stats.devices[d].modeled_busy_seconds;
          out.completion = t;
          out.affinity_hit = true;
          stats.affinity_hits += 1;
        }
      }
      affinity[aff_key] = chosen.device;
    }
    stats.devices[chosen.device].placed += 1;
    stats.devices[chosen.device].modeled_busy_seconds += chosen.est;
    out.placed = true;
    out.pl = chosen;
    out.ticket = register_ticket_locked(run, chosen, trace);
    return out;
  }

  /// Sheds a request (admission or retry re-placement missed the
  /// deadline): counted, stamped with a `shed` span, surfaced as a
  /// ShedError — always an explicit, observable rejection, never a silent
  /// drop.
  void shed_request(PendingRequest& p, double completion, double at_seconds) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.shed += 1;
    }
    if (p.trace) {
      p.trace->add_span(
          TraceSpan("shed", at_seconds, at_seconds)
              .attr("deadline_seconds", fmt_seconds(p.req.deadline_seconds))
              .attr("modeled_completion_seconds", fmt_seconds(completion)));
    }
    fail_request(
        p, std::make_exception_ptr(ShedError(
               "request shed: modeled completion " + fmt_seconds(completion) +
               "s exceeds deadline " + fmt_seconds(p.req.deadline_seconds) +
               "s on every active device")));
  }

  /// Cost-model-driven re-placement after a drain: every ticket still
  /// queued on `d` (placed, not yet claimed by its executing task) is
  /// re-priced onto the surviving device with the earliest modeled
  /// completion — in placement order, each commit updating the modeled
  /// clocks the next choice sees. Work with no surviving candidate keeps
  /// its drained target and executes exactly as before the drain. Lock
  /// held.
  void replace_queued_locked(std::size_t d) {
    std::vector<std::uint64_t> moved;
    for (auto& [id, t] : tickets) {
      if (t.pl.device != d || t.canceled) continue;
      Placement np;
      if (!choose_device_locked(t.run, -1, &np)) break;  // no survivor
      const Placement old = t.pl;
      // The request's timeline stays monotone: earlier spans already
      // extend to the old start, so the new start never precedes it; a
      // `replace` span bridges the gap a later backlog opens.
      if (np.start < old.start) np.start = old.start;
      stats.devices[d].modeled_busy_seconds -= old.est;
      stats.devices[np.device].modeled_busy_seconds += np.est;
      if (t.is_slice) {
        stats.devices[d].shard_slices -= 1;
        stats.devices[np.device].shard_slices += 1;
      } else {
        stats.devices[d].placed -= 1;
        stats.devices[np.device].placed += 1;
      }
      if (t.shard) {
        ShardState& st = *t.shard;
        if (d < st.per_device_busy.size()) st.per_device_busy[d] -= old.est;
        if (np.device >= st.per_device_busy.size()) {
          st.per_device_busy.resize(np.device + 1, 0.0);
        }
        st.per_device_busy[np.device] += np.est;
        st.placements[t.slice] = np;
      }
      t.pl = np;
      stats.replaced += 1;
      moved.push_back(id);
      if (t.trace) {
        TraceSpan span("replace", old.start, np.start,
                       static_cast<int>(np.device));
        span.attr("from_device", std::to_string(d));
        if (t.is_slice) span.attr("slice", std::to_string(t.slice));
        t.trace->add_span(std::move(span));
      }
    }
    // A re-placement that pushed a deadline ticket past the hedge fraction
    // spawns its duplicate now (outside the iteration: hedging registers
    // new tickets into the map being walked above).
    for (const std::uint64_t id : moved) maybe_hedge_locked(id);
  }

  void complete(bool failed) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.completed += 1;
      if (failed) stats.failed += 1;
    }
    core.complete();
  }

  /// Fails a request whose promise is still held here: finalizes the
  /// trace, surfaces `err` on the future and retires the request. The
  /// failure is counted *before* the promise resolves so a caller that
  /// catches the error observes consistent stats.
  void fail_request(PendingRequest& p, const std::exception_ptr& err) {
    if (p.trace) {
      p.trace->ok = false;
      p.trace->error = describe_exception(err);
      traces.add(p.trace);
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.completed += 1;
      stats.failed += 1;
    }
    p.promise.set_exception(err);
    core.complete();
  }

  void dispatch(std::deque<PendingRequest> taken) {
    std::vector<PendingRequest> batch;
    batch.reserve(taken.size());
    while (!taken.empty()) {
      batch.push_back(std::move(taken.front()));
      taken.pop_front();
    }
    // Priority classes: higher priorities place (and therefore claim the
    // least-loaded devices) first. Within a class, earliest deadline first
    // (EDF) so the tightest budget sees the shortest backlog; requests
    // without a deadline follow, keeping arrival order (stable sort).
    const double inf = std::numeric_limits<double>::infinity();
    std::stable_sort(batch.begin(), batch.end(),
                     [inf](const PendingRequest& a, const PendingRequest& b) {
                       if (a.req.priority != b.req.priority) {
                         return a.req.priority > b.req.priority;
                       }
                       const double da = a.req.deadline_seconds > 0.0
                                             ? a.req.deadline_seconds
                                             : inf;
                       const double db = b.req.deadline_seconds > 0.0
                                             ? b.req.deadline_seconds
                                             : inf;
                       return da < db;
                     });
    std::uint64_t batch_id;
    {
      std::lock_guard<std::mutex> lock(mutex);
      batch_id = next_batch_id++;
    }
    const std::size_t batch_size = batch.size();
    bool urgent = false;
    for (PendingRequest& p : batch) {
      try {
        // place() moves from p only once placement is committed; on a
        // throw before that (malformed request, no active device, plan
        // build failure) the promise is still here to carry the failure.
        urgent = place(p, batch_id, batch_size) || urgent;
      } catch (...) {
        fail_request(p, std::current_exception());
      }
    }
    // Modeled-latency-driven cadence instead of the static linger knob: a
    // round that shed work or committed a placement past half its deadline
    // budget leaves no linger for the next round (the backlog drains at
    // full speed); a calm round restores the configured coalescing window.
    if (owner->cfg_.adaptive_linger) {
      core.set_linger(urgent ? std::chrono::microseconds{0}
                             : owner->cfg_.linger);
      if (urgent) {
        std::lock_guard<std::mutex> lock(mutex);
        stats.urgent_rounds += 1;
      }
    }
  }

  /// Prices and places one request. Returns whether the request put the
  /// round under SLA pressure (it was shed, or its committed modeled
  /// completion passed half its deadline budget).
  bool place(PendingRequest& p, std::uint64_t batch_id,
             std::size_t batch_size) {
    const Request& req = p.req;
    const DevicePoolConfig& cfg = owner->cfg_;

    // Price the request on its cached plan when one is resident (O(1));
    // otherwise fall back to the analytic estimator — identical numbers by
    // the estimate-equals-execute invariant — WITHOUT building or caching
    // anything: a request about to shard would only churn the plan cache
    // with a full plan no one replays. The executing path builds and
    // caches the plan it actually needs (and reports plan_cache_hit from
    // what it observed at execution time, so an eviction between pricing
    // and execution is not masked). Per-device pricing happens at device
    // choice; the shard decision uses the reference spec so thresholds
    // keep one meaning across fleet compositions. The pricing body is
    // serve/sla.hpp's price_request — the same path the BatchScheduler's
    // modeled batch sizing uses.
    const simt::KernelRun run = price_request(req, owner->plan_cache_);
    const std::uint64_t pattern_fp =
        owner->plan_cache_.pattern_identity(req.pattern);
    const double est_ref = simt::estimate_seconds(cfg.device, run);
    if (p.trace) {
      p.trace->op = req.graph ? "graph" : to_string(req.op);
      p.trace->precision = to_string(req.precision);
      p.trace->add_span(
          TraceSpan("price", 0.0, 0.0)
              .attr("est_ref_seconds", fmt_seconds(est_ref)));
    }

    // Shard decision: over threshold, several active devices, and never
    // below one block per SM of the largest active part — a slice that
    // cannot put work on every SM of the device it moves to would trade
    // real occupancy for modeled parallelism (the "fill a modeled wave"
    // floor).
    std::size_t active_devices;
    std::uint64_t max_sm = 1;
    {
      std::lock_guard<std::mutex> lock(mutex);
      active_devices = active_count_locked();
      for (std::size_t d = 0; d < specs.size(); ++d) {
        if (active[d] != 0 && static_cast<std::uint64_t>(
                                  specs[d].sm_count) > max_sm) {
          max_sm = static_cast<std::uint64_t>(specs[d].sm_count);
        }
      }
      if (req.graph) stats.graph_requests += 1;
    }
    // A fused graph never shards: its stages share one arena (the point of
    // fusion is that the intermediates are never materialized for anyone
    // else), so the DAG places whole — retries and hedges re-run it whole,
    // bit-exactly.
    if (!req.graph && active_devices > 1 &&
        cfg.shard_threshold_seconds > 0 &&
        est_ref > cfg.shard_threshold_seconds) {
      const std::uint64_t wave_blocks =
          cfg.wave_floor_blocks != 0 ? cfg.wave_floor_blocks : max_sm;
      const std::size_t by_wave = static_cast<std::size_t>(std::max<
          std::uint64_t>(1, run.launch.grid_blocks /
                                std::max<std::uint64_t>(1, wave_blocks)));
      const std::size_t by_cost = static_cast<std::size_t>(
          std::ceil(est_ref / cfg.shard_threshold_seconds));
      const std::size_t want = std::min(
          {cfg.max_shards == 0
               ? active_devices
               : std::min(cfg.max_shards, active_devices),
           by_cost, by_wave});
      if (want > 1) {
        // Defer the O(pattern) slicing and the sub-plan builds to the
        // pool: the single dispatcher thread must keep placing the rest
        // of the queue (no head-of-line blocking behind a cold giant).
        // Pressure a sharded giant turns out to exert is discovered on
        // the pool thread, after this round's cadence was decided.
        auto item = std::make_shared<PendingRequest>(std::move(p));
        ThreadPool::instance().post([this, item, pattern_fp, want, run,
                                     batch_id, batch_size] {
          prepare_shards(item, pattern_fp, want, run, batch_id, batch_size);
        });
        return false;
      }
    }

    const double deadline = req.deadline_seconds;
    const CommitResult cr =
        commit_whole(run, deadline, affinity_key(req, pattern_fp), p.trace);
    if (cr.shed) {
      shed_request(p, cr.completion, /*at_seconds=*/0.0);
      return true;
    }
    if (!cr.placed) {
      throw Error("DevicePool: no active device to place a request on "
                  "(every device is drained)");
    }
    const Placement pl = cr.pl;
    if (p.trace) {
      p.trace->add_span(TraceSpan("queue", 0.0, pl.start));
      p.trace->add_span(
          TraceSpan("place", pl.start, pl.start,
                    static_cast<int>(pl.device))
              .attr("est_seconds", fmt_seconds(pl.est))
              .attr("batch_id", std::to_string(batch_id))
              .attr("batch_size", std::to_string(batch_size))
              .attr("affinity", cr.affinity_hit ? "true" : "false"));
    }
    auto item = std::make_shared<PendingRequest>(std::move(p));
    auto faulted = std::make_shared<std::vector<std::size_t>>();
    const std::uint64_t ticket = cr.ticket;
    {
      // The ticket cannot have been claimed yet (its task posts below),
      // so the context lands before any execution reads it; an admission
      // already past the hedge fraction spawns its duplicate here.
      std::lock_guard<std::mutex> lock(mutex);
      attach_context_locked(ticket, item, faulted, /*attempt=*/0, batch_id,
                            batch_size);
      maybe_hedge_locked(ticket);
    }
    ThreadPool::instance().post([this, item, ticket, run, batch_id,
                                 batch_size, faulted] {
      run_single(item, ticket, /*attempt=*/0, run, batch_id, batch_size,
                 faulted);
    });
    return deadline > 0.0 && cr.completion > 0.5 * deadline;
  }

  void run_single(const std::shared_ptr<PendingRequest>& item,
                  std::uint64_t ticket, std::size_t attempt,
                  const simt::KernelRun& run, std::uint64_t batch_id,
                  std::size_t batch_size,
                  const std::shared_ptr<std::vector<std::size_t>>& faulted =
                      nullptr) {
    // The claim reads the final placement: drain_device may have re-priced
    // this work onto a surviving device since it was committed.
    const Claimed c = claim_ticket(ticket);
    if (c.canceled) {
      // This hedge copy lost the modeled race; the winner carries the
      // promise and the loser's clock charge was rolled back at decision
      // time — nothing to do here.
      return;
    }
    const Placement pl = c.pl;
    const std::size_t dev = pl.device;
    const bool injected = c.injected;
    std::exception_ptr err;
    Response resp;
    try {
      if (injected) {
        if (item->trace) item->trace->faults_injected.fetch_add(1);
        throw FaultError("injected fault: kernel execution " +
                         std::to_string(c.execution) + " on device " +
                         std::to_string(dev));
      }
      // serve_request reports plan_cache_hit as observed at execution
      // time (builds into the shared plan cache on a miss).
      resp = serve_request(item->req, *c.cache, owner->plan_cache_, c.spec);
    } catch (...) {
      err = std::current_exception();
    }

    if (!err) {
      resp.device = static_cast<int>(dev);
      resp.shards = 1;
      resp.batch_id = batch_id;
      resp.batch_size = batch_size;
      resp.retries = attempt;
      resp.modeled_completion_seconds = pl.start + pl.est;
      resp.hedged = c.hedged;
      {
        // Score (and possibly reinstate) before the trace is finalized:
        // once the promise resolves the trace must be quiescent, and a
        // probe success may append a `quarantine` reinstate span.
        std::lock_guard<std::mutex> lock(mutex);
        stats.devices[dev].completed += 1;
        score_execution_locked(dev, /*ok=*/true, pl, item->trace);
        if (c.probe) {
          probe_success_locked(dev, pl.start + pl.est, item->trace);
        }
      }
      if (item->trace) {
        item->trace->add_span(
            TraceSpan("replay", pl.start, pl.start + pl.est,
                      static_cast<int>(dev))
                .attr("ok", "true")
                .attr("plan_cache_hit",
                      resp.plan_cache_hit ? "true" : "false")
                .attr("lhs_cache_hit", resp.lhs_cache_hit ? "true" : "false")
                .attr("rhs_cache_hit",
                      resp.rhs_cache_hit ? "true" : "false"));
        if (resp.graph) {
          // One span per DAG stage under the same request trace, laid out
          // back to back from the placement start on the device's modeled
          // timeline (their sum exceeds the fused replay span — the
          // difference is the modeled fusion win).
          double at = pl.start;
          for (const GraphStage& st : resp.graph->stages) {
            item->trace->add_span(
                TraceSpan("stage_" + st.name, at, at + st.modeled_seconds,
                          static_cast<int>(dev))
                    .attr("plan_cache_hit",
                          st.plan_cache_hit ? "true" : "false")
                    .attr("lhs_cache_hit",
                          st.lhs_cache_hit ? "true" : "false")
                    .attr("rhs_cache_hit",
                          st.rhs_cache_hit ? "true" : "false"));
            at += st.modeled_seconds;
          }
        }
        item->trace->ok = true;
        item->trace->device = static_cast<int>(dev);
        item->trace->shards = 1;
        resp.trace = item->trace;
        traces.add(item->trace);
      }
      item->promise.set_value(std::move(resp));
      complete(/*failed=*/false);
      return;
    }

    // Failed attempt (injected or genuine): the modeled clock only
    // accumulates work that actually ran, so the estimate rolls off the
    // device and — budget permitting — the request requeues to a
    // surviving device.
    const double fail_end = pl.start + pl.est;
    if (item->trace) {
      item->trace->add_span(
          TraceSpan("replay", pl.start, fail_end, static_cast<int>(dev))
              .attr("ok", "false")
              .attr("fault", injected ? "injected" : "genuine")
              .attr("error", describe_exception(err)));
    }
    const double deadline = item->req.deadline_seconds;
    // A failed probe requeues budget-free: the probe offer promised the
    // request "low risk", so the quarantined device's fault must not eat
    // into its max_retries (and does not mark it poisoned either).
    const bool free_requeue = c.probe;
    const std::size_t next_attempt = free_requeue ? attempt : attempt + 1;
    Placement next;
    bool requeue = false;
    bool shed = false;
    bool poison = false;
    double shed_completion = 0.0;
    std::uint64_t next_ticket = 0;
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.devices[dev].completed += 1;
      stats.devices[dev].modeled_busy_seconds -= pl.est;
      score_execution_locked(dev, /*ok=*/false, pl, item->trace);
      const HealingConfig& h = owner->cfg_.healing;
      if (c.probe) {
        probe_streak[dev] = 0;
        placements_since_probe[dev] = 0;
      } else if (h.enabled && h.poison_fault_devices > 0 && faulted) {
        // Poison isolation: once the request has faulted on enough
        // *distinct* devices the faults correlate with the request, not
        // the fleet — fail fast instead of spending the rest of the
        // budget dragging more health scores down.
        if (std::find(faulted->begin(), faulted->end(), dev) ==
            faulted->end()) {
          faulted->push_back(dev);
        }
        if (faulted->size() >= h.poison_fault_devices) {
          poison = true;
          stats.poison_failures += 1;
        }
      }
      if (!poison &&
          (free_requeue || attempt < owner->cfg_.max_retries) &&
          choose_retry_device_locked(run, dev, &next)) {
        // The request's timeline is monotone: the retry bridges from the
        // failed attempt's modeled end to the new device's backlog (or is
        // instantaneous when that backlog is already behind us).
        if (next.start < fail_end) next.start = fail_end;
        if (deadline > 0.0 && next.start + next.est > deadline) {
          // The re-placed completion now misses the deadline: shed instead
          // of burning retry budget on guaranteed-late work.
          shed = true;
          shed_completion = next.start + next.est;
        } else {
          requeue = true;
          stats.retries += 1;
          stats.devices[next.device].placed += 1;
          stats.devices[next.device].modeled_busy_seconds += next.est;
          next_ticket = register_ticket_locked(run, next, item->trace);
          attach_context_locked(next_ticket, item, faulted, next_attempt,
                                batch_id, batch_size);
          maybe_hedge_locked(next_ticket);
        }
      }
    }
    if (poison) {
      fail_request(*item, std::make_exception_ptr(PoisonError(
                              "poison request: faulted on " +
                              std::to_string(owner->cfg_.healing
                                                 .poison_fault_devices) +
                              " distinct devices, failing fast: " +
                              describe_exception(err))));
      return;
    }
    if (requeue) {
      if (item->trace) {
        item->trace->retries.fetch_add(1);
        item->trace->add_span(
            TraceSpan("retry", fail_end, next.start,
                      static_cast<int>(next.device))
                .attr("attempt", std::to_string(next_attempt))
                .attr("from_device", std::to_string(dev)));
      }
      ThreadPool::instance().post([this, item, next_ticket, next_attempt,
                                   run, batch_id, batch_size, faulted] {
        run_single(item, next_ticket, next_attempt, run, batch_id,
                   batch_size, faulted);
      });
      return;
    }
    if (shed) {
      shed_request(*item, shed_completion, fail_end);
      return;
    }
    if (attempt >= owner->cfg_.max_retries) {
      err = std::make_exception_ptr(Error(
          "request failed after " + std::to_string(attempt + 1) +
          " attempts (retry budget exhausted): " + describe_exception(err)));
    } else {
      err = std::make_exception_ptr(Error(
          "request failed and no active device survives to requeue it: " +
          describe_exception(err)));
    }
    fail_request(*item, err);
  }

  /// Pool-task body of the sharded path: slices the pattern, builds (or
  /// finds) the pinned sub-plans, assigns devices, then fans the slices
  /// out. Runs on a ThreadPool worker so a cold giant never head-of-line
  /// blocks the dispatcher.
  void prepare_shards(const std::shared_ptr<PendingRequest>& item,
                      std::uint64_t pattern_fp, std::size_t want,
                      const simt::KernelRun& run, std::uint64_t batch_id,
                      std::size_t batch_size) {
    const Request& req = item->req;
    auto st = std::make_shared<ShardState>();
    st->op = req.op;
    core::SpmmConfig scfg;
    core::SddmmConfig dcfg;
    std::size_t n_cols = 0;  // SpMM N
    std::size_t k_depth = 0; // SDDMM K
    try {
      int stride;
      if (req.op == OpKind::spmm) {
        scfg.precision = req.precision;
        scfg.variant = req.variant;
        scfg.bsn = req.bsn;
        n_cols = req.rhs_values->cols();
        stride = core::stride_for(req.precision);
        st->full_lhs_content = req.lhs_id != 0 ? req.lhs_id : pattern_fp;
      } else {
        dcfg.precision = req.precision;
        dcfg.prefetch = req.sddmm_prefetch;
        k_depth = req.lhs_values->cols();
        // SDDMM blocks own groups of 16 output vectors: balancing on that
        // granularity mirrors what each block actually executes.
        stride = core::detail::kSddmmSlotsPerBlock;
        st->full_lhs_content = req.lhs_id;  // 0 = anonymous activation
      }
      st->slices = plan_row_shards(*req.pattern, stride, want);
      if (st->slices.size() <= 1) {
        // The pattern would not split (e.g. a single block row): place it
        // whole from here — we are already on a pool thread.
        const CommitResult cr = commit_whole(
            run, req.deadline_seconds, affinity_key(req, pattern_fp),
            item->trace);
        if (cr.shed) {
          shed_request(*item, cr.completion, /*at_seconds=*/0.0);
          return;
        }
        if (!cr.placed) {
          throw Error("DevicePool: no active device to place a request on "
                      "(every device is drained)");
        }
        if (item->trace) {
          item->trace->add_span(TraceSpan("queue", 0.0, cr.pl.start));
          item->trace->add_span(
              TraceSpan("place", cr.pl.start, cr.pl.start,
                        static_cast<int>(cr.pl.device))
                  .attr("est_seconds", fmt_seconds(cr.pl.est)));
        }
        auto faulted = std::make_shared<std::vector<std::size_t>>();
        {
          std::lock_guard<std::mutex> lock(mutex);
          attach_context_locked(cr.ticket, item, faulted, /*attempt=*/0,
                                batch_id, batch_size);
          maybe_hedge_locked(cr.ticket);
        }
        run_single(item, cr.ticket, /*attempt=*/0, run, batch_id,
                   batch_size, faulted);
        return;
      }

      st->batch_id = batch_id;
      st->batch_size = batch_size;
      st->plan_pins = OperandCache::PinScope(owner->plan_cache_);

      const std::size_t n = st->slices.size();
      st->patterns.reserve(n);
      st->runs.resize(n);
      st->lhs_hits.assign(n, 0);
      if (req.op == OpKind::spmm) {
        st->spmm_plans.reserve(n);
        st->spmm_parts.resize(n);
      } else {
        st->sddmm_plans.reserve(n);
        st->sddmm_parts.resize(n);
      }
      for (std::size_t i = 0; i < n; ++i) {
        const RowSlice& s = st->slices[i];
        st->patterns.push_back(std::make_shared<const sparse::BlockPattern>(
            sparse::slice_vector_rows(*req.pattern, s.vr_begin, s.vr_end)));
        // Sub-plans key on (full pattern identity, slice bounds):
        // shareable across every weight version and every request over
        // this pattern. Pin the sub-plan entry for the request's
        // lifetime: concurrent eviction must not drop a plan another
        // slice is about to replay. A pin can race an eviction in the
        // get→pin window; re-insert and retry (correctness never depends
        // on the pin — the handle keeps the plan alive — but residency is
        // what prevents rebuild churn).
        const std::uint64_t plan_id = slice_content_id(pattern_fp, s);
        bool hit = false;
        if (req.op == OpKind::spmm) {
          st->spmm_plans.push_back(owner->plan_cache_.get_or_build_spmm_plan(
              st->patterns.back(), n_cols, scfg, plan_id, &hit));
          const OperandKey pk = spmm_plan_key(plan_id, n_cols, scfg);
          for (int att = 0; !st->plan_pins.pin(pk) && att < 3; ++att) {
            st->spmm_plans.back() = owner->plan_cache_.get_or_build_spmm_plan(
                st->patterns.back(), n_cols, scfg, plan_id);
          }
          st->runs[i] = st->spmm_plans.back()->run;
        } else {
          st->sddmm_plans.push_back(
              owner->plan_cache_.get_or_build_sddmm_plan(
                  st->patterns.back(), k_depth, dcfg, plan_id, &hit));
          const OperandKey pk = sddmm_plan_key(plan_id, k_depth, dcfg);
          for (int att = 0; !st->plan_pins.pin(pk) && att < 3; ++att) {
            st->sddmm_plans.back() =
                owner->plan_cache_.get_or_build_sddmm_plan(
                    st->patterns.back(), k_depth, dcfg, plan_id);
          }
          st->runs[i] = st->sddmm_plans.back()->run;
        }
        st->all_plan_hits = st->all_plan_hits && hit;
      }
    } catch (...) {
      fail_request(*item, std::current_exception());
      return;  // st's PinScope releases on destruction
    }

    const std::size_t n = st->slices.size();
    st->placements.resize(n);
    const double deadline = req.deadline_seconds;
    std::vector<std::uint64_t> slice_tickets(n, 0);
    double max_completion = 0.0;
    bool shed = false;
    bool placed_ok = false;
    // Once the tickets are registered a concurrent drain may re-place the
    // slices (rewriting st->placements under the lock), so every read the
    // rest of this function does goes through this admission-time
    // snapshot; the executing slice reads the final word via its claim.
    std::vector<Placement> admitted;
    {
      std::lock_guard<std::mutex> lock(mutex);
      // Slices go wherever modeled completion is earliest — usually one
      // per device, but a slow or backlogged device may be skipped,
      // co-locating slices on the others. The request's modeled makespan
      // sums the per-spec estimates per assigned device (co-located
      // slices serialize on their device's modeled clock).
      st->per_device_busy.assign(specs.size(), 0.0);
      bool placed_all = true;
      std::size_t placed_n = 0;
      for (std::size_t i = 0; i < n; ++i) {
        Placement pl;
        if (!choose_device_locked(st->runs[i], -1, &pl)) {
          // Every device drained while the plans were building: roll the
          // earlier slices back and fail below.
          placed_all = false;
          break;
        }
        st->placements[i] = pl;
        stats.devices[pl.device].shard_slices += 1;
        stats.devices[pl.device].modeled_busy_seconds += pl.est;
        st->per_device_busy[pl.device] += pl.est;
        if (pl.start + pl.est > max_completion) {
          max_completion = pl.start + pl.est;
        }
        placed_n = i + 1;
      }
      // Deadline admission for the sharded path: the request completes
      // when its *latest* slice does; when that already misses the budget,
      // roll every slice back untouched and shed below.
      shed = placed_all && deadline > 0.0 && max_completion > deadline;
      if (placed_all && !shed) {
        stats.sharded_requests += 1;
        stats.shard_slices += n;
        for (std::size_t i = 0; i < n; ++i) {
          slice_tickets[i] = register_ticket_locked(
              st->runs[i], st->placements[i], item->trace,
              /*is_slice=*/true, i, st);
        }
        admitted = st->placements;
        placed_ok = true;
      } else {
        for (std::size_t j = 0; j < placed_n; ++j) {
          const Placement& q = st->placements[j];
          stats.devices[q.device].shard_slices -= 1;
          stats.devices[q.device].modeled_busy_seconds -= q.est;
        }
        st->per_device_busy.clear();
      }
    }
    if (shed) {
      st->plan_pins.release();
      shed_request(*item, max_completion, /*at_seconds=*/0.0);
      return;
    }
    if (!placed_ok) {
      fail_request(*item, std::make_exception_ptr(Error(
                              "DevicePool: no active device to place a "
                              "request on (every device is drained)")));
      return;
    }
    if (item->trace) {
      item->trace->add_span(
          TraceSpan("shard", 0.0, 0.0)
              .attr("slices", std::to_string(n))
              .attr("batch_id", std::to_string(batch_id)));
      for (std::size_t i = 0; i < n; ++i) {
        const Placement& pl = admitted[i];
        item->trace->add_span(TraceSpan("queue", 0.0, pl.start)
                                  .attr("slice", std::to_string(i)));
        item->trace->add_span(
            TraceSpan("place", pl.start, pl.start,
                      static_cast<int>(pl.device))
                .attr("slice", std::to_string(i))
                .attr("est_seconds", fmt_seconds(pl.est)));
      }
    }

    st->pending = std::move(*item);
    st->remaining.store(n, std::memory_order_relaxed);
    try {
      // The shared RHS (SpMM: the full-K dense B; SDDMM: the column-major
      // B) is prepared once — cached in the first slice's device when the
      // client named it — and aliased by every slice: operands are
      // immutable shared handles.
      st->rhs =
          cache_for(admitted.front().device)
              ->get_or_prepare_dense(st->op == OpKind::spmm
                                         ? OperandKind::spmm_rhs
                                         : OperandKind::sddmm_rhs,
                                     *st->pending.req.rhs_values,
                                     st->pending.req.precision,
                                     st->pending.req.rhs_id, &st->rhs_hit);
    } catch (...) {
      // No slice task was posted yet: fail the request directly and roll
      // the assignment back — modeled clocks must not keep busy seconds
      // (nor the counters slices, nor the ticket registry placements) for
      // work that never executed. A drain may have re-placed some tickets
      // meanwhile; st->placements tracks those rewrites, so rolling back
      // from it always hits the device currently charged.
      {
        std::lock_guard<std::mutex> lock(mutex);
        stats.sharded_requests -= 1;
        stats.shard_slices -= n;
        for (std::size_t i = 0; i < n; ++i) {
          tickets.erase(slice_tickets[i]);
          const Placement& pl = st->placements[i];
          stats.devices[pl.device].shard_slices -= 1;
          stats.devices[pl.device].modeled_busy_seconds -= pl.est;
        }
      }
      st->plan_pins.release();
      fail_request(st->pending, std::current_exception());
      return;
    }
    // Each slice tracks its own distinct-fault-device set: a slice is the
    // retry unit, so poison isolation reasons per slice.
    std::vector<std::shared_ptr<std::vector<std::size_t>>> slice_faults(n);
    for (std::size_t i = 0; i < n; ++i) {
      slice_faults[i] = std::make_shared<std::vector<std::size_t>>();
    }
    for (std::size_t i = 1; i < n; ++i) {
      const std::uint64_t tk = slice_tickets[i];
      const auto fv = slice_faults[i];
      ThreadPool::instance().post(
          [this, st, i, tk, fv] { run_slice(st, i, tk, /*attempt=*/0, fv); });
    }
    run_slice(st, 0, slice_tickets[0], /*attempt=*/0, slice_faults[0]);
  }

  std::shared_ptr<OperandCache> cache_for(std::size_t dev) {
    std::lock_guard<std::mutex> lock(mutex);
    return caches[dev];
  }

  void run_slice(const std::shared_ptr<ShardState>& st, std::size_t i,
                 std::uint64_t ticket, std::size_t attempt,
                 const std::shared_ptr<std::vector<std::size_t>>& faulted =
                     nullptr) {
    // As for whole requests: the claim reads the final placement, which a
    // drain may have re-priced onto a surviving device.
    const Claimed c = claim_ticket(ticket);
    const Placement pl = c.pl;
    const std::size_t dev = pl.device;
    const bool injected = c.injected;
    const std::shared_ptr<OperandCache>& cache = c.cache;
    std::exception_ptr err;
    try {
      if (injected) {
        if (st->pending.trace) st->pending.trace->faults_injected.fetch_add(1);
        throw FaultError("injected fault: shard slice " + std::to_string(i) +
                         " on device " + std::to_string(dev));
      }
      if (st->op == OpKind::spmm) {
        SliceExecution se = execute_spmm_slice(
            st->pending.req, st->patterns[i], st->slices[i],
            st->full_lhs_content, st->spmm_plans[i], st->rhs, *cache);
        st->spmm_parts[i] = std::move(se.result);
        st->lhs_hits[i] = se.lhs_cache_hit ? 1 : 0;
      } else {
        SddmmSliceExecution se = execute_sddmm_slice(
            st->pending.req, st->patterns[i], st->slices[i],
            st->sddmm_plans[i], st->rhs, *cache);
        st->sddmm_parts[i] = std::move(se.result);
        st->lhs_hits[i] = se.lhs_cache_hit ? 1 : 0;
      }
    } catch (...) {
      err = std::current_exception();
    }

    if (!err) {
      if (st->pending.trace) {
        st->pending.trace->add_span(
            TraceSpan("replay", pl.start, pl.start + pl.est,
                      static_cast<int>(dev))
                .attr("ok", "true")
                .attr("slice", std::to_string(i)));
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        stats.devices[dev].completed += 1;
        st->placements[i] = pl;
        score_execution_locked(dev, /*ok=*/true, pl, st->pending.trace);
      }
      if (st->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        finish_shard(st);
      }
      return;
    }

    // Failed slice: roll the estimate off the modeled clock and requeue
    // the slice alone — the siblings' work stands.
    const double fail_end = pl.start + pl.est;
    if (st->pending.trace) {
      st->pending.trace->add_span(
          TraceSpan("replay", pl.start, fail_end, static_cast<int>(dev))
              .attr("ok", "false")
              .attr("slice", std::to_string(i))
              .attr("fault", injected ? "injected" : "genuine")
              .attr("error", describe_exception(err)));
    }
    Placement next;
    bool requeue = false;
    bool poison = false;
    std::uint64_t next_ticket = 0;
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.devices[dev].completed += 1;
      stats.devices[dev].modeled_busy_seconds -= pl.est;
      if (dev < st->per_device_busy.size()) {
        st->per_device_busy[dev] -= pl.est;
      }
      score_execution_locked(dev, /*ok=*/false, pl, st->pending.trace);
      const HealingConfig& h = owner->cfg_.healing;
      if (h.enabled && h.poison_fault_devices > 0 && faulted) {
        if (std::find(faulted->begin(), faulted->end(), dev) ==
            faulted->end()) {
          faulted->push_back(dev);
        }
        poison = faulted->size() >= h.poison_fault_devices;
      }
      if (!poison && attempt < owner->cfg_.max_retries &&
          choose_retry_device_locked(st->runs[i], dev, &next)) {
        if (next.start < fail_end) next.start = fail_end;
        requeue = true;
        stats.retries += 1;
        st->retries += 1;
        stats.shard_slices += 1;
        stats.devices[next.device].shard_slices += 1;
        stats.devices[next.device].modeled_busy_seconds += next.est;
        if (next.device >= st->per_device_busy.size()) {
          st->per_device_busy.resize(next.device + 1, 0.0);
        }
        st->per_device_busy[next.device] += next.est;
        next_ticket = register_ticket_locked(st->runs[i], next,
                                             st->pending.trace,
                                             /*is_slice=*/true, i, st);
      }
    }
    if (requeue) {
      if (st->pending.trace) {
        st->pending.trace->retries.fetch_add(1);
        st->pending.trace->add_span(
            TraceSpan("retry", fail_end, next.start,
                      static_cast<int>(next.device))
                .attr("slice", std::to_string(i))
                .attr("attempt", std::to_string(attempt + 1))
                .attr("from_device", std::to_string(dev)));
      }
      ThreadPool::instance().post([this, st, i, next_ticket, attempt,
                                   faulted] {
        run_slice(st, i, next_ticket, attempt + 1, faulted);
      });
      return;
    }
    if (poison) {
      err = std::make_exception_ptr(PoisonError(
          "poison request: shard slice " + std::to_string(i) +
          " faulted on " +
          std::to_string(owner->cfg_.healing.poison_fault_devices) +
          " distinct devices, failing fast: " + describe_exception(err)));
      bool won = false;
      {
        std::lock_guard<std::mutex> lock(st->error_mutex);
        if (!st->error) {
          st->error = err;
          won = true;
        }
      }
      // Count at most one poison failure per request: only the slice that
      // actually poisons the shard's error slot records it. The pool mutex
      // is taken after error_mutex released — never nested inside it.
      if (won) {
        std::lock_guard<std::mutex> lock(mutex);
        stats.poison_failures += 1;
      }
      if (st->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        finish_shard(st);
      }
      return;
    }
    if (attempt >= owner->cfg_.max_retries) {
      err = std::make_exception_ptr(Error(
          "shard slice " + std::to_string(i) + " failed after " +
          std::to_string(attempt + 1) +
          " attempts (retry budget exhausted): " + describe_exception(err)));
    } else {
      err = std::make_exception_ptr(Error(
          "shard slice " + std::to_string(i) +
          " failed and no active device survives to requeue it: " +
          describe_exception(err)));
    }
    {
      std::lock_guard<std::mutex> lock(st->error_mutex);
      if (!st->error) st->error = err;
    }
    if (st->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finish_shard(st);
    }
  }

  void finish_shard(const std::shared_ptr<ShardState>& st) {
    if (st->error) {
      st->plan_pins.release();
      fail_request(st->pending, st->error);
      return;
    }
    bool failed = false;
    try {
      const Request& req = st->pending.req;
      Response resp;
      resp.op = st->op;
      if (st->op == OpKind::spmm) {
        resp.spmm = merge_row_shards(req.pattern->rows,
                                     req.rhs_values->cols(),
                                     req.pattern->vector_length, st->slices,
                                     std::move(st->spmm_parts));
      } else {
        resp.sddmm = merge_sddmm_row_shards(*req.pattern, st->slices,
                                            std::move(st->sddmm_parts));
      }
      double makespan = 0.0;
      double completion = 0.0;
      std::uint64_t retries = 0;
      bool one_device = true;
      int first_device = -1;
      {
        std::lock_guard<std::mutex> lock(mutex);
        for (const double busy : st->per_device_busy) {
          if (busy > makespan) makespan = busy;
        }
        retries = st->retries;
        first_device = static_cast<int>(st->placements.front().device);
        for (const Placement& pl : st->placements) {
          one_device = one_device &&
                       static_cast<int>(pl.device) == first_device;
          // The request completes when its latest slice does.
          if (pl.start + pl.est > completion) completion = pl.start + pl.est;
        }
      }
      // Usually the slices spanned several devices (-1); under a skewed
      // backlog they may all have co-located on one, which is then
      // reported like a whole placement.
      resp.device = one_device ? first_device : -1;
      resp.shards = st->slices.size();
      resp.plan_cache_hit = st->all_plan_hits;
      resp.lhs_cache_hit =
          std::all_of(st->lhs_hits.begin(), st->lhs_hits.end(),
                      [](char h) { return h != 0; });
      resp.rhs_cache_hit = st->rhs_hit;
      resp.modeled_seconds = makespan;
      resp.modeled_completion_seconds = completion;
      resp.batch_id = st->batch_id;
      resp.batch_size = st->batch_size;
      resp.retries = retries;
      if (st->pending.trace) {
        RequestTrace& t = *st->pending.trace;
        t.add_span(TraceSpan("merge", t.total_modeled_seconds,
                             t.total_modeled_seconds)
                       .attr("ok", "true")
                       .attr("slices", std::to_string(st->slices.size())));
        t.ok = true;
        t.device = resp.device;
        t.shards = st->slices.size();
        resp.trace = st->pending.trace;
        traces.add(st->pending.trace);
      }
      // Release before the future resolves: the merge has consumed the
      // sub-plans, and a caller returning from get() may immediately
      // assert that no pin outlives its request.
      st->plan_pins.release();
      st->pending.promise.set_value(std::move(resp));
    } catch (...) {
      failed = true;
      if (st->pending.trace) {
        RequestTrace& t = *st->pending.trace;
        // A failed merge still gets its terminal span (ok="false") so
        // trace_report --fail-on-failed-spans can flag it from the CI
        // artifact alone.
        t.add_span(TraceSpan("merge", t.total_modeled_seconds,
                             t.total_modeled_seconds)
                       .attr("ok", "false")
                       .attr("slices", std::to_string(st->slices.size()))
                       .attr("error", describe_exception(
                                          std::current_exception())));
        t.ok = false;
        t.error = describe_exception(std::current_exception());
        traces.add(st->pending.trace);
      }
      st->plan_pins.release();
      st->pending.promise.set_exception(std::current_exception());
    }
    complete(failed);
  }
};

DevicePool::DevicePool(DevicePoolConfig cfg)
    : cfg_(std::move(cfg)), plan_cache_(cfg_.plan_cache_capacity_bytes),
      impl_(new Impl(cfg_)) {
  std::vector<simt::DeviceSpec> specs = cfg_.devices;
  if (specs.empty()) {
    MAGICUBE_CHECK_MSG(cfg_.device_count > 0,
                       "a DevicePool needs at least one device");
    specs.assign(cfg_.device_count, cfg_.device);
  }
  MAGICUBE_CHECK_MSG(cfg_.fault_plan.probability >= 0.0 &&
                         cfg_.fault_plan.probability <= 1.0,
                     "FaultPlan probability must lie in [0, 1]");
  for (const FaultPlan::Window& w : cfg_.fault_plan.windows) {
    MAGICUBE_CHECK_MSG(w.probability >= 0.0 && w.probability <= 1.0,
                       "FaultPlan window probability must lie in [0, 1]");
  }
  cfg_.healing.validate();
  impl_->owner = this;
  impl_->warmup_pins = OperandCache::PinScope(plan_cache_);
  impl_->specs = std::move(specs);
  const std::size_t n = impl_->specs.size();
  impl_->active.assign(n, 1);
  impl_->executions.assign(n, 0);
  impl_->quarantined.assign(n, 0);
  impl_->probe_streak.assign(n, 0);
  impl_->placements_since_probe.assign(n, 0);
  impl_->caches.reserve(n);
  for (std::size_t d = 0; d < n; ++d) {
    impl_->caches.push_back(
        std::make_shared<OperandCache>(cfg_.cache_capacity_bytes));
  }
  impl_->stats.devices.resize(n);
  detail::SubmitQueueCore::Tuning tuning;
  tuning.label = "DevicePool";
  tuning.engine_id = "device_pool";
  tuning.linger = cfg_.linger;
  tuning.max_queue_depth = cfg_.max_queue_depth;
  tuning.collect_traces = cfg_.collect_traces;
  impl_->core.start(tuning, [impl = impl_.get()](
                                std::deque<PendingRequest> taken) {
    impl->dispatch(std::move(taken));
  });
}

DevicePool::~DevicePool() {
  impl_->core.shutdown();
  impl_->wait_hedge_tasks();
}

std::future<Response> DevicePool::submit(Request req) {
  return impl_->core.submit(std::move(req));
}

void DevicePool::drain() { impl_->core.drain(); }

void DevicePool::shutdown() {
  impl_->core.shutdown();
  impl_->wait_hedge_tasks();
}

std::size_t DevicePool::add_device(const simt::DeviceSpec& spec) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->specs.push_back(spec);
  impl_->active.push_back(1);
  impl_->executions.push_back(0);
  impl_->quarantined.push_back(0);
  impl_->probe_streak.push_back(0);
  impl_->placements_since_probe.push_back(0);
  impl_->caches.push_back(
      std::make_shared<OperandCache>(cfg_.cache_capacity_bytes));
  impl_->stats.devices.emplace_back();
  return impl_->specs.size() - 1;
}

void DevicePool::drain_device(std::size_t d) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MAGICUBE_CHECK_MSG(d < impl_->specs.size(),
                     "drain_device: no device " << d << " in the pool");
  impl_->active[d] = 0;
  impl_->replace_queued_locked(d);
}

WarmupReport DevicePool::warmup(const WarmupManifest& manifest) {
  return warmup_plans(plan_cache_, manifest, &impl_->warmup_pins);
}

std::size_t DevicePool::device_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->specs.size();
}

std::size_t DevicePool::active_device_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->active_count_locked();
}

simt::DeviceSpec DevicePool::device_spec(std::size_t d) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MAGICUBE_CHECK(d < impl_->specs.size());
  return impl_->specs[d];
}

bool DevicePool::device_active(std::size_t d) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MAGICUBE_CHECK(d < impl_->specs.size());
  return impl_->active[d] != 0;
}

OperandCache& DevicePool::device_cache(std::size_t d) {
  std::shared_ptr<OperandCache> cache;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    MAGICUBE_CHECK(d < impl_->caches.size());
    cache = impl_->caches[d];
  }
  // The pool never removes a device, so the cache outlives every caller.
  return *cache;
}

const TraceLog& DevicePool::traces() const { return impl_->traces; }

double DevicePool::device_health(std::size_t d) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MAGICUBE_CHECK(d < impl_->stats.devices.size());
  return impl_->stats.devices[d].health;
}

bool DevicePool::device_quarantined(std::size_t d) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MAGICUBE_CHECK(d < impl_->quarantined.size());
  return impl_->quarantined[d] != 0;
}

DevicePoolStats DevicePool::stats() const {
  DevicePoolStats out;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    out = impl_->stats;
  }
  out.submitted = impl_->core.submitted();
  return out;
}

TokenSession DevicePool::open_session(SessionConfig cfg) {
  MAGICUBE_CHECK_MSG(cfg.mask != nullptr, "open_session needs a mask");
  MAGICUBE_CHECK_MSG(transformer::is_magicube(cfg.scheme),
                     "token streams serve the Magicube schemes only");
  MAGICUBE_CHECK_MSG(cfg.mask->rows == cfg.mask->cols,
                     "session masks are square (L_max x L_max)");
  MAGICUBE_CHECK_MSG(
      cfg.mask->rows % static_cast<std::size_t>(cfg.mask->vector_length) ==
          0,
      "session mask rows must be a multiple of its vector length");
  MAGICUBE_CHECK_MSG(cfg.dk > 0, "open_session needs the stream's dk");
  // The admission currency: the stream's modeled *ceiling* — a full-length
  // step on the reference device spec. Priced outside the lock (analytic,
  // no caches touched).
  const double cost = price_session_step_seconds(*cfg.mask, cfg.dk,
                                                 cfg.scheme, cfg_.device);
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (cfg_.session_budget_seconds > 0.0 &&
        impl_->session_load + cost > cfg_.session_budget_seconds) {
      impl_->stats.sessions_shed += 1;
      throw ShedError(
          "DevicePool: session admission shed — open-session modeled load " +
          std::to_string(impl_->session_load + cost) +
          "s would exceed the budget of " +
          std::to_string(cfg_.session_budget_seconds) + "s");
    }
    id = impl_->next_session_id++;
    impl_->session_cost[id] = cost;
    impl_->session_load += cost;
    impl_->stats.sessions_opened += 1;
  }
  return TokenSession(this, id, std::move(cfg));
}

double DevicePool::session_load_seconds() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->session_load;
}

void DevicePool::close_session(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->session_cost.find(id);
  if (it == impl_->session_cost.end()) return;
  impl_->session_load -= it->second;
  if (impl_->session_load < 0.0) impl_->session_load = 0.0;
  impl_->session_cost.erase(it);
  impl_->stats.sessions_closed += 1;
}

void DevicePool::note_session_step() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->stats.session_steps += 1;
}

}  // namespace magicube::serve
