#include "serve/trace.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace magicube::serve {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  // Shortest %g form that round-trips: modeled timestamps feed equality
  // checks downstream (span-coverage invariants), so the JSON must encode
  // the exact double, not a 9-digit approximation.
  char buf[40];
  for (const int prec : {9, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  out += buf;
}

}  // namespace

std::string to_json(const TraceSpan& span) {
  std::string out = "{\"name\":";
  append_escaped(out, span.name);
  out += ",\"begin\":";
  append_number(out, span.begin_seconds);
  out += ",\"end\":";
  append_number(out, span.end_seconds);
  out += ",\"device\":" + std::to_string(span.device);
  out += ",\"attrs\":{";
  bool first = true;
  for (const auto& [key, value] : span.attrs) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, key);
    out.push_back(':');
    append_escaped(out, value);
  }
  out += "}}";
  return out;
}

std::string to_json(const RequestTrace& trace) {
  std::string out = "{\"request_id\":" + std::to_string(trace.request_id);
  out += ",\"engine\":";
  append_escaped(out, trace.engine);
  out += ",\"op\":";
  append_escaped(out, trace.op);
  out += ",\"precision\":";
  append_escaped(out, trace.precision);
  out += ",\"ok\":";
  out += trace.ok ? "true" : "false";
  out += ",\"error\":";
  append_escaped(out, trace.error);
  out += ",\"device\":" + std::to_string(trace.device);
  out += ",\"shards\":" + std::to_string(trace.shards);
  out += ",\"retries\":" + std::to_string(trace.retries.load());
  out += ",\"faults_injected\":" + std::to_string(trace.faults_injected.load());
  out += ",\"modeled_seconds\":";
  append_number(out, trace.total_modeled_seconds);
  out += ",\"spans\":[";
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += to_json(trace.spans[i]);
  }
  out += "]}";
  return out;
}

TraceLog::TraceLog(std::string engine, std::size_t capacity)
    : engine_(std::move(engine)), capacity_(capacity == 0 ? 1 : capacity) {}

void TraceLog::add(std::shared_ptr<const RequestTrace> trace) {
  if (!trace) return;
  std::lock_guard<std::mutex> lock(mutex_);
  traces_.push_back(std::move(trace));
  while (traces_.size() > capacity_) {
    traces_.pop_front();
    dropped_ += 1;
  }
}

std::vector<std::shared_ptr<const RequestTrace>> TraceLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {traces_.begin(), traces_.end()};
}

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return traces_.size();
}

std::size_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string TraceLog::to_json() const {
  const auto traces = snapshot();
  std::size_t dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dropped = dropped_;
  }
  std::string out = "{\"schema\":\"magicube.trace.v1\",\"engine\":";
  append_escaped(out, engine_);
  out += ",\"dropped\":" + std::to_string(dropped);
  out += ",\"traces\":[\n";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i != 0) out += ",\n";
    out += serve::to_json(*traces[i]);
  }
  out += "\n]}\n";
  return out;
}

bool TraceLog::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json();
  return static_cast<bool>(f);
}

}  // namespace magicube::serve
