#pragma once
// Elastic heterogeneous multi-device serving engine: one scheduler over N
// simulated devices, with cost-model-driven placement, fault recovery and
// per-request tracing.
//
// A DevicePool runs the BatchScheduler's submit/future contract (the shared
// detail::SubmitQueueCore front half) over a fleet of simulated DeviceSpec
// workers. Each worker owns a modeled clock (the cost model's accumulated
// busy seconds — the device analogue of queue depth) and its own
// OperandCache byte budget; a shared plan cache holds the pattern-only
// execution plans every device replays (plans are value- and device-free,
// so one build serves the whole fleet).
//
// Heterogeneity & elasticity: the fleet may mix specs (an A100-class part
// beside simt::edge()-class parts) — placement prices every request *per
// candidate spec* with simt::estimate_seconds and assigns it to the device
// with the earliest modeled completion time (backlog + per-spec estimate),
// so a fast part naturally absorbs more traffic than a slow one. Devices
// join mid-traffic with add_device() and leave with drain_device(): a
// drained device stops receiving placements immediately but finishes (or
// requeues, on failure) work already placed. On a homogeneous fleet the
// estimate is a uniform addend and the argmin reduces to least modeled
// backlog, exactly the PR 5 behavior; ties are still broken round-robin.
//
// Fault injection & recovery: a FaultPlan (serve/fault.hpp) fails selected
// kernel executions deterministically. A failed execution — injected or
// genuine — rolls its estimate off the device's modeled clock, releases
// its pins, and is requeued to a surviving (active, preferably different)
// device under a bounded per-request retry budget (max_retries); an
// exhausted budget surfaces a clean Error on the future. Outputs stay
// bit-exact vs the sequential reference regardless of injected failures
// (tests/test_fleet.cpp property tier).
//
// Sharding: a request (SpMM or SDDMM) whose modeled runtime exceeds
// shard_threshold_seconds is split row-wise along SR-BCRS block-row
// boundaries (serve/shard.hpp) into up to active-device-count sub-problems
// — never below one modeled wave (the largest active sm_count) — whose
// sub-plans come from the shared plan cache (pinned for the request's
// lifetime), executed in parallel across the least-loaded devices and
// merged by a bit-exact row-concatenation epilogue (dense rows for SpMM,
// BCRS concatenation for SDDMM). Failed slices requeue individually.
//
// SLA layer (serve/sla.hpp): requests may carry a deadline in modeled
// seconds. Dispatch orders each drain by priority, then earliest deadline
// first within a class; a request whose modeled completion (best-candidate
// backlog + per-spec estimate) exceeds its deadline at admission — or at a
// retry re-placement — is shed with a clean ShedError (counted, traced
// with a `shed` span, never silently dropped). A dispatch round that saw
// deadline pressure drops the linger to 0 for the next round
// (adaptive_linger) so backlog drains at full cadence. warmup() pre-builds
// and pins a manifest's hot plans; affinity_tolerance_seconds routes
// repeat-pattern traffic back to the device that served the pattern last
// (where its prepared operands are resident) when the modeled completion
// delta stays under the tolerance. When a device drains mid-backlog, the
// cost model re-prices its queued (not yet executing) work onto the
// surviving devices (`replace` trace spans) instead of finishing it on the
// leaving device.
//
// Self-healing (cfg.healing; serve/sla.hpp's HealingConfig): every
// execution outcome feeds a per-device health EWMA (DeviceStats::health,
// with a completion-vs-estimate drift EWMA beside it as telemetry). A
// device whose score falls below the configured floor is *quarantined* —
// removed from placement candidates, its queued tickets re-placed exactly
// as a drain re-places them — then periodically offered low-risk probe
// executions and reinstated after K consecutive successes. Deadline
// traffic drifting past hedge_deadline_fraction of its budget gets a
// duplicate placed on the best alternative device; the copies race on the
// *modeled* clock (the first claim decides by comparing final modeled
// completions, so the winner set is deterministic regardless of wall-clock
// interleaving) and the loser rolls off unexecuted, pins released. A
// request that faults on poison_fault_devices distinct devices fails fast
// with PoisonError instead of spending its remaining retry budget
// degrading more health scores. Pool-initiated re-placements (drain or
// quarantine re-pricing, failed probes, canceled hedge copies) never
// consume max_retries — only genuine/injected fault attempts do. All of it
// is off by default (healing.enabled = false) and gated end-to-end by
// bench/chaos_soak.cpp.
//
// Tracing: every request carries a RequestTrace (serve/trace.hpp) of
// queue → price → place → [shard] → replay → [retry] → merge spans over
// modeled time (plus `shed`/`replace`, above), with device ids and
// cache-hit attributes; completed traces land in a bounded TraceLog
// exportable as JSON next to BENCH_*.json.
//
// Concurrency contract: unchanged — the dispatcher thread never executes
// kernels, pool tasks never wait on futures (a sharded request's slices
// rendezvous through an atomic countdown, and the last finisher merges),
// so the ThreadPool reentrancy guard is the only nesting. Wall-clock
// execution shares the host ThreadPool; the per-device state is *modeled*,
// which is exactly what the scaling bench gates.

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "serve/fault.hpp"
#include "serve/operand_cache.hpp"
#include "serve/request.hpp"
#include "serve/sla.hpp"
#include "serve/trace.hpp"
#include "simt/device_spec.hpp"

namespace magicube::serve {

struct SessionConfig;  // serve/session.hpp
class TokenSession;    // serve/session.hpp

struct DevicePoolConfig {
  /// Initial per-device specs (heterogeneous fleet). When non-empty this
  /// wins over device_count/device; add_device() appends more at runtime.
  std::vector<simt::DeviceSpec> devices;
  /// Homogeneous fallback: device_count copies of `device` (used only when
  /// `devices` is empty).
  std::size_t device_count = 2;
  simt::DeviceSpec device = simt::a100();
  /// Operand-cache budget per device (prepared operands, incl. row slices).
  std::size_t cache_capacity_bytes = 256ull << 20;
  /// Shared plan-cache budget (pattern-only plans + sub-plans).
  std::size_t plan_cache_capacity_bytes = 64ull << 20;
  /// Requests whose modeled runtime (priced on the reference `device` spec)
  /// exceeds this are split row-wise across devices. 0 disables sharding.
  /// The default sits well above the Fig. 12 single-layer shapes (~4-5 us
  /// modeled on the A100 spec) so ordinary traffic places whole and only
  /// genuinely giant patterns shard.
  double shard_threshold_seconds = 2e-5;
  /// Hard cap on row shards per request (0 = active device count).
  std::size_t max_shards = 0;
  /// Wave-fill floor: minimum grid blocks a row shard must keep so the
  /// device it moves to still has work for every SM. 0 = the largest
  /// active sm_count (one block per SM). Tests lower it to shard tiny
  /// problems.
  std::size_t wave_floor_blocks = 0;
  /// How long the dispatcher lingers for a forming batch (see
  /// BatchSchedulerConfig::linger).
  std::chrono::microseconds linger{200};
  /// Bounded submit queue; submit() blocks at the bound (0 = unbounded).
  std::size_t max_queue_depth = 0;
  /// Deterministic fault injection (tests/soaks; see serve/fault.hpp).
  FaultPlan fault_plan;
  /// Requeues granted per request (and per shard slice) after an execution
  /// failure before the error surfaces on the future.
  std::size_t max_retries = 2;
  /// Attach a RequestTrace to every request (Response::trace) and keep
  /// completed traces in the pool's bounded TraceLog.
  bool collect_traces = true;
  /// TraceLog ring capacity (oldest completed traces dropped beyond it).
  std::size_t trace_capacity = 4096;
  /// Device-affinity placement: when > 0, a whole request whose pattern
  /// was served before is routed back to the device that served it last
  /// (where its prepared operands are resident) as long as the modeled
  /// completion there exceeds the earliest-completion candidate by at most
  /// this tolerance (and stays within the deadline). 0 disables — the
  /// default, keeping pure earliest-completion placement (and its
  /// round-robin tie spreading) for deployments that don't opt in.
  double affinity_tolerance_seconds = 0.0;
  /// Drop the linger to 0 for the dispatch round after one that shed work
  /// or placed a deadline past half its budget, restoring `linger` once
  /// the pressure clears. Modeled-latency-driven cadence instead of a
  /// static knob; counted as urgent_rounds.
  bool adaptive_linger = true;
  /// Self-healing policy: health scoring, quarantine + probe recovery,
  /// hedged execution and poison isolation (serve/sla.hpp). Disabled by
  /// default — the pre-healing placement behavior is bit-identical.
  HealingConfig healing;
  /// Token-stream admission budget (serve/session.hpp): the sum of modeled
  /// full-length step costs (price_session_step_seconds on the reference
  /// `device` spec) across open sessions may not exceed this. open_session
  /// throws ShedError once the population would — deadline shedding's
  /// admission-control analogue for streams. 0 = unlimited.
  double session_budget_seconds = 0.0;
};

/// Per-device modeled telemetry.
struct DeviceStats {
  std::uint64_t placed = 0;        // whole requests placed on this device
  std::uint64_t shard_slices = 0;  // row slices executed on this device
  std::uint64_t completed = 0;     // placed requests + slices finished
  double modeled_busy_seconds = 0.0;  // accumulated cost-model time
  /// Health EWMA over execution outcomes (1.0 = never seen a failure;
  /// reset to 1.0 on reinstatement). Only maintained when cfg.healing is
  /// enabled; the quarantine breaker trips on this score.
  double health = 1.0;
  /// Outcomes behind the current health score (reset on reinstatement).
  std::uint64_t health_samples = 0;
  /// EWMA of modeled completion / bare estimate on successful executions —
  /// how much backlog inflates this device's latencies (1.0 = always
  /// idle). Telemetry beside the breaker, not a trip input.
  double completion_ratio_ewma = 1.0;

  DeviceStats& operator+=(const DeviceStats& o) {
    placed += o.placed;
    shard_slices += o.shard_slices;
    completed += o.completed;
    modeled_busy_seconds += o.modeled_busy_seconds;
    // Aggregating fleets keeps the pessimistic view: the worst health and
    // the largest drift.
    if (o.health < health) health = o.health;
    health_samples += o.health_samples;
    if (o.completion_ratio_ewma > completion_ratio_ewma) {
      completion_ratio_ewma = o.completion_ratio_ewma;
    }
    return *this;
  }
  friend bool operator==(const DeviceStats&, const DeviceStats&) = default;
};

/// Pool-level counters (reduced with += like the other stats aggregates;
/// devices align by index, so summing pools of different sizes keeps the
/// longer fleet).
struct DevicePoolStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // includes failed
  std::uint64_t failed = 0;
  std::uint64_t sharded_requests = 0;
  std::uint64_t shard_slices = 0;
  std::uint64_t tie_breaks = 0;        // placements decided round-robin
  std::uint64_t faults_injected = 0;   // FaultPlan-selected executions
  std::uint64_t retries = 0;           // requeues after failed executions
  std::uint64_t shed = 0;              // deadline-shed requests (⊆ failed)
  std::uint64_t replaced = 0;          // queued work re-priced off a drain
  std::uint64_t affinity_hits = 0;     // placements upgraded by affinity
  std::uint64_t urgent_rounds = 0;     // dispatch rounds under SLA pressure
  std::uint64_t quarantines = 0;       // circuit-breaker trips
  std::uint64_t reinstatements = 0;    // probe-driven recoveries (⊆ trips)
  std::uint64_t probes_placed = 0;     // low-risk probes offered
  std::uint64_t probe_successes = 0;   // probes that came back clean
  std::uint64_t hedges_placed = 0;     // hedge duplicates placed
  std::uint64_t hedges_won = 0;        // races the duplicate copy won
  std::uint64_t poison_failures = 0;   // PoisonError fast-fails (⊆ failed)
  std::uint64_t graph_requests = 0;    // fused attention DAGs placed whole
  std::uint64_t sessions_opened = 0;   // token streams admitted
  std::uint64_t sessions_closed = 0;   // token streams released
  std::uint64_t sessions_shed = 0;     // open_session budget rejections
  std::uint64_t session_steps = 0;     // stream steps submitted
  std::vector<DeviceStats> devices;

  DevicePoolStats& operator+=(const DevicePoolStats& o) {
    submitted += o.submitted;
    completed += o.completed;
    failed += o.failed;
    sharded_requests += o.sharded_requests;
    shard_slices += o.shard_slices;
    tie_breaks += o.tie_breaks;
    faults_injected += o.faults_injected;
    retries += o.retries;
    shed += o.shed;
    replaced += o.replaced;
    affinity_hits += o.affinity_hits;
    urgent_rounds += o.urgent_rounds;
    quarantines += o.quarantines;
    reinstatements += o.reinstatements;
    probes_placed += o.probes_placed;
    probe_successes += o.probe_successes;
    hedges_placed += o.hedges_placed;
    hedges_won += o.hedges_won;
    poison_failures += o.poison_failures;
    graph_requests += o.graph_requests;
    sessions_opened += o.sessions_opened;
    sessions_closed += o.sessions_closed;
    sessions_shed += o.sessions_shed;
    session_steps += o.session_steps;
    if (o.devices.size() > devices.size()) devices.resize(o.devices.size());
    for (std::size_t d = 0; d < o.devices.size(); ++d) {
      devices[d] += o.devices[d];
    }
    return *this;
  }

  /// Modeled makespan across the pool: the busiest device's clock. The
  /// scaling bench gates total_work / makespan against recorded bars.
  double modeled_makespan_seconds() const {
    double m = 0.0;
    for (const DeviceStats& d : devices) {
      if (d.modeled_busy_seconds > m) m = d.modeled_busy_seconds;
    }
    return m;
  }
  double modeled_total_seconds() const {
    double t = 0.0;
    for (const DeviceStats& d : devices) t += d.modeled_busy_seconds;
    return t;
  }
};

class DevicePool {
 public:
  explicit DevicePool(DevicePoolConfig cfg = {});
  /// Drains: every submitted request completes before destruction returns.
  ~DevicePool();

  /// Enqueues a request; same contract as BatchScheduler::submit (the
  /// future carries the Response or the failure, blocks at
  /// max_queue_depth, throws after shutdown began). Response.device /
  /// Response.shards / Response.retries report the placement.
  std::future<Response> submit(Request req);

  /// Blocks until every request submitted so far has completed.
  void drain();

  /// Stops intake, drains the queue, waits out in-flight work. Idempotent
  /// (the destructor calls it); submit() throws afterwards.
  void shutdown();

  /// Appends a device to the fleet mid-traffic (its own operand cache,
  /// modeled clock starting idle); placement may use it from the next
  /// dispatch round. Returns the new device's index.
  std::size_t add_device(const simt::DeviceSpec& spec);
  /// Stops new placement on device d and re-prices its queued (placed but
  /// not yet executing) work onto the surviving devices via the cost model
  /// (counted as `replaced`, traced as `replace` spans). Work already
  /// executing there finishes (or requeues through the fault path); stats
  /// and cache stay queryable. Idempotent; a drained fleet with no active
  /// device fails new placements cleanly (queued work keeps its drained
  /// target when no survivor exists).
  void drain_device(std::size_t d);

  /// Pre-builds every manifest entry's execution plan into the shared plan
  /// cache and pins the entries marked hot for the pool's lifetime —
  /// repeat-pattern traffic starts with plan hits instead of paying
  /// pure-LRU cold starts. Idempotent; see serve/sla.hpp.
  WarmupReport warmup(const WarmupManifest& manifest);

  /// Opens a per-client token stream over the fused attention graph
  /// (serve/session.hpp): each TokenSession::step submits one GraphRequest
  /// over the stream's grown prefix, coalesced with other active sessions
  /// by the ordinary linger/EDF dispatch loop (continuous batching).
  /// Admission is budgeted: when cfg.session_budget_seconds > 0 and the
  /// open population's summed modeled step cost would exceed it, throws
  /// ShedError (counted as sessions_shed). The session handle must not
  /// outlive the pool.
  TokenSession open_session(SessionConfig cfg);

  /// Summed modeled full-length step cost of the currently open sessions —
  /// what open_session admission compares against the budget.
  double session_load_seconds() const;

  /// Devices ever added to the fleet (drained ones included).
  std::size_t device_count() const;
  /// Devices currently accepting placements.
  std::size_t active_device_count() const;
  simt::DeviceSpec device_spec(std::size_t d) const;
  bool device_active(std::size_t d) const;
  /// Device d's current health score (1.0 when healing is disabled — no
  /// outcome ever updates it).
  double device_health(std::size_t d) const;
  /// Whether the circuit breaker currently holds device d out of normal
  /// placement (probes still reach it).
  bool device_quarantined(std::size_t d) const;

  /// Device d's operand cache (prepared operands and row slices).
  OperandCache& device_cache(std::size_t d);
  /// The shared pattern-only plan cache.
  OperandCache& plan_cache() { return plan_cache_; }

  /// Completed-request traces (bounded ring; see serve/trace.hpp).
  const TraceLog& traces() const;

  DevicePoolStats stats() const;
  const DevicePoolConfig& config() const { return cfg_; }

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

 private:
  friend class TokenSession;
  /// Releases an open session's admission cost (TokenSession dtor/close).
  void close_session(std::uint64_t id);
  /// Counts one submitted stream step (TokenSession::step).
  void note_session_step();

  struct Impl;
  DevicePoolConfig cfg_;
  OperandCache plan_cache_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace magicube::serve
