#pragma once
// Multi-device sharded serving engine: one scheduler over N simulated
// devices, with cost-model-driven placement.
//
// A DevicePool runs the BatchScheduler's submit/future contract over a pool
// of N simulated DeviceSpec workers. Each worker owns a modeled clock (the
// cost model's accumulated busy seconds — the device analogue of queue
// depth), an inflight count, and its own OperandCache byte budget; a shared
// plan cache holds the pattern-only execution plans every device replays
// (plans are value- and device-free, so one build serves the whole pool).
//
// Placement: the dispatcher prices every request with simt::estimate_cost
// over the request's cached plan (or the analytic estimator when no plan
// is resident yet — identical numbers by the estimate-equals-execute
// invariant, and pricing never inserts anything the shard path would
// discard) and assigns it to the worker with the earliest modeled
// completion time. On today's homogeneous pool the estimate is a uniform
// addend, so that argmin reduces to least modeled backlog; a
// heterogeneous pool would price the run per candidate spec (the ROADMAP
// follow-on). Devices whose completion times tie (the common case on an
// idle pool) are broken round-robin so bursts spread instead of piling
// onto device 0.
//
// Sharding: an SpMM whose modeled runtime exceeds shard_threshold_seconds
// is split row-wise along SR-BCRS block-row boundaries (serve/shard.hpp)
// into up to device_count sub-problems — never below one modeled wave per
// device (a slice smaller than a wave would underfill the SMs it moves to)
// — whose sub-plans come from the shared plan cache (pinned for the
// request's lifetime), executed in parallel across the least-loaded
// devices (normally one slice per device; a device carrying a large
// backlog may be skipped, and the modeled makespan accounts for slices
// that co-locate) and merged by a bit-exact row-concatenation epilogue.
// Results match the single-device path exactly; the property suite in
// tests/test_device_pool.cpp asserts it for randomized streams at
// N in {1, 2, 4}.
//
// Concurrency contract: identical to BatchScheduler — the dispatcher
// thread never executes kernels, pool tasks never wait on futures (a
// sharded request's slices rendezvous through an atomic countdown, and the
// last finisher merges), so the ThreadPool reentrancy guard is the only
// nesting. Wall-clock execution shares the host ThreadPool; the per-device
// state is *modeled*, which is exactly what the scaling bench gates.

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "serve/operand_cache.hpp"
#include "serve/request.hpp"
#include "simt/device_spec.hpp"

namespace magicube::serve {

struct DevicePoolConfig {
  /// Simulated devices in the pool.
  std::size_t device_count = 2;
  /// Spec every worker models (homogeneous pool; per-device specs are a
  /// ROADMAP follow-on — placement already prices per device).
  simt::DeviceSpec device = simt::a100();
  /// Operand-cache budget per device (prepared operands, incl. row slices).
  std::size_t cache_capacity_bytes = 256ull << 20;
  /// Shared plan-cache budget (pattern-only plans + sub-plans).
  std::size_t plan_cache_capacity_bytes = 64ull << 20;
  /// Requests whose modeled runtime exceeds this are split row-wise across
  /// devices. 0 disables sharding. The default sits well above the Fig. 12
  /// single-layer shapes (~4-5 us modeled on the A100 spec) so ordinary
  /// traffic places whole and only genuinely giant patterns shard.
  double shard_threshold_seconds = 2e-5;
  /// Hard cap on row shards per request (0 = device_count).
  std::size_t max_shards = 0;
  /// Wave-fill floor: minimum grid blocks a row shard must keep so the
  /// device it moves to still has work for every SM. 0 = the device's
  /// sm_count (one block per SM). Tests lower it to shard tiny problems.
  std::size_t wave_floor_blocks = 0;
  /// How long the dispatcher lingers for a forming batch (see
  /// BatchSchedulerConfig::linger).
  std::chrono::microseconds linger{200};
  /// Bounded submit queue; submit() blocks at the bound (0 = unbounded).
  std::size_t max_queue_depth = 0;
};

/// Per-device modeled telemetry.
struct DeviceStats {
  std::uint64_t placed = 0;        // whole requests placed on this device
  std::uint64_t shard_slices = 0;  // row slices executed on this device
  std::uint64_t completed = 0;     // placed requests + slices finished
  double modeled_busy_seconds = 0.0;  // accumulated cost-model time

  DeviceStats& operator+=(const DeviceStats& o) {
    placed += o.placed;
    shard_slices += o.shard_slices;
    completed += o.completed;
    modeled_busy_seconds += o.modeled_busy_seconds;
    return *this;
  }
  friend bool operator==(const DeviceStats&, const DeviceStats&) = default;
};

/// Pool-level counters (reduced with += like the other stats aggregates;
/// devices align by index, so summing pools of different sizes keeps the
/// longer fleet).
struct DevicePoolStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // includes failed
  std::uint64_t failed = 0;
  std::uint64_t sharded_requests = 0;
  std::uint64_t shard_slices = 0;
  std::uint64_t tie_breaks = 0;  // placements decided round-robin
  std::vector<DeviceStats> devices;

  DevicePoolStats& operator+=(const DevicePoolStats& o) {
    submitted += o.submitted;
    completed += o.completed;
    failed += o.failed;
    sharded_requests += o.sharded_requests;
    shard_slices += o.shard_slices;
    tie_breaks += o.tie_breaks;
    if (o.devices.size() > devices.size()) devices.resize(o.devices.size());
    for (std::size_t d = 0; d < o.devices.size(); ++d) {
      devices[d] += o.devices[d];
    }
    return *this;
  }

  /// Modeled makespan across the pool: the busiest device's clock. The
  /// scaling bench gates total_work / makespan against recorded bars.
  double modeled_makespan_seconds() const {
    double m = 0.0;
    for (const DeviceStats& d : devices) {
      if (d.modeled_busy_seconds > m) m = d.modeled_busy_seconds;
    }
    return m;
  }
  double modeled_total_seconds() const {
    double t = 0.0;
    for (const DeviceStats& d : devices) t += d.modeled_busy_seconds;
    return t;
  }
};

class DevicePool {
 public:
  explicit DevicePool(DevicePoolConfig cfg = {});
  /// Drains: every submitted request completes before destruction returns.
  ~DevicePool();

  /// Enqueues a request; same contract as BatchScheduler::submit (the
  /// future carries the Response or the failure, blocks at
  /// max_queue_depth, throws after shutdown began). Response.device /
  /// Response.shards report the placement.
  std::future<Response> submit(Request req);

  /// Blocks until every request submitted so far has completed.
  void drain();

  std::size_t device_count() const { return cfg_.device_count; }
  /// Device d's operand cache (prepared operands and row slices).
  OperandCache& device_cache(std::size_t d);
  /// The shared pattern-only plan cache.
  OperandCache& plan_cache() { return plan_cache_; }

  DevicePoolStats stats() const;
  const DevicePoolConfig& config() const { return cfg_; }

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

 private:
  struct Impl;
  DevicePoolConfig cfg_;
  OperandCache plan_cache_;
  std::vector<std::unique_ptr<OperandCache>> device_caches_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace magicube::serve
