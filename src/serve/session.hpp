#pragma once
// Per-client token streams over the fused attention graph.
//
// A TokenSession models one decode stream: the client appends token rows
// (multiples of the mask's SR-BCRS vector length) and each step() submits
// ONE fused GraphRequest (serve/graph.hpp) over the stream's grown prefix —
// the full-length mask re-sliced on block-row boundaries to the current
// length L, columns clamped to the visible prefix. Steps from concurrently
// active sessions coalesce in the pool's ordinary linger window and
// dispatch under the existing EDF/deadline machinery: continuous batching
// falls out of the engine rather than being a second scheduler.
//
// Admission control mirrors deadline shedding: a session's cost is its
// modeled *full-length* step (price_session_step_seconds — the ceiling of
// what any of its steps can cost), and open_session throws ShedError once
// the open population's summed cost would exceed
// DevicePoolConfig::session_budget_seconds. Closing (or dropping) the
// session releases its share.
//
// Replay invariance: a step's GraphRequest is a pure function of the
// appended rows — placement, coalescing and retries never change values —
// so replaying the same token feed across pools of any size is bit-exact
// (tests/test_graph.cpp gates N ∈ {1, 2, 4}).

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "common/matrix.hpp"
#include "serve/graph.hpp"
#include "sparse/pattern.hpp"
#include "transformer/attention.hpp"

namespace magicube::serve {

class DevicePool;

/// Configuration of one token stream.
struct SessionConfig {
  /// Full-length L_max x L_max mask (square, rows a multiple of its
  /// vector_length). Each step serves its leading L x L re-slice.
  std::shared_ptr<const sparse::BlockPattern> mask;
  /// Head depth dk of the stream's Q/K/V rows (admission pricing needs it
  /// before the first step arrives).
  std::size_t dk = 64;
  transformer::AttentionScheme scheme =
      transformer::AttentionScheme::magicube_8b_8b;
  /// Dispatch priority of every step (Request::priority).
  int priority = 0;
  /// Per-step modeled deadline (Request::deadline_seconds); 0 = none.
  double step_deadline_seconds = 0.0;
};

/// The leading L x L re-slice of a session mask, cut on SR-BCRS block-row
/// boundaries (L must be a multiple of the mask's vector_length) with
/// columns clamped to the visible prefix. Causal masks lose nothing to the
/// clamp; a non-causal mask's future columns simply aren't visible yet.
/// Exposed for the conformance tests' composed references.
std::shared_ptr<const sparse::BlockPattern> slice_session_mask(
    const sparse::BlockPattern& full, std::size_t length);

/// A per-client token stream handle. Move-only; close() (or destruction)
/// releases the session's admission share. Must not outlive its pool. Not
/// thread-safe — one client drives one session (different sessions are
/// independent).
class TokenSession {
 public:
  TokenSession() = default;
  TokenSession(TokenSession&& o) noexcept;
  TokenSession& operator=(TokenSession&& o) noexcept;
  ~TokenSession();

  /// Appends `q_rows.rows()` new token rows (a multiple of the mask's
  /// vector length; Q/K/V row blocks must agree in shape) to the stream
  /// and submits one fused graph over the first L rows under the session's
  /// priority/deadline. Returns the step's future; the response's
  /// Response::graph->out is the L x dk attention output. Throws after
  /// close() or when growth would exceed the full mask.
  std::future<Response> step(const Matrix<float>& q_rows,
                             const Matrix<float>& k_rows,
                             const Matrix<float>& v_rows);

  std::uint64_t id() const { return id_; }
  /// Tokens appended so far (the L the next step would serve from).
  std::size_t length() const { return length_; }
  std::uint64_t steps() const { return steps_; }
  bool open() const { return pool_ != nullptr; }

  /// Releases the session's admission share. Idempotent; step() throws
  /// afterwards. In-flight step futures stay valid.
  void close();

  TokenSession(const TokenSession&) = delete;
  TokenSession& operator=(const TokenSession&) = delete;

 private:
  friend class DevicePool;
  TokenSession(DevicePool* pool, std::uint64_t id, SessionConfig cfg);

  DevicePool* pool_ = nullptr;
  std::uint64_t id_ = 0;
  SessionConfig cfg_;
  std::size_t dk_ = 0;       // pinned by the first step's row block
  std::size_t length_ = 0;   // tokens appended so far
  std::uint64_t steps_ = 0;
  // Grown Q/K/V state, row-major L x dk.
  std::vector<float> q_, k_, v_;
};

}  // namespace magicube::serve
