#pragma once
// Operand cache for the inference-serving engine.
//
// Operand preparation (quantize → SR-BCRS encode → shuffle → plane
// decomposition) costs O(M·K) per call, while the kernels themselves touch
// only O(nnz·N); on the repeated-pattern traffic a Transformer serving loop
// produces, re-preparing per request dominates end-to-end time (the
// redundancy cuTeSpMM and FlashSparse identify on small problems). This
// cache memoizes prepared operands behind immutable shared handles so any
// number of concurrent kernel executions alias one preparation.
//
// Keys: (operand kind, content id, precision pair, shuffle). For SpMM LHS
// weights the content id defaults to the pattern's structural fingerprint —
// in a serving deployment the sparsity pattern identifies the pruned weight
// matrix. Clients whose distinct weights share one pattern pass an explicit
// id instead. Dense operands (activations) are cached only under a
// client-assigned nonzero id, since the engine cannot cheaply prove two
// activation matrices identical.
//
// Eviction is LRU by byte footprint. Hit/miss/eviction counters follow the
// simt::KernelCounters idiom (a plain aggregate with operator+= and
// operator==) so callers can snapshot, diff and reduce them the same way
// kernel counters are handled.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "core/operands.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "sparse/pattern.hpp"

namespace magicube::serve {

/// Which prepared form an entry holds (part of the key: the same content
/// prepared for a different slot has a different layout). Execution plans
/// live next to the operands they schedule, charged to the same LRU byte
/// budget — repeated-pattern traffic skips planning the same way it skips
/// preparation.
enum class OperandKind : std::uint8_t {
  spmm_lhs,    // SparseOperand (SR-BCRS + planes)
  spmm_rhs,    // DenseOperand, row-major
  sddmm_lhs,   // DenseOperand, row-major
  sddmm_rhs,   // DenseOperand, column-major
  spmm_plan,   // core::SpmmPlan (per pattern fingerprint x config x N)
  sddmm_plan,  // core::SddmmPlan (per pattern fingerprint x config x K)
};

struct OperandKey {
  OperandKind kind = OperandKind::spmm_lhs;
  std::uint64_t content = 0;  // pattern fingerprint or client-assigned id
  Scalar lhs = Scalar::s8;    // element type of the slot's own side (RHS
                              // slots collapse lhs to rhs so activations
                              // shared across LHS widths are one entry)
  Scalar rhs = Scalar::s8;    // picks the datapath (chunking, stride)
  bool shuffled = false;

  friend bool operator==(const OperandKey&, const OperandKey&) = default;
};

struct OperandKeyHash {
  std::size_t operator()(const OperandKey& k) const {
    std::uint64_t h = k.content;
    h ^= static_cast<std::uint64_t>(k.kind) << 56 |
         static_cast<std::uint64_t>(k.lhs) << 48 |
         static_cast<std::uint64_t>(k.rhs) << 40 |
         static_cast<std::uint64_t>(k.shuffled) << 32;
    return static_cast<std::size_t>(splitmix64(h));  // rng.hpp finalizer
  }
};

/// Cache key of a prepared SpMM LHS. Exposed for the sharding layer, which
/// derives per-row-slice identities from the full operand's content id and
/// pins the entries it is executing from.
OperandKey spmm_lhs_key(std::uint64_t content, PrecisionPair precision,
                        bool shuffled);

/// Cache key of an SpMM execution plan: structure identity, RHS width and
/// the schedule-relevant config knobs folded into the content hash. The
/// get_or_build_spmm_plan paths key with exactly this function.
OperandKey spmm_plan_key(std::uint64_t pattern_content, std::size_t n_cols,
                         const core::SpmmConfig& cfg);

/// Cache key of an SDDMM execution plan (pattern identity x K x config);
/// get_or_build_sddmm_plan keys with exactly this function.
OperandKey sddmm_plan_key(std::uint64_t pattern_content, std::size_t k_depth,
                          const core::SddmmConfig& cfg);

/// Cache-event counters, reduced with += like simt::KernelCounters.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t race_discards = 0;  // lost prepare races (first insert wins)
  std::uint64_t pin_skips = 0;      // eviction scans that skipped a pinned entry
  std::uint64_t bytes_inserted = 0;
  std::uint64_t bytes_evicted = 0;

  CacheStats& operator+=(const CacheStats& o) {
    lookups += o.lookups;
    hits += o.hits;
    misses += o.misses;
    insertions += o.insertions;
    evictions += o.evictions;
    race_discards += o.race_discards;
    pin_skips += o.pin_skips;
    bytes_inserted += o.bytes_inserted;
    bytes_evicted += o.bytes_evicted;
    return *this;
  }
  friend CacheStats operator+(CacheStats a, const CacheStats& b) {
    a += b;
    return a;
  }
  friend bool operator==(const CacheStats&, const CacheStats&) = default;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// One cached preparation: exactly one handle is set, per the key's kind.
struct CachedOperand {
  core::SparseOperandHandle sparse;
  core::DenseOperandHandle dense;
  core::SpmmPlanHandle spmm_plan;
  core::SddmmPlanHandle sddmm_plan;
  std::size_t bytes = 0;
  /// Strided-sample hash of the source value matrix. Keys identify contents
  /// by proxy (pattern fingerprint / client id); the probe catches the
  /// contract violation of re-serving changed values under an unchanged key
  /// without paying an O(M·K) hash per request. Plans are value-free; their
  /// probe is the key content itself.
  std::uint64_t content_probe = 0;

  explicit operator bool() const {
    return static_cast<bool>(sparse) || static_cast<bool>(dense) ||
           static_cast<bool>(spmm_plan) || static_cast<bool>(sddmm_plan);
  }
};

/// The strided content sample used by the staleness guard (≤ 64 values).
std::uint64_t content_probe(const Matrix<std::int32_t>& values);

/// Cache identity derived from a content probe, for operands whose identity
/// IS their contents (quantized attention activations, graph-request
/// operands). A tagged *bijection* on 64 bits: distinct probes always map
/// to distinct identities — no value is special-cased, so two distinct
/// operands can never be remapped onto one id (the defect the old
/// "probe 0 → 1" coercion had), and a genuine zero probe is an ordinary
/// identity rather than the get_or_prepare_dense anonymous-bypass
/// sentinel. The tag scrambles probe-derived ids away from small
/// client-assigned ids (collision with those only by 64-bit accident,
/// never structurally).
std::uint64_t probe_identity(std::uint64_t probe);

/// Thread-safe LRU cache of prepared operands, bounded by byte footprint.
/// Preparation runs outside the lock; when two threads race to prepare the
/// same key, the first insert wins and the loser adopts it (counted as
/// race_discards).
class OperandCache {
 public:
  /// An entry larger than the whole capacity is returned uncached.
  explicit OperandCache(std::size_t capacity_bytes = 256ull << 20);

  /// Looks up a key, refreshing recency. Returns an empty CachedOperand on
  /// miss. Counts one lookup and one hit or miss.
  CachedOperand find(const OperandKey& key);

  /// Inserts a prepared operand (bytes must be set) and returns the entry
  /// now cached under the key — the argument, or the incumbent if another
  /// thread inserted first. Evicts LRU entries to fit.
  CachedOperand insert(const OperandKey& key, CachedOperand value);

  /// Memoized prepare_spmm_lhs: find, else prepare and insert.
  /// `content_id` = 0 uses pattern.fingerprint() as identity. `was_hit`
  /// (optional) reports whether this call was served from cache. Throws
  /// Error when a hit's content probe disagrees with `values` — the caller
  /// changed operand contents without changing the cache identity.
  core::SparseOperandHandle get_or_prepare_spmm_lhs(
      const sparse::BlockPattern& pattern,
      const Matrix<std::int32_t>& values, PrecisionPair precision,
      bool shuffle, std::uint64_t content_id = 0, bool* was_hit = nullptr);

  /// shared_ptr overload for the serving hot path: the pattern fingerprint
  /// is memoized per live pattern object (keyed by address, validated by
  /// weak_ptr), so repeated requests over resident patterns skip the
  /// O(nnz) rehash.
  core::SparseOperandHandle get_or_prepare_spmm_lhs(
      const std::shared_ptr<const sparse::BlockPattern>& pattern,
      const Matrix<std::int32_t>& values, PrecisionPair precision,
      bool shuffle, std::uint64_t content_id = 0, bool* was_hit = nullptr);

  /// Memoized dense prepare for the given slot. `content_id` = 0 bypasses
  /// the cache entirely (anonymous activations) and is not counted.
  core::DenseOperandHandle get_or_prepare_dense(
      OperandKind kind, const Matrix<std::int32_t>& values,
      PrecisionPair precision, std::uint64_t content_id,
      bool* was_hit = nullptr);

  /// Probe-keyed dense prepare: samples the contents (content_probe) and
  /// keys the entry on probe_identity(probe), so the operand's identity is
  /// its values. Changed values produce a new probe and therefore a clean
  /// miss — the staleness guard can never fire spuriously here — and a
  /// genuine zero probe is an ordinary identity, not the anonymous-bypass
  /// sentinel. This is the identity rule the attention/graph paths use for
  /// quantized activations.
  core::DenseOperandHandle get_or_prepare_probed(
      OperandKind kind, const Matrix<std::int32_t>& values,
      PrecisionPair precision, bool* was_hit = nullptr);

  /// Explicit-probe seam of the probe-keyed prepare (tests force edge
  /// probes — e.g. 0 — without searching for a matrix that hashes there).
  /// `probe` must describe `values` for the staleness guard to hold across
  /// calls; production code uses the sampling overload above.
  core::DenseOperandHandle get_or_prepare_probed(
      OperandKind kind, const Matrix<std::int32_t>& values,
      PrecisionPair precision, std::uint64_t probe, bool* was_hit);

  /// Probe-keyed SpMM LHS prepare: same identity rule over the sparse
  /// weight slot (pattern fixed, values sampled). Used by the fused
  /// attention graph for the per-call attention-weight operand.
  core::SparseOperandHandle get_or_prepare_spmm_lhs_probed(
      const std::shared_ptr<const sparse::BlockPattern>& pattern,
      const Matrix<std::int32_t>& values, PrecisionPair precision,
      bool shuffle, bool* was_hit = nullptr);

  /// Memoized execution-plan build for core::spmm. Plans depend only on the
  /// *structure*, so identity is the pattern (never a weight-version id):
  /// `pattern_content` = 0 uses pattern.fingerprint() via the same per-live-
  /// pattern memo as the operand path. `lhs` provides the prepared structure
  /// a miss builds from. Plan bytes are charged to the LRU budget.
  core::SpmmPlanHandle get_or_build_spmm_plan(
      const std::shared_ptr<const sparse::BlockPattern>& pattern,
      const core::SparseOperandHandle& lhs, std::size_t n_cols,
      const core::SpmmConfig& cfg, std::uint64_t pattern_content = 0,
      bool* was_hit = nullptr);

  /// Pattern-only variant: a miss builds the plan from the sparsity
  /// structure alone (core::build_spmm_plan's pattern overload) — no
  /// prepared operand required, so layers can plan before any weights
  /// exist. Same keys as the operand-backed variant; the two interoperate.
  core::SpmmPlanHandle get_or_build_spmm_plan(
      const std::shared_ptr<const sparse::BlockPattern>& pattern,
      std::size_t n_cols, const core::SpmmConfig& cfg,
      std::uint64_t pattern_content = 0, bool* was_hit = nullptr);

  /// Memoized execution-plan build for core::sddmm (keyed by pattern
  /// fingerprint x precision x prefetch x K).
  core::SddmmPlanHandle get_or_build_sddmm_plan(
      const std::shared_ptr<const sparse::BlockPattern>& pattern,
      std::size_t k_depth, const core::SddmmConfig& cfg,
      std::uint64_t pattern_content = 0, bool* was_hit = nullptr);

  /// Pins `key`'s entry against LRU eviction until a matching unpin. Pins
  /// nest (a count, not a flag). Returns the entry's unique id (nonzero),
  /// or 0 when the key is not resident — a pin never inserts. Handles
  /// returned by get_or_* stay valid across eviction regardless (shared
  /// ownership); pinning additionally keeps the *entry* resident so a
  /// sharded request's sub-plans cannot be evicted and rebuilt mid-flight
  /// by concurrent traffic. While every entry is pinned, inserts may
  /// temporarily exceed the byte capacity (serving is never refused
  /// because of pins); counted as pin_skips.
  std::uint64_t pin(const OperandKey& key);
  /// Releases one pin taken on the entry identified by (key, entry_id).
  /// No-op when that exact entry is gone — clear() may have dropped it,
  /// and a fresh entry under the same key (possibly pinned by someone
  /// else) must not lose *its* pins to our release.
  void unpin(const OperandKey& key, std::uint64_t entry_id);
  std::size_t pinned_count() const;

  /// RAII multi-key pin over one cache, released on destruction — the
  /// request-lifetime pin the sharding layer holds while sub-plans execute.
  class PinScope {
   public:
    PinScope() = default;
    explicit PinScope(OperandCache& cache) : cache_(&cache) {}
    PinScope(PinScope&& o) noexcept
        : cache_(o.cache_), keys_(std::move(o.keys_)) {
      o.cache_ = nullptr;
      o.keys_.clear();
    }
    PinScope& operator=(PinScope&& o) noexcept {
      if (this != &o) {
        release();
        cache_ = o.cache_;
        keys_ = std::move(o.keys_);
        o.cache_ = nullptr;
        o.keys_.clear();
      }
      return *this;
    }
    ~PinScope() { release(); }

    /// Pins `key` (if resident) and remembers the exact entry for release.
    bool pin(const OperandKey& key) {
      if (cache_ == nullptr) return false;
      const std::uint64_t id = cache_->pin(key);
      if (id == 0) return false;
      keys_.emplace_back(key, id);
      return true;
    }
    void release() {
      if (cache_ != nullptr) {
        for (const auto& [key, id] : keys_) cache_->unpin(key, id);
      }
      keys_.clear();
    }
    /// Entries currently pinned through this scope (warmup reporting).
    std::size_t size() const { return keys_.size(); }

    PinScope(const PinScope&) = delete;
    PinScope& operator=(const PinScope&) = delete;

   private:
    OperandCache* cache_ = nullptr;
    std::vector<std::pair<OperandKey, std::uint64_t>> keys_;
  };

  /// The cache identity of a live shared pattern: its fingerprint, memoized
  /// per object (the same memo the get_or_* paths use). Exposed so the
  /// sharding layer can derive per-slice content ids without re-hashing.
  std::uint64_t pattern_identity(
      const std::shared_ptr<const sparse::BlockPattern>& pattern) {
    return memoized_fingerprint(pattern);
  }

  CacheStats stats() const;
  std::size_t bytes_cached() const;
  std::size_t entry_count() const;
  std::size_t capacity_bytes() const { return capacity_bytes_; }

  void clear();

 private:
  struct Entry {
    OperandKey key;
    CachedOperand value;
    std::uint64_t id = 0;  // unique per insert; pairs pins with unpins
    std::uint32_t pins = 0;
  };
  using LruList = std::list<Entry>;

  /// Drops unpinned LRU entries until `incoming` more bytes fit (or nothing
  /// evictable remains). Lock held.
  void evict_to_fit(std::size_t incoming);

  /// Memoized pattern.fingerprint() for a live shared pattern.
  std::uint64_t memoized_fingerprint(
      const std::shared_ptr<const sparse::BlockPattern>& pattern);

  const std::size_t capacity_bytes_;
  mutable std::mutex mutex_;
  std::uint64_t next_entry_id_ = 1;
  LruList lru_;  // front = most recent
  std::unordered_map<OperandKey, LruList::iterator, OperandKeyHash> index_;
  std::size_t bytes_cached_ = 0;
  CacheStats stats_;

  /// Address-keyed fingerprint memo; the weak_ptr detects address reuse
  /// after a pattern dies. Expired entries are swept when the memo grows.
  struct FingerprintMemo {
    std::weak_ptr<const sparse::BlockPattern> alive;
    std::uint64_t fingerprint = 0;
  };
  std::mutex memo_mutex_;
  std::unordered_map<const sparse::BlockPattern*, FingerprintMemo>
      fingerprint_memo_;
  std::size_t memo_sweep_at_ = 1024;  // re-armed to 2x live after a sweep
};

}  // namespace magicube::serve
