#include "serve/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "serve/graph.hpp"
#include "serve/submit_queue.hpp"
#include "simt/cost_model.hpp"
#include "simt/device_spec.hpp"

namespace magicube::serve {

Response serve_request(const Request& req, OperandCache& cache) {
  return serve_request(req, cache, cache, simt::a100());
}

Response serve_request(const Request& req, OperandCache& operands,
                       OperandCache& plans, const simt::DeviceSpec& device) {
  // A fused attention graph executes whole against an engine-owned arena;
  // the wrapper's operand slots are intentionally null.
  if (req.graph) return serve_graph_request(*req.graph, operands, plans,
                                            device);
  MAGICUBE_CHECK_MSG(req.pattern && req.lhs_values && req.rhs_values,
                     "serve request is missing pattern or operand values");
  Response resp;
  resp.op = req.op;
  if (req.op == OpKind::spmm) {
    core::SpmmConfig cfg;
    cfg.precision = req.precision;
    cfg.variant = req.variant;
    cfg.bsn = req.bsn;
    const auto lhs = operands.get_or_prepare_spmm_lhs(
        req.pattern, *req.lhs_values, req.precision,
        core::needs_shuffle(cfg), req.lhs_id, &resp.lhs_cache_hit);
    const auto rhs = operands.get_or_prepare_dense(
        OperandKind::spmm_rhs, *req.rhs_values, req.precision, req.rhs_id,
        &resp.rhs_cache_hit);
    // Plans are keyed by the pattern (structure), never the weight version:
    // distinct weights over one pattern replay one plan.
    const auto plan = plans.get_or_build_spmm_plan(
        req.pattern, lhs, req.rhs_values->cols(), cfg, /*pattern_content=*/0,
        &resp.plan_cache_hit);
    resp.spmm = core::spmm(lhs, rhs, cfg, plan);
    resp.modeled_seconds = simt::estimate_seconds(device, resp.spmm->run);
  } else {
    core::SddmmConfig cfg;
    cfg.precision = req.precision;
    cfg.prefetch = req.sddmm_prefetch;
    const auto a = operands.get_or_prepare_dense(
        OperandKind::sddmm_lhs, *req.lhs_values, req.precision, req.lhs_id,
        &resp.lhs_cache_hit);
    const auto b = operands.get_or_prepare_dense(
        OperandKind::sddmm_rhs, *req.rhs_values, req.precision, req.rhs_id,
        &resp.rhs_cache_hit);
    const auto plan = plans.get_or_build_sddmm_plan(
        req.pattern, req.lhs_values->cols(), cfg, /*pattern_content=*/0,
        &resp.plan_cache_hit);
    resp.sddmm = core::sddmm(a, b, *req.pattern, cfg, plan);
    resp.modeled_seconds = simt::estimate_seconds(device, resp.sddmm->run);
  }
  return resp;
}

namespace {

/// Requests sharing this key run the same kernel configuration and may be
/// dispatched as one batch.
using GroupKey = std::tuple<OpKind, Scalar, Scalar, core::SpmmVariant, int,
                            bool>;

GroupKey group_key(const Request& r) {
  return {r.op, r.precision.lhs, r.precision.rhs, r.variant, r.bsn,
          r.sddmm_prefetch};
}

std::string describe_exception(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

// The submit/backpressure/shutdown half lives in detail::SubmitQueueCore
// (shared with DevicePool); this Impl is only the dispatch half — grouping
// compatible requests into batches and fanning them over the ThreadPool.
struct BatchScheduler::Impl {
  BatchScheduler* owner = nullptr;
  detail::SubmitQueueCore core;

  std::mutex mutex;  // guards stats and batch ids (never nested with core's)
  SchedulerStats stats;
  std::uint64_t next_batch_id = 1;
  TraceLog traces;
  OperandCache::PinScope warmup_pins;  // hot layers pinned by warmup()

  explicit Impl(const BatchSchedulerConfig& cfg)
      : traces("batch_scheduler", cfg.trace_capacity) {}

  void dispatch(std::deque<detail::PendingRequest> taken) {
    // Group compatible requests, preserving arrival order within a group.
    std::map<GroupKey, std::vector<detail::PendingRequest>> groups;
    while (!taken.empty()) {
      detail::PendingRequest p = std::move(taken.front());
      taken.pop_front();
      groups[group_key(p.req)].push_back(std::move(p));
    }
    const double budget = owner->cfg_.batch_budget_seconds;
    for (auto& [key, members] : groups) {
      (void)key;
      std::size_t base = 0;
      while (base < members.size()) {
        std::size_t size =
            std::min(owner->cfg_.max_batch, members.size() - base);
        if (budget > 0.0) {
          // Modeled-work batch sizing: grow the batch while its aggregate
          // modeled seconds (the cached plan's cost when resident, the
          // analytic estimate otherwise) stays within the budget. The
          // first member is always admitted so an oversized single
          // request dispatches alone instead of starving.
          double spent = 0.0;
          std::size_t fit = 0;
          while (fit < size) {
            double est = 0.0;
            try {
              est = simt::estimate_seconds(
                  simt::a100(),
                  price_request(members[base + fit].req, owner->cache_));
            } catch (...) {
              // A malformed request prices as free; run_one surfaces the
              // real failure on its own promise.
            }
            if (fit > 0 && spent + est > budget) break;
            spent += est;
            fit += 1;
          }
          size = fit;
        }
        std::uint64_t batch_id;
        {
          std::lock_guard<std::mutex> lock(mutex);
          batch_id = next_batch_id++;
          stats.batches += 1;
          stats.batched_requests += size;
          if (size > stats.max_batch_size) stats.max_batch_size = size;
        }
        for (std::size_t i = 0; i < size; ++i) {
          auto item = std::make_shared<detail::PendingRequest>(
              std::move(members[base + i]));
          // post, not submit: run_one routes failures into the response
          // promise itself, so a pool-side future would be dead weight.
          ThreadPool::instance().post(
              [this, item, batch_id, size] { run_one(*item, batch_id, size); });
        }
        base += size;
      }
    }
  }

  void run_one(detail::PendingRequest& item, std::uint64_t batch_id,
               std::size_t size) {
    if (item.trace) {
      item.trace->op = item.req.graph ? "graph" : to_string(item.req.op);
      item.trace->precision = to_string(item.req.precision);
    }
    bool failed = false;
    try {
      Response resp = serve_request(item.req, owner->cache_);
      resp.batch_id = batch_id;
      resp.batch_size = size;
      if (item.trace) {
        // The scheduler has no modeled device clock, so the request's
        // timeline is just its own replay starting at admission.
        item.trace->add_span(TraceSpan("queue", 0.0, 0.0));
        item.trace->add_span(
            TraceSpan("place", 0.0, 0.0)
                .attr("batch_id", std::to_string(batch_id))
                .attr("batch_size", std::to_string(size)));
        item.trace->add_span(
            TraceSpan("replay", 0.0, resp.modeled_seconds)
                .attr("plan_cache_hit",
                      resp.plan_cache_hit ? "true" : "false")
                .attr("lhs_cache_hit", resp.lhs_cache_hit ? "true" : "false")
                .attr("rhs_cache_hit",
                      resp.rhs_cache_hit ? "true" : "false"));
        if (resp.graph) {
          // One span per DAG stage under the same request trace; stages
          // are laid out back to back on the request's own timeline.
          double at = 0.0;
          for (const GraphStage& st : resp.graph->stages) {
            item.trace->add_span(
                TraceSpan("stage_" + st.name, at, at + st.modeled_seconds)
                    .attr("plan_cache_hit",
                          st.plan_cache_hit ? "true" : "false")
                    .attr("lhs_cache_hit",
                          st.lhs_cache_hit ? "true" : "false")
                    .attr("rhs_cache_hit",
                          st.rhs_cache_hit ? "true" : "false"));
            at += st.modeled_seconds;
          }
        }
        item.trace->ok = true;
        resp.trace = item.trace;
        traces.add(item.trace);
      }
      item.promise.set_value(std::move(resp));
    } catch (...) {
      failed = true;
      if (item.trace) {
        item.trace->ok = false;
        item.trace->error = describe_exception(std::current_exception());
        traces.add(item.trace);
      }
      item.promise.set_exception(std::current_exception());
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.completed += 1;
      if (failed) stats.failed += 1;
    }
    core.complete();
  }
};

BatchScheduler::BatchScheduler(BatchSchedulerConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_capacity_bytes), impl_(new Impl(cfg)) {
  MAGICUBE_CHECK(cfg_.max_batch > 0);
  MAGICUBE_CHECK_MSG(cfg_.batch_budget_seconds >= 0.0,
                     "batch_budget_seconds must be non-negative");
  impl_->owner = this;
  impl_->warmup_pins = OperandCache::PinScope(cache_);
  detail::SubmitQueueCore::Tuning tuning;
  tuning.label = "BatchScheduler";
  tuning.engine_id = "batch_scheduler";
  tuning.linger = cfg_.linger;
  tuning.max_queue_depth = cfg_.max_queue_depth;
  tuning.batch_fill = cfg_.max_batch;
  tuning.collect_traces = cfg_.collect_traces;
  impl_->core.start(tuning, [impl = impl_.get()](
                                std::deque<detail::PendingRequest> taken) {
    impl->dispatch(std::move(taken));
  });
}

BatchScheduler::~BatchScheduler() { impl_->core.shutdown(); }

std::future<Response> BatchScheduler::submit(Request req) {
  return impl_->core.submit(std::move(req));
}

void BatchScheduler::drain() { impl_->core.drain(); }

void BatchScheduler::shutdown() { impl_->core.shutdown(); }

WarmupReport BatchScheduler::warmup(const WarmupManifest& manifest) {
  return warmup_plans(cache_, manifest, &impl_->warmup_pins);
}

const TraceLog& BatchScheduler::traces() const { return impl_->traces; }

SchedulerStats BatchScheduler::stats() const {
  SchedulerStats out;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    out = impl_->stats;
  }
  out.submitted = impl_->core.submitted();
  return out;
}

}  // namespace magicube::serve
