#include "serve/scheduler.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "simt/cost_model.hpp"
#include "simt/device_spec.hpp"

namespace magicube::serve {

Response serve_request(const Request& req, OperandCache& cache) {
  return serve_request(req, cache, cache, simt::a100());
}

Response serve_request(const Request& req, OperandCache& operands,
                       OperandCache& plans, const simt::DeviceSpec& device) {
  MAGICUBE_CHECK_MSG(req.pattern && req.lhs_values && req.rhs_values,
                     "serve request is missing pattern or operand values");
  Response resp;
  resp.op = req.op;
  if (req.op == OpKind::spmm) {
    core::SpmmConfig cfg;
    cfg.precision = req.precision;
    cfg.variant = req.variant;
    cfg.bsn = req.bsn;
    const auto lhs = operands.get_or_prepare_spmm_lhs(
        req.pattern, *req.lhs_values, req.precision,
        core::needs_shuffle(cfg), req.lhs_id, &resp.lhs_cache_hit);
    const auto rhs = operands.get_or_prepare_dense(
        OperandKind::spmm_rhs, *req.rhs_values, req.precision, req.rhs_id,
        &resp.rhs_cache_hit);
    // Plans are keyed by the pattern (structure), never the weight version:
    // distinct weights over one pattern replay one plan.
    const auto plan = plans.get_or_build_spmm_plan(
        req.pattern, lhs, req.rhs_values->cols(), cfg, /*pattern_content=*/0,
        &resp.plan_cache_hit);
    resp.spmm = core::spmm(lhs, rhs, cfg, plan);
    resp.modeled_seconds = simt::estimate_seconds(device, resp.spmm->run);
  } else {
    core::SddmmConfig cfg;
    cfg.precision = req.precision;
    cfg.prefetch = req.sddmm_prefetch;
    const auto a = operands.get_or_prepare_dense(
        OperandKind::sddmm_lhs, *req.lhs_values, req.precision, req.lhs_id,
        &resp.lhs_cache_hit);
    const auto b = operands.get_or_prepare_dense(
        OperandKind::sddmm_rhs, *req.rhs_values, req.precision, req.rhs_id,
        &resp.rhs_cache_hit);
    const auto plan = plans.get_or_build_sddmm_plan(
        req.pattern, req.lhs_values->cols(), cfg, /*pattern_content=*/0,
        &resp.plan_cache_hit);
    resp.sddmm = core::sddmm(a, b, *req.pattern, cfg, plan);
    resp.modeled_seconds = simt::estimate_seconds(device, resp.sddmm->run);
  }
  return resp;
}

namespace {

/// Requests sharing this key run the same kernel configuration and may be
/// dispatched as one batch.
using GroupKey = std::tuple<OpKind, Scalar, Scalar, core::SpmmVariant, int,
                            bool>;

GroupKey group_key(const Request& r) {
  return {r.op, r.precision.lhs, r.precision.rhs, r.variant, r.bsn,
          r.sddmm_prefetch};
}

struct Pending {
  Request req;
  std::promise<Response> promise;
};

}  // namespace

struct BatchScheduler::Impl {
  BatchScheduler* owner = nullptr;

  std::mutex mutex;
  std::condition_variable queue_changed;  // scheduler wakes on submits/stop
  std::condition_variable queue_space;    // bounded submitters wake on drain
  std::condition_variable idle;           // drain()/dtor wake on completion
  std::deque<Pending> queue;
  bool stopping = false;
  SchedulerStats stats;
  std::uint64_t next_batch_id = 1;
  std::uint64_t outstanding = 0;  // submitted, promise not yet fulfilled
  std::uint64_t blocked_submitters = 0;  // inside the backpressure wait
  std::thread thread;

  void loop() {
    for (;;) {
      std::deque<Pending> taken;
      {
        std::unique_lock<std::mutex> lock(mutex);
        queue_changed.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping && drained
        if (!stopping && owner->cfg_.linger.count() > 0 &&
            queue.size() < owner->cfg_.max_batch) {
          // Linger: give a burst the chance to fill one batch. A full
          // bounded queue cuts the linger short — submitters are blocked
          // on space, so waiting longer cannot grow the batch.
          const std::size_t depth = owner->cfg_.max_queue_depth;
          queue_changed.wait_for(lock, owner->cfg_.linger, [&] {
            return stopping || queue.size() >= owner->cfg_.max_batch ||
                   (depth > 0 && queue.size() >= depth);
          });
        }
        taken.swap(queue);
        // The queue is empty again: wake submitters blocked on depth.
        queue_space.notify_all();
      }
      dispatch(std::move(taken));
    }
  }

  void dispatch(std::deque<Pending> taken) {
    // Group compatible requests, preserving arrival order within a group.
    std::map<GroupKey, std::vector<Pending>> groups;
    while (!taken.empty()) {
      Pending p = std::move(taken.front());
      taken.pop_front();
      groups[group_key(p.req)].push_back(std::move(p));
    }
    for (auto& [key, members] : groups) {
      (void)key;
      for (std::size_t base = 0; base < members.size();
           base += owner->cfg_.max_batch) {
        const std::size_t size =
            std::min(owner->cfg_.max_batch, members.size() - base);
        std::uint64_t batch_id;
        {
          std::lock_guard<std::mutex> lock(mutex);
          batch_id = next_batch_id++;
          stats.batches += 1;
          stats.batched_requests += size;
          if (size > stats.max_batch_size) stats.max_batch_size = size;
        }
        for (std::size_t i = 0; i < size; ++i) {
          auto item = std::make_shared<Pending>(std::move(members[base + i]));
          // post, not submit: run_one routes failures into the response
          // promise itself, so a pool-side future would be dead weight.
          ThreadPool::instance().post(
              [this, item, batch_id, size] { run_one(*item, batch_id, size); });
        }
      }
    }
  }

  void run_one(Pending& item, std::uint64_t batch_id, std::size_t size) {
    bool failed = false;
    try {
      Response resp = serve_request(item.req, owner->cache_);
      resp.batch_id = batch_id;
      resp.batch_size = size;
      item.promise.set_value(std::move(resp));
    } catch (...) {
      failed = true;
      item.promise.set_exception(std::current_exception());
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      stats.completed += 1;
      if (failed) stats.failed += 1;
      outstanding -= 1;
      // Notify under the lock: a drain()/destructor waiter may destroy this
      // condition variable as soon as it observes outstanding == 0.
      idle.notify_all();
    }
  }
};

BatchScheduler::BatchScheduler(BatchSchedulerConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_capacity_bytes), impl_(new Impl) {
  MAGICUBE_CHECK(cfg_.max_batch > 0);
  impl_->owner = this;
  impl_->thread = std::thread([impl = impl_.get()] { impl->loop(); });
}

BatchScheduler::~BatchScheduler() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->queue_changed.notify_all();
  impl_->queue_space.notify_all();  // blocked submitters must observe stop
  impl_->thread.join();  // loop exits only once the queue is drained
  // Wait for dispatched requests still executing on the pool (their tasks
  // reference this object's cache and stats) and for backpressure-blocked
  // submitters to exit the queue_space wait (they are about to throw; the
  // mutex/condvar must outlive their unwinding).
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->idle.wait(lock, [&] {
    return impl_->outstanding == 0 && impl_->blocked_submitters == 0;
  });
}

std::future<Response> BatchScheduler::submit(Request req) {
  Pending p;
  p.req = std::move(req);
  std::future<Response> out = p.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    MAGICUBE_CHECK_MSG(!impl_->stopping,
                       "submit on a stopping BatchScheduler");
    if (cfg_.max_queue_depth > 0) {
      // Backpressure: block until the scheduler collects the queue (it
      // always takes the whole queue, so space frees in bulk) or shutdown
      // begins. The wait never deadlocks: the scheduler thread consumes
      // the queue without ever calling submit(). The blocked count lets
      // the destructor wait for woken submitters to leave the wait before
      // it destroys the mutex/condvar (notify under the lock, same
      // discipline as run_one's idle notification).
      impl_->blocked_submitters += 1;
      impl_->queue_space.wait(lock, [&] {
        return impl_->stopping ||
               impl_->queue.size() < cfg_.max_queue_depth;
      });
      impl_->blocked_submitters -= 1;
      if (impl_->blocked_submitters == 0) impl_->idle.notify_all();
      MAGICUBE_CHECK_MSG(!impl_->stopping,
                         "submit on a stopping BatchScheduler");
    }
    impl_->queue.push_back(std::move(p));
    impl_->stats.submitted += 1;
    impl_->outstanding += 1;
  }
  impl_->queue_changed.notify_all();
  return out;
}

void BatchScheduler::drain() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->idle.wait(lock, [&] { return impl_->outstanding == 0; });
}

SchedulerStats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace magicube::serve
