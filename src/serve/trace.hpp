#pragma once
// Structured per-request tracing for the serving engines.
//
// Every request served through BatchScheduler or DevicePool carries a
// RequestTrace: a flat list of named spans over the request's *modeled*
// timeline (t = 0 is the placement round that admitted the request;
// timestamps are cost-model seconds, the same clock the placement and the
// scaling bench reason about — never wall time, so traces are deterministic
// given a deterministic schedule). The span vocabulary follows the request's
// life: queue → price → place → [shard] → replay (per attempt / per slice)
// → [retry] → merge, plus the SLA layer's terminal/bridging spans: `shed`
// (the request was rejected because its modeled completion exceeded its
// deadline — carries deadline_seconds/modeled_completion_seconds attrs) and
// `replace` (queued work re-priced onto a surviving device after
// drain_device removed its target — bridges the old placement start to the
// new one, from_device attr). The self-healing layer adds three more kinds:
// `hedge` (action="place" covers the duplicate copy's queue window on the
// alternative device; action="cancel" marks the copy that lost the modeled
// race and rolled off the clock), `probe` (a low-risk execution offered to
// a quarantined device, zero-width at its placement start), and
// `quarantine` (action="enter"|"reinstate" — the circuit breaker opening on
// a health-score trip and closing after consecutive probe successes).
// Spans carry the device id and key/value attributes
// (cache hit flags, estimates, fault markers), enough to reconstruct from a
// CI artifact alone why a soak run placed, sharded, retried or failed a
// request — the observability half of ROADMAP item 5.
//
// Invariants the schema tests assert (tests/test_trace.cpp):
//   - spans sorted by begin nest within [0, total_modeled_seconds],
//   - their union covers that interval exactly (no modeled gap is silent:
//     waiting in a device backlog is a `queue` span, a retry's re-placement
//     gap is a `retry` span),
//   - a `retry` span appears exactly once per requeue, and every failed
//     attempt's `replay` span carries ok="false".
//
// Completed traces are immutable; the engines additionally keep a bounded
// TraceLog ring whose write_json() emits one JSON document next to the
// BENCH_*.json artifacts (same spirit as hb-pytorch's line_trace tooling).

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace magicube::serve {

/// One named interval on a request's modeled timeline. Attributes are
/// ordered string pairs so the JSON form is deterministic.
struct TraceSpan {
  std::string name;  // queue|price|place|shard|replay|merge|retry|shed|
                     // replace|hedge|probe|quarantine
  double begin_seconds = 0.0; // modeled, relative to the request's admission
  double end_seconds = 0.0;
  int device = -1;            // -1: not tied to one device
  std::vector<std::pair<std::string, std::string>> attrs;

  TraceSpan() = default;
  TraceSpan(std::string n, double b, double e, int dev = -1)
      : name(std::move(n)), begin_seconds(b), end_seconds(e), device(dev) {}

  TraceSpan& attr(std::string key, std::string value) {
    attrs.emplace_back(std::move(key), std::move(value));
    return *this;
  }
};

/// The full trace of one request. Engines append spans while the request is
/// in flight (slices of a sharded request append concurrently — add_span
/// synchronizes); once the response promise is fulfilled the trace is
/// quiescent and read freely through Response::trace or TraceLog.
struct RequestTrace {
  std::uint64_t request_id = 0;  // per-engine admission sequence number
  std::string engine;            // "batch_scheduler" | "device_pool"
  std::string op;                // "spmm" | "sddmm"
  std::string precision;         // e.g. "L8R8"
  bool ok = false;
  std::string error;             // what() of the surfaced failure
  int device = -1;               // final device (-1: spanned several)
  std::size_t shards = 1;
  /// Requeues / FaultPlan hits on this request; atomic because a sharded
  /// request's slices retry concurrently.
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> faults_injected{0};
  double total_modeled_seconds = 0.0; // max span end
  std::vector<TraceSpan> spans;

  void add_span(TraceSpan span) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (span.end_seconds > total_modeled_seconds) {
      total_modeled_seconds = span.end_seconds;
    }
    spans.push_back(std::move(span));
  }

 private:
  std::mutex mutex_;  // guards concurrent appends from slice tasks
};

/// JSON encodings (hand-rolled writer — the engine has no JSON dependency).
/// Numbers use shortest round-trip-ish %.9g; strings are escaped per RFC
/// 8259. The trace must be quiescent (request completed).
std::string to_json(const TraceSpan& span);
std::string to_json(const RequestTrace& trace);

/// Bounded ring of completed traces (oldest dropped beyond capacity), one
/// per engine. Thread-safe; write_json() emits
///   {"schema": "magicube.trace.v1", "engine": ..., "dropped": N,
///    "traces": [...]}
class TraceLog {
 public:
  explicit TraceLog(std::string engine, std::size_t capacity = 4096);

  void add(std::shared_ptr<const RequestTrace> trace);
  std::vector<std::shared_ptr<const RequestTrace>> snapshot() const;
  std::size_t size() const;
  /// Traces dropped to honour the capacity bound.
  std::size_t dropped() const;

  std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure (the serving
  /// path never throws over observability).
  bool write_json(const std::string& path) const;

 private:
  const std::string engine_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<std::shared_ptr<const RequestTrace>> traces_;
  std::size_t dropped_ = 0;
};

}  // namespace magicube::serve
