#include "serve/sla.hpp"

#include "serve/graph.hpp"

namespace magicube::serve {

void HealingConfig::validate() const {
  MAGICUBE_CHECK_MSG(health_alpha > 0.0 && health_alpha <= 1.0,
                     "HealingConfig::health_alpha must lie in (0, 1]");
  MAGICUBE_CHECK_MSG(quarantine_below >= 0.0 && quarantine_below <= 1.0,
                     "HealingConfig::quarantine_below must lie in [0, 1]");
  MAGICUBE_CHECK_MSG(
      hedge_deadline_fraction >= 0.0 && hedge_deadline_fraction <= 1.0,
      "HealingConfig::hedge_deadline_fraction must lie in [0, 1]");
  MAGICUBE_CHECK_MSG(probe_interval > 0,
                     "HealingConfig::probe_interval must be positive");
  MAGICUBE_CHECK_MSG(reinstate_after > 0,
                     "HealingConfig::reinstate_after must be positive");
}

simt::KernelRun price_request(const Request& req, OperandCache& plans) {
  // A fused graph prices as one merged run over all its stages; the
  // wrapper's operand slots are intentionally null.
  if (req.graph) return price_graph_request(*req.graph, plans);
  MAGICUBE_CHECK_MSG(req.pattern && req.lhs_values && req.rhs_values,
                     "serve request is missing pattern or operand values");
  const std::uint64_t pattern_fp = plans.pattern_identity(req.pattern);
  if (req.op == OpKind::spmm) {
    core::SpmmConfig cfg;
    cfg.precision = req.precision;
    cfg.variant = req.variant;
    cfg.bsn = req.bsn;
    const CachedOperand hit =
        plans.find(spmm_plan_key(pattern_fp, req.rhs_values->cols(), cfg));
    return hit ? hit.spmm_plan->run
               : core::spmm_estimate(*req.pattern, req.rhs_values->cols(),
                                     cfg);
  }
  core::SddmmConfig cfg;
  cfg.precision = req.precision;
  cfg.prefetch = req.sddmm_prefetch;
  const CachedOperand hit =
      plans.find(sddmm_plan_key(pattern_fp, req.lhs_values->cols(), cfg));
  return hit ? hit.sddmm_plan->run
             : core::sddmm_estimate(*req.pattern, req.lhs_values->cols(),
                                    cfg);
}

WarmupReport warmup_plans(OperandCache& plans, const WarmupManifest& manifest,
                          OperandCache::PinScope* pins) {
  WarmupReport report;
  for (const WarmupEntry& e : manifest.entries) {
    MAGICUBE_CHECK_MSG(e.pattern != nullptr,
                       "warmup manifest entry is missing its pattern");
    MAGICUBE_CHECK_MSG(e.cols > 0,
                       "warmup manifest entry needs a nonzero cols "
                       "(SpMM RHS width N / SDDMM reduction depth K)");
    const std::uint64_t fp = plans.pattern_identity(e.pattern);
    bool hit = false;
    OperandKey key;
    if (e.op == OpKind::spmm) {
      core::SpmmConfig cfg;
      cfg.precision = e.precision;
      cfg.variant = e.variant;
      cfg.bsn = e.bsn;
      plans.get_or_build_spmm_plan(e.pattern, e.cols, cfg, fp, &hit);
      key = spmm_plan_key(fp, e.cols, cfg);
    } else {
      core::SddmmConfig cfg;
      cfg.precision = e.precision;
      cfg.prefetch = e.sddmm_prefetch;
      plans.get_or_build_sddmm_plan(e.pattern, e.cols, cfg, fp, &hit);
      key = sddmm_plan_key(fp, e.cols, cfg);
    }
    if (hit) {
      report.plans_resident += 1;
    } else {
      report.plans_built += 1;
    }
    if (e.pin && pins != nullptr) {
      // A pin can race a concurrent eviction in the build→pin window;
      // rebuild and retry (same discipline as the sharding layer's
      // sub-plan pins).
      bool pinned = pins->pin(key);
      for (int att = 0; !pinned && att < 3; ++att) {
        if (e.op == OpKind::spmm) {
          core::SpmmConfig cfg;
          cfg.precision = e.precision;
          cfg.variant = e.variant;
          cfg.bsn = e.bsn;
          plans.get_or_build_spmm_plan(e.pattern, e.cols, cfg, fp);
        } else {
          core::SddmmConfig cfg;
          cfg.precision = e.precision;
          cfg.prefetch = e.sddmm_prefetch;
          plans.get_or_build_sddmm_plan(e.pattern, e.cols, cfg, fp);
        }
        pinned = pins->pin(key);
      }
      if (pinned) report.pinned += 1;
    }
  }
  return report;
}

}  // namespace magicube::serve
