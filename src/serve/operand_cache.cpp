#include "serve/operand_cache.hpp"

#include <algorithm>
#include <iterator>
#include <memory>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace magicube::serve {

std::uint64_t content_probe(const Matrix<std::int32_t>& values) {
  // FNV-1a over shape and at most 64 sampled elements. Sample indices are
  // golden-ratio scrambled, not evenly strided: a fixed stride aliases with
  // the row length on power-of-two shapes and would only ever sample one
  // column, blinding the staleness guard to changes everywhere else.
  Fnv1a h;
  h.mix(values.rows());
  h.mix(values.cols());
  const std::size_t n = values.size();
  if (n <= 64) {
    for (std::size_t i = 0; i < n; ++i) {
      h.mix(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(values.data()[i])));
    }
    return h.state;
  }
  for (std::uint64_t k = 0; k < 64; ++k) {
    const std::size_t i = static_cast<std::size_t>((k * kGolden64) % n);
    h.mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(values.data()[i])));
  }
  return h.state;
}

std::uint64_t probe_identity(std::uint64_t probe) {
  // splitmix64 is a bijection on 64 bits, so distinct probes keep distinct
  // identities for every input — including 0, which must stay a legitimate
  // identity here (it is only get_or_prepare_dense's bypass sentinel).
  std::uint64_t state = probe ^ kGolden64;
  return splitmix64(state);
}

OperandCache::OperandCache(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

CachedOperand OperandCache::find(const OperandKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.lookups += 1;
  auto it = index_.find(key);
  if (it == index_.end()) {
    stats_.misses += 1;
    return {};
  }
  stats_.hits += 1;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->value;
}

CachedOperand OperandCache::insert(const OperandKey& key,
                                   CachedOperand value) {
  MAGICUBE_CHECK_MSG(static_cast<bool>(value) && value.bytes > 0,
                     "cache insert requires a prepared operand with bytes");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Another thread prepared the same key first; adopt its entry — but
    // only if it was prepared from the same contents, so the staleness
    // guard holds under concurrent misses too.
    MAGICUBE_CHECK_MSG(
        it->second->value.content_probe == value.content_probe,
        "operand cache insert race for key content "
            << key.content
            << " with differing contents — ids must name immutable values");
    stats_.race_discards += 1;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }
  if (value.bytes > capacity_bytes_) {
    // Would evict everything and still not fit: serve it uncached.
    return value;
  }
  evict_to_fit(value.bytes);
  lru_.push_front(Entry{key, std::move(value), next_entry_id_++, 0});
  index_.emplace(key, lru_.begin());
  bytes_cached_ += lru_.front().value.bytes;
  stats_.insertions += 1;
  stats_.bytes_inserted += lru_.front().value.bytes;
  return lru_.front().value;
}

void OperandCache::evict_to_fit(std::size_t incoming) {
  // Scan LRU-first, skipping pinned entries (a sharded request is executing
  // from them). When only pinned entries remain, the insert proceeds over
  // capacity — the overshoot drains as soon as the pins release.
  auto it = lru_.end();
  while (bytes_cached_ + incoming > capacity_bytes_ && it != lru_.begin()) {
    auto victim = std::prev(it);
    if (victim->pins > 0) {
      stats_.pin_skips += 1;
      it = victim;
      continue;
    }
    bytes_cached_ -= victim->value.bytes;
    stats_.evictions += 1;
    stats_.bytes_evicted += victim->value.bytes;
    index_.erase(victim->key);
    lru_.erase(victim);  // `it` stays valid (list erase is local)
  }
}

std::uint64_t OperandCache::pin(const OperandKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) return 0;
  it->second->pins += 1;
  return it->second->id;
}

void OperandCache::unpin(const OperandKey& key, std::uint64_t entry_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  // Release only the entry the pin was taken on: after a clear(), the key
  // may be gone, or re-inserted fresh (a different id, possibly pinned by
  // a newer request whose pins must not be stolen). Called from ~PinScope
  // (noexcept), so never throw here.
  if (it == index_.end() || it->second->id != entry_id ||
      it->second->pins == 0) {
    return;
  }
  it->second->pins -= 1;
}

std::size_t OperandCache::pinned_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const Entry& e : lru_) n += e.pins > 0 ? 1 : 0;
  return n;
}

core::SparseOperandHandle OperandCache::get_or_prepare_spmm_lhs(
    const sparse::BlockPattern& pattern, const Matrix<std::int32_t>& values,
    PrecisionPair precision, bool shuffle, std::uint64_t content_id,
    bool* was_hit) {
  const OperandKey key = spmm_lhs_key(
      content_id != 0 ? content_id : pattern.fingerprint(), precision,
      shuffle);
  const std::uint64_t probe = content_probe(values);
  if (was_hit) *was_hit = false;
  if (CachedOperand hit = find(key)) {
    MAGICUBE_CHECK_MSG(hit.content_probe == probe,
                       "operand cache hit for key content "
                           << key.content
                           << " but the weight values changed — pass a "
                              "distinct lhs_id per weight version");
    if (was_hit) *was_hit = true;
    return hit.sparse;
  }

  CachedOperand entry;
  entry.sparse =
      core::prepare_spmm_lhs_shared(pattern, values, precision, shuffle);
  entry.bytes = entry.sparse->footprint_bytes();
  entry.content_probe = probe;
  return insert(key, std::move(entry)).sparse;
}

std::uint64_t OperandCache::memoized_fingerprint(
    const std::shared_ptr<const sparse::BlockPattern>& pattern) {
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    auto it = fingerprint_memo_.find(pattern.get());
    if (it != fingerprint_memo_.end() &&
        it->second.alive.lock() == pattern) {
      return it->second.fingerprint;
    }
  }
  const std::uint64_t fp = pattern->fingerprint();  // outside the lock
  std::lock_guard<std::mutex> lock(memo_mutex_);
  if (fingerprint_memo_.size() >= memo_sweep_at_) {
    for (auto it = fingerprint_memo_.begin();
         it != fingerprint_memo_.end();) {
      it = it->second.alive.expired() ? fingerprint_memo_.erase(it)
                                      : std::next(it);
    }
    // Re-arm at double the live population so a sweep that reclaims
    // nothing (>= threshold patterns genuinely alive) is not repeated on
    // every insert — O(1) amortized, memo bounded by 2x live patterns.
    memo_sweep_at_ = std::max<std::size_t>(1024,
                                           2 * fingerprint_memo_.size());
  }
  fingerprint_memo_[pattern.get()] = {pattern, fp};
  return fp;
}

core::SparseOperandHandle OperandCache::get_or_prepare_spmm_lhs(
    const std::shared_ptr<const sparse::BlockPattern>& pattern,
    const Matrix<std::int32_t>& values, PrecisionPair precision, bool shuffle,
    std::uint64_t content_id, bool* was_hit) {
  MAGICUBE_CHECK(pattern != nullptr);
  if (content_id == 0) content_id = memoized_fingerprint(pattern);
  return get_or_prepare_spmm_lhs(*pattern, values, precision, shuffle,
                                 content_id, was_hit);
}

core::DenseOperandHandle OperandCache::get_or_prepare_dense(
    OperandKind kind, const Matrix<std::int32_t>& values,
    PrecisionPair precision, std::uint64_t content_id, bool* was_hit) {
  MAGICUBE_CHECK(kind != OperandKind::spmm_lhs);
  const bool row_major = kind != OperandKind::sddmm_rhs;
  const Scalar type =
      kind == OperandKind::sddmm_lhs ? precision.lhs : precision.rhs;
  const int chunk = core::rhs_chunk_bits(precision);

  if (was_hit) *was_hit = false;
  if (content_id == 0) {
    // Anonymous activations: prepare fresh, leave the cache untouched.
    return core::prepare_dense_shared(values, type, row_major, chunk);
  }

  const std::uint64_t probe = content_probe(values);
  OperandKey key;
  key.kind = kind;
  key.content = content_id;
  // RHS-slot layout (type and chunk) depends on precision.rhs alone, so an
  // activation shared across L8-R8 and L16-R8 layers is one entry; only the
  // SDDMM LHS types by precision.lhs (its chunk still follows the RHS
  // datapath, carried by key.rhs).
  key.lhs = kind == OperandKind::sddmm_lhs ? precision.lhs : precision.rhs;
  key.rhs = precision.rhs;

  if (CachedOperand hit = find(key)) {
    MAGICUBE_CHECK_MSG(hit.content_probe == probe,
                       "operand cache hit for client id "
                           << content_id
                           << " but the operand values changed — ids must "
                              "name immutable contents");
    if (was_hit) *was_hit = true;
    return hit.dense;
  }

  CachedOperand entry;
  entry.dense = core::prepare_dense_shared(values, type, row_major, chunk);
  entry.bytes = entry.dense->footprint_bytes();
  entry.content_probe = probe;
  return insert(key, std::move(entry)).dense;
}

core::DenseOperandHandle OperandCache::get_or_prepare_probed(
    OperandKind kind, const Matrix<std::int32_t>& values,
    PrecisionPair precision, bool* was_hit) {
  return get_or_prepare_probed(kind, values, precision,
                               content_probe(values), was_hit);
}

core::DenseOperandHandle OperandCache::get_or_prepare_probed(
    OperandKind kind, const Matrix<std::int32_t>& values,
    PrecisionPair precision, std::uint64_t probe, bool* was_hit) {
  MAGICUBE_CHECK(kind != OperandKind::spmm_lhs);
  const bool row_major = kind != OperandKind::sddmm_rhs;
  const Scalar type =
      kind == OperandKind::sddmm_lhs ? precision.lhs : precision.rhs;
  const int chunk = core::rhs_chunk_bits(precision);

  if (was_hit) *was_hit = false;
  OperandKey key;
  key.kind = kind;
  key.content = probe_identity(probe);  // bijective: the probe IS the id
  key.lhs = kind == OperandKind::sddmm_lhs ? precision.lhs : precision.rhs;
  key.rhs = precision.rhs;

  if (CachedOperand hit = find(key)) {
    // key.content determines the probe bijectively, so this guard can only
    // fire when a key-hash accident aliased two distinct probes — kept as
    // defense in depth, unreachable by construction otherwise.
    MAGICUBE_CHECK_MSG(hit.content_probe == probe,
                       "operand cache probe-identity collision for probe "
                           << probe << " — distinct contents aliased one key");
    if (was_hit) *was_hit = true;
    return hit.dense;
  }

  CachedOperand entry;
  entry.dense = core::prepare_dense_shared(values, type, row_major, chunk);
  entry.bytes = entry.dense->footprint_bytes();
  entry.content_probe = probe;
  return insert(key, std::move(entry)).dense;
}

core::SparseOperandHandle OperandCache::get_or_prepare_spmm_lhs_probed(
    const std::shared_ptr<const sparse::BlockPattern>& pattern,
    const Matrix<std::int32_t>& values, PrecisionPair precision, bool shuffle,
    bool* was_hit) {
  MAGICUBE_CHECK(pattern != nullptr);
  const std::uint64_t probe = content_probe(values);
  const OperandKey key =
      spmm_lhs_key(probe_identity(probe), precision, shuffle);

  if (was_hit) *was_hit = false;
  if (CachedOperand hit = find(key)) {
    MAGICUBE_CHECK_MSG(hit.content_probe == probe,
                       "operand cache probe-identity collision for probe "
                           << probe << " — distinct contents aliased one key");
    if (was_hit) *was_hit = true;
    return hit.sparse;
  }

  CachedOperand entry;
  entry.sparse =
      core::prepare_spmm_lhs_shared(*pattern, values, precision, shuffle);
  entry.bytes = entry.sparse->footprint_bytes();
  entry.content_probe = probe;
  return insert(key, std::move(entry)).sparse;
}

OperandKey spmm_lhs_key(std::uint64_t content, PrecisionPair precision,
                        bool shuffled) {
  OperandKey key;
  key.kind = OperandKind::spmm_lhs;
  key.content = content;
  key.lhs = precision.lhs;
  key.rhs = precision.rhs;
  key.shuffled = shuffled;
  return key;
}

/// Plans are keyed by everything the schedule depends on: structure
/// identity, RHS width and the kernel-config knobs folded into the content
/// hash (precision rides in the key's scalar slots).
OperandKey spmm_plan_key(std::uint64_t pattern_content, std::size_t n_cols,
                         const core::SpmmConfig& cfg) {
  Fnv1a h;
  h.mix(pattern_content);
  h.mix(n_cols);
  h.mix(static_cast<std::uint64_t>(cfg.variant), 1);
  h.mix(static_cast<std::uint64_t>(cfg.bsn), 4);
  h.mix(static_cast<std::uint64_t>(cfg.warps_per_block), 4);

  OperandKey key;
  key.kind = OperandKind::spmm_plan;
  key.content = h.state;
  key.lhs = cfg.precision.lhs;
  key.rhs = cfg.precision.rhs;
  key.shuffled = core::needs_shuffle(cfg);
  return key;
}

core::SpmmPlanHandle OperandCache::get_or_build_spmm_plan(
    const std::shared_ptr<const sparse::BlockPattern>& pattern,
    const core::SparseOperandHandle& lhs, std::size_t n_cols,
    const core::SpmmConfig& cfg, std::uint64_t pattern_content,
    bool* was_hit) {
  MAGICUBE_CHECK(pattern != nullptr && lhs != nullptr);
  if (pattern_content == 0) pattern_content = memoized_fingerprint(pattern);
  const OperandKey key = spmm_plan_key(pattern_content, n_cols, cfg);

  if (was_hit) *was_hit = false;
  if (CachedOperand hit = find(key)) {
    if (was_hit) *was_hit = true;
    return hit.spmm_plan;
  }
  CachedOperand entry;
  entry.spmm_plan = core::build_spmm_plan(*lhs, n_cols, cfg);
  entry.bytes = entry.spmm_plan->footprint_bytes();
  entry.content_probe = key.content;  // plans are value-free
  return insert(key, std::move(entry)).spmm_plan;
}

core::SpmmPlanHandle OperandCache::get_or_build_spmm_plan(
    const std::shared_ptr<const sparse::BlockPattern>& pattern,
    std::size_t n_cols, const core::SpmmConfig& cfg,
    std::uint64_t pattern_content, bool* was_hit) {
  MAGICUBE_CHECK(pattern != nullptr);
  if (pattern_content == 0) pattern_content = memoized_fingerprint(pattern);
  const OperandKey key = spmm_plan_key(pattern_content, n_cols, cfg);

  if (was_hit) *was_hit = false;
  if (CachedOperand hit = find(key)) {
    if (was_hit) *was_hit = true;
    return hit.spmm_plan;
  }
  CachedOperand entry;
  entry.spmm_plan = core::build_spmm_plan(*pattern, n_cols, cfg);
  entry.bytes = entry.spmm_plan->footprint_bytes();
  entry.content_probe = key.content;  // plans are value-free
  return insert(key, std::move(entry)).spmm_plan;
}

OperandKey sddmm_plan_key(std::uint64_t pattern_content, std::size_t k_depth,
                          const core::SddmmConfig& cfg) {
  Fnv1a h;
  h.mix(pattern_content);
  h.mix(k_depth);
  h.mix(cfg.prefetch ? 1 : 0, 1);
  h.mix(static_cast<std::uint64_t>(cfg.warps_per_block), 4);

  OperandKey key;
  key.kind = OperandKind::sddmm_plan;
  key.content = h.state;
  key.lhs = cfg.precision.lhs;
  key.rhs = cfg.precision.rhs;
  return key;
}

core::SddmmPlanHandle OperandCache::get_or_build_sddmm_plan(
    const std::shared_ptr<const sparse::BlockPattern>& pattern,
    std::size_t k_depth, const core::SddmmConfig& cfg,
    std::uint64_t pattern_content, bool* was_hit) {
  MAGICUBE_CHECK(pattern != nullptr);
  if (pattern_content == 0) pattern_content = memoized_fingerprint(pattern);
  const OperandKey key = sddmm_plan_key(pattern_content, k_depth, cfg);

  if (was_hit) *was_hit = false;
  if (CachedOperand hit = find(key)) {
    if (was_hit) *was_hit = true;
    return hit.sddmm_plan;
  }
  CachedOperand entry;
  entry.sddmm_plan = core::build_sddmm_plan(*pattern, k_depth, cfg);
  entry.bytes = entry.sddmm_plan->footprint_bytes();
  entry.content_probe = key.content;
  return insert(key, std::move(entry)).sddmm_plan;
}

CacheStats OperandCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t OperandCache::bytes_cached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_cached_;
}

std::size_t OperandCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void OperandCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_cached_ = 0;
}

}  // namespace magicube::serve
