#pragma once
// Batch scheduler of the inference-serving engine.
//
// Clients submit heterogeneous requests (SpMM/SDDMM, any precision pair)
// through a submit/future API. A dedicated scheduler thread collects the
// queue, lingers briefly so bursts coalesce, groups compatible requests
// (same op, precision, kernel variant, tile width) into batches, and
// dispatches every request of a batch concurrently over the global
// ThreadPool. Operand preparation is memoized by the OperandCache; kernels
// read immutable shared operand handles, so batch members alias one
// preparation safely.
//
// Concurrency contract: the scheduler thread never runs kernels itself and
// pool tasks never wait on futures, so the ThreadPool's reentrancy guard
// (kernels' parallel_for running inline inside a request task) is the only
// nesting that occurs — deadlock-free by construction. Results are bit-exact
// with sequential core::spmm / core::sddmm calls: batching changes only when
// work runs, never what it computes.

#include <cstdint>
#include <chrono>
#include <future>
#include <memory>

#include "serve/operand_cache.hpp"
#include "serve/request.hpp"
#include "serve/sla.hpp"
#include "serve/trace.hpp"
#include "simt/device_spec.hpp"

namespace magicube::serve {

struct BatchSchedulerConfig {
  /// Largest number of requests dispatched as one batch.
  std::size_t max_batch = 8;
  /// Modeled-work batch sizing: when > 0, each batch grows only while the
  /// aggregate modeled seconds of its members (priced on the cached plan
  /// via serve/sla.hpp's price_request, on the a100 reference spec) stays
  /// within this budget — the batch boundary follows modeled marginal
  /// latency instead of the static max_batch count, so heavy requests
  /// dispatch in small batches and light ones coalesce widely. The first
  /// member of a batch is always admitted (an oversized single request
  /// dispatches alone); max_batch remains the hard count cap. 0 keeps the
  /// static count-only batching.
  double batch_budget_seconds = 0.0;
  /// How long the scheduler waits for a forming batch to fill before
  /// dispatching what it has. Zero dispatches immediately.
  std::chrono::microseconds linger{200};
  /// Operand-cache budget (prepared operands + execution plans).
  std::size_t cache_capacity_bytes = 256ull << 20;
  /// Upper bound on requests sitting in the submit queue (accepted but not
  /// yet collected by the scheduler thread). When the bound is reached,
  /// submit() blocks until the scheduler drains the queue — backpressure
  /// instead of unbounded growth under overload. 0 = unbounded.
  std::size_t max_queue_depth = 0;
  /// Attach a RequestTrace to every request (Response::trace) and keep
  /// completed traces in the engine's bounded TraceLog.
  bool collect_traces = true;
  /// TraceLog ring capacity (oldest completed traces dropped beyond it).
  std::size_t trace_capacity = 4096;
};

/// Engine-level counters, reduced with += like simt::KernelCounters.
struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // includes failed
  std::uint64_t failed = 0;     // completed exceptionally
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;  // sum of batch sizes
  std::uint64_t max_batch_size = 0;

  SchedulerStats& operator+=(const SchedulerStats& o) {
    submitted += o.submitted;
    completed += o.completed;
    failed += o.failed;
    batches += o.batches;
    batched_requests += o.batched_requests;
    if (o.max_batch_size > max_batch_size) max_batch_size = o.max_batch_size;
    return *this;
  }
  friend bool operator==(const SchedulerStats&,
                         const SchedulerStats&) = default;

  double mean_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) /
                              static_cast<double>(batches);
  }
};

class BatchScheduler {
 public:
  explicit BatchScheduler(BatchSchedulerConfig cfg = {});
  /// Drains: every submitted request completes before destruction returns.
  ~BatchScheduler();

  /// Enqueues a request; the future carries the Response (or the exception
  /// the request failed with). Blocks while the submit queue is at
  /// max_queue_depth (backpressure). Throws Error after shutdown began.
  std::future<Response> submit(Request req);

  /// Blocks until every request submitted so far has completed.
  void drain();

  /// Stops intake, drains the queue, waits out in-flight work. Idempotent
  /// (the destructor calls it); submit() throws afterwards.
  void shutdown();

  /// The engine's operand cache (shared by all requests).
  OperandCache& cache() { return cache_; }
  const OperandCache& cache() const { return cache_; }

  /// Pre-builds every manifest entry's execution plan into the engine's
  /// cache and pins the entries marked hot for the engine's lifetime —
  /// known-hot layers start with plan hits instead of paying pure-LRU cold
  /// starts, and batch_budget_seconds prices them from the cached plan
  /// from the first request on. Idempotent; see serve/sla.hpp.
  WarmupReport warmup(const WarmupManifest& manifest);

  /// Completed-request traces (bounded ring; see serve/trace.hpp).
  const TraceLog& traces() const;

  SchedulerStats stats() const;
  const BatchSchedulerConfig& config() const { return cfg_; }

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

 private:
  struct Impl;
  BatchSchedulerConfig cfg_;
  OperandCache cache_;
  std::unique_ptr<Impl> impl_;
};

/// Executes one request synchronously against `cache` (the scheduler's
/// per-request body; also the building block for cache-only serving without
/// batching). Throws on malformed requests. Costs the run on simt::a100().
Response serve_request(const Request& req, OperandCache& cache);

/// Split-cache variant used by the multi-device pool: operands are prepared
/// in `operands` (a device's own cache budget) while execution plans live
/// in `plans` (shared across devices — plans are pattern-only, so every
/// device replays one build), and modeled_seconds is priced on `device`.
/// serve_request(req, cache) == serve_request(req, cache, cache, a100()).
Response serve_request(const Request& req, OperandCache& operands,
                       OperandCache& plans, const simt::DeviceSpec& device);

}  // namespace magicube::serve
