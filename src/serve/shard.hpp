#pragma once
// Row-wise sharding of serving requests across simulated devices.
//
// An SpMM whose modeled runtime exceeds the pool's shard threshold is split
// along SR-BCRS block-row (vector-row) boundaries into contiguous row
// slices, one per device. Each slice is a complete, independent problem:
// its pattern is sparse::slice_vector_rows of the full pattern, its
// execution plan comes from core::build_spmm_plan on that slice (pattern-
// only, so sub-plans are value-free and shareable across weight versions
// exactly like full plans), and its prepared LHS covers just the slice's
// rows. Slices execute in parallel and a bit-exact row-concatenation
// epilogue reassembles the full M x N result — the kernel computes each
// vector row independently, so the merged output equals the single-device
// run bit for bit (asserted by the tests/test_device_pool.cpp property
// suite and by tests/test_plan.cpp's slice-equivalence suite).
//
// Cache identity: a slice's operand and plan entries derive from the full
// request's identity plus the slice bounds (slice_content_id), so repeated
// traffic over one giant pattern reuses its sub-plans and slice operands
// like any other resident layer. Entries are pinned (OperandCache::PinScope)
// for the lifetime of the sharded request so concurrent eviction cannot
// drop a sub-plan mid-flight.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/plan.hpp"
#include "core/spmm.hpp"
#include "serve/operand_cache.hpp"
#include "serve/request.hpp"
#include "sparse/pattern.hpp"

namespace magicube::serve {

/// One contiguous vector-row slice [vr_begin, vr_end) of a pattern.
struct RowSlice {
  std::size_t vr_begin = 0;
  std::size_t vr_end = 0;

  std::size_t vector_rows() const { return vr_end - vr_begin; }
  friend bool operator==(const RowSlice&, const RowSlice&) = default;
};

/// Splits the pattern's vector rows into at most `max_shards` contiguous,
/// non-empty slices balanced by padded slot count (the per-block-row work:
/// strides * stride, which is what the kernel actually executes, padding
/// included). Deterministic in the pattern alone, so every request over one
/// pattern produces identical slices and shares sub-plans. Always returns
/// at least one slice; returns fewer than max_shards when the pattern has
/// fewer vector rows (or all trailing work lands in earlier slices).
std::vector<RowSlice> plan_row_shards(const sparse::BlockPattern& pattern,
                                      int stride, std::size_t max_shards);

/// Derived cache identity of one row slice of a full pattern/operand id.
std::uint64_t slice_content_id(std::uint64_t full_content,
                               const RowSlice& slice);

/// Outcome of one executed slice.
struct SliceExecution {
  core::SpmmResult result;
  bool lhs_cache_hit = false;
};

/// Executes one SpMM row slice: finds (or prepares and caches) the slice's
/// LHS in `operands` under slice_content_id(full_lhs_content, slice), then
/// replays `plan` (the slice's plan, built from the slice pattern) against
/// the shared full-K RHS. The staleness probe covers the full value matrix,
/// the same guarantee the unsliced path gives. The slice's LHS entry is
/// pinned for the duration of the call.
SliceExecution execute_spmm_slice(
    const Request& req,
    const std::shared_ptr<const sparse::BlockPattern>& slice_pattern,
    const RowSlice& slice, std::uint64_t full_lhs_content,
    const core::SpmmPlanHandle& plan, const core::DenseOperandHandle& rhs,
    OperandCache& operands);

/// Bit-exact row-concatenation epilogue: parts[i] holds the output rows of
/// slices[i] (in order); the merged KernelRun accumulates every slice's
/// counters, steps and launches (geometry of the first slice kept, the
/// KernelRun::merge convention for multi-kernel schedules).
core::SpmmResult merge_row_shards(std::size_t total_rows, std::size_t n_cols,
                                  int vector_length,
                                  const std::vector<RowSlice>& slices,
                                  std::vector<core::SpmmResult> parts);

}  // namespace magicube::serve
