#pragma once
// Row-wise sharding of serving requests across simulated devices.
//
// A request whose modeled runtime exceeds the pool's shard threshold is
// split along SR-BCRS block-row (vector-row) boundaries into contiguous row
// slices, one per device. Each slice is a complete, independent problem:
// its pattern is sparse::slice_vector_rows of the full pattern, its
// execution plan comes from the pattern-only plan builders on that slice
// (sub-plans are value-free and shareable across weight versions exactly
// like full plans), and its prepared row-sliced operand covers just the
// slice's rows (SpMM: the sparse LHS weights; SDDMM: the dense A
// activation rows). Slices execute in parallel and a bit-exact
// row-concatenation epilogue reassembles the full result — both kernels
// compute each vector row independently, so the merged output equals the
// single-device run bit for bit (SpMM: the dense M x N matrix by row
// bands; SDDMM: the BCRS output by concatenating each slice's row_ptr /
// col_idx / vector-major values — the output mirrors the pattern slot for
// slot, so slicing commutes with encoding). Asserted by the
// tests/test_device_pool.cpp and tests/test_fleet.cpp property suites and
// by tests/test_plan.cpp's slice-equivalence suites for both ops.
//
// Cache identity: a slice's operand and plan entries derive from the full
// request's identity plus the slice bounds (slice_content_id), so repeated
// traffic over one giant pattern reuses its sub-plans and slice operands
// like any other resident layer. Entries are pinned (OperandCache::PinScope)
// for the lifetime of the sharded request so concurrent eviction cannot
// drop a sub-plan mid-flight.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/plan.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "serve/operand_cache.hpp"
#include "serve/request.hpp"
#include "sparse/pattern.hpp"

namespace magicube::serve {

/// One contiguous vector-row slice [vr_begin, vr_end) of a pattern.
struct RowSlice {
  std::size_t vr_begin = 0;
  std::size_t vr_end = 0;

  std::size_t vector_rows() const { return vr_end - vr_begin; }
  friend bool operator==(const RowSlice&, const RowSlice&) = default;
};

/// Splits the pattern's vector rows into at most `max_shards` contiguous,
/// non-empty slices balanced by padded slot count (the per-block-row work:
/// strides * stride, which is what the kernel actually executes, padding
/// included). Deterministic in the pattern alone, so every request over one
/// pattern produces identical slices and shares sub-plans. Always returns
/// at least one slice; returns fewer than max_shards when the pattern has
/// fewer vector rows (or all trailing work lands in earlier slices).
std::vector<RowSlice> plan_row_shards(const sparse::BlockPattern& pattern,
                                      int stride, std::size_t max_shards);

/// Derived cache identity of one row slice of a full pattern/operand id.
std::uint64_t slice_content_id(std::uint64_t full_content,
                               const RowSlice& slice);

/// Outcome of one executed slice.
struct SliceExecution {
  core::SpmmResult result;
  bool lhs_cache_hit = false;
};

/// Executes one SpMM row slice: finds (or prepares and caches) the slice's
/// LHS in `operands` under slice_content_id(full_lhs_content, slice), then
/// replays `plan` (the slice's plan, built from the slice pattern) against
/// the shared full-K RHS. The staleness probe covers the full value matrix,
/// the same guarantee the unsliced path gives. The slice's LHS entry is
/// pinned for the duration of the call.
SliceExecution execute_spmm_slice(
    const Request& req,
    const std::shared_ptr<const sparse::BlockPattern>& slice_pattern,
    const RowSlice& slice, std::uint64_t full_lhs_content,
    const core::SpmmPlanHandle& plan, const core::DenseOperandHandle& rhs,
    OperandCache& operands);

/// Bit-exact row-concatenation epilogue: parts[i] holds the output rows of
/// slices[i] (in order); the merged KernelRun accumulates every slice's
/// counters, steps and launches (geometry of the first slice kept, the
/// KernelRun::merge convention for multi-kernel schedules).
core::SpmmResult merge_row_shards(std::size_t total_rows, std::size_t n_cols,
                                  int vector_length,
                                  const std::vector<RowSlice>& slices,
                                  std::vector<core::SpmmResult> parts);

/// Outcome of one executed SDDMM slice.
struct SddmmSliceExecution {
  core::SddmmResult result;
  bool lhs_cache_hit = false;
};

/// Executes one SDDMM row slice: materializes the slice's rows of the dense
/// A activations (cached under slice_content_id(req.lhs_id, slice) when the
/// client named the activation, anonymous otherwise — the same identity
/// rule as the unsliced path), then replays `plan` (built from the slice
/// pattern) against the shared full column-major RHS.
SddmmSliceExecution execute_sddmm_slice(
    const Request& req,
    const std::shared_ptr<const sparse::BlockPattern>& slice_pattern,
    const RowSlice& slice, const core::SddmmPlanHandle& plan,
    const core::DenseOperandHandle& rhs, OperandCache& operands);

/// Bit-exact BCRS row-concatenation epilogue for SDDMM: the output encoding
/// mirrors the pattern (row_ptr/col_idx copied, values vector-major), so
/// concatenating each slice's rows with offset row pointers reproduces the
/// full-run BCRS exactly. `pattern` is the full output pattern.
core::SddmmResult merge_sddmm_row_shards(const sparse::BlockPattern& pattern,
                                         const std::vector<RowSlice>& slices,
                                         std::vector<core::SddmmResult> parts);

}  // namespace magicube::serve
