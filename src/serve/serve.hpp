#pragma once
// Serving-engine umbrella header.
//
// Minimal usage (see examples/serving.cpp):
//
//   using namespace magicube;
//   serve::BatchScheduler engine;                 // cache + scheduler
//   serve::Request req;
//   req.op = serve::OpKind::spmm;
//   req.precision = precision::L8R8;
//   req.pattern = std::make_shared<const sparse::BlockPattern>(pattern);
//   req.lhs_values = std::make_shared<const Matrix<std::int32_t>>(weights);
//   req.rhs_values = std::make_shared<const Matrix<std::int32_t>>(acts);
//   auto future = engine.submit(std::move(req));
//   const serve::Response resp = future.get();    // bit-exact SpmmResult
//   // engine.cache().stats().hit_rate() amortization telemetry

// Multi-device usage (see the "Elastic fleet & tracing" README section):
//
//   serve::DevicePoolConfig pool_cfg;
//   pool_cfg.devices = {simt::a100(), simt::a100(), simt::edge()};
//   pool_cfg.fault_plan.probability = 0.05;       // seeded fault injection
//   serve::DevicePool pool(pool_cfg);             // same submit/future API
//   const std::size_t d = pool.add_device(simt::edge());  // join mid-traffic
//   auto resp = pool.submit(std::move(req)).get();
//   pool.drain_device(d);                         // leave mid-traffic
//   // resp.device / resp.shards / resp.retries report the placement;
//   // resp.trace (serve/trace.hpp) is the request's span timeline, and
//   // pool.traces().write_json(path) exports the completed-trace ring.
//
// SLA-aware usage (see the "SLA-aware serving" README section):
//
//   serve::WarmupManifest manifest;               // known-hot layers
//   manifest.entries.push_back({.pattern = layer, .cols = 256, .pin = true});
//   pool.warmup(manifest);                        // pre-build + pin plans
//   req.deadline_seconds = 1e-4;                  // modeled-seconds budget
//   try {
//     auto resp = pool.submit(std::move(req)).get();
//   } catch (const serve::ShedError&) {
//     // modeled completion exceeded the deadline on every active device
//   }
//
// Fused attention graphs & token streams (see the "Graph serving & token
// streams" README section):
//
//   auto g = std::make_shared<serve::GraphRequest>();    // whole DAG,
//   g->q = q; g->k = k; g->v = v; g->mask = mask;        // one request
//   g->scheme = transformer::AttentionScheme::magicube_8b_8b;
//   auto resp = pool.submit(serve::make_graph_request(g)).get();
//   // resp.graph->out is the attention output; resp.graph->stages the
//   // per-stage breakdown (also traced as stage_* spans).
//
//   serve::SessionConfig sess;                    // continuous batching
//   sess.mask = full_mask; sess.dk = 64;          // over token streams
//   serve::TokenSession s = pool.open_session(sess);  // ShedError when the
//   auto step = s.step(q_rows, k_rows, v_rows);   // session budget is full
//
#include "serve/device_pool.hpp"
#include "serve/fault.hpp"
#include "serve/graph.hpp"
#include "serve/operand_cache.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"
#include "serve/shard.hpp"
#include "serve/sla.hpp"
#include "serve/trace.hpp"
