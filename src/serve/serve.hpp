#pragma once
// Serving-engine umbrella header.
//
// Minimal usage (see examples/serving.cpp):
//
//   using namespace magicube;
//   serve::BatchScheduler engine;                 // cache + scheduler
//   serve::Request req;
//   req.op = serve::OpKind::spmm;
//   req.precision = precision::L8R8;
//   req.pattern = std::make_shared<const sparse::BlockPattern>(pattern);
//   req.lhs_values = std::make_shared<const Matrix<std::int32_t>>(weights);
//   req.rhs_values = std::make_shared<const Matrix<std::int32_t>>(acts);
//   auto future = engine.submit(std::move(req));
//   const serve::Response resp = future.get();    // bit-exact SpmmResult
//   // engine.cache().stats().hit_rate() amortization telemetry

// Multi-device usage (see the "Multi-device serving" README section):
//
//   serve::DevicePoolConfig pool_cfg;
//   pool_cfg.device_count = 4;                    // four simulated A100s
//   serve::DevicePool pool(pool_cfg);             // same submit/future API
//   auto resp = pool.submit(std::move(req)).get();
//   // resp.device / resp.shards report the cost-model placement;
//   // pool.stats().devices[d].modeled_busy_seconds per-device clocks.

#include "serve/device_pool.hpp"
#include "serve/operand_cache.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard.hpp"
