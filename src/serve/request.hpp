#pragma once
// Request/response types of the inference-serving engine.
//
// A request names one quantized sparse kernel invocation (SpMM or SDDMM, any
// precision pair) by its inputs; operands arrive as raw integer matrices
// plus a sparsity pattern, all shared_ptr-owned so the engine can hold them
// past submit() without copying. Preparation (quantize → encode → shuffle)
// happens inside the engine, memoized by the operand cache; see
// serve/operand_cache.hpp for the identity rules behind lhs_id / rhs_id.

#include <cstdint>
#include <memory>
#include <optional>

#include "common/matrix.hpp"
#include "common/precision.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "sparse/pattern.hpp"

namespace magicube::serve {

struct RequestTrace;   // serve/trace.hpp
struct GraphRequest;   // serve/graph.hpp
struct GraphResult;    // serve/graph.hpp

enum class OpKind : std::uint8_t { spmm, sddmm };

inline const char* to_string(OpKind k) {
  return k == OpKind::spmm ? "spmm" : "sddmm";
}

struct Request {
  OpKind op = OpKind::spmm;
  PrecisionPair precision = precision::L8R8;

  /// SpMM: sparsity of the M x K LHS weight. SDDMM: the M x N output
  /// sampling pattern.
  std::shared_ptr<const sparse::BlockPattern> pattern;
  /// SpMM: M x K LHS weight values (read through `pattern`). SDDMM: the
  /// M x K dense A activations.
  std::shared_ptr<const Matrix<std::int32_t>> lhs_values;
  /// K x N RHS values for both ops.
  std::shared_ptr<const Matrix<std::int32_t>> rhs_values;

  core::SpmmVariant variant = core::SpmmVariant::full;  // SpMM only
  int bsn = 64;                                         // SpMM only
  bool sddmm_prefetch = false;                          // SDDMM only

  /// Cache identity overrides. SpMM LHS: 0 = key on pattern fingerprint.
  /// SDDMM LHS and both RHS slots: 0 = do not cache (anonymous activation).
  std::uint64_t lhs_id = 0;
  std::uint64_t rhs_id = 0;

  /// Dispatch priority (higher first). The DevicePool dispatcher orders
  /// each collected queue drain by priority before placing; equal
  /// priorities keep arrival order. The single-device BatchScheduler
  /// ignores it (FIFO within compatibility groups).
  int priority = 0;

  /// SLA deadline in *modeled* seconds from admission (the cost-model
  /// clock placement reasons about — never wall time). 0 = no deadline.
  /// Under a DevicePool, equal priorities dispatch earliest-deadline-first
  /// and a request whose modeled completion (best-candidate backlog +
  /// per-spec estimate) already exceeds its deadline is shed with a clean
  /// ShedError (serve/sla.hpp) instead of being served late or silently
  /// dropped. The BatchScheduler ignores it (no modeled device clock).
  double deadline_seconds = 0.0;

  /// Fused attention DAG (serve/graph.hpp). When set, the request is the
  /// whole {SDDMM, softmax+quantize, SpMM} graph submitted as one unit:
  /// the engines price and place it whole (never sharded — the stages
  /// share one arena), `pattern` carries the graph's mask for placement
  /// identity, and lhs_values/rhs_values stay null. Build these with
  /// make_graph_request, not by hand.
  std::shared_ptr<const GraphRequest> graph;
};

struct Response {
  OpKind op = OpKind::spmm;
  std::optional<core::SpmmResult> spmm;    // engaged when op == spmm
  std::optional<core::SddmmResult> sddmm;  // engaged when op == sddmm

  bool lhs_cache_hit = false;
  bool rhs_cache_hit = false;
  bool plan_cache_hit = false;  // execution plan served from the cache
  std::uint64_t batch_id = 0;   // which execution batch served this request
  std::size_t batch_size = 0;   // how many requests shared that batch
  /// Cost-model estimate of the kernel run on the device that served it
  /// (the placed device's spec under the DevicePool; simt::a100()
  /// otherwise). For a sharded request: the modeled makespan of the
  /// slices — slices on distinct devices run in parallel, slices
  /// co-located by a skewed backlog serialize on their device's clock.
  double modeled_seconds = 0.0;
  /// DevicePool placement: the device the request ran on (-1 when not
  /// served through a pool, or when row shards spanned several devices).
  int device = -1;
  /// Row shards the request was split into (1 = placed whole on one
  /// device; 0 = not served through a DevicePool).
  std::size_t shards = 0;
  /// Requeues performed before this response (fault recovery; DevicePool
  /// with a FaultPlan — 0 otherwise).
  std::uint64_t retries = 0;
  /// DevicePool: the request's modeled completion time (placement start in
  /// the placed device's backlog + the final attempt's estimate; for a
  /// sharded request, the latest slice's completion) on the request's
  /// modeled timeline — what deadline admission compared against
  /// Request::deadline_seconds. 0 when not served through a pool.
  double modeled_completion_seconds = 0.0;
  /// DevicePool self-healing (HealingConfig::hedge_deadline_fraction):
  /// true when a hedge duplicate was placed for this request because its
  /// modeled completion drifted past the configured fraction of its
  /// deadline. `device` reports whichever copy won the modeled race (the
  /// loser rolled off the clock unexecuted; outputs are bit-exact either
  /// way).
  bool hedged = false;
  /// Structured per-request trace (serve/trace.hpp); set when the serving
  /// engine collects traces, null for direct serve_request calls.
  std::shared_ptr<const RequestTrace> trace;
  /// Fused-graph output (serve/graph.hpp): the attention result plus the
  /// per-stage runs/flags. Engaged iff the request carried a graph; the
  /// spmm/sddmm optionals stay empty for graph responses.
  std::shared_ptr<const GraphResult> graph;
};

}  // namespace magicube::serve
