#pragma once
// Shared submit-queue core of the serving engines.
//
// BatchScheduler and DevicePool expose the same front half — a
// submit/future API feeding one dispatcher thread through a bounded queue
// with linger-based coalescing, backpressure, drain() and a
// shutdown-with-inflight-work discipline — and used to implement it twice
// (the ROADMAP-flagged duplication). SubmitQueueCore is that front half,
// extracted once: the engines differ only in the Dispatch callback that
// consumes each collected queue drain (grouping into batches vs pricing
// and placing onto devices).
//
// Lifecycle / concurrency contract (identical to what both engines always
// promised, now asserted for both by tests/test_fleet.cpp's typed suite):
//   - submit() blocks while the queue sits at max_queue_depth
//     (backpressure) and throws Error once shutdown began — including for
//     submitters woken *out of* the backpressure wait by shutdown;
//   - the dispatcher always takes the whole queue, never submits, so the
//     backpressure wait cannot deadlock;
//   - every request handed to Dispatch is retired by exactly one
//     complete() call once its promise is fulfilled;
//   - shutdown() is idempotent and safe to call repeatedly (and the
//     destructor calls it): it stops intake, lets the dispatcher drain the
//     queue, then blocks until in-flight work completed and
//     backpressure-blocked submitters left the wait — the owner may
//     destroy caches/stats the work references right after;
//   - tracing: when Tuning::collect_traces is set every admitted request
//     carries a RequestTrace (serve/trace.hpp) stamped with the engine id
//     and its admission sequence number; the Dispatch owner fills in the
//     spans.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "serve/request.hpp"
#include "serve/trace.hpp"

namespace magicube::serve::detail {

/// One admitted request travelling from submit() through Dispatch to its
/// promise fulfilment.
struct PendingRequest {
  Request req;
  std::promise<Response> promise;
  std::shared_ptr<RequestTrace> trace;  // null when tracing is off
};

class SubmitQueueCore {
 public:
  struct Tuning {
    /// Human-facing engine name for error messages ("BatchScheduler").
    const char* label = "engine";
    /// Machine-facing engine id stamped on traces ("batch_scheduler").
    const char* engine_id = "engine";
    /// How long the dispatcher lingers for a forming drain to grow.
    std::chrono::microseconds linger{200};
    /// Bounded queue; submit() blocks at the bound (0 = unbounded).
    std::size_t max_queue_depth = 0;
    /// Queue size at which the linger cuts short because one dispatch unit
    /// is already full (BatchScheduler's max_batch; 0 = no such bound).
    std::size_t batch_fill = 0;
    /// Attach a RequestTrace to every admitted request.
    bool collect_traces = false;
  };

  /// Consumes one collected queue drain. Runs on the dispatcher thread;
  /// must eventually fulfil every promise and call complete() per request.
  using Dispatch = std::function<void(std::deque<PendingRequest>)>;

  SubmitQueueCore() = default;
  ~SubmitQueueCore() { shutdown(); }

  SubmitQueueCore(const SubmitQueueCore&) = delete;
  SubmitQueueCore& operator=(const SubmitQueueCore&) = delete;

  /// Spawns the dispatcher thread. Call exactly once, before any submit.
  void start(const Tuning& tuning, Dispatch dispatch) {
    tuning_ = tuning;
    dispatch_ = std::move(dispatch);
    thread_ = std::thread([this] { loop(); });
  }

  std::future<Response> submit(Request req) {
    PendingRequest p;
    p.req = std::move(req);
    std::future<Response> out = p.promise.get_future();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      MAGICUBE_CHECK_MSG(!stopping_,
                         "submit on a stopping " << tuning_.label);
      if (tuning_.max_queue_depth > 0) {
        // Backpressure: block until the dispatcher collects the queue (it
        // always takes the whole queue, so space frees in bulk) or
        // shutdown begins. The wait never deadlocks: the dispatcher
        // thread consumes the queue without ever calling submit(). The
        // blocked count lets shutdown() wait for woken submitters to
        // leave the wait before the owner destroys the mutex/condvar
        // (notify under the lock, same discipline as complete()'s idle
        // notification).
        blocked_submitters_ += 1;
        queue_space_.wait(lock, [&] {
          return stopping_ || queue_.size() < tuning_.max_queue_depth;
        });
        blocked_submitters_ -= 1;
        if (blocked_submitters_ == 0) idle_.notify_all();
        MAGICUBE_CHECK_MSG(!stopping_,
                           "submit on a stopping " << tuning_.label);
      }
      submitted_ += 1;
      if (tuning_.collect_traces) {
        p.trace = std::make_shared<RequestTrace>();
        p.trace->request_id = submitted_;
        p.trace->engine = tuning_.engine_id;
      }
      queue_.push_back(std::move(p));
      outstanding_ += 1;
      // Notify under the lock (complete()'s discipline): shutdown() only
      // waits for outstanding_ == 0, which the dispatcher can reach the
      // instant we unlock — a notify issued after releasing the mutex
      // would race the owner destroying this condition variable.
      queue_changed_.notify_all();
    }
    return out;
  }

  /// Blocks until every request submitted so far has completed.
  void drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [&] { return outstanding_ == 0; });
  }

  /// One request retired (its promise fulfilled). Any thread.
  void complete() {
    std::lock_guard<std::mutex> lock(mutex_);
    outstanding_ -= 1;
    // Notify under the lock: a drain()/shutdown() waiter may destroy this
    // condition variable as soon as it observes outstanding == 0.
    idle_.notify_all();
  }

  /// Stops intake, drains the queue, waits out in-flight work and blocked
  /// submitters. Idempotent; double (and concurrent) shutdown is safe.
  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
      // Notify under the lock: a concurrent shutdown() caller can observe
      // the idle predicate and let the owner destroy these condition
      // variables while a notify issued after the unlock is still running.
      queue_changed_.notify_all();
      queue_space_.notify_all();  // blocked submitters must observe stop
    }
    std::thread to_join;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (thread_.joinable()) to_join = std::move(thread_);
    }
    if (to_join.joinable()) to_join.join();  // exits once queue is drained
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [&] {
      return outstanding_ == 0 && blocked_submitters_ == 0;
    });
  }

  /// Requests admitted so far (the owner's `submitted` stat).
  std::uint64_t submitted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
  }

  /// Live-tunes the linger for subsequent dispatch rounds — the SLA
  /// layer's adaptive cadence: an engine that just saw deadline pressure
  /// drops the linger to 0 so the next drain dispatches immediately, and
  /// restores the configured value once the pressure clears. Safe from any
  /// thread, including from inside the Dispatch callback (the dispatcher
  /// invokes Dispatch without holding the queue mutex).
  void set_linger(std::chrono::microseconds linger) {
    std::lock_guard<std::mutex> lock(mutex_);
    tuning_.linger = linger;
  }

 private:
  void loop() {
    for (;;) {
      std::deque<PendingRequest> taken;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_changed_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping && drained
        const std::size_t fill = tuning_.batch_fill;
        if (!stopping_ && tuning_.linger.count() > 0 &&
            (fill == 0 || queue_.size() < fill)) {
          // Linger so bursts coalesce into one dispatch unit. A full
          // bounded queue (submitters are blocked on space — waiting
          // longer cannot grow the drain) or a full batch cuts it short.
          const std::size_t depth = tuning_.max_queue_depth;
          queue_changed_.wait_for(lock, tuning_.linger, [&] {
            return stopping_ || (fill > 0 && queue_.size() >= fill) ||
                   (depth > 0 && queue_.size() >= depth);
          });
        }
        taken.swap(queue_);
        // The queue is empty again: wake submitters blocked on depth.
        queue_space_.notify_all();
      }
      dispatch_(std::move(taken));
    }
  }

  Tuning tuning_;
  Dispatch dispatch_;
  mutable std::mutex mutex_;
  std::condition_variable queue_changed_;  // dispatcher wakes on submit/stop
  std::condition_variable queue_space_;    // bounded submitters wake on drain
  std::condition_variable idle_;           // drain()/shutdown wake on retire
  std::deque<PendingRequest> queue_;
  bool stopping_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t outstanding_ = 0;        // admitted, promise not fulfilled
  std::uint64_t blocked_submitters_ = 0; // inside the backpressure wait
  std::thread thread_;
};

}  // namespace magicube::serve::detail
