#pragma once
// Fused attention-graph serving (paper Fig. 16 as a serving unit).
//
// A GraphRequest names the whole quantized attention DAG —
//
//     SDDMM (sampled QK^T)  ->  sparse softmax + x-bit quantize  ->  SpMM
//
// — and is submitted to the serving engines as ONE request. The engines
// price it with the merged multi-resource roofline of all three stages
// (max-of-sums across resources: the modeled fusion win over pricing each
// stage's own max), place it whole (stages share one arena, so the DAG is
// never row-sharded), and execute it against an engine-owned
// transformer::AttentionArena: stage intermediates — the quantized score
// matrix, the attention-weight image — live in the arena, are never
// inserted into the OperandCache and never copied out between stages. Only
// the stable operands (quantized Q, K^T, V) and the two execution plans
// route through the caches, probe-keyed (serve/operand_cache.hpp).
//
// GraphRequests ride the existing Request currency via make_graph_request:
// the wrapper carries the mask as `pattern` so placement identity (plan
// affinity, pattern fingerprints) and EDF/deadline machinery work
// unchanged, and the engines branch on Request::graph before touching the
// per-kernel operand slots.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "serve/operand_cache.hpp"
#include "serve/request.hpp"
#include "simt/cost_model.hpp"
#include "sparse/pattern.hpp"
#include "transformer/attention.hpp"

namespace magicube::serve {

/// A fused attention DAG submitted as one serving unit. Operands are
/// shared_ptr-owned like Request's: the engine holds them past submit()
/// without copying.
struct GraphRequest {
  std::shared_ptr<const Matrix<float>> q;  // L x dk activations
  std::shared_ptr<const Matrix<float>> k;  // L x dk
  std::shared_ptr<const Matrix<float>> v;  // L x dk
  /// L x L sampling mask; also the wrapper Request's placement identity.
  std::shared_ptr<const sparse::BlockPattern> mask;
  transformer::AttentionScheme scheme =
      transformer::AttentionScheme::magicube_8b_8b;
  /// Token-stream identity (serve/session.hpp); 0 = one-shot graph. Folded
  /// into the wrapper's lhs_id so placement affinity keeps a stream's
  /// steps near its cached operands.
  std::uint64_t session_id = 0;
  std::uint64_t step = 0;
};

/// One executed stage of a graph response: its analytic kernel run, the
/// modeled duration on the serving device, and its cache interaction. The
/// engines lay these out as per-stage trace spans under the request trace.
struct GraphStage {
  std::string name;     // "sddmm", "softmax_quantize", "spmm"
  simt::KernelRun run;  // merged analytic run of the stage's kernels
  double modeled_seconds = 0.0;
  bool lhs_cache_hit = false;
  bool rhs_cache_hit = false;
  bool plan_cache_hit = false;
};

/// Output of a served graph: the fp32 attention result plus the stage
/// breakdown. Response::modeled_seconds carries the *fused* estimate (one
/// merged run, one launch); the per-stage modeled_seconds sum to more —
/// their difference is the modeled fusion win.
struct GraphResult {
  Matrix<float> out;  // L x dk
  std::vector<GraphStage> stages;
};

/// Wraps a graph into the engines' Request currency. The wrapper's
/// `pattern` is the graph's mask (placement/pricing identity), `op` is
/// sddmm (the DAG's first stage — keeps affinity in the SDDMM domain),
/// `lhs_id` is the session id when streaming, and the operand slots stay
/// null: engines route on Request::graph before touching them.
Request make_graph_request(std::shared_ptr<const GraphRequest> graph,
                           int priority = 0, double deadline_seconds = 0.0);

/// Prices the whole DAG without executing: quant-QKV elementwise + SDDMM +
/// sparse softmax + SpMM merged into one run (resident plans' analytic
/// runs when cached in `plans`, closed-form estimates otherwise), with the
/// fused schedule's single kernel launch. Equals the executed graph's
/// modeled run exactly (estimate-equals-execute, as everywhere in the
/// cost model).
simt::KernelRun price_graph_request(const GraphRequest& g,
                                    OperandCache& plans);

/// The same DAG priced as *per-stage* submissions: each stage keeps its own
/// launches and adds the interlude traffic fusion eliminates — the score
/// copy-out (dequantize nnz scores to fp), the quantized attention-weight
/// copy-in (re-quantize + scatter over the L x L image) — per §IV-C, where
/// the on-device SDDMM writes SR-BCRS directly for the SpMM to consume.
/// Returned per kernel (not merged): the staged arm prices as a sum of
/// per-kernel rooflines — sum-of-maxes — which is exactly what fusion
/// beats. bench/graph_soak gates the fused:staged modeled-throughput
/// ratio.
std::vector<simt::KernelRun> price_staged_graph(const GraphRequest& g,
                                                OperandCache& plans);

/// Modeled per-step cost of a session at its full mask/depth on `device` —
/// the admission currency DevicePoolConfig::session_budget_seconds is
/// compared against (serve/session.hpp).
double price_session_step_seconds(const sparse::BlockPattern& mask,
                                  std::size_t dk,
                                  transformer::AttentionScheme scheme,
                                  const simt::DeviceSpec& device);

/// Executes the DAG synchronously against `operands`/`plans` on `device`.
/// The response's hit flags summarize the stable operands (lhs = quantized
/// Q, rhs = V, plan = both stage plans); the full per-stage breakdown is
/// in Response::graph->stages. The engines call this from their workers —
/// direct calls serve without queueing, like serve_request.
Response serve_graph_request(const GraphRequest& g, OperandCache& operands,
                             OperandCache& plans,
                             const simt::DeviceSpec& device);

}  // namespace magicube::serve
