#pragma once
// Deterministic fault injection for the DevicePool.
//
// A FaultPlan makes modeled devices fail on purpose so the recovery path
// (clock rollback, pin release, requeue to a surviving device, bounded
// retry budget) is exercised by ordinary tests instead of waiting for a
// production incident. Two trigger shapes compose:
//
//   - exact: "the Nth kernel execution on device D fails" — fully
//     deterministic, for pinpoint tests of a single retry or an exhausted
//     budget (executions are counted per device across whole placements
//     and shard slices alike, starting at 1);
//   - probabilistic: every execution fails with probability p, drawn from
//     one seeded Rng — deterministic given (seed, schedule), the knob the
//     property/soak tiers sweep over 0–30%;
//   - windowed: a per-device probability active only for a range of that
//     device's execution counts — how the chaos soak models a device that
//     degrades and later recovers (fail 40% of device 0's first N
//     executions, then return to the global background rate). The
//     effective probability of an execution is the max of the global rate
//     and every matching window.
//
// An injected failure surfaces as FaultError inside the executing pool
// task, indistinguishable from a genuine execution failure to the recovery
// machinery — which is the point: outputs must stay bit-exact vs the
// sequential reference regardless of where faults land (asserted by
// tests/test_fleet.cpp).

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.hpp"

namespace magicube::serve {

struct FaultPlan {
  /// Fail the `nth` (1-based) kernel execution on `device`.
  struct Exact {
    std::size_t device = 0;
    std::uint64_t nth = 1;
  };
  std::vector<Exact> exact;

  /// Independent per-execution failure probability in [0, 1], drawn from a
  /// dedicated Rng seeded with `seed` (0 disables).
  double probability = 0.0;
  std::uint64_t seed = 0x0fa17ull;

  /// Raises the failure probability of `device` to `probability` while its
  /// execution count (1-based, same counter Exact uses) lies in
  /// [from, to] — a transiently sick device. Windows compose with the
  /// global rate by max, so a window never *lowers* the background rate.
  struct Window {
    std::size_t device = 0;
    double probability = 0.0;
    std::uint64_t from = 1;
    std::uint64_t to = std::numeric_limits<std::uint64_t>::max();
  };
  std::vector<Window> windows;

  bool enabled() const {
    return probability > 0.0 || !exact.empty() || !windows.empty();
  }
};

/// Thrown by an execution a FaultPlan selected. Derives Error so generic
/// failure handling (promise exceptions, retry-budget messages) treats it
/// like any execution failure.
class FaultError : public Error {
 public:
  using Error::Error;
};

/// Thrown (on the request's future) when poison-request isolation trips: a
/// request that faulted on `HealingConfig::poison_fault_devices` *distinct*
/// devices is failed fast instead of burning the rest of its retry budget
/// — the faults correlate with the request, not the fleet, and every extra
/// attempt would only drag another device's health score down. Derives
/// Error; catch it specifically to route bad inputs away from retry paths.
class PoisonError : public Error {
 public:
  using Error::Error;
};

}  // namespace magicube::serve
