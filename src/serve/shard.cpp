#include "serve/shard.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "core/operands.hpp"

namespace magicube::serve {

std::vector<RowSlice> plan_row_shards(const sparse::BlockPattern& pattern,
                                      int stride, std::size_t max_shards) {
  const std::size_t vr = pattern.vector_rows();
  std::vector<RowSlice> out;
  if (vr == 0 || max_shards <= 1) {
    out.push_back({0, vr});
    return out;
  }
  const std::size_t st = static_cast<std::size_t>(stride);
  MAGICUBE_CHECK(st > 0);

  // Work per vector row = its padded slot count (what every block of that
  // row executes, across all column tiles identically).
  std::uint64_t total = 0;
  std::vector<std::uint64_t> work(vr);
  for (std::size_t r = 0; r < vr; ++r) {
    work[r] = (pattern.vectors_in_row(r) + st - 1) / st * st;
    total += work[r];
  }

  const std::size_t shards = std::min(max_shards, vr);
  if (total == 0) {
    // Degenerate all-empty pattern: balance by row count instead.
    for (std::size_t s = 0; s < shards; ++s) {
      out.push_back({vr * s / shards, vr * (s + 1) / shards});
    }
    return out;
  }

  std::size_t begin = 0;
  std::uint64_t cum = 0;
  for (std::size_t s = 1; s <= shards && begin < vr; ++s) {
    std::size_t end = vr;
    if (s < shards) {
      // Advance to the ideal cumulative boundary, taking at least one row
      // and leaving at least one per remaining slice.
      const std::uint64_t target = total * s / shards;
      const std::size_t limit = vr - (shards - s);
      end = begin + 1;
      cum += work[begin];
      while (end < limit && cum + work[end] / 2 < target) {
        cum += work[end];
        end += 1;
      }
    }
    out.push_back({begin, end});
    begin = end;
  }
  MAGICUBE_CHECK(!out.empty() && out.back().vr_end == vr);
  return out;
}

std::uint64_t slice_content_id(std::uint64_t full_content,
                               const RowSlice& slice) {
  Fnv1a h;
  h.mix(full_content);
  h.mix(slice.vr_begin);
  h.mix(slice.vr_end);
  return h.state;
}

SliceExecution execute_spmm_slice(
    const Request& req,
    const std::shared_ptr<const sparse::BlockPattern>& slice_pattern,
    const RowSlice& slice, std::uint64_t full_lhs_content,
    const core::SpmmPlanHandle& plan, const core::DenseOperandHandle& rhs,
    OperandCache& operands) {
  MAGICUBE_CHECK(slice_pattern != nullptr && plan != nullptr &&
                 rhs != nullptr);
  core::SpmmConfig cfg;
  cfg.precision = req.precision;
  cfg.variant = req.variant;
  cfg.bsn = req.bsn;
  const bool shuffle = core::needs_shuffle(cfg);

  const OperandKey key = spmm_lhs_key(
      slice_content_id(full_lhs_content, slice), req.precision, shuffle);
  // Probe the *full* value matrix: slice entries inherit the staleness
  // guarantee of the id they derive from without materializing the slice
  // rows on a hit.
  const std::uint64_t probe = content_probe(*req.lhs_values);

  SliceExecution out;
  core::SparseOperandHandle lhs;
  OperandCache::PinScope pins(operands);
  if (CachedOperand hit = operands.find(key)) {
    MAGICUBE_CHECK_MSG(hit.content_probe == probe,
                       "operand cache hit for sharded lhs content "
                           << full_lhs_content
                           << " but the weight values changed — pass a "
                              "distinct lhs_id per weight version");
    out.lhs_cache_hit = true;
    lhs = hit.sparse;
  } else {
    // Materialize the slice's rows of the dense weights and prepare them
    // against the slice pattern — identical bytes to the corresponding
    // rows of the full preparation (SR-BCRS encodes rows independently).
    const std::size_t v = static_cast<std::size_t>(
        slice_pattern->vector_length);
    const std::size_t r0 = slice.vr_begin * v;
    Matrix<std::int32_t> rows(slice_pattern->rows, slice_pattern->cols);
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      const std::int32_t* src = req.lhs_values->row(r0 + r);
      std::copy(src, src + rows.cols(), rows.row(r));
    }
    CachedOperand entry;
    entry.sparse = core::prepare_spmm_lhs_shared(*slice_pattern, rows,
                                                 req.precision, shuffle);
    entry.bytes = entry.sparse->footprint_bytes();
    entry.content_probe = probe;
    lhs = operands.insert(key, std::move(entry)).sparse;
  }
  pins.pin(key);  // keep the slice resident while it executes

  out.result = core::spmm(lhs, rhs, cfg, plan);
  return out;
}

SddmmSliceExecution execute_sddmm_slice(
    const Request& req,
    const std::shared_ptr<const sparse::BlockPattern>& slice_pattern,
    const RowSlice& slice, const core::SddmmPlanHandle& plan,
    const core::DenseOperandHandle& rhs, OperandCache& operands) {
  MAGICUBE_CHECK(slice_pattern != nullptr && plan != nullptr &&
                 rhs != nullptr);
  core::SddmmConfig cfg;
  cfg.precision = req.precision;
  cfg.prefetch = req.sddmm_prefetch;

  // Materialize the slice's rows of the dense A activations — identical
  // bytes to the corresponding rows of the full preparation (row-major A
  // encodes rows independently).
  const std::size_t v =
      static_cast<std::size_t>(slice_pattern->vector_length);
  const std::size_t r0 = slice.vr_begin * v;
  Matrix<std::int32_t> rows(slice_pattern->rows, req.lhs_values->cols());
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    const std::int32_t* src = req.lhs_values->row(r0 + r);
    std::copy(src, src + rows.cols(), rows.row(r));
  }
  // The unsliced path's identity rule carries over: lhs_id == 0 means an
  // anonymous activation (content_id 0 bypasses the cache).
  const std::uint64_t slice_id =
      req.lhs_id != 0 ? slice_content_id(req.lhs_id, slice) : 0;
  SddmmSliceExecution out;
  const core::DenseOperandHandle a = operands.get_or_prepare_dense(
      OperandKind::sddmm_lhs, rows, req.precision, slice_id,
      &out.lhs_cache_hit);
  out.result = core::sddmm(a, rhs, *slice_pattern, cfg, plan);
  return out;
}

core::SddmmResult merge_sddmm_row_shards(const sparse::BlockPattern& pattern,
                                         const std::vector<RowSlice>& slices,
                                         std::vector<core::SddmmResult> parts) {
  MAGICUBE_CHECK(slices.size() == parts.size() && !parts.empty());
  const std::size_t v = static_cast<std::size_t>(pattern.vector_length);

  core::SddmmResult merged;
  merged.c.rows = pattern.rows;
  merged.c.cols = pattern.cols;
  merged.c.vector_length = pattern.vector_length;
  merged.c.row_ptr.reserve(pattern.vector_rows() + 1);
  merged.c.row_ptr.push_back(0);
  merged.c.col_idx.reserve(pattern.vector_count());
  merged.c.values.reserve(pattern.vector_count() * v);
  bool first = true;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const sparse::Bcrs<std::int32_t>& part = parts[i].c;
    MAGICUBE_CHECK(part.rows == slices[i].vector_rows() * v);
    const std::uint32_t offset = merged.c.row_ptr.back();
    for (std::size_t r = 1; r < part.row_ptr.size(); ++r) {
      merged.c.row_ptr.push_back(offset + part.row_ptr[r]);
    }
    merged.c.col_idx.insert(merged.c.col_idx.end(), part.col_idx.begin(),
                            part.col_idx.end());
    merged.c.values.insert(merged.c.values.end(), part.values.begin(),
                           part.values.end());
    if (first) {
      merged.run = parts[i].run;
      first = false;
    } else {
      merged.run.merge(parts[i].run);
    }
  }
  merged.c.validate();
  return merged;
}

core::SpmmResult merge_row_shards(std::size_t total_rows, std::size_t n_cols,
                                  int vector_length,
                                  const std::vector<RowSlice>& slices,
                                  std::vector<core::SpmmResult> parts) {
  MAGICUBE_CHECK(slices.size() == parts.size() && !parts.empty());
  const std::size_t v = static_cast<std::size_t>(vector_length);

  core::SpmmResult merged;
  merged.c = Matrix<std::int32_t>(total_rows, n_cols);
  bool first = true;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const Matrix<std::int32_t>& part = parts[i].c;
    MAGICUBE_CHECK(part.rows() == slices[i].vector_rows() * v &&
                   part.cols() == n_cols);
    const std::size_t r0 = slices[i].vr_begin * v;
    for (std::size_t r = 0; r < part.rows(); ++r) {
      std::copy(part.row(r), part.row(r) + n_cols, merged.c.row(r0 + r));
    }
    if (first) {
      merged.run = parts[i].run;
      first = false;
    } else {
      merged.run.merge(parts[i].run);
    }
  }
  return merged;
}

}  // namespace magicube::serve
