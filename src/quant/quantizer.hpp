#pragma once
// Quantization of floating-point tensors to low-precision integers.
//
// Magicube's end-to-end pipeline (paper Fig. 16) quantizes Q, K, V and the
// softmax output symmetrically to signed integers; dequantization is fused
// into kernel epilogues. We implement per-tensor symmetric quantization for
// signed targets (the scheme of Wu et al. referenced by the paper) and
// asymmetric min-max for unsigned targets (used in emulation tests).

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/packed.hpp"
#include "common/precision.hpp"

namespace magicube::quant {

struct QuantParams {
  float scale = 1.0f;        // real_value ~= scale * (q - zero_point)
  std::int32_t zero_point = 0;
  Scalar type = Scalar::s8;
};

/// Symmetric per-tensor parameters: scale = max|x| / max_q, zero_point = 0.
/// Requires a signed target type.
QuantParams choose_symmetric(const float* data, std::size_t n, Scalar type);

/// Asymmetric min-max parameters for unsigned targets.
QuantParams choose_asymmetric(const float* data, std::size_t n, Scalar type);

/// Quantizes one value (round-to-nearest, saturating to the type's range).
std::int32_t quantize_value(float x, const QuantParams& p);

/// Dequantizes one value.
inline float dequantize_value(std::int32_t q, const QuantParams& p) {
  return p.scale * static_cast<float>(q - p.zero_point);
}

/// Quantizes a dense float matrix into a packed buffer (row-major order).
PackedBuffer quantize(const Matrix<float>& m, const QuantParams& p);

/// Dequantizes a packed buffer back to a dense float matrix.
Matrix<float> dequantize(const PackedBuffer& q, std::size_t rows,
                         std::size_t cols, const QuantParams& p);

/// Worst-case absolute rounding error of symmetric quantization: scale / 2.
inline float max_rounding_error(const QuantParams& p) { return p.scale * 0.5f; }

}  // namespace magicube::quant
