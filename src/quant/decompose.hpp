#pragma once
// Algebraic decomposition of high-precision integers into mma-native planes.
//
// §IV-D of the paper: a value wider than the tensor cores support is split
// into 4- or 8-bit chunks; the matrix product is emulated as a weighted sum
// of native-precision products, C = sum_i w_i * (A_i * B). For *signed*
// integers in two's complement the top chunk must be interpreted as signed
// and every lower chunk as unsigned (e.g. int8 -19 = 0b1110'1101 splits into
// signed hi -2 and unsigned lo 13, with -2*16 + 13 = -19). Tensor-core mma
// supports signed x unsigned operand mixes, which makes this exact.

#include <cstdint>
#include <vector>

#include "common/packed.hpp"
#include "common/precision.hpp"

namespace magicube::quant {

/// One native-precision plane of a decomposed operand.
struct Plane {
  PackedBuffer values;      // u4/s4/u8/s8 chunks
  std::int64_t weight = 1;  // 16^i or 256^i
  bool is_signed = false;   // only the top plane of a signed source
};

/// A decomposed operand: value(v) == sum_i weight_i * plane_i(v).
struct PlaneSet {
  std::vector<Plane> planes;
  Scalar source_type = Scalar::s16;

  std::size_t size() const {
    return planes.empty() ? 0 : planes.front().values.size();
  }
  /// Recomposes element i — the defining identity, used by property tests.
  std::int64_t recompose(std::size_t i) const {
    std::int64_t v = 0;
    for (const auto& p : planes) v += p.weight * p.values.get(i);
    return v;
  }
};

/// Number of planes needed to express `source` in `chunk_bits`-wide chunks.
constexpr int plane_count(Scalar source, int chunk_bits) {
  return (bits_of(source) + chunk_bits - 1) / chunk_bits;
}

/// Splits a scalar into chunks (chunk 0 = least significant). For signed
/// sources the top chunk is signed, all lower chunks unsigned; for unsigned
/// sources every chunk is unsigned.
void decompose_value(std::int32_t v, Scalar source, int chunk_bits,
                     std::int32_t* chunks_out);

/// Decomposes a packed operand into planes of width `chunk_bits` (4 or 8).
PlaneSet decompose(const PackedBuffer& src, int chunk_bits);

/// Convenience: the chunk width Magicube picks when the *RHS* operand is
/// `rhs` — emulation planes must match the native mma precision of the pair,
/// i.e. 4-bit chunks when the RHS is 4-bit, else 8-bit chunks.
constexpr int emulation_chunk_bits(Scalar lhs, Scalar rhs) {
  (void)lhs;
  return bits_of(rhs) <= 4 ? 4 : 8;
}

}  // namespace magicube::quant
