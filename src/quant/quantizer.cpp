#include "quant/quantizer.hpp"

#include <algorithm>

namespace magicube::quant {

QuantParams choose_symmetric(const float* data, std::size_t n, Scalar type) {
  MAGICUBE_CHECK_MSG(is_signed(type) && is_integer(type),
                     "symmetric quantization targets signed integers");
  float amax = 0.0f;
  for (std::size_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(data[i]));
  QuantParams p;
  p.type = type;
  p.zero_point = 0;
  const float qmax = static_cast<float>(max_value(type));
  p.scale = amax > 0.0f ? amax / qmax : 1.0f;
  return p;
}

QuantParams choose_asymmetric(const float* data, std::size_t n, Scalar type) {
  MAGICUBE_CHECK_MSG(!is_signed(type) && is_integer(type),
                     "asymmetric quantization targets unsigned integers");
  float lo = 0.0f, hi = 0.0f;
  if (n > 0) {
    lo = hi = data[0];
    for (std::size_t i = 1; i < n; ++i) {
      lo = std::min(lo, data[i]);
      hi = std::max(hi, data[i]);
    }
  }
  lo = std::min(lo, 0.0f);  // representable zero keeps padding exact
  hi = std::max(hi, 0.0f);
  QuantParams p;
  p.type = type;
  const float qmax = static_cast<float>(max_value(type));
  p.scale = hi > lo ? (hi - lo) / qmax : 1.0f;
  p.zero_point =
      static_cast<std::int32_t>(std::lround(-lo / p.scale));
  p.zero_point = std::clamp(p.zero_point, min_value(type), max_value(type));
  return p;
}

std::int32_t quantize_value(float x, const QuantParams& p) {
  const float q = x / p.scale + static_cast<float>(p.zero_point);
  const long r = std::lround(q);
  return static_cast<std::int32_t>(
      std::clamp<long>(r, min_value(p.type), max_value(p.type)));
}

PackedBuffer quantize(const Matrix<float>& m, const QuantParams& p) {
  PackedBuffer out(m.size(), p.type);
  for (std::size_t i = 0; i < m.size(); ++i) {
    out.set(i, quantize_value(m.data()[i], p));
  }
  return out;
}

Matrix<float> dequantize(const PackedBuffer& q, std::size_t rows,
                         std::size_t cols, const QuantParams& p) {
  MAGICUBE_CHECK(q.size() == rows * cols);
  Matrix<float> out(rows, cols);
  for (std::size_t i = 0; i < q.size(); ++i) {
    out.data()[i] = dequantize_value(q.get(i), p);
  }
  return out;
}

}  // namespace magicube::quant
