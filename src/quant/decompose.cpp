#include "quant/decompose.hpp"

namespace magicube::quant {

void decompose_value(std::int32_t v, Scalar source, int chunk_bits,
                     std::int32_t* chunks_out) {
  MAGICUBE_CHECK(chunk_bits == 4 || chunk_bits == 8);
  const int nbits = bits_of(source);
  const int n = plane_count(source, chunk_bits);
  const std::uint32_t raw = encode_twos_complement(v, nbits);
  for (int i = 0; i < n; ++i) {
    const int lo = i * chunk_bits;
    const int width = (i == n - 1) ? nbits - lo : chunk_bits;
    const std::uint32_t chunk = (raw >> lo) & ((1u << width) - 1u);
    const bool top_signed = is_signed(source) && i == n - 1;
    chunks_out[i] = top_signed ? sign_extend(chunk, width)
                               : static_cast<std::int32_t>(chunk);
  }
}

PlaneSet decompose(const PackedBuffer& src, int chunk_bits) {
  MAGICUBE_CHECK(chunk_bits == 4 || chunk_bits == 8);
  const Scalar source = src.type();
  const int n = plane_count(source, chunk_bits);
  const int nbits = bits_of(source);
  MAGICUBE_CHECK_MSG(nbits % chunk_bits == 0 || chunk_bits == 4,
                     "12-bit sources decompose into 4-bit chunks only");

  PlaneSet out;
  out.source_type = source;
  out.planes.reserve(static_cast<std::size_t>(n));
  const Scalar u_chunk = chunk_bits == 4 ? Scalar::u4 : Scalar::u8;
  const Scalar s_chunk = chunk_bits == 4 ? Scalar::s4 : Scalar::s8;

  std::int64_t weight = 1;
  for (int i = 0; i < n; ++i) {
    Plane p;
    p.is_signed = is_signed(source) && i == n - 1;
    p.weight = weight;
    p.values = PackedBuffer(src.size(), p.is_signed ? s_chunk : u_chunk);
    out.planes.push_back(std::move(p));
    weight <<= chunk_bits;
  }

  std::int32_t chunks[8];
  for (std::size_t e = 0; e < src.size(); ++e) {
    decompose_value(src.get(e), source, chunk_bits, chunks);
    for (int i = 0; i < n; ++i) out.planes[static_cast<std::size_t>(i)].values.set(e, chunks[i]);
  }
  return out;
}

}  // namespace magicube::quant
