#pragma once
// Scalar reference implementations — the functional ground truth every
// simulated kernel is tested against. All integer accumulation is done in
// int64 and truncated to int32 at the end, matching the kernels' epilogue
// semantics (mma accumulates int32 with wraparound; emulation weights are
// applied in 64-bit before the final truncation).

#include <cstdint>

#include "common/matrix.hpp"
#include "sparse/bcrs.hpp"
#include "sparse/pattern.hpp"

namespace magicube::core {

/// C = A * B for dense integer matrices (row-major), truncated to int32.
inline Matrix<std::int32_t> reference_gemm(const Matrix<std::int32_t>& a,
                                           const Matrix<std::int32_t>& b) {
  MAGICUBE_CHECK(a.cols() == b.rows());
  Matrix<std::int32_t> c(a.rows(), b.cols(), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const std::int64_t av = a(i, k);
      if (av == 0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) = static_cast<std::int32_t>(
            static_cast<std::int64_t>(c(i, j)) + av * b(k, j));
      }
    }
  }
  return c;
}

/// SpMM reference: the LHS is `lhs_dense` masked by `pattern` (entries
/// outside the pattern are treated as zero).
inline Matrix<std::int32_t> reference_spmm(
    const sparse::BlockPattern& pattern, const Matrix<std::int32_t>& lhs_dense,
    const Matrix<std::int32_t>& rhs) {
  const auto mask = sparse::pattern_to_dense_mask(pattern);
  Matrix<std::int32_t> masked(lhs_dense.rows(), lhs_dense.cols(), 0);
  for (std::size_t r = 0; r < lhs_dense.rows(); ++r) {
    for (std::size_t c = 0; c < lhs_dense.cols(); ++c) {
      if (mask(r, c)) masked(r, c) = lhs_dense(r, c);
    }
  }
  return reference_gemm(masked, rhs);
}

/// SDDMM reference: sampled product, output in BCRS vector-major order.
inline sparse::Bcrs<std::int32_t> reference_sddmm(
    const sparse::BlockPattern& pattern, const Matrix<std::int32_t>& a,
    const Matrix<std::int32_t>& b) {
  MAGICUBE_CHECK(a.cols() == b.rows());
  MAGICUBE_CHECK(a.rows() == pattern.rows && b.cols() == pattern.cols);
  sparse::Bcrs<std::int32_t> out;
  out.rows = pattern.rows;
  out.cols = pattern.cols;
  out.vector_length = pattern.vector_length;
  out.row_ptr = pattern.row_ptr;
  out.col_idx = pattern.col_idx;
  const std::size_t v = static_cast<std::size_t>(pattern.vector_length);
  out.values.assign(pattern.vector_count() * v, 0);
  for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
    for (std::uint32_t i = pattern.row_ptr[r]; i < pattern.row_ptr[r + 1];
         ++i) {
      const std::size_t col = pattern.col_idx[i];
      for (std::size_t rb = 0; rb < v; ++rb) {
        std::int64_t acc = 0;
        for (std::size_t k = 0; k < a.cols(); ++k) {
          acc += static_cast<std::int64_t>(a(r * v + rb, k)) * b(k, col);
        }
        out.values[i * v + rb] = static_cast<std::int32_t>(acc);
      }
    }
  }
  return out;
}

}  // namespace magicube::core
