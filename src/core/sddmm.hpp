#pragma once
// Magicube SDDMM: C_sparse[M x N] = (A_dense[M x K] * B_dense[K x N]) sampled
// on a 1-D-block pattern (paper §IV-C).
//
// Thread-block decomposition (Fig. 8b): each block owns one vector row of
// the output pattern and a group of 16 output vectors (8 per warp); each
// accumulation step consumes BSk (= mma k) columns of A / rows of B. The
// LHS A tile (V x BSk, row-major) is staged through shared memory and
// reused by both warps; the RHS columns (B is column-major) load straight
// into registers — their layout already satisfies the mma fragment, so no
// online transpose is needed (Fig. 9).
//
// Supported precisions (Table IV): L8-R8 and L4-R4 natively, L16-R16 by
// plane emulation (2x2 plane products, weighted combine in the epilogue).
//
// The `prefetch` knob double-buffers the LHS tile as Algorithm 1 does for
// SpMM. As the paper's Fig. 13 finds, it does not pay off: the dependent
// load chain each step is the *RHS register load*, which stays on the
// critical path either way, while the duplicated buffer raises the block's
// shared-memory footprint. The cost model reflects exactly that.

#include <cstdint>
#include <optional>

#include "common/matrix.hpp"
#include "core/operands.hpp"
#include "core/plan.hpp"
#include "simt/cost_model.hpp"
#include "sparse/bcrs.hpp"

namespace magicube::core {

struct SddmmConfig {
  PrecisionPair precision = precision::L8R8;
  bool prefetch = false;
  int warps_per_block = 2;
  /// Execution engine; unset defers to default_exec_mode() (fast unless
  /// MAGICUBE_EXEC_MODE / set_default_exec_mode says otherwise). Both modes
  /// produce bit-exact results and identical counters.
  std::optional<ExecMode> mode = std::nullopt;
  /// Fast-path replay kernel; unset defers to default_replay_kernel()
  /// (panel unless MAGICUBE_REPLAY_KERNEL says otherwise). Panel and
  /// fragment replay are bit-exact with each other and with simulate.
  std::optional<ReplayKernel> replay = std::nullopt;
};

struct SddmmResult {
  sparse::Bcrs<std::int32_t> c;  // sampled output, vector-major values
  simt::KernelRun run;
};

/// Functional execution. `a` row-major M x K, `b` column-major K x N (both
/// prepared with the pair's chunking); `pattern` is the output sparsity
/// (rows == M, cols == N). K must be a multiple of the pair's mma k.
SddmmResult sddmm(const DenseOperand& a, const DenseOperand& b,
                  const sparse::BlockPattern& pattern,
                  const SddmmConfig& cfg);

/// Shared-handle entry point: identical semantics, operands aliased rather
/// than owned (the serving engine executes many concurrent kernels over one
/// cached preparation). Handles must be non-null.
SddmmResult sddmm(const DenseOperandHandle& a, const DenseOperandHandle& b,
                  const sparse::BlockPattern& pattern, const SddmmConfig& cfg);

/// Plan-once/run-many entry point: replays a prebuilt ExecutionPlan when
/// the resolved mode is fast, falls back to the lane-accurate simulation
/// otherwise. The plan must match (pattern, K, config); asserted.
SddmmResult sddmm(const DenseOperand& a, const DenseOperand& b,
                  const sparse::BlockPattern& pattern, const SddmmConfig& cfg,
                  const SddmmPlan& plan);
SddmmResult sddmm(const DenseOperandHandle& a, const DenseOperandHandle& b,
                  const sparse::BlockPattern& pattern, const SddmmConfig& cfg,
                  const SddmmPlanHandle& plan);

/// Analytic counters for the same kernel (no data).
simt::KernelRun sddmm_estimate(const sparse::BlockPattern& pattern,
                               std::size_t k_depth, const SddmmConfig& cfg);

/// Useful-operation count: 2 * nnz * K.
std::uint64_t sddmm_useful_ops(const sparse::BlockPattern& pattern,
                               std::size_t k_depth);

}  // namespace magicube::core
