#pragma once
// Data-marshalling building blocks of the online transpose (§IV-B2..B3).
//
// * RhsTileLayout — the shared-memory image of one BSk x BSn RHS block.
//   The conflict-free variant pads 8 int32 words after every 64 stored
//   words (Fig. 4), which spreads a warp's strided column reads over all
//   32 banks; the basic variant omits the padding and provably incurs
//   4-way conflicts (asserted by tests, measured by Fig. 11's ablation).
//
// * transpose_4x4_bytes — the int8 register transpose of Fig. 5: a thread
//   turns 4 loaded words (4 rows x 4 int8 columns) into 4 registers each
//   holding one column's 4 consecutive-k int8 values.
//
// * transpose_int4_naive / transpose_int4_shuffled — the int4 register
//   transposes of §IV-B3. The naive form manipulates individual nibbles
//   (the "intensive bit-wise operations" the paper avoids); the shuffled
//   form assumes the SR-BCRS column indices were block-of-8 shuffled by
//   {0,2,4,6,1,3,5,7} and then needs only 8 int32-granularity bitwise ops
//   per 16 int4 values (Fig. 7), landing results in natural k order.

#include <array>
#include <cstdint>

namespace magicube::core {

struct RhsTileLayout {
  int bsk = 16;        // rows of the tile (= stride = mma k)
  int row_words = 16;  // 32-bit words per row (BSn * rhs_bits / 32)
  bool padded = true;  // conflict-free padding enabled

  /// Word offset where row r starts (padding: +8 words per 64 stored).
  std::size_t row_start_word(int r) const {
    const std::size_t base =
        static_cast<std::size_t>(r) * static_cast<std::size_t>(row_words);
    return padded ? base + base / 64 * 8 : base;
  }
  /// Total words the tile occupies in shared memory.
  std::size_t total_words() const {
    const std::size_t base = static_cast<std::size_t>(bsk) *
                             static_cast<std::size_t>(row_words);
    return padded ? base + (base + 63) / 64 * 8 : base;
  }
};

/// Warp-level ALU instruction costs of the transposes (counted once per
/// warp by the kernels; every lane executes the same instruction stream).
/// A thread only materializes the half of its loaded 8x8 int4 block that
/// feeds its own mma fragments (the other half is its partner thread's),
/// so the shuffled path costs 8 PRMT for the byte stage plus 16 bitwise ops
/// for 32 int4 values — the paper's "8 bitwise operations per 16 int4".
/// The naive cost assumes a competently written direct transpose (PRMT
/// byte stage + shift/mask/or fixups); a fully scalar nibble loop would be
/// ~3 ops per nibble. Calibrated so the end-to-end shuffle gain lands near
/// the paper's measured ~1.45x.
inline constexpr std::uint64_t kInt8TransposeAluOps = 8;       // 8 PRMT
inline constexpr std::uint64_t kInt4NaiveAluOps = 8 + 48;      // see above
inline constexpr std::uint64_t kInt4ShuffledAluOps = 8 + 16;   // Fig. 7

/// Fig. 5: out[i] = byte-column i of the four input words
/// (out[i] byte j == byte i of in[j]). Costs kInt8TransposeAluOps per warp.
std::array<std::uint32_t, 4> transpose_4x4_bytes(
    const std::array<std::uint32_t, 4>& in);

/// Naive int4 transpose: in[r] holds 8 nibbles (columns 0..7 of k-row r, in
/// natural row order); out[col] holds column `col` across the 8 rows in
/// natural order. Pure nibble surgery: kInt4NaiveAluOps per warp.
std::array<std::uint32_t, 8> transpose_int4_naive(
    const std::array<std::uint32_t, 8>& in);

/// Fig. 7 fast path: `in` rows arrive in shuffled order
/// {0,2,4,6,1,3,5,7}; the byte transpose plus 8 int32 bitwise ops per
/// column pair emit all 8 columns in natural k order, costing
/// kInt4ShuffledAluOps per warp.
std::array<std::uint32_t, 8> transpose_int4_shuffled(
    const std::array<std::uint32_t, 8>& in);

/// The output-column permutation of the online transpose: mma `i` of a warp
/// covers warp-local columns g(i, j) for tile column j. On the int8 path
/// g = 4j + i; on the int4 path g = 8*(j%4) + 4*(j/4) + i.
constexpr int spmm_output_col_int8(int mma, int tile_col) {
  return 4 * tile_col + mma;
}
constexpr int spmm_output_col_int4(int mma, int tile_col) {
  return 8 * (tile_col % 4) + 4 * (tile_col / 4) + mma;
}

/// Lane schedule of the phased RHS fragment loads (§IV-B2): during phase
/// `ph`, lane `t` of warp `w` reads stride row spmm_rhs_k_row(...) at word
/// column spmm_rhs_word_col(...) of the staged BSk x BSn tile. Shared by
/// the simulated kernel and the execution-plan builder so both derive the
/// identical schedule from one definition.
constexpr int spmm_rhs_k_row(bool int4path, int ph, int lane) {
  return int4path ? 8 * (lane % 4) + ph : 4 * (lane % 4) + ph;
}
constexpr int spmm_rhs_word_col(bool int4path, int w, int lane) {
  return int4path ? w * 4 + (lane / 4) % 4 : w * 8 + lane / 4;
}

}  // namespace magicube::core
