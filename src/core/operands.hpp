#pragma once
// Kernel-ready operand containers for Magicube SpMM / SDDMM.
//
// The LHS sparse operand is an SR-BCRS structure plus one value buffer per
// *emulation plane*: native precisions (s8, s4) have a single plane, while
// emulated precisions (s16, s12, s8-over-int4) are pre-decomposed into
// mma-native chunks (§IV-D), the top chunk signed, lower chunks unsigned.
// Decomposition commutes with the SR-BCRS layout, so plane buffers share the
// structure's slot ordering (including zero padding, which decomposes to
// all-zero chunks).
//
// The RHS dense operand is row-major for SpMM (the online-transpose target)
// and column-major for SDDMM, with plane decomposition for emulated RHS.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/matrix.hpp"
#include "common/packed.hpp"
#include "common/precision.hpp"
#include "quant/decompose.hpp"
#include "sparse/pattern.hpp"
#include "sparse/sr_bcrs.hpp"

namespace magicube::core {

/// Reduction dimension (= SR-BCRS stride = mma k) for a precision pair:
/// 32 when the kernel runs on the int4 datapath (4-bit RHS), else 16.
constexpr int stride_for(PrecisionPair p) {
  return bits_of(p.rhs) <= 4 ? 32 : 16;
}
/// Chunk width operand planes decompose to for this pair. BOTH slots key
/// off the RHS datapath: 4-bit chunks on the int4 path, 8-bit otherwise.
constexpr int chunk_bits(PrecisionPair p) {
  return bits_of(p.rhs) <= 4 ? 4 : 8;
}
/// Named per-slot accessors (one rule today; kept separate so call sites
/// say which operand they are preparing).
constexpr int lhs_chunk_bits(PrecisionPair p) { return chunk_bits(p); }
constexpr int rhs_chunk_bits(PrecisionPair p) { return chunk_bits(p); }

/// One operand plane: values in SR-BCRS slot order, with the algebraic
/// weight and signedness the emulation sum needs.
struct OperandPlane {
  PackedBuffer values;
  std::int64_t weight = 1;
  bool is_signed = true;
};

/// LHS sparse operand (structure + planes).
struct SparseOperand {
  sparse::SrBcrs structure;  // col indices / pointers; `values` holds plane 0
  std::vector<OperandPlane> planes;
  Scalar logical_type = Scalar::s8;

  std::size_t plane_count() const { return planes.size(); }
  /// Heap bytes held by the prepared operand (cache accounting).
  std::size_t footprint_bytes() const;
};

/// RHS dense operand for SpMM (row-major) or SDDMM (column-major).
struct DenseOperand {
  std::size_t rows = 0;
  std::size_t cols = 0;
  bool row_major = true;
  std::vector<OperandPlane> planes;  // element (r,c) at r*cols+c (row-major)
  Scalar logical_type = Scalar::s8;

  std::size_t plane_count() const { return planes.size(); }
  std::size_t flat_index(std::size_t r, std::size_t c) const {
    return row_major ? r * cols + c : c * rows + r;
  }
  /// Logical (recomposed) value at (r, c).
  std::int64_t value_at(std::size_t r, std::size_t c) const {
    std::int64_t v = 0;
    for (const auto& p : planes) v += p.weight * p.values.get(flat_index(r, c));
    return v;
  }
  /// Heap bytes held by the prepared operand (cache accounting).
  std::size_t footprint_bytes() const;
};

/// Immutable shared handles over prepared operands. Preparation (quantize →
/// SR-BCRS encode → shuffle → plane decomposition) is the expensive step the
/// serving engine amortizes: once built, an operand is never mutated, so the
/// operand cache and the batch scheduler alias one prepared copy across
/// concurrent kernel executions safely.
using SparseOperandHandle = std::shared_ptr<const SparseOperand>;
using DenseOperandHandle = std::shared_ptr<const DenseOperand>;

/// Builds the SpMM LHS: SR-BCRS at the pair's stride, optional block-of-8
/// column shuffling (required by the int4 fast transpose), plane
/// decomposition per the pair's datapath.
SparseOperand prepare_spmm_lhs(const sparse::BlockPattern& pattern,
                               const Matrix<std::int32_t>& dense_values,
                               PrecisionPair precision, bool shuffle);

/// Builds a dense operand from integer values already in range for `type`.
DenseOperand prepare_dense(const Matrix<std::int32_t>& values, Scalar type,
                           bool row_major, int chunk_bits_if_emulated);

/// Convenience for SpMM RHS (row-major; emulated via the pair's datapath).
DenseOperand prepare_spmm_rhs(const Matrix<std::int32_t>& values,
                              PrecisionPair precision);

/// Shared-handle variants of the prepare entry points (the forms the serving
/// engine caches and schedules).
SparseOperandHandle prepare_spmm_lhs_shared(
    const sparse::BlockPattern& pattern,
    const Matrix<std::int32_t>& dense_values, PrecisionPair precision,
    bool shuffle);
DenseOperandHandle prepare_dense_shared(const Matrix<std::int32_t>& values,
                                        Scalar type, bool row_major,
                                        int chunk_bits_if_emulated);
DenseOperandHandle prepare_spmm_rhs_shared(const Matrix<std::int32_t>& values,
                                           PrecisionPair precision);

/// Random dense integer matrix covering the full range of `type`.
Matrix<std::int32_t> random_values(std::size_t rows, std::size_t cols,
                                   Scalar type, Rng& rng);

}  // namespace magicube::core
