#include "core/plan.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"

namespace magicube::core {

const char* to_string(ExecMode m) {
  switch (m) {
    case ExecMode::simulate: return "simulate";
    case ExecMode::fast: return "fast";
  }
  return "?";
}

namespace {

ExecMode initial_exec_mode() {
  if (const char* e = std::getenv("MAGICUBE_EXEC_MODE")) {
    if (std::strcmp(e, "simulate") == 0) return ExecMode::simulate;
    if (std::strcmp(e, "fast") == 0) return ExecMode::fast;
    MAGICUBE_CHECK_MSG(false, "MAGICUBE_EXEC_MODE must be 'simulate' or "
                              "'fast', got '" << e << "'");
  }
  return ExecMode::fast;
}

std::atomic<ExecMode>& exec_mode_slot() {
  static std::atomic<ExecMode> mode{initial_exec_mode()};
  return mode;
}

}  // namespace

ExecMode default_exec_mode() {
  return exec_mode_slot().load(std::memory_order_relaxed);
}

void set_default_exec_mode(ExecMode m) {
  exec_mode_slot().store(m, std::memory_order_relaxed);
}

const char* to_string(ReplayKernel k) {
  switch (k) {
    case ReplayKernel::panel: return "panel";
    case ReplayKernel::fragment: return "fragment";
  }
  return "?";
}

namespace {

ReplayKernel initial_replay_kernel() {
  if (const char* e = std::getenv("MAGICUBE_REPLAY_KERNEL")) {
    if (std::strcmp(e, "panel") == 0) return ReplayKernel::panel;
    if (std::strcmp(e, "fragment") == 0) return ReplayKernel::fragment;
    MAGICUBE_CHECK_MSG(false, "MAGICUBE_REPLAY_KERNEL must be 'panel' or "
                              "'fragment', got '" << e << "'");
  }
  return ReplayKernel::panel;
}

std::atomic<ReplayKernel>& replay_kernel_slot() {
  static std::atomic<ReplayKernel> kernel{initial_replay_kernel()};
  return kernel;
}

}  // namespace

ReplayKernel default_replay_kernel() {
  return replay_kernel_slot().load(std::memory_order_relaxed);
}

void set_default_replay_kernel(ReplayKernel k) {
  replay_kernel_slot().store(k, std::memory_order_relaxed);
}

const char* to_string(PanelKernelId id) {
  switch (id) {
    case PanelKernelId::generic: return "generic";
    case PanelKernelId::fixed64: return "fixed64";
    case PanelKernelId::stacked: return "stacked";
    case PanelKernelId::fused: return "fused";
    case PanelKernelId::empty: return "empty";
  }
  return "?";
}

const char* to_string(SddmmKernelId id) {
  switch (id) {
    case SddmmKernelId::generic: return "generic";
    case SddmmKernelId::fused_single: return "fused_single";
    case SddmmKernelId::tail: return "tail";
  }
  return "?";
}

namespace {

bool initial_panel_buckets() {
  if (const char* e = std::getenv("MAGICUBE_PANEL_BUCKETS")) {
    if (std::strcmp(e, "on") == 0) return true;
    if (std::strcmp(e, "off") == 0) return false;
    MAGICUBE_CHECK_MSG(false, "MAGICUBE_PANEL_BUCKETS must be 'on' or "
                              "'off', got '" << e << "'");
  }
  return true;
}

std::atomic<bool>& panel_buckets_slot() {
  static std::atomic<bool> on{initial_panel_buckets()};
  return on;
}

}  // namespace

bool default_panel_buckets() {
  return panel_buckets_slot().load(std::memory_order_relaxed);
}

void set_default_panel_buckets(bool on) {
  panel_buckets_slot().store(on, std::memory_order_relaxed);
}

namespace detail {

SpmmGeom make_spmm_geom(const SparseOperand& a_meta, int q_planes,
                        std::size_t n, std::size_t k, const SpmmConfig& cfg) {
  SpmmGeom g;
  g.int4path = stride_for(cfg.precision) == 32;
  g.stride = g.int4path ? 32 : 16;
  g.chunk = g.int4path ? 4 : 8;
  g.epw = 32 / g.chunk;
  g.row_words = static_cast<int>(cfg.bsn) * g.chunk / 32;
  g.phases = g.int4path ? 8 : 4;
  g.rows_per_frag = g.int4path ? 8 : 4;

  g.v = a_meta.structure.vector_length;
  g.p = static_cast<int>(a_meta.plane_count());
  g.q = q_planes;
  g.s = std::max(1, std::min(8 / g.v, g.p));
  g.g = (g.p + g.s - 1) / g.s;
  g.lhs_signed = is_signed(a_meta.logical_type);
  g.bias_correct = g.lhs_signed && g.group_size(g.g - 1) > 1;

  g.n = n;
  g.k = k;
  g.bsn = static_cast<std::size_t>(cfg.bsn);
  g.col_blocks = n / g.bsn;
  g.padded = cfg.variant != SpmmVariant::basic;
  g.prefetch = cfg.variant == SpmmVariant::conflict_free_prefetch ||
               cfg.variant == SpmmVariant::full;
  g.shuffle = needs_shuffle(cfg);
  g.layout = RhsTileLayout{g.stride, g.row_words, g.padded};

  // Shared memory map: [indices][LHS planes][RHS planes].
  g.idx_base = 0;
  g.lhs_base = static_cast<std::size_t>(g.stride);
  g.lhs_words_per_plane = static_cast<std::size_t>(4 * g.v);
  g.rhs_base = g.lhs_base +
               static_cast<std::size_t>(g.p) * g.lhs_words_per_plane;
  g.smem_words = g.rhs_base +
                 static_cast<std::size_t>(g.q) * g.layout.total_words();
  return g;
}

std::size_t spmm_smem_bytes(const SpmmGeom& g) {
  // Algorithm 1 double-buffers the LHS values + indices when prefetching.
  const std::size_t lhs_part =
      (static_cast<std::size_t>(g.stride) +
       static_cast<std::size_t>(g.p) * g.lhs_words_per_plane) *
      (g.prefetch ? 2 : 1);
  const std::size_t rhs_part =
      static_cast<std::size_t>(g.q) * g.layout.total_words();
  return 4 * (lhs_part + rhs_part);
}

namespace {

// ---- Closed-form per-event helpers (shared derivations) -------------------

/// Sectors of one LHS stride-tile load (16V bytes, 16V-aligned).
std::uint32_t lhs_tile_sectors(const SpmmGeom& g) {
  return static_cast<std::uint32_t>(
      (16u * static_cast<unsigned>(g.v) + 31) / 32);
}
/// Sectors of one index load (stride * 4 bytes, aligned).
std::uint32_t idx_sectors(const SpmmGeom& g) {
  return static_cast<std::uint32_t>(g.stride * 4 / 32);
}
/// Sectors of one RHS row-segment load (bsn * chunk / 8 bytes, aligned).
std::uint32_t rhs_row_sectors(const SpmmGeom& g) {
  return static_cast<std::uint32_t>(g.bsn * static_cast<std::size_t>(g.chunk) /
                                    8 / 32);
}
/// Shared-memory transactions of one RHS fragment-load phase.
std::uint32_t rhs_phase_transactions(const SpmmGeom& g) {
  // Padded layout: all 32 banks distinct (proved in marshal.hpp comment and
  // asserted by tests). Unpadded: the warp touches only 8 distinct banks
  // with 4 lanes each on both datapaths -> 4-way conflict.
  return g.padded ? 1 : 4;
}

}  // namespace

SpmmEpilogueCounts spmm_epilogue_counts(const SpmmGeom& g) {
  SpmmEpilogueCounts e{};
  // 2 warps x 4 mma x 2 accumulator registers, swizzled -> conflict-free.
  e.smem_store_req = e.smem_store_trans = 2 * 4 * 2;
  // Read back V rows of bsn int32 (bsn/32 = 2 requests per row).
  e.smem_load_req = e.smem_load_trans =
      static_cast<std::uint64_t>(g.v) * (g.bsn / 32);
  e.gmem_store_req = static_cast<std::uint64_t>(g.v) * (g.bsn / 32);
  // 32 lanes x 4B consecutive = 128B = 4 sectors per request.
  e.gmem_store_sectors = e.gmem_store_req * 4;
  return e;
}

std::uint64_t spmm_dram_bytes(const SpmmGeom& g, std::size_t slots,
                              std::uint64_t valid_vectors,
                              std::size_t vector_rows) {
  const std::uint64_t a_bytes =
      static_cast<std::uint64_t>(slots) * static_cast<std::uint64_t>(g.v) *
      static_cast<std::uint64_t>(g.chunk) / 8 * static_cast<std::uint64_t>(g.p);
  const std::uint64_t idx_bytes = static_cast<std::uint64_t>(slots) * 4;
  const std::uint64_t b_size = static_cast<std::uint64_t>(g.k) * g.n *
                               static_cast<std::uint64_t>(g.chunk) / 8 *
                               static_cast<std::uint64_t>(g.q);
  const std::uint64_t b_loaded =
      valid_vectors * static_cast<std::uint64_t>(g.q) * g.col_blocks *
      (g.bsn * static_cast<std::uint64_t>(g.chunk) / 8);
  const std::uint64_t c_bytes = static_cast<std::uint64_t>(vector_rows) *
                                static_cast<std::uint64_t>(g.v) * g.n * 4;
  return a_bytes + idx_bytes + std::min(b_size, b_loaded) + c_bytes;
}

simt::KernelCounters spmm_block_counters(const SpmmGeom& g,
                                         std::uint64_t steps,
                                         std::uint64_t valid) {
  simt::KernelCounters kc;
  const std::uint64_t p = static_cast<std::uint64_t>(g.p);
  const std::uint64_t q = static_cast<std::uint64_t>(g.q);
  const std::uint64_t grp = static_cast<std::uint64_t>(g.g);
  const std::uint64_t phases = static_cast<std::uint64_t>(g.phases);
  const std::uint64_t stride = static_cast<std::uint64_t>(g.stride);

  // RHS rows are batched 32/row_words per request (2 on int8, 4 on int4).
  const std::uint64_t rhs_reqs_per_step =
      stride / (32 / static_cast<std::uint64_t>(g.row_words));
  kc.gmem_load_requests = steps * (1 + p + rhs_reqs_per_step * q);
  kc.gmem_load_sectors = steps * (idx_sectors(g) + p * lhs_tile_sectors(g)) +
                         valid * q * rhs_row_sectors(g);
  kc.smem_store_requests = steps * (1 + p + rhs_reqs_per_step * q);
  kc.smem_store_transactions = kc.smem_store_requests;
  kc.smem_load_requests = steps * (1 + 2 * (grp + q * phases));
  kc.smem_load_transactions =
      steps * (1 + 2 * (grp + q * phases * rhs_phase_transactions(g)));

  const std::uint64_t mmas = steps * 8 * grp * q;
  (g.int4path ? kc.mma_int4 : kc.mma_int8) = mmas;

  const std::uint64_t transpose_alu =
      g.int4path ? (g.shuffle ? kInt4ShuffledAluOps : kInt4NaiveAluOps)
                 : kInt8TransposeAluOps;
  kc.alu_ops = steps * 2 * q * transpose_alu;
  if (g.bias_correct) {
    kc.alu_ops += steps * 2;                    // bias encode, per warp
    kc.alu_ops += steps * 2 * q * 4 * phases;   // column-sum updates
  }
  kc.alu_ops += 32 * p * q;                     // epilogue combine
  kc.shfl_ops = 16 * stack_shfls(g.s) * grp * q;
  kc.syncthreads = steps * (g.prefetch ? 3u : 2u) + 1;

  const SpmmEpilogueCounts e = spmm_epilogue_counts(g);
  kc.smem_store_requests += e.smem_store_req;
  kc.smem_store_transactions += e.smem_store_trans;
  kc.smem_load_requests += e.smem_load_req;
  kc.smem_load_transactions += e.smem_load_trans;
  kc.gmem_store_requests += e.gmem_store_req;
  kc.gmem_store_sectors += e.gmem_store_sectors;
  return kc;
}

SddmmGeom make_sddmm_geom(PrecisionPair pr, int p_planes, int q_planes,
                          int v, std::size_t k, bool prefetch) {
  SddmmGeom g;
  g.int4path = stride_for(pr) == 32;
  g.stride = g.int4path ? 32 : 16;
  g.chunk = g.int4path ? 4 : 8;
  g.epw = 32 / g.chunk;
  g.v = v;
  g.p = p_planes;
  g.q = q_planes;
  g.k = k;
  g.steps = k / static_cast<std::size_t>(g.stride);
  g.prefetch = prefetch;
  g.lhs_words_per_plane = static_cast<std::size_t>(4 * v);
  g.smem_bytes = 4 * static_cast<std::size_t>(g.p) * g.lhs_words_per_plane *
                 (prefetch ? 2 : 1);
  return g;
}

SddmmBlockMap make_sddmm_block_map(const sparse::BlockPattern& pattern) {
  SddmmBlockMap map;
  for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
    const std::uint32_t n_r =
        static_cast<std::uint32_t>(pattern.vectors_in_row(r));
    for (std::uint32_t base = 0; base < n_r; base += kSddmmSlotsPerBlock) {
      map.row.push_back(static_cast<std::uint32_t>(r));
      map.slot_base.push_back(pattern.row_ptr[r] + base);
      map.valid.push_back(
          std::min<std::uint32_t>(kSddmmSlotsPerBlock, n_r - base));
    }
  }
  return map;
}

SddmmEpilogueCounts sddmm_epilogue_counts(const SddmmGeom& g,
                                          std::uint64_t valid) {
  SddmmEpilogueCounts e{};
  e.smem_store_req = 2 * 2;  // 2 warps x 2 accumulator registers
  const std::uint64_t bytes = valid * static_cast<std::uint64_t>(g.v) * 4;
  e.gmem_store_req = (bytes + 127) / 128;  // 32 lanes x 4B per request
  e.smem_load_req = e.gmem_store_req;
  e.gmem_store_sectors = (bytes + 31) / 32;
  return e;
}

namespace {

/// Sectors of one SDDMM LHS tile row-segment load (V rows of 16 bytes each,
/// rows strided by K; each 16-byte segment stays inside one 32-byte sector
/// given K % 32 == 0).
std::uint32_t sddmm_lhs_tile_sectors(const SddmmGeom& g) {
  return static_cast<std::uint32_t>(g.v);
}

/// Sectors of the index read: `valid` consecutive u32 starting at an
/// arbitrary (row-pointer-determined) offset.
std::uint32_t sddmm_idx_sectors(std::size_t slot_base, std::uint64_t valid) {
  const std::size_t first = slot_base * 4 / 32;
  const std::size_t last = ((slot_base + valid) * 4 - 1) / 32;
  return static_cast<std::uint32_t>(last - first + 1);
}

}  // namespace

simt::KernelCounters sddmm_block_counters(const SddmmGeom& g,
                                          std::size_t slot_base,
                                          std::uint64_t valid) {
  simt::KernelCounters kc;
  const std::uint64_t p = static_cast<std::uint64_t>(g.p);
  const std::uint64_t q = static_cast<std::uint64_t>(g.q);
  const std::uint64_t steps = g.steps;

  // Output column indices for this block.
  kc.gmem_load_requests = 1;
  kc.gmem_load_sectors = sddmm_idx_sectors(slot_base, valid);
  // LHS tile per step per plane: gmem -> smem.
  kc.gmem_load_requests += steps * p;
  kc.gmem_load_sectors += steps * p * sddmm_lhs_tile_sectors(g);
  kc.smem_store_requests = steps * p;
  kc.smem_store_transactions = steps * p;
  // LHS fragment reads: per warp per step per plane (consecutive words).
  kc.smem_load_requests = steps * 2 * p;
  kc.smem_load_transactions = steps * 2 * p;
  // RHS register loads: per warp per step per plane; one sector per valid
  // column (16-byte column segments, disjoint sectors across columns).
  kc.gmem_load_requests += steps * 2 * q;
  kc.gmem_load_sectors += steps * q * valid;
  // mma: per warp per step, full plane cross product.
  const std::uint64_t mmas = steps * 2 * p * q;
  (g.int4path ? kc.mma_int4 : kc.mma_int8) = mmas;
  // Epilogue combine (weighted plane sum; trivial for native precisions).
  kc.alu_ops = 2 * 2 * p * q;
  kc.syncthreads = steps * (g.prefetch ? 2u : 1u) + 1;

  const SddmmEpilogueCounts e = sddmm_epilogue_counts(g, valid);
  kc.smem_store_requests += e.smem_store_req;
  kc.smem_store_transactions += e.smem_store_req;
  kc.smem_load_requests += e.smem_load_req;
  kc.smem_load_transactions += e.smem_load_req;
  kc.gmem_store_requests += e.gmem_store_req;
  kc.gmem_store_sectors += e.gmem_store_sectors;
  return kc;
}

PanelKernelId classify_spmm_row(const SpmmGeom& g, std::uint64_t steps) {
  if (steps == 0) return PanelKernelId::empty;
  // Defense in depth: plan building rejects bsn != 64 outright, but any
  // future tile width must demote to the runtime-width kernel, never the
  // fixed-width ones.
  if (g.bsn != 64) return PanelKernelId::generic;
  if (g.g == 1 && g.q == 1 && !g.bias_correct) return PanelKernelId::fused;
  if (g.s > 1 && g.group_size(g.g - 1) < g.s) return PanelKernelId::stacked;
  return PanelKernelId::fixed64;
}

SddmmKernelId classify_sddmm_block(const SddmmGeom& g, std::uint64_t valid) {
  if (valid < kSddmmSlotsPerBlock) return SddmmKernelId::tail;
  if (g.p == 1 && g.q == 1) return SddmmKernelId::fused_single;
  return SddmmKernelId::generic;
}

std::uint64_t sddmm_dram_bytes(const SddmmGeom& g,
                               const sparse::BlockPattern& pattern) {
  const std::uint64_t m = pattern.rows, n = pattern.cols;
  const std::uint64_t chunk = static_cast<std::uint64_t>(g.chunk);
  const std::uint64_t a_size =
      m * g.k * chunk / 8 * static_cast<std::uint64_t>(g.p);
  const std::uint64_t b_size =
      g.k * n * chunk / 8 * static_cast<std::uint64_t>(g.q);
  const std::uint64_t b_loaded = pattern.vector_count() * g.k * chunk / 8 *
                                 static_cast<std::uint64_t>(g.q);
  const std::uint64_t c_bytes = pattern.nnz() * 4;
  const std::uint64_t idx_bytes = pattern.vector_count() * 4;
  return a_size + std::min(b_size, b_loaded) + c_bytes + idx_bytes;
}

}  // namespace detail

// ---- Plan builders --------------------------------------------------------

std::size_t SpmmPlan::footprint_bytes() const {
  return sizeof(SpmmPlan) +
         a_frag_src.size() * sizeof(std::array<LaneSrc, 32>) +
         (rhs_k_row.size() + rhs_word_col.size()) *
             sizeof(std::array<std::int8_t, 32>) +
         rhs_row_base.size() * sizeof(std::size_t) +
         a_panel_src.size() * sizeof(std::array<PanelRow, 8>) +
         row_kernel.size() * sizeof(std::uint8_t);
}

SpmmPlanHandle build_spmm_plan(const SparseOperand& a, std::size_t n_cols,
                               const SpmmConfig& cfg) {
  const sparse::SrBcrs& sr = a.structure;
  MAGICUBE_CHECK_MSG(sr.stride == stride_for(cfg.precision),
                     "LHS stride does not match the precision datapath");
  MAGICUBE_CHECK_MSG(sr.shuffled == needs_shuffle(cfg),
                     "LHS shuffle state does not match the variant");
  MAGICUBE_CHECK_MSG(cfg.bsn == 64,
                     "the execution engines implement the 64-column block "
                     "tile only (2 warps x 32 output columns)");
  MAGICUBE_CHECK_MSG(n_cols % static_cast<std::size_t>(cfg.bsn) == 0,
                     "N must be a multiple of the block tile width");

  const int q_planes =
      quant::plane_count(cfg.precision.rhs, rhs_chunk_bits(cfg.precision));
  auto plan = std::make_shared<SpmmPlan>();
  detail::SpmmGeom& g = plan->geom;
  g = detail::make_spmm_geom(a, q_planes, n_cols, sr.cols, cfg);

  // LHS fragment schedule: group -> lane -> (plane, tile word). Mirrors the
  // phase-4 fragment addressing of the simulated kernel with the smem map
  // removed (the staged tile is a contiguous copy of the plane bytes).
  plan->a_frag_src.resize(static_cast<std::size_t>(g.g));
  for (int grp = 0; grp < g.g; ++grp) {
    auto& lanes = plan->a_frag_src[static_cast<std::size_t>(grp)];
    for (int lane = 0; lane < 32; ++lane) {
      const int row = lane / 4;
      const int lp = row / g.v;
      const int pl = grp * g.s + lp;
      if (pl >= g.p || lp >= g.group_size(grp)) continue;
      const int rb = row % g.v;
      lanes[static_cast<std::size_t>(lane)] = {
          static_cast<std::int8_t>(pl),
          static_cast<std::int8_t>(rb * 4 + lane % 4)};
      if (grp == g.g - 1 && pl == g.p - 1) {
        plan->bias_lane[static_cast<std::size_t>(lane)] = 1;
      }
    }
  }

  // Panel schedule: the same plane stacking by tile coordinates. Panel row
  // rr = lp * V + rb decodes tile row rb of plane grp * s + lp; rows beyond
  // the group's stacked planes stay inactive (the panel kernel zeroes them
  // and the epilogue never reads their accumulators).
  plan->a_panel_src.resize(static_cast<std::size_t>(g.g));
  for (int grp = 0; grp < g.g; ++grp) {
    auto& rows = plan->a_panel_src[static_cast<std::size_t>(grp)];
    for (int rr = 0; rr < 8; ++rr) {
      const int lp = rr / g.v;
      const int pl = grp * g.s + lp;
      if (pl >= g.p || lp >= g.group_size(grp)) continue;
      rows[static_cast<std::size_t>(rr)] = {
          static_cast<std::int8_t>(pl), static_cast<std::int8_t>(rr % g.v),
          static_cast<std::uint8_t>(
              g.bias_correct && grp == g.g - 1 && g.is_top(pl) ? 1 : 0)};
    }
  }

  // B-panel k schedule: where natural reduction row k lives within the
  // stride tile's index slots (inverse block-of-8 shuffle when the indices
  // are stored shuffled).
  for (int k = 0; k < g.stride; ++k) {
    int pos = k;
    if (g.shuffle) {
      const int base = k / 8 * 8;
      for (int p = 0; p < 8; ++p) {
        if (sparse::kShuffleOrder[static_cast<std::size_t>(p)] == k % 8) {
          pos = base + p;
          break;
        }
      }
    }
    plan->panel_k_slot[static_cast<std::size_t>(k)] =
        static_cast<std::uint8_t>(pos);
  }

  // RHS gather schedule of the online transpose (Fig. 4 staging + the
  // phased fragment reads collapsed into direct row/word coordinates).
  plan->rhs_k_row.resize(static_cast<std::size_t>(g.phases));
  plan->rhs_word_col.resize(static_cast<std::size_t>(2 * g.phases));
  for (int ph = 0; ph < g.phases; ++ph) {
    for (int lane = 0; lane < 32; ++lane) {
      plan->rhs_k_row[static_cast<std::size_t>(ph)]
                     [static_cast<std::size_t>(lane)] =
          static_cast<std::int8_t>(spmm_rhs_k_row(g.int4path, ph, lane));
      for (int w = 0; w < 2; ++w) {
        plan->rhs_word_col[static_cast<std::size_t>(w * g.phases + ph)]
                          [static_cast<std::size_t>(lane)] =
            static_cast<std::int8_t>(spmm_rhs_word_col(g.int4path, w, lane));
      }
    }
  }

  // Per-slot RHS row bases: the SR-BCRS column indices resolved to byte
  // offsets once, padding marked.
  plan->rhs_row_base.resize(sr.slot_count());
  const std::size_t row_bytes =
      g.n * static_cast<std::size_t>(g.chunk) / 8;
  for (std::size_t slot = 0; slot < sr.slot_count(); ++slot) {
    const std::uint32_t col = sr.col_idx[slot];
    plan->rhs_row_base[slot] =
        col == sparse::kInvalidCol ? kNoRhsRow
                                   : static_cast<std::size_t>(col) * row_bytes;
  }

  // Analytic KernelRun: the estimate-equals-execute invariant makes this
  // exactly what the lane-accurate simulation would count.
  simt::KernelRun& run = plan->run;
  run.launch.grid_blocks = sr.vector_rows() * g.col_blocks;
  run.launch.warps_per_block = cfg.warps_per_block;
  run.launch.smem_bytes_per_block = detail::spmm_smem_bytes(g);
  run.pipeline.prefetch = g.prefetch;

  std::uint64_t total_steps = 0, valid_vectors = 0;
  plan->row_kernel.resize(sr.vector_rows());
  for (std::size_t r = 0; r < sr.vector_rows(); ++r) {
    const std::uint64_t steps = sr.strides_in_row(r);
    const std::uint64_t valid = sr.valid_vectors_in_row(r);
    total_steps += steps;
    valid_vectors += valid;
    const PanelKernelId id = detail::classify_spmm_row(g, steps);
    plan->row_kernel[r] = static_cast<std::uint8_t>(id);
    run.counters.spmm_bucket_blocks[static_cast<std::size_t>(id)] +=
        g.col_blocks;
    simt::KernelCounters kc = detail::spmm_block_counters(g, steps, valid);
    kc *= g.col_blocks;  // every column tile of this row counts identically
    run.counters += kc;
  }
  run.pipeline.total_steps = total_steps * g.col_blocks;
  run.counters.dram_bytes = detail::spmm_dram_bytes(
      g, sr.slot_count(), valid_vectors, sr.vector_rows());
  return plan;
}

SpmmPlanHandle build_spmm_plan(const sparse::BlockPattern& pattern,
                               std::size_t n_cols, const SpmmConfig& cfg) {
  pattern.validate();
  // Encode the SR-BCRS *structure* only (pointers + padded column indices,
  // shuffled when the datapath requires it): the plan never reads values,
  // so this matches build_sr_bcrs slot for slot at O(slots) with no value
  // buffer in sight.
  SparseOperand meta;
  sparse::SrBcrs& sr = meta.structure;
  sr.rows = pattern.rows;
  sr.cols = pattern.cols;
  sr.vector_length = pattern.vector_length;
  sr.stride = stride_for(cfg.precision);
  const std::size_t st = static_cast<std::size_t>(sr.stride);
  const std::size_t vr = pattern.vector_rows();
  sr.first_ptr.resize(vr);
  sr.end_ptr.resize(vr);
  std::size_t slots = 0;
  for (std::size_t r = 0; r < vr; ++r) {
    sr.first_ptr[r] = static_cast<std::uint32_t>(slots);
    slots += (pattern.vectors_in_row(r) + st - 1) / st * st;
    sr.end_ptr[r] = static_cast<std::uint32_t>(slots);
  }
  sr.col_idx.assign(slots, sparse::kInvalidCol);
  for (std::size_t r = 0; r < vr; ++r) {
    const std::size_t n = pattern.vectors_in_row(r);
    for (std::size_t j = 0; j < n; ++j) {
      sr.col_idx[sr.first_ptr[r] + j] = pattern.col_idx[pattern.row_ptr[r] + j];
    }
  }
  if (needs_shuffle(cfg)) {
    // Permutes only the column indices; the empty value buffer is carried
    // through untouched.
    sr = sparse::shuffle_columns(sr);
  }
  meta.logical_type = cfg.precision.lhs;
  meta.planes.resize(static_cast<std::size_t>(
      quant::plane_count(cfg.precision.lhs, lhs_chunk_bits(cfg.precision))));
  return build_spmm_plan(meta, n_cols, cfg);
}

std::size_t SddmmPlan::footprint_bytes() const {
  return sizeof(SddmmPlan) +
         (map.row.size() + map.slot_base.size() + map.valid.size()) *
             sizeof(std::uint32_t) +
         rhs_col_base.size() * sizeof(std::size_t) +
         block_kernel.size() * sizeof(std::uint8_t);
}

SddmmPlanHandle build_sddmm_plan(const sparse::BlockPattern& pattern,
                                 std::size_t k_depth,
                                 const SddmmConfig& cfg) {
  pattern.validate();
  MAGICUBE_CHECK_MSG(
      k_depth % (stride_for(cfg.precision) == 32 ? 64 : 32) == 0,
      "K alignment requirement violated");
  const int p_planes = quant::plane_count(
      cfg.precision.lhs, bits_of(cfg.precision.rhs) <= 4 ? 4 : 8);
  const int q_planes = quant::plane_count(
      cfg.precision.rhs, bits_of(cfg.precision.rhs) <= 4 ? 4 : 8);

  auto plan = std::make_shared<SddmmPlan>();
  detail::SddmmGeom& g = plan->geom;
  g = detail::make_sddmm_geom(cfg.precision, p_planes, q_planes,
                              pattern.vector_length, k_depth, cfg.prefetch);
  plan->map = detail::make_sddmm_block_map(pattern);

  for (int lane = 0; lane < 32; ++lane) {
    const int row = lane / 4;
    plan->a_row[static_cast<std::size_t>(lane)] =
        row < g.v ? static_cast<std::int8_t>(row) : std::int8_t{-1};
  }

  const std::size_t col_bytes =
      g.k * static_cast<std::size_t>(g.chunk) / 8;
  plan->rhs_col_base.resize(pattern.vector_count());
  for (std::size_t i = 0; i < pattern.vector_count(); ++i) {
    plan->rhs_col_base[i] =
        static_cast<std::size_t>(pattern.col_idx[i]) * col_bytes;
  }
  // Panel schedule: LHS rows span the full reduction depth (A rows and B
  // columns are both K contiguous elements), so one byte base per tile row
  // is the whole schedule.
  for (int row = 0; row < 8; ++row) {
    plan->a_panel_row_base[static_cast<std::size_t>(row)] =
        row < g.v ? static_cast<std::size_t>(row) * col_bytes : 0;
  }

  simt::KernelRun& run = plan->run;
  run.launch.grid_blocks = plan->map.row.size();
  run.launch.warps_per_block = cfg.warps_per_block;
  run.launch.smem_bytes_per_block = g.smem_bytes;
  // LHS prefetching never hides the RHS register-load chain (sddmm.hpp).
  run.pipeline.prefetch = false;
  run.pipeline.total_steps = plan->map.row.size() * g.steps;
  plan->block_kernel.resize(plan->map.row.size());
  for (std::size_t blk = 0; blk < plan->map.row.size(); ++blk) {
    const SddmmKernelId id =
        detail::classify_sddmm_block(g, plan->map.valid[blk]);
    plan->block_kernel[blk] = static_cast<std::uint8_t>(id);
    run.counters.sddmm_bucket_blocks[static_cast<std::size_t>(id)] += 1;
    run.counters += detail::sddmm_block_counters(
        g, plan->map.slot_base[blk], plan->map.valid[blk]);
  }
  run.counters.dram_bytes = detail::sddmm_dram_bytes(g, pattern);
  return plan;
}

}  // namespace magicube::core
