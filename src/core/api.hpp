#pragma once
// Magicube public API — umbrella header.
//
// Minimal usage (see examples/quickstart.cpp):
//
//   using namespace magicube;
//   Rng rng(42);
//   auto pattern = sparse::make_uniform_pattern(M, K, /*V=*/8, 0.9, rng);
//   auto a_vals  = core::random_values(M, K, Scalar::s8, rng);
//   auto b_vals  = core::random_values(K, N, Scalar::s8, rng);
//
//   core::SpmmConfig cfg{precision::L8R8};
//   auto a = core::prepare_spmm_lhs(pattern, a_vals, cfg.precision,
//                                   core::needs_shuffle(cfg));
//   auto b = core::prepare_spmm_rhs(b_vals, cfg.precision);
//   auto result = core::spmm(a, b, cfg);
//   double secs = simt::estimate_seconds(simt::a100(), result.run);

#include "common/half.hpp"
#include "common/matrix.hpp"
#include "common/precision.hpp"
#include "common/rng.hpp"
#include "core/operands.hpp"
#include "core/reference.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "quant/decompose.hpp"
#include "quant/quantizer.hpp"
#include "serve/serve.hpp"
#include "simt/cost_model.hpp"
#include "simt/device_spec.hpp"
#include "sparse/bcrs.hpp"
#include "sparse/blocked_ell.hpp"
#include "sparse/crs.hpp"
#include "sparse/pattern.hpp"
#include "sparse/sr_bcrs.hpp"
