#include "core/marshal.hpp"

#include "common/packed.hpp"

namespace magicube::core {

std::array<std::uint32_t, 4> transpose_4x4_bytes(
    const std::array<std::uint32_t, 4>& in) {
  std::array<std::uint32_t, 4> out{};
  for (int i = 0; i < 4; ++i) {
    std::uint32_t reg = 0;
    for (int j = 0; j < 4; ++j) {
      reg |= byte_of(in[static_cast<std::size_t>(j)], i) << (8 * j);
    }
    out[static_cast<std::size_t>(i)] = reg;
  }
  return out;
}

std::array<std::uint32_t, 8> transpose_int4_naive(
    const std::array<std::uint32_t, 8>& in) {
  std::array<std::uint32_t, 8> out{};
  for (int col = 0; col < 8; ++col) {
    std::uint32_t reg = 0;
    for (int row = 0; row < 8; ++row) {
      reg |= nibble_of(in[static_cast<std::size_t>(row)], col) << (4 * row);
    }
    out[static_cast<std::size_t>(col)] = reg;
  }
  return out;
}

std::array<std::uint32_t, 8> transpose_int4_shuffled(
    const std::array<std::uint32_t, 8>& in) {
  // Step 1 (Fig. 7 step 4): byte-granularity 8x4 transpose. in[r] is one
  // shuffled k-row's 8 nibbles = 4 bytes; produce, per byte column j, the
  // pair (lo32 = rows {0,2,4,6}, hi32 = rows {1,3,5,7}) of original rows —
  // which are input positions 0..3 and 4..7 thanks to the shuffle order.
  std::array<std::uint32_t, 8> out{};
  for (int j = 0; j < 4; ++j) {
    std::uint32_t lo32 = 0, hi32 = 0;
    for (int p = 0; p < 4; ++p) {
      lo32 |= byte_of(in[static_cast<std::size_t>(p)], j) << (8 * p);
      hi32 |= byte_of(in[static_cast<std::size_t>(p + 4)], j) << (8 * p);
    }
    // Step 2 (Fig. 7 steps 5-7): int32-granularity mask/shift/or. `low`
    // gathers the even column (2j) of all 8 rows in natural order; `high`
    // the odd column (2j+1). 8 bitwise ops per 16 int4 values, as §IV-B3.
    const std::uint32_t low =
        (lo32 & 0x0f0f0f0fu) | ((hi32 & 0x0f0f0f0fu) << 4);
    const std::uint32_t high =
        ((lo32 >> 4) & 0x0f0f0f0fu) | (hi32 & 0xf0f0f0f0u);
    out[static_cast<std::size_t>(2 * j)] = low;
    out[static_cast<std::size_t>(2 * j + 1)] = high;
  }
  return out;
}

}  // namespace magicube::core
