#include "core/operands.hpp"

namespace magicube::core {

namespace {

/// Decomposes a packed buffer into operand planes of `chunk_bits`. Native
/// (single-chunk) types come back as one full-width plane.
std::vector<OperandPlane> to_planes(const PackedBuffer& src, int chunk_bits) {
  std::vector<OperandPlane> out;
  if (bits_of(src.type()) <= chunk_bits) {
    OperandPlane p;
    p.values = src;
    p.weight = 1;
    p.is_signed = is_signed(src.type());
    out.push_back(std::move(p));
    return out;
  }
  quant::PlaneSet set = quant::decompose(src, chunk_bits);
  out.reserve(set.planes.size());
  for (auto& plane : set.planes) {
    OperandPlane p;
    p.values = std::move(plane.values);
    p.weight = plane.weight;
    p.is_signed = plane.is_signed;
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

std::size_t SparseOperand::footprint_bytes() const {
  std::size_t bytes = sizeof(SparseOperand);
  bytes += 4 * (structure.first_ptr.size() + structure.end_ptr.size() +
                structure.col_idx.size());
  bytes += structure.values.byte_size();
  for (const auto& p : planes) bytes += p.values.byte_size();
  return bytes;
}

std::size_t DenseOperand::footprint_bytes() const {
  std::size_t bytes = sizeof(DenseOperand);
  for (const auto& p : planes) bytes += p.values.byte_size();
  return bytes;
}

SparseOperand prepare_spmm_lhs(const sparse::BlockPattern& pattern,
                               const Matrix<std::int32_t>& dense_values,
                               PrecisionPair precision, bool shuffle) {
  SparseOperand out;
  out.logical_type = precision.lhs;
  const int stride = stride_for(precision);
  sparse::SrBcrs sr = sparse::build_sr_bcrs(pattern, dense_values,
                                            precision.lhs, stride);
  if (shuffle) sr = sparse::shuffle_columns(sr);
  out.planes = to_planes(sr.values, lhs_chunk_bits(precision));
  out.structure = std::move(sr);
  return out;
}

DenseOperand prepare_dense(const Matrix<std::int32_t>& values, Scalar type,
                           bool row_major, int chunk_bits_if_emulated) {
  DenseOperand out;
  out.rows = values.rows();
  out.cols = values.cols();
  out.row_major = row_major;
  out.logical_type = type;
  PackedBuffer buf(values.size(), type);
  for (std::size_t r = 0; r < values.rows(); ++r) {
    for (std::size_t c = 0; c < values.cols(); ++c) {
      buf.set(out.flat_index(r, c), values(r, c));
    }
  }
  out.planes = to_planes(buf, chunk_bits_if_emulated);
  return out;
}

DenseOperand prepare_spmm_rhs(const Matrix<std::int32_t>& values,
                              PrecisionPair precision) {
  // Only L16-R16 actually decomposes; the rest are single-plane.
  return prepare_dense(values, precision.rhs, /*row_major=*/true,
                       rhs_chunk_bits(precision));
}

SparseOperandHandle prepare_spmm_lhs_shared(
    const sparse::BlockPattern& pattern,
    const Matrix<std::int32_t>& dense_values, PrecisionPair precision,
    bool shuffle) {
  return std::make_shared<const SparseOperand>(
      prepare_spmm_lhs(pattern, dense_values, precision, shuffle));
}

DenseOperandHandle prepare_dense_shared(const Matrix<std::int32_t>& values,
                                        Scalar type, bool row_major,
                                        int chunk_bits_if_emulated) {
  return std::make_shared<const DenseOperand>(
      prepare_dense(values, type, row_major, chunk_bits_if_emulated));
}

DenseOperandHandle prepare_spmm_rhs_shared(const Matrix<std::int32_t>& values,
                                           PrecisionPair precision) {
  return std::make_shared<const DenseOperand>(
      prepare_spmm_rhs(values, precision));
}

Matrix<std::int32_t> random_values(std::size_t rows, std::size_t cols,
                                   Scalar type, Rng& rng) {
  Matrix<std::int32_t> m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] =
        static_cast<std::int32_t>(rng.next_in(min_value(type), max_value(type)));
  }
  return m;
}

}  // namespace magicube::core
