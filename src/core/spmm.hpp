#pragma once
// Magicube SpMM: C[M x N] = A_sparse[M x K] * B_dense[K x N] on simulated
// tensor cores (paper §IV-B).
//
// Thread-block decomposition (Fig. 3b): each block owns one vector row of A
// (BSm = V output rows) and a BSn = 64 column tile of B/C, with two warps
// splitting the tile. Each accumulation step consumes one SR-BCRS stride
// (BSk = mma k): the LHS stride tile loads contiguously into shared memory
// (the format guarantees the fragment layout), the RHS rows named by the
// stride's column indices are staged through the padded shared-memory buffer
// of Fig. 4 and transposed in registers (Fig. 5 / Fig. 7), and each warp
// issues 4 mma per (LHS plane group x RHS plane).
//
// Emulated precisions run the plane cross product with weighted combination
// in the epilogue; when V < 8, plane groups are *stacked* into the unused
// rows of the mma (Fig. 10b) and recombined with warp shuffles.
//
// Every kernel has two entry points with identical counter semantics:
//   spmm()          — functional execution (bit-exact result + counters)
//   spmm_estimate() — analytic counters from the pattern alone (no data),
//                     used by the benchmark sweeps; equality with the
//                     executed counters is asserted by the test suite.

#include <cstdint>
#include <optional>

#include "common/matrix.hpp"
#include "core/operands.hpp"
#include "core/plan.hpp"
#include "simt/cost_model.hpp"

namespace magicube::core {

/// Optimization level, matching the ablation of Fig. 11. `full` adds the
/// int4 column-index shuffle (a no-op upgrade on the int8 datapath).
enum class SpmmVariant {
  basic,                  // unpadded smem (bank conflicts), no prefetch
  conflict_free,          // Fig. 4 padding
  conflict_free_prefetch, // + Algorithm 1 software pipeline
  full,                   // + Fig. 7 index shuffling (int4 path)
};

const char* to_string(SpmmVariant v);

struct SpmmConfig {
  PrecisionPair precision = precision::L8R8;
  SpmmVariant variant = SpmmVariant::full;
  int bsn = 64;            // RHS/C tile width per block (engines require 64)
  int warps_per_block = 2;
  /// Execution engine; unset defers to default_exec_mode() (fast unless
  /// MAGICUBE_EXEC_MODE / set_default_exec_mode says otherwise). Both modes
  /// produce bit-exact results and identical counters.
  std::optional<ExecMode> mode = std::nullopt;
  /// Fast-path replay kernel; unset defers to default_replay_kernel()
  /// (panel unless MAGICUBE_REPLAY_KERNEL says otherwise). Panel and
  /// fragment replay are bit-exact with each other and with simulate.
  std::optional<ReplayKernel> replay = std::nullopt;
};

/// Whether the LHS operand must be column-shuffled for this config.
constexpr bool needs_shuffle(const SpmmConfig& cfg) {
  return cfg.variant == SpmmVariant::full &&
         bits_of(cfg.precision.rhs) <= 4;
}

struct SpmmResult {
  Matrix<std::int32_t> c;   // M x N, int32 accumulators
  simt::KernelRun run;      // counters + geometry for the cost model
};

/// Functional execution. `a` must have been prepared with the same precision
/// pair and with shuffle == needs_shuffle(cfg); `b` row-major, rows == K,
/// cols % bsn == 0.
SpmmResult spmm(const SparseOperand& a, const DenseOperand& b,
                const SpmmConfig& cfg);

/// Shared-handle entry point: identical semantics, operands aliased rather
/// than owned (the serving engine executes many concurrent kernels over one
/// cached preparation). Handles must be non-null.
SpmmResult spmm(const SparseOperandHandle& a, const DenseOperandHandle& b,
                const SpmmConfig& cfg);

/// Plan-once/run-many entry point: replays a prebuilt ExecutionPlan when
/// the resolved mode is fast (skipping planning entirely — the serving
/// engine's hot path), and falls back to the lane-accurate simulation when
/// the resolved mode is simulate (the plan is validated but unused). The
/// plan must have been built from the same pattern/config/N; compatibility
/// is asserted.
SpmmResult spmm(const SparseOperand& a, const DenseOperand& b,
                const SpmmConfig& cfg, const SpmmPlan& plan);
SpmmResult spmm(const SparseOperandHandle& a, const DenseOperandHandle& b,
                const SpmmConfig& cfg, const SpmmPlanHandle& plan);

/// Analytic counters for the same kernel on this pattern/shape (no values).
simt::KernelRun spmm_estimate(const sparse::BlockPattern& pattern,
                              std::size_t n_cols, const SpmmConfig& cfg);

/// Useful-operation count (2 * nnz * N) used for TOP/s reporting; counts
/// work at the logical precision, as the paper's TOP/s figures do.
std::uint64_t spmm_useful_ops(const sparse::BlockPattern& pattern,
                              std::size_t n_cols);

}  // namespace magicube::core
