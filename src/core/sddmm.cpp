#include "core/sddmm.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "core/plan.hpp"
#include "simt/launch.hpp"
#include "simt/memory.hpp"
#include "simt/tensor_core.hpp"

namespace magicube::core {

namespace {

using simt::AccumFrag;
using simt::KernelCounters;
using simt::LaneAddrs;
using simt::LaneWords;
using simt::WarpReg;

using Geom = detail::SddmmGeom;
using detail::kSddmmSlotsPerBlock;
using detail::load_le32;

/// Weighted plane combine + writeback of one block's accumulators (value
/// half of the epilogue, shared by both execution paths).
void sddmm_value_epilogue(const Geom& g, const DenseOperand& a,
                          const DenseOperand& b, const AccumFrag* acc,
                          std::size_t slot_base, std::uint32_t valid,
                          std::vector<std::int32_t>& c_values) {
  const std::size_t v = static_cast<std::size_t>(g.v);
  auto acc_at = [&](int w, int pl, int qq) -> const AccumFrag& {
    return acc[static_cast<std::size_t>((w * g.p + pl) * g.q + qq)];
  };
  for (int w = 0; w < 2; ++w) {
    for (int lane = 0; lane < 32; ++lane) {
      const int row = lane / 4;
      if (row >= g.v) continue;
      for (int cc = 0; cc < 2; ++cc) {
        const int slot_in_warp = 2 * (lane % 4) + cc;
        const std::uint32_t slot_in_block =
            static_cast<std::uint32_t>(w * 8 + slot_in_warp);
        if (slot_in_block >= valid) continue;
        std::int64_t total = 0;
        for (int pl = 0; pl < g.p; ++pl) {
          for (int qq = 0; qq < g.q; ++qq) {
            total += a.planes[static_cast<std::size_t>(pl)].weight *
                     b.planes[static_cast<std::size_t>(qq)].weight *
                     acc_at(w, pl, qq).c[static_cast<std::size_t>(lane)]
                         [static_cast<std::size_t>(cc)];
          }
        }
        const std::size_t vec = slot_base + slot_in_block;
        c_values[vec * v + static_cast<std::size_t>(row)] =
            static_cast<std::int32_t>(total);
      }
    }
  }
}

// ---- Functional (lane-accurate) kernel ------------------------------------

struct BlockArgs {
  const DenseOperand* a;
  const DenseOperand* b;
  const sparse::BlockPattern* pattern;
  const Geom* g;
  const detail::SddmmBlockMap* map;
  std::vector<std::int32_t>* c_values;  // BCRS vector-major
};

void run_block(simt::BlockContext& ctx, const BlockArgs& args) {
  const DenseOperand& a = *args.a;
  const DenseOperand& b = *args.b;
  const sparse::BlockPattern& pattern = *args.pattern;
  const Geom& g = *args.g;
  KernelCounters& kc = ctx.counters;

  const std::size_t blk = ctx.block_id;
  const std::size_t r = args.map->row[blk];
  const std::size_t slot_base = args.map->slot_base[blk];
  const std::uint32_t valid = args.map->valid[blk];
  const std::size_t v = static_cast<std::size_t>(g.v);
  const std::size_t stride = static_cast<std::size_t>(g.stride);

  // Output column indices for the block's valid slots.
  {
    LaneAddrs ga;
    ga.fill(simt::kInactiveLane);
    for (std::uint32_t l = 0; l < valid; ++l) {
      ga[l] = (slot_base + l) * 4;
    }
    simt::count_gmem_load(ga, 4, kc);
  }

  // Accumulators: [warp][lhs plane][rhs plane].
  std::vector<AccumFrag> acc(static_cast<std::size_t>(2 * g.p * g.q));
  auto acc_at = [&](int w, int pl, int qq) -> AccumFrag& {
    return acc[static_cast<std::size_t>((w * g.p + pl) * g.q + qq)];
  };

  for (std::uint64_t st = 0; st < g.steps; ++st) {
    const std::size_t kbase = static_cast<std::size_t>(st) * stride;

    // LHS tile (V x stride) to shared memory, per plane.
    for (int pl = 0; pl < g.p; ++pl) {
      const auto& plane = a.planes[static_cast<std::size_t>(pl)];
      LaneAddrs ga;
      ga.fill(simt::kInactiveLane);
      LaneAddrs sa;
      sa.fill(simt::kInactiveLane);
      LaneWords vals{};
      for (std::size_t l = 0; l < g.lhs_words_per_plane && l < 32; ++l) {
        const std::size_t row = l / 4, word_in_row = l % 4;
        const std::size_t arow = r * v + row;
        ga[l] = (arow * g.k + kbase) * static_cast<std::size_t>(g.chunk) / 8 +
                word_in_row * 4;
        sa[l] = static_cast<std::size_t>(pl) * g.lhs_words_per_plane + l;
        std::uint32_t wv = 0;
        for (int e = 0; e < g.epw; ++e) {
          const std::size_t kk =
              kbase + word_in_row * static_cast<std::size_t>(g.epw) +
              static_cast<std::size_t>(e);
          wv |= plane.values.get_raw(a.flat_index(arow, kk)) << (g.chunk * e);
        }
        vals[l] = wv;
      }
      simt::count_gmem_load(ga, 4, kc);
      ctx.smem.st32(sa, vals, kc);
    }
    kc.syncthreads += g.prefetch ? 2 : 1;

    for (int w = 0; w < 2; ++w) {
      for (int pl = 0; pl < g.p; ++pl) {
        // LHS fragment from shared memory (consecutive words).
        LaneAddrs sa;
        sa.fill(simt::kInactiveLane);
        for (int lane = 0; lane < 32; ++lane) {
          const int row = lane / 4;
          if (row >= g.v) continue;
          sa[static_cast<std::size_t>(lane)] =
              static_cast<std::size_t>(pl) * g.lhs_words_per_plane +
              static_cast<std::size_t>(row) * 4 +
              static_cast<std::size_t>(lane % 4);
        }
        const WarpReg a_frag = ctx.smem.ld32(sa, kc);

        for (int qq = 0; qq < g.q; ++qq) {
          const auto& bplane = b.planes[static_cast<std::size_t>(qq)];
          // RHS fragment: direct global load, one word per lane.
          WarpReg b_frag{};
          LaneAddrs ga;
          ga.fill(simt::kInactiveLane);
          for (int lane = 0; lane < 32; ++lane) {
            const int slot_in_warp = lane / 4;
            const std::uint32_t slot_in_block =
                static_cast<std::uint32_t>(w * 8 + slot_in_warp);
            if (slot_in_block >= valid) continue;
            const std::size_t col =
                pattern.col_idx[slot_base + slot_in_block];
            const std::size_t elem0 =
                kbase + static_cast<std::size_t>(g.epw) *
                            static_cast<std::size_t>(lane % 4);
            ga[static_cast<std::size_t>(lane)] =
                (col * g.k + elem0) * static_cast<std::size_t>(g.chunk) / 8;
            std::uint32_t wv = 0;
            for (int e = 0; e < g.epw; ++e) {
              wv |= bplane.values.get_raw(
                        b.flat_index(elem0 + static_cast<std::size_t>(e),
                                     col))
                    << (g.chunk * e);
            }
            b_frag[static_cast<std::size_t>(lane)] = wv;
          }
          // Counted only on the first LHS plane: the fragment is reused
          // across planes on real hardware (held in registers).
          if (pl == 0) simt::count_gmem_load(ga, 4, kc);

          AccumFrag& dst = acc_at(w, pl, qq);
          const bool a_signed = a.planes[static_cast<std::size_t>(pl)].is_signed;
          const bool b_signed = bplane.is_signed;
          if (g.int4path) {
            simt::mma_m8n8k32(dst, a_frag, b_frag, dst, a_signed, b_signed,
                              kc);
          } else {
            simt::mma_m8n8k16(dst, a_frag, b_frag, dst, a_signed, b_signed,
                              kc);
          }
        }
      }
    }
  }

  // Epilogue: weighted plane combine, write the BCRS value range.
  sddmm_value_epilogue(g, a, b, acc.data(), slot_base, valid,
                       *args.c_values);
  kc.alu_ops += static_cast<std::uint64_t>(2 * 2 * g.p * g.q);
  kc.syncthreads += 1;

  const detail::SddmmEpilogueCounts e =
      detail::sddmm_epilogue_counts(g, valid);
  kc.smem_store_requests += e.smem_store_req;
  kc.smem_store_transactions += e.smem_store_req;
  kc.smem_load_requests += e.smem_load_req;
  kc.smem_load_transactions += e.smem_load_req;
  kc.gmem_store_requests += e.gmem_store_req;
  kc.gmem_store_sectors += e.gmem_store_sectors;
}

// ---- Fast path: value-only plan replay ------------------------------------

struct SddmmScratch {
  std::vector<AccumFrag> acc;
  std::vector<simt::DecodedFrag> a_dec;  // one per LHS plane
};

SddmmScratch& sddmm_scratch() {
  thread_local SddmmScratch scratch;
  return scratch;
}

void fast_block(std::size_t blk, const DenseOperand& a,
                const DenseOperand& b, const SddmmPlan& plan,
                std::vector<std::int32_t>& c_values) {
  const Geom& g = plan.geom;
  const std::size_t r = plan.map.row[blk];
  const std::size_t slot_base = plan.map.slot_base[blk];
  const std::uint32_t valid = plan.map.valid[blk];
  const std::size_t v = static_cast<std::size_t>(g.v);
  const std::size_t chunk = static_cast<std::size_t>(g.chunk);
  const std::size_t row_bytes = g.k * chunk / 8;  // one A row / B column

  SddmmScratch& s = sddmm_scratch();
  s.acc.assign(static_cast<std::size_t>(2 * g.p * g.q), AccumFrag{});
  s.a_dec.resize(static_cast<std::size_t>(g.p));
  auto acc_at = [&](int w, int pl, int qq) -> AccumFrag& {
    return s.acc[static_cast<std::size_t>((w * g.p + pl) * g.q + qq)];
  };

  for (std::uint64_t st = 0; st < g.steps; ++st) {
    const std::size_t kbyte =
        static_cast<std::size_t>(st) * static_cast<std::size_t>(g.stride) *
        chunk / 8;

    // LHS fragments: gathered straight from the plane bytes (the staged
    // tile is a row-major copy); identical for both warps, so gathered and
    // decoded once per step and reused across the plane cross product.
    for (int pl = 0; pl < g.p; ++pl) {
      const std::uint8_t* a_bytes =
          a.planes[static_cast<std::size_t>(pl)].values.data();
      WarpReg frag{};
      for (int lane = 0; lane < 32; ++lane) {
        const std::int8_t row = plan.a_row[static_cast<std::size_t>(lane)];
        frag[static_cast<std::size_t>(lane)] =
            row < 0 ? 0
                    : load_le32(a_bytes +
                                (r * v + static_cast<std::size_t>(row)) *
                                    row_bytes +
                                kbyte + 4u * static_cast<unsigned>(lane % 4));
      }
      simt::DecodedFrag& dec = s.a_dec[static_cast<std::size_t>(pl)];
      const bool a_signed = a.planes[static_cast<std::size_t>(pl)].is_signed;
      if (g.int4path) {
        simt::decode_frag_int4(frag, a_signed, dec);
      } else {
        simt::decode_frag_int8(frag, a_signed, dec);
      }
    }

    for (int w = 0; w < 2; ++w) {
      for (int qq = 0; qq < g.q; ++qq) {
        const auto& bplane = b.planes[static_cast<std::size_t>(qq)];
        const std::uint8_t* b_bytes = bplane.values.data();
        // RHS fragment once per (warp, plane): the simulated path rebuilds
        // it per LHS plane with identical values (register reuse).
        WarpReg b_frag{};
        for (int lane = 0; lane < 32; ++lane) {
          const std::uint32_t slot_in_block =
              static_cast<std::uint32_t>(w * 8 + lane / 4);
          if (slot_in_block >= valid) continue;
          b_frag[static_cast<std::size_t>(lane)] = load_le32(
              b_bytes + plan.rhs_col_base[slot_base + slot_in_block] +
              kbyte + 4u * static_cast<unsigned>(lane % 4));
        }
        simt::DecodedFrag b_dec;
        if (g.int4path) {
          simt::decode_frag_int4(b_frag, bplane.is_signed, b_dec);
        } else {
          simt::decode_frag_int8(b_frag, bplane.is_signed, b_dec);
        }
        for (int pl = 0; pl < g.p; ++pl) {
          simt::mma_decoded(acc_at(w, pl, qq),
                            s.a_dec[static_cast<std::size_t>(pl)], b_dec);
        }
      }
    }
  }

  sddmm_value_epilogue(g, a, b, s.acc.data(), slot_base, valid, c_values);
}

// ---- Panel fast path: block-panel replay ----------------------------------
//
// A rows and B columns are both K contiguous elements in their plane
// buffers (row-major A, column-major B), so the panel engine decodes the
// block's V x K LHS panel once, decodes each sampled column once per RHS
// plane, and reduces whole rows with the vectorized simt::dot_wrap — no
// per-step staging, no fragment gathers. The mod-2^32 dot over the full
// depth is bit-exact with the per-stride mma truncation chain it replaces.
//
// Blocks are classified at plan-build time (detail::classify_sddmm_block)
// and replay dispatches on the recorded SddmmKernelId: fused_single drops
// the plane cross-product loops for the dominant p == q == 1 full-block
// case and applies the combined weight once per slot; tail (valid < 16)
// and generic share the bounded body. MAGICUBE_PANEL_BUCKETS=off forces
// the generic body for every block — bit-exact either way.

struct SddmmPanelScratch {
  std::vector<std::int32_t> a_panel;  // [p][v][K] decoded LHS rows
  std::vector<std::int32_t> b_col;    // [q][K] decoded RHS column
};

SddmmPanelScratch& sddmm_panel_scratch() {
  thread_local SddmmPanelScratch scratch;
  return scratch;
}

void panel_block(std::size_t blk, const DenseOperand& a,
                 const DenseOperand& b, const SddmmPlan& plan, bool buckets,
                 std::vector<std::int32_t>& c_values) {
  const Geom& g = plan.geom;
  const std::size_t r = plan.map.row[blk];
  const std::size_t slot_base = plan.map.slot_base[blk];
  const std::uint32_t valid = plan.map.valid[blk];
  const std::size_t v = static_cast<std::size_t>(g.v);
  const std::size_t k = g.k;
  const std::size_t row_bytes = k * static_cast<std::size_t>(g.chunk) / 8;
  const bool int4 = g.int4path;
  const SddmmKernelId id = buckets
                               ? static_cast<SddmmKernelId>(
                                     plan.block_kernel[blk])
                               : SddmmKernelId::generic;

  SddmmPanelScratch& s = sddmm_panel_scratch();
  s.a_panel.resize(static_cast<std::size_t>(g.p) * v * k);
  s.b_col.resize(static_cast<std::size_t>(g.q) * k);

  for (int pl = 0; pl < g.p; ++pl) {
    const auto& plane = a.planes[static_cast<std::size_t>(pl)];
    const std::uint8_t* base = plane.values.data() + r * v * row_bytes;
    for (std::size_t row = 0; row < v; ++row) {
      std::int32_t* dst =
          s.a_panel.data() + (static_cast<std::size_t>(pl) * v + row) * k;
      const std::uint8_t* bytes = base + plan.a_panel_row_base[row];
      if (int4) {
        simt::decode_span_int4(bytes, k, plane.is_signed, dst);
      } else {
        simt::decode_span_int8(bytes, k, plane.is_signed, dst);
      }
    }
  }

  if (id == SddmmKernelId::fused_single) {
    // Single LHS/RHS plane, full block: no plane cross product, combined
    // weight applied once per slot. Same int64 weighted sum truncated to
    // int32 as the generic body with p == q == 1 — bit-exact mod 2^32.
    const auto& aplane = a.planes[0];
    const auto& bplane = b.planes[0];
    const std::int64_t w = aplane.weight * bplane.weight;
    for (std::uint32_t slot = 0; slot < valid; ++slot) {
      const std::size_t vec = slot_base + slot;
      const std::uint8_t* bytes = bplane.values.data() + plan.rhs_col_base[vec];
      if (int4) {
        simt::decode_span_int4(bytes, k, bplane.is_signed, s.b_col.data());
      } else {
        simt::decode_span_int8(bytes, k, bplane.is_signed, s.b_col.data());
      }
      for (std::size_t row = 0; row < v; ++row) {
        const std::int32_t part =
            simt::dot_wrap(s.a_panel.data() + row * k, s.b_col.data(), k, 0);
        c_values[vec * v + row] = static_cast<std::int32_t>(w * part);
      }
    }
    return;
  }

  for (std::uint32_t slot = 0; slot < valid; ++slot) {
    const std::size_t vec = slot_base + slot;
    for (int qq = 0; qq < g.q; ++qq) {
      const auto& plane = b.planes[static_cast<std::size_t>(qq)];
      std::int32_t* dst = s.b_col.data() + static_cast<std::size_t>(qq) * k;
      const std::uint8_t* bytes = plane.values.data() + plan.rhs_col_base[vec];
      if (int4) {
        simt::decode_span_int4(bytes, k, plane.is_signed, dst);
      } else {
        simt::decode_span_int8(bytes, k, plane.is_signed, dst);
      }
    }
    for (std::size_t row = 0; row < v; ++row) {
      std::int64_t total = 0;
      for (int pl = 0; pl < g.p; ++pl) {
        const std::int32_t* arow =
            s.a_panel.data() + (static_cast<std::size_t>(pl) * v + row) * k;
        const std::int64_t wa = a.planes[static_cast<std::size_t>(pl)].weight;
        for (int qq = 0; qq < g.q; ++qq) {
          const std::int32_t part = simt::dot_wrap(
              arow, s.b_col.data() + static_cast<std::size_t>(qq) * k, k, 0);
          total += wa * b.planes[static_cast<std::size_t>(qq)].weight * part;
        }
      }
      c_values[vec * v + row] = static_cast<std::int32_t>(total);
    }
  }
}

void validate_sddmm_inputs(const DenseOperand& a, const DenseOperand& b,
                           const sparse::BlockPattern& pattern,
                           const SddmmConfig& cfg) {
  pattern.validate();
  MAGICUBE_CHECK(a.row_major && !b.row_major);
  MAGICUBE_CHECK(a.cols == b.rows);
  MAGICUBE_CHECK(a.rows == pattern.rows && b.cols == pattern.cols);
  // Alignment needed for the closed-form sector counts (segments never
  // straddle a 32-byte sector): K % 32 on the int8 path, K % 64 on int4.
  MAGICUBE_CHECK_MSG(
      a.cols % (stride_for(cfg.precision) == 32 ? 64 : 32) == 0,
      "K alignment requirement violated");
}

SddmmResult make_result_shell(const sparse::BlockPattern& pattern, int v) {
  SddmmResult result;
  result.c.rows = pattern.rows;
  result.c.cols = pattern.cols;
  result.c.vector_length = pattern.vector_length;
  result.c.row_ptr = pattern.row_ptr;
  result.c.col_idx = pattern.col_idx;
  result.c.values.assign(
      pattern.vector_count() * static_cast<std::size_t>(v), 0);
  return result;
}

SddmmResult run_simulate(const DenseOperand& a, const DenseOperand& b,
                         const sparse::BlockPattern& pattern,
                         const SddmmConfig& cfg) {
  const std::size_t k = a.cols;
  Geom g = detail::make_sddmm_geom(cfg.precision,
                                   static_cast<int>(a.plane_count()),
                                   static_cast<int>(b.plane_count()),
                                   pattern.vector_length, k, cfg.prefetch);
  const detail::SddmmBlockMap map = detail::make_sddmm_block_map(pattern);

  simt::LaunchConfig launch;
  launch.grid_blocks = map.row.size();
  launch.warps_per_block = cfg.warps_per_block;
  launch.smem_bytes_per_block = g.smem_bytes;

  SddmmResult result = make_result_shell(pattern, g.v);
  BlockArgs args{&a, &b, &pattern, &g, &map, &result.c.values};
  result.run = simt::run_grid(
      launch, [&](simt::BlockContext& ctx) { run_block(ctx, args); });

  result.run.pipeline.total_steps = map.row.size() * g.steps;
  // LHS prefetching never hides the RHS register-load chain (see header).
  result.run.pipeline.prefetch = false;
  result.run.counters.dram_bytes = detail::sddmm_dram_bytes(g, pattern);
  result.c.validate();
  return result;
}

SddmmResult run_fast(const DenseOperand& a, const DenseOperand& b,
                     const sparse::BlockPattern& pattern,
                     const SddmmConfig& cfg, const SddmmPlan& plan) {
  const ReplayKernel kernel = cfg.replay.value_or(default_replay_kernel());
  const Geom& g = plan.geom;
  MAGICUBE_CHECK_MSG(g.k == a.cols && g.v == pattern.vector_length,
                     "execution plan built for a different problem shape");
  MAGICUBE_CHECK_MSG(g.p == static_cast<int>(a.plane_count()) &&
                         g.q == static_cast<int>(b.plane_count()),
                     "execution plan built for a different precision pair");
  MAGICUBE_CHECK_MSG(plan.rhs_col_base.size() == pattern.vector_count(),
                     "execution plan built for a different sparsity "
                     "pattern — plans are per pattern fingerprint");
  MAGICUBE_CHECK(g.prefetch == cfg.prefetch);
  // Exact structural validation (vector_count alone would admit a
  // different pattern of equal density): column bases slot for slot, and
  // the block map against the row pointers. O(vectors + blocks), cheap
  // next to the O(nnz * K) replay.
  const std::size_t col_bytes = g.k * static_cast<std::size_t>(g.chunk) / 8;
  for (std::size_t i = 0; i < plan.rhs_col_base.size(); ++i) {
    MAGICUBE_CHECK_MSG(
        plan.rhs_col_base[i] ==
            static_cast<std::size_t>(pattern.col_idx[i]) * col_bytes,
        "execution plan built for a different sparsity pattern — plans "
        "are per pattern fingerprint");
  }
  {
    std::size_t blk = 0;
    for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
      const std::uint32_t n_r =
          static_cast<std::uint32_t>(pattern.vectors_in_row(r));
      for (std::uint32_t base = 0; base < n_r;
           base += kSddmmSlotsPerBlock, ++blk) {
        MAGICUBE_CHECK_MSG(
            blk < plan.map.row.size() && plan.map.row[blk] == r &&
                plan.map.slot_base[blk] == pattern.row_ptr[r] + base,
            "execution plan built for a different sparsity pattern — "
            "plans are per pattern fingerprint");
      }
    }
    MAGICUBE_CHECK(blk == plan.map.row.size());
  }

  SddmmResult result = make_result_shell(pattern, g.v);
  if (kernel == ReplayKernel::panel) {
    // Bucket dispatch needs the recorded per-block kernel ids; plans built
    // before bucketing (or with the toggle off) replay through the generic
    // body, which is bit-exact with every specialized path.
    const bool buckets = default_panel_buckets() &&
                         plan.block_kernel.size() == plan.map.row.size();
    simt::run_grid_values(plan.run.launch.grid_blocks, [&](std::size_t blk) {
      panel_block(blk, a, b, plan, buckets, result.c.values);
    });
  } else {
    simt::run_grid_values(plan.run.launch.grid_blocks, [&](std::size_t blk) {
      fast_block(blk, a, b, plan, result.c.values);
    });
  }
  result.run = plan.run;
  result.c.validate();
  return result;
}

}  // namespace

SddmmResult sddmm(const DenseOperand& a, const DenseOperand& b,
                  const sparse::BlockPattern& pattern,
                  const SddmmConfig& cfg) {
  validate_sddmm_inputs(a, b, pattern, cfg);
  if (cfg.mode.value_or(default_exec_mode()) == ExecMode::fast) {
    const SddmmPlanHandle plan = build_sddmm_plan(pattern, a.cols, cfg);
    return run_fast(a, b, pattern, cfg, *plan);
  }
  return run_simulate(a, b, pattern, cfg);
}

SddmmResult sddmm(const DenseOperand& a, const DenseOperand& b,
                  const sparse::BlockPattern& pattern, const SddmmConfig& cfg,
                  const SddmmPlan& plan) {
  validate_sddmm_inputs(a, b, pattern, cfg);
  if (cfg.mode.value_or(default_exec_mode()) == ExecMode::simulate) {
    return run_simulate(a, b, pattern, cfg);
  }
  return run_fast(a, b, pattern, cfg, plan);
}

simt::KernelRun sddmm_estimate(const sparse::BlockPattern& pattern,
                               std::size_t k_depth, const SddmmConfig& cfg) {
  MAGICUBE_CHECK(k_depth % (stride_for(cfg.precision) == 32 ? 64 : 32) == 0);
  const int p_planes = quant::plane_count(
      cfg.precision.lhs, bits_of(cfg.precision.rhs) <= 4 ? 4 : 8);
  const int q_planes = quant::plane_count(
      cfg.precision.rhs, bits_of(cfg.precision.rhs) <= 4 ? 4 : 8);
  Geom g = detail::make_sddmm_geom(cfg.precision, p_planes, q_planes,
                                   pattern.vector_length, k_depth,
                                   cfg.prefetch);

  simt::KernelRun run;
  run.launch.warps_per_block = cfg.warps_per_block;
  run.launch.smem_bytes_per_block = g.smem_bytes;
  run.pipeline.prefetch = false;

  std::uint64_t blocks = 0;
  for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
    const std::uint64_t n_r = pattern.vectors_in_row(r);
    for (std::uint64_t base = 0; base < n_r; base += kSddmmSlotsPerBlock) {
      const std::uint64_t valid =
          std::min<std::uint64_t>(kSddmmSlotsPerBlock, n_r - base);
      run.counters += detail::sddmm_block_counters(
          g, pattern.row_ptr[r] + base, valid);
      // Bucket counters must mirror build_sddmm_plan exactly: the SLA layer
      // asserts analytic-estimate pricing equals cached-plan pricing.
      const SddmmKernelId id = detail::classify_sddmm_block(g, valid);
      run.counters.sddmm_bucket_blocks[static_cast<std::size_t>(id)] += 1;
      blocks += 1;
    }
  }
  run.launch.grid_blocks = blocks;
  run.pipeline.total_steps = blocks * g.steps;
  run.counters.dram_bytes = detail::sddmm_dram_bytes(g, pattern);
  return run;
}

std::uint64_t sddmm_useful_ops(const sparse::BlockPattern& pattern,
                               std::size_t k_depth) {
  return 2ull * pattern.nnz() * k_depth;
}

SddmmResult sddmm(const DenseOperandHandle& a, const DenseOperandHandle& b,
                  const sparse::BlockPattern& pattern,
                  const SddmmConfig& cfg) {
  MAGICUBE_CHECK_MSG(a && b, "sddmm handles must be non-null");
  return sddmm(*a, *b, pattern, cfg);
}

SddmmResult sddmm(const DenseOperandHandle& a, const DenseOperandHandle& b,
                  const sparse::BlockPattern& pattern, const SddmmConfig& cfg,
                  const SddmmPlanHandle& plan) {
  MAGICUBE_CHECK_MSG(a && b, "sddmm handles must be non-null");
  MAGICUBE_CHECK_MSG(plan != nullptr, "sddmm plan handle must be non-null");
  return sddmm(*a, *b, pattern, cfg, *plan);
}

}  // namespace magicube::core
