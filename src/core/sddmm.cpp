#include "core/sddmm.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "simt/launch.hpp"
#include "simt/memory.hpp"
#include "simt/tensor_core.hpp"

namespace magicube::core {

namespace {

using simt::AccumFrag;
using simt::KernelCounters;
using simt::LaneAddrs;
using simt::LaneWords;
using simt::WarpReg;

constexpr int kSlotsPerBlock = 16;  // 8 output vectors per warp x 2 warps

struct Geom {
  int stride = 16;  // mma k
  int chunk = 8;
  int epw = 4;
  bool int4path = false;

  int v = 8;
  int p = 1;  // LHS planes
  int q = 1;  // RHS planes
  std::size_t k = 0;
  std::uint64_t steps = 0;  // k / stride
  bool prefetch = false;

  std::size_t lhs_words_per_plane = 0;
  std::size_t smem_bytes = 0;
};

Geom make_geom(PrecisionPair pr, int p_planes, int q_planes, int v,
               std::size_t k, bool prefetch) {
  Geom g;
  g.int4path = stride_for(pr) == 32;
  g.stride = g.int4path ? 32 : 16;
  g.chunk = g.int4path ? 4 : 8;
  g.epw = 32 / g.chunk;
  g.v = v;
  g.p = p_planes;
  g.q = q_planes;
  g.k = k;
  g.steps = k / static_cast<std::size_t>(g.stride);
  g.prefetch = prefetch;
  g.lhs_words_per_plane = static_cast<std::size_t>(4 * v);
  g.smem_bytes = 4 * static_cast<std::size_t>(g.p) * g.lhs_words_per_plane *
                 (prefetch ? 2 : 1);
  return g;
}

/// Sectors of one LHS tile row-segment load (V rows of 16 bytes each, rows
/// strided by K; each 16-byte segment stays inside one 32-byte sector given
/// K % 32 == 0).
std::uint32_t lhs_tile_sectors(const Geom& g) {
  return static_cast<std::uint32_t>(g.v);
}

/// Writeback bundle for one block holding `valid` output vectors: stage the
/// accumulators through swizzled shared memory, then write the contiguous
/// BCRS value range coalesced.
struct EpilogueCounts {
  std::uint64_t smem_store_req, smem_load_req, gmem_store_req,
      gmem_store_sectors;
};
EpilogueCounts epilogue_counts(const Geom& g, std::uint64_t valid) {
  EpilogueCounts e{};
  e.smem_store_req = 2 * 2;  // 2 warps x 2 accumulator registers
  const std::uint64_t bytes = valid * static_cast<std::uint64_t>(g.v) * 4;
  e.gmem_store_req = (bytes + 127) / 128;  // 32 lanes x 4B per request
  e.smem_load_req = e.gmem_store_req;
  e.gmem_store_sectors = (bytes + 31) / 32;
  return e;
}

/// Sectors of the index read: `valid` consecutive u32 starting at an
/// arbitrary (row-pointer-determined) offset.
std::uint32_t idx_sectors(std::size_t slot_base, std::uint64_t valid) {
  const std::size_t first = slot_base * 4 / 32;
  const std::size_t last = ((slot_base + valid) * 4 - 1) / 32;
  return static_cast<std::uint32_t>(last - first + 1);
}

KernelCounters block_counters(const Geom& g, std::size_t slot_base,
                              std::uint64_t valid) {
  KernelCounters kc;
  const std::uint64_t p = static_cast<std::uint64_t>(g.p);
  const std::uint64_t q = static_cast<std::uint64_t>(g.q);
  const std::uint64_t steps = g.steps;

  // Output column indices for this block.
  kc.gmem_load_requests = 1;
  kc.gmem_load_sectors = idx_sectors(slot_base, valid);
  // LHS tile per step per plane: gmem -> smem.
  kc.gmem_load_requests += steps * p;
  kc.gmem_load_sectors += steps * p * lhs_tile_sectors(g);
  kc.smem_store_requests = steps * p;
  kc.smem_store_transactions = steps * p;
  // LHS fragment reads: per warp per step per plane (consecutive words).
  kc.smem_load_requests = steps * 2 * p;
  kc.smem_load_transactions = steps * 2 * p;
  // RHS register loads: per warp per step per plane; one sector per valid
  // column (16-byte column segments, disjoint sectors across columns).
  kc.gmem_load_requests += steps * 2 * q;
  kc.gmem_load_sectors += steps * q * valid;
  // mma: per warp per step, full plane cross product.
  const std::uint64_t mmas = steps * 2 * p * q;
  (g.int4path ? kc.mma_int4 : kc.mma_int8) = mmas;
  // Epilogue combine (weighted plane sum; trivial for native precisions).
  kc.alu_ops = 2 * 2 * p * q;
  kc.syncthreads = steps * (g.prefetch ? 2u : 1u) + 1;

  const EpilogueCounts e = epilogue_counts(g, valid);
  kc.smem_store_requests += e.smem_store_req;
  kc.smem_store_transactions += e.smem_store_req;
  kc.smem_load_requests += e.smem_load_req;
  kc.smem_load_transactions += e.smem_load_req;
  kc.gmem_store_requests += e.gmem_store_req;
  kc.gmem_store_sectors += e.gmem_store_sectors;
  return kc;
}

std::uint64_t sddmm_dram_bytes(const Geom& g,
                               const sparse::BlockPattern& pattern) {
  const std::uint64_t m = pattern.rows, n = pattern.cols;
  const std::uint64_t chunk = static_cast<std::uint64_t>(g.chunk);
  const std::uint64_t a_size =
      m * g.k * chunk / 8 * static_cast<std::uint64_t>(g.p);
  const std::uint64_t b_size =
      g.k * n * chunk / 8 * static_cast<std::uint64_t>(g.q);
  const std::uint64_t b_loaded = pattern.vector_count() * g.k * chunk / 8 *
                                 static_cast<std::uint64_t>(g.q);
  const std::uint64_t c_bytes = pattern.nnz() * 4;
  const std::uint64_t idx_bytes = pattern.vector_count() * 4;
  return a_size + std::min(b_size, b_loaded) + c_bytes + idx_bytes;
}

struct BlockMap {
  std::vector<std::uint32_t> row;         // block -> vector row
  std::vector<std::uint32_t> slot_base;   // block -> first pattern vector
  std::vector<std::uint32_t> valid;       // block -> valid slots (<= 16)
};

BlockMap make_block_map(const sparse::BlockPattern& pattern) {
  BlockMap map;
  for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
    const std::uint32_t n_r =
        static_cast<std::uint32_t>(pattern.vectors_in_row(r));
    for (std::uint32_t base = 0; base < n_r; base += kSlotsPerBlock) {
      map.row.push_back(static_cast<std::uint32_t>(r));
      map.slot_base.push_back(pattern.row_ptr[r] + base);
      map.valid.push_back(
          std::min<std::uint32_t>(kSlotsPerBlock, n_r - base));
    }
  }
  return map;
}

struct BlockArgs {
  const DenseOperand* a;
  const DenseOperand* b;
  const sparse::BlockPattern* pattern;
  const Geom* g;
  const BlockMap* map;
  std::vector<std::int32_t>* c_values;  // BCRS vector-major
};

void run_block(simt::BlockContext& ctx, const BlockArgs& args) {
  const DenseOperand& a = *args.a;
  const DenseOperand& b = *args.b;
  const sparse::BlockPattern& pattern = *args.pattern;
  const Geom& g = *args.g;
  KernelCounters& kc = ctx.counters;

  const std::size_t blk = ctx.block_id;
  const std::size_t r = args.map->row[blk];
  const std::size_t slot_base = args.map->slot_base[blk];
  const std::uint32_t valid = args.map->valid[blk];
  const std::size_t v = static_cast<std::size_t>(g.v);
  const std::size_t stride = static_cast<std::size_t>(g.stride);

  // Output column indices for the block's valid slots.
  {
    LaneAddrs ga;
    ga.fill(simt::kInactiveLane);
    for (std::uint32_t l = 0; l < valid; ++l) {
      ga[l] = (slot_base + l) * 4;
    }
    simt::count_gmem_load(ga, 4, kc);
  }

  // Accumulators: [warp][lhs plane][rhs plane].
  std::vector<AccumFrag> acc(static_cast<std::size_t>(2 * g.p * g.q));
  auto acc_at = [&](int w, int pl, int qq) -> AccumFrag& {
    return acc[static_cast<std::size_t>((w * g.p + pl) * g.q + qq)];
  };

  for (std::uint64_t st = 0; st < g.steps; ++st) {
    const std::size_t kbase = static_cast<std::size_t>(st) * stride;

    // LHS tile (V x stride) to shared memory, per plane.
    for (int pl = 0; pl < g.p; ++pl) {
      const auto& plane = a.planes[static_cast<std::size_t>(pl)];
      LaneAddrs ga;
      ga.fill(simt::kInactiveLane);
      LaneAddrs sa;
      sa.fill(simt::kInactiveLane);
      LaneWords vals{};
      for (std::size_t l = 0; l < g.lhs_words_per_plane && l < 32; ++l) {
        const std::size_t row = l / 4, word_in_row = l % 4;
        const std::size_t arow = r * v + row;
        ga[l] = (arow * g.k + kbase) * static_cast<std::size_t>(g.chunk) / 8 +
                word_in_row * 4;
        sa[l] = static_cast<std::size_t>(pl) * g.lhs_words_per_plane + l;
        std::uint32_t wv = 0;
        for (int e = 0; e < g.epw; ++e) {
          const std::size_t kk =
              kbase + word_in_row * static_cast<std::size_t>(g.epw) +
              static_cast<std::size_t>(e);
          wv |= plane.values.get_raw(a.flat_index(arow, kk)) << (g.chunk * e);
        }
        vals[l] = wv;
      }
      simt::count_gmem_load(ga, 4, kc);
      ctx.smem.st32(sa, vals, kc);
    }
    kc.syncthreads += g.prefetch ? 2 : 1;

    for (int w = 0; w < 2; ++w) {
      for (int pl = 0; pl < g.p; ++pl) {
        // LHS fragment from shared memory (consecutive words).
        LaneAddrs sa;
        sa.fill(simt::kInactiveLane);
        for (int lane = 0; lane < 32; ++lane) {
          const int row = lane / 4;
          if (row >= g.v) continue;
          sa[static_cast<std::size_t>(lane)] =
              static_cast<std::size_t>(pl) * g.lhs_words_per_plane +
              static_cast<std::size_t>(row) * 4 +
              static_cast<std::size_t>(lane % 4);
        }
        const WarpReg a_frag = ctx.smem.ld32(sa, kc);

        for (int qq = 0; qq < g.q; ++qq) {
          const auto& bplane = b.planes[static_cast<std::size_t>(qq)];
          // RHS fragment: direct global load, one word per lane.
          WarpReg b_frag{};
          LaneAddrs ga;
          ga.fill(simt::kInactiveLane);
          for (int lane = 0; lane < 32; ++lane) {
            const int slot_in_warp = lane / 4;
            const std::uint32_t slot_in_block =
                static_cast<std::uint32_t>(w * 8 + slot_in_warp);
            if (slot_in_block >= valid) continue;
            const std::size_t col =
                pattern.col_idx[slot_base + slot_in_block];
            const std::size_t elem0 =
                kbase + static_cast<std::size_t>(g.epw) *
                            static_cast<std::size_t>(lane % 4);
            ga[static_cast<std::size_t>(lane)] =
                (col * g.k + elem0) * static_cast<std::size_t>(g.chunk) / 8;
            std::uint32_t wv = 0;
            for (int e = 0; e < g.epw; ++e) {
              wv |= bplane.values.get_raw(
                        b.flat_index(elem0 + static_cast<std::size_t>(e),
                                     col))
                    << (g.chunk * e);
            }
            b_frag[static_cast<std::size_t>(lane)] = wv;
          }
          // Counted only on the first LHS plane: the fragment is reused
          // across planes on real hardware (held in registers).
          if (pl == 0) simt::count_gmem_load(ga, 4, kc);

          AccumFrag& dst = acc_at(w, pl, qq);
          const bool a_signed = a.planes[static_cast<std::size_t>(pl)].is_signed;
          const bool b_signed = bplane.is_signed;
          if (g.int4path) {
            simt::mma_m8n8k32(dst, a_frag, b_frag, dst, a_signed, b_signed,
                              kc);
          } else {
            simt::mma_m8n8k16(dst, a_frag, b_frag, dst, a_signed, b_signed,
                              kc);
          }
        }
      }
    }
  }

  // Epilogue: weighted plane combine, write the BCRS value range.
  for (int w = 0; w < 2; ++w) {
    for (int lane = 0; lane < 32; ++lane) {
      const int row = lane / 4;
      if (row >= g.v) continue;
      for (int cc = 0; cc < 2; ++cc) {
        const int slot_in_warp = 2 * (lane % 4) + cc;
        const std::uint32_t slot_in_block =
            static_cast<std::uint32_t>(w * 8 + slot_in_warp);
        if (slot_in_block >= valid) continue;
        std::int64_t total = 0;
        for (int pl = 0; pl < g.p; ++pl) {
          for (int qq = 0; qq < g.q; ++qq) {
            total += a.planes[static_cast<std::size_t>(pl)].weight *
                     b.planes[static_cast<std::size_t>(qq)].weight *
                     acc_at(w, pl, qq).c[static_cast<std::size_t>(lane)]
                         [static_cast<std::size_t>(cc)];
          }
        }
        const std::size_t vec = slot_base + slot_in_block;
        (*args.c_values)[vec * v + static_cast<std::size_t>(row)] =
            static_cast<std::int32_t>(total);
      }
    }
  }
  kc.alu_ops += static_cast<std::uint64_t>(2 * 2 * g.p * g.q);
  kc.syncthreads += 1;

  const EpilogueCounts e = epilogue_counts(g, valid);
  kc.smem_store_requests += e.smem_store_req;
  kc.smem_store_transactions += e.smem_store_req;
  kc.smem_load_requests += e.smem_load_req;
  kc.smem_load_transactions += e.smem_load_req;
  kc.gmem_store_requests += e.gmem_store_req;
  kc.gmem_store_sectors += e.gmem_store_sectors;
}

}  // namespace

SddmmResult sddmm(const DenseOperand& a, const DenseOperand& b,
                  const sparse::BlockPattern& pattern,
                  const SddmmConfig& cfg) {
  pattern.validate();
  MAGICUBE_CHECK(a.row_major && !b.row_major);
  MAGICUBE_CHECK(a.cols == b.rows);
  MAGICUBE_CHECK(a.rows == pattern.rows && b.cols == pattern.cols);
  const std::size_t k = a.cols;
  // Alignment needed for the closed-form sector counts (segments never
  // straddle a 32-byte sector): K % 32 on the int8 path, K % 64 on int4.
  MAGICUBE_CHECK_MSG(k % (stride_for(cfg.precision) == 32 ? 64 : 32) == 0,
                     "K alignment requirement violated");

  Geom g = make_geom(cfg.precision, static_cast<int>(a.plane_count()),
                     static_cast<int>(b.plane_count()),
                     pattern.vector_length, k, cfg.prefetch);
  const BlockMap map = make_block_map(pattern);

  simt::LaunchConfig launch;
  launch.grid_blocks = map.row.size();
  launch.warps_per_block = cfg.warps_per_block;
  launch.smem_bytes_per_block = g.smem_bytes;

  SddmmResult result;
  result.c.rows = pattern.rows;
  result.c.cols = pattern.cols;
  result.c.vector_length = pattern.vector_length;
  result.c.row_ptr = pattern.row_ptr;
  result.c.col_idx = pattern.col_idx;
  result.c.values.assign(
      pattern.vector_count() * static_cast<std::size_t>(g.v), 0);

  BlockArgs args{&a, &b, &pattern, &g, &map, &result.c.values};
  result.run = simt::run_grid(
      launch, [&](simt::BlockContext& ctx) { run_block(ctx, args); });

  result.run.pipeline.total_steps = map.row.size() * g.steps;
  // LHS prefetching never hides the RHS register-load chain (see header).
  result.run.pipeline.prefetch = false;
  result.run.counters.dram_bytes = sddmm_dram_bytes(g, pattern);
  result.c.validate();
  return result;
}

simt::KernelRun sddmm_estimate(const sparse::BlockPattern& pattern,
                               std::size_t k_depth, const SddmmConfig& cfg) {
  MAGICUBE_CHECK(k_depth % (stride_for(cfg.precision) == 32 ? 64 : 32) == 0);
  const int p_planes = quant::plane_count(
      cfg.precision.lhs, bits_of(cfg.precision.rhs) <= 4 ? 4 : 8);
  const int q_planes = quant::plane_count(
      cfg.precision.rhs, bits_of(cfg.precision.rhs) <= 4 ? 4 : 8);
  Geom g = make_geom(cfg.precision, p_planes, q_planes,
                     pattern.vector_length, k_depth, cfg.prefetch);

  simt::KernelRun run;
  run.launch.warps_per_block = cfg.warps_per_block;
  run.launch.smem_bytes_per_block = g.smem_bytes;
  run.pipeline.prefetch = false;

  std::uint64_t blocks = 0;
  for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
    const std::uint64_t n_r = pattern.vectors_in_row(r);
    for (std::uint64_t base = 0; base < n_r; base += kSlotsPerBlock) {
      const std::uint64_t valid =
          std::min<std::uint64_t>(kSlotsPerBlock, n_r - base);
      run.counters += block_counters(g, pattern.row_ptr[r] + base, valid);
      blocks += 1;
    }
  }
  run.launch.grid_blocks = blocks;
  run.pipeline.total_steps = blocks * g.steps;
  run.counters.dram_bytes = sddmm_dram_bytes(g, pattern);
  return run;
}

std::uint64_t sddmm_useful_ops(const sparse::BlockPattern& pattern,
                               std::size_t k_depth) {
  return 2ull * pattern.nnz() * k_depth;
}

SddmmResult sddmm(const DenseOperandHandle& a, const DenseOperandHandle& b,
                  const sparse::BlockPattern& pattern,
                  const SddmmConfig& cfg) {
  MAGICUBE_CHECK_MSG(a && b, "sddmm handles must be non-null");
  return sddmm(*a, *b, pattern, cfg);
}

}  // namespace magicube::core
