#pragma once
// Plan-once/run-many execution engine: the split of *counting* from
// *computing*.
//
// Every core::spmm / core::sddmm call used to re-derive the tile geometry,
// rebuild the data-independent lane address schedules, allocate per-block
// scratch (accumulators, column sums, a fresh SharedMemory image) and
// simulate all 32 lanes with per-instruction transaction counting. But the
// schedules and the hardware-event counts depend only on the kernel
// geometry and the SR-BCRS *structure* — never on operand values — so they
// can be computed once per (sparsity pattern, kernel config) and replayed
// against any number of value sets. This mirrors the paper's own design
// separation (the SR-BCRS layout and Fig. 4/Fig. 10 maps are fixed by the
// structure) and the tile-schedule precomputation of cuTeSpMM/FlashSparse.
//
// An execution plan captures exactly the data-independent half:
//   * the lane schedules of every phase — LHS fragment sources (plane +
//     word per lane, Fig. 10b stacking baked in), RHS gather rows and word
//     columns of the online transpose, and per-slot RHS row byte bases —
//     with the shared-memory word map already folded into them;
//   * the full simt::KernelRun (launch shape, pipeline shape and
//     KernelCounters including compulsory DRAM traffic), computed
//     analytically from the structure.
//
// ExecMode::fast (the default) replays the schedules with little-endian
// SWAR word gathers straight from the packed plane buffers and an
// uncounted decode-once mma, reusing thread-local scratch arenas across
// blocks and run_grid calls. Outputs are bit-exact with the lane-accurate
// simulation and the analytic counters match the simulated counts exactly
// (asserted per precision pair x variant by tests/test_plan.cpp).
// ExecMode::simulate keeps the original instruction-level path as the
// reference and counter validator.
//
// The serving engine caches plans in serve::OperandCache next to the
// prepared operands (plan bytes charged to the same LRU budget), so
// repeated-pattern traffic skips planning entirely.

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/marshal.hpp"
#include "core/operands.hpp"
#include "simt/cost_model.hpp"

namespace magicube::core {

struct SpmmConfig;
struct SddmmConfig;

/// How a kernel entry point executes.
enum class ExecMode : std::uint8_t {
  simulate,  // lane-accurate simulation, counting every event as it runs
  fast,      // value-only replay of an execution plan; counters analytic
};

const char* to_string(ExecMode m);

/// Process-wide default used when a config leaves `mode` unset. Initialized
/// from the MAGICUBE_EXEC_MODE environment variable ("simulate" or "fast")
/// on first use; fast otherwise. set_default_exec_mode overrides at runtime
/// (the sanitizer CI lanes pin simulate this way without code changes).
ExecMode default_exec_mode();
void set_default_exec_mode(ExecMode m);

/// Which replay implementation ExecMode::fast runs.
///
///   panel    — block-panel engine: operand plane groups are decoded once
///              per stride tile into contiguous thread-local panel arenas
///              and multiplied with the vectorizable simt::mma_panel /
///              simt::dot_wrap micro-kernels, one invocation covering all
///              adjacent 8-column mma tiles of a block. The default.
///   fragment — the PR-3 per-fragment replay (lane-schedule word gathers,
///              register transpose, one scalar mma_decoded per 8x8 tile).
///              Kept as the in-tree comparison point and second reference.
///
/// Both kernels replay the same plan and are bit-exact with each other and
/// with ExecMode::simulate (asserted by tests/test_plan.cpp and inline by
/// bench/plan_vs_simulate before timing).
enum class ReplayKernel : std::uint8_t { panel, fragment };

const char* to_string(ReplayKernel k);

/// Process-wide default used when a config leaves `replay` unset.
/// Initialized from MAGICUBE_REPLAY_KERNEL ("panel" or "fragment") on first
/// use; panel otherwise. set_default_replay_kernel overrides at runtime.
ReplayKernel default_replay_kernel();
void set_default_replay_kernel(ReplayKernel k);

/// Replay micro-kernel bucket of one SpMM block row, classified at
/// plan-build time from the row's (shape, precision, v-stack depth,
/// column-panel width) and recorded in SpmmPlan::row_kernel. The panel
/// replay engine dispatches each row to its bucket's specialized kernel;
/// every bucket is bit-exact mod 2^32 with the generic path (asserted by
/// tests/test_tensor_core_panel.cpp and tests/test_plan.cpp).
enum class PanelKernelId : std::uint8_t {
  generic = 0,  // runtime-width mma_panel (bsn != 64)
  fixed64 = 1,  // compile-time 64-wide panels, full stacked plane groups
  stacked = 2,  // 64-wide with a partial last stacked group (row-limited)
  fused = 3,    // single group x single RHS plane: fused decode+mma
  empty = 4,    // structurally empty row — no reduction steps at all
};

const char* to_string(PanelKernelId id);

/// Replay micro-kernel bucket of one SDDMM thread block (recorded per
/// block in SddmmPlan::block_kernel).
enum class SddmmKernelId : std::uint8_t {
  generic = 0,       // full plane cross product over a full block
  fused_single = 1,  // p == q == 1, full block: one dot per slot, weight 1
  tail = 2,          // partial block (valid < 16 slots)
};

const char* to_string(SddmmKernelId id);

inline constexpr int kPanelKernelIds = 5;
inline constexpr int kSddmmKernelIds = 3;
// counters.hpp fixes the bucket-counter array widths without seeing these
// enums (the simt layer sits below the plan layer); keep them in lock step.
static_assert(kPanelKernelIds == simt::kSpmmBucketKinds,
              "PanelKernelId out of sync with simt::kSpmmBucketKinds");
static_assert(kSddmmKernelIds == simt::kSddmmBucketKinds,
              "SddmmKernelId out of sync with simt::kSddmmBucketKinds");

/// Whether ExecMode::fast panel replay dispatches the per-bucket
/// specialized micro-kernels (the default) or forces the generic
/// mma_panel/dot_wrap path for every row. Plans always *record* buckets —
/// the toggle affects dispatch only, so flipping it replays the same plan
/// bit-exactly (the plan-equivalence property tests lean on this).
/// Initialized from MAGICUBE_PANEL_BUCKETS ("on" or "off") on first use;
/// on otherwise. set_default_panel_buckets overrides at runtime.
bool default_panel_buckets();
void set_default_panel_buckets(bool on);

namespace detail {

/// SpMM geometry shared by the functional kernel, the fast replay loop and
/// the analytic estimator (formerly private to spmm.cpp).
struct SpmmGeom {
  // Datapath.
  int stride = 16;       // mma k = SR-BCRS stride
  int chunk = 8;         // plane width (bits)
  int epw = 4;           // elements per 32-bit word
  int row_words = 16;    // words per RHS tile row (bsn * chunk / 32)
  int phases = 4;        // RHS fragment words per thread
  int rows_per_frag = 4; // consecutive k rows per fragment register
  bool int4path = false;

  // Operands.
  int v = 8;             // vector length (BSm)
  int p = 1;             // LHS planes
  int q = 1;             // RHS planes
  int s = 1;             // planes stacked per mma (Fig. 10b)
  int g = 1;             // plane groups = ceil(p / s)
  bool lhs_signed = true;
  bool bias_correct = false;  // last group stacks the signed top plane

  std::size_t n = 0, k = 0, bsn = 64, col_blocks = 0;
  bool padded = true;    // conflict-free smem layout
  bool prefetch = false;
  bool shuffle = false;  // int4 index shuffling
  RhsTileLayout layout;

  // Shared-memory word map.
  std::size_t idx_base = 0, lhs_base = 0, rhs_base = 0;
  std::size_t lhs_words_per_plane = 0, smem_words = 0;

  int group_size(int grp) const {
    return grp * s + s <= p ? s : p - grp * s;
  }
  /// Whether plane `pl` is the signed top plane.
  bool is_top(int pl) const { return lhs_signed && pl == p - 1; }
};

SpmmGeom make_spmm_geom(const SparseOperand& a_meta, int q_planes,
                        std::size_t n, std::size_t k, const SpmmConfig& cfg);

/// Shared-memory bytes of one SpMM block (Algorithm 1 double-buffers the
/// LHS + indices when prefetching).
std::size_t spmm_smem_bytes(const SpmmGeom& g);

/// Closed-form counters of one SpMM thread block with `steps` accumulation
/// steps and `valid` unpadded vectors, mirroring the simulated block event
/// for event (equality asserted by the test suite).
simt::KernelCounters spmm_block_counters(const SpmmGeom& g,
                                         std::uint64_t steps,
                                         std::uint64_t valid);

/// Compulsory DRAM traffic of one SpMM invocation (operand first-touch
/// bytes; the RHS working set fits the modeled 40 MB L2).
std::uint64_t spmm_dram_bytes(const SpmmGeom& g, std::size_t slots,
                              std::uint64_t valid_vectors,
                              std::size_t vector_rows);

/// Epilogue event bundle of one SpMM block (staged writeback through a
/// swizzled smem buffer), shared by the simulated kernel and the estimator.
struct SpmmEpilogueCounts {
  std::uint64_t smem_store_req, smem_store_trans;
  std::uint64_t smem_load_req, smem_load_trans;
  std::uint64_t gmem_store_req, gmem_store_sectors;
};
SpmmEpilogueCounts spmm_epilogue_counts(const SpmmGeom& g);

/// Warp-shuffle instructions of the stacked-plane combine, per accumulator
/// register (butterfly gather: 1 partner for s=2, 3 partners for s in 3..4).
inline std::uint64_t stack_shfls(int s) {
  return s <= 1 ? 0 : (s == 2 ? 1 : 3);
}

/// SDDMM geometry (formerly private to sddmm.cpp).
struct SddmmGeom {
  int stride = 16;  // mma k
  int chunk = 8;
  int epw = 4;
  bool int4path = false;

  int v = 8;
  int p = 1;  // LHS planes
  int q = 1;  // RHS planes
  std::size_t k = 0;
  std::uint64_t steps = 0;  // k / stride
  bool prefetch = false;

  std::size_t lhs_words_per_plane = 0;
  std::size_t smem_bytes = 0;
};

SddmmGeom make_sddmm_geom(PrecisionPair pr, int p_planes, int q_planes,
                          int v, std::size_t k, bool prefetch);

inline constexpr int kSddmmSlotsPerBlock = 16;  // 8 vectors/warp x 2 warps

/// SDDMM block decomposition: one entry per thread block.
struct SddmmBlockMap {
  std::vector<std::uint32_t> row;        // block -> vector row
  std::vector<std::uint32_t> slot_base;  // block -> first pattern vector
  std::vector<std::uint32_t> valid;      // block -> valid slots (<= 16)
};
SddmmBlockMap make_sddmm_block_map(const sparse::BlockPattern& pattern);

/// Closed-form counters of one SDDMM block.
simt::KernelCounters sddmm_block_counters(const SddmmGeom& g,
                                          std::size_t slot_base,
                                          std::uint64_t valid);

std::uint64_t sddmm_dram_bytes(const SddmmGeom& g,
                               const sparse::BlockPattern& pattern);

/// Writeback event bundle of one SDDMM block holding `valid` vectors.
struct SddmmEpilogueCounts {
  std::uint64_t smem_store_req, smem_load_req, gmem_store_req,
      gmem_store_sectors;
};
SddmmEpilogueCounts sddmm_epilogue_counts(const SddmmGeom& g,
                                          std::uint64_t valid);

/// Plan-time bucket classification of one SpMM block row with `steps`
/// reduction steps — shared verbatim by the plan builder, the analytic
/// estimator (bucket counters must agree exactly for the pricing parity
/// the SLA layer asserts) and the replay dispatch.
PanelKernelId classify_spmm_row(const SpmmGeom& g, std::uint64_t steps);

/// Same for one SDDMM thread block holding `valid` pattern vectors.
SddmmKernelId classify_sddmm_block(const SddmmGeom& g, std::uint64_t valid);

/// Little-endian 32-bit gather from a packed plane byte buffer: the SWAR
/// word op of the fast path. Operand words are epw elements of chunk bits
/// packed element-0-lowest, i.e. exactly the little-endian bytes the
/// PackedBuffer stores, so one 4-byte read replaces epw get_raw bit loops.
inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace detail

/// Sentinel in SpmmPlan::rhs_row_base for padded slots (the "*" columns).
inline constexpr std::size_t kNoRhsRow =
    std::numeric_limits<std::size_t>::max();

/// Execution plan for core::spmm on one (SR-BCRS structure, config, N)
/// triple. Immutable once built; any number of concurrent replays may
/// share one plan (the serving engine aliases cached plans exactly like
/// cached operands).
struct SpmmPlan {
  detail::SpmmGeom geom;

  /// Analytic launch + pipeline + counters (DRAM included) of one replay.
  simt::KernelRun run;

  /// LHS fragment schedule: for plane group `grp`, lane `t` loads word
  /// `word` of plane `plane`'s current stride tile (word < 0: inactive).
  struct LaneSrc {
    std::int8_t plane = -1;
    std::int8_t word = -1;
  };
  std::vector<std::array<LaneSrc, 32>> a_frag_src;  // [group][lane]
  /// Lanes of the last group whose word belongs to the signed top plane
  /// (bias-encoded with the msb mask before the mma).
  std::array<std::uint8_t, 32> bias_lane{};

  /// RHS gather schedule of the online transpose: during fragment phase
  /// `ph`, lane `t` reads stride row rhs_k_row[ph][t] at word column
  /// rhs_word_col[w * phases + ph][t].
  std::vector<std::array<std::int8_t, 32>> rhs_k_row;     // [phase][lane]
  std::vector<std::array<std::int8_t, 32>> rhs_word_col;  // [w*phases+ph][lane]

  /// Per-slot RHS row byte base (col * N * chunk / 8), kNoRhsRow for
  /// padding — the SR-BCRS column indices resolved once.
  std::vector<std::size_t> rhs_row_base;

  /// Panel replay schedule: the lane schedules above flattened to tile
  /// coordinates. For plane group `grp`, panel row `rr` (0..7, the mma A
  /// row with Fig. 10b plane stacking baked in) decodes LHS plane `plane`,
  /// tile row `row` (both < 0: inactive, zero row); `biased` rows
  /// bias-encode the stacked signed top plane before the unsigned decode.
  /// The RHS panel needs no schedule of its own — rhs_row_base already
  /// names each stride row's bytes, and a block's bsn columns are
  /// contiguous in the plane buffer.
  struct PanelRow {
    std::int8_t plane = -1;
    std::int8_t row = -1;
    std::uint8_t biased = 0;
  };
  std::vector<std::array<PanelRow, 8>> a_panel_src;  // [group][panel row]

  /// B-panel k schedule: natural reduction row `k` of a stride tile gathers
  /// from slot `slot_base + panel_k_slot[k]`. Identity except on the
  /// shuffled int4 format, where the column indices sit in block-of-8
  /// shuffled order while the values (and thus the A panel) stay natural —
  /// the inverse permutation the Fig. 7 register transpose applies.
  std::array<std::uint8_t, 32> panel_k_slot{};

  /// Replay kernel bucket of each block row (PanelKernelId values, indexed
  /// by vector row), classified once at build time.
  std::vector<std::uint8_t> row_kernel;

  /// Heap + inline bytes held by the plan (cache accounting).
  std::size_t footprint_bytes() const;
};

using SpmmPlanHandle = std::shared_ptr<const SpmmPlan>;

/// Builds the SpMM plan for a prepared LHS structure and RHS width. The
/// plan never references `a` afterwards; it applies to any operand pair
/// prepared from the same pattern/config (compatibility is asserted at
/// replay time).
SpmmPlanHandle build_spmm_plan(const SparseOperand& a, std::size_t n_cols,
                               const SpmmConfig& cfg);

/// Builds the SpMM plan from the sparsity pattern alone: plans are
/// value-free, so encoding just the SR-BCRS *structure* (row pointers +
/// column indices, shuffled when the config requires it) yields the exact
/// plan a prepared operand would. O(slots), no value buffers touched —
/// this is how plan-threaded layers (transformer::, the latency model)
/// plan before any weights exist.
SpmmPlanHandle build_spmm_plan(const sparse::BlockPattern& pattern,
                               std::size_t n_cols, const SpmmConfig& cfg);

/// Execution plan for core::sddmm on one (pattern, config, K) triple.
struct SddmmPlan {
  detail::SddmmGeom geom;
  simt::KernelRun run;
  detail::SddmmBlockMap map;

  /// LHS fragment schedule: lane `t` reads word `t % 4` of tile row
  /// a_row[t] (< 0: inactive, V < 8).
  std::array<std::int8_t, 32> a_row{};

  /// Per-pattern-vector RHS column byte base (col * K * chunk / 8).
  std::vector<std::size_t> rhs_col_base;

  /// Panel replay schedule: byte base of LHS tile row `row` within a
  /// vector-row panel (row * K * chunk / 8, rows 0..V-1). The A panel of
  /// block row r then lives at (r * V) * a_row_bytes + a_panel_row_base[row]
  /// for the full reduction depth — the SDDMM panel kernel dots whole rows,
  /// no per-step staging.
  std::array<std::size_t, 8> a_panel_row_base{};

  /// Replay kernel bucket of each thread block (SddmmKernelId values,
  /// indexed like `map`), classified once at build time.
  std::vector<std::uint8_t> block_kernel;

  std::size_t footprint_bytes() const;
};

using SddmmPlanHandle = std::shared_ptr<const SddmmPlan>;

SddmmPlanHandle build_sddmm_plan(const sparse::BlockPattern& pattern,
                                 std::size_t k_depth, const SddmmConfig& cfg);

/// Per-stage plan handles of one fused multi-stage schedule over a single
/// sparse structure — the attention DAG's SDDMM and SpMM share the mask, so
/// one context resolves the whole schedule's plans with one identity
/// (serve::GraphRequest keys on exactly this pair plus the operand probes).
/// Both handles alias cache-resident plans; holding the pair keeps a fused
/// request's schedule coherent (either stage missing means the DAG has not
/// been planned yet).
struct StagePlanHandles {
  SddmmPlanHandle sddmm;  // stage 1: sampled QK^T
  SpmmPlanHandle spmm;    // stage 3: attention-weights x V
  explicit operator bool() const {
    return sddmm != nullptr && spmm != nullptr;
  }
  /// Aggregate plan footprint (cache accounting of the fused schedule).
  std::size_t footprint_bytes() const {
    return (sddmm ? sddmm->footprint_bytes() : 0) +
           (spmm ? spmm->footprint_bytes() : 0);
  }
};

}  // namespace magicube::core
