#include "core/spmm.hpp"

#include <algorithm>
#include <array>

#include "core/marshal.hpp"
#include "core/plan.hpp"
#include "simt/launch.hpp"
#include "simt/memory.hpp"
#include "simt/tensor_core.hpp"

namespace magicube::core {

const char* to_string(SpmmVariant v) {
  switch (v) {
    case SpmmVariant::basic: return "basic";
    case SpmmVariant::conflict_free: return "conflict-free";
    case SpmmVariant::conflict_free_prefetch: return "conflict-free+prefetch";
    case SpmmVariant::full: return "conflict-free+prefetch+shuffle";
  }
  return "?";
}

namespace {

using simt::AccumFrag;
using simt::KernelCounters;
using simt::LaneAddrs;
using simt::LaneWords;
using simt::WarpReg;

using Geom = detail::SpmmGeom;
using detail::load_le32;
using detail::stack_shfls;

int output_col(const Geom& g, int mma, int tile_col) {
  return g.int4path ? spmm_output_col_int4(mma, tile_col)
                    : spmm_output_col_int8(mma, tile_col);
}

// ---- Value helpers shared by the simulated and fast paths -----------------
// Pure data transformations; event counting stays with each caller.

/// Register transpose of one loaded RHS phase set (Fig. 5 / Fig. 7):
/// b_regs[lane][i] = fragment register of mma i for this lane.
void transpose_b_regs(const Geom& g,
                      const std::array<std::array<std::uint32_t, 8>, 32>& loaded,
                      std::array<std::array<std::uint32_t, 4>, 32>& b_regs) {
  if (g.int4path) {
    for (int lane = 0; lane < 32; ++lane) {
      std::array<std::uint32_t, 8> in{};
      for (int i = 0; i < 8; ++i) {
        in[static_cast<std::size_t>(i)] =
            loaded[static_cast<std::size_t>(lane)][static_cast<std::size_t>(i)];
      }
      const auto out = g.shuffle ? transpose_int4_shuffled(in)
                                 : transpose_int4_naive(in);
      const int h = (lane / 4) / 4;
      for (int i = 0; i < 4; ++i) {
        b_regs[static_cast<std::size_t>(lane)][static_cast<std::size_t>(i)] =
            out[static_cast<std::size_t>(4 * h + i)];
      }
    }
  } else {
    for (int lane = 0; lane < 32; ++lane) {
      std::array<std::uint32_t, 4> in{};
      for (int i = 0; i < 4; ++i) {
        in[static_cast<std::size_t>(i)] =
            loaded[static_cast<std::size_t>(lane)][static_cast<std::size_t>(i)];
      }
      b_regs[static_cast<std::size_t>(lane)] = transpose_4x4_bytes(in);
    }
  }
}

/// Bias-correction column sums of one transposed RHS fragment set.
void update_colsum(const Geom& g,
                   const std::array<std::array<std::uint32_t, 4>, 32>& b_regs,
                   bool b_signed, int w, int qq, std::int64_t* colsum) {
  for (int lane = 0; lane < 32; ++lane) {
    for (int i = 0; i < 4; ++i) {
      const std::uint32_t reg =
          b_regs[static_cast<std::size_t>(lane)][static_cast<std::size_t>(i)];
      const int tile_col = lane / 4;
      const int local_col = output_col(g, i, tile_col);
      std::int64_t sum = 0;
      for (int e = 0; e < g.epw; ++e) {
        const std::uint32_t raw =
            (reg >> (g.chunk * e)) & ((1u << g.chunk) - 1u);
        sum += b_signed ? sign_extend(raw, g.chunk)
                        : static_cast<std::int32_t>(raw);
      }
      colsum[static_cast<std::size_t>((w * g.q + qq) * 32 + local_col)] += sum;
    }
  }
}

/// Operand signedness of the LHS fragment of group `grp` as issued to the
/// mma (stacked/biased groups run unsigned; see §IV-D).
bool lhs_group_signed(const Geom& g, const SparseOperand& a, int grp) {
  const bool stacked_bias = g.bias_correct && grp == g.g - 1;
  if (g.group_size(grp) == 1) {
    bool a_signed = a.planes[static_cast<std::size_t>(grp * g.s)].is_signed;
    if (g.is_top(grp * g.s) && stacked_bias) a_signed = false;
    return a_signed;
  }
  return false;  // raw / biased chunks
}

/// Weighted plane combine + writeback of one block's accumulators (the
/// value half of the epilogue; callers add the event counts).
void spmm_value_epilogue(const Geom& g, const SparseOperand& a,
                         const DenseOperand& b, const AccumFrag* acc,
                         const std::int64_t* colsum, std::size_t r,
                         std::size_t cb, Matrix<std::int32_t>& c) {
  const std::size_t v = static_cast<std::size_t>(g.v);
  auto acc_at = [&](int w, int grp, int qq, int mma) -> const AccumFrag& {
    return acc[static_cast<std::size_t>(((w * g.g + grp) * g.q + qq) * 4 +
                                        mma)];
  };
  for (int w = 0; w < 2; ++w) {
    for (int mma = 0; mma < 4; ++mma) {
      for (int lane = 0; lane < 32; ++lane) {
        const int row = lane / 4;
        if (row >= g.v) continue;
        const std::size_t out_row = r * v + static_cast<std::size_t>(row);
        for (int cc = 0; cc < 2; ++cc) {
          const int tile_col = 2 * (lane % 4) + cc;
          const int local_col = output_col(g, mma, tile_col);
          std::int64_t total = 0;
          for (int grp = 0; grp < g.g; ++grp) {
            for (int lp = 0; lp < g.group_size(grp); ++lp) {
              const int pl = grp * g.s + lp;
              const std::int64_t wp =
                  a.planes[static_cast<std::size_t>(pl)].weight;
              const int src_lane = (lp * g.v + row) * 4 + (lane % 4);
              for (int qq = 0; qq < g.q; ++qq) {
                const std::int64_t vq =
                    b.planes[static_cast<std::size_t>(qq)].weight;
                std::int64_t part =
                    acc_at(w, grp, qq, mma)
                        .c[static_cast<std::size_t>(src_lane)]
                        [static_cast<std::size_t>(cc)];
                if (g.bias_correct && grp == g.g - 1 && g.is_top(pl)) {
                  // Undo the excess encoding: C_top = C_raw - 2^(b-1)*colsum.
                  part -= (std::int64_t{1} << (g.chunk - 1)) *
                          colsum[static_cast<std::size_t>(
                              (w * g.q + qq) * 32 + local_col)];
                }
                total += wp * vq * part;
              }
            }
          }
          const std::size_t out_col =
              cb * g.bsn + static_cast<std::size_t>(w) * 32 +
              static_cast<std::size_t>(local_col);
          c(out_row, out_col) = static_cast<std::int32_t>(total);
        }
      }
    }
  }
}

// ---- Functional (lane-accurate) kernel ------------------------------------

struct BlockArgs {
  const SparseOperand* a;
  const DenseOperand* b;
  const Geom* g;
  Matrix<std::int32_t>* c;
};

void run_block(simt::BlockContext& ctx, const BlockArgs& args) {
  const SparseOperand& a = *args.a;
  const DenseOperand& b = *args.b;
  const Geom& g = *args.g;
  KernelCounters& kc = ctx.counters;
  const sparse::SrBcrs& sr = a.structure;

  const std::size_t r = ctx.block_id / g.col_blocks;
  const std::size_t cb = ctx.block_id % g.col_blocks;
  const std::size_t steps = sr.strides_in_row(r);
  const std::size_t stride = static_cast<std::size_t>(g.stride);
  const std::size_t v = static_cast<std::size_t>(g.v);

  // Accumulators: [warp][group][rhs plane][mma].
  std::vector<AccumFrag> acc(
      static_cast<std::size_t>(2 * g.g * g.q * 4));
  auto acc_at = [&](int w, int grp, int qq, int mma) -> AccumFrag& {
    return acc[static_cast<std::size_t>(
        ((w * g.g + grp) * g.q + qq) * 4 + mma)];
  };
  // Bias-correction column sums: [warp][rhs plane][warp-local col].
  std::vector<std::int64_t> colsum(
      g.bias_correct ? static_cast<std::size_t>(2 * g.q * 32) : 0, 0);

  for (std::size_t st = 0; st < steps; ++st) {
    const std::size_t slot_base = sr.first_ptr[r] + st * stride;

    // ---- Phase 1: column indices, global -> shared ----
    {
      LaneAddrs ga;
      ga.fill(simt::kInactiveLane);
      LaneAddrs sa;
      sa.fill(simt::kInactiveLane);
      LaneWords vals{};
      for (std::size_t l = 0; l < stride; ++l) {
        ga[l] = (slot_base + l) * 4;
        sa[l] = g.idx_base + l;
        vals[l] = sr.col_idx[slot_base + l];
      }
      simt::count_gmem_load(ga, 4, kc);
      ctx.smem.st32(sa, vals, kc);
    }

    // ---- Phase 2: LHS stride tile (all planes), global -> shared ----
    for (int pl = 0; pl < g.p; ++pl) {
      const auto& plane = a.planes[static_cast<std::size_t>(pl)];
      const std::size_t words = g.lhs_words_per_plane;
      const std::size_t byte_base =
          slot_base * v * static_cast<std::size_t>(g.chunk) / 8;
      LaneAddrs ga;
      ga.fill(simt::kInactiveLane);
      LaneAddrs sa;
      sa.fill(simt::kInactiveLane);
      LaneWords vals{};
      for (std::size_t l = 0; l < words && l < 32; ++l) {
        ga[l] = byte_base + l * 4;
        sa[l] = g.lhs_base + static_cast<std::size_t>(pl) * words + l;
        std::uint32_t w = 0;
        for (int e = 0; e < g.epw; ++e) {
          const std::size_t elem =
              slot_base * v + l * static_cast<std::size_t>(g.epw) +
              static_cast<std::size_t>(e);
          w |= plane.values.get_raw(elem) << (g.chunk * e);
        }
        vals[l] = w;
      }
      simt::count_gmem_load(ga, 4, kc);
      ctx.smem.st32(sa, vals, kc);
    }

    // ---- Phase 3: RHS rows named by the indices, global -> shared ----
    // Rows are batched so a warp-wide request fills all 32 lanes: two rows
    // per request on the int8 path (16 words each), four on int4 (8 words).
    // Padded slots store zeros without touching global memory.
    kc.smem_load_requests += 1;  // the index read that drives addressing
    kc.smem_load_transactions += 1;
    const std::size_t rows_per_req = 32 / static_cast<std::size_t>(g.row_words);
    for (int qq = 0; qq < g.q; ++qq) {
      const auto& plane = b.planes[static_cast<std::size_t>(qq)];
      for (std::size_t k0 = 0; k0 < stride; k0 += rows_per_req) {
        LaneAddrs ga;
        ga.fill(simt::kInactiveLane);
        LaneAddrs sa;
        sa.fill(simt::kInactiveLane);
        LaneWords vals{};
        for (std::size_t dk = 0; dk < rows_per_req; ++dk) {
          const std::size_t kk = k0 + dk;
          const std::uint32_t col = sr.col_idx[slot_base + kk];
          const std::size_t lane0 =
              dk * static_cast<std::size_t>(g.row_words);
          for (int l = 0; l < g.row_words; ++l) {
            sa[lane0 + static_cast<std::size_t>(l)] =
                g.rhs_base +
                static_cast<std::size_t>(qq) * g.layout.total_words() +
                g.layout.row_start_word(static_cast<int>(kk)) +
                static_cast<std::size_t>(l);
          }
          if (col == sparse::kInvalidCol) continue;
          const std::size_t byte_base =
              (static_cast<std::size_t>(col) * g.n + cb * g.bsn) *
              static_cast<std::size_t>(g.chunk) / 8;
          for (int l = 0; l < g.row_words; ++l) {
            ga[lane0 + static_cast<std::size_t>(l)] =
                byte_base + static_cast<std::size_t>(l) * 4;
            std::uint32_t w = 0;
            for (int e = 0; e < g.epw; ++e) {
              const std::size_t cidx =
                  cb * g.bsn + static_cast<std::size_t>(l * g.epw + e);
              w |= plane.values.get_raw(b.flat_index(col, cidx))
                   << (g.chunk * e);
            }
            vals[lane0 + static_cast<std::size_t>(l)] = w;
          }
        }
        simt::count_gmem_load(ga, 4, kc);
        ctx.smem.st32(sa, vals, kc);
      }
    }
    kc.syncthreads += g.prefetch ? 2 : 1;

    // ---- Phase 4: per-warp fragment loads, transpose, mma ----
    for (int w = 0; w < 2; ++w) {
      // LHS fragments, one per plane group (stacked planes share the mma).
      std::vector<WarpReg> a_frag(static_cast<std::size_t>(g.g));
      for (int grp = 0; grp < g.g; ++grp) {
        LaneAddrs sa;
        sa.fill(simt::kInactiveLane);
        for (int lane = 0; lane < 32; ++lane) {
          const int row = lane / 4;
          const int lp = row / g.v;
          const int pl = grp * g.s + lp;
          if (pl >= g.p || lp >= g.group_size(grp)) continue;
          const int rb = row % g.v;
          sa[static_cast<std::size_t>(lane)] =
              g.lhs_base +
              static_cast<std::size_t>(pl) * g.lhs_words_per_plane +
              static_cast<std::size_t>(rb) * 4 +
              static_cast<std::size_t>(lane % 4);
        }
        LaneWords words = ctx.smem.ld32(sa, kc);
        // Bias-encode the stacked signed top plane: raw ^ MSB turns the
        // two's-complement chunk into its excess-2^(b-1) representation.
        const bool biased = g.bias_correct && grp == g.g - 1;
        if (biased) {
          const std::uint32_t msb_mask =
              g.chunk == 4 ? 0x88888888u : 0x80808080u;
          for (int lane = 0; lane < 32; ++lane) {
            const int row = lane / 4;
            const int pl = grp * g.s + row / g.v;
            if (pl == g.p - 1 && sa[static_cast<std::size_t>(lane)] !=
                                     simt::kInactiveLane) {
              words[static_cast<std::size_t>(lane)] ^= msb_mask;
            }
          }
          kc.alu_ops += 1;
        }
        a_frag[static_cast<std::size_t>(grp)] = words;
      }

      // RHS fragments per plane: phased loads + register transpose.
      for (int qq = 0; qq < g.q; ++qq) {
        // Per-lane loaded words (phases of one ld32 each).
        std::array<std::array<std::uint32_t, 8>, 32> loaded{};
        for (int ph = 0; ph < g.phases; ++ph) {
          LaneAddrs sa;
          sa.fill(simt::kInactiveLane);
          for (int lane = 0; lane < 32; ++lane) {
            const int word_col = spmm_rhs_word_col(g.int4path, w, lane);
            const int k_row = spmm_rhs_k_row(g.int4path, ph, lane);
            sa[static_cast<std::size_t>(lane)] =
                g.rhs_base +
                static_cast<std::size_t>(qq) * g.layout.total_words() +
                g.layout.row_start_word(k_row) +
                static_cast<std::size_t>(word_col);
          }
          const LaneWords words = ctx.smem.ld32(sa, kc);
          for (int lane = 0; lane < 32; ++lane) {
            loaded[static_cast<std::size_t>(lane)]
                  [static_cast<std::size_t>(ph)] =
                      words[static_cast<std::size_t>(lane)];
          }
        }

        // Transpose on registers.
        std::array<std::array<std::uint32_t, 4>, 32> b_regs{};
        transpose_b_regs(g, loaded, b_regs);
        kc.alu_ops += g.int4path ? (g.shuffle ? kInt4ShuffledAluOps
                                              : kInt4NaiveAluOps)
                                 : kInt8TransposeAluOps;

        // Bias-correction column sums (signed values of this RHS plane).
        if (g.bias_correct) {
          update_colsum(g, b_regs,
                        b.planes[static_cast<std::size_t>(qq)].is_signed, w,
                        qq, colsum.data());
          kc.alu_ops += static_cast<std::uint64_t>(4 * g.phases);
        }

        // mma issues: one per (group, mma index).
        const bool b_signed =
            b.planes[static_cast<std::size_t>(qq)].is_signed;
        for (int grp = 0; grp < g.g; ++grp) {
          const bool a_signed = lhs_group_signed(g, a, grp);
          for (int mma = 0; mma < 4; ++mma) {
            WarpReg b_frag{};
            for (int lane = 0; lane < 32; ++lane) {
              b_frag[static_cast<std::size_t>(lane)] =
                  b_regs[static_cast<std::size_t>(lane)]
                        [static_cast<std::size_t>(mma)];
            }
            AccumFrag& dst = acc_at(w, grp, qq, mma);
            if (g.int4path) {
              simt::mma_m8n8k32(dst, a_frag[static_cast<std::size_t>(grp)],
                                b_frag, dst, a_signed, b_signed, kc);
            } else {
              simt::mma_m8n8k16(dst, a_frag[static_cast<std::size_t>(grp)],
                                b_frag, dst, a_signed, b_signed, kc);
            }
          }
        }
      }
    }
    kc.syncthreads += 1;
  }

  // ---- Epilogue: weighted plane combine + writeback ----
  spmm_value_epilogue(g, a, b, acc.data(), colsum.data(), r, cb, *args.c);
  // Shuffle + ALU cost of the combine (2 per warp x 8 (w, mma) pairs).
  kc.shfl_ops += 16 * stack_shfls(g.s) * static_cast<std::uint64_t>(g.g) *
                 static_cast<std::uint64_t>(g.q);
  kc.alu_ops += 32 * static_cast<std::uint64_t>(g.p) *
                static_cast<std::uint64_t>(g.q);
  // Staged writeback events (see spmm_epilogue_counts derivation).
  const detail::SpmmEpilogueCounts e = detail::spmm_epilogue_counts(g);
  kc.smem_store_requests += e.smem_store_req;
  kc.smem_store_transactions += e.smem_store_trans;
  kc.smem_load_requests += e.smem_load_req;
  kc.smem_load_transactions += e.smem_load_trans;
  kc.gmem_store_requests += e.gmem_store_req;
  kc.gmem_store_sectors += e.gmem_store_sectors;
  kc.syncthreads += 1;
}

// ---- Fast path: value-only plan replay ------------------------------------

/// Thread-local scratch arena reused across blocks and run_grid calls (the
/// fast path never allocates per block).
struct SpmmScratch {
  std::vector<AccumFrag> acc;
  std::vector<std::int64_t> colsum;
  std::vector<simt::DecodedFrag> a_dec;       // one per plane group
  std::array<simt::DecodedFrag, 4> b_dec{};   // one per mma index
};

SpmmScratch& spmm_scratch() {
  thread_local SpmmScratch scratch;
  return scratch;
}

void fast_block(std::size_t blk, const SparseOperand& a,
                const DenseOperand& b, const SpmmPlan& plan,
                Matrix<std::int32_t>& c) {
  const Geom& g = plan.geom;
  const sparse::SrBcrs& sr = a.structure;
  const std::size_t r = blk / g.col_blocks;
  const std::size_t cb = blk % g.col_blocks;
  const std::size_t steps = sr.strides_in_row(r);
  const std::size_t stride = static_cast<std::size_t>(g.stride);
  const std::size_t v = static_cast<std::size_t>(g.v);
  const std::size_t chunk = static_cast<std::size_t>(g.chunk);

  SpmmScratch& s = spmm_scratch();
  s.acc.assign(static_cast<std::size_t>(2 * g.g * g.q * 4), AccumFrag{});
  s.colsum.assign(
      g.bias_correct ? static_cast<std::size_t>(2 * g.q * 32) : 0, 0);
  s.a_dec.resize(static_cast<std::size_t>(g.g));
  auto acc_at = [&](int w, int grp, int qq, int mma) -> AccumFrag& {
    return s.acc[static_cast<std::size_t>(
        ((w * g.g + grp) * g.q + qq) * 4 + mma)];
  };

  const std::size_t cb_byte = cb * g.bsn * chunk / 8;
  const std::uint32_t msb_mask = g.chunk == 4 ? 0x88888888u : 0x80808080u;

  for (std::size_t st = 0; st < steps; ++st) {
    const std::size_t slot_base = sr.first_ptr[r] + st * stride;
    const std::size_t lhs_byte = slot_base * v * chunk / 8;

    // LHS fragments: the staged stride tile is a contiguous copy of the
    // plane bytes, so the schedule gathers words straight from them. Both
    // warps load identical fragments — gathered and decoded once per step.
    for (int grp = 0; grp < g.g; ++grp) {
      WarpReg frag{};
      const auto& srcs = plan.a_frag_src[static_cast<std::size_t>(grp)];
      const bool biased = g.bias_correct && grp == g.g - 1;
      for (int lane = 0; lane < 32; ++lane) {
        const SpmmPlan::LaneSrc src = srcs[static_cast<std::size_t>(lane)];
        std::uint32_t word = 0;
        if (src.word >= 0) {
          word = load_le32(
              a.planes[static_cast<std::size_t>(src.plane)].values.data() +
              lhs_byte + 4u * static_cast<unsigned>(src.word));
          if (biased && plan.bias_lane[static_cast<std::size_t>(lane)]) {
            word ^= msb_mask;
          }
        }
        frag[static_cast<std::size_t>(lane)] = word;
      }
      simt::DecodedFrag& dec = s.a_dec[static_cast<std::size_t>(grp)];
      if (g.int4path) {
        simt::decode_frag_int4(frag, lhs_group_signed(g, a, grp), dec);
      } else {
        simt::decode_frag_int8(frag, lhs_group_signed(g, a, grp), dec);
      }
    }

    for (int w = 0; w < 2; ++w) {
      for (int qq = 0; qq < g.q; ++qq) {
        const std::uint8_t* b_bytes =
            b.planes[static_cast<std::size_t>(qq)].values.data();
        std::array<std::array<std::uint32_t, 8>, 32> loaded{};
        for (int ph = 0; ph < g.phases; ++ph) {
          const auto& k_row = plan.rhs_k_row[static_cast<std::size_t>(ph)];
          const auto& word_col =
              plan.rhs_word_col[static_cast<std::size_t>(w * g.phases + ph)];
          for (int lane = 0; lane < 32; ++lane) {
            const std::size_t base = plan.rhs_row_base
                [slot_base +
                 static_cast<std::size_t>(k_row[static_cast<std::size_t>(lane)])];
            loaded[static_cast<std::size_t>(lane)]
                  [static_cast<std::size_t>(ph)] =
                base == kNoRhsRow
                    ? 0
                    : load_le32(b_bytes + base + cb_byte +
                                4u * static_cast<unsigned>(
                                         word_col[static_cast<std::size_t>(
                                             lane)]));
          }
        }

        std::array<std::array<std::uint32_t, 4>, 32> b_regs{};
        transpose_b_regs(g, loaded, b_regs);
        if (g.bias_correct) {
          update_colsum(g, b_regs,
                        b.planes[static_cast<std::size_t>(qq)].is_signed, w,
                        qq, s.colsum.data());
        }

        // Decode each mma's RHS fragment once; every plane group reuses it.
        const bool b_signed =
            b.planes[static_cast<std::size_t>(qq)].is_signed;
        for (int mma = 0; mma < 4; ++mma) {
          WarpReg b_frag{};
          for (int lane = 0; lane < 32; ++lane) {
            b_frag[static_cast<std::size_t>(lane)] =
                b_regs[static_cast<std::size_t>(lane)]
                      [static_cast<std::size_t>(mma)];
          }
          simt::DecodedFrag& dec = s.b_dec[static_cast<std::size_t>(mma)];
          if (g.int4path) {
            simt::decode_frag_int4(b_frag, b_signed, dec);
          } else {
            simt::decode_frag_int8(b_frag, b_signed, dec);
          }
        }
        for (int grp = 0; grp < g.g; ++grp) {
          for (int mma = 0; mma < 4; ++mma) {
            simt::mma_decoded(acc_at(w, grp, qq, mma),
                              s.a_dec[static_cast<std::size_t>(grp)],
                              s.b_dec[static_cast<std::size_t>(mma)]);
          }
        }
      }
    }
  }

  spmm_value_epilogue(g, a, b, s.acc.data(), s.colsum.data(), r, cb, c);
}

// ---- Panel fast path: block-panel replay ----------------------------------
//
// One invocation of a panel micro-kernel per (plane group, RHS plane, step)
// covers a block's whole bsn-column tile — all 8 adjacent 8-column mma
// tiles that the fragment replay walked one scalar mma_decoded at a time
// (2 warps x 4 mma). Replay runs one job per *block row*: the row's A
// panels (every step x plane group) decode once into a per-row arena and
// all of the row's column blocks replay from it — the per-(row, cb) grid
// re-decoded the identical A bytes col_blocks times. Jobs write disjoint C
// rows, so the per-row grid parallelizes exactly like the per-block one.
//
// Each row dispatches the replay kernel its plan-time bucket named
// (SpmmPlan::row_kernel): fixed-width 64-column panels with per-group
// active-row limits for the bsn==64 buckets, a fused decode+mma for the
// dominant single-group/single-plane bucket (no B panel arena at all), the
// runtime-width generic kernel otherwise. All buckets are bit-exact mod
// 2^32 with the generic path; MAGICUBE_PANEL_BUCKETS=off forces generic.

struct SpmmPanelScratch {
  std::vector<std::uint32_t> acc;        // [group][q][8 rows][bsn] wrapping
  std::vector<std::int64_t> colsum;      // [q][bsn] bias-correction sums
  std::vector<std::int64_t> total;       // [bsn] epilogue combine
  std::vector<simt::DecodedFrag> a_dec;  // [step][plane group] (whole row)
  std::vector<std::int32_t> b_panel;     // [q][stride][bsn]
};

SpmmPanelScratch& spmm_panel_scratch() {
  thread_local SpmmPanelScratch scratch;
  return scratch;
}

/// Weighted plane combine + writeback over the panel accumulators — the
/// same epilogue math as spmm_value_epilogue, indexed by natural columns
/// instead of fragment lanes.
void spmm_panel_epilogue(const Geom& g, const SparseOperand& a,
                         const DenseOperand& b, const std::uint32_t* acc,
                         const std::int64_t* colsum, std::int64_t* total,
                         std::size_t r, std::size_t cb,
                         Matrix<std::int32_t>& c) {
  const std::size_t v = static_cast<std::size_t>(g.v);
  const std::size_t n = g.bsn;
  const std::int64_t bias = std::int64_t{1} << (g.chunk - 1);
  for (int rb = 0; rb < g.v; ++rb) {
    std::fill_n(total, n, std::int64_t{0});
    for (int grp = 0; grp < g.g; ++grp) {
      for (int lp = 0; lp < g.group_size(grp); ++lp) {
        const int pl = grp * g.s + lp;
        const std::int64_t wp = a.planes[static_cast<std::size_t>(pl)].weight;
        const bool top = g.bias_correct && grp == g.g - 1 && g.is_top(pl);
        for (int qq = 0; qq < g.q; ++qq) {
          const std::int64_t w =
              wp * b.planes[static_cast<std::size_t>(qq)].weight;
          const std::uint32_t* arow =
              acc + (static_cast<std::size_t>((grp * g.q + qq) * 8 + lp * g.v +
                                              rb)) *
                        n;
          if (top) {
            // Undo the excess encoding: C_top = C_raw - 2^(b-1)*colsum.
            simt::epilogue_combine_biased(
                total, arow, colsum + static_cast<std::size_t>(qq) * n, bias,
                w, n);
          } else {
            simt::epilogue_combine(total, arow, w, n);
          }
        }
      }
    }
    const std::size_t out_row = r * v + static_cast<std::size_t>(rb);
    const std::size_t out_col0 = cb * g.bsn;
    for (std::size_t col = 0; col < n; ++col) {
      c(out_row, out_col0 + col) = static_cast<std::int32_t>(total[col]);
    }
  }
}

void panel_row(std::size_t r, const SparseOperand& a, const DenseOperand& b,
               const SpmmPlan& plan, bool buckets, Matrix<std::int32_t>& c) {
  const Geom& g = plan.geom;
  const sparse::SrBcrs& sr = a.structure;
  const std::size_t steps = sr.strides_in_row(r);
  const std::size_t stride = static_cast<std::size_t>(g.stride);
  const std::size_t v = static_cast<std::size_t>(g.v);
  const std::size_t chunk = static_cast<std::size_t>(g.chunk);
  const std::size_t n = g.bsn;
  const bool int4 = g.int4path;

  const PanelKernelId row_id =
      buckets ? static_cast<PanelKernelId>(plan.row_kernel[r])
              : PanelKernelId::generic;
  // A structurally empty row contributes nothing: C was zero-initialized,
  // and replaying zero steps through the generic path writes only zeros.
  if (row_id == PanelKernelId::empty || steps == 0) return;

  SpmmPanelScratch& s = spmm_panel_scratch();
  s.total.resize(n);
  s.a_dec.resize(steps * static_cast<std::size_t>(g.g));
  if (row_id != PanelKernelId::fused) {
    s.b_panel.resize(static_cast<std::size_t>(g.q) * stride * n);
  }

  const std::size_t tile_row_bytes = stride * chunk / 8;

  // Decode-once A arena: every step's plane-group panels decode one time
  // for the whole row (plane stacking baked into the schedule); all
  // col_blocks column tiles replay from the arena. The per-(row, cb) grid
  // re-decoded these identical bytes once per column block.
  for (std::size_t st = 0; st < steps; ++st) {
    const std::size_t lhs_byte =
        (sr.first_ptr[r] + st * stride) * v * chunk / 8;
    for (int grp = 0; grp < g.g; ++grp) {
      simt::DecodedFrag& dec =
          s.a_dec[st * static_cast<std::size_t>(g.g) +
                  static_cast<std::size_t>(grp)];
      dec.k = static_cast<int>(stride);
      const bool grp_signed = lhs_group_signed(g, a, grp);
      const auto& rows = plan.a_panel_src[static_cast<std::size_t>(grp)];
      for (int rr = 0; rr < 8; ++rr) {
        const SpmmPlan::PanelRow src = rows[static_cast<std::size_t>(rr)];
        std::int32_t* dst = dec.v[static_cast<std::size_t>(rr)].data();
        if (src.row < 0) {
          std::fill_n(dst, stride, 0);
          continue;
        }
        const std::uint8_t* bytes =
            a.planes[static_cast<std::size_t>(src.plane)].values.data() +
            lhs_byte + static_cast<std::size_t>(src.row) * tile_row_bytes;
        if (int4) {
          if (src.biased) {
            simt::decode_span_int4_biased(bytes, stride, dst);
          } else {
            simt::decode_span_int4(bytes, stride, grp_signed, dst);
          }
        } else if (src.biased) {
          simt::decode_span_int8_biased(bytes, stride, dst);
        } else {
          simt::decode_span_int8(bytes, stride, grp_signed, dst);
        }
      }
    }
  }

  // Active panel rows of each plane group form a prefix (rr = lp * V + rb
  // with lp < group_size), so the fixed-width kernels stop there instead of
  // multiplying the zero rows the generic kernel pays for.
  std::array<int, 8> active_rows{};
  for (int grp = 0; grp < g.g; ++grp) {
    active_rows[static_cast<std::size_t>(grp)] =
        std::min(8, g.group_size(grp) * g.v);
  }

  for (std::size_t cb = 0; cb < g.col_blocks; ++cb) {
    const std::size_t cb_byte = cb * n * chunk / 8;
    s.acc.assign(static_cast<std::size_t>(g.g * g.q) * 8 * n, 0);
    s.colsum.assign(
        g.bias_correct ? static_cast<std::size_t>(g.q) * n : 0, 0);

    for (std::size_t st = 0; st < steps; ++st) {
      const std::size_t slot_base = sr.first_ptr[r] + st * stride;
      const simt::DecodedFrag* a_dec =
          s.a_dec.data() + st * static_cast<std::size_t>(g.g);

      if (row_id == PanelKernelId::fused) {
        // Single group x single RHS plane, no bias correction: decode each
        // valid B row straight inside the kernel — no panel arena, no
        // column sums, padded slots skipped instead of zero-filled.
        const std::uint8_t* b_bytes = b.planes[0].values.data();
        std::array<const std::uint8_t*, 32> rows{};
        for (std::size_t k = 0; k < stride; ++k) {
          const std::size_t base =
              plan.rhs_row_base[slot_base + plan.panel_k_slot[k]];
          rows[k] = base == kNoRhsRow ? nullptr : b_bytes + base + cb_byte;
        }
        simt::fused_decode_mma_n64(s.acc.data(), a_dec[0], rows.data(),
                                   static_cast<int>(stride), int4,
                                   b.planes[0].is_signed);
        continue;
      }

      // Decode the B panels: stride x bsn per RHS plane, rows gathered by
      // the plan's resolved byte bases, columns contiguous. Padded slots
      // are zero rows (and thus contribute nothing to the column sums
      // either).
      for (int qq = 0; qq < g.q; ++qq) {
        const auto& bplane = b.planes[static_cast<std::size_t>(qq)];
        const std::uint8_t* b_bytes = bplane.values.data();
        std::int32_t* panel =
            s.b_panel.data() + static_cast<std::size_t>(qq) * stride * n;
        for (std::size_t k = 0; k < stride; ++k) {
          std::int32_t* row = panel + k * n;
          const std::size_t base =
              plan.rhs_row_base[slot_base + plan.panel_k_slot[k]];
          if (base == kNoRhsRow) {
            std::fill_n(row, n, 0);
          } else if (int4) {
            simt::decode_span_int4(b_bytes + base + cb_byte, n,
                                   bplane.is_signed, row);
          } else {
            simt::decode_span_int8(b_bytes + base + cb_byte, n,
                                   bplane.is_signed, row);
          }
        }
        if (g.bias_correct) {
          std::int64_t* cs =
              s.colsum.data() + static_cast<std::size_t>(qq) * n;
          for (std::size_t k = 0; k < stride; ++k) {
            simt::colsum_update(panel + k * n, cs, n);
          }
        }
      }

      // MAC: one panel invocation per (group, RHS plane) replaces the
      // step's 2 warps x 4 scalar mma_decoded issues. The fixed-width
      // buckets dispatch the compile-time-64 kernel with per-group row
      // limits; generic keeps the runtime-width path.
      for (int grp = 0; grp < g.g; ++grp) {
        for (int qq = 0; qq < g.q; ++qq) {
          std::uint32_t* acc =
              s.acc.data() + static_cast<std::size_t>(grp * g.q + qq) * 8 * n;
          const std::int32_t* panel =
              s.b_panel.data() + static_cast<std::size_t>(qq) * stride * n;
          if (row_id == PanelKernelId::generic) {
            simt::mma_panel(acc, a_dec[grp], panel, static_cast<int>(n));
          } else {
            simt::mma_panel_n64(acc, a_dec[grp], panel,
                                active_rows[static_cast<std::size_t>(grp)]);
          }
        }
      }
    }

    spmm_panel_epilogue(g, a, b, s.acc.data(), s.colsum.data(),
                        s.total.data(), r, cb, c);
  }
}

void validate_spmm_inputs(const SparseOperand& a, const DenseOperand& b,
                          const SpmmConfig& cfg) {
  const sparse::SrBcrs& sr = a.structure;
  MAGICUBE_CHECK_MSG(sr.stride == stride_for(cfg.precision),
                     "LHS stride does not match the precision datapath");
  MAGICUBE_CHECK_MSG(sr.shuffled == needs_shuffle(cfg),
                     "LHS shuffle state does not match the variant");
  MAGICUBE_CHECK(b.row_major);
  MAGICUBE_CHECK_MSG(cfg.bsn == 64,
                     "the execution engines implement the 64-column block "
                     "tile only (2 warps x 32 output columns)");
  MAGICUBE_CHECK_MSG(b.cols % static_cast<std::size_t>(cfg.bsn) == 0,
                     "N must be a multiple of the block tile width");
  MAGICUBE_CHECK(b.rows == sr.cols);
}

SpmmResult run_simulate(const SparseOperand& a, const DenseOperand& b,
                        const SpmmConfig& cfg) {
  const sparse::SrBcrs& sr = a.structure;
  Geom g = detail::make_spmm_geom(a, static_cast<int>(b.plane_count()),
                                  b.cols, b.rows, cfg);

  simt::LaunchConfig launch;
  launch.grid_blocks = sr.vector_rows() * g.col_blocks;
  launch.warps_per_block = cfg.warps_per_block;
  launch.smem_bytes_per_block = detail::spmm_smem_bytes(g);

  SpmmResult result;
  result.c = Matrix<std::int32_t>(sr.rows, b.cols, 0);

  BlockArgs args{&a, &b, &g, &result.c};
  result.run = simt::run_grid(
      launch, [&](simt::BlockContext& ctx) { run_block(ctx, args); });

  // Pipeline shape + compulsory DRAM traffic.
  std::uint64_t total_steps = 0, valid_vectors = 0;
  for (std::size_t r = 0; r < sr.vector_rows(); ++r) {
    total_steps += sr.strides_in_row(r);
    valid_vectors += sr.valid_vectors_in_row(r);
  }
  result.run.pipeline.total_steps = total_steps * g.col_blocks;
  result.run.pipeline.prefetch = g.prefetch;
  result.run.counters.dram_bytes = detail::spmm_dram_bytes(
      g, sr.slot_count(), valid_vectors, sr.vector_rows());
  return result;
}

SpmmResult run_fast(const SparseOperand& a, const DenseOperand& b,
                    const SpmmConfig& cfg, const SpmmPlan& plan) {
  const ReplayKernel kernel = cfg.replay.value_or(default_replay_kernel());
  const Geom& g = plan.geom;
  MAGICUBE_CHECK_MSG(g.n == b.cols && g.k == b.rows,
                     "execution plan built for a different problem shape");
  MAGICUBE_CHECK_MSG(g.p == static_cast<int>(a.plane_count()) &&
                         g.q == static_cast<int>(b.plane_count()) &&
                         g.lhs_signed == is_signed(a.logical_type),
                     "execution plan built for a different precision pair");
  MAGICUBE_CHECK_MSG(plan.rhs_row_base.size() == a.structure.slot_count() &&
                         plan.run.launch.grid_blocks ==
                             a.structure.vector_rows() * g.col_blocks,
                     "execution plan built for a different sparsity "
                     "structure — plans are per pattern fingerprint");
  MAGICUBE_CHECK(g.stride == a.structure.stride &&
                 g.shuffle == a.structure.shuffled &&
                 g.v == a.structure.vector_length);
  // Exact structural validation: the plan's resolved row bases must agree
  // with the operand's column indices slot for slot (same vector count but
  // different columns would otherwise replay silently wrong). O(slots)
  // multiply-compares, negligible next to the replay itself.
  const std::size_t row_bytes = g.n * static_cast<std::size_t>(g.chunk) / 8;
  for (std::size_t slot = 0; slot < plan.rhs_row_base.size(); ++slot) {
    const std::uint32_t col = a.structure.col_idx[slot];
    const std::size_t want =
        col == sparse::kInvalidCol
            ? kNoRhsRow
            : static_cast<std::size_t>(col) * row_bytes;
    MAGICUBE_CHECK_MSG(plan.rhs_row_base[slot] == want,
                       "execution plan built for a different sparsity "
                       "structure — plans are per pattern fingerprint");
  }
  (void)cfg;

  SpmmResult result;
  result.c = Matrix<std::int32_t>(a.structure.rows, b.cols, 0);
  if (kernel == ReplayKernel::panel) {
    MAGICUBE_CHECK_MSG(plan.a_panel_src.size() ==
                           static_cast<std::size_t>(g.g),
                       "plan carries no panel schedule");
    // One job per block row (decode-once A arena shared by the row's
    // column blocks); rows write disjoint C ranges. Bucket dispatch needs
    // the plan's per-row kernel ids; without them (or with the toggle off)
    // every row runs the generic kernel — bit-exact either way.
    const bool buckets = default_panel_buckets() &&
                         plan.row_kernel.size() == a.structure.vector_rows();
    simt::run_grid_values(a.structure.vector_rows(), [&](std::size_t r) {
      panel_row(r, a, b, plan, buckets, result.c);
    });
  } else {
    simt::run_grid_values(plan.run.launch.grid_blocks, [&](std::size_t blk) {
      fast_block(blk, a, b, plan, result.c);
    });
  }
  result.run = plan.run;
  return result;
}

}  // namespace

SpmmResult spmm(const SparseOperand& a, const DenseOperand& b,
                const SpmmConfig& cfg) {
  validate_spmm_inputs(a, b, cfg);
  if (cfg.mode.value_or(default_exec_mode()) == ExecMode::fast) {
    const SpmmPlanHandle plan = build_spmm_plan(a, b.cols, cfg);
    return run_fast(a, b, cfg, *plan);
  }
  return run_simulate(a, b, cfg);
}

SpmmResult spmm(const SparseOperand& a, const DenseOperand& b,
                const SpmmConfig& cfg, const SpmmPlan& plan) {
  validate_spmm_inputs(a, b, cfg);
  if (cfg.mode.value_or(default_exec_mode()) == ExecMode::simulate) {
    return run_simulate(a, b, cfg);
  }
  return run_fast(a, b, cfg, plan);
}

simt::KernelRun spmm_estimate(const sparse::BlockPattern& pattern,
                              std::size_t n_cols, const SpmmConfig& cfg) {
  MAGICUBE_CHECK_MSG(cfg.bsn == 64,
                     "the execution engines implement the 64-column block "
                     "tile only (2 warps x 32 output columns)");
  MAGICUBE_CHECK(n_cols % static_cast<std::size_t>(cfg.bsn) == 0);

  // Rebuild the geometry from the precision pair alone (plane counts are a
  // function of the pair; no operand data is needed).
  SparseOperand meta;
  meta.structure.vector_length = pattern.vector_length;
  meta.structure.stride = stride_for(cfg.precision);
  meta.logical_type = cfg.precision.lhs;
  const int p_planes =
      quant::plane_count(cfg.precision.lhs, lhs_chunk_bits(cfg.precision));
  meta.planes.resize(static_cast<std::size_t>(p_planes));
  const int q_planes =
      quant::plane_count(cfg.precision.rhs,
                         bits_of(cfg.precision.rhs) <= 4 ? 4 : 8);
  Geom g = detail::make_spmm_geom(meta, q_planes, n_cols, pattern.cols, cfg);

  const std::size_t stride = static_cast<std::size_t>(g.stride);
  simt::KernelRun run;
  run.launch.grid_blocks = pattern.vector_rows() * g.col_blocks;
  run.launch.warps_per_block = cfg.warps_per_block;
  run.launch.smem_bytes_per_block = detail::spmm_smem_bytes(g);
  run.pipeline.prefetch = g.prefetch;

  std::uint64_t slots = 0, valid = 0, total_steps = 0;
  for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
    const std::uint64_t n_r = pattern.vectors_in_row(r);
    const std::uint64_t steps = (n_r + stride - 1) / stride;
    slots += steps * stride;
    valid += n_r;
    total_steps += steps;
    // Bucket counters must mirror build_spmm_plan exactly: the SLA layer
    // asserts analytic-estimate pricing equals cached-plan pricing.
    const PanelKernelId id = detail::classify_spmm_row(g, steps);
    run.counters.spmm_bucket_blocks[static_cast<std::size_t>(id)] +=
        g.col_blocks;
    KernelCounters kc = detail::spmm_block_counters(g, steps, n_r);
    // Every block of this row (one per column tile) counts identically.
    kc *= g.col_blocks;
    run.counters += kc;
  }
  run.pipeline.total_steps = total_steps * g.col_blocks;
  run.counters.dram_bytes =
      detail::spmm_dram_bytes(g, slots, valid, pattern.vector_rows());
  return run;
}

std::uint64_t spmm_useful_ops(const sparse::BlockPattern& pattern,
                              std::size_t n_cols) {
  return 2ull * pattern.nnz() * n_cols;
}

SpmmResult spmm(const SparseOperandHandle& a, const DenseOperandHandle& b,
                const SpmmConfig& cfg) {
  MAGICUBE_CHECK_MSG(a && b, "spmm handles must be non-null");
  return spmm(*a, *b, cfg);
}

SpmmResult spmm(const SparseOperandHandle& a, const DenseOperandHandle& b,
                const SpmmConfig& cfg, const SpmmPlanHandle& plan) {
  MAGICUBE_CHECK_MSG(a && b, "spmm handles must be non-null");
  MAGICUBE_CHECK_MSG(plan != nullptr, "spmm plan handle must be non-null");
  return spmm(*a, *b, cfg, *plan);
}

}  // namespace magicube::core
