#include "core/spmm.hpp"

#include <algorithm>
#include <array>

#include "core/marshal.hpp"
#include "simt/launch.hpp"
#include "simt/memory.hpp"
#include "simt/tensor_core.hpp"

namespace magicube::core {

const char* to_string(SpmmVariant v) {
  switch (v) {
    case SpmmVariant::basic: return "basic";
    case SpmmVariant::conflict_free: return "conflict-free";
    case SpmmVariant::conflict_free_prefetch: return "conflict-free+prefetch";
    case SpmmVariant::full: return "conflict-free+prefetch+shuffle";
  }
  return "?";
}

namespace {

using simt::AccumFrag;
using simt::KernelCounters;
using simt::LaneAddrs;
using simt::LaneWords;
using simt::WarpReg;

/// Geometry shared by the functional kernel and the analytic estimator.
struct Geom {
  // Datapath.
  int stride = 16;       // mma k = SR-BCRS stride
  int chunk = 8;         // plane width (bits)
  int epw = 4;           // elements per 32-bit word
  int row_words = 16;    // words per RHS tile row (bsn * chunk / 32)
  int phases = 4;        // RHS fragment words per thread
  int rows_per_frag = 4; // consecutive k rows per fragment register
  bool int4path = false;

  // Operands.
  int v = 8;             // vector length (BSm)
  int p = 1;             // LHS planes
  int q = 1;             // RHS planes
  int s = 1;             // planes stacked per mma (Fig. 10b)
  int g = 1;             // plane groups = ceil(p / s)
  bool lhs_signed = true;
  bool bias_correct = false;  // last group stacks the signed top plane

  std::size_t n = 0, k = 0, bsn = 64, col_blocks = 0;
  bool padded = true;    // conflict-free smem layout
  bool prefetch = false;
  bool shuffle = false;  // int4 index shuffling
  RhsTileLayout layout;

  // Shared-memory word map.
  std::size_t idx_base = 0, lhs_base = 0, rhs_base = 0;
  std::size_t lhs_words_per_plane = 0, smem_words = 0;

  int group_size(int grp) const {
    return std::min(p - grp * s, s);
  }
  /// Whether plane `pl` is the signed top plane.
  bool is_top(int pl) const { return lhs_signed && pl == p - 1; }
};

Geom make_geom(const SparseOperand& a_meta, int q_planes, std::size_t n,
               std::size_t k, const SpmmConfig& cfg) {
  Geom g;
  g.int4path = stride_for(cfg.precision) == 32;
  g.stride = g.int4path ? 32 : 16;
  g.chunk = g.int4path ? 4 : 8;
  g.epw = 32 / g.chunk;
  g.row_words = static_cast<int>(cfg.bsn) * g.chunk / 32;
  g.phases = g.int4path ? 8 : 4;
  g.rows_per_frag = g.int4path ? 8 : 4;

  g.v = a_meta.structure.vector_length;
  g.p = static_cast<int>(a_meta.plane_count());
  g.q = q_planes;
  g.s = std::max(1, std::min(8 / g.v, g.p));
  g.g = (g.p + g.s - 1) / g.s;
  g.lhs_signed = is_signed(a_meta.logical_type);
  g.bias_correct = g.lhs_signed && g.group_size(g.g - 1) > 1;

  g.n = n;
  g.k = k;
  g.bsn = static_cast<std::size_t>(cfg.bsn);
  g.col_blocks = n / g.bsn;
  g.padded = cfg.variant != SpmmVariant::basic;
  g.prefetch = cfg.variant == SpmmVariant::conflict_free_prefetch ||
               cfg.variant == SpmmVariant::full;
  g.shuffle = needs_shuffle(cfg);
  g.layout = RhsTileLayout{g.stride, g.row_words, g.padded};

  // Shared memory map: [indices][LHS planes][RHS planes].
  g.idx_base = 0;
  g.lhs_base = static_cast<std::size_t>(g.stride);
  g.lhs_words_per_plane = static_cast<std::size_t>(4 * g.v);
  g.rhs_base = g.lhs_base +
               static_cast<std::size_t>(g.p) * g.lhs_words_per_plane;
  g.smem_words = g.rhs_base +
                 static_cast<std::size_t>(g.q) * g.layout.total_words();
  return g;
}

std::size_t smem_bytes(const Geom& g) {
  // Algorithm 1 double-buffers the LHS values + indices when prefetching.
  const std::size_t lhs_part =
      (static_cast<std::size_t>(g.stride) +
       static_cast<std::size_t>(g.p) * g.lhs_words_per_plane) *
      (g.prefetch ? 2 : 1);
  const std::size_t rhs_part =
      static_cast<std::size_t>(g.q) * g.layout.total_words();
  return 4 * (lhs_part + rhs_part);
}

int output_col(const Geom& g, int mma, int tile_col) {
  return g.int4path ? spmm_output_col_int4(mma, tile_col)
                    : spmm_output_col_int8(mma, tile_col);
}

// ---- Closed-form per-event helpers (shared derivations) -------------------

/// Sectors of one LHS stride-tile load (16V bytes, 16V-aligned).
std::uint32_t lhs_tile_sectors(const Geom& g) {
  return static_cast<std::uint32_t>((16u * static_cast<unsigned>(g.v) + 31) / 32);
}
/// Sectors of one index load (stride * 4 bytes, aligned).
std::uint32_t idx_sectors(const Geom& g) {
  return static_cast<std::uint32_t>(g.stride * 4 / 32);
}
/// Sectors of one RHS row-segment load (bsn * chunk / 8 bytes, aligned).
std::uint32_t rhs_row_sectors(const Geom& g) {
  return static_cast<std::uint32_t>(g.bsn * static_cast<std::size_t>(g.chunk) /
                                    8 / 32);
}
/// Shared-memory transactions of one RHS fragment-load phase.
std::uint32_t rhs_phase_transactions(const Geom& g) {
  // Padded layout: all 32 banks distinct (proved in marshal.hpp comment and
  // asserted by tests). Unpadded: the warp touches only 8 distinct banks
  // with 4 lanes each on both datapaths -> 4-way conflict.
  return g.padded ? 1 : 4;
}
/// Epilogue event bundle (per block): the C tile is staged through a
/// swizzled shared-memory buffer and written back coalesced.
struct EpilogueCounts {
  std::uint64_t smem_store_req, smem_store_trans;
  std::uint64_t smem_load_req, smem_load_trans;
  std::uint64_t gmem_store_req, gmem_store_sectors;
};
EpilogueCounts epilogue_counts(const Geom& g) {
  EpilogueCounts e{};
  // 2 warps x 4 mma x 2 accumulator registers, swizzled -> conflict-free.
  e.smem_store_req = e.smem_store_trans = 2 * 4 * 2;
  // Read back V rows of bsn int32 (bsn/32 = 2 requests per row).
  e.smem_load_req = e.smem_load_trans =
      static_cast<std::uint64_t>(g.v) * (g.bsn / 32);
  e.gmem_store_req = static_cast<std::uint64_t>(g.v) * (g.bsn / 32);
  // 32 lanes x 4B consecutive = 128B = 4 sectors per request.
  e.gmem_store_sectors = e.gmem_store_req * 4;
  return e;
}

/// Warp-shuffle instructions of the stacked-plane combine, per accumulator
/// register (butterfly gather: 1 partner for s=2, 3 partners for s in 3..4).
std::uint64_t stack_shfls(int s) { return s <= 1 ? 0 : (s == 2 ? 1 : 3); }

/// Compulsory DRAM traffic: operand first-touch bytes. The RHS working set
/// of DLMC-scale problems fits comfortably in the 40 MB L2, so DRAM sees
/// each B byte once (or the loaded subset, when sparsity leaves B rows
/// untouched); A, its indices and C are streamed once.
std::uint64_t spmm_dram_bytes(const Geom& g, std::size_t slots,
                              std::uint64_t valid_vectors,
                              std::size_t vector_rows) {
  const std::uint64_t a_bytes =
      static_cast<std::uint64_t>(slots) * static_cast<std::uint64_t>(g.v) *
      static_cast<std::uint64_t>(g.chunk) / 8 * static_cast<std::uint64_t>(g.p);
  const std::uint64_t idx_bytes = static_cast<std::uint64_t>(slots) * 4;
  const std::uint64_t b_size = static_cast<std::uint64_t>(g.k) * g.n *
                               static_cast<std::uint64_t>(g.chunk) / 8 *
                               static_cast<std::uint64_t>(g.q);
  const std::uint64_t b_loaded =
      valid_vectors * static_cast<std::uint64_t>(g.q) * g.col_blocks *
      (g.bsn * static_cast<std::uint64_t>(g.chunk) / 8);
  const std::uint64_t c_bytes = static_cast<std::uint64_t>(vector_rows) *
                                static_cast<std::uint64_t>(g.v) * g.n * 4;
  return a_bytes + idx_bytes + std::min(b_size, b_loaded) + c_bytes;
}

/// Closed-form counters of one thread block with `steps` accumulation steps
/// and `valid` unpadded vectors, mirroring run_block event for event.
KernelCounters block_counters(const Geom& g, std::uint64_t steps,
                              std::uint64_t valid) {
  KernelCounters kc;
  const std::uint64_t p = static_cast<std::uint64_t>(g.p);
  const std::uint64_t q = static_cast<std::uint64_t>(g.q);
  const std::uint64_t grp = static_cast<std::uint64_t>(g.g);
  const std::uint64_t phases = static_cast<std::uint64_t>(g.phases);
  const std::uint64_t stride = static_cast<std::uint64_t>(g.stride);

  // RHS rows are batched 32/row_words per request (2 on int8, 4 on int4).
  const std::uint64_t rhs_reqs_per_step =
      stride / (32 / static_cast<std::uint64_t>(g.row_words));
  kc.gmem_load_requests = steps * (1 + p + rhs_reqs_per_step * q);
  kc.gmem_load_sectors = steps * (idx_sectors(g) + p * lhs_tile_sectors(g)) +
                         valid * q * rhs_row_sectors(g);
  kc.smem_store_requests = steps * (1 + p + rhs_reqs_per_step * q);
  kc.smem_store_transactions = kc.smem_store_requests;
  kc.smem_load_requests = steps * (1 + 2 * (grp + q * phases));
  kc.smem_load_transactions =
      steps * (1 + 2 * (grp + q * phases * rhs_phase_transactions(g)));

  const std::uint64_t mmas = steps * 8 * grp * q;
  (g.int4path ? kc.mma_int4 : kc.mma_int8) = mmas;

  const std::uint64_t transpose_alu =
      g.int4path ? (g.shuffle ? kInt4ShuffledAluOps : kInt4NaiveAluOps)
                 : kInt8TransposeAluOps;
  kc.alu_ops = steps * 2 * q * transpose_alu;
  if (g.bias_correct) {
    kc.alu_ops += steps * 2;                    // bias encode, per warp
    kc.alu_ops += steps * 2 * q * 4 * phases;   // column-sum updates
  }
  kc.alu_ops += 32 * p * q;                     // epilogue combine
  kc.shfl_ops = 16 * stack_shfls(g.s) * grp * q;
  kc.syncthreads = steps * (g.prefetch ? 3u : 2u) + 1;

  const EpilogueCounts e = epilogue_counts(g);
  kc.smem_store_requests += e.smem_store_req;
  kc.smem_store_transactions += e.smem_store_trans;
  kc.smem_load_requests += e.smem_load_req;
  kc.smem_load_transactions += e.smem_load_trans;
  kc.gmem_store_requests += e.gmem_store_req;
  kc.gmem_store_sectors += e.gmem_store_sectors;
  return kc;
}

// ---- Functional kernel ----------------------------------------------------

struct BlockArgs {
  const SparseOperand* a;
  const DenseOperand* b;
  const Geom* g;
  Matrix<std::int32_t>* c;
};

void run_block(simt::BlockContext& ctx, const BlockArgs& args) {
  const SparseOperand& a = *args.a;
  const DenseOperand& b = *args.b;
  const Geom& g = *args.g;
  KernelCounters& kc = ctx.counters;
  const sparse::SrBcrs& sr = a.structure;

  const std::size_t r = ctx.block_id / g.col_blocks;
  const std::size_t cb = ctx.block_id % g.col_blocks;
  const std::size_t steps = sr.strides_in_row(r);
  const std::size_t stride = static_cast<std::size_t>(g.stride);
  const std::size_t v = static_cast<std::size_t>(g.v);

  // Accumulators: [warp][group][rhs plane][mma].
  std::vector<AccumFrag> acc(
      static_cast<std::size_t>(2 * g.g * g.q * 4));
  auto acc_at = [&](int w, int grp, int qq, int mma) -> AccumFrag& {
    return acc[static_cast<std::size_t>(
        ((w * g.g + grp) * g.q + qq) * 4 + mma)];
  };
  // Bias-correction column sums: [warp][rhs plane][warp-local col].
  std::vector<std::int64_t> colsum(
      g.bias_correct ? static_cast<std::size_t>(2 * g.q * 32) : 0, 0);

  for (std::size_t st = 0; st < steps; ++st) {
    const std::size_t slot_base = sr.first_ptr[r] + st * stride;

    // ---- Phase 1: column indices, global -> shared ----
    {
      LaneAddrs ga;
      ga.fill(simt::kInactiveLane);
      LaneAddrs sa;
      sa.fill(simt::kInactiveLane);
      LaneWords vals{};
      for (std::size_t l = 0; l < stride; ++l) {
        ga[l] = (slot_base + l) * 4;
        sa[l] = g.idx_base + l;
        vals[l] = sr.col_idx[slot_base + l];
      }
      simt::count_gmem_load(ga, 4, kc);
      ctx.smem.st32(sa, vals, kc);
    }

    // ---- Phase 2: LHS stride tile (all planes), global -> shared ----
    for (int pl = 0; pl < g.p; ++pl) {
      const auto& plane = a.planes[static_cast<std::size_t>(pl)];
      const std::size_t words = g.lhs_words_per_plane;
      const std::size_t byte_base =
          slot_base * v * static_cast<std::size_t>(g.chunk) / 8;
      LaneAddrs ga;
      ga.fill(simt::kInactiveLane);
      LaneAddrs sa;
      sa.fill(simt::kInactiveLane);
      LaneWords vals{};
      for (std::size_t l = 0; l < words && l < 32; ++l) {
        ga[l] = byte_base + l * 4;
        sa[l] = g.lhs_base + static_cast<std::size_t>(pl) * words + l;
        std::uint32_t w = 0;
        for (int e = 0; e < g.epw; ++e) {
          const std::size_t elem =
              slot_base * v + l * static_cast<std::size_t>(g.epw) +
              static_cast<std::size_t>(e);
          w |= plane.values.get_raw(elem) << (g.chunk * e);
        }
        vals[l] = w;
      }
      simt::count_gmem_load(ga, 4, kc);
      ctx.smem.st32(sa, vals, kc);
    }

    // ---- Phase 3: RHS rows named by the indices, global -> shared ----
    // Rows are batched so a warp-wide request fills all 32 lanes: two rows
    // per request on the int8 path (16 words each), four on int4 (8 words).
    // Padded slots store zeros without touching global memory.
    kc.smem_load_requests += 1;  // the index read that drives addressing
    kc.smem_load_transactions += 1;
    const std::size_t rows_per_req = 32 / static_cast<std::size_t>(g.row_words);
    for (int qq = 0; qq < g.q; ++qq) {
      const auto& plane = b.planes[static_cast<std::size_t>(qq)];
      for (std::size_t k0 = 0; k0 < stride; k0 += rows_per_req) {
        LaneAddrs ga;
        ga.fill(simt::kInactiveLane);
        LaneAddrs sa;
        sa.fill(simt::kInactiveLane);
        LaneWords vals{};
        for (std::size_t dk = 0; dk < rows_per_req; ++dk) {
          const std::size_t kk = k0 + dk;
          const std::uint32_t col = sr.col_idx[slot_base + kk];
          const std::size_t lane0 =
              dk * static_cast<std::size_t>(g.row_words);
          for (int l = 0; l < g.row_words; ++l) {
            sa[lane0 + static_cast<std::size_t>(l)] =
                g.rhs_base +
                static_cast<std::size_t>(qq) * g.layout.total_words() +
                g.layout.row_start_word(static_cast<int>(kk)) +
                static_cast<std::size_t>(l);
          }
          if (col == sparse::kInvalidCol) continue;
          const std::size_t byte_base =
              (static_cast<std::size_t>(col) * g.n + cb * g.bsn) *
              static_cast<std::size_t>(g.chunk) / 8;
          for (int l = 0; l < g.row_words; ++l) {
            ga[lane0 + static_cast<std::size_t>(l)] =
                byte_base + static_cast<std::size_t>(l) * 4;
            std::uint32_t w = 0;
            for (int e = 0; e < g.epw; ++e) {
              const std::size_t cidx =
                  cb * g.bsn + static_cast<std::size_t>(l * g.epw + e);
              w |= plane.values.get_raw(b.flat_index(col, cidx))
                   << (g.chunk * e);
            }
            vals[lane0 + static_cast<std::size_t>(l)] = w;
          }
        }
        simt::count_gmem_load(ga, 4, kc);
        ctx.smem.st32(sa, vals, kc);
      }
    }
    kc.syncthreads += g.prefetch ? 2 : 1;

    // ---- Phase 4: per-warp fragment loads, transpose, mma ----
    for (int w = 0; w < 2; ++w) {
      // LHS fragments, one per plane group (stacked planes share the mma).
      std::vector<WarpReg> a_frag(static_cast<std::size_t>(g.g));
      for (int grp = 0; grp < g.g; ++grp) {
        LaneAddrs sa;
        sa.fill(simt::kInactiveLane);
        for (int lane = 0; lane < 32; ++lane) {
          const int row = lane / 4;
          const int lp = row / g.v;
          const int pl = grp * g.s + lp;
          if (pl >= g.p || lp >= g.group_size(grp)) continue;
          const int rb = row % g.v;
          sa[static_cast<std::size_t>(lane)] =
              g.lhs_base +
              static_cast<std::size_t>(pl) * g.lhs_words_per_plane +
              static_cast<std::size_t>(rb) * 4 +
              static_cast<std::size_t>(lane % 4);
        }
        LaneWords words = ctx.smem.ld32(sa, kc);
        // Bias-encode the stacked signed top plane: raw ^ MSB turns the
        // two's-complement chunk into its excess-2^(b-1) representation.
        const bool biased = g.bias_correct && grp == g.g - 1;
        if (biased) {
          const std::uint32_t msb_mask =
              g.chunk == 4 ? 0x88888888u : 0x80808080u;
          for (int lane = 0; lane < 32; ++lane) {
            const int row = lane / 4;
            const int pl = grp * g.s + row / g.v;
            if (pl == g.p - 1 && sa[static_cast<std::size_t>(lane)] !=
                                     simt::kInactiveLane) {
              words[static_cast<std::size_t>(lane)] ^= msb_mask;
            }
          }
          kc.alu_ops += 1;
        }
        a_frag[static_cast<std::size_t>(grp)] = words;
      }

      // RHS fragments per plane: phased loads + register transpose.
      for (int qq = 0; qq < g.q; ++qq) {
        // Per-lane loaded words (phases of one ld32 each).
        std::array<std::array<std::uint32_t, 8>, 32> loaded{};
        for (int ph = 0; ph < g.phases; ++ph) {
          LaneAddrs sa;
          sa.fill(simt::kInactiveLane);
          for (int lane = 0; lane < 32; ++lane) {
            const int qq4 = lane % 4;
            int word_col, k_row;
            if (g.int4path) {
              word_col = w * 4 + (lane / 4) % 4;
              k_row = 8 * qq4 + ph;
            } else {
              word_col = w * 8 + lane / 4;
              k_row = 4 * qq4 + ph;
            }
            sa[static_cast<std::size_t>(lane)] =
                g.rhs_base +
                static_cast<std::size_t>(qq) * g.layout.total_words() +
                g.layout.row_start_word(k_row) +
                static_cast<std::size_t>(word_col);
          }
          const LaneWords words = ctx.smem.ld32(sa, kc);
          for (int lane = 0; lane < 32; ++lane) {
            loaded[static_cast<std::size_t>(lane)]
                  [static_cast<std::size_t>(ph)] =
                      words[static_cast<std::size_t>(lane)];
          }
        }

        // Transpose on registers. b_regs[lane][i] = fragment register of
        // mma i for this lane.
        std::array<std::array<std::uint32_t, 4>, 32> b_regs{};
        if (g.int4path) {
          for (int lane = 0; lane < 32; ++lane) {
            std::array<std::uint32_t, 8> in{};
            for (int i = 0; i < 8; ++i) {
              in[static_cast<std::size_t>(i)] =
                  loaded[static_cast<std::size_t>(lane)]
                        [static_cast<std::size_t>(i)];
            }
            const auto out = g.shuffle ? transpose_int4_shuffled(in)
                                       : transpose_int4_naive(in);
            const int h = (lane / 4) / 4;
            for (int i = 0; i < 4; ++i) {
              b_regs[static_cast<std::size_t>(lane)]
                    [static_cast<std::size_t>(i)] =
                        out[static_cast<std::size_t>(4 * h + i)];
            }
          }
          kc.alu_ops += g.shuffle ? kInt4ShuffledAluOps : kInt4NaiveAluOps;
        } else {
          for (int lane = 0; lane < 32; ++lane) {
            std::array<std::uint32_t, 4> in{};
            for (int i = 0; i < 4; ++i) {
              in[static_cast<std::size_t>(i)] =
                  loaded[static_cast<std::size_t>(lane)]
                        [static_cast<std::size_t>(i)];
            }
            b_regs[static_cast<std::size_t>(lane)] = transpose_4x4_bytes(in);
          }
          kc.alu_ops += kInt8TransposeAluOps;
        }

        // Bias-correction column sums (signed values of this RHS plane).
        if (g.bias_correct) {
          const bool bsig = b.planes[static_cast<std::size_t>(qq)].is_signed;
          for (int lane = 0; lane < 32; ++lane) {
            for (int i = 0; i < 4; ++i) {
              const std::uint32_t reg =
                  b_regs[static_cast<std::size_t>(lane)]
                        [static_cast<std::size_t>(i)];
              const int tile_col = lane / 4;
              const int local_col = output_col(g, i, tile_col);
              std::int64_t sum = 0;
              for (int e = 0; e < g.epw; ++e) {
                const std::uint32_t raw =
                    (reg >> (g.chunk * e)) & ((1u << g.chunk) - 1u);
                sum += bsig ? sign_extend(raw, g.chunk)
                            : static_cast<std::int32_t>(raw);
              }
              colsum[static_cast<std::size_t>(
                  (w * g.q + qq) * 32 + local_col)] += sum;
            }
          }
          kc.alu_ops += static_cast<std::uint64_t>(4 * g.phases);
        }

        // mma issues: one per (group, mma index).
        const bool b_signed =
            b.planes[static_cast<std::size_t>(qq)].is_signed;
        for (int grp = 0; grp < g.g; ++grp) {
          const bool stacked_bias = g.bias_correct && grp == g.g - 1;
          bool a_signed;
          if (g.group_size(grp) == 1) {
            a_signed = a.planes[static_cast<std::size_t>(grp * g.s)].is_signed;
            if (g.is_top(grp * g.s) && stacked_bias) a_signed = false;
          } else {
            a_signed = false;  // raw / biased chunks
          }
          for (int mma = 0; mma < 4; ++mma) {
            WarpReg b_frag{};
            for (int lane = 0; lane < 32; ++lane) {
              b_frag[static_cast<std::size_t>(lane)] =
                  b_regs[static_cast<std::size_t>(lane)]
                        [static_cast<std::size_t>(mma)];
            }
            AccumFrag& dst = acc_at(w, grp, qq, mma);
            if (g.int4path) {
              simt::mma_m8n8k32(dst, a_frag[static_cast<std::size_t>(grp)],
                                b_frag, dst, a_signed, b_signed, kc);
            } else {
              simt::mma_m8n8k16(dst, a_frag[static_cast<std::size_t>(grp)],
                                b_frag, dst, a_signed, b_signed, kc);
            }
          }
        }
      }
    }
    kc.syncthreads += 1;
  }

  // ---- Epilogue: weighted plane combine + writeback ----
  Matrix<std::int32_t>& c = *args.c;
  for (int w = 0; w < 2; ++w) {
    for (int mma = 0; mma < 4; ++mma) {
      for (int lane = 0; lane < 32; ++lane) {
        const int row = lane / 4;
        if (row >= g.v) continue;
        const std::size_t out_row = r * v + static_cast<std::size_t>(row);
        for (int cc = 0; cc < 2; ++cc) {
          const int tile_col = 2 * (lane % 4) + cc;
          const int local_col = output_col(g, mma, tile_col);
          std::int64_t total = 0;
          for (int grp = 0; grp < g.g; ++grp) {
            for (int lp = 0; lp < g.group_size(grp); ++lp) {
              const int pl = grp * g.s + lp;
              const std::int64_t wp =
                  a.planes[static_cast<std::size_t>(pl)].weight;
              const int src_lane = (lp * g.v + row) * 4 + (lane % 4);
              for (int qq = 0; qq < g.q; ++qq) {
                const std::int64_t vq =
                    b.planes[static_cast<std::size_t>(qq)].weight;
                std::int64_t part =
                    acc_at(w, grp, qq, mma)
                        .c[static_cast<std::size_t>(src_lane)]
                        [static_cast<std::size_t>(cc)];
                if (g.bias_correct && grp == g.g - 1 && g.is_top(pl)) {
                  // Undo the excess encoding: C_top = C_raw - 2^(b-1)*colsum.
                  part -= (std::int64_t{1} << (g.chunk - 1)) *
                          colsum[static_cast<std::size_t>(
                              (w * g.q + qq) * 32 + local_col)];
                }
                total += wp * vq * part;
              }
            }
          }
          const std::size_t out_col =
              cb * g.bsn + static_cast<std::size_t>(w) * 32 +
              static_cast<std::size_t>(local_col);
          c(out_row, out_col) = static_cast<std::int32_t>(total);
        }
      }
      // Shuffle + ALU cost of the combine, counted per warp.
      kc.shfl_ops += 2 * stack_shfls(g.s) * static_cast<std::uint64_t>(g.g) *
                     static_cast<std::uint64_t>(g.q);
      kc.alu_ops += 2 * 2 * static_cast<std::uint64_t>(g.p) *
                    static_cast<std::uint64_t>(g.q);
    }
  }
  // Staged writeback events (see epilogue_counts derivation).
  const EpilogueCounts e = epilogue_counts(g);
  kc.smem_store_requests += e.smem_store_req;
  kc.smem_store_transactions += e.smem_store_trans;
  kc.smem_load_requests += e.smem_load_req;
  kc.smem_load_transactions += e.smem_load_trans;
  kc.gmem_store_requests += e.gmem_store_req;
  kc.gmem_store_sectors += e.gmem_store_sectors;
  kc.syncthreads += 1;
}

}  // namespace

SpmmResult spmm(const SparseOperand& a, const DenseOperand& b,
                const SpmmConfig& cfg) {
  const sparse::SrBcrs& sr = a.structure;
  MAGICUBE_CHECK_MSG(sr.stride == stride_for(cfg.precision),
                     "LHS stride does not match the precision datapath");
  MAGICUBE_CHECK_MSG(sr.shuffled == needs_shuffle(cfg),
                     "LHS shuffle state does not match the variant");
  MAGICUBE_CHECK(b.row_major);
  MAGICUBE_CHECK_MSG(b.cols % static_cast<std::size_t>(cfg.bsn) == 0,
                     "N must be a multiple of the block tile width");
  MAGICUBE_CHECK(b.rows == sr.cols);

  Geom g = make_geom(a, static_cast<int>(b.plane_count()), b.cols, b.rows,
                     cfg);

  simt::LaunchConfig launch;
  launch.grid_blocks = sr.vector_rows() * g.col_blocks;
  launch.warps_per_block = cfg.warps_per_block;
  launch.smem_bytes_per_block = smem_bytes(g);

  SpmmResult result;
  result.c = Matrix<std::int32_t>(sr.rows, b.cols, 0);

  BlockArgs args{&a, &b, &g, &result.c};
  result.run = simt::run_grid(
      launch, [&](simt::BlockContext& ctx) { run_block(ctx, args); });

  // Pipeline shape + compulsory DRAM traffic.
  std::uint64_t total_steps = 0, valid_vectors = 0;
  for (std::size_t r = 0; r < sr.vector_rows(); ++r) {
    total_steps += sr.strides_in_row(r);
    valid_vectors += sr.valid_vectors_in_row(r);
  }
  result.run.pipeline.total_steps = total_steps * g.col_blocks;
  result.run.pipeline.prefetch = g.prefetch;
  result.run.counters.dram_bytes =
      spmm_dram_bytes(g, sr.slot_count(), valid_vectors, sr.vector_rows());
  return result;
}

simt::KernelRun spmm_estimate(const sparse::BlockPattern& pattern,
                              std::size_t n_cols, const SpmmConfig& cfg) {
  MAGICUBE_CHECK(n_cols % static_cast<std::size_t>(cfg.bsn) == 0);

  // Rebuild the geometry from the precision pair alone (plane counts are a
  // function of the pair; no operand data is needed).
  SparseOperand meta;
  meta.structure.vector_length = pattern.vector_length;
  meta.structure.stride = stride_for(cfg.precision);
  meta.logical_type = cfg.precision.lhs;
  const int p_planes =
      quant::plane_count(cfg.precision.lhs, lhs_chunk_bits(cfg.precision));
  meta.planes.resize(static_cast<std::size_t>(p_planes));
  const int q_planes =
      quant::plane_count(cfg.precision.rhs,
                         bits_of(cfg.precision.rhs) <= 4 ? 4 : 8);
  Geom g = make_geom(meta, q_planes, n_cols, pattern.cols, cfg);

  const std::size_t stride = static_cast<std::size_t>(g.stride);
  simt::KernelRun run;
  run.launch.grid_blocks = pattern.vector_rows() * g.col_blocks;
  run.launch.warps_per_block = cfg.warps_per_block;
  run.launch.smem_bytes_per_block = smem_bytes(g);
  run.pipeline.prefetch = g.prefetch;

  std::uint64_t slots = 0, valid = 0, total_steps = 0;
  for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
    const std::uint64_t n_r = pattern.vectors_in_row(r);
    const std::uint64_t steps = (n_r + stride - 1) / stride;
    slots += steps * stride;
    valid += n_r;
    total_steps += steps;
    KernelCounters kc = block_counters(g, steps, n_r);
    // Every block of this row (one per column tile) counts identically.
    for (auto* field :
         {&kc.gmem_load_requests, &kc.gmem_load_sectors,
          &kc.gmem_store_requests, &kc.gmem_store_sectors,
          &kc.smem_load_requests, &kc.smem_load_transactions,
          &kc.smem_store_requests, &kc.smem_store_transactions,
          &kc.mma_int8, &kc.mma_int4, &kc.alu_ops, &kc.shfl_ops,
          &kc.syncthreads}) {
      *field *= g.col_blocks;
    }
    run.counters += kc;
  }
  run.pipeline.total_steps = total_steps * g.col_blocks;
  run.counters.dram_bytes =
      spmm_dram_bytes(g, slots, valid, pattern.vector_rows());
  return run;
}

std::uint64_t spmm_useful_ops(const sparse::BlockPattern& pattern,
                              std::size_t n_cols) {
  return 2ull * pattern.nnz() * n_cols;
}

SpmmResult spmm(const SparseOperandHandle& a, const DenseOperandHandle& b,
                const SpmmConfig& cfg) {
  MAGICUBE_CHECK_MSG(a && b, "spmm handles must be non-null");
  return spmm(*a, *b, cfg);
}

}  // namespace magicube::core
