#pragma once
// BCRS with 1-D dense blocks (the "column vector sparse encoding" of
// vectorSparse, paper Fig. 2): row pointers over vector rows, a column index
// per vector, and vector-major values (each V x 1 block contiguous).
//
// Used by (a) the vectorSparse-like fp16 baseline and (b) Magicube's SDDMM
// output when the consumer is a softmax (§IV-C: "if the subsequent operator
// is softmax, C is output into BCRS format").

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "sparse/pattern.hpp"

namespace magicube::sparse {

template <typename T>
struct Bcrs {
  std::size_t rows = 0;
  std::size_t cols = 0;
  int vector_length = 1;

  std::vector<std::uint32_t> row_ptr;  // vector_rows + 1
  std::vector<std::uint32_t> col_idx;  // one per vector
  std::vector<T> values;               // vector-major, V values per vector

  std::size_t vector_rows() const {
    return rows / static_cast<std::size_t>(vector_length);
  }
  std::size_t vector_count() const { return col_idx.size(); }
  std::size_t nnz() const {
    return vector_count() * static_cast<std::size_t>(vector_length);
  }

  void validate() const {
    MAGICUBE_CHECK(vector_length >= 1);
    MAGICUBE_CHECK(rows % static_cast<std::size_t>(vector_length) == 0);
    MAGICUBE_CHECK(row_ptr.size() == vector_rows() + 1);
    MAGICUBE_CHECK(row_ptr.front() == 0 && row_ptr.back() == col_idx.size());
    MAGICUBE_CHECK(values.size() ==
                   col_idx.size() * static_cast<std::size_t>(vector_length));
    for (std::size_t i = 0; i + 1 < row_ptr.size(); ++i) {
      MAGICUBE_CHECK(row_ptr[i] <= row_ptr[i + 1]);
    }
    for (const auto c : col_idx) MAGICUBE_CHECK(c < cols);
  }

  Matrix<T> to_dense() const {
    Matrix<T> out(rows, cols, T{});
    const std::size_t v = static_cast<std::size_t>(vector_length);
    for (std::size_t r = 0; r < vector_rows(); ++r) {
      for (std::uint32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
        for (std::size_t rb = 0; rb < v; ++rb) {
          out(r * v + rb, col_idx[i]) = values[i * v + rb];
        }
      }
    }
    return out;
  }
};

/// Builds a BCRS matrix from a pattern and dense values.
template <typename T>
Bcrs<T> build_bcrs(const BlockPattern& pattern, const Matrix<T>& dense) {
  pattern.validate();
  MAGICUBE_CHECK(dense.rows() == pattern.rows && dense.cols() == pattern.cols);
  Bcrs<T> out;
  out.rows = pattern.rows;
  out.cols = pattern.cols;
  out.vector_length = pattern.vector_length;
  out.row_ptr = pattern.row_ptr;
  out.col_idx = pattern.col_idx;
  const std::size_t v = static_cast<std::size_t>(pattern.vector_length);
  out.values.resize(pattern.vector_count() * v);
  for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
    for (std::uint32_t i = pattern.row_ptr[r]; i < pattern.row_ptr[r + 1];
         ++i) {
      for (std::size_t rb = 0; rb < v; ++rb) {
        out.values[i * v + rb] = dense(r * v + rb, pattern.col_idx[i]);
      }
    }
  }
  out.validate();
  return out;
}

}  // namespace magicube::sparse
