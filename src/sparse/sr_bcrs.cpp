#include "sparse/sr_bcrs.hpp"

namespace magicube::sparse {

std::size_t SrBcrs::valid_vectors_in_row(std::size_t r) const {
  std::size_t n = 0;
  for (std::uint32_t s = first_ptr[r]; s < end_ptr[r]; ++s) {
    if (col_idx[s] != kInvalidCol) ++n;
  }
  return n;
}

std::size_t SrBcrs::nnz() const {
  std::size_t n = 0;
  for (std::size_t r = 0; r < vector_rows(); ++r) n += valid_vectors_in_row(r);
  return n * static_cast<std::size_t>(vector_length);
}

void SrBcrs::validate() const {
  MAGICUBE_CHECK(vector_length >= 1 && vector_length <= 8);
  MAGICUBE_CHECK(stride > 0);
  MAGICUBE_CHECK(rows % static_cast<std::size_t>(vector_length) == 0);
  const std::size_t vr = vector_rows();
  MAGICUBE_CHECK(first_ptr.size() == vr && end_ptr.size() == vr);
  MAGICUBE_CHECK(values.size() ==
                 slot_count() * static_cast<std::size_t>(vector_length));
  std::uint32_t prev_end = 0;
  for (std::size_t r = 0; r < vr; ++r) {
    MAGICUBE_CHECK(first_ptr[r] == prev_end);
    MAGICUBE_CHECK(end_ptr[r] >= first_ptr[r]);
    MAGICUBE_CHECK_MSG((end_ptr[r] - first_ptr[r]) %
                               static_cast<std::uint32_t>(stride) ==
                           0,
                       "row padding must align to the stride");
    prev_end = end_ptr[r];
  }
  MAGICUBE_CHECK(prev_end == slot_count());
  // Padded slots carry zero values; valid slots carry in-range columns.
  // When shuffled, the index at stored position p pairs with the value slot
  // kShuffleOrder[p % 8] of its aligned group of 8.
  for (std::size_t r = 0; r < vr; ++r) {
    for (std::uint32_t s = first_ptr[r]; s < end_ptr[r]; ++s) {
      if (col_idx[s] != kInvalidCol) {
        MAGICUBE_CHECK(col_idx[s] < cols);
        continue;
      }
      const std::size_t vslot =
          shuffled ? (s / 8 * 8 + static_cast<std::size_t>(
                                      kShuffleOrder[s % 8]))
                   : s;
      const std::size_t group =
          (vslot - first_ptr[r]) / static_cast<std::size_t>(stride);
      const std::size_t base =
          first_ptr[r] + group * static_cast<std::size_t>(stride);
      const std::size_t off = vslot - base;
      for (int rb = 0; rb < vector_length; ++rb) {
        MAGICUBE_CHECK_MSG(
            values.get(value_index(base, off, static_cast<std::size_t>(rb))) ==
                0,
            "padding slots must hold zero values");
      }
    }
  }
}

Matrix<std::int32_t> SrBcrs::to_dense() const {
  Matrix<std::int32_t> out(rows, cols, 0);
  const std::size_t v = static_cast<std::size_t>(vector_length);
  for (std::size_t r = 0; r < vector_rows(); ++r) {
    for (std::uint32_t s = first_ptr[r]; s < end_ptr[r]; ++s) {
      if (col_idx[s] == kInvalidCol) continue;
      // Index position s pairs with value slot kShuffleOrder[s % 8] of its
      // aligned 8-group when the indices are shuffled.
      const std::size_t vslot =
          shuffled
              ? (s / 8 * 8 +
                 static_cast<std::size_t>(kShuffleOrder[s % 8]))
              : s;
      const std::size_t group =
          (vslot - first_ptr[r]) / static_cast<std::size_t>(stride);
      const std::size_t base =
          first_ptr[r] + group * static_cast<std::size_t>(stride);
      const std::size_t off = vslot - base;
      for (std::size_t rb = 0; rb < v; ++rb) {
        out(r * v + rb, col_idx[s]) = values.get(value_index(base, off, rb));
      }
    }
  }
  return out;
}

SrBcrs build_sr_bcrs(const BlockPattern& pattern,
                     const Matrix<std::int32_t>& dense, Scalar type,
                     int stride) {
  pattern.validate();
  MAGICUBE_CHECK(dense.rows() == pattern.rows && dense.cols() == pattern.cols);
  MAGICUBE_CHECK(stride > 0);

  SrBcrs out;
  out.rows = pattern.rows;
  out.cols = pattern.cols;
  out.vector_length = pattern.vector_length;
  out.stride = stride;
  const std::size_t vr = pattern.vector_rows();
  const std::size_t v = static_cast<std::size_t>(pattern.vector_length);
  const std::size_t st = static_cast<std::size_t>(stride);

  out.first_ptr.resize(vr);
  out.end_ptr.resize(vr);
  std::size_t slots = 0;
  for (std::size_t r = 0; r < vr; ++r) {
    out.first_ptr[r] = static_cast<std::uint32_t>(slots);
    const std::size_t n = pattern.vectors_in_row(r);
    slots += (n + st - 1) / st * st;
    out.end_ptr[r] = static_cast<std::uint32_t>(slots);
  }
  out.col_idx.assign(slots, kInvalidCol);
  out.values = PackedBuffer(slots * v, type);  // zero-initialized

  for (std::size_t r = 0; r < vr; ++r) {
    const std::size_t n = pattern.vectors_in_row(r);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t col = pattern.col_idx[pattern.row_ptr[r] + j];
      const std::size_t slot = out.first_ptr[r] + j;
      out.col_idx[slot] = col;
      const std::size_t base = out.first_ptr[r] + (j / st) * st;
      const std::size_t off = j % st;
      for (std::size_t rb = 0; rb < v; ++rb) {
        out.values.set(out.value_index(base, off, rb),
                       dense(r * v + rb, col));
      }
    }
  }
  out.validate();
  return out;
}

SrBcrs build_sr_bcrs_random(const BlockPattern& pattern, Scalar type,
                            int stride, Rng& rng) {
  Matrix<std::int32_t> dense(pattern.rows, pattern.cols, 0);
  const Matrix<std::uint8_t> mask = pattern_to_dense_mask(pattern);
  for (std::size_t r = 0; r < pattern.rows; ++r) {
    for (std::size_t c = 0; c < pattern.cols; ++c) {
      if (mask(r, c)) {
        dense(r, c) = static_cast<std::int32_t>(
            rng.next_in(min_value(type), max_value(type)));
      }
    }
  }
  return build_sr_bcrs(pattern, dense, type, stride);
}

SrBcrs shuffle_columns(const SrBcrs& in) {
  MAGICUBE_CHECK_MSG(!in.shuffled, "matrix is already shuffled");
  MAGICUBE_CHECK_MSG(in.stride % 8 == 0,
                     "block-of-8 shuffle needs stride % 8 == 0");
  // Only the column *indices* are permuted (paper Fig. 7): the RHS rows are
  // thereby staged in shuffled order, and the int32-granularity register
  // transpose emits them back in natural k order — which is exactly the
  // order the (unpermuted) values are stored in.
  SrBcrs out = in;
  out.shuffled = true;
  for (std::size_t base = 0; base < in.slot_count(); base += 8) {
    for (std::size_t p = 0; p < 8; ++p) {
      out.col_idx[base + p] =
          in.col_idx[base + static_cast<std::size_t>(kShuffleOrder[p])];
    }
  }
  return out;
}

}  // namespace magicube::sparse
