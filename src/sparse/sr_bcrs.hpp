#pragma once
// SR-BCRS — Strided Row-major Block Compressed Row Storage (paper §IV-A).
//
// The format difference from BCRS is the storage order of the dense 1-D
// blocks: vectors of a vector row are grouped into *strides* of length equal
// to the mma reduction dimension (16 for int8, 32 for int4), and within a
// stride the V x stride tile is stored row-major. A warp can then load the
// LHS fragment of an mma with consecutive addresses — the layout requirement
// of Fig. 1 is met for free. Rows whose vector count is not a multiple of
// the stride are zero-padded, and their column indices padded with an
// invalid marker (the "*" of Fig. 2).
//
// Two row pointers per vector row (2M total, §IV-A) delimit the padded
// region: [first_ptr[r], end_ptr[r]) in slot units, end - first always a
// multiple of the stride.
//
// For the int4 kernels the format is additionally "shuffled": column indices
// (and, consistently, the stored value columns) are permuted block-of-8-wise
// by {0,2,4,6,1,3,5,7} so that the nibble-level register transpose of Fig. 7
// lands results in natural order using only int32-granularity bit ops.

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/packed.hpp"
#include "common/precision.hpp"
#include "common/rng.hpp"
#include "sparse/pattern.hpp"

namespace magicube::sparse {

/// The block-of-8 shuffle order: stored position p holds original slot
/// kShuffleOrder[p] of each aligned group of 8 slots.
inline constexpr std::array<int, 8> kShuffleOrder = {0, 2, 4, 6, 1, 3, 5, 7};

struct SrBcrs {
  std::size_t rows = 0;
  std::size_t cols = 0;
  int vector_length = 1;  // V <= 8
  int stride = 16;        // mma reduction dimension (16: int8, 32: int4)
  bool shuffled = false;

  std::vector<std::uint32_t> first_ptr;  // per vector row, in slots
  std::vector<std::uint32_t> end_ptr;    // one past the padded last slot
  std::vector<std::uint32_t> col_idx;    // one per slot, kInvalidCol = pad
  PackedBuffer values;                   // slot_count * V elements

  std::size_t vector_rows() const {
    return rows / static_cast<std::size_t>(vector_length);
  }
  std::size_t slot_count() const { return col_idx.size(); }
  /// Valid (unpadded) vectors in row r. With shuffling, padded slots may be
  /// interleaved; this counts non-invalid columns.
  std::size_t valid_vectors_in_row(std::size_t r) const;
  /// Strides (accumulation steps) in row r.
  std::size_t strides_in_row(std::size_t r) const {
    return (end_ptr[r] - first_ptr[r]) / static_cast<std::size_t>(stride);
  }
  /// Total nonzero scalars (excludes padding).
  std::size_t nnz() const;

  /// Flat value index of (slot, row-in-block). Slots are global; the stride
  /// group is derived from the slot's offset within its row, so the caller
  /// passes the row's first_ptr-aligned group base.
  std::size_t value_index(std::size_t slot_base_of_group,
                          std::size_t offset_in_group,
                          std::size_t row_in_block) const {
    return slot_base_of_group * static_cast<std::size_t>(vector_length) +
           row_in_block * static_cast<std::size_t>(stride) + offset_in_group;
  }

  /// Structural invariants (pointer monotonicity, stride alignment, padding
  /// discipline: invalid columns carry zero values).
  void validate() const;

  /// Expands to a dense matrix (padding contributes nothing).
  Matrix<std::int32_t> to_dense() const;
};

/// Builds SR-BCRS from a pattern and a dense value matrix (values outside
/// the pattern are ignored; values inside must fit `type`).
SrBcrs build_sr_bcrs(const BlockPattern& pattern,
                     const Matrix<std::int32_t>& dense, Scalar type,
                     int stride);

/// Builds SR-BCRS with uniform random values over the full range of `type`.
SrBcrs build_sr_bcrs_random(const BlockPattern& pattern, Scalar type,
                            int stride, Rng& rng);

/// Applies the block-of-8 column shuffle to an unshuffled matrix (column
/// indices and value columns permuted consistently); returns a copy with
/// `shuffled = true`. Requires stride % 8 == 0.
SrBcrs shuffle_columns(const SrBcrs& in);

}  // namespace magicube::sparse
