#pragma once
// Structured sparsity pattern with 1-D column-vector blocks.
//
// Magicube (like vectorSparse) constrains the nonzero layout of the sparse
// operand to dense 1-D blocks of shape V x 1 (V consecutive rows, one
// column), V in {2, 4, 8}. A pattern is therefore described per *vector row*
// (a band of V matrix rows): which columns carry a dense vector. This is the
// shared skeleton from which every concrete format (BCRS, SR-BCRS,
// Blocked-ELL) and the benchmark matrices are built.

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace magicube::sparse {

/// Sentinel column index used for padding slots (the paper's "*" entries).
inline constexpr std::uint32_t kInvalidCol = 0xffffffffu;

struct BlockPattern {
  std::size_t rows = 0;      // M, a multiple of V
  std::size_t cols = 0;      // K
  int vector_length = 1;     // V

  /// CSR-style over vector rows: vector row r owns vectors
  /// [row_ptr[r], row_ptr[r+1]) of col_idx.
  std::vector<std::uint32_t> row_ptr;
  std::vector<std::uint32_t> col_idx;  // strictly increasing within a row

  std::size_t vector_rows() const {
    return rows / static_cast<std::size_t>(vector_length);
  }
  std::size_t vector_count() const { return col_idx.size(); }
  /// Number of nonzero scalars.
  std::size_t nnz() const {
    return vector_count() * static_cast<std::size_t>(vector_length);
  }
  /// Element sparsity in [0, 1].
  double sparsity() const {
    return rows * cols == 0
               ? 0.0
               : 1.0 - static_cast<double>(nnz()) /
                           static_cast<double>(rows * cols);
  }
  std::size_t vectors_in_row(std::size_t r) const {
    return row_ptr[r + 1] - row_ptr[r];
  }

  /// Structural validation (monotone pointers, in-range sorted columns).
  void validate() const;

  /// Stable 64-bit content hash over shape, vector length and the nonzero
  /// layout (FNV-1a). Identifies the pattern across calls within and across
  /// processes — the serving-engine operand cache keys on it.
  std::uint64_t fingerprint() const;
};

/// Uniform random pattern: every vector row holds round((1-sparsity)*K)
/// distinct columns, sampled without replacement. This mirrors how the DLMC
/// benchmark set is dilated in §V of the paper (a scalar sparse matrix's
/// rows become vector rows).
BlockPattern make_uniform_pattern(std::size_t rows, std::size_t cols,
                                  int vector_length, double sparsity,
                                  Rng& rng);

/// Banded/clustered pattern: nonzero columns cluster around the diagonal
/// band, as magnitude-pruned attention and weight matrices do. `spread`
/// controls cluster width as a fraction of K.
BlockPattern make_banded_pattern(std::size_t rows, std::size_t cols,
                                 int vector_length, double sparsity,
                                 double spread, Rng& rng);

/// Pattern of a sliding-window + global-token sparse attention mask
/// (Sparse-Transformer/Longformer style) over an L x L score matrix,
/// honouring the 8x1 vector constraint used by the paper's case study.
BlockPattern make_attention_mask_pattern(std::size_t seq_len,
                                         int vector_length, double sparsity,
                                         Rng& rng);

/// Expands a pattern into a dense 0/1 indicator matrix (tests, mask use).
Matrix<std::uint8_t> pattern_to_dense_mask(const BlockPattern& p);

/// Row slice [vr_begin, vr_end) of a pattern, in vector-row units — the
/// SR-BCRS block-row boundary, so a slice's encoded structure is exactly
/// the corresponding slot range of the full encoding. Execution plans built
/// from a slice therefore replay the matching rows of the full problem
/// bit-exactly (the multi-device sharding layer relies on this; equivalence
/// is asserted by tests/test_plan.cpp). An empty slice (vr_begin == vr_end)
/// yields a valid 0-row pattern.
BlockPattern slice_vector_rows(const BlockPattern& p, std::size_t vr_begin,
                               std::size_t vr_end);

}  // namespace magicube::sparse
