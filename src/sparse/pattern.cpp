#include "sparse/pattern.hpp"

#include <algorithm>
#include <cmath>

#include "common/hash.hpp"

namespace magicube::sparse {

void BlockPattern::validate() const {
  MAGICUBE_CHECK(vector_length > 0);
  MAGICUBE_CHECK(rows % static_cast<std::size_t>(vector_length) == 0);
  MAGICUBE_CHECK(row_ptr.size() == vector_rows() + 1);
  MAGICUBE_CHECK(row_ptr.front() == 0);
  MAGICUBE_CHECK(row_ptr.back() == col_idx.size());
  for (std::size_t r = 0; r < vector_rows(); ++r) {
    MAGICUBE_CHECK(row_ptr[r] <= row_ptr[r + 1]);
    for (std::uint32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      MAGICUBE_CHECK_MSG(col_idx[i] < cols, "column index out of range");
      if (i > row_ptr[r]) {
        MAGICUBE_CHECK_MSG(col_idx[i - 1] < col_idx[i],
                           "columns must be strictly increasing");
      }
    }
  }
}

std::uint64_t BlockPattern::fingerprint() const {
  Fnv1a h;
  h.mix(rows);
  h.mix(cols);
  h.mix(static_cast<std::uint64_t>(vector_length), 4);
  for (const std::uint32_t v : row_ptr) h.mix(v, 4);
  for (const std::uint32_t v : col_idx) h.mix(v, 4);
  return h.state;
}

namespace {

// Samples `want` distinct columns in [0, cols) into out (sorted).
// Partial Fisher-Yates over a scratch index array: O(cols + want log want),
// fast enough for the 1,536-matrix benchmark sweeps.
void sample_columns(std::size_t cols, std::size_t want, Rng& rng,
                    std::vector<std::uint32_t>& out) {
  MAGICUBE_CHECK(want <= cols);
  thread_local std::vector<std::uint32_t> scratch;
  scratch.resize(cols);
  for (std::size_t i = 0; i < cols; ++i) {
    scratch[i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j = i + rng.next_below(cols - i);
    std::swap(scratch[i], scratch[j]);
  }
  out.assign(scratch.begin(),
             scratch.begin() + static_cast<std::ptrdiff_t>(want));
  std::sort(out.begin(), out.end());
}

}  // namespace

BlockPattern make_uniform_pattern(std::size_t rows, std::size_t cols,
                                  int vector_length, double sparsity,
                                  Rng& rng) {
  MAGICUBE_CHECK(vector_length > 0 &&
                 rows % static_cast<std::size_t>(vector_length) == 0);
  MAGICUBE_CHECK(sparsity >= 0.0 && sparsity <= 1.0);
  BlockPattern p;
  p.rows = rows;
  p.cols = cols;
  p.vector_length = vector_length;
  const std::size_t vr = p.vector_rows();
  const std::size_t per_row = static_cast<std::size_t>(
      std::lround((1.0 - sparsity) * static_cast<double>(cols)));
  p.row_ptr.resize(vr + 1, 0);
  std::vector<std::uint32_t> sample;
  for (std::size_t r = 0; r < vr; ++r) {
    sample_columns(cols, per_row, rng, sample);
    p.col_idx.insert(p.col_idx.end(), sample.begin(), sample.end());
    p.row_ptr[r + 1] = static_cast<std::uint32_t>(p.col_idx.size());
  }
  p.validate();
  return p;
}

BlockPattern make_banded_pattern(std::size_t rows, std::size_t cols,
                                 int vector_length, double sparsity,
                                 double spread, Rng& rng) {
  MAGICUBE_CHECK(vector_length > 0 &&
                 rows % static_cast<std::size_t>(vector_length) == 0);
  BlockPattern p;
  p.rows = rows;
  p.cols = cols;
  p.vector_length = vector_length;
  const std::size_t vr = p.vector_rows();
  const std::size_t per_row = static_cast<std::size_t>(
      std::lround((1.0 - sparsity) * static_cast<double>(cols)));
  const double width = std::max(1.0, spread * static_cast<double>(cols));
  p.row_ptr.resize(vr + 1, 0);

  std::vector<std::uint32_t> picked;
  std::vector<std::uint8_t> member(cols, 0);
  for (std::size_t r = 0; r < vr; ++r) {
    const double center = vr <= 1 ? 0.0
                                  : static_cast<double>(r) /
                                        static_cast<double>(vr - 1) *
                                        static_cast<double>(cols - 1);
    picked.clear();
    std::size_t guard = 0;
    while (picked.size() < per_row && guard++ < per_row * 64 + 64) {
      const double g = rng.next_normal() * width;
      long c = std::lround(center + g);
      if (c < 0 || c >= static_cast<long>(cols)) continue;
      const std::uint32_t cc = static_cast<std::uint32_t>(c);
      if (!member[cc]) {
        member[cc] = 1;
        picked.push_back(cc);
      }
    }
    // Fill any shortfall deterministically.
    for (std::uint32_t c = 0; picked.size() < per_row &&
                              c < static_cast<std::uint32_t>(cols);
         ++c) {
      if (!member[c]) {
        member[c] = 1;
        picked.push_back(c);
      }
    }
    for (const auto c : picked) member[c] = 0;
    std::sort(picked.begin(), picked.end());
    p.col_idx.insert(p.col_idx.end(), picked.begin(), picked.end());
    p.row_ptr[r + 1] = static_cast<std::uint32_t>(p.col_idx.size());
  }
  p.validate();
  return p;
}

BlockPattern make_attention_mask_pattern(std::size_t seq_len,
                                         int vector_length, double sparsity,
                                         Rng& rng) {
  // Sliding window around the diagonal plus a few random global columns,
  // sized so that overall element sparsity matches `sparsity`. Column count
  // per vector row is fixed, satisfying the V x 1 block constraint.
  MAGICUBE_CHECK(seq_len % static_cast<std::size_t>(vector_length) == 0);
  BlockPattern p;
  p.rows = seq_len;
  p.cols = seq_len;
  p.vector_length = vector_length;
  const std::size_t vr = p.vector_rows();
  const std::size_t per_row = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(
             (1.0 - sparsity) * static_cast<double>(seq_len))));
  const std::size_t window = (per_row * 3) / 4;   // 75% local window
  const std::size_t globals = per_row - window;   // 25% global tokens
  p.row_ptr.resize(vr + 1, 0);

  std::vector<std::uint32_t> picked;
  std::vector<std::uint8_t> member(seq_len, 0);
  for (std::size_t r = 0; r < vr; ++r) {
    picked.clear();
    const long center = static_cast<long>(
        (r * static_cast<std::size_t>(vector_length)) +
        static_cast<std::size_t>(vector_length) / 2);
    const long half = static_cast<long>(window) / 2;
    for (long c = center - half; picked.size() < window; ++c) {
      long cc = c;
      while (cc < 0) cc += static_cast<long>(seq_len);
      while (cc >= static_cast<long>(seq_len)) {
        cc -= static_cast<long>(seq_len);
      }
      const std::uint32_t u = static_cast<std::uint32_t>(cc);
      if (!member[u]) {
        member[u] = 1;
        picked.push_back(u);
      }
    }
    std::size_t guard = 0;
    while (picked.size() < window + globals && guard++ < seq_len * 4) {
      const std::uint32_t u =
          static_cast<std::uint32_t>(rng.next_below(seq_len));
      if (!member[u]) {
        member[u] = 1;
        picked.push_back(u);
      }
    }
    for (const auto u : picked) member[u] = 0;
    std::sort(picked.begin(), picked.end());
    p.col_idx.insert(p.col_idx.end(), picked.begin(), picked.end());
    p.row_ptr[r + 1] = static_cast<std::uint32_t>(p.col_idx.size());
  }
  p.validate();
  return p;
}

BlockPattern slice_vector_rows(const BlockPattern& p, std::size_t vr_begin,
                               std::size_t vr_end) {
  MAGICUBE_CHECK(vr_begin <= vr_end && vr_end <= p.vector_rows());
  BlockPattern s;
  s.rows = (vr_end - vr_begin) * static_cast<std::size_t>(p.vector_length);
  s.cols = p.cols;
  s.vector_length = p.vector_length;
  const std::uint32_t base = p.row_ptr[vr_begin];
  s.row_ptr.resize(vr_end - vr_begin + 1);
  for (std::size_t r = vr_begin; r <= vr_end; ++r) {
    s.row_ptr[r - vr_begin] = p.row_ptr[r] - base;
  }
  s.col_idx.assign(p.col_idx.begin() + base,
                   p.col_idx.begin() + p.row_ptr[vr_end]);
  return s;
}

Matrix<std::uint8_t> pattern_to_dense_mask(const BlockPattern& p) {
  Matrix<std::uint8_t> m(p.rows, p.cols, 0);
  const std::size_t v = static_cast<std::size_t>(p.vector_length);
  for (std::size_t r = 0; r < p.vector_rows(); ++r) {
    for (std::uint32_t i = p.row_ptr[r]; i < p.row_ptr[r + 1]; ++i) {
      for (std::size_t dv = 0; dv < v; ++dv) {
        m(r * v + dv, p.col_idx[i]) = 1;
      }
    }
  }
  return m;
}

}  // namespace magicube::sparse
