#pragma once
// Scalar Compressed Row Storage — the baseline format of Fig. 2 and the
// reference representation for fine-grained kernels (Sputnik-style) used as
// functional ground truth in tests.

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "sparse/pattern.hpp"

namespace magicube::sparse {

template <typename T>
struct Crs {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> row_ptr;  // rows + 1
  std::vector<std::uint32_t> col_idx;
  std::vector<T> values;

  std::size_t nnz() const { return col_idx.size(); }

  void validate() const {
    MAGICUBE_CHECK(row_ptr.size() == rows + 1);
    MAGICUBE_CHECK(row_ptr.front() == 0 && row_ptr.back() == col_idx.size());
    MAGICUBE_CHECK(values.size() == col_idx.size());
    for (std::size_t i = 0; i + 1 < row_ptr.size(); ++i) {
      MAGICUBE_CHECK(row_ptr[i] <= row_ptr[i + 1]);
    }
    for (const auto c : col_idx) MAGICUBE_CHECK(c < cols);
  }

  Matrix<T> to_dense() const {
    Matrix<T> out(rows, cols, T{});
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::uint32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
        out(r, col_idx[i]) = values[i];
      }
    }
    return out;
  }
};

/// Builds CRS from a dense matrix, keeping entries where keep(r, c) is true.
template <typename T, typename Keep>
Crs<T> build_crs(const Matrix<T>& dense, Keep keep) {
  Crs<T> out;
  out.rows = dense.rows();
  out.cols = dense.cols();
  out.row_ptr.resize(out.rows + 1, 0);
  for (std::size_t r = 0; r < out.rows; ++r) {
    for (std::size_t c = 0; c < out.cols; ++c) {
      if (keep(r, c)) {
        out.col_idx.push_back(static_cast<std::uint32_t>(c));
        out.values.push_back(dense(r, c));
      }
    }
    out.row_ptr[r + 1] = static_cast<std::uint32_t>(out.col_idx.size());
  }
  out.validate();
  return out;
}

/// CRS view of a 1-D-block pattern (each vector expands to V scalar entries).
template <typename T>
Crs<T> build_crs_from_pattern(const BlockPattern& pattern,
                              const Matrix<T>& dense) {
  const auto mask = pattern_to_dense_mask(pattern);
  return build_crs<T>(dense,
                      [&](std::size_t r, std::size_t c) { return mask(r, c); });
}

}  // namespace magicube::sparse
