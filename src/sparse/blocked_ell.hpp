#pragma once
// Blocked-ELL format, as consumed by cuSPARSE's SpMM (the baseline of
// Fig. 14). Square b x b blocks; every block row stores the same number of
// blocks (the maximum over rows), padded with zero blocks marked by an
// invalid column. The paper (after Chen et al.) generates Blocked-ELL
// instances with the same sparsity and problem size as the 1-D-block
// matrices; converting a V x 1 pattern to b x b blocks inflates stored
// zeros, which is one reason the cuSPARSE baseline needs block size >= 8 to
// profit and still loses to 1-D-block formats at equal model quality.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "sparse/pattern.hpp"

namespace magicube::sparse {

template <typename T>
struct BlockedEll {
  std::size_t rows = 0;
  std::size_t cols = 0;
  int block_size = 8;
  std::size_t ell_width = 0;  // blocks per block row (uniform)

  std::vector<std::uint32_t> block_cols;  // block_rows * ell_width
  std::vector<T> values;  // per block, row-major, block-row-major order

  std::size_t block_rows() const {
    return (rows + static_cast<std::size_t>(block_size) - 1) /
           static_cast<std::size_t>(block_size);
  }
  std::size_t block_count() const { return block_cols.size(); }
  /// Scalars stored (including intra-block padding zeros).
  std::size_t stored_elems() const {
    return block_count() * static_cast<std::size_t>(block_size) *
           static_cast<std::size_t>(block_size);
  }

  void validate() const {
    MAGICUBE_CHECK(block_size > 0);
    MAGICUBE_CHECK(block_cols.size() == block_rows() * ell_width);
    MAGICUBE_CHECK(values.size() == stored_elems());
    for (const auto c : block_cols) {
      MAGICUBE_CHECK(c == kInvalidCol ||
                     static_cast<std::size_t>(c) * block_size < cols);
    }
  }

  Matrix<T> to_dense() const {
    Matrix<T> out(rows, cols, T{});
    const std::size_t b = static_cast<std::size_t>(block_size);
    for (std::size_t br = 0; br < block_rows(); ++br) {
      for (std::size_t e = 0; e < ell_width; ++e) {
        const std::uint32_t bc = block_cols[br * ell_width + e];
        if (bc == kInvalidCol) continue;
        const T* blk = values.data() + (br * ell_width + e) * b * b;
        for (std::size_t i = 0; i < b; ++i) {
          for (std::size_t j = 0; j < b; ++j) {
            const std::size_t r = br * b + i, c = bc * b + j;
            if (r < rows && c < cols) out(r, c) = blk[i * b + j];
          }
        }
      }
    }
    return out;
  }
};

/// Converts a 1-D-block pattern + dense values into Blocked-ELL with square
/// blocks of `block_size` (covering every nonzero; blocks that intersect any
/// vector become stored blocks).
template <typename T>
BlockedEll<T> build_blocked_ell(const BlockPattern& pattern,
                                const Matrix<T>& dense, int block_size) {
  pattern.validate();
  MAGICUBE_CHECK(block_size > 0);
  BlockedEll<T> out;
  out.rows = pattern.rows;
  out.cols = pattern.cols;
  out.block_size = block_size;
  const std::size_t b = static_cast<std::size_t>(block_size);
  const std::size_t brs = out.block_rows();
  const std::size_t bcols = (pattern.cols + b - 1) / b;

  // Collect the distinct block columns of each block row.
  std::vector<std::vector<std::uint32_t>> per_row(brs);
  const std::size_t v = static_cast<std::size_t>(pattern.vector_length);
  for (std::size_t r = 0; r < pattern.vector_rows(); ++r) {
    for (std::uint32_t i = pattern.row_ptr[r]; i < pattern.row_ptr[r + 1];
         ++i) {
      const std::uint32_t bc = pattern.col_idx[i] / block_size;
      // A V x 1 vector can straddle two block rows when V < b never happens
      // (V <= 8 <= b and rows are V-aligned), but handle generally.
      const std::size_t r0 = (r * v) / b;
      const std::size_t r1 = (r * v + v - 1) / b;
      for (std::size_t br = r0; br <= r1; ++br) {
        auto& row = per_row[br];
        if (std::find(row.begin(), row.end(), bc) == row.end()) {
          row.push_back(bc);
        }
      }
    }
  }
  out.ell_width = 0;
  for (auto& row : per_row) {
    std::sort(row.begin(), row.end());
    out.ell_width = std::max(out.ell_width, row.size());
  }
  MAGICUBE_CHECK(out.ell_width <= bcols);

  out.block_cols.assign(brs * out.ell_width, kInvalidCol);
  out.values.assign(out.stored_elems(), T{});
  for (std::size_t br = 0; br < brs; ++br) {
    for (std::size_t e = 0; e < per_row[br].size(); ++e) {
      const std::uint32_t bc = per_row[br][e];
      out.block_cols[br * out.ell_width + e] = bc;
      T* blk = out.values.data() + (br * out.ell_width + e) * b * b;
      for (std::size_t i = 0; i < b; ++i) {
        for (std::size_t j = 0; j < b; ++j) {
          const std::size_t r = br * b + i, c = bc * b + j;
          if (r < pattern.rows && c < pattern.cols) blk[i * b + j] = dense(r, c);
        }
      }
    }
  }
  out.validate();
  return out;
}

}  // namespace magicube::sparse
