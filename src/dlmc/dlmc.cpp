#include "dlmc/dlmc.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace magicube::dlmc {

const std::vector<std::pair<std::size_t, std::size_t>>& base_shapes() {
  // GEMM-ized shapes: ResNet-50 1x1/3x3 conv weights (C_out x C_in*k*k for
  // the pruned pointwise and spatial convs of each stage) and Transformer
  // base attention/FFN projections. 32 shapes x 8 seeded instances = 256.
  static const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      // ResNet-50 stage 1-2 (conv2_x, conv3_x)
      {64, 64},     {64, 256},   {256, 64},   {64, 576},
      {128, 256},   {128, 512},  {512, 128},  {128, 1152},
      // ResNet-50 stage 3 (conv4_x)
      {256, 512},   {256, 1024}, {1024, 256}, {256, 2304},
      {512, 1024},  {512, 2048}, {2048, 512}, {512, 4608},
      // Transformer-base projections (d_model = 512)
      {512, 512},   {512, 512},  {2048, 512}, {512, 2048},
      // Transformer-large projections (d_model = 1024)
      {1024, 1024}, {4096, 1024},{1024, 4096},{1024, 1024},
      // Attention-style tall/flat score blocks
      {256, 256},   {256, 1024}, {1024, 1024},{2048, 2048},
      // Misc pruned classifier / embedding projections
      {1000, 2048}, {512, 768},  {768, 768},  {768, 3072},
  };
  return shapes;
}

std::vector<MatrixSpec> collection(double sparsity, std::size_t count) {
  const auto& shapes = base_shapes();
  std::vector<MatrixSpec> out;
  out.reserve(count);
  std::size_t i = 0;
  while (out.size() < count) {
    const auto& [r, c] = shapes[i % shapes.size()];
    const std::size_t instance = i / shapes.size();
    MatrixSpec s;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "dlmc%03zu_%zux%zu_s%.2f_i%zu", i, r, c,
                  sparsity, instance);
    s.name = buf;
    s.rows = r;
    s.cols = c;
    s.sparsity = sparsity;
    // Alternate placement styles: even instances uniform (random pruning),
    // odd instances banded (magnitude pruning concentrates survivors).
    s.kind = (instance % 2 == 0) ? PatternKind::uniform : PatternKind::banded;
    s.seed = 0x0d19c000ull + i * 7919ull +
             static_cast<std::uint64_t>(sparsity * 1000.0);
    out.push_back(std::move(s));
    ++i;
  }
  return out;
}

MatrixSpec ablation_matrix(double sparsity) {
  MatrixSpec s;
  s.name = "ablation_256x2304";
  s.rows = 256;
  s.cols = 2304;
  s.sparsity = sparsity;
  s.kind = PatternKind::uniform;
  s.seed = 0xab1a7e5ull;
  return s;
}

sparse::BlockPattern instantiate(const MatrixSpec& spec, int vector_length) {
  MAGICUBE_CHECK(vector_length >= 1 && vector_length <= 8);
  Rng rng(spec.seed);
  const std::size_t rows =
      spec.rows * static_cast<std::size_t>(vector_length);
  switch (spec.kind) {
    case PatternKind::banded:
      return sparse::make_banded_pattern(rows, spec.cols, vector_length,
                                         spec.sparsity, 0.15, rng);
    case PatternKind::uniform:
    default:
      return sparse::make_uniform_pattern(rows, spec.cols, vector_length,
                                          spec.sparsity, rng);
  }
}

}  // namespace magicube::dlmc
