#pragma once
// Synthetic Deep Learning Matrix Collection (DLMC).
//
// The paper evaluates on 1,536 matrices from Google's DLMC dataset: for each
// sparsity in {0.5, 0.7, 0.8, 0.9, 0.95, 0.98}, 256 matrices covering the
// pruned layers of ResNet-50 and part of the Transformer layers, each
// *dilated* by replacing scalars with 1-D vectors of length V in {2, 4, 8}
// (§V). The dataset itself is a download; what the experiments consume is
// its distribution of shapes and sparsities. This module regenerates that
// population deterministically: the GEMM-ized layer shapes of ResNet-50
// bottleneck blocks and Transformer projection/FFN layers, 8 seeded
// instances each, with a mix of uniform and magnitude-pruning-like banded
// nonzero placements.

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/pattern.hpp"

namespace magicube::dlmc {

enum class PatternKind { uniform, banded };

/// One matrix of the collection (pre-dilation scalar shape).
struct MatrixSpec {
  std::string name;       // e.g. "rn50_bottleneck_3_s0.9_i4"
  std::size_t rows = 0;   // scalar rows before dilation
  std::size_t cols = 0;
  double sparsity = 0.0;
  PatternKind kind = PatternKind::uniform;
  std::uint64_t seed = 0;
};

/// The scalar layer shapes the collection draws from (rows, cols).
const std::vector<std::pair<std::size_t, std::size_t>>& base_shapes();

/// The 256-matrix slice of the collection at one sparsity level.
std::vector<MatrixSpec> collection(double sparsity, std::size_t count = 256);

/// The matrix used for the paper's Fig. 11 ablation (M=256, K=2304).
MatrixSpec ablation_matrix(double sparsity);

/// Dilates a spec into a concrete V x 1 block pattern: each scalar row
/// becomes a band of V rows (the paper's dilation), so the pattern is
/// (rows * V) x cols with round((1-sparsity) * cols) vectors per vector row.
sparse::BlockPattern instantiate(const MatrixSpec& spec, int vector_length);

/// The six sparsity levels of the evaluation.
inline const std::vector<double>& sparsity_levels() {
  static const std::vector<double> levels = {0.5, 0.7, 0.8, 0.9, 0.95, 0.98};
  return levels;
}

}  // namespace magicube::dlmc
