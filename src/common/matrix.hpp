#pragma once
// Row-major dense matrix container used for operands, references and tests.

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace magicube {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  T& operator()(std::size_t r, std::size_t c) {
    MAGICUBE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    MAGICUBE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* row(std::size_t r) { return data_.data() + r * cols_; }
  const T* row(std::size_t r) const { return data_.data() + r * cols_; }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

/// Fills a matrix with uniform integers in [lo, hi].
template <typename T>
void fill_uniform_int(Matrix<T>& m, Rng& rng, std::int64_t lo,
                      std::int64_t hi) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<T>(rng.next_in(lo, hi));
  }
}

/// Fills a matrix with N(0, stddev) values.
template <typename T>
void fill_normal(Matrix<T>& m, Rng& rng, double stddev = 1.0) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<T>(rng.next_normal() * stddev);
  }
}

}  // namespace magicube
