#pragma once
// Software IEEE 754 binary16 ("half") type.
//
// The fp16 baselines (cuBLAS-like dense GEMM, vectorSparse-like sparse
// kernels) and the Transformer dense path compute in this type so that the
// numerical behaviour of the fp16 comparison points — including rounding at
// every store, as tensor cores do for fp16 accumulate-to-fp16 epilogues —
// is faithful. Arithmetic is performed in float and rounded to half on
// conversion, which matches fp16-multiply/fp32-accumulate tensor-core math.

#include <bit>
#include <cmath>
#include <cstdint>

namespace magicube {

/// Round-to-nearest-even conversion from float to the binary16 bit pattern.
constexpr std::uint16_t float_to_half_bits(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7fffffffu;

  if (abs >= 0x7f800000u) {             // inf or NaN
    const std::uint32_t mant = abs & 0x007fffffu;
    if (mant == 0) return static_cast<std::uint16_t>(sign | 0x7c00u);
    // Preserve a quiet NaN.
    return static_cast<std::uint16_t>(sign | 0x7e00u);
  }
  if (abs >= 0x477ff000u) {             // overflows half range -> inf
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x38800000u) {              // subnormal half (or zero)
    if (abs < 0x33000001u) {            // rounds to zero
      return static_cast<std::uint16_t>(sign);
    }
    // Result = round(mant * 2^(e-126)): right-shift the 24-bit mantissa by
    // 126 - e (between 14 and 24 here), round to nearest even.
    const int shift = 126 - static_cast<int>(abs >> 23);
    const std::uint64_t mant =
        static_cast<std::uint64_t>(abs & 0x007fffffu) | 0x00800000u;
    const std::uint64_t dropped = mant & ((1ull << shift) - 1);
    const std::uint64_t halfway = 1ull << (shift - 1);
    std::uint32_t out = static_cast<std::uint32_t>(mant >> shift);
    if (dropped > halfway || (dropped == halfway && (out & 1u))) ++out;
    return static_cast<std::uint16_t>(sign | out);
  }
  // Normal case.
  const std::uint32_t exp = ((abs >> 23) - 112u) << 10;
  const std::uint32_t mant = (abs >> 13) & 0x03ffu;
  std::uint32_t out = exp | mant;
  const std::uint32_t dropped = abs & 0x1fffu;
  if (dropped > 0x1000u || (dropped == 0x1000u && (out & 1u))) ++out;
  return static_cast<std::uint16_t>(sign | out);
}

/// Conversion from the binary16 bit pattern to float (exact).
constexpr float half_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x03ffu;

  if (exp == 0) {
    if (mant == 0) return std::bit_cast<float>(sign);
    // Subnormal: value = mant * 2^-24.
    const float v = static_cast<float>(mant) * 0x1p-24f;
    return sign ? -v : v;
  }
  if (exp == 31) {
    const std::uint32_t out = sign | 0x7f800000u | (mant << 13);
    return std::bit_cast<float>(out);
  }
  const std::uint32_t out = sign | ((exp + 112u) << 23) | (mant << 13);
  return std::bit_cast<float>(out);
}

/// IEEE binary16 value type. All arithmetic promotes to float; assignment
/// and construction round to nearest-even, exactly once per store.
class half {
 public:
  constexpr half() = default;
  constexpr half(float f) : bits_(float_to_half_bits(f)) {}  // NOLINT: implicit by design
  constexpr operator float() const { return half_bits_to_float(bits_); }

  static constexpr half from_bits(std::uint16_t b) {
    half h;
    h.bits_ = b;
    return h;
  }
  constexpr std::uint16_t bits() const { return bits_; }

  half& operator+=(half o) { return *this = half(float(*this) + float(o)); }
  half& operator-=(half o) { return *this = half(float(*this) - float(o)); }
  half& operator*=(half o) { return *this = half(float(*this) * float(o)); }
  half& operator/=(half o) { return *this = half(float(*this) / float(o)); }

  friend constexpr bool operator==(half a, half b) {
    return float(a) == float(b);
  }
  friend constexpr bool operator<(half a, half b) {
    return float(a) < float(b);
  }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half) == 2, "half must be 2 bytes");

}  // namespace magicube
