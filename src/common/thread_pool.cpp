#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace magicube {

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() {
  const unsigned hw = std::thread::hardware_concurrency();
  workers_ = hw == 0 ? 2 : hw;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads = workers_ < n ? workers_ : n;
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace magicube
