#include "common/thread_pool.hpp"

#include <atomic>

#include "common/check.hpp"
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace magicube {

namespace {
// Depth of pool-owned frames on this thread: 1 while running a queued task,
// incremented again by inline nested parallel_for. Any nonzero depth routes
// parallel_for to the inline path.
thread_local int tl_pool_depth = 0;
}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::deque<std::function<void()>> queue;
  bool stopping = false;
  std::vector<std::thread> threads;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping && drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      tl_pool_depth = 1;
      task();
      tl_pool_depth = 0;
    }
  }
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl) {
  const unsigned hw = std::thread::hardware_concurrency();
  workers_ = hw == 0 ? 2 : hw;
  impl_->threads.reserve(workers_);
  for (std::size_t t = 0; t < workers_; ++t) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (auto& t : impl_->threads) t.join();
}

bool ThreadPool::on_worker_thread() { return tl_pool_depth > 0; }

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    MAGICUBE_CHECK_MSG(!impl_->stopping,
                       "task enqueued on a stopping ThreadPool — no worker "
                       "would ever run it");
    impl_->queue.push_back(std::move(task));
  }
  impl_->work_ready.notify_one();
}

namespace {

/// Shared state of one parallel_for invocation. Heap-owned (shared_ptr) so
/// helper tasks that the queue drains *after* the call returned only touch
/// live memory (they find no indices left and exit immediately).
struct ForState {
  std::size_t n;
  const std::function<void(std::size_t)>& fn;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex mutex;  // guards first_error and the completion wait
  std::condition_variable done;

  explicit ForState(std::size_t count,
                    const std::function<void(std::size_t)>& f)
      : n(count), fn(f) {}

  /// Claims and runs indices until the range is exhausted.
  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      if (!failed.load(std::memory_order_acquire)) {
        try {
          fn(i);
        } catch (...) {
          failed.store(true, std::memory_order_release);
          std::lock_guard<std::mutex> lock(mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mutex);  // pair with the wait
        done.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Inline paths: trivial ranges, single-core hosts, and nested calls from a
  // pool worker (the reentrancy guard — see the header). No depth bump here:
  // worker_loop already marks pool threads, and a trivial-range call on a
  // non-pool thread must not masquerade as one (nested calls under it may
  // still fan out, and on_worker_thread() must stay false).
  if (n == 1 || workers_ <= 1 || tl_pool_depth > 0) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>(n, fn);
  const std::size_t helpers = (workers_ < n ? workers_ : n) - 1;
  for (std::size_t t = 0; t < helpers; ++t) {
    enqueue([state] { state->drain(); });
  }
  state->drain();  // the caller participates

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] {
    return state->completed.load(std::memory_order_acquire) == n;
  });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace magicube
