#pragma once
// Shared non-cryptographic hashing primitives: 64-bit FNV-1a folding (used
// by pattern fingerprints and the operand-cache content probe) and the
// golden-ratio multiplier for index scrambling / hash finalizing.

#include <cstddef>
#include <cstdint>

namespace magicube {

inline constexpr std::uint64_t kGolden64 = 0x9e3779b97f4a7c15ull;

/// Incremental 64-bit FNV-1a over little-endian bytes of fixed-width values.
struct Fnv1a {
  std::uint64_t state = 0xcbf29ce484222325ull;

  /// Folds the low `bytes` bytes of v, least-significant first.
  void mix(std::uint64_t v, int bytes = 8) {
    for (int b = 0; b < bytes; ++b) {
      state ^= (v >> (8 * b)) & 0xffu;
      state *= 0x100000001b3ull;
    }
  }
};

}  // namespace magicube
