#pragma once
// Scalar precision descriptors for quantized operands.
//
// The paper's kernels operate on integer operands whose width is a multiple
// of 4 bits (§IV-D: "we only consider precision that the number of bits is a
// multiple of 4 or 8"). A precision pair Lx-Ry names an x-bit LHS matrix
// multiplied by a y-bit RHS matrix; L8-R8 and L4-R4 map to native tensor-core
// mma shapes, everything else is emulated algebraically.

#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace magicube {

/// Scalar element type of a quantized matrix operand.
enum class Scalar : std::uint8_t {
  u4,
  s4,
  u8,
  s8,
  s12,  // emulated: 3 x 4-bit planes (top plane signed)
  u12,
  s16,  // emulated: 2 x 8-bit planes or 4 x 4-bit planes (top plane signed)
  u16,
  f16,  // used by the fp16 baselines, never by Magicube integer kernels
};

constexpr int bits_of(Scalar s) {
  switch (s) {
    case Scalar::u4:
    case Scalar::s4:
      return 4;
    case Scalar::u8:
    case Scalar::s8:
      return 8;
    case Scalar::s12:
    case Scalar::u12:
      return 12;
    case Scalar::s16:
    case Scalar::u16:
    case Scalar::f16:
      return 16;
  }
  return 0;
}

constexpr bool is_signed(Scalar s) {
  switch (s) {
    case Scalar::s4:
    case Scalar::s8:
    case Scalar::s12:
    case Scalar::s16:
    case Scalar::f16:
      return true;
    default:
      return false;
  }
}

constexpr bool is_integer(Scalar s) { return s != Scalar::f16; }

/// Smallest / largest representable value for an integer scalar.
constexpr std::int32_t min_value(Scalar s) {
  return is_signed(s) ? -(1 << (bits_of(s) - 1)) : 0;
}
constexpr std::int32_t max_value(Scalar s) {
  return is_signed(s) ? (1 << (bits_of(s) - 1)) - 1 : (1 << bits_of(s)) - 1;
}

inline std::string to_string(Scalar s) {
  switch (s) {
    case Scalar::u4: return "u4";
    case Scalar::s4: return "s4";
    case Scalar::u8: return "u8";
    case Scalar::s8: return "s8";
    case Scalar::s12: return "s12";
    case Scalar::u12: return "u12";
    case Scalar::s16: return "s16";
    case Scalar::u16: return "u16";
    case Scalar::f16: return "f16";
  }
  return "?";
}

/// An operand-precision pair, e.g. {s16, s8} prints as "L16-R8".
struct PrecisionPair {
  Scalar lhs = Scalar::s8;
  Scalar rhs = Scalar::s8;

  friend bool operator==(const PrecisionPair&, const PrecisionPair&) = default;
};

inline std::string to_string(PrecisionPair p) {
  return "L" + std::to_string(bits_of(p.lhs)) + "-R" +
         std::to_string(bits_of(p.rhs));
}

/// True when the pair maps 1:1 onto a native tensor-core mma (no emulation).
constexpr bool is_native(PrecisionPair p) {
  const int lb = bits_of(p.lhs), rb = bits_of(p.rhs);
  return (lb == 8 && rb == 8) || (lb == 4 && rb == 4);
}

/// Named pairs used throughout the evaluation section.
namespace precision {
inline constexpr PrecisionPair L16R16{Scalar::s16, Scalar::s16};
inline constexpr PrecisionPair L16R8{Scalar::s16, Scalar::s8};
inline constexpr PrecisionPair L16R4{Scalar::s16, Scalar::s4};
inline constexpr PrecisionPair L12R4{Scalar::s12, Scalar::s4};
inline constexpr PrecisionPair L8R8{Scalar::s8, Scalar::s8};
inline constexpr PrecisionPair L8R4{Scalar::s8, Scalar::s4};
inline constexpr PrecisionPair L4R4{Scalar::s4, Scalar::s4};
}  // namespace precision

}  // namespace magicube
