#pragma once
// Persistent thread pool with a parallel_for helper.
//
// The simulator executes thread blocks of a kernel grid as independent tasks;
// this mirrors how an A100 schedules blocks over SMs and keeps the functional
// simulation fast on multi-core hosts. Determinism note: block tasks only
// write disjoint output tiles and their private counters, which are reduced
// in block order, so results and counters are independent of scheduling.

#include <cstddef>
#include <functional>

namespace magicube {

/// Global pool sized to std::thread::hardware_concurrency(). Lazily created.
class ThreadPool {
 public:
  static ThreadPool& instance();

  /// Runs fn(i) for i in [0, n), distributing chunks over the pool.
  /// Exceptions from fn propagate (first one wins) after all tasks finish.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t worker_count() const { return workers_; }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  std::size_t workers_ = 1;
};

/// Convenience free function.
inline void parallel_for(std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  ThreadPool::instance().parallel_for(n, fn);
}

}  // namespace magicube
