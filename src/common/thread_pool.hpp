#pragma once
// Persistent thread pool with a parallel_for helper and a submit/future
// async API.
//
// The simulator executes thread blocks of a kernel grid as independent tasks;
// this mirrors how an A100 schedules blocks over SMs and keeps the functional
// simulation fast on multi-core hosts. The serving engine (src/serve/)
// additionally submits whole requests as fire-and-forget tasks whose results
// come back through std::future. Determinism note: block tasks only write
// disjoint output tiles and their private counters, which are reduced in
// block order, so results and counters are independent of scheduling.
//
// Reentrancy: parallel_for called from a pool worker (a kernel running
// inside a submitted serving task) executes its range INLINE on the calling
// thread instead of fanning out again. Workers never block waiting for
// queued work that other busy workers would have to run, so
// scheduler-inside-kernel deadlocks are impossible by construction; nested
// calls trade inner-loop parallelism for the request-level parallelism the
// outer submit already provides. Blocking on a future from inside a pool
// task is NOT safe for the same reason inline execution is required — keep
// future waits on non-pool threads.

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>

namespace magicube {

/// Global pool sized to std::thread::hardware_concurrency(). Lazily created.
class ThreadPool {
 public:
  static ThreadPool& instance();
  ~ThreadPool();

  /// Runs fn(i) for i in [0, n), distributing chunks over the pool; the
  /// calling thread participates. Exceptions from fn propagate (first one
  /// wins) after all claimed indices finish. Nested calls (from a pool
  /// worker) run inline sequentially — see the reentrancy note above.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Enqueues a task for asynchronous execution and returns a future for
  /// its result. Exceptions thrown by the task surface at future::get().
  /// Throws Error once the pool is shutting down (static destruction) —
  /// a loud failure instead of a future that never becomes ready.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> out = task->get_future();
    enqueue([task] { (*task)(); });
    return out;
  }

  /// Fire-and-forget enqueue: no future, one allocation cheaper than
  /// submit(). The task must handle its own failures (it has no one to
  /// rethrow to). Same shutdown behavior as submit().
  void post(std::function<void()> task) { enqueue(std::move(task)); }

  std::size_t worker_count() const { return workers_; }

  /// True on a thread owned by the pool (used by the reentrancy guard and
  /// asserted by the regression tests).
  static bool on_worker_thread();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  void enqueue(std::function<void()> task);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t workers_ = 1;
};

/// Convenience free function.
inline void parallel_for(std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  ThreadPool::instance().parallel_for(n, fn);
}

}  // namespace magicube
