#pragma once
// Packed storage for sub-byte and multi-nibble integers.
//
// CUDA has no 4-bit scalar type: int4 operands live packed eight-per-int32
// in registers and memory, and the kernels in this repo manipulate them the
// same way. PackedBuffer owns a byte array and exposes get/set at a given
// bit width (4, 8, 12 or 16, matching common/precision.hpp); 4-bit elements
// are packed low-nibble-first within each byte exactly as the PTX mma
// fragment layout expects.

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.hpp"
#include "common/precision.hpp"

namespace magicube {

/// Sign-extend the low `bits` of `v` to int32.
constexpr std::int32_t sign_extend(std::uint32_t v, int bits) {
  const std::uint32_t m = 1u << (bits - 1);
  const std::uint32_t x = v & ((bits == 32) ? ~0u : ((1u << bits) - 1u));
  return static_cast<std::int32_t>((x ^ m) - m);
}

/// Encode an int32 value into the low `bits` two's-complement pattern.
constexpr std::uint32_t encode_twos_complement(std::int32_t v, int bits) {
  return static_cast<std::uint32_t>(v) &
         ((bits == 32) ? ~0u : ((1u << bits) - 1u));
}

/// A dynamically sized array of fixed-width integer elements packed
/// back-to-back in memory. Width 12 is stored as packed 12-bit fields
/// (one and a half bytes) — the format layer decides whether to keep
/// 12-bit operands packed or pre-decomposed into nibble planes.
class PackedBuffer {
 public:
  PackedBuffer() = default;
  PackedBuffer(std::size_t count, Scalar type)
      : type_(type), count_(count),
        bytes_((count * static_cast<std::size_t>(bits_of(type)) + 7) / 8, 0) {
    MAGICUBE_CHECK_MSG(is_integer(type), "PackedBuffer holds integers only");
  }

  Scalar type() const { return type_; }
  std::size_t size() const { return count_; }
  std::size_t byte_size() const { return bytes_.size(); }
  const std::uint8_t* data() const { return bytes_.data(); }
  std::uint8_t* data() { return bytes_.data(); }

  /// Raw (unsigned) bit pattern of element i.
  std::uint32_t get_raw(std::size_t i) const {
    MAGICUBE_DCHECK(i < count_);
    const int bits = bits_of(type_);
    const std::size_t bit_off = i * static_cast<std::size_t>(bits);
    std::uint32_t out = 0;
    for (int b = 0; b < bits; ++b) {
      const std::size_t pos = bit_off + static_cast<std::size_t>(b);
      const std::uint32_t bit = (bytes_[pos >> 3] >> (pos & 7)) & 1u;
      out |= bit << b;
    }
    return out;
  }

  void set_raw(std::size_t i, std::uint32_t raw) {
    MAGICUBE_DCHECK(i < count_);
    const int bits = bits_of(type_);
    const std::size_t bit_off = i * static_cast<std::size_t>(bits);
    for (int b = 0; b < bits; ++b) {
      const std::size_t pos = bit_off + static_cast<std::size_t>(b);
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << (pos & 7));
      if ((raw >> b) & 1u) {
        bytes_[pos >> 3] |= mask;
      } else {
        bytes_[pos >> 3] &= static_cast<std::uint8_t>(~mask);
      }
    }
  }

  /// Element i interpreted per the buffer's scalar type.
  std::int32_t get(std::size_t i) const {
    const std::uint32_t raw = get_raw(i);
    return is_signed(type_) ? sign_extend(raw, bits_of(type_))
                            : static_cast<std::int32_t>(raw);
  }

  /// Stores v (must be representable in the scalar type).
  void set(std::size_t i, std::int32_t v) {
    MAGICUBE_DCHECK(v >= min_value(type_) && v <= max_value(type_));
    set_raw(i, encode_twos_complement(v, bits_of(type_)));
  }

  friend bool operator==(const PackedBuffer& a, const PackedBuffer& b) {
    return a.type_ == b.type_ && a.count_ == b.count_ && a.bytes_ == b.bytes_;
  }

 private:
  Scalar type_ = Scalar::s8;
  std::size_t count_ = 0;
  std::vector<std::uint8_t> bytes_;
};

// ---- Nibble helpers used by the int4 register-transpose kernels ----------

/// Low nibble of a byte as unsigned [0,15].
constexpr std::uint32_t lo_nibble(std::uint8_t b) { return b & 0x0fu; }
/// High nibble of a byte as unsigned [0,15].
constexpr std::uint32_t hi_nibble(std::uint8_t b) { return (b >> 4) & 0x0fu; }

/// Packs eight 4-bit raw patterns (element 0 in the lowest nibble) into a u32,
/// mirroring how a thread's int4 mma fragment occupies one register.
constexpr std::uint32_t pack_nibbles8(const std::uint32_t (&n)[8]) {
  std::uint32_t out = 0;
  for (int i = 0; i < 8; ++i) out |= (n[i] & 0xfu) << (4 * i);
  return out;
}

/// Extracts nibble i (0 = lowest) of a u32.
constexpr std::uint32_t nibble_of(std::uint32_t word, int i) {
  return (word >> (4 * i)) & 0xfu;
}

/// Packs four bytes (element 0 lowest) into a u32 — one int8 fragment register.
constexpr std::uint32_t pack_bytes4(const std::uint32_t (&b)[4]) {
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) out |= (b[i] & 0xffu) << (8 * i);
  return out;
}

/// Extracts byte i (0 = lowest) of a u32.
constexpr std::uint32_t byte_of(std::uint32_t word, int i) {
  return (word >> (8 * i)) & 0xffu;
}

}  // namespace magicube
