#pragma once
// Lightweight runtime checking for invariants and argument validation.
//
// MAGICUBE_CHECK is always on (library correctness depends on format
// invariants that are cheap relative to kernel work); MAGICUBE_DCHECK
// compiles out in release builds and is used inside per-element hot loops.

#include <sstream>
#include <stdexcept>
#include <string>

namespace magicube {

/// Error thrown on any failed validation in the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "MAGICUBE_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace magicube

#define MAGICUBE_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond))                                                          \
      ::magicube::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define MAGICUBE_CHECK_MSG(cond, msg)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::magicube::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                       os_.str());                        \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define MAGICUBE_DCHECK(cond) ((void)0)
#else
#define MAGICUBE_DCHECK(cond) MAGICUBE_CHECK(cond)
#endif
