#pragma once
// Deterministic, seedable random number generation (splitmix64 + xoshiro256**).
//
// std::mt19937 distributions are not guaranteed to produce identical streams
// across standard library implementations; every generator in this repo
// (sparse patterns, matrix values, the synthetic task) uses this engine so
// experiments are reproducible bit-for-bit anywhere.

#include <array>
#include <cstdint>

#include "common/check.hpp"

namespace magicube {

/// splitmix64 — used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (unbiased
  /// enough for workload generation; bound must be > 0).
  std::uint64_t next_below(std::uint64_t bound) {
    MAGICUBE_DCHECK(bound > 0);
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    MAGICUBE_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform float in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  float next_float() { return static_cast<float>(next_double()); }

  /// Standard normal via Box–Muller (one value per call; simple & portable).
  double next_normal() {
    double u1 = next_double();
    while (u1 <= 1e-12) u1 = next_double();
    const double u2 = next_double();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(kTwoPi * u2);
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace magicube
