#pragma once
// Synthetic LRA-like sequence-classification task for the accuracy study
// (paper Table V).
//
// The paper trains an LRA text classifier; its accuracy table measures how
// much sparse masking and quantization degrade a trained attention model.
// We reproduce the *mechanism* with a deterministic synthetic task whose
// signal is aggregate and partially order-local (so a sparse local+global
// attention mask preserves most of it, as LRA text does): class-1 sequences
// are biased toward successor bigrams (x, x+1) and carry an elevated rate
// of a marker token, class-0 sequences are uniform. A one-layer attention
// classifier solves it well in fp32; quantization noise in Q/K/V, attention
// weights, and mask sparsity each shave accuracy — exactly the effects
// Table V quantifies.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace magicube::transformer {

struct TaskSample {
  std::vector<std::uint8_t> tokens;
  int label = 0;  // 0 or 1
};

inline constexpr int kVocab = 16;

/// Deterministic dataset of `n` samples of length `seq_len` (balanced).
std::vector<TaskSample> make_dataset(std::size_t n, std::size_t seq_len,
                                     Rng& rng);

}  // namespace magicube::transformer
