#include "transformer/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace magicube::transformer {

void softmax_rows(Matrix<float>& m, bool round_fp16) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r);
    float mx = row[0];
    for (std::size_t c = 1; c < m.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      row[c] *= inv;
      if (round_fp16) row[c] = float(half(row[c]));
    }
  }
}

void softmax_sparse_rows(sparse::Bcrs<float>& m, bool round_fp16) {
  const std::size_t v = static_cast<std::size_t>(m.vector_length);
  for (std::size_t r = 0; r < m.vector_rows(); ++r) {
    const std::uint32_t begin = m.row_ptr[r], end = m.row_ptr[r + 1];
    if (begin == end) continue;
    for (std::size_t rb = 0; rb < v; ++rb) {
      float mx = m.values[begin * v + rb];
      for (std::uint32_t i = begin; i < end; ++i) {
        mx = std::max(mx, m.values[i * v + rb]);
      }
      if (!std::isfinite(mx)) {
        // A sub-row with no finite mass (every slot -inf: a fully masked
        // row at a streaming session's causal frontier) would turn into
        // exp(-inf - -inf) = NaN below. The attention semantics of "no
        // position is visible" is zero weight everywhere, so emit zeros.
        for (std::uint32_t i = begin; i < end; ++i) m.values[i * v + rb] = 0.0f;
        continue;
      }
      float sum = 0.0f;
      for (std::uint32_t i = begin; i < end; ++i) {
        float& x = m.values[i * v + rb];
        x = std::exp(x - mx);
        sum += x;
      }
      if (!std::isfinite(sum) || sum <= 0.0f) {
        // NaN inputs (sum poisoned) have no meaningful normalization either.
        for (std::uint32_t i = begin; i < end; ++i) m.values[i * v + rb] = 0.0f;
        continue;
      }
      const float inv = 1.0f / sum;
      for (std::uint32_t i = begin; i < end; ++i) {
        float& x = m.values[i * v + rb];
        x *= inv;
        if (round_fp16) x = float(half(x));
      }
    }
  }
}

void layer_norm_rows(Matrix<float>& m, const std::vector<float>& gamma,
                     const std::vector<float>& beta, float eps) {
  MAGICUBE_CHECK(gamma.size() == m.cols() && beta.size() == m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.row(r);
    float mean = 0.0f;
    for (std::size_t c = 0; c < m.cols(); ++c) mean += row[c];
    mean /= static_cast<float>(m.cols());
    float var = 0.0f;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const float d = row[c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(m.cols());
    const float inv = 1.0f / std::sqrt(var + eps);
    for (std::size_t c = 0; c < m.cols(); ++c) {
      row[c] = (row[c] - mean) * inv * gamma[c] + beta[c];
    }
  }
}

void gelu(Matrix<float>& m) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  for (std::size_t i = 0; i < m.size(); ++i) {
    const float x = m.data()[i];
    m.data()[i] =
        0.5f * x * (1.0f + std::tanh(kC * (x + 0.044715f * x * x * x)));
  }
}

Matrix<float> matmul(const Matrix<float>& a, const Matrix<float>& b) {
  MAGICUBE_CHECK(a.cols() == b.rows());
  Matrix<float> c(a.rows(), b.cols(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float av = a(i, k);
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      const float* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix<float> matmul_transposed_b(const Matrix<float>& a,
                                  const Matrix<float>& b) {
  MAGICUBE_CHECK(a.cols() == b.cols());
  Matrix<float> c(a.rows(), b.rows(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      float acc = 0.0f;
      const float* arow = a.row(i);
      const float* brow = b.row(j);
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      c(i, j) = acc;
    }
  }
  return c;
}

simt::KernelRun elementwise_kernel(std::uint64_t elems, double flops_per_elem,
                                   double bytes_per_elem) {
  simt::KernelRun run;
  run.launch.grid_blocks =
      std::max<std::uint64_t>(1, elems / (256 * 8));  // 256 threads x 8 elems
  run.launch.warps_per_block = 8;
  auto& c = run.counters;
  c.fp32_ops = static_cast<std::uint64_t>(elems * flops_per_elem);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(static_cast<double>(elems) * bytes_per_elem);
  c.gmem_load_sectors = bytes / 2 / 32 + 1;
  c.gmem_load_requests = bytes / 2 / 128 + 1;
  c.gmem_store_sectors = bytes / 2 / 32 + 1;
  c.gmem_store_requests = bytes / 2 / 128 + 1;
  c.dram_bytes = 0;  // attention working sets stay in L2 between kernels
  return run;
}

simt::KernelRun softmax_kernel(std::uint64_t elems, int bytes_per_value) {
  // Two read passes (max, exp+sum) and one write, ~5 flops per element.
  simt::KernelRun run = elementwise_kernel(
      elems, 5.0, 2.0 * bytes_per_value);
  run.counters.gmem_load_sectors += elems * bytes_per_value / 32 + 1;
  run.counters.gmem_load_requests += elems * bytes_per_value / 128 + 1;
  return run;
}

simt::KernelRun scale_batched(simt::KernelRun run, std::uint64_t factor) {
  run.launch.grid_blocks *= factor;
  run.pipeline.total_steps *= factor;
  auto& c = run.counters;
  for (auto* f :
       {&c.mma_int8, &c.mma_int4, &c.mma_fp16, &c.smem_load_requests,
        &c.smem_load_transactions, &c.smem_store_requests,
        &c.smem_store_transactions, &c.gmem_load_requests,
        &c.gmem_load_sectors, &c.gmem_store_requests, &c.gmem_store_sectors,
        &c.dram_bytes, &c.alu_ops, &c.shfl_ops, &c.fp32_ops,
        &c.syncthreads}) {
    *f *= factor;
  }
  return run;
}

}  // namespace magicube::transformer
