#pragma once
// Quantized sparse self-attention (paper Fig. 16).
//
// One attention head computes
//     Attention(Q, K, V) = softmax(QK^T ⊙ M / sqrt(dk)) V
// with a 1-D-block sparse mask M. Kernel schedule per scheme:
//
//   dense fp16       : dense GEMM (scores) -> mask -> softmax -> dense GEMM
//   vectorSparse fp16: fp16 SDDMM -> sparse softmax -> fp16 SpMM
//   Magicube xb-yb   : quantize QKV to y bits -> int SDDMM (+fused dequant)
//                      -> fp16 sparse softmax (+fused x-bit quantize)
//                      -> int SpMM Lx-Ry (+fused dequant)
//
// The functional path is used by the accuracy study (Table V): it runs the
// *actual* Magicube integer kernels on quantized operands, so quantization
// noise and sparsity both act exactly as they would on the device.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "simt/cost_model.hpp"
#include "sparse/pattern.hpp"

namespace magicube::serve {
class OperandCache;
}  // namespace magicube::serve

namespace magicube::transformer {

enum class AttentionScheme {
  dense_fp16,          // PyTorch/cuDNN comparison point
  vector_sparse_fp16,  // Chen et al. fp16 kernels
  magicube_16b_8b,     // softmax out 16-bit, Q/K/V 8-bit
  magicube_8b_8b,
  magicube_8b_4b,      // softmax out 8-bit, Q/K/V 4-bit
  magicube_4b_4b,
};

const char* to_string(AttentionScheme s);
bool is_magicube(AttentionScheme s);
/// Bits of the quantized softmax output (x) and of Q/K/V (y).
int softmax_bits(AttentionScheme s);
int qkv_bits(AttentionScheme s);

/// Cross-call execution-plan context for the quantized attention schedule.
///
/// The Magicube schemes launch one SDDMM and one SpMM per call on the same
/// mask; without a context both plans are rebuilt on every call — per token
/// in a serving loop, per sample in an evaluation sweep. A context pins the
/// mask behind a shared_ptr (so the OperandCache's per-live-pattern
/// fingerprint memo applies) and caches the execution plans in a
/// serve::OperandCache: plans build once per layer and replay thereafter.
/// The counters expose exactly that — plan_builds stays at the number of
/// distinct (op, precision, shape) plans the traffic touches while
/// plan_replays grows with every further call.
///
/// Operand preparations route through the same cache: the four prepared
/// operands of the schedule (SDDMM Q/K^T, SpMM attention-weights/V) are
/// keyed by a content probe of their integer values, so repeated calls
/// over unchanged activations (evaluation sweeps re-scoring one sample,
/// encoder K/V reused across decode steps) skip the O(M·K) re-prepare.
/// operand_preps counts cache misses (preparations actually run),
/// operand_hits the calls served from cache.
///
/// The cache may be shared across layers/contexts (plans are keyed by
/// pattern fingerprint x config); the context itself is not thread-safe.
struct AttentionPlanContext {
  AttentionPlanContext(std::shared_ptr<serve::OperandCache> cache,
                       const sparse::BlockPattern& mask);

  std::shared_ptr<serve::OperandCache> cache;
  std::shared_ptr<const sparse::BlockPattern> mask;
  std::uint64_t plan_builds = 0;    // cache misses: plans actually built
  std::uint64_t plan_replays = 0;   // cache hits: plans served and replayed
  std::uint64_t operand_preps = 0;  // cache misses: operands prepared
  std::uint64_t operand_hits = 0;   // cache hits: preparations skipped
};

/// Functional single-head attention under `scheme`; Q, K, V are L x dk
/// fp32 activations; the mask pattern is L x L (ignored for dense_fp16,
/// where masked positions simply score -inf... the dense scheme applies the
/// mask too, matching the paper's model equivalence across schemes).
/// When `run_out` is non-null, the kernel runs of the schedule are appended
/// (one entry per launched kernel). When `plans` is non-null (and the
/// scheme is a Magicube one), the SDDMM/SpMM execution plans are served
/// from the context instead of being rebuilt per call; the mask must be
/// the context's mask.
Matrix<float> attention_forward(const Matrix<float>& q,
                                const Matrix<float>& k,
                                const Matrix<float>& v,
                                const sparse::BlockPattern& mask,
                                AttentionScheme scheme,
                                std::vector<simt::KernelRun>* run_out = nullptr,
                                AttentionPlanContext* plans = nullptr);

}  // namespace magicube::transformer
