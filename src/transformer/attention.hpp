#pragma once
// Quantized sparse self-attention (paper Fig. 16).
//
// One attention head computes
//     Attention(Q, K, V) = softmax(QK^T ⊙ M / sqrt(dk)) V
// with a 1-D-block sparse mask M. Kernel schedule per scheme:
//
//   dense fp16       : dense GEMM (scores) -> mask -> softmax -> dense GEMM
//   vectorSparse fp16: fp16 SDDMM -> sparse softmax -> fp16 SpMM
//   Magicube xb-yb   : quantize QKV to y bits -> int SDDMM (+fused dequant)
//                      -> fp16 sparse softmax (+fused x-bit quantize)
//                      -> int SpMM Lx-Ry (+fused dequant)
//
// The functional path is used by the accuracy study (Table V): it runs the
// *actual* Magicube integer kernels on quantized operands, so quantization
// noise and sparsity both act exactly as they would on the device.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "core/plan.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "quant/quantizer.hpp"
#include "simt/cost_model.hpp"
#include "sparse/bcrs.hpp"
#include "sparse/pattern.hpp"

namespace magicube::serve {
class OperandCache;
}  // namespace magicube::serve

namespace magicube::transformer {

enum class AttentionScheme {
  dense_fp16,          // PyTorch/cuDNN comparison point
  vector_sparse_fp16,  // Chen et al. fp16 kernels
  magicube_16b_8b,     // softmax out 16-bit, Q/K/V 8-bit
  magicube_8b_8b,
  magicube_8b_4b,      // softmax out 8-bit, Q/K/V 4-bit
  magicube_4b_4b,
};

const char* to_string(AttentionScheme s);
bool is_magicube(AttentionScheme s);
/// Bits of the quantized softmax output (x) and of Q/K/V (y).
int softmax_bits(AttentionScheme s);
int qkv_bits(AttentionScheme s);

/// Cross-call execution-plan context for the quantized attention schedule.
///
/// The Magicube schemes launch one SDDMM and one SpMM per call on the same
/// mask; without a context both plans are rebuilt on every call — per token
/// in a serving loop, per sample in an evaluation sweep. A context pins the
/// mask behind a shared_ptr (so the OperandCache's per-live-pattern
/// fingerprint memo applies) and caches the execution plans in a
/// serve::OperandCache: plans build once per layer and replay thereafter.
/// The counters expose exactly that — plan_builds stays at the number of
/// distinct (op, precision, shape) plans the traffic touches while
/// plan_replays grows with every further call.
///
/// Operand preparations route through the same cache: the four prepared
/// operands of the schedule (SDDMM Q/K^T, SpMM attention-weights/V) are
/// keyed by a content probe of their integer values, so repeated calls
/// over unchanged activations (evaluation sweeps re-scoring one sample,
/// encoder K/V reused across decode steps) skip the O(M·K) re-prepare.
/// operand_preps counts cache misses (preparations actually run),
/// operand_hits the calls served from cache.
///
/// The cache may be shared across layers/contexts (plans are keyed by
/// pattern fingerprint x config); the context itself is not thread-safe.
struct AttentionPlanContext {
  AttentionPlanContext(std::shared_ptr<serve::OperandCache> cache,
                       const sparse::BlockPattern& mask);

  std::shared_ptr<serve::OperandCache> cache;
  std::shared_ptr<const sparse::BlockPattern> mask;
  std::uint64_t plan_builds = 0;    // cache misses: plans actually built
  std::uint64_t plan_replays = 0;   // cache hits: plans served and replayed
  std::uint64_t operand_preps = 0;  // cache misses: operands prepared
  std::uint64_t operand_hits = 0;   // cache hits: preparations skipped
};

/// Engine-owned arena of one staged Magicube attention evaluation.
///
/// Every intermediate of the SDDMM -> softmax+quantize -> SpMM schedule
/// lives here: the quantized Q/K/V images, the sampled score matrix, the
/// quantized attention weights, and the per-stage execution plans on one
/// context. Nothing in the arena is ever inserted into an OperandCache and
/// nothing is copied out between stages — the serving engine's fused
/// GraphRequest executes the three stages against one arena and drops it
/// with the response, while attention_forward drives the same stage bodies
/// for the one-shot path.
struct AttentionArena {
  AttentionScheme scheme = AttentionScheme::magicube_8b_8b;
  /// The L x L mask; shared so plan identity (the cache's per-live-pattern
  /// fingerprint memo) applies across stages.
  std::shared_ptr<const sparse::BlockPattern> mask;
  std::size_t l = 0;
  std::size_t dk = 0;
  float scale = 0.0f;  // 1/sqrt(dk)
  quant::QuantParams pq, pk, pv;  // Q/K/V quantization (y bits)
  quant::QuantParams pa;          // attention-weight quantization (x bits)
  Matrix<std::int32_t> qi, ki, vi;  // quantized activations
  Matrix<std::int32_t> kt;          // K^T image (dk x L)
  sparse::Bcrs<float> scores;       // SDDMM output; softmaxed in place
  Matrix<std::int32_t> attn_dense;  // quantized attention weights (SpMM LHS)
  core::SddmmResult sddmm;
  core::SpmmResult spmm;
  core::StagePlanHandles stage_plans;  // per-stage plans on one context
};

/// Cache interaction of one executed stage (mirrors the serving engines'
/// per-request hit flags).
struct AttentionStageFlags {
  bool lhs_cache_hit = false;
  bool rhs_cache_hit = false;
  bool plan_cache_hit = false;
};

/// Stage 1 — quantize Q/K/V and run the sampled QK^T SDDMM into the arena.
/// The arena's `scheme` and `mask` must be set by the caller. `operands`
/// non-null routes the quantized Q and K^T images through the cache
/// (probe-keyed); `plans` non-null serves the SDDMM execution plan from the
/// cache and pins it on `arena.stage_plans.sddmm`; both null reproduces the
/// plain one-shot path bit for bit.
void attention_stage_sddmm(AttentionArena& arena, const Matrix<float>& q,
                           const Matrix<float>& k, const Matrix<float>& v,
                           serve::OperandCache* operands,
                           serve::OperandCache* plans,
                           AttentionStageFlags* flags = nullptr);

/// Stage 2 — dequantize the sampled scores, fp16 sparse softmax with fused
/// x-bit quantization, and scatter the quantized attention weights to the
/// dense SpMM LHS image. Pure arena-to-arena: no cache interaction.
void attention_stage_softmax_quantize(AttentionArena& arena);

/// Stage 3 — attention-weights x V SpMM. `cache_lhs` controls whether the
/// per-call attention-weight operand enters the cache: the legacy plan
/// context does (its hit counters bill the re-prepare), the fused graph
/// path never does — the intermediate is prepared straight into the arena
/// and dropped with it.
void attention_stage_spmm(AttentionArena& arena,
                          serve::OperandCache* operands,
                          serve::OperandCache* plans, bool cache_lhs,
                          AttentionStageFlags* flags = nullptr);

/// Dequantization epilogue: the fp32 L x dk output of the staged schedule.
Matrix<float> attention_stage_output(const AttentionArena& arena);

/// Functional single-head attention under `scheme`; Q, K, V are L x dk
/// fp32 activations; the mask pattern is L x L (ignored for dense_fp16,
/// where masked positions simply score -inf... the dense scheme applies the
/// mask too, matching the paper's model equivalence across schemes).
/// When `run_out` is non-null, the kernel runs of the schedule are appended
/// (one entry per launched kernel). When `plans` is non-null (and the
/// scheme is a Magicube one), the SDDMM/SpMM execution plans are served
/// from the context instead of being rebuilt per call; the mask must be
/// the context's mask.
Matrix<float> attention_forward(const Matrix<float>& q,
                                const Matrix<float>& k,
                                const Matrix<float>& v,
                                const sparse::BlockPattern& mask,
                                AttentionScheme scheme,
                                std::vector<simt::KernelRun>* run_out = nullptr,
                                AttentionPlanContext* plans = nullptr);

}  // namespace magicube::transformer
