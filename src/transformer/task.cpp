#include "transformer/task.hpp"

namespace magicube::transformer {

std::vector<TaskSample> make_dataset(std::size_t n, std::size_t seq_len,
                                     Rng& rng) {
  std::vector<TaskSample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TaskSample s;
    s.label = static_cast<int>(i % 2);
    s.tokens.resize(seq_len);
    if (s.label == 1) {
      // Successor-bigram bias + elevated marker-token rate.
      std::uint8_t prev = static_cast<std::uint8_t>(rng.next_below(kVocab));
      for (std::size_t t = 0; t < seq_len; ++t) {
        std::uint8_t tok;
        const double u = rng.next_double();
        if (u < 0.35) {
          tok = static_cast<std::uint8_t>((prev + 1) % kVocab);
        } else if (u < 0.45) {
          tok = 7;  // marker
        } else {
          tok = static_cast<std::uint8_t>(rng.next_below(kVocab));
        }
        s.tokens[t] = tok;
        prev = tok;
      }
    } else {
      for (std::size_t t = 0; t < seq_len; ++t) {
        s.tokens[t] = static_cast<std::uint8_t>(rng.next_below(kVocab));
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace magicube::transformer
