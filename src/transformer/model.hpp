#pragma once
// A small attention classifier with manual backpropagation, used to obtain
// the trained weights the Table V accuracy study evaluates under every
// sparsity/quantization scheme.
//
// Architecture: token + positional embeddings -> single-head self-attention
// (optionally masked) -> output projection -> mean pool -> linear head.
// Training runs in fp32 with the mask as additive -inf bias (the standard
// masked-softmax formulation); *evaluation* routes the trained Q/K/V
// activations through `attention_forward`, i.e. through the actual
// simulated kernels (dense fp16, vectorSparse fp16, or Magicube's quantized
// integer SDDMM/softmax/SpMM pipeline of Fig. 16).

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "sparse/pattern.hpp"
#include "transformer/attention.hpp"
#include "transformer/task.hpp"

namespace magicube::transformer {

struct TinyTransformer {
  std::size_t vocab = kVocab;
  std::size_t d = 64;   // model width == head dim (single head)
  std::size_t seq_len = 128;
  std::size_t classes = 2;

  Matrix<float> emb;   // vocab x d
  Matrix<float> pos;   // seq_len x d
  Matrix<float> wq, wk, wv, wo;  // d x d
  Matrix<float> wc;    // d x classes
  std::vector<float> bc;

  void init(Rng& rng);

  /// Token + positional embedding of one sample (seq_len x d).
  Matrix<float> embed(const TaskSample& s) const;

  /// fp32 forward logits with an optional mask (nullptr = dense).
  std::vector<float> forward_fp32(const TaskSample& s,
                                  const sparse::BlockPattern* mask) const;

  /// Forward logits evaluating attention through the simulated kernels.
  /// `plans` (optional) serves the attention execution plans from a
  /// cross-call context instead of re-planning per sample.
  std::vector<float> forward_scheme(const TaskSample& s,
                                    const sparse::BlockPattern& mask,
                                    AttentionScheme scheme,
                                    AttentionPlanContext* plans = nullptr) const;
};

struct TrainStats {
  double final_loss = 0.0;
  double train_accuracy = 0.0;
};

/// Adam training on the fp32 path (mask optional). Deterministic.
TrainStats train(TinyTransformer& model, const std::vector<TaskSample>& data,
                 const sparse::BlockPattern* mask, int epochs,
                 double learning_rate, Rng& rng);

/// Accuracy of the model on `data` with attention executed under `scheme`.
/// The attention layer's execution plans are built once and replayed for
/// every sample (an AttentionPlanContext spans the sweep internally).
double evaluate(const TinyTransformer& model,
                const std::vector<TaskSample>& data,
                const sparse::BlockPattern& mask, AttentionScheme scheme);

/// fp32 reference accuracy (the paper's "PyTorch fp32" column).
double evaluate_fp32(const TinyTransformer& model,
                     const std::vector<TaskSample>& data,
                     const sparse::BlockPattern* mask);

}  // namespace magicube::transformer
