#pragma once
// End-to-end sparse-Transformer inference latency and memory model
// (paper Fig. 17 and §V-C).
//
// The encoder matches the paper's LRA configuration: `layers` identical
// blocks of (LayerNorm, multi-head attention with a 1-D-block sparse mask,
// residual, LayerNorm, 4x GELU MLP, residual), head dimension 64. Latency
// is the sum of kernel-cost estimates over the whole schedule; attention
// kernels batch over (batch x heads) instances in one launch, exactly as
// the batched kernels on device do.
//
// Memory model (the OOM cells): the fp16 dense path materializes the
// attention score matrices. With a broadcast fp32 mask, PyTorch's type
// promotion upgrades the masked-score chain to fp32, so the live set is
//   scores_fp16 + softmax_out_fp16 + mask_fp32 + 3 x scores_fp32
// per layer step, which crosses 40 GB exactly for batch 8 at sequence
// length 8192 — reproducing the paper's OOM pattern. Sparse schemes only
// materialize nnz-sized score buffers and never OOM at these sizes.

#include <cstdint>
#include <string>
#include <vector>

#include "simt/device_spec.hpp"
#include "transformer/attention.hpp"

namespace magicube::transformer {

struct TransformerConfig {
  int layers = 4;
  int heads = 4;
  int head_dim = 64;
  std::size_t seq_len = 4096;
  std::size_t batch = 2;
  double sparsity = 0.9;

  std::size_t d_model() const {
    return static_cast<std::size_t>(heads) *
           static_cast<std::size_t>(head_dim);
  }
};

struct E2eResult {
  bool oom = false;
  double seconds = 0.0;
  std::uint64_t peak_bytes = 0;
  // Per-category latency (projections / attention / softmax / mlp / other).
  std::vector<std::pair<std::string, double>> breakdown;
};

/// Peak device-memory estimate for the configuration under `scheme`.
std::uint64_t peak_memory_bytes(const TransformerConfig& cfg,
                                AttentionScheme scheme);

/// Full inference latency (or OOM) for the configuration under `scheme`.
/// The attention mask pattern is shared across calls by the caller for
/// efficiency; it must be seq_len x seq_len with V=8 at cfg.sparsity.
///
/// When `plans` is non-null the Magicube attention kernels are costed from
/// cached *execution plans* (the plan's analytic KernelRun — identical to
/// the per-call estimate by the estimate-equals-execute invariant) instead
/// of being re-derived per layer per call: plans build once per
/// (mask, precision, op) and every further layer/batch/head sweep replays
/// them. The context's counters expose builds vs replays.
E2eResult transformer_inference(const TransformerConfig& cfg,
                                AttentionScheme scheme,
                                const sparse::BlockPattern& mask,
                                AttentionPlanContext* plans = nullptr);

}  // namespace magicube::transformer
