#include "transformer/model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "serve/operand_cache.hpp"
#include "transformer/ops.hpp"

namespace magicube::transformer {

namespace {

void xavier_init(Matrix<float>& m, Rng& rng) {
  const double scale =
      std::sqrt(2.0 / static_cast<double>(m.rows() + m.cols()));
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.next_normal() * scale);
  }
}

/// Dense mask bias from a pattern (0 where visible, -1e9 elsewhere).
Matrix<float> mask_bias(const sparse::BlockPattern& mask) {
  const auto dense = sparse::pattern_to_dense_mask(mask);
  Matrix<float> bias(mask.rows, mask.cols, -1e9f);
  for (std::size_t i = 0; i < bias.size(); ++i) {
    if (dense.data()[i]) bias.data()[i] = 0.0f;
  }
  return bias;
}

struct ForwardCache {
  Matrix<float> x, q, k, v, a, h, o;
  std::vector<float> pooled, logits, probs;
};

void forward_cached(const TinyTransformer& m, const TaskSample& s,
                    const Matrix<float>* bias, ForwardCache& c) {
  c.x = m.embed(s);
  c.q = matmul(c.x, m.wq);
  c.k = matmul(c.x, m.wk);
  c.v = matmul(c.x, m.wv);
  c.a = matmul_transposed_b(c.q, c.k);
  const float scale = 1.0f / std::sqrt(static_cast<float>(m.d));
  for (std::size_t i = 0; i < c.a.size(); ++i) c.a.data()[i] *= scale;
  if (bias) {
    for (std::size_t i = 0; i < c.a.size(); ++i) {
      c.a.data()[i] += bias->data()[i];
    }
  }
  softmax_rows(c.a, /*round_fp16=*/false);
  c.h = matmul(c.a, c.v);
  c.o = matmul(c.h, m.wo);
  c.pooled.assign(m.d, 0.0f);
  for (std::size_t i = 0; i < m.seq_len; ++i) {
    for (std::size_t j = 0; j < m.d; ++j) c.pooled[j] += c.o(i, j);
  }
  const float inv = 1.0f / static_cast<float>(m.seq_len);
  for (auto& p : c.pooled) p *= inv;
  c.logits.assign(m.classes, 0.0f);
  for (std::size_t cc = 0; cc < m.classes; ++cc) {
    float acc = m.bc[cc];
    for (std::size_t j = 0; j < m.d; ++j) acc += c.pooled[j] * m.wc(j, cc);
    c.logits[cc] = acc;
  }
  const float mx = *std::max_element(c.logits.begin(), c.logits.end());
  float sum = 0.0f;
  c.probs.assign(m.classes, 0.0f);
  for (std::size_t cc = 0; cc < m.classes; ++cc) {
    c.probs[cc] = std::exp(c.logits[cc] - mx);
    sum += c.probs[cc];
  }
  for (auto& p : c.probs) p /= sum;
}

struct Grads {
  Matrix<float> emb, pos, wq, wk, wv, wo, wc;
  std::vector<float> bc;

  explicit Grads(const TinyTransformer& m)
      : emb(m.vocab, m.d, 0.0f), pos(m.seq_len, m.d, 0.0f),
        wq(m.d, m.d, 0.0f), wk(m.d, m.d, 0.0f), wv(m.d, m.d, 0.0f),
        wo(m.d, m.d, 0.0f), wc(m.d, m.classes, 0.0f), bc(m.classes, 0.0f) {}
};

// dB += A^T * C  (A: n x d1, C: n x d2, B: d1 x d2)
void accumulate_at_c(const Matrix<float>& a, const Matrix<float>& c,
                     Matrix<float>& b) {
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t p = 0; p < a.cols(); ++p) {
      const float av = a(i, p);
      if (av == 0.0f) continue;
      for (std::size_t q = 0; q < c.cols(); ++q) {
        b(p, q) += av * c(i, q);
      }
    }
  }
}

void backward(const TinyTransformer& m, const TaskSample& s,
              const ForwardCache& c, Grads& g) {
  const std::size_t L = m.seq_len, d = m.d;
  // dlogits = probs - onehot(label)
  std::vector<float> dlogits = c.probs;
  dlogits[static_cast<std::size_t>(s.label)] -= 1.0f;
  // Classifier head.
  std::vector<float> dpooled(d, 0.0f);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t cc = 0; cc < m.classes; ++cc) {
      g.wc(j, cc) += c.pooled[j] * dlogits[cc];
      dpooled[j] += m.wc(j, cc) * dlogits[cc];
    }
  }
  for (std::size_t cc = 0; cc < m.classes; ++cc) g.bc[cc] += dlogits[cc];
  // Mean pool.
  Matrix<float> d_o(L, d);
  const float inv = 1.0f / static_cast<float>(L);
  for (std::size_t i = 0; i < L; ++i) {
    for (std::size_t j = 0; j < d; ++j) d_o(i, j) = dpooled[j] * inv;
  }
  // O = H Wo.
  accumulate_at_c(c.h, d_o, g.wo);
  Matrix<float> dh(L, d, 0.0f);
  for (std::size_t i = 0; i < L; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const float dv = d_o(i, j);
      for (std::size_t p = 0; p < d; ++p) dh(i, p) += dv * m.wo(p, j);
    }
  }
  // H = A V.
  Matrix<float> da = matmul_transposed_b(dh, c.v);  // L x L
  Matrix<float> dvm(L, d, 0.0f);
  for (std::size_t i = 0; i < L; ++i) {
    for (std::size_t j = 0; j < L; ++j) {
      const float av = c.a(i, j);
      if (av == 0.0f) continue;
      for (std::size_t p = 0; p < d; ++p) dvm(j, p) += av * dh(i, p);
    }
  }
  // Softmax backward: dS = A ⊙ (dA - rowdot(dA, A)).
  Matrix<float> ds(L, L);
  for (std::size_t i = 0; i < L; ++i) {
    float dot = 0.0f;
    for (std::size_t j = 0; j < L; ++j) dot += da(i, j) * c.a(i, j);
    for (std::size_t j = 0; j < L; ++j) {
      ds(i, j) = c.a(i, j) * (da(i, j) - dot);
    }
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  // S = scale * Q K^T.
  Matrix<float> dq(L, d, 0.0f), dk(L, d, 0.0f);
  for (std::size_t i = 0; i < L; ++i) {
    for (std::size_t j = 0; j < L; ++j) {
      const float dsv = ds(i, j) * scale;
      if (dsv == 0.0f) continue;
      for (std::size_t p = 0; p < d; ++p) {
        dq(i, p) += dsv * c.k(j, p);
        dk(j, p) += dsv * c.q(i, p);
      }
    }
  }
  // Projections.
  accumulate_at_c(c.x, dq, g.wq);
  accumulate_at_c(c.x, dk, g.wk);
  accumulate_at_c(c.x, dvm, g.wv);
  Matrix<float> dx(L, d, 0.0f);
  auto add_proj_grad = [&](const Matrix<float>& dout, const Matrix<float>& w) {
    for (std::size_t i = 0; i < L; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        const float dv = dout(i, j);
        if (dv == 0.0f) continue;
        for (std::size_t p = 0; p < d; ++p) dx(i, p) += dv * w(p, j);
      }
    }
  };
  add_proj_grad(dq, m.wq);
  add_proj_grad(dk, m.wk);
  add_proj_grad(dvm, m.wv);
  // Embeddings.
  for (std::size_t i = 0; i < L; ++i) {
    const std::size_t tok = s.tokens[i];
    for (std::size_t j = 0; j < d; ++j) {
      g.emb(tok, j) += dx(i, j);
      g.pos(i, j) += dx(i, j);
    }
  }
}

/// Minimal Adam state over one parameter matrix.
struct Adam {
  Matrix<float> m1, m2;
  explicit Adam(std::size_t r, std::size_t c)
      : m1(r, c, 0.0f), m2(r, c, 0.0f) {}
  void step(Matrix<float>& w, const Matrix<float>& g, double lr, int t) {
    constexpr double b1 = 0.9, b2 = 0.999, eps = 1e-8;
    const double c1 = 1.0 - std::pow(b1, t), c2 = 1.0 - std::pow(b2, t);
    for (std::size_t i = 0; i < w.size(); ++i) {
      m1.data()[i] = static_cast<float>(b1 * m1.data()[i] +
                                        (1 - b1) * g.data()[i]);
      m2.data()[i] = static_cast<float>(
          b2 * m2.data()[i] + (1 - b2) * g.data()[i] * g.data()[i]);
      const double mh = m1.data()[i] / c1, vh = m2.data()[i] / c2;
      w.data()[i] -= static_cast<float>(lr * mh / (std::sqrt(vh) + eps));
    }
  }
};

}  // namespace

void TinyTransformer::init(Rng& rng) {
  emb = Matrix<float>(vocab, d);
  pos = Matrix<float>(seq_len, d);
  wq = Matrix<float>(d, d);
  wk = Matrix<float>(d, d);
  wv = Matrix<float>(d, d);
  wo = Matrix<float>(d, d);
  wc = Matrix<float>(d, classes);
  bc.assign(classes, 0.0f);
  for (auto* m : {&emb, &pos, &wq, &wk, &wv, &wo, &wc}) xavier_init(*m, rng);
}

Matrix<float> TinyTransformer::embed(const TaskSample& s) const {
  MAGICUBE_CHECK(s.tokens.size() == seq_len);
  Matrix<float> x(seq_len, d);
  for (std::size_t i = 0; i < seq_len; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      x(i, j) = emb(s.tokens[i], j) + pos(i, j);
    }
  }
  return x;
}

std::vector<float> TinyTransformer::forward_fp32(
    const TaskSample& s, const sparse::BlockPattern* mask) const {
  ForwardCache c;
  if (mask) {
    const Matrix<float> bias = mask_bias(*mask);
    forward_cached(*this, s, &bias, c);
  } else {
    forward_cached(*this, s, nullptr, c);
  }
  return c.logits;
}

std::vector<float> TinyTransformer::forward_scheme(
    const TaskSample& s, const sparse::BlockPattern& mask,
    AttentionScheme scheme, AttentionPlanContext* plans) const {
  const Matrix<float> x = embed(s);
  const Matrix<float> q = matmul(x, wq);
  const Matrix<float> k = matmul(x, wk);
  const Matrix<float> v = matmul(x, wv);
  const Matrix<float> h =
      attention_forward(q, k, v, mask, scheme, nullptr, plans);
  const Matrix<float> o = matmul(h, wo);
  std::vector<float> pooled(d, 0.0f);
  for (std::size_t i = 0; i < seq_len; ++i) {
    for (std::size_t j = 0; j < d; ++j) pooled[j] += o(i, j);
  }
  const float inv = 1.0f / static_cast<float>(seq_len);
  std::vector<float> logits(classes, 0.0f);
  for (std::size_t cc = 0; cc < classes; ++cc) {
    float acc = bc[cc];
    for (std::size_t j = 0; j < d; ++j) acc += pooled[j] * inv * wc(j, cc);
    logits[cc] = acc;
  }
  return logits;
}

TrainStats train(TinyTransformer& model, const std::vector<TaskSample>& data,
                 const sparse::BlockPattern* mask, int epochs,
                 double learning_rate, Rng& rng) {
  (void)rng;
  Matrix<float> bias;
  if (mask) bias = mask_bias(*mask);
  Adam a_emb(model.vocab, model.d), a_pos(model.seq_len, model.d),
      a_wq(model.d, model.d), a_wk(model.d, model.d),
      a_wv(model.d, model.d), a_wo(model.d, model.d),
      a_wc(model.d, model.classes);
  std::vector<float> bc_m1(model.classes, 0.0f), bc_m2(model.classes, 0.0f);

  constexpr std::size_t kBatch = 8;
  int t = 0;
  TrainStats stats;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    double loss_sum = 0.0;
    std::size_t correct = 0;
    for (std::size_t base = 0; base + kBatch <= data.size(); base += kBatch) {
      Grads g(model);
      for (std::size_t b = 0; b < kBatch; ++b) {
        const TaskSample& s = data[base + b];
        ForwardCache c;
        forward_cached(model, s, mask ? &bias : nullptr, c);
        loss_sum += -std::log(std::max(
            1e-12f, c.probs[static_cast<std::size_t>(s.label)]));
        const int pred = c.probs[1] > c.probs[0] ? 1 : 0;
        correct += pred == s.label;
        backward(model, s, c, g);
      }
      const float inv = 1.0f / static_cast<float>(kBatch);
      for (auto* gm : {&g.emb, &g.pos, &g.wq, &g.wk, &g.wv, &g.wo, &g.wc}) {
        for (std::size_t i = 0; i < gm->size(); ++i) gm->data()[i] *= inv;
      }
      ++t;
      a_emb.step(model.emb, g.emb, learning_rate, t);
      a_pos.step(model.pos, g.pos, learning_rate, t);
      a_wq.step(model.wq, g.wq, learning_rate, t);
      a_wk.step(model.wk, g.wk, learning_rate, t);
      a_wv.step(model.wv, g.wv, learning_rate, t);
      a_wo.step(model.wo, g.wo, learning_rate, t);
      a_wc.step(model.wc, g.wc, learning_rate, t);
      for (std::size_t cc = 0; cc < model.classes; ++cc) {
        constexpr double b1 = 0.9, b2 = 0.999;
        const double gb = g.bc[cc] * inv;
        bc_m1[cc] = static_cast<float>(b1 * bc_m1[cc] + (1 - b1) * gb);
        bc_m2[cc] = static_cast<float>(b2 * bc_m2[cc] + (1 - b2) * gb * gb);
        const double mh = bc_m1[cc] / (1.0 - std::pow(b1, t));
        const double vh = bc_m2[cc] / (1.0 - std::pow(b2, t));
        model.bc[cc] -= static_cast<float>(learning_rate * mh /
                                           (std::sqrt(vh) + 1e-8));
      }
    }
    const std::size_t steps = data.size() / kBatch * kBatch;
    stats.final_loss = loss_sum / static_cast<double>(steps);
    stats.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(steps);
  }
  return stats;
}

double evaluate(const TinyTransformer& model,
                const std::vector<TaskSample>& data,
                const sparse::BlockPattern& mask, AttentionScheme scheme) {
  // One plan context for the whole sweep: the attention layer's SDDMM and
  // SpMM plans are built on the first sample and replayed for the rest.
  AttentionPlanContext plans(std::make_shared<serve::OperandCache>(), mask);
  std::size_t correct = 0;
  for (const auto& s : data) {
    const auto logits = model.forward_scheme(s, mask, scheme, &plans);
    const int pred = logits[1] > logits[0] ? 1 : 0;
    correct += pred == s.label;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double evaluate_fp32(const TinyTransformer& model,
                     const std::vector<TaskSample>& data,
                     const sparse::BlockPattern* mask) {
  std::size_t correct = 0;
  for (const auto& s : data) {
    const auto logits = model.forward_fp32(s, mask);
    const int pred = logits[1] > logits[0] ? 1 : 0;
    correct += pred == s.label;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace magicube::transformer
