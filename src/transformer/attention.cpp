#include "transformer/attention.hpp"

#include <cmath>

#include "baselines/dense_gemm.hpp"
#include "baselines/vector_sparse_like.hpp"
#include "core/api.hpp"
#include "quant/quantizer.hpp"
#include "serve/operand_cache.hpp"
#include "transformer/ops.hpp"

namespace magicube::transformer {

AttentionPlanContext::AttentionPlanContext(
    std::shared_ptr<serve::OperandCache> cache_in,
    const sparse::BlockPattern& mask_in)
    : cache(std::move(cache_in)),
      mask(std::make_shared<const sparse::BlockPattern>(mask_in)) {
  MAGICUBE_CHECK_MSG(cache != nullptr,
                     "AttentionPlanContext needs an operand cache");
}

const char* to_string(AttentionScheme s) {
  switch (s) {
    case AttentionScheme::dense_fp16: return "PyTorch(cuDNN,fp16)";
    case AttentionScheme::vector_sparse_fp16: return "vectorSparse(fp16)";
    case AttentionScheme::magicube_16b_8b: return "Magicube(16b-8b)";
    case AttentionScheme::magicube_8b_8b: return "Magicube(8b-8b)";
    case AttentionScheme::magicube_8b_4b: return "Magicube(8b-4b)";
    case AttentionScheme::magicube_4b_4b: return "Magicube(4b-4b)";
  }
  return "?";
}

bool is_magicube(AttentionScheme s) {
  return s != AttentionScheme::dense_fp16 &&
         s != AttentionScheme::vector_sparse_fp16;
}

int softmax_bits(AttentionScheme s) {
  switch (s) {
    case AttentionScheme::magicube_16b_8b: return 16;
    case AttentionScheme::magicube_8b_8b:
    case AttentionScheme::magicube_8b_4b: return 8;
    case AttentionScheme::magicube_4b_4b: return 4;
    default: return 16;
  }
}

int qkv_bits(AttentionScheme s) {
  switch (s) {
    case AttentionScheme::magicube_16b_8b:
    case AttentionScheme::magicube_8b_8b: return 8;
    case AttentionScheme::magicube_8b_4b:
    case AttentionScheme::magicube_4b_4b: return 4;
    default: return 16;
  }
}

namespace {

Scalar scalar_for_bits(int bits) {
  switch (bits) {
    case 4: return Scalar::s4;
    case 8: return Scalar::s8;
    default: return Scalar::s16;
  }
}

Matrix<half> to_half(const Matrix<float>& m) {
  Matrix<half> out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) out.data()[i] = half(m.data()[i]);
  return out;
}

Matrix<std::int32_t> quantize_to_int(const Matrix<float>& m,
                                     const quant::QuantParams& p) {
  Matrix<std::int32_t> out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    out.data()[i] = quant::quantize_value(m.data()[i], p);
  }
  return out;
}

Matrix<float> dense_fp16_attention(const Matrix<float>& q,
                                   const Matrix<float>& k,
                                   const Matrix<float>& v,
                                   const sparse::BlockPattern& mask,
                                   std::vector<simt::KernelRun>* runs) {
  const std::size_t l = q.rows(), dk = q.cols();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  Matrix<float> scores = matmul_transposed_b(q, k);
  const auto mask_dense = sparse::pattern_to_dense_mask(mask);
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      scores(i, j) = mask_dense(i, j)
                         ? float(half(scores(i, j) * scale))
                         : -3.0e4f;  // masked out (finite in fp16)
    }
  }
  softmax_rows(scores, /*round_fp16=*/true);
  Matrix<half> attn = to_half(scores);
  const auto out = baselines::dense_gemm_fp16(attn, to_half(v));
  if (runs) {
    runs->push_back(baselines::dense_gemm_fp16_estimate(l, l, dk));
    runs->push_back(elementwise_kernel(l * l, 2.0, 6.0));  // mask+scale
    runs->push_back(softmax_kernel(l * l, 2));
    runs->push_back(baselines::dense_gemm_fp16_estimate(l, dk, l));
  }
  Matrix<float> result(l, dk);
  for (std::size_t i = 0; i < result.size(); ++i) {
    result.data()[i] = float(out.c.data()[i]);
  }
  return result;
}

Matrix<float> vector_sparse_attention(const Matrix<float>& q,
                                      const Matrix<float>& k,
                                      const Matrix<float>& v,
                                      const sparse::BlockPattern& mask,
                                      std::vector<simt::KernelRun>* runs) {
  const std::size_t l = q.rows(), dk = q.cols();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));

  // SDDMM in fp16: B is K^T (dk x l).
  Matrix<half> kt(dk, l);
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t d = 0; d < dk; ++d) kt(d, i) = half(k(i, d));
  }
  auto sddmm = baselines::vs_sddmm(to_half(q), kt, mask);

  sparse::Bcrs<float> scores;
  scores.rows = sddmm.c.rows;
  scores.cols = sddmm.c.cols;
  scores.vector_length = sddmm.c.vector_length;
  scores.row_ptr = sddmm.c.row_ptr;
  scores.col_idx = sddmm.c.col_idx;
  scores.values.resize(sddmm.c.values.size());
  for (std::size_t i = 0; i < scores.values.size(); ++i) {
    scores.values[i] = float(sddmm.c.values[i]) * scale;
  }
  softmax_sparse_rows(scores, /*round_fp16=*/true);

  sparse::Bcrs<half> attn;
  attn.rows = scores.rows;
  attn.cols = scores.cols;
  attn.vector_length = scores.vector_length;
  attn.row_ptr = scores.row_ptr;
  attn.col_idx = scores.col_idx;
  attn.values.resize(scores.values.size());
  for (std::size_t i = 0; i < attn.values.size(); ++i) {
    attn.values[i] = half(scores.values[i]);
  }
  auto spmm = baselines::vs_spmm(attn, to_half(v));
  if (runs) {
    runs->push_back(sddmm.run);
    runs->push_back(softmax_kernel(mask.nnz(), 2));
    runs->push_back(spmm.run);
  }
  Matrix<float> result(l, dk);
  for (std::size_t i = 0; i < result.size(); ++i) {
    result.data()[i] = float(spmm.c.data()[i]);
  }
  return result;
}

Matrix<float> magicube_attention(const Matrix<float>& q,
                                 const Matrix<float>& k,
                                 const Matrix<float>& v,
                                 const sparse::BlockPattern& mask,
                                 AttentionScheme scheme,
                                 std::vector<simt::KernelRun>* runs,
                                 AttentionPlanContext* plans) {
  const std::size_t l = q.rows(), dk = q.cols();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  const Scalar qkv_type = scalar_for_bits(qkv_bits(scheme));
  const Scalar sm_type = scalar_for_bits(softmax_bits(scheme));

  // Quantize Q, K, V (fused with the projection epilogue on device).
  const auto pq = quant::choose_symmetric(q.data(), q.size(), qkv_type);
  const auto pk = quant::choose_symmetric(k.data(), k.size(), qkv_type);
  const auto pv = quant::choose_symmetric(v.data(), v.size(), qkv_type);
  const auto qi = quantize_to_int(q, pq);
  const auto ki = quantize_to_int(k, pk);
  const auto vi = quantize_to_int(v, pv);

  // SDDMM at Ly-Ry, dequantize fused into the epilogue.
  const PrecisionPair sddmm_prec{qkv_type, qkv_type};
  const int chunk = bits_of(qkv_type) <= 4 ? 4 : 8;
  Matrix<std::int32_t> kt(dk, l);
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t d = 0; d < dk; ++d) kt(d, i) = ki(i, d);
  }
  core::SddmmConfig sddmm_cfg;
  sddmm_cfg.precision = sddmm_prec;
  core::SddmmResult sddmm;
  if (plans) {
    // Serve the prepared operands from the context's cache, keyed by a
    // content probe of the quantized values: repeated calls over unchanged
    // activations skip the O(L·dk) re-prepare entirely. The probe doubles
    // as the staleness guard's sample, so changed values miss (new id)
    // rather than trip the immutable-contents check. 0 would mean
    // "anonymous, don't cache" — coerced to 1.
    auto probe_id = [](const Matrix<std::int32_t>& m) {
      const std::uint64_t id = serve::content_probe(m);
      return id == 0 ? 1 : id;
    };
    bool hit = false;
    const auto a_op = plans->cache->get_or_prepare_dense(
        serve::OperandKind::sddmm_lhs, qi, sddmm_prec, probe_id(qi), &hit);
    (hit ? plans->operand_hits : plans->operand_preps) += 1;
    const auto b_op = plans->cache->get_or_prepare_dense(
        serve::OperandKind::sddmm_rhs, kt, sddmm_prec, probe_id(kt), &hit);
    (hit ? plans->operand_hits : plans->operand_preps) += 1;
    // Build once per layer, replay per token: the plan is served from the
    // context's cache and validated against the mask at replay time.
    const core::SddmmPlanHandle plan = plans->cache->get_or_build_sddmm_plan(
        plans->mask, dk, sddmm_cfg, 0, &hit);
    (hit ? plans->plan_replays : plans->plan_builds) += 1;
    sddmm = core::sddmm(a_op, b_op, mask, sddmm_cfg, plan);
  } else {
    const auto a_op = core::prepare_dense(qi, qkv_type, /*row_major=*/true,
                                          chunk);
    const auto b_op = core::prepare_dense(kt, qkv_type, /*row_major=*/false,
                                          chunk);
    sddmm = core::sddmm(a_op, b_op, mask, sddmm_cfg);
  }

  sparse::Bcrs<float> scores;
  scores.rows = sddmm.c.rows;
  scores.cols = sddmm.c.cols;
  scores.vector_length = sddmm.c.vector_length;
  scores.row_ptr = sddmm.c.row_ptr;
  scores.col_idx = sddmm.c.col_idx;
  scores.values.resize(sddmm.c.values.size());
  const float deq = pq.scale * pk.scale * scale;
  for (std::size_t i = 0; i < scores.values.size(); ++i) {
    scores.values[i] = static_cast<float>(sddmm.c.values[i]) * deq;
  }
  // fp16 softmax with fused x-bit quantization of the output.
  softmax_sparse_rows(scores, /*round_fp16=*/true);
  const auto pa = quant::choose_symmetric(
      scores.values.data(), scores.values.size(), sm_type);

  // Scatter the quantized attention weights back to a dense image of the
  // mask to build the SpMM LHS (host-side prep; on device the SDDMM writes
  // SR-BCRS directly, §IV-C).
  Matrix<std::int32_t> attn_dense(l, l, 0);
  const std::size_t vl = static_cast<std::size_t>(scores.vector_length);
  for (std::size_t r = 0; r < scores.vector_rows(); ++r) {
    for (std::uint32_t i = scores.row_ptr[r]; i < scores.row_ptr[r + 1];
         ++i) {
      for (std::size_t rb = 0; rb < vl; ++rb) {
        attn_dense(r * vl + rb, scores.col_idx[i]) =
            quant::quantize_value(scores.values[i * vl + rb], pa);
      }
    }
  }

  const PrecisionPair spmm_prec{sm_type, qkv_type};
  core::SpmmConfig spmm_cfg;
  spmm_cfg.precision = spmm_prec;
  core::SpmmResult spmm;
  if (plans) {
    // Attention weights change per call (new id each time, softmax output),
    // but V is stable across decode steps over a fixed context — the cache
    // turns its re-prepare into a lookup. Content ids as on the SDDMM side.
    auto probe_id = [](const Matrix<std::int32_t>& m) {
      const std::uint64_t id = serve::content_probe(m);
      return id == 0 ? 1 : id;
    };
    bool hit = false;
    const auto lhs = plans->cache->get_or_prepare_spmm_lhs(
        plans->mask, attn_dense, spmm_prec, core::needs_shuffle(spmm_cfg),
        probe_id(attn_dense), &hit);
    (hit ? plans->operand_hits : plans->operand_preps) += 1;
    const auto rhs = plans->cache->get_or_prepare_dense(
        serve::OperandKind::spmm_rhs, vi, spmm_prec, probe_id(vi), &hit);
    (hit ? plans->operand_hits : plans->operand_preps) += 1;
    const core::SpmmPlanHandle plan = plans->cache->get_or_build_spmm_plan(
        plans->mask, dk, spmm_cfg, 0, &hit);
    (hit ? plans->plan_replays : plans->plan_builds) += 1;
    spmm = core::spmm(lhs, rhs, spmm_cfg, plan);
  } else {
    const auto lhs = core::prepare_spmm_lhs(mask, attn_dense, spmm_prec,
                                            core::needs_shuffle(spmm_cfg));
    const auto rhs = core::prepare_spmm_rhs(vi, spmm_prec);
    spmm = core::spmm(lhs, rhs, spmm_cfg);
  }

  if (runs) {
    runs->push_back(elementwise_kernel(3 * l * dk, 2.0, 5.0));  // quant QKV
    runs->push_back(sddmm.run);
    runs->push_back(softmax_kernel(mask.nnz(), 2));
    runs->push_back(spmm.run);
  }
  Matrix<float> result(l, dk);
  const float deq_out = pa.scale * pv.scale;
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t d = 0; d < dk; ++d) {
      result(i, d) = static_cast<float>(spmm.c(i, d)) * deq_out;
    }
  }
  return result;
}

}  // namespace

Matrix<float> attention_forward(const Matrix<float>& q,
                                const Matrix<float>& k,
                                const Matrix<float>& v,
                                const sparse::BlockPattern& mask,
                                AttentionScheme scheme,
                                std::vector<simt::KernelRun>* run_out,
                                AttentionPlanContext* plans) {
  MAGICUBE_CHECK(q.rows() == k.rows() && q.cols() == k.cols());
  MAGICUBE_CHECK(v.rows() == q.rows());
  MAGICUBE_CHECK(mask.rows == q.rows() && mask.cols == q.rows());
  if (plans) {
    // Cheap shape identity; full structural equality is enforced slot for
    // slot by the plan validation inside the kernels.
    MAGICUBE_CHECK_MSG(plans->mask->rows == mask.rows &&
                           plans->mask->cols == mask.cols &&
                           plans->mask->vector_length == mask.vector_length &&
                           plans->mask->vector_count() == mask.vector_count(),
                       "attention plan context built for a different mask");
  }
  switch (scheme) {
    case AttentionScheme::dense_fp16:
      return dense_fp16_attention(q, k, v, mask, run_out);
    case AttentionScheme::vector_sparse_fp16:
      return vector_sparse_attention(q, k, v, mask, run_out);
    default:
      return magicube_attention(q, k, v, mask, scheme, run_out, plans);
  }
}

}  // namespace magicube::transformer
