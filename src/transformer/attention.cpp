#include "transformer/attention.hpp"

#include <cmath>

#include "baselines/dense_gemm.hpp"
#include "baselines/vector_sparse_like.hpp"
#include "core/api.hpp"
#include "quant/quantizer.hpp"
#include "serve/operand_cache.hpp"
#include "transformer/ops.hpp"

namespace magicube::transformer {

AttentionPlanContext::AttentionPlanContext(
    std::shared_ptr<serve::OperandCache> cache_in,
    const sparse::BlockPattern& mask_in)
    : cache(std::move(cache_in)),
      mask(std::make_shared<const sparse::BlockPattern>(mask_in)) {
  MAGICUBE_CHECK_MSG(cache != nullptr,
                     "AttentionPlanContext needs an operand cache");
}

const char* to_string(AttentionScheme s) {
  switch (s) {
    case AttentionScheme::dense_fp16: return "PyTorch(cuDNN,fp16)";
    case AttentionScheme::vector_sparse_fp16: return "vectorSparse(fp16)";
    case AttentionScheme::magicube_16b_8b: return "Magicube(16b-8b)";
    case AttentionScheme::magicube_8b_8b: return "Magicube(8b-8b)";
    case AttentionScheme::magicube_8b_4b: return "Magicube(8b-4b)";
    case AttentionScheme::magicube_4b_4b: return "Magicube(4b-4b)";
  }
  return "?";
}

bool is_magicube(AttentionScheme s) {
  return s != AttentionScheme::dense_fp16 &&
         s != AttentionScheme::vector_sparse_fp16;
}

int softmax_bits(AttentionScheme s) {
  switch (s) {
    case AttentionScheme::magicube_16b_8b: return 16;
    case AttentionScheme::magicube_8b_8b:
    case AttentionScheme::magicube_8b_4b: return 8;
    case AttentionScheme::magicube_4b_4b: return 4;
    default: return 16;
  }
}

int qkv_bits(AttentionScheme s) {
  switch (s) {
    case AttentionScheme::magicube_16b_8b:
    case AttentionScheme::magicube_8b_8b: return 8;
    case AttentionScheme::magicube_8b_4b:
    case AttentionScheme::magicube_4b_4b: return 4;
    default: return 16;
  }
}

namespace {

Scalar scalar_for_bits(int bits) {
  switch (bits) {
    case 4: return Scalar::s4;
    case 8: return Scalar::s8;
    default: return Scalar::s16;
  }
}

Matrix<half> to_half(const Matrix<float>& m) {
  Matrix<half> out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) out.data()[i] = half(m.data()[i]);
  return out;
}

Matrix<std::int32_t> quantize_to_int(const Matrix<float>& m,
                                     const quant::QuantParams& p) {
  Matrix<std::int32_t> out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    out.data()[i] = quant::quantize_value(m.data()[i], p);
  }
  return out;
}

Matrix<float> dense_fp16_attention(const Matrix<float>& q,
                                   const Matrix<float>& k,
                                   const Matrix<float>& v,
                                   const sparse::BlockPattern& mask,
                                   std::vector<simt::KernelRun>* runs) {
  const std::size_t l = q.rows(), dk = q.cols();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  Matrix<float> scores = matmul_transposed_b(q, k);
  const auto mask_dense = sparse::pattern_to_dense_mask(mask);
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      scores(i, j) = mask_dense(i, j)
                         ? float(half(scores(i, j) * scale))
                         : -3.0e4f;  // masked out (finite in fp16)
    }
  }
  softmax_rows(scores, /*round_fp16=*/true);
  Matrix<half> attn = to_half(scores);
  const auto out = baselines::dense_gemm_fp16(attn, to_half(v));
  if (runs) {
    runs->push_back(baselines::dense_gemm_fp16_estimate(l, l, dk));
    runs->push_back(elementwise_kernel(l * l, 2.0, 6.0));  // mask+scale
    runs->push_back(softmax_kernel(l * l, 2));
    runs->push_back(baselines::dense_gemm_fp16_estimate(l, dk, l));
  }
  Matrix<float> result(l, dk);
  for (std::size_t i = 0; i < result.size(); ++i) {
    result.data()[i] = float(out.c.data()[i]);
  }
  return result;
}

Matrix<float> vector_sparse_attention(const Matrix<float>& q,
                                      const Matrix<float>& k,
                                      const Matrix<float>& v,
                                      const sparse::BlockPattern& mask,
                                      std::vector<simt::KernelRun>* runs) {
  const std::size_t l = q.rows(), dk = q.cols();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));

  // SDDMM in fp16: B is K^T (dk x l).
  Matrix<half> kt(dk, l);
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t d = 0; d < dk; ++d) kt(d, i) = half(k(i, d));
  }
  auto sddmm = baselines::vs_sddmm(to_half(q), kt, mask);

  sparse::Bcrs<float> scores;
  scores.rows = sddmm.c.rows;
  scores.cols = sddmm.c.cols;
  scores.vector_length = sddmm.c.vector_length;
  scores.row_ptr = sddmm.c.row_ptr;
  scores.col_idx = sddmm.c.col_idx;
  scores.values.resize(sddmm.c.values.size());
  for (std::size_t i = 0; i < scores.values.size(); ++i) {
    scores.values[i] = float(sddmm.c.values[i]) * scale;
  }
  softmax_sparse_rows(scores, /*round_fp16=*/true);

  sparse::Bcrs<half> attn;
  attn.rows = scores.rows;
  attn.cols = scores.cols;
  attn.vector_length = scores.vector_length;
  attn.row_ptr = scores.row_ptr;
  attn.col_idx = scores.col_idx;
  attn.values.resize(scores.values.size());
  for (std::size_t i = 0; i < attn.values.size(); ++i) {
    attn.values[i] = half(scores.values[i]);
  }
  auto spmm = baselines::vs_spmm(attn, to_half(v));
  if (runs) {
    runs->push_back(sddmm.run);
    runs->push_back(softmax_kernel(mask.nnz(), 2));
    runs->push_back(spmm.run);
  }
  Matrix<float> result(l, dk);
  for (std::size_t i = 0; i < result.size(); ++i) {
    result.data()[i] = float(spmm.c.data()[i]);
  }
  return result;
}

Matrix<float> magicube_attention(const Matrix<float>& q,
                                 const Matrix<float>& k,
                                 const Matrix<float>& v,
                                 const sparse::BlockPattern& mask,
                                 AttentionScheme scheme,
                                 std::vector<simt::KernelRun>* runs,
                                 AttentionPlanContext* plans) {
  AttentionArena arena;
  arena.scheme = scheme;
  // Without a plan context the mask stays caller-owned for the duration of
  // the call: a non-owning alias keeps the stage bodies uniform.
  arena.mask = plans ? plans->mask
                     : std::shared_ptr<const sparse::BlockPattern>(
                           std::shared_ptr<const void>(), &mask);
  serve::OperandCache* cache = plans ? plans->cache.get() : nullptr;

  AttentionStageFlags f1, f3;
  attention_stage_sddmm(arena, q, k, v, cache, cache, &f1);
  if (plans) {
    (f1.lhs_cache_hit ? plans->operand_hits : plans->operand_preps) += 1;
    (f1.rhs_cache_hit ? plans->operand_hits : plans->operand_preps) += 1;
    (f1.plan_cache_hit ? plans->plan_replays : plans->plan_builds) += 1;
  }
  attention_stage_softmax_quantize(arena);
  attention_stage_spmm(arena, cache, cache, /*cache_lhs=*/plans != nullptr,
                       &f3);
  if (plans) {
    (f3.lhs_cache_hit ? plans->operand_hits : plans->operand_preps) += 1;
    (f3.rhs_cache_hit ? plans->operand_hits : plans->operand_preps) += 1;
    (f3.plan_cache_hit ? plans->plan_replays : plans->plan_builds) += 1;
  }

  if (runs) {
    runs->push_back(
        elementwise_kernel(3 * arena.l * arena.dk, 2.0, 5.0));  // quant QKV
    runs->push_back(arena.sddmm.run);
    runs->push_back(softmax_kernel(mask.nnz(), 2));
    runs->push_back(arena.spmm.run);
  }
  return attention_stage_output(arena);
}

}  // namespace

void attention_stage_sddmm(AttentionArena& arena, const Matrix<float>& q,
                           const Matrix<float>& k, const Matrix<float>& v,
                           serve::OperandCache* operands,
                           serve::OperandCache* plans,
                           AttentionStageFlags* flags) {
  MAGICUBE_CHECK_MSG(arena.mask != nullptr,
                     "attention arena needs its mask set before stage 1");
  const sparse::BlockPattern& mask = *arena.mask;
  const std::size_t l = q.rows(), dk = q.cols();
  arena.l = l;
  arena.dk = dk;
  arena.scale = 1.0f / std::sqrt(static_cast<float>(dk));
  const Scalar qkv_type = scalar_for_bits(qkv_bits(arena.scheme));

  // Quantize Q, K, V (fused with the projection epilogue on device).
  const auto pq = quant::choose_symmetric(q.data(), q.size(), qkv_type);
  const auto pk = quant::choose_symmetric(k.data(), k.size(), qkv_type);
  const auto pv = quant::choose_symmetric(v.data(), v.size(), qkv_type);
  arena.pq = pq;
  arena.pk = pk;
  arena.pv = pv;
  arena.qi = quantize_to_int(q, pq);
  arena.ki = quantize_to_int(k, pk);
  arena.vi = quantize_to_int(v, pv);

  // SDDMM at Ly-Ry, dequantize fused into the epilogue.
  const PrecisionPair sddmm_prec{qkv_type, qkv_type};
  const int chunk = bits_of(qkv_type) <= 4 ? 4 : 8;
  arena.kt = Matrix<std::int32_t>(dk, l);
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t d = 0; d < dk; ++d) arena.kt(d, i) = arena.ki(i, d);
  }
  core::SddmmConfig sddmm_cfg;
  sddmm_cfg.precision = sddmm_prec;
  AttentionStageFlags local;
  // Serve the prepared operands from the cache, keyed by a content probe of
  // the quantized values: repeated calls over unchanged activations skip
  // the O(L·dk) re-prepare entirely. The probe-keyed path uses the probe
  // itself as identity (bijectively remapped), so changed values miss
  // cleanly and no probe value — 0 included — can alias two distinct
  // operands onto one id.
  core::DenseOperandHandle a_op, b_op;
  if (operands) {
    a_op = operands->get_or_prepare_probed(serve::OperandKind::sddmm_lhs,
                                           arena.qi, sddmm_prec,
                                           &local.lhs_cache_hit);
    b_op = operands->get_or_prepare_probed(serve::OperandKind::sddmm_rhs,
                                           arena.kt, sddmm_prec,
                                           &local.rhs_cache_hit);
  }
  if (plans) {
    // Build once per layer, replay per token: the plan is served from the
    // cache and validated against the mask at replay time.
    arena.stage_plans.sddmm = plans->get_or_build_sddmm_plan(
        arena.mask, dk, sddmm_cfg, 0, &local.plan_cache_hit);
    if (!a_op) {
      a_op = core::prepare_dense_shared(arena.qi, qkv_type,
                                        /*row_major=*/true, chunk);
      b_op = core::prepare_dense_shared(arena.kt, qkv_type,
                                        /*row_major=*/false, chunk);
    }
    arena.sddmm =
        core::sddmm(a_op, b_op, mask, sddmm_cfg, arena.stage_plans.sddmm);
  } else if (operands) {
    arena.sddmm = core::sddmm(a_op, b_op, mask, sddmm_cfg);
  } else {
    const auto a_val = core::prepare_dense(arena.qi, qkv_type,
                                           /*row_major=*/true, chunk);
    const auto b_val = core::prepare_dense(arena.kt, qkv_type,
                                           /*row_major=*/false, chunk);
    arena.sddmm = core::sddmm(a_val, b_val, mask, sddmm_cfg);
  }
  if (flags) *flags = local;
}

void attention_stage_softmax_quantize(AttentionArena& arena) {
  const Scalar sm_type = scalar_for_bits(softmax_bits(arena.scheme));
  sparse::Bcrs<float>& scores = arena.scores;
  scores.rows = arena.sddmm.c.rows;
  scores.cols = arena.sddmm.c.cols;
  scores.vector_length = arena.sddmm.c.vector_length;
  scores.row_ptr = arena.sddmm.c.row_ptr;
  scores.col_idx = arena.sddmm.c.col_idx;
  scores.values.resize(arena.sddmm.c.values.size());
  const float deq = arena.pq.scale * arena.pk.scale * arena.scale;
  for (std::size_t i = 0; i < scores.values.size(); ++i) {
    scores.values[i] = static_cast<float>(arena.sddmm.c.values[i]) * deq;
  }
  // fp16 softmax with fused x-bit quantization of the output.
  softmax_sparse_rows(scores, /*round_fp16=*/true);
  arena.pa = quant::choose_symmetric(scores.values.data(),
                                     scores.values.size(), sm_type);

  // Scatter the quantized attention weights back to a dense image of the
  // mask to build the SpMM LHS (host-side prep; on device the SDDMM writes
  // SR-BCRS directly, §IV-C).
  arena.attn_dense = Matrix<std::int32_t>(arena.l, arena.l, 0);
  const std::size_t vl = static_cast<std::size_t>(scores.vector_length);
  for (std::size_t r = 0; r < scores.vector_rows(); ++r) {
    for (std::uint32_t i = scores.row_ptr[r]; i < scores.row_ptr[r + 1];
         ++i) {
      for (std::size_t rb = 0; rb < vl; ++rb) {
        arena.attn_dense(r * vl + rb, scores.col_idx[i]) =
            quant::quantize_value(scores.values[i * vl + rb], arena.pa);
      }
    }
  }
}

void attention_stage_spmm(AttentionArena& arena,
                          serve::OperandCache* operands,
                          serve::OperandCache* plans, bool cache_lhs,
                          AttentionStageFlags* flags) {
  const Scalar qkv_type = scalar_for_bits(qkv_bits(arena.scheme));
  const Scalar sm_type = scalar_for_bits(softmax_bits(arena.scheme));
  const PrecisionPair spmm_prec{sm_type, qkv_type};
  core::SpmmConfig spmm_cfg;
  spmm_cfg.precision = spmm_prec;
  AttentionStageFlags local;
  if (operands || plans) {
    // Attention weights change per call (new probe each time, softmax
    // output), but V is stable across decode steps over a fixed context —
    // the cache turns its re-prepare into a lookup. The fused graph path
    // sets cache_lhs=false: the per-call intermediate is prepared straight
    // into the arena and never enters the cache.
    core::SparseOperandHandle lhs;
    if (operands && cache_lhs) {
      lhs = operands->get_or_prepare_spmm_lhs_probed(
          arena.mask, arena.attn_dense, spmm_prec,
          core::needs_shuffle(spmm_cfg), &local.lhs_cache_hit);
    } else {
      lhs = core::prepare_spmm_lhs_shared(*arena.mask, arena.attn_dense,
                                          spmm_prec,
                                          core::needs_shuffle(spmm_cfg));
    }
    core::DenseOperandHandle rhs;
    if (operands) {
      rhs = operands->get_or_prepare_probed(serve::OperandKind::spmm_rhs,
                                            arena.vi, spmm_prec,
                                            &local.rhs_cache_hit);
    } else {
      rhs = core::prepare_spmm_rhs_shared(arena.vi, spmm_prec);
    }
    if (plans) {
      arena.stage_plans.spmm = plans->get_or_build_spmm_plan(
          arena.mask, arena.dk, spmm_cfg, 0, &local.plan_cache_hit);
      arena.spmm = core::spmm(lhs, rhs, spmm_cfg, arena.stage_plans.spmm);
    } else {
      arena.spmm = core::spmm(lhs, rhs, spmm_cfg);
    }
  } else {
    const auto lhs =
        core::prepare_spmm_lhs(*arena.mask, arena.attn_dense, spmm_prec,
                               core::needs_shuffle(spmm_cfg));
    const auto rhs = core::prepare_spmm_rhs(arena.vi, spmm_prec);
    arena.spmm = core::spmm(lhs, rhs, spmm_cfg);
  }
  if (flags) *flags = local;
}

Matrix<float> attention_stage_output(const AttentionArena& arena) {
  Matrix<float> result(arena.l, arena.dk);
  const float deq_out = arena.pa.scale * arena.pv.scale;
  for (std::size_t i = 0; i < arena.l; ++i) {
    for (std::size_t d = 0; d < arena.dk; ++d) {
      result(i, d) = static_cast<float>(arena.spmm.c(i, d)) * deq_out;
    }
  }
  return result;
}

Matrix<float> attention_forward(const Matrix<float>& q,
                                const Matrix<float>& k,
                                const Matrix<float>& v,
                                const sparse::BlockPattern& mask,
                                AttentionScheme scheme,
                                std::vector<simt::KernelRun>* run_out,
                                AttentionPlanContext* plans) {
  MAGICUBE_CHECK(q.rows() == k.rows() && q.cols() == k.cols());
  MAGICUBE_CHECK(v.rows() == q.rows());
  MAGICUBE_CHECK(mask.rows == q.rows() && mask.cols == q.rows());
  if (plans) {
    // Cheap shape identity; full structural equality is enforced slot for
    // slot by the plan validation inside the kernels.
    MAGICUBE_CHECK_MSG(plans->mask->rows == mask.rows &&
                           plans->mask->cols == mask.cols &&
                           plans->mask->vector_length == mask.vector_length &&
                           plans->mask->vector_count() == mask.vector_count(),
                       "attention plan context built for a different mask");
  }
  switch (scheme) {
    case AttentionScheme::dense_fp16:
      return dense_fp16_attention(q, k, v, mask, run_out);
    case AttentionScheme::vector_sparse_fp16:
      return vector_sparse_attention(q, k, v, mask, run_out);
    default:
      return magicube_attention(q, k, v, mask, scheme, run_out, plans);
  }
}

}  // namespace magicube::transformer
