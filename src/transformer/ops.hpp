#pragma once
// Elementwise / normalization operators of the Transformer encoder, with
// kernel-cost helpers for the end-to-end latency model.

#include <cstdint>

#include "common/half.hpp"
#include "common/matrix.hpp"
#include "simt/cost_model.hpp"
#include "sparse/bcrs.hpp"

namespace magicube::transformer {

/// Row-wise numerically-stable softmax in fp32 (optionally rounding the
/// result to fp16, as the paper's fused softmax kernel outputs).
void softmax_rows(Matrix<float>& m, bool round_fp16);

/// Softmax over the values of a sparse BCRS row structure: each *scalar* row
/// of the logical matrix normalizes over its nonzero entries only (the
/// masked-softmax semantics of sparse attention).
void softmax_sparse_rows(sparse::Bcrs<float>& m, bool round_fp16);

/// LayerNorm over the last dimension (rows of the matrix).
void layer_norm_rows(Matrix<float>& m, const std::vector<float>& gamma,
                     const std::vector<float>& beta, float eps = 1e-5f);

/// GELU (tanh approximation).
void gelu(Matrix<float>& m);

/// C += A * B in fp32 for activations (functional path for the model).
Matrix<float> matmul(const Matrix<float>& a, const Matrix<float>& b);
Matrix<float> matmul_transposed_b(const Matrix<float>& a,
                                  const Matrix<float>& b);

// ---- Kernel-cost helpers (used by the latency model) ---------------------

/// Elementwise kernel over `elems` scalars: `flops_per_elem` fp32 ops,
/// `bytes_per_elem` of traffic (read + write combined).
simt::KernelRun elementwise_kernel(std::uint64_t elems, double flops_per_elem,
                                   double bytes_per_elem);

/// Row-softmax kernel over `elems` scalars (two passes: max+sum, scale).
simt::KernelRun softmax_kernel(std::uint64_t elems, int bytes_per_value);

/// Scales a kernel run by `factor` identical instances batched into one
/// launch (grid and counters multiply; launch overhead does not).
simt::KernelRun scale_batched(simt::KernelRun run, std::uint64_t factor);

}  // namespace magicube::transformer
