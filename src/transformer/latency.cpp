#include "transformer/latency.hpp"

#include "baselines/dense_gemm.hpp"
#include "baselines/vector_sparse_like.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "serve/operand_cache.hpp"
#include "transformer/ops.hpp"

namespace magicube::transformer {

namespace {

Scalar scalar_for_bits(int bits) {
  switch (bits) {
    case 4: return Scalar::s4;
    case 8: return Scalar::s8;
    default: return Scalar::s16;
  }
}

}  // namespace

std::uint64_t peak_memory_bytes(const TransformerConfig& cfg,
                                AttentionScheme scheme) {
  const std::uint64_t l = cfg.seq_len;
  const std::uint64_t bh = cfg.batch * static_cast<std::uint64_t>(cfg.heads);
  const std::uint64_t d = cfg.d_model();
  // Weights (4 projection + 2 MLP matrices per layer) and activations.
  const std::uint64_t weights =
      static_cast<std::uint64_t>(cfg.layers) * (4 * d * d + 8 * d * d) * 2;
  const std::uint64_t activations = cfg.batch * l * d * 2 * 8;

  if (scheme == AttentionScheme::dense_fp16) {
    const std::uint64_t scores_fp16 = bh * l * l * 2;
    const std::uint64_t scores_fp32 = bh * l * l * 4;
    const std::uint64_t mask_fp32 = bh * l * l * 4;
    // scores + softmax output in fp16, the broadcast mask and the promoted
    // masked-score chain in fp32.
    return weights + activations + 2 * scores_fp16 + mask_fp32 +
           3 * scores_fp32;
  }
  // Sparse schemes hold nnz-sized score/attention buffers (two live copies)
  // plus format metadata.
  const double density = 1.0 - cfg.sparsity;
  const std::uint64_t nnz =
      static_cast<std::uint64_t>(density * static_cast<double>(l) *
                                 static_cast<double>(l));
  const int value_bytes =
      scheme == AttentionScheme::vector_sparse_fp16
          ? 2
          : (softmax_bits(scheme) + 7) / 8;
  return weights + activations +
         bh * nnz * (static_cast<std::uint64_t>(value_bytes) * 2 + 1);
}

E2eResult transformer_inference(const TransformerConfig& cfg,
                                AttentionScheme scheme,
                                const sparse::BlockPattern& mask,
                                AttentionPlanContext* plans) {
  MAGICUBE_CHECK(mask.rows == cfg.seq_len && mask.cols == cfg.seq_len);
  const simt::DeviceSpec& dev = simt::a100();

  E2eResult out;
  out.peak_bytes = peak_memory_bytes(cfg, scheme);
  if (out.peak_bytes > dev.dram_capacity_bytes) {
    out.oom = true;
    return out;
  }

  const std::uint64_t l = cfg.seq_len;
  const std::uint64_t bh = cfg.batch * static_cast<std::uint64_t>(cfg.heads);
  const std::size_t d = cfg.d_model();
  const std::size_t dk = static_cast<std::size_t>(cfg.head_dim);
  const std::size_t tokens = cfg.batch * l;

  double proj_s = 0, attn_s = 0, softmax_s = 0, mlp_s = 0, other_s = 0;
  auto add = [&](double& bucket, const simt::KernelRun& run) {
    bucket += simt::estimate_seconds(dev, run);
  };

  for (int layer = 0; layer < cfg.layers; ++layer) {
    // QKV + output projections: [tokens, d] x [d, d], fp16 (all schemes).
    for (int i = 0; i < 4; ++i) {
      add(proj_s, baselines::dense_gemm_fp16_estimate(tokens, d, d));
    }
    // LayerNorms and residuals.
    add(other_s, elementwise_kernel(tokens * d, 8.0, 4.0));
    add(other_s, elementwise_kernel(tokens * d, 8.0, 4.0));
    add(other_s, elementwise_kernel(tokens * d, 1.0, 6.0));
    add(other_s, elementwise_kernel(tokens * d, 1.0, 6.0));

    // Attention, batched over (batch x heads) instances.
    switch (scheme) {
      case AttentionScheme::dense_fp16: {
        add(attn_s, scale_batched(
                        baselines::dense_gemm_fp16_estimate(l, l, dk), bh));
        // Mask multiply in fp32 (type promotion) + scale.
        add(other_s, elementwise_kernel(bh * l * l, 2.0, 10.0));
        add(softmax_s, softmax_kernel(bh * l * l, 2));
        add(attn_s, scale_batched(
                        baselines::dense_gemm_fp16_estimate(l, dk, l), bh));
        break;
      }
      case AttentionScheme::vector_sparse_fp16: {
        add(attn_s,
            scale_batched(baselines::vs_sddmm_estimate(mask, dk), bh));
        add(softmax_s, softmax_kernel(bh * mask.nnz(), 2));
        add(attn_s,
            scale_batched(baselines::vs_spmm_estimate(mask, dk), bh));
        break;
      }
      default: {
        const Scalar qkv_t = scalar_for_bits(qkv_bits(scheme));
        const Scalar sm_t = scalar_for_bits(softmax_bits(scheme));
        // Fused quantization of Q, K, V.
        add(other_s, elementwise_kernel(3 * cfg.batch * l * d, 2.0, 3.0));
        core::SddmmConfig sddmm_cfg;
        sddmm_cfg.precision = {qkv_t, qkv_t};
        core::SpmmConfig spmm_cfg;
        spmm_cfg.precision = {sm_t, qkv_t};
        simt::KernelRun sddmm_run, spmm_run;
        if (plans) {
          // Plan-threaded path: the plan's analytic KernelRun is the
          // estimate (estimate-equals-execute), built once per
          // (mask, precision, op) and replayed for every further layer
          // and configuration sweep over the same mask.
          bool hit = false;
          sddmm_run = plans->cache
                          ->get_or_build_sddmm_plan(plans->mask, dk,
                                                    sddmm_cfg, 0, &hit)
                          ->run;
          (hit ? plans->plan_replays : plans->plan_builds) += 1;
          spmm_run = plans->cache
                         ->get_or_build_spmm_plan(plans->mask, dk, spmm_cfg,
                                                  0, &hit)
                         ->run;
          (hit ? plans->plan_replays : plans->plan_builds) += 1;
        } else {
          sddmm_run = core::sddmm_estimate(mask, dk, sddmm_cfg);
          spmm_run = core::spmm_estimate(mask, dk, spmm_cfg);
        }
        add(attn_s, scale_batched(sddmm_run, bh));
        // fp16 softmax with fused dequant/quant.
        add(softmax_s, softmax_kernel(bh * mask.nnz(), 2));
        add(attn_s, scale_batched(spmm_run, bh));
        break;
      }
    }

    // MLP: [tokens, d] x [d, 4d], GELU, [tokens, 4d] x [4d, d], fp16.
    add(mlp_s, baselines::dense_gemm_fp16_estimate(tokens, 4 * d, d));
    add(other_s, elementwise_kernel(tokens * 4 * d, 12.0, 4.0));
    add(mlp_s, baselines::dense_gemm_fp16_estimate(tokens, d, 4 * d));
  }

  out.breakdown = {{"projections", proj_s},
                   {"attention", attn_s},
                   {"softmax", softmax_s},
                   {"mlp", mlp_s},
                   {"other", other_s}};
  out.seconds = proj_s + attn_s + softmax_s + mlp_s + other_s;
  return out;
}

}  // namespace magicube::transformer
