// AVX-512 instantiation of the block-panel micro-kernels (see
// panel_kernels.inc). This translation unit is compiled with
// -mavx512f -mavx512bw -mavx512dq -mavx512vl on x86-64 GCC/Clang builds
// when MAGICUBE_SIMD is on; tensor_core.cpp dispatches into it only after
// __builtin_cpu_supports confirms all four feature bits at runtime (checked
// before the AVX2 instantiation), so the binary stays safe on older cores.
// MAGICUBE_PANEL_VEC512 lays the 64-column C strips out in 16-lane
// registers — half the register pressure and half the fma issues of the
// 8-lane layout. On other targets (or with MAGICUBE_SIMD off) the unit
// compiles empty and is never referenced.

#include <cstddef>
#include <cstdint>

#include "simt/tensor_core.hpp"

#if defined(MAGICUBE_SIMD) && MAGICUBE_SIMD && \
    (defined(__GNUC__) || defined(__clang__)) && defined(__x86_64__)

namespace magicube::simt::panel_detail::avx512 {

#define MAGICUBE_PANEL_VEC 1
#define MAGICUBE_PANEL_VEC512 1
#include "simt/panel_kernels.inc"
#undef MAGICUBE_PANEL_VEC
#undef MAGICUBE_PANEL_VEC512

}  // namespace magicube::simt::panel_detail::avx512

#endif
