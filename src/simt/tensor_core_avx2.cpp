// AVX2 instantiation of the block-panel micro-kernels (see
// panel_kernels.inc). This translation unit is compiled with -mavx2 on
// x86-64 GCC/Clang builds when MAGICUBE_SIMD is on; tensor_core.cpp
// dispatches into it only after __builtin_cpu_supports("avx2") agrees at
// runtime, so the binary stays safe on older cores. On other targets (or
// with MAGICUBE_SIMD off) the unit compiles empty and is never referenced.

#include <cstddef>
#include <cstdint>

#include "simt/tensor_core.hpp"

#if defined(MAGICUBE_SIMD) && MAGICUBE_SIMD && \
    (defined(__GNUC__) || defined(__clang__)) && defined(__x86_64__)

namespace magicube::simt::panel_detail::avx2 {

#define MAGICUBE_PANEL_VEC 1
#define MAGICUBE_PANEL_VEC512 0
#include "simt/panel_kernels.inc"
#undef MAGICUBE_PANEL_VEC
#undef MAGICUBE_PANEL_VEC512

}  // namespace magicube::simt::panel_detail::avx2

#endif
