// NEON (Advanced SIMD) instantiation of the block-panel micro-kernels (see
// panel_kernels.inc). AArch64 mandates Advanced SIMD, so no extra compile
// flags and no runtime CPUID probe are needed: the vector-extension kernels
// lower to NEON at the baseline ISA and tensor_core.cpp selects this
// namespace unconditionally on AArch64 builds. The 8 x 32-bit strips map to
// pairs of 128-bit q-registers. On non-AArch64 targets (or with
// MAGICUBE_SIMD off) the unit compiles empty and is never referenced.

#include <cstddef>
#include <cstdint>

#include "simt/tensor_core.hpp"

#if defined(MAGICUBE_SIMD) && MAGICUBE_SIMD && \
    (defined(__GNUC__) || defined(__clang__)) && defined(__aarch64__)

namespace magicube::simt::panel_detail::neon {

#define MAGICUBE_PANEL_VEC 1
#define MAGICUBE_PANEL_VEC512 0
#include "simt/panel_kernels.inc"
#undef MAGICUBE_PANEL_VEC
#undef MAGICUBE_PANEL_VEC512

}  // namespace magicube::simt::panel_detail::neon

#endif
