#include "simt/tensor_core.hpp"

namespace magicube::simt {

namespace {

// Decodes element `idx` of a lane register holding packed `bits`-wide values.
std::int32_t decode(std::uint32_t reg, int idx, int bits, bool is_signed) {
  const std::uint32_t raw = (reg >> (idx * bits)) & ((1u << bits) - 1u);
  return is_signed ? magicube::sign_extend(raw, bits)
                   : static_cast<std::int32_t>(raw);
}

// Shared implementation: e = elements per lane register (4 for int8, 8 for
// int4); the reduction dimension is k = 4 * e.
template <int kElems, int kBits>
void mma_impl(AccumFrag& d, const WarpReg& a, const WarpReg& b,
              const AccumFrag& c, bool a_signed, bool b_signed) {
  // a_val(i, k): lane i*4 + k/e, element k%e.   (A row-major 8 x 4e)
  // b_val(k, j): lane j*4 + k/e, element k%e.   (B col-major 4e x 8)
  for (int lane = 0; lane < 32; ++lane) {
    const int row = lane / 4;
    const int col0 = 2 * (lane % 4);
    for (int cc = 0; cc < 2; ++cc) {
      const int col = col0 + cc;
      std::int64_t acc = c.c[lane][cc];
      for (int k = 0; k < 4 * kElems; ++k) {
        const std::int32_t av =
            decode(a[row * 4 + k / kElems], k % kElems, kBits, a_signed);
        const std::int32_t bv =
            decode(b[col * 4 + k / kElems], k % kElems, kBits, b_signed);
        acc += static_cast<std::int64_t>(av) * bv;
      }
      // Hardware accumulates in int32 with wraparound semantics.
      d.c[lane][cc] = static_cast<std::int32_t>(acc);
    }
  }
}

template <int kElems, int kBits>
void decode_frag_impl(const WarpReg& frag, bool is_signed, DecodedFrag& out) {
  out.k = 4 * kElems;
  for (int r = 0; r < 8; ++r) {
    for (int k = 0; k < 4 * kElems; ++k) {
      out.v[r][k] =
          decode(frag[r * 4 + k / kElems], k % kElems, kBits, is_signed);
    }
  }
}

}  // namespace

void mma_m8n8k16(AccumFrag& d, const WarpReg& a, const WarpReg& b,
                 const AccumFrag& c, bool a_signed, bool b_signed,
                 KernelCounters& counters) {
  mma_impl<4, 8>(d, a, b, c, a_signed, b_signed);
  counters.mma_int8 += 1;
}

void mma_m8n8k32(AccumFrag& d, const WarpReg& a, const WarpReg& b,
                 const AccumFrag& c, bool a_signed, bool b_signed,
                 KernelCounters& counters) {
  mma_impl<8, 4>(d, a, b, c, a_signed, b_signed);
  counters.mma_int4 += 1;
}

void decode_frag_int8(const WarpReg& frag, bool is_signed, DecodedFrag& out) {
  decode_frag_impl<4, 8>(frag, is_signed, out);
}

void decode_frag_int4(const WarpReg& frag, bool is_signed, DecodedFrag& out) {
  decode_frag_impl<8, 4>(frag, is_signed, out);
}

namespace {

// Wraparound uint32 accumulation is bit-exact with mma_impl's
// int64-carry-then-truncate: truncation mod 2^32 is a ring homomorphism
// (it commutes with sums and products), and both paths truncate once per
// mma issue. The compile-time trip count lets the optimizer unroll and
// vectorize the 32-bit multiply-add reduction.
template <int kK>
void mma_decoded_k(AccumFrag& acc, const DecodedFrag& a,
                   const DecodedFrag& b) {
  for (int lane = 0; lane < 32; ++lane) {
    const int row = lane / 4;
    const int col0 = 2 * (lane % 4);
    for (int cc = 0; cc < 2; ++cc) {
      std::uint32_t sum = static_cast<std::uint32_t>(acc.c[lane][cc]);
      const std::int32_t* ar = a.v[row].data();
      const std::int32_t* bc = b.v[col0 + cc].data();
      for (int k = 0; k < kK; ++k) {
        sum += static_cast<std::uint32_t>(ar[k]) *
               static_cast<std::uint32_t>(bc[k]);
      }
      acc.c[lane][cc] = static_cast<std::int32_t>(sum);  // C++20: modular
    }
  }
}

}  // namespace

void mma_decoded(AccumFrag& acc, const DecodedFrag& a, const DecodedFrag& b) {
  if (a.k == 32) {
    mma_decoded_k<32>(acc, a, b);
  } else {
    mma_decoded_k<16>(acc, a, b);
  }
}

// ---- Block-panel micro-kernel ---------------------------------------------

#if defined(MAGICUBE_SIMD) && MAGICUBE_SIMD && \
    (defined(__GNUC__) || defined(__clang__))
#define MAGICUBE_SIMD_ACTIVE 1
#else
#define MAGICUBE_SIMD_ACTIVE 0
#endif

// The kernel bodies live in panel_kernels.inc, instantiated here at the
// build's baseline ISA and again per wide ISA in its own TU:
// tensor_core_avx2.cpp under -mavx2, tensor_core_avx512.cpp under
// -mavx512{f,bw,dq,vl} (both x86-64 only; SSE2 has no 32-bit vector
// multiply, which the MAC kernel lives on), and tensor_core_neon.cpp on
// AArch64 where Advanced SIMD is architecturally guaranteed. Dispatch
// checks __builtin_cpu_supports per call, widest ISA first
// (avx512 -> avx2 -> base); on AArch64 the neon instantiation is
// unconditional, no CPUID probe needed.
namespace panel_detail {

// Forward declarations shared by every wide-ISA namespace (each TU defines
// the same .inc surface under its own target flags).
#define MAGICUBE_PANEL_DECLS                                                  \
  void mma_panel(std::uint32_t* acc, const DecodedFrag& a,                    \
                 const std::int32_t* b, int n);                               \
  void mma_panel_n64(std::uint32_t* acc, const DecodedFrag& a,                \
                     const std::int32_t* b, int rows);                        \
  void fused_decode_mma_n64(std::uint32_t* acc, const DecodedFrag& a,         \
                            const std::uint8_t* const* rows, int k_count,     \
                            bool int4, bool b_signed);                        \
  void colsum_update(const std::int32_t* row, std::int64_t* colsum,           \
                     std::size_t n);                                          \
  void epilogue_combine(std::int64_t* total, const std::uint32_t* acc_row,    \
                        std::int64_t weight, std::size_t n);                  \
  void epilogue_combine_biased(std::int64_t* total,                           \
                               const std::uint32_t* acc_row,                  \
                               const std::int64_t* colsum, std::int64_t bias, \
                               std::int64_t weight, std::size_t n);           \
  std::int32_t dot_wrap(const std::int32_t* a, const std::int32_t* b,         \
                        std::size_t k, std::int32_t acc);                     \
  void decode_span_int8(const std::uint8_t* src, std::size_t count,           \
                        bool is_signed, std::int32_t* dst);                   \
  void decode_span_int4(const std::uint8_t* src, std::size_t count,           \
                        bool is_signed, std::int32_t* dst);                   \
  void decode_span_int8_biased(const std::uint8_t* src, std::size_t count,    \
                               std::int32_t* dst);                            \
  void decode_span_int4_biased(const std::uint8_t* src, std::size_t count,    \
                               std::int32_t* dst);

namespace base {
#define MAGICUBE_PANEL_VEC MAGICUBE_SIMD_ACTIVE
#define MAGICUBE_PANEL_VEC512 0
#include "simt/panel_kernels.inc"
#undef MAGICUBE_PANEL_VEC
#undef MAGICUBE_PANEL_VEC512
}  // namespace base

#if MAGICUBE_SIMD_ACTIVE && defined(__x86_64__)
#define MAGICUBE_PANEL_AVX2 1
namespace avx2 {
// Defined in tensor_core_avx2.cpp (compiled with -mavx2).
MAGICUBE_PANEL_DECLS
}  // namespace avx2
namespace avx512 {
// Defined in tensor_core_avx512.cpp (compiled with -mavx512{f,bw,dq,vl}).
MAGICUBE_PANEL_DECLS
}  // namespace avx512

inline bool use_avx2() {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
}

inline bool use_avx512() {
  // The 512-bit instantiation leans on F (64-byte vectors), BW/DQ (byte and
  // dword lane ops in the decode paths) and VL (mixed-width epilogues), so
  // all four must be present — Skylake-SP and later server parts.
  static const bool supported = __builtin_cpu_supports("avx512f") != 0 &&
                                __builtin_cpu_supports("avx512bw") != 0 &&
                                __builtin_cpu_supports("avx512dq") != 0 &&
                                __builtin_cpu_supports("avx512vl") != 0;
  return supported;
}
#else
#define MAGICUBE_PANEL_AVX2 0
#endif

#if MAGICUBE_SIMD_ACTIVE && defined(__aarch64__)
#define MAGICUBE_PANEL_NEON 1
namespace neon {
// Defined in tensor_core_neon.cpp. AArch64 mandates Advanced SIMD, so the
// instantiation is selected unconditionally — no runtime probe.
MAGICUBE_PANEL_DECLS
}  // namespace neon
#else
#define MAGICUBE_PANEL_NEON 0
#endif

#undef MAGICUBE_PANEL_DECLS

}  // namespace panel_detail

// Per-call dispatch: widest available ISA first. Every instantiation is
// bit-exact mod 2^32 with the scalar fallback, so the choice is purely a
// throughput decision.
#if MAGICUBE_PANEL_AVX2
#define MAGICUBE_PANEL_DISPATCH(call)                                  \
  do {                                                                 \
    if (panel_detail::use_avx512()) return panel_detail::avx512::call; \
    if (panel_detail::use_avx2()) return panel_detail::avx2::call;     \
    return panel_detail::base::call;                                   \
  } while (0)
#elif MAGICUBE_PANEL_NEON
#define MAGICUBE_PANEL_DISPATCH(call) return panel_detail::neon::call
#else
#define MAGICUBE_PANEL_DISPATCH(call) return panel_detail::base::call
#endif

bool simd_enabled() { return MAGICUBE_SIMD_ACTIVE != 0; }

void mma_panel(std::uint32_t* acc, const DecodedFrag& a,
               const std::int32_t* b, int n) {
  MAGICUBE_DCHECK(n > 0 && n % 8 == 0);
  MAGICUBE_PANEL_DISPATCH(mma_panel(acc, a, b, n));
}

void mma_panel_n64(std::uint32_t* acc, const DecodedFrag& a,
                   const std::int32_t* b, int rows) {
  MAGICUBE_DCHECK(rows > 0 && rows <= 8);
  MAGICUBE_PANEL_DISPATCH(mma_panel_n64(acc, a, b, rows));
}

void fused_decode_mma_n64(std::uint32_t* acc, const DecodedFrag& a,
                          const std::uint8_t* const* rows, int k_count,
                          bool int4, bool b_signed) {
  MAGICUBE_DCHECK(k_count >= 0 && k_count <= 32);
  MAGICUBE_PANEL_DISPATCH(
      fused_decode_mma_n64(acc, a, rows, k_count, int4, b_signed));
}

void colsum_update(const std::int32_t* row, std::int64_t* colsum,
                   std::size_t n) {
  MAGICUBE_PANEL_DISPATCH(colsum_update(row, colsum, n));
}

void epilogue_combine(std::int64_t* total, const std::uint32_t* acc_row,
                      std::int64_t weight, std::size_t n) {
  MAGICUBE_PANEL_DISPATCH(epilogue_combine(total, acc_row, weight, n));
}

void epilogue_combine_biased(std::int64_t* total, const std::uint32_t* acc_row,
                             const std::int64_t* colsum, std::int64_t bias,
                             std::int64_t weight, std::size_t n) {
  MAGICUBE_PANEL_DISPATCH(
      epilogue_combine_biased(total, acc_row, colsum, bias, weight, n));
}

std::int32_t dot_wrap(const std::int32_t* a, const std::int32_t* b,
                      std::size_t k, std::int32_t acc) {
  MAGICUBE_PANEL_DISPATCH(dot_wrap(a, b, k, acc));
}

void decode_span_int8(const std::uint8_t* src, std::size_t count,
                      bool is_signed, std::int32_t* dst) {
  MAGICUBE_PANEL_DISPATCH(decode_span_int8(src, count, is_signed, dst));
}

void decode_span_int4(const std::uint8_t* src, std::size_t count,
                      bool is_signed, std::int32_t* dst) {
  MAGICUBE_DCHECK(count % 2 == 0);
  MAGICUBE_PANEL_DISPATCH(decode_span_int4(src, count, is_signed, dst));
}

void decode_span_int8_biased(const std::uint8_t* src, std::size_t count,
                             std::int32_t* dst) {
  MAGICUBE_PANEL_DISPATCH(decode_span_int8_biased(src, count, dst));
}

void decode_span_int4_biased(const std::uint8_t* src, std::size_t count,
                             std::int32_t* dst) {
  MAGICUBE_DCHECK(count % 2 == 0);
  MAGICUBE_PANEL_DISPATCH(decode_span_int4_biased(src, count, dst));
}

WarpReg make_a_frag_int8(const Matrix<std::uint8_t>& a) {
  MAGICUBE_CHECK(a.rows() == 8 && a.cols() == 16);
  WarpReg frag{};
  for (int lane = 0; lane < 32; ++lane) {
    const std::size_t row = static_cast<std::size_t>(lane / 4);
    const std::size_t c0 = static_cast<std::size_t>(4 * (lane % 4));
    std::uint32_t reg = 0;
    for (int e = 0; e < 4; ++e) {
      reg |= static_cast<std::uint32_t>(a(row, c0 + static_cast<std::size_t>(e)))
             << (8 * e);
    }
    frag[lane] = reg;
  }
  return frag;
}

WarpReg make_b_frag_int8(const Matrix<std::uint8_t>& b) {
  MAGICUBE_CHECK(b.rows() == 16 && b.cols() == 8);
  WarpReg frag{};
  for (int lane = 0; lane < 32; ++lane) {
    const std::size_t col = static_cast<std::size_t>(lane / 4);
    const std::size_t r0 = static_cast<std::size_t>(4 * (lane % 4));
    std::uint32_t reg = 0;
    for (int e = 0; e < 4; ++e) {
      reg |= static_cast<std::uint32_t>(b(r0 + static_cast<std::size_t>(e), col))
             << (8 * e);
    }
    frag[lane] = reg;
  }
  return frag;
}

WarpReg make_a_frag_int4(const Matrix<std::uint8_t>& a) {
  MAGICUBE_CHECK(a.rows() == 8 && a.cols() == 32);
  WarpReg frag{};
  for (int lane = 0; lane < 32; ++lane) {
    const std::size_t row = static_cast<std::size_t>(lane / 4);
    const std::size_t c0 = static_cast<std::size_t>(8 * (lane % 4));
    std::uint32_t reg = 0;
    for (int e = 0; e < 8; ++e) {
      reg |= (static_cast<std::uint32_t>(
                  a(row, c0 + static_cast<std::size_t>(e))) &
              0xfu)
             << (4 * e);
    }
    frag[lane] = reg;
  }
  return frag;
}

WarpReg make_b_frag_int4(const Matrix<std::uint8_t>& b) {
  MAGICUBE_CHECK(b.rows() == 32 && b.cols() == 8);
  WarpReg frag{};
  for (int lane = 0; lane < 32; ++lane) {
    const std::size_t col = static_cast<std::size_t>(lane / 4);
    const std::size_t r0 = static_cast<std::size_t>(8 * (lane % 4));
    std::uint32_t reg = 0;
    for (int e = 0; e < 8; ++e) {
      reg |= (static_cast<std::uint32_t>(
                  b(r0 + static_cast<std::size_t>(e), col)) &
              0xfu)
             << (4 * e);
    }
    frag[lane] = reg;
  }
  return frag;
}

Matrix<std::int32_t> accum_to_matrix(const AccumFrag& frag) {
  Matrix<std::int32_t> m(8, 8);
  for (int lane = 0; lane < 32; ++lane) {
    const std::size_t row = static_cast<std::size_t>(lane / 4);
    const std::size_t c0 = static_cast<std::size_t>(2 * (lane % 4));
    m(row, c0) = frag.c[lane][0];
    m(row, c0 + 1) = frag.c[lane][1];
  }
  return m;
}

AccumFrag matrix_to_accum(const Matrix<std::int32_t>& m) {
  MAGICUBE_CHECK(m.rows() == 8 && m.cols() == 8);
  AccumFrag frag;
  for (int lane = 0; lane < 32; ++lane) {
    const std::size_t row = static_cast<std::size_t>(lane / 4);
    const std::size_t c0 = static_cast<std::size_t>(2 * (lane % 4));
    frag.c[lane][0] = m(row, c0);
    frag.c[lane][1] = m(row, c0 + 1);
  }
  return frag;
}

WarpReg shfl_xor(const WarpReg& v, int lane_mask, KernelCounters& counters) {
  WarpReg out{};
  for (int lane = 0; lane < 32; ++lane) out[lane] = v[lane ^ lane_mask];
  counters.shfl_ops += 1;
  return out;
}

}  // namespace magicube::simt
