#pragma once
// Converts counted hardware events into time on the simulated device.
//
// The model is a multi-resource roofline plus two serial terms:
//
//   T = max( T_mma, T_smem, T_alu, T_shfl, T_fp32, T_L2, T_DRAM )
//       + T_exposed_latency + launches * launch_overhead
//
// SM-level resources (mma pipes, shared memory, CUDA-core ALU/shuffle) are
// divided over the SMs an occupancy model says can be used, with wave
// quantization (a grid of 120 blocks on 108 SMs takes two waves at one
// block/SM). L2 and DRAM are device-wide. Exposed memory latency models the
// dependent load->use chain of each pipeline step; software pipelining
// (Algorithm 1 of the paper) reduces the chain to the cold-start step, which
// is exactly the mechanism by which the prefetch variant wins in Fig. 11.
//
// This is not a cycle-accurate simulator; it is an event-driven analytical
// model whose *inputs* (transactions, conflicts, mma issues, step counts)
// come from faithfully simulated kernels. The paper's conclusions are about
// those inputs, so the comparative shapes survive the abstraction.

#include <cstdint>

#include "simt/counters.hpp"
#include "simt/device_spec.hpp"

namespace magicube::simt {

struct LaunchConfig {
  std::uint64_t grid_blocks = 1;
  int warps_per_block = 2;
  std::uint64_t smem_bytes_per_block = 0;
};

/// Dependent-step structure of the kernel, for the latency term.
struct PipelineShape {
  /// Sum over blocks of the number of serial accumulation steps
  /// (nnz/BSk for SpMM, K/BSk for SDDMM).
  std::uint64_t total_steps = 0;
  /// True when the kernel double-buffers (Algorithm 1): global-memory
  /// latency is overlapped with mma except for each block's cold start.
  bool prefetch = false;
};

/// Everything the cost model needs about one kernel invocation.
struct KernelRun {
  LaunchConfig launch;
  PipelineShape pipeline;
  KernelCounters counters;
  int kernel_launches = 1;

  KernelRun& merge(const KernelRun& o) {
    // Used by multi-kernel schedules (e.g. emulated precisions issuing one
    // kernel per plane, or end-to-end layers); geometry of the first run is
    // kept for occupancy, steps and counters accumulate.
    pipeline.total_steps += o.pipeline.total_steps;
    counters += o.counters;
    kernel_launches += o.kernel_launches;
    return *this;
  }
};

struct CostBreakdown {
  double mma_cycles = 0;
  double smem_cycles = 0;
  double alu_cycles = 0;
  double shfl_cycles = 0;
  double dispatch_cycles = 0;  // per-block bucket-kernel selection overhead
  double fp32_cycles = 0;
  double l2_cycles = 0;
  double dram_cycles = 0;
  double roofline_cycles = 0;   // max of the above
  double latency_cycles = 0;    // exposed dependent-load latency
  double launch_seconds = 0;    // host-side launch overhead
  double total_seconds = 0;

  int blocks_per_sm = 1;   // occupancy result
  double waves = 1.0;      // grid waves over the device
  const char* bottleneck = "";
};

/// Occupancy: how many blocks of this shape fit one SM.
int blocks_per_sm(const DeviceSpec& dev, const LaunchConfig& cfg);

/// Full cost estimate for one kernel run.
CostBreakdown estimate_cost(const DeviceSpec& dev, const KernelRun& run);

/// Convenience: seconds only.
double estimate_seconds(const DeviceSpec& dev, const KernelRun& run);

}  // namespace magicube::simt
