#pragma once
// Grid launcher: executes the thread blocks of a simulated kernel in
// parallel on the host, giving each block private shared memory and a
// private counter set, then reduces counters deterministically.
//
// run_grid is templated on the block body (no std::function indirection on
// the per-block call); run_grid_values is the execution-plan fast path's
// launcher — no per-block SharedMemory or counter allocation, because a
// value-only replay takes its counters from the plan.

#include <cstdint>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "simt/cost_model.hpp"
#include "simt/memory.hpp"

namespace magicube::simt {

/// Per-block execution context handed to the kernel body.
struct BlockContext {
  std::size_t block_id = 0;
  SharedMemory smem;
  KernelCounters counters;

  explicit BlockContext(std::size_t id, std::size_t smem_bytes)
      : block_id(id), smem(smem_bytes) {}
};

/// Runs `body` once per block of the grid (in parallel over host threads;
/// bodies must only write disjoint outputs) and returns the merged KernelRun.
/// The caller fills in the pipeline shape afterwards.
template <typename Body>
KernelRun run_grid(const LaunchConfig& cfg, Body&& body) {
  std::vector<KernelCounters> per_block(cfg.grid_blocks);
  parallel_for(cfg.grid_blocks, [&](std::size_t b) {
    BlockContext ctx(b, cfg.smem_bytes_per_block);
    body(ctx);
    per_block[b] = ctx.counters;
  });

  KernelRun run;
  run.launch = cfg;
  for (const auto& c : per_block) run.counters += c;
  return run;
}

/// Value-only grid: runs `body(block_id)` once per block with no per-block
/// context, shared-memory image or counter reduction. Bodies must only
/// write disjoint outputs and are expected to reuse thread-local scratch.
template <typename Body>
void run_grid_values(std::uint64_t grid_blocks, Body&& body) {
  parallel_for(static_cast<std::size_t>(grid_blocks),
               [&](std::size_t b) { body(b); });
}

}  // namespace magicube::simt
