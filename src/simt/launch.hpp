#pragma once
// Grid launcher: executes the thread blocks of a simulated kernel in
// parallel on the host, giving each block private shared memory and a
// private counter set, then reduces counters deterministically.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/thread_pool.hpp"
#include "simt/cost_model.hpp"
#include "simt/memory.hpp"

namespace magicube::simt {

/// Per-block execution context handed to the kernel body.
struct BlockContext {
  std::size_t block_id = 0;
  SharedMemory smem;
  KernelCounters counters;

  explicit BlockContext(std::size_t id, std::size_t smem_bytes)
      : block_id(id), smem(smem_bytes) {}
};

/// Runs `body` once per block of the grid (in parallel over host threads;
/// bodies must only write disjoint outputs) and returns the merged KernelRun.
/// The caller fills in the pipeline shape afterwards.
inline KernelRun run_grid(const LaunchConfig& cfg,
                          const std::function<void(BlockContext&)>& body) {
  std::vector<KernelCounters> per_block(cfg.grid_blocks);
  parallel_for(cfg.grid_blocks, [&](std::size_t b) {
    BlockContext ctx(b, cfg.smem_bytes_per_block);
    body(ctx);
    per_block[b] = ctx.counters;
  });

  KernelRun run;
  run.launch = cfg;
  for (const auto& c : per_block) run.counters += c;
  return run;
}

}  // namespace magicube::simt
