#include "simt/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace magicube::simt {

int blocks_per_sm(const DeviceSpec& dev, const LaunchConfig& cfg) {
  MAGICUBE_CHECK(cfg.warps_per_block > 0);
  int by_warps = dev.max_warps_per_sm / cfg.warps_per_block;
  int by_smem = cfg.smem_bytes_per_block == 0
                    ? dev.max_blocks_per_sm
                    : static_cast<int>(dev.smem_bytes_per_sm /
                                       cfg.smem_bytes_per_block);
  int bps = std::min({dev.max_blocks_per_sm, by_warps, by_smem});
  return std::max(1, bps);
}

CostBreakdown estimate_cost(const DeviceSpec& dev, const KernelRun& run) {
  const KernelCounters& c = run.counters;
  CostBreakdown out;

  out.blocks_per_sm = blocks_per_sm(dev, run.launch);
  const double device_blocks =
      static_cast<double>(dev.sm_count) * out.blocks_per_sm;
  out.waves = std::max(
      1.0, std::ceil(static_cast<double>(run.launch.grid_blocks) /
                     device_blocks));

  // SM-level resources: total resource-cycles divided over the SMs actually
  // used, inflated by wave quantization (a partially filled last wave leaves
  // SMs idle but still takes a full wave of time for the blocks it runs).
  // Effective parallelism for SM-level resources: blocks spread evenly over
  // SMs, so time = per-block cycles x the largest per-SM block count, i.e.
  // spread = grid / ceil(grid / sm_count). Extra resident blocks (bps > 1)
  // share an SM's throughput, so they improve latency hiding (below) but not
  // the roofline terms.
  const double grid = static_cast<double>(run.launch.grid_blocks);
  const double rounds = std::ceil(grid / dev.sm_count);
  const double spread = std::max(1.0, grid / std::max(1.0, rounds));

  // alu_ops / shfl_ops count warp-level instructions (32 lanes each);
  // fp32_ops counts scalar lane-ops (epilogues are counted element-wise).
  const double mma_cycle_units =
      static_cast<double>(c.mma_int8) * 2048.0 / dev.int8_ops_per_sm_cycle +
      static_cast<double>(c.mma_int4) * 4096.0 / dev.int4_ops_per_sm_cycle +
      static_cast<double>(c.mma_fp16) * 4096.0 / dev.fp16_ops_per_sm_cycle;
  out.mma_cycles = mma_cycle_units / spread;
  out.smem_cycles = static_cast<double>(c.smem_transactions()) / spread;
  // Every memory request costs one warp-wide address-generation/issue
  // instruction on the CUDA cores in addition to the counted data movement.
  const double addr_gen_instrs = static_cast<double>(
      c.smem_load_requests + c.smem_store_requests + c.gmem_load_requests +
      c.gmem_store_requests);
  out.alu_cycles = (static_cast<double>(c.alu_ops) + addr_gen_instrs) * 32.0 /
                   dev.int32_alu_ops_per_sm_cycle / spread;
  out.shfl_cycles = static_cast<double>(c.shfl_ops) * 32.0 /
                    dev.shfl_ops_per_sm_cycle / spread;
  out.fp32_cycles = static_cast<double>(c.fp32_ops) /
                    dev.fp32_ops_per_sm_cycle / spread;

  // Bucket-kernel dispatch: each plan-classified block pays a small
  // per-block selection/setup cost on the issue pipe, weighted by how much
  // control overhead its kernel body retains (the generic body keeps all
  // runtime loop bounds; fused paths branch once). Runs with no bucket
  // counters (simulate mode, pre-bucket plans) are unaffected.
  static constexpr double kSpmmDispatchCycles[kSpmmBucketKinds] = {
      4.0,  // generic: runtime panel width + plane loops
      2.0,  // fixed64: fixed-width panels, runtime plane loops
      3.0,  // stacked: fixed-width panels + short-group tail handling
      1.0,  // fused: single fused decode+mma loop
      1.0,  // empty: early exit
  };
  static constexpr double kSddmmDispatchCycles[kSddmmBucketKinds] = {
      3.0,  // generic: plane cross-product loops
      1.0,  // fused_single: single plane pair, weight applied once
      3.0,  // tail: generic body with the valid bound
  };
  double dispatch_units = 0;
  for (std::size_t i = 0; i < kSpmmBucketKinds; ++i) {
    dispatch_units += static_cast<double>(c.spmm_bucket_blocks[i]) *
                      kSpmmDispatchCycles[i];
  }
  for (std::size_t i = 0; i < kSddmmBucketKinds; ++i) {
    dispatch_units += static_cast<double>(c.sddmm_bucket_blocks[i]) *
                      kSddmmDispatchCycles[i];
  }
  out.dispatch_cycles = dispatch_units / spread;

  // Device-wide memory levels. All counted sectors travel over L2; DRAM sees
  // the compulsory bytes the kernel reported.
  const double l2_bytes = static_cast<double>(c.gmem_sectors()) *
                          dev.gmem_sector_bytes;
  out.l2_cycles = l2_bytes / (dev.l2_bytes_per_sm_cycle() * dev.sm_count);
  out.dram_cycles = static_cast<double>(c.dram_bytes) /
                    (dev.dram_bytes_per_sm_cycle() * dev.sm_count);

  // CUDA-core instructions (ALU, shuffles), shared-memory transaction
  // replays and bucket-dispatch overhead contend for the same SM issue/LSU
  // bandwidth, so they compose additively into one "issue" resource; tensor
  // cores, the fp32 pipe and the memory levels run concurrently with it.
  const double issue_cycles =
      out.smem_cycles + out.alu_cycles + out.shfl_cycles + out.dispatch_cycles;
  const struct {
    const char* name;
    double cycles;
  } resources[] = {
      {"mma", out.mma_cycles},   {"issue", issue_cycles},
      {"fp32", out.fp32_cycles}, {"l2", out.l2_cycles},
      {"dram", out.dram_cycles},
  };
  out.roofline_cycles = 0;
  out.bottleneck = "none";
  for (const auto& r : resources) {
    if (r.cycles > out.roofline_cycles) {
      out.roofline_cycles = r.cycles;
      out.bottleneck = r.name;
    }
  }

  // Exposed dependent-load latency. Each pipeline step issues a global load
  // whose result the same block consumes; concurrent blocks/warps on the SM
  // hide most of it. With prefetching only each block's cold start remains.
  const double resident_warps =
      static_cast<double>(out.blocks_per_sm) * run.launch.warps_per_block;
  const double chains =
      run.pipeline.prefetch
          ? static_cast<double>(run.launch.grid_blocks)  // cold starts
          : static_cast<double>(run.pipeline.total_steps);
  out.latency_cycles = chains * dev.gmem_latency_cycles /
                       std::max(1.0, resident_warps) / spread;

  out.launch_seconds =
      run.kernel_launches * dev.kernel_launch_overhead_us * 1e-6;

  out.total_seconds =
      dev.cycles_to_seconds(out.roofline_cycles + out.latency_cycles) +
      out.launch_seconds;
  return out;
}

double estimate_seconds(const DeviceSpec& dev, const KernelRun& run) {
  return estimate_cost(dev, run).total_seconds;
}

}  // namespace magicube::simt
