#pragma once
// Simulated shared memory (banked, conflict-counting) and global-memory
// coalescing analysis.
//
// Shared memory on Ampere is organized as 32 banks of 4 bytes; a warp-level
// access is serialized into one transaction per distinct 32-bit word per
// bank, with same-word broadcast served in a single transaction. The padded
// layout of the paper's Fig. 4 exists precisely to make every warp access a
// single transaction; the "basic" kernel variant of Fig. 11 uses the
// unpadded layout and the conflicts are *counted here*, not assumed.
//
// Global-memory requests coalesce into 32-byte sectors: a warp access costs
// one transaction per distinct sector touched by its 32 lanes (CUDA C++
// Programming Guide, "Device Memory Accesses").

#include <array>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "simt/counters.hpp"

namespace magicube::simt {

/// Address value meaning "lane inactive" in warp-wide accesses.
inline constexpr std::size_t kInactiveLane = std::numeric_limits<std::size_t>::max();

using LaneAddrs = std::array<std::size_t, 32>;
using LaneWords = std::array<std::uint32_t, 32>;

/// Number of shared-memory transactions needed to serve one warp-wide access
/// of one 32-bit word per lane (the only access width the kernels use; wider
/// vector accesses are issued as multiple 32-bit phases by the caller).
std::uint32_t smem_transactions_for(const LaneAddrs& word_addrs,
                                    int banks = 32);

/// Number of 32-byte sectors touched by a warp access of `bytes_per_lane`
/// bytes at the given byte addresses (inactive lanes = kInactiveLane).
std::uint32_t gmem_sectors_for(const LaneAddrs& byte_addrs, int bytes_per_lane,
                               int sector_bytes = 32);

/// Per-thread-block shared memory with bank-conflict accounting. Storage is
/// interpreted as an array of 32-bit words, as on the device.
class SharedMemory {
 public:
  explicit SharedMemory(std::size_t bytes)
      : words_((bytes + 3) / 4, 0u), byte_size_(bytes) {}

  std::size_t byte_size() const { return byte_size_; }

  /// Warp-wide 32-bit load; addrs are *word* indices; inactive lanes pass
  /// kInactiveLane and receive 0.
  LaneWords ld32(const LaneAddrs& word_addrs, KernelCounters& c) const {
    LaneWords out{};
    bool any = false;
    for (int lane = 0; lane < 32; ++lane) {
      if (word_addrs[lane] == kInactiveLane) continue;
      MAGICUBE_DCHECK(word_addrs[lane] < words_.size());
      out[lane] = words_[word_addrs[lane]];
      any = true;
    }
    if (any) {
      c.smem_load_requests += 1;
      c.smem_load_transactions += smem_transactions_for(word_addrs);
    }
    return out;
  }

  /// Warp-wide 32-bit store.
  void st32(const LaneAddrs& word_addrs, const LaneWords& vals,
            KernelCounters& c) {
    bool any = false;
    for (int lane = 0; lane < 32; ++lane) {
      if (word_addrs[lane] == kInactiveLane) continue;
      MAGICUBE_DCHECK(word_addrs[lane] < words_.size());
      words_[word_addrs[lane]] = vals[lane];
      any = true;
    }
    if (any) {
      c.smem_store_requests += 1;
      c.smem_store_transactions += smem_transactions_for(word_addrs);
    }
  }

  /// Direct (uncounted) word access for test inspection and block epilogues
  /// whose cost is attributed elsewhere.
  std::uint32_t peek(std::size_t word) const {
    MAGICUBE_DCHECK(word < words_.size());
    return words_[word];
  }
  void poke(std::size_t word, std::uint32_t v) {
    MAGICUBE_DCHECK(word < words_.size());
    words_[word] = v;
  }

 private:
  std::vector<std::uint32_t> words_;
  std::size_t byte_size_;
};

/// Counts a warp-wide global load of `bytes_per_lane` per active lane from
/// byte addresses within one allocation. The functional copy is done by the
/// caller; this only does the transaction accounting.
inline void count_gmem_load(const LaneAddrs& byte_addrs, int bytes_per_lane,
                            KernelCounters& c) {
  c.gmem_load_requests += 1;
  c.gmem_load_sectors += gmem_sectors_for(byte_addrs, bytes_per_lane);
}

inline void count_gmem_store(const LaneAddrs& byte_addrs, int bytes_per_lane,
                             KernelCounters& c) {
  c.gmem_store_requests += 1;
  c.gmem_store_sectors += gmem_sectors_for(byte_addrs, bytes_per_lane);
}

}  // namespace magicube::simt
