#pragma once
// Hardware-event counters collected while a simulated kernel executes.
//
// Every simulated instruction stream increments these; the cost model in
// cost_model.hpp converts them into time. Counters are kept per thread block
// during execution (blocks run in parallel on the host) and reduced after
// the grid finishes, so totals are deterministic.

#include <array>
#include <cstdint>

namespace magicube::simt {

/// Replay-kernel bucket kinds tracked by the per-bucket dispatch counters.
/// The indices are defined by core::PanelKernelId / core::SddmmKernelId
/// (static_asserted there); counters.hpp only fixes the array widths so the
/// simt layer stays below the plan layer.
inline constexpr int kSpmmBucketKinds = 5;
inline constexpr int kSddmmBucketKinds = 3;

struct KernelCounters {
  // Tensor-core mma instruction counts by operand precision.
  std::uint64_t mma_int8 = 0;   // m8n8k16 (2048 integer ops each)
  std::uint64_t mma_int4 = 0;   // m8n8k32 (4096 integer ops each)
  std::uint64_t mma_fp16 = 0;   // m16n8k16 (4096 flops each)

  // Shared memory: requests are warp-level instructions; transactions are
  // bank-serialized cycles (transactions > requests means bank conflicts).
  std::uint64_t smem_load_requests = 0;
  std::uint64_t smem_load_transactions = 0;
  std::uint64_t smem_store_requests = 0;
  std::uint64_t smem_store_transactions = 0;

  // Global memory, counted in 32-byte sectors that reach L2. DRAM traffic is
  // the compulsory subset (first touch of each sector, assuming the working
  // set fits L2 — asserted by the kernels that use this).
  std::uint64_t gmem_load_requests = 0;
  std::uint64_t gmem_load_sectors = 0;
  std::uint64_t gmem_store_requests = 0;
  std::uint64_t gmem_store_sectors = 0;
  std::uint64_t dram_bytes = 0;

  // CUDA-core work: 32-bit integer ALU ops (mask/shift/or of the online
  // transpose, pointer math is excluded as it overlaps), warp shuffles,
  // fp32 ops (softmax, dequantize epilogues), and barriers.
  std::uint64_t alu_ops = 0;
  std::uint64_t shfl_ops = 0;
  std::uint64_t fp32_ops = 0;
  std::uint64_t syncthreads = 0;

  // Replay-kernel bucket dispatch: blocks executed per specialized panel
  // micro-kernel, recorded analytically by the plan builders (and mirrored
  // by the estimators so pricing stays plan/estimate-exact). The simulated
  // reference kernel has no replay dispatch, so these are *excluded* from
  // operator== — the estimate-equals-execute invariant compares hardware
  // events only — but participate in += / *= and in the cost model's
  // dispatch term.
  std::array<std::uint64_t, kSpmmBucketKinds> spmm_bucket_blocks{};
  std::array<std::uint64_t, kSddmmBucketKinds> sddmm_bucket_blocks{};

  KernelCounters& operator+=(const KernelCounters& o) {
    mma_int8 += o.mma_int8;
    mma_int4 += o.mma_int4;
    mma_fp16 += o.mma_fp16;
    smem_load_requests += o.smem_load_requests;
    smem_load_transactions += o.smem_load_transactions;
    smem_store_requests += o.smem_store_requests;
    smem_store_transactions += o.smem_store_transactions;
    gmem_load_requests += o.gmem_load_requests;
    gmem_load_sectors += o.gmem_load_sectors;
    gmem_store_requests += o.gmem_store_requests;
    gmem_store_sectors += o.gmem_store_sectors;
    dram_bytes += o.dram_bytes;
    alu_ops += o.alu_ops;
    shfl_ops += o.shfl_ops;
    fp32_ops += o.fp32_ops;
    syncthreads += o.syncthreads;
    for (int i = 0; i < kSpmmBucketKinds; ++i) {
      spmm_bucket_blocks[static_cast<std::size_t>(i)] +=
          o.spmm_bucket_blocks[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < kSddmmBucketKinds; ++i) {
      sddmm_bucket_blocks[static_cast<std::size_t>(i)] +=
          o.sddmm_bucket_blocks[static_cast<std::size_t>(i)];
    }
    return *this;
  }

  friend KernelCounters operator+(KernelCounters a, const KernelCounters& b) {
    a += b;
    return a;
  }

  /// Scales every event count by `f` — the "this block repeats f times"
  /// reduction used by the analytic estimators and execution plans (e.g.
  /// one SpMM row's block counted once per column tile).
  KernelCounters& operator*=(std::uint64_t f) {
    mma_int8 *= f;
    mma_int4 *= f;
    mma_fp16 *= f;
    smem_load_requests *= f;
    smem_load_transactions *= f;
    smem_store_requests *= f;
    smem_store_transactions *= f;
    gmem_load_requests *= f;
    gmem_load_sectors *= f;
    gmem_store_requests *= f;
    gmem_store_sectors *= f;
    dram_bytes *= f;
    alu_ops *= f;
    shfl_ops *= f;
    fp32_ops *= f;
    syncthreads *= f;
    for (auto& b : spmm_bucket_blocks) b *= f;
    for (auto& b : sddmm_bucket_blocks) b *= f;
    return *this;
  }

  /// Hardware-event equality only: the bucket dispatch counters are replay
  /// metadata the simulated kernel cannot produce, so they stay outside the
  /// estimate-equals-execute comparison.
  friend bool operator==(const KernelCounters& a, const KernelCounters& b) {
    return a.mma_int8 == b.mma_int8 && a.mma_int4 == b.mma_int4 &&
           a.mma_fp16 == b.mma_fp16 &&
           a.smem_load_requests == b.smem_load_requests &&
           a.smem_load_transactions == b.smem_load_transactions &&
           a.smem_store_requests == b.smem_store_requests &&
           a.smem_store_transactions == b.smem_store_transactions &&
           a.gmem_load_requests == b.gmem_load_requests &&
           a.gmem_load_sectors == b.gmem_load_sectors &&
           a.gmem_store_requests == b.gmem_store_requests &&
           a.gmem_store_sectors == b.gmem_store_sectors &&
           a.dram_bytes == b.dram_bytes && a.alu_ops == b.alu_ops &&
           a.shfl_ops == b.shfl_ops && a.fp32_ops == b.fp32_ops &&
           a.syncthreads == b.syncthreads;
  }

  std::uint64_t smem_transactions() const {
    return smem_load_transactions + smem_store_transactions;
  }
  std::uint64_t gmem_sectors() const {
    return gmem_load_sectors + gmem_store_sectors;
  }
  /// Bank-conflict overhead factor (1.0 = conflict-free).
  double smem_conflict_factor() const {
    const std::uint64_t req = smem_load_requests + smem_store_requests;
    return req == 0 ? 1.0
                    : static_cast<double>(smem_transactions()) /
                          static_cast<double>(req);
  }
};

}  // namespace magicube::simt
