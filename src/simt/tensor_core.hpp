#pragma once
// Bit-exact warp-level Matrix Multiply-Accumulate (mma) primitives.
//
// Implements the two integer shapes Magicube uses (paper Table III,
// smallest-shape choices highlighted there):
//
//   mma.m8n8k16  — int8 operands, 8x16 (row-major A) * 16x8 (col-major B)
//                  accumulated into 8x8 int32.
//   mma.m8n8k32  — int4 operands, 8x32 * 32x8 into 8x8 int32.
//
// Fragment ownership matches PTX / the paper's Fig. 1 exactly:
//   A: lane t holds row t/4, elements e*(t%4) .. e*(t%4)+e-1  (e = 4 or 8)
//   B: lane t holds col t/4, rows    e*(t%4) .. e*(t%4)+e-1
//   C: lane t holds row t/4, cols    2*(t%4) .. 2*(t%4)+1     (int32 each)
// where each lane's A/B elements are packed into one 32-bit register,
// element 0 in the least-significant byte/nibble.
//
// Signed x unsigned operand combinations are supported, as on the hardware
// (PTX allows .s8/.u8 and .s4/.u4 independently per operand); the mixed-
// precision emulation of §IV-D depends on this.

#include <array>
#include <cstdint>

#include "common/matrix.hpp"
#include "common/packed.hpp"
#include "simt/counters.hpp"

namespace magicube::simt {

/// One 32-bit register per lane of a warp.
using WarpReg = std::array<std::uint32_t, 32>;

/// Accumulator fragment: two int32 per lane (8x8 tile).
struct AccumFrag {
  std::array<std::array<std::int32_t, 2>, 32> c{};

  void fill(std::int32_t v) {
    for (auto& lane : c) lane = {v, v};
  }
  friend bool operator==(const AccumFrag&, const AccumFrag&) = default;
};

/// D = A(8x16 int8) * B(16x8 int8) + C. Counts one int8 mma issue.
void mma_m8n8k16(AccumFrag& d, const WarpReg& a, const WarpReg& b,
                 const AccumFrag& c, bool a_signed, bool b_signed,
                 KernelCounters& counters);

/// D = A(8x32 int4) * B(32x8 int4) + C. Counts one int4 mma issue.
void mma_m8n8k32(AccumFrag& d, const WarpReg& a, const WarpReg& b,
                 const AccumFrag& c, bool a_signed, bool b_signed,
                 KernelCounters& counters);

/// Uncounted mma primitives for the execution-plan fast path. A DecodedFrag
/// holds the logical elements of one operand fragment (A row-major 8 x K or
/// B col-major K x 8) unpacked from the packed lane registers once, so a
/// fragment reused across several mma issues — stacked plane groups, the
/// emulation plane cross product, both warps of a block — pays decode once
/// instead of once per issue. K = 16 (int8) or 32 (int4).
struct DecodedFrag {
  std::array<std::array<std::int32_t, 32>, 8> v{};  // [row-or-col][k]
  int k = 16;
};

void decode_frag_int8(const WarpReg& frag, bool is_signed, DecodedFrag& out);
void decode_frag_int4(const WarpReg& frag, bool is_signed, DecodedFrag& out);

/// acc += A * B over decoded fragments, with identical int32 wraparound
/// semantics to the counted mma (the k sum is carried in int64 before the
/// single wrapping store, so any summation order is bit-exact).
void mma_decoded(AccumFrag& acc, const DecodedFrag& a, const DecodedFrag& b);

// ---- Fragment <-> logical-matrix converters (tests, kernel epilogues) ----

/// Builds the A fragment of m8n8k16 from a logical 8x16 matrix of raw bytes.
WarpReg make_a_frag_int8(const Matrix<std::uint8_t>& a8x16);
/// Builds the B fragment of m8n8k16 from a logical 16x8 matrix of raw bytes.
WarpReg make_b_frag_int8(const Matrix<std::uint8_t>& b16x8);
/// Builds the A fragment of m8n8k32 from a logical 8x32 matrix of raw nibbles.
WarpReg make_a_frag_int4(const Matrix<std::uint8_t>& a8x32);
/// Builds the B fragment of m8n8k32 from a logical 32x8 matrix of raw nibbles.
WarpReg make_b_frag_int4(const Matrix<std::uint8_t>& b32x8);

/// Expands an accumulator fragment into the logical 8x8 int32 tile.
Matrix<std::int32_t> accum_to_matrix(const AccumFrag& frag);
/// Packs a logical 8x8 int32 tile into an accumulator fragment.
AccumFrag matrix_to_accum(const Matrix<std::int32_t>& m8x8);

// ---- Warp shuffle -------------------------------------------------------

/// __shfl_xor_sync over a full warp: lane i receives the value of lane
/// i ^ lane_mask. Counts one shuffle instruction.
WarpReg shfl_xor(const WarpReg& v, int lane_mask, KernelCounters& counters);

}  // namespace magicube::simt
