#pragma once
// Bit-exact warp-level Matrix Multiply-Accumulate (mma) primitives.
//
// Implements the two integer shapes Magicube uses (paper Table III,
// smallest-shape choices highlighted there):
//
//   mma.m8n8k16  — int8 operands, 8x16 (row-major A) * 16x8 (col-major B)
//                  accumulated into 8x8 int32.
//   mma.m8n8k32  — int4 operands, 8x32 * 32x8 into 8x8 int32.
//
// Fragment ownership matches PTX / the paper's Fig. 1 exactly:
//   A: lane t holds row t/4, elements e*(t%4) .. e*(t%4)+e-1  (e = 4 or 8)
//   B: lane t holds col t/4, rows    e*(t%4) .. e*(t%4)+e-1
//   C: lane t holds row t/4, cols    2*(t%4) .. 2*(t%4)+1     (int32 each)
// where each lane's A/B elements are packed into one 32-bit register,
// element 0 in the least-significant byte/nibble.
//
// Signed x unsigned operand combinations are supported, as on the hardware
// (PTX allows .s8/.u8 and .s4/.u4 independently per operand); the mixed-
// precision emulation of §IV-D depends on this.

#include <array>
#include <cstdint>

#include "common/matrix.hpp"
#include "common/packed.hpp"
#include "simt/counters.hpp"

namespace magicube::simt {

/// One 32-bit register per lane of a warp.
using WarpReg = std::array<std::uint32_t, 32>;

/// Accumulator fragment: two int32 per lane (8x8 tile).
struct AccumFrag {
  std::array<std::array<std::int32_t, 2>, 32> c{};

  void fill(std::int32_t v) {
    for (auto& lane : c) lane = {v, v};
  }
  friend bool operator==(const AccumFrag&, const AccumFrag&) = default;
};

/// D = A(8x16 int8) * B(16x8 int8) + C. Counts one int8 mma issue.
void mma_m8n8k16(AccumFrag& d, const WarpReg& a, const WarpReg& b,
                 const AccumFrag& c, bool a_signed, bool b_signed,
                 KernelCounters& counters);

/// D = A(8x32 int4) * B(32x8 int4) + C. Counts one int4 mma issue.
void mma_m8n8k32(AccumFrag& d, const WarpReg& a, const WarpReg& b,
                 const AccumFrag& c, bool a_signed, bool b_signed,
                 KernelCounters& counters);

/// Uncounted mma primitives for the execution-plan fast path. A DecodedFrag
/// holds the logical elements of one operand fragment (A row-major 8 x K or
/// B col-major K x 8) unpacked from the packed lane registers once, so a
/// fragment reused across several mma issues — stacked plane groups, the
/// emulation plane cross product, both warps of a block — pays decode once
/// instead of once per issue. K = 16 (int8) or 32 (int4).
struct DecodedFrag {
  std::array<std::array<std::int32_t, 32>, 8> v{};  // [row-or-col][k]
  int k = 16;
};

void decode_frag_int8(const WarpReg& frag, bool is_signed, DecodedFrag& out);
void decode_frag_int4(const WarpReg& frag, bool is_signed, DecodedFrag& out);

/// acc += A * B over decoded fragments, with identical int32 wraparound
/// semantics to the counted mma (the k sum is carried in int64 before the
/// single wrapping store, so any summation order is bit-exact).
void mma_decoded(AccumFrag& acc, const DecodedFrag& a, const DecodedFrag& b);

// ---- Block-panel micro-kernel (execution-plan replay) --------------------
//
// The panel replay engine trades the per-fragment register dance for plain
// blocked-GEMM loops: one decoded A tile (8 x K, the DecodedFrag layout)
// multiplies a decoded B *panel* spanning several adjacent 8-column mma
// tiles in one pass, accumulating straight into a row-major C panel. All
// arithmetic is mod-2^32 (unsigned wraparound), which is bit-exact with any
// chaining of the counted mma / mma_decoded issues it replaces: truncation
// mod 2^32 is a ring homomorphism, so the grouping of the k reduction and
// the per-issue truncations cannot change the stored accumulator bits.
//
// The kernels are written with fixed trip counts over k and fixed 8-wide
// column blocks so the compiler can keep the C strip in vector registers.
// When the MAGICUBE_SIMD build option is on, explicit GCC/Clang
// vector-extension specializations (8 x 32-bit lanes) are compiled in;
// the scalar fallback produces identical bits on any toolchain.

/// Whether the explicit SIMD micro-kernel specializations are compiled in
/// (the MAGICUBE_SIMD CMake option on a GCC/Clang toolchain).
bool simd_enabled();

/// C[8 x n] += A[8 x k] * B[k x n]: `acc` row-major 8 x n wrapping uint32
/// accumulators, `a` a decoded fragment (k = a.k in {16, 32}), `b` a
/// decoded row-major k x n panel. n % 8 == 0. Bit-exact with issuing
/// mma_decoded over the n/8 column tiles of the panel.
void mma_panel(std::uint32_t* acc, const DecodedFrag& a,
               const std::int32_t* b, int n);

// Bucket-specialized panel kernels (plan-time replay dispatch). The plan
// builder classifies every block row into a kernel bucket; the replay
// engines call these instead of the generic mma_panel when the bucket's
// shape guarantees hold. All are bit-exact mod 2^32 with mma_panel.

/// Fixed-width variant of mma_panel for the bsn == 64 buckets: n is a
/// compile-time 64 and only the first `rows` panel rows (1..8) are updated.
/// The active rows of a partial stacked plane group always form a prefix,
/// so the row limit is the entire tail handling.
void mma_panel_n64(std::uint32_t* acc, const DecodedFrag& a,
                   const std::int32_t* b, int rows);

/// Fused decode+mma over one reduction step at fixed width 64 — the
/// dominant single-group/single-plane bucket. `rows[k]` points at the
/// packed bytes of reduction row k's 64-column span (nullptr for a padded
/// slot, which is skipped: a zero row contributes exactly 0 mod 2^32).
/// k_count <= 32. `int4` selects the 4-bit decode, `b_signed` the
/// signedness, matching decode_span_int8/int4.
void fused_decode_mma_n64(std::uint32_t* acc, const DecodedFrag& a,
                          const std::uint8_t* const* rows, int k_count,
                          bool int4, bool b_signed);

/// colsum[c] += row[c] at int64 width over `n` columns — the vectorized
/// bias-correction column-sum update. Exact integer arithmetic.
void colsum_update(const std::int32_t* row, std::int64_t* colsum,
                   std::size_t n);

/// total[c] += weight * (int32)acc_row[c] over `n` columns — the panel
/// epilogue's weighted fold of one plane group's partial products into the
/// exact int64 running total.
void epilogue_combine(std::int64_t* total, const std::uint32_t* acc_row,
                      std::int64_t weight, std::size_t n);

/// total[c] += weight * ((int32)acc_row[c] - bias * colsum[c]) — the
/// signed-LHS bias-corrected variant of epilogue_combine.
void epilogue_combine_biased(std::int64_t* total, const std::uint32_t* acc_row,
                             const std::int64_t* colsum, std::int64_t bias,
                             std::int64_t weight, std::size_t n);

/// Wrapping dot product over `k` decoded elements: returns
/// acc + sum_i a[i] * b[i] mod 2^32 — the SDDMM panel kernel, bit-exact
/// with chaining counted mma issues over the stride tiles of one output.
std::int32_t dot_wrap(const std::int32_t* a, const std::int32_t* b,
                      std::size_t k, std::int32_t acc);

/// Decode `count` packed 8-bit elements (the PackedBuffer byte layout)
/// into int32, sign-extending when `is_signed`.
void decode_span_int8(const std::uint8_t* src, std::size_t count,
                      bool is_signed, std::int32_t* dst);
/// Decode `count` packed 4-bit elements (low nibble first within each
/// byte, the PackedBuffer layout) into int32. count % 2 == 0.
void decode_span_int4(const std::uint8_t* src, std::size_t count,
                      bool is_signed, std::int32_t* dst);
/// Bias-encoded decodes of the stacked signed top plane (§IV-D): the raw
/// two's-complement chunk becomes its excess-2^(b-1) representation
/// (raw ^ msb read unsigned, i.e. signed value + 2^(b-1)).
void decode_span_int8_biased(const std::uint8_t* src, std::size_t count,
                             std::int32_t* dst);
void decode_span_int4_biased(const std::uint8_t* src, std::size_t count,
                             std::int32_t* dst);

// ---- Fragment <-> logical-matrix converters (tests, kernel epilogues) ----

/// Builds the A fragment of m8n8k16 from a logical 8x16 matrix of raw bytes.
WarpReg make_a_frag_int8(const Matrix<std::uint8_t>& a8x16);
/// Builds the B fragment of m8n8k16 from a logical 16x8 matrix of raw bytes.
WarpReg make_b_frag_int8(const Matrix<std::uint8_t>& b16x8);
/// Builds the A fragment of m8n8k32 from a logical 8x32 matrix of raw nibbles.
WarpReg make_a_frag_int4(const Matrix<std::uint8_t>& a8x32);
/// Builds the B fragment of m8n8k32 from a logical 32x8 matrix of raw nibbles.
WarpReg make_b_frag_int4(const Matrix<std::uint8_t>& b32x8);

/// Expands an accumulator fragment into the logical 8x8 int32 tile.
Matrix<std::int32_t> accum_to_matrix(const AccumFrag& frag);
/// Packs a logical 8x8 int32 tile into an accumulator fragment.
AccumFrag matrix_to_accum(const Matrix<std::int32_t>& m8x8);

// ---- Warp shuffle -------------------------------------------------------

/// __shfl_xor_sync over a full warp: lane i receives the value of lane
/// i ^ lane_mask. Counts one shuffle instruction.
WarpReg shfl_xor(const WarpReg& v, int lane_mask, KernelCounters& counters);

}  // namespace magicube::simt
