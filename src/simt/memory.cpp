#include "simt/memory.hpp"

#include <algorithm>

namespace magicube::simt {

std::uint32_t smem_transactions_for(const LaneAddrs& word_addrs, int banks) {
  // For each bank, count the number of *distinct* words accessed; the warp
  // access replays once per extra distinct word in the most-contended bank.
  // Broadcast (several lanes reading the same word) costs one transaction.
  std::uint32_t worst = 0;
  std::array<std::size_t, 32> seen{};  // distinct words per bank, small N
  std::array<std::array<std::size_t, 32>, 32> words{};
  std::array<std::uint32_t, 32> counts{};
  counts.fill(0);
  for (int lane = 0; lane < 32; ++lane) {
    const std::size_t w = word_addrs[lane];
    if (w == kInactiveLane) continue;
    const int bank = static_cast<int>(w % static_cast<std::size_t>(banks));
    bool dup = false;
    for (std::uint32_t i = 0; i < counts[bank]; ++i) {
      if (words[bank][i] == w) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      words[bank][counts[bank]] = w;
      counts[bank] += 1;
    }
  }
  (void)seen;
  for (int b = 0; b < banks; ++b) worst = std::max(worst, counts[b]);
  return worst == 0 ? 0 : worst;
}

std::uint32_t gmem_sectors_for(const LaneAddrs& byte_addrs, int bytes_per_lane,
                               int sector_bytes) {
  // Distinct 32-byte sectors across the union of all lanes' byte ranges.
  std::array<std::size_t, 32 * 8> sectors{};
  std::size_t n = 0;
  for (int lane = 0; lane < 32; ++lane) {
    if (byte_addrs[lane] == kInactiveLane) continue;
    const std::size_t first = byte_addrs[lane] / sector_bytes;
    const std::size_t last =
        (byte_addrs[lane] + static_cast<std::size_t>(bytes_per_lane) - 1) /
        sector_bytes;
    for (std::size_t s = first; s <= last; ++s) {
      bool dup = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (sectors[i] == s) {
          dup = true;
          break;
        }
      }
      if (!dup) sectors[n++] = s;
    }
  }
  return static_cast<std::uint32_t>(n);
}

}  // namespace magicube::simt
