#pragma once
// Device description for the simulated GPU.
//
// All cost-model calibration constants live here and nowhere else. Defaults
// describe an NVIDIA A100-SXM4-40GB, taken from public documentation:
//   - 108 SMs at 1.41 GHz
//   - tensor-core peaks: 312 TFLOP/s fp16, 624 TOP/s int8, 1248 TOP/s int4
//     (Table II of the paper gives tensor-core + CUDA-core totals; the cost
//     model uses the tensor-core share, which is where mma executes)
//   - 192 KB combined L1/shared per SM (164 KB usable as shared memory)
//   - 40 MB L2 at ~4 TB/s, 1555 GB/s HBM2e
// `bench/table2_peak_validation` checks that dense mma streams driven through
// the cost model reach these peaks, so every other experiment inherits a
// validated calibration.

#include <cstdint>
#include <string>

namespace magicube::simt {

struct DeviceSpec {
  std::string name = "A100-SXM4-40GB (simulated)";

  // Execution geometry.
  int sm_count = 108;
  double clock_ghz = 1.41;
  int warp_size = 32;
  int max_warps_per_sm = 64;
  int max_blocks_per_sm = 32;
  std::uint64_t smem_bytes_per_sm = 164 * 1024;

  // Per-SM per-cycle issue rates, derived from the published peaks:
  //   peak_ops = sm_count * clock * ops_per_sm_cycle.
  // fp16: 312 TFLOP/s -> 2048 FLOP/SM/cycle (m16n8k16 mma = 4096 FLOP).
  // int8: 624 TOP/s -> 4096 IOP/SM/cycle (m8n8k16 mma = 2048 IOP).
  // int4: 1248 TOP/s -> 8192 IOP/SM/cycle (m8n8k32 mma = 4096 IOP).
  double fp16_ops_per_sm_cycle = 2048.0;
  double int8_ops_per_sm_cycle = 4096.0;
  double int4_ops_per_sm_cycle = 8192.0;

  // CUDA-core pipes.
  double int32_alu_ops_per_sm_cycle = 64.0;
  double shfl_ops_per_sm_cycle = 32.0;
  double fp32_ops_per_sm_cycle = 64.0;

  // Shared memory: 32 banks x 4 bytes, one transaction per cycle per SM.
  int smem_banks = 32;
  double smem_bytes_per_sm_cycle = 128.0;

  // Memory system. Sector = L2 cache line granularity seen by an SM request.
  int gmem_sector_bytes = 32;
  double l2_bandwidth_gbps = 4000.0;
  double dram_bandwidth_gbps = 1555.0;
  std::uint64_t l2_capacity_bytes = 40ull * 1024 * 1024;
  std::uint64_t dram_capacity_bytes = 40ull * 1024 * 1024 * 1024;

  // Latency of a dependent global-memory access chain, and how much of it a
  // kernel without software pipelining exposes (divided by resident warps).
  double gmem_latency_cycles = 400.0;

  // Fixed host-side cost of launching one kernel (driver + runtime). This is
  // what makes tiny kernels flat-line in TOP/s plots, for Magicube and the
  // vendor baselines alike.
  double kernel_launch_overhead_us = 3.5;

  double cycles_to_seconds(double cycles) const {
    return cycles / (clock_ghz * 1e9);
  }

  // Derived per-SM-cycle DRAM / L2 bytes, used by the roofline composition.
  double dram_bytes_per_sm_cycle() const {
    return dram_bandwidth_gbps * 1e9 / (sm_count * clock_ghz * 1e9);
  }
  double l2_bytes_per_sm_cycle() const {
    return l2_bandwidth_gbps * 1e9 / (sm_count * clock_ghz * 1e9);
  }
};

/// The default simulated device (A100). Benches and tests share it so every
/// number in EXPERIMENTS.md refers to one calibration.
inline const DeviceSpec& a100() {
  static const DeviceSpec spec{};
  return spec;
}

/// A small edge-accelerator spec (Jetson-Orin-class: 16 Ampere SMs at a
/// lower clock behind LPDDR5). Per-SM per-cycle issue rates match the
/// A100's Ampere SM; the fleet-level gap comes from SM count, clock and
/// the memory system. The heterogeneous DevicePool's counterweight to
/// a100() in tests, benches and examples — placement should price a run
/// roughly an order of magnitude slower here.
inline const DeviceSpec& edge() {
  static const DeviceSpec spec = [] {
    DeviceSpec s;
    s.name = "Edge-16SM (simulated)";
    s.sm_count = 16;
    s.clock_ghz = 0.93;
    s.l2_bandwidth_gbps = 900.0;
    s.dram_bandwidth_gbps = 204.8;
    s.l2_capacity_bytes = 4ull * 1024 * 1024;
    s.dram_capacity_bytes = 16ull * 1024 * 1024 * 1024;
    return s;
  }();
  return spec;
}

}  // namespace magicube::simt
