// Example: inference through a magnitude-pruned, quantized MLP layer —
// the "forward pass of a pruned model" workload of §IV-B.
//
// A dense fp32 weight matrix is magnitude-pruned to 1-D blocks at a target
// sparsity, quantized to int8, and applied to a batch of activations with
// Magicube SpMM. The example reports the end-to-end numerical error against
// the dense fp32 layer and the modeled speedup over the dense fp16 GEMM.

#include <cmath>
#include <cstdio>
#include <numeric>

#include "baselines/dense_gemm.hpp"
#include "core/api.hpp"

using namespace magicube;

namespace {

/// Magnitude pruning with V x 1 granularity: keep the (1-sparsity) fraction
/// of column vectors with the largest L2 norm in each vector row.
sparse::BlockPattern prune_to_blocks(const Matrix<float>& w, int v,
                                     double sparsity) {
  sparse::BlockPattern p;
  p.rows = w.rows();
  p.cols = w.cols();
  p.vector_length = v;
  p.row_ptr.assign(p.vector_rows() + 1, 0);
  const std::size_t keep = static_cast<std::size_t>(
      std::lround((1.0 - sparsity) * static_cast<double>(w.cols())));
  std::vector<std::pair<float, std::uint32_t>> norms(w.cols());
  for (std::size_t r = 0; r < p.vector_rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      float nrm = 0.0f;
      for (int rb = 0; rb < v; ++rb) {
        const float x = w(r * static_cast<std::size_t>(v) +
                              static_cast<std::size_t>(rb),
                          c);
        nrm += x * x;
      }
      norms[c] = {nrm, static_cast<std::uint32_t>(c)};
    }
    std::partial_sort(norms.begin(), norms.begin() + static_cast<long>(keep),
                      norms.end(), [](auto a, auto b) { return a > b; });
    std::vector<std::uint32_t> cols(keep);
    for (std::size_t i = 0; i < keep; ++i) cols[i] = norms[i].second;
    std::sort(cols.begin(), cols.end());
    p.col_idx.insert(p.col_idx.end(), cols.begin(), cols.end());
    p.row_ptr[r + 1] = static_cast<std::uint32_t>(p.col_idx.size());
  }
  p.validate();
  return p;
}

}  // namespace

int main() {
  Rng rng(123);
  const std::size_t out_dim = 512, in_dim = 1024, batch = 128;
  Matrix<float> w(out_dim, in_dim);
  fill_normal(w, rng, 0.05);
  Matrix<float> x(in_dim, batch);
  fill_normal(x, rng, 1.0);

  std::printf("pruned MLP layer: [%zu x %zu] weights, batch %zu\n\n",
              out_dim, in_dim, batch);
  std::printf("%-9s %-9s %12s %12s %14s\n", "sparsity", "V", "rel.err",
              "time (us)", "vs dense fp16");
  const double dense_secs = simt::estimate_seconds(
      simt::a100(),
      baselines::dense_gemm_fp16_estimate(out_dim, batch, in_dim));

  for (double sparsity : {0.7, 0.9, 0.95}) {
    for (int v : {4, 8}) {
      const auto pattern = prune_to_blocks(w, v, sparsity);
      // Quantize the surviving weights and the activations to int8.
      const auto pw =
          quant::choose_symmetric(w.data(), w.size(), Scalar::s8);
      const auto px =
          quant::choose_symmetric(x.data(), x.size(), Scalar::s8);
      Matrix<std::int32_t> wq(out_dim, in_dim, 0);
      const auto mask = sparse::pattern_to_dense_mask(pattern);
      for (std::size_t i = 0; i < w.size(); ++i) {
        if (mask.data()[i]) {
          wq.data()[i] = quant::quantize_value(w.data()[i], pw);
        }
      }
      Matrix<std::int32_t> xq(in_dim, batch);
      for (std::size_t i = 0; i < x.size(); ++i) {
        xq.data()[i] = quant::quantize_value(x.data()[i], px);
      }

      core::SpmmConfig cfg;
      cfg.precision = precision::L8R8;
      const auto a = core::prepare_spmm_lhs(pattern, wq, cfg.precision,
                                            core::needs_shuffle(cfg));
      const auto b = core::prepare_spmm_rhs(xq, cfg.precision);
      const auto result = core::spmm(a, b, cfg);

      // Dequantize and compare against the dense fp32 layer.
      const float deq = pw.scale * px.scale;
      double err = 0.0, ref_norm = 0.0;
      for (std::size_t i = 0; i < out_dim; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
          float ref = 0.0f;
          for (std::size_t kk = 0; kk < in_dim; ++kk) {
            ref += w(i, kk) * x(kk, j);
          }
          const float got = static_cast<float>(result.c(i, j)) * deq;
          err += (got - ref) * (got - ref);
          ref_norm += ref * ref;
        }
      }
      const double secs = simt::estimate_seconds(simt::a100(), result.run);
      std::printf("%-9.2f %-9d %12.4f %12.2f %13.2fx\n", sparsity, v,
                  std::sqrt(err / ref_norm), secs * 1e6, dense_secs / secs);
    }
  }
  std::printf(
      "\nHigher sparsity costs accuracy (pruning error) but buys latency —\n"
      "above ~0.7 sparsity the quantized sparse kernel beats dense fp16.\n");
  return 0;
}
