// Quickstart: quantized SpMM with Magicube in five steps.
//
//   1. describe the sparsity pattern (V x 1 column-vector blocks),
//   2. prepare the LHS in SR-BCRS (with plane decomposition + shuffling as
//      the precision pair requires),
//   3. prepare the dense RHS,
//   4. run the kernel (bit-exact result + hardware-event counters),
//   5. ask the A100 cost model what the kernel would cost on device.

#include <cstdio>

#include "core/api.hpp"

using namespace magicube;

int main() {
  Rng rng(42);

  // A 256 x 512 sparse weight matrix at 80% sparsity with 8x1 blocks,
  // multiplied into a 512 x 128 int8 activation matrix.
  const std::size_t m = 256, k = 512, n = 128;
  const auto pattern = sparse::make_uniform_pattern(m, k, /*V=*/8, 0.8, rng);
  std::printf("pattern: %zux%zu, V=%d, sparsity %.2f, %zu nonzeros\n",
              pattern.rows, pattern.cols, pattern.vector_length,
              pattern.sparsity(), pattern.nnz());

  core::SpmmConfig cfg;
  cfg.precision = precision::L8R8;          // try L16R8, L8R4, L4R4, ...
  cfg.variant = core::SpmmVariant::full;    // all paper optimizations on

  const auto a_vals = core::random_values(m, k, cfg.precision.lhs, rng);
  const auto b_vals = core::random_values(k, n, cfg.precision.rhs, rng);
  const auto a = core::prepare_spmm_lhs(pattern, a_vals, cfg.precision,
                                        core::needs_shuffle(cfg));
  const auto b = core::prepare_spmm_rhs(b_vals, cfg.precision);

  const core::SpmmResult result = core::spmm(a, b, cfg);

  // The result is bit-exact: compare against the scalar reference.
  const auto expect = core::reference_spmm(pattern, a_vals, b_vals);
  std::printf("result matches scalar reference: %s\n",
              result.c == expect ? "yes" : "NO");

  // What did the kernel do, and what would it cost on an A100?
  const auto& c = result.run.counters;
  std::printf("mma issues: %llu int8  |  smem conflict factor: %.2f\n",
              static_cast<unsigned long long>(c.mma_int8),
              c.smem_conflict_factor());
  const auto cost = simt::estimate_cost(simt::a100(), result.run);
  std::printf("modeled time: %.2f us (bottleneck: %s)\n",
              cost.total_seconds * 1e6, cost.bottleneck);
  std::printf("useful throughput: %.2f TOP/s\n",
              static_cast<double>(core::spmm_useful_ops(pattern, n)) /
                  cost.total_seconds / 1e12);
  return 0;
}
