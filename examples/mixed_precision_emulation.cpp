// Example: algebraic mixed-precision emulation (paper §IV-D).
//
// Walks through the plane decomposition of signed integers (top chunk
// signed, lower chunks unsigned), shows that every emulated SpMM precision
// pair reproduces the exact integer product, and demonstrates the
// tensor-core utilization win of *stacked* mma for short vectors
// (Fig. 10b): with V=4, the two planes of an L16-R8 operand share one mma.

#include <cstdio>

#include "core/api.hpp"

using namespace magicube;

int main() {
  // 1. Scalar decomposition, exactly the paper's example: -19 = -2*16 + 13.
  std::int32_t chunks[4];
  quant::decompose_value(-19, Scalar::s8, 4, chunks);
  std::printf("decompose(-19, s8 -> 4-bit chunks): lo=%d (unsigned), hi=%d "
              "(signed); check: %d*16 + %d = %d\n\n",
              chunks[0], chunks[1], chunks[1], chunks[0],
              chunks[1] * 16 + chunks[0]);

  // 2. Every emulated pair is exact.
  Rng rng(99);
  const std::size_t m = 64, k = 96, n = 128;
  const auto pattern = sparse::make_uniform_pattern(m, k, 8, 0.7, rng);
  const PrecisionPair pairs[] = {precision::L16R16, precision::L16R8,
                                 precision::L16R4,  precision::L12R4,
                                 precision::L8R4};
  std::printf("%-8s %-7s %-9s %-10s %s\n", "pair", "planes", "datapath",
              "mma/step", "exact?");
  for (const auto prec : pairs) {
    core::SpmmConfig cfg;
    cfg.precision = prec;
    const auto a_vals = core::random_values(m, k, prec.lhs, rng);
    const auto b_vals = core::random_values(k, n, prec.rhs, rng);
    const auto a = core::prepare_spmm_lhs(pattern, a_vals, prec,
                                          core::needs_shuffle(cfg));
    const auto b = core::prepare_spmm_rhs(b_vals, prec);
    const auto result = core::spmm(a, b, cfg);
    const bool exact =
        result.c == core::reference_spmm(pattern, a_vals, b_vals);
    const auto est = core::spmm_estimate(pattern, n, cfg);
    const std::uint64_t mma =
        est.counters.mma_int8 + est.counters.mma_int4;
    std::printf("%-8s %-7zu %-9s %-10llu %s\n", to_string(prec).c_str(),
                a.plane_count(),
                core::stride_for(prec) == 32 ? "int4" : "int8",
                static_cast<unsigned long long>(mma),
                exact ? "yes" : "NO");
  }

  // 3. Stacking: V=4 L16-R8 packs both planes into one mma (Fig. 10b),
  //    matching V=8's mma-per-nonzero efficiency.
  std::printf("\nstacked mma utilization (L16-R8):\n");
  for (int v : {8, 4, 2}) {
    Rng prng(5);
    const auto p = sparse::make_uniform_pattern(
        static_cast<std::size_t>(v) * 16, k, v, 0.5, prng);
    core::SpmmConfig cfg;
    cfg.precision = precision::L16R8;
    const auto est = core::spmm_estimate(p, n, cfg);
    std::printf("  V=%d: %6llu mma for %6zu nonzeros  (%.4f mma/nnz)\n", v,
                static_cast<unsigned long long>(est.counters.mma_int8),
                p.nnz(),
                static_cast<double>(est.counters.mma_int8) /
                    static_cast<double>(p.nnz()));
  }
  std::printf("Without stacking V=4 would need 2x the mma per nonzero.\n");
  return 0;
}
