// Example: a quantized sparse self-attention layer (paper Fig. 16).
//
// Builds a sliding-window + global-token attention mask, runs one attention
// head under every execution scheme — dense fp16, vectorSparse fp16, and the
// Magicube quantized pipelines — and reports both the numerical drift
// against the fp32 reference and the modeled device latency of each
// schedule.

#include <cmath>
#include <cstdio>

#include "simt/cost_model.hpp"
#include "transformer/attention.hpp"
#include "transformer/ops.hpp"

using namespace magicube;
using namespace magicube::transformer;

namespace {

// fp32 masked-attention reference.
Matrix<float> reference_attention(const Matrix<float>& q,
                                  const Matrix<float>& k,
                                  const Matrix<float>& v,
                                  const sparse::BlockPattern& mask) {
  const std::size_t l = q.rows(), dk = q.cols();
  Matrix<float> scores = matmul_transposed_b(q, k);
  const auto dense = sparse::pattern_to_dense_mask(mask);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  for (std::size_t i = 0; i < l; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      scores(i, j) = dense(i, j) ? scores(i, j) * scale : -1e30f;
    }
  }
  softmax_rows(scores, false);
  return matmul(scores, v);
}

}  // namespace

int main() {
  const std::size_t seq_len = 256, dk = 64;
  Rng rng(7);
  const auto mask = sparse::make_attention_mask_pattern(seq_len, 8, 0.9, rng);
  std::printf("mask: %zux%zu, sparsity %.3f (%zu nonzeros)\n\n", mask.rows,
              mask.cols, mask.sparsity(), mask.nnz());

  Matrix<float> q(seq_len, dk), k(seq_len, dk), v(seq_len, dk);
  fill_normal(q, rng, 0.5);
  fill_normal(k, rng, 0.5);
  fill_normal(v, rng, 0.5);
  const auto ref = reference_attention(q, k, v, mask);

  const AttentionScheme schemes[] = {
      AttentionScheme::dense_fp16,      AttentionScheme::vector_sparse_fp16,
      AttentionScheme::magicube_16b_8b, AttentionScheme::magicube_8b_8b,
      AttentionScheme::magicube_8b_4b,  AttentionScheme::magicube_4b_4b};
  std::printf("%-22s %14s %14s %10s\n", "scheme", "mean |err|",
              "max |err|", "time (us)");
  for (const auto scheme : schemes) {
    std::vector<simt::KernelRun> runs;
    const auto out = attention_forward(q, k, v, mask, scheme, &runs);
    double mean_err = 0.0, max_err = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double e = std::fabs(out.data()[i] - ref.data()[i]);
      mean_err += e;
      max_err = std::max(max_err, e);
    }
    mean_err /= static_cast<double>(out.size());
    double secs = 0.0;
    for (const auto& r : runs) secs += simt::estimate_seconds(simt::a100(), r);
    std::printf("%-22s %14.5f %14.5f %10.2f\n", to_string(scheme), mean_err,
                max_err, secs * 1e6);
  }
  std::printf(
      "\nLower precision trades a little numerical fidelity for latency —\n"
      "the trade Table V and Fig. 17 of the paper quantify at scale.\n");
  return 0;
}
