// Serving: multi-client Transformer-layer traffic through the batched
// inference engine.
//
// Three client threads fire the kernel mix of a pruned Transformer encoder
// layer at the engine: the Q/K/V/output projections are sparse-weight SpMM
// (one shared activation batch per client step, so the quantized RHS is
// reused across the four projections), and the attention-score SDDMM runs
// the sparse mask at a second precision. The engine groups compatible
// requests into batches and amortizes all weight preparation through the
// operand cache — watch the hit rate climb to ~1 as the layer weights stay
// resident.

#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/api.hpp"

using namespace magicube;

namespace {

constexpr std::size_t kDim = 128;    // model width == K
constexpr std::size_t kSeq = 128;    // tokens per client step == N
constexpr int kClients = 3;
constexpr int kStepsPerClient = 6;

struct Layer {
  // One pattern + weight per projection (Q, K, V, O).
  std::vector<std::shared_ptr<const sparse::BlockPattern>> proj_patterns;
  std::vector<std::shared_ptr<const Matrix<std::int32_t>>> proj_weights;
  std::shared_ptr<const sparse::BlockPattern> attn_mask;  // seq x seq
};

Layer make_layer(Rng& rng) {
  Layer layer;
  for (int p = 0; p < 4; ++p) {
    layer.proj_patterns.push_back(
        std::make_shared<const sparse::BlockPattern>(
            sparse::make_uniform_pattern(kDim, kDim, 8, 0.8, rng)));
    layer.proj_weights.push_back(
        std::make_shared<const Matrix<std::int32_t>>(
            core::random_values(kDim, kDim, Scalar::s8, rng)));
  }
  layer.attn_mask = std::make_shared<const sparse::BlockPattern>(
      sparse::make_attention_mask_pattern(kSeq, 8, 0.85, rng));
  return layer;
}

}  // namespace

int main() {
  Rng rng(0x5e12e);
  const std::vector<Layer> layers = {make_layer(rng), make_layer(rng)};

  serve::BatchSchedulerConfig cfg;
  cfg.max_batch = 8;
  cfg.linger = std::chrono::microseconds(200);
  serve::BatchScheduler engine(cfg);

  std::printf("serving %d clients x %d steps over %zu encoder layers "
              "(d=%zu, seq=%zu)\n",
              kClients, kStepsPerClient, layers.size(), kDim, kSeq);

  std::vector<std::thread> clients;
  std::vector<int> served(kClients, 0);
  // Execution-plan reuse accounting: a plan may be built during a client's
  // first step (10 distinct pattern/op plans exist across the two layers;
  // concurrent first steps can race-build), but from the second step on
  // every request must replay a cached plan — layer plans are built once.
  std::vector<int> plan_builds(kClients, 0);
  std::vector<int> late_plan_builds(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng client_rng(0xc11e07 + static_cast<std::uint64_t>(c));
      for (int step = 0; step < kStepsPerClient; ++step) {
        std::vector<std::future<serve::Response>> futures;
        for (std::size_t li = 0; li < layers.size(); ++li) {
          const Layer& layer = layers[li];
          // One activation batch feeds all four projections of this step:
          // the engine reuses its quantized form via rhs_id.
          const auto acts = std::make_shared<const Matrix<std::int32_t>>(
              core::random_values(kDim, kSeq, Scalar::s8, client_rng));
          const std::uint64_t acts_id =
              1 + static_cast<std::uint64_t>(c * 1000 + step * 10 +
                                             static_cast<int>(li));
          for (int p = 0; p < 4; ++p) {
            serve::Request req;
            req.op = serve::OpKind::spmm;
            req.precision = precision::L8R8;
            req.pattern = layer.proj_patterns[static_cast<std::size_t>(p)];
            req.lhs_values = layer.proj_weights[static_cast<std::size_t>(p)];
            req.rhs_values = acts;
            req.rhs_id = acts_id;
            futures.push_back(engine.submit(std::move(req)));
          }
          // Attention scores: SDDMM of quantized Q against K^T sampled on
          // the sparse mask, at the layer's second precision (L16-R8).
          serve::Request scores;
          scores.op = serve::OpKind::sddmm;
          scores.precision = precision::L16R8;
          scores.pattern = layer.attn_mask;
          scores.lhs_values = std::make_shared<const Matrix<std::int32_t>>(
              core::random_values(kSeq, kDim, Scalar::s16, client_rng));
          scores.rhs_values = std::make_shared<const Matrix<std::int32_t>>(
              core::random_values(kDim, kSeq, Scalar::s8, client_rng));
          futures.push_back(engine.submit(std::move(scores)));
        }
        for (auto& f : futures) {
          const serve::Response resp = f.get();
          served[c] += 1;
          const bool has_result = resp.op == serve::OpKind::spmm
                                      ? resp.spmm.has_value()
                                      : resp.sddmm.has_value();
          if (!has_result) {
            std::printf("client %d: missing %s result!\n", c,
                        serve::to_string(resp.op));
            std::exit(1);
          }
          if (!resp.plan_cache_hit) {
            plan_builds[c] += 1;
            if (step > 0) late_plan_builds[c] += 1;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  engine.drain();

  int total = 0;
  for (int c = 0; c < kClients; ++c) total += served[c];
  const serve::SchedulerStats ss = engine.stats();
  const serve::CacheStats cs = engine.cache().stats();
  std::printf("requests served: %d (engine: %llu submitted, %llu completed, "
              "%llu failed)\n",
              total, static_cast<unsigned long long>(ss.submitted),
              static_cast<unsigned long long>(ss.completed),
              static_cast<unsigned long long>(ss.failed));
  std::printf("batches: %llu (mean size %.2f, max %llu)\n",
              static_cast<unsigned long long>(ss.batches),
              ss.mean_batch_size(),
              static_cast<unsigned long long>(ss.max_batch_size));
  std::printf("operand cache: %.1f%% hit rate, %zu entries, %.2f MiB "
              "resident (%llu evictions)\n",
              100.0 * cs.hit_rate(), engine.cache().entry_count(),
              static_cast<double>(engine.cache().bytes_cached()) /
                  (1024.0 * 1024.0),
              static_cast<unsigned long long>(cs.evictions));
  int builds = 0, late_builds = 0;
  for (int c = 0; c < kClients; ++c) {
    builds += plan_builds[c];
    late_builds += late_plan_builds[c];
  }
  // 8 projection patterns + 2 attention masks = 10 distinct plans; any
  // build after a client's first step means a plan was rebuilt per call.
  std::printf("execution plans: %d built (>= 10 distinct, first-step races "
              "allowed), %d rebuilt after warmup\n",
              builds, late_builds);
  const bool plans_once = builds >= 10 && late_builds == 0;
  const bool resident = ss.failed == 0 && total > 0 && cs.hit_rate() > 0.5;
  std::printf("weights stayed resident across clients: %s\n",
              resident ? "yes" : "NO");
  std::printf("layer plans built exactly once per pattern: %s\n",
              plans_once ? "yes" : "NO");
  return resident && plans_once ? 0 : 1;
}
