// Serving: multi-client Transformer-layer traffic through the multi-device
// sharded serving engine.
//
// Three client threads fire the kernel mix of a pruned Transformer encoder
// layer at a two-device pool: the Q/K/V/output projections are
// sparse-weight SpMM (one shared activation batch per client step, so the
// quantized RHS is reused across the four projections), the
// attention-score SDDMM runs the sparse mask at a second precision, and
// each client's first step issues one giant "prefill" SpMM whose modeled
// runtime exceeds the shard threshold — the pool splits it row-wise across
// both simulated devices and merges the halves bit-exactly. Placement is
// cost-model driven (least modeled backlog, round-robin on ties); watch
// the per-device stats balance and the cache hit rates climb as the layer
// weights stay resident. Mid-traffic a slower edge-class part enlists via
// add_device() — per-spec placement only routes it work when its modeled
// completion time wins — and the pool's per-request trace log is exported
// as TRACE_serving_example.json at the end.

#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/api.hpp"

using namespace magicube;

namespace {

constexpr std::size_t kDim = 128;    // model width == K
constexpr std::size_t kSeq = 128;    // tokens per client step == N
constexpr int kClients = 3;
constexpr int kStepsPerClient = 6;
constexpr std::size_t kDevices = 2;

struct Layer {
  // One pattern + weight per projection (Q, K, V, O).
  std::vector<std::shared_ptr<const sparse::BlockPattern>> proj_patterns;
  std::vector<std::shared_ptr<const Matrix<std::int32_t>>> proj_weights;
  std::shared_ptr<const sparse::BlockPattern> attn_mask;  // seq x seq
};

Layer make_layer(Rng& rng) {
  Layer layer;
  for (int p = 0; p < 4; ++p) {
    layer.proj_patterns.push_back(
        std::make_shared<const sparse::BlockPattern>(
            sparse::make_uniform_pattern(kDim, kDim, 8, 0.8, rng)));
    layer.proj_weights.push_back(
        std::make_shared<const Matrix<std::int32_t>>(
            core::random_values(kDim, kDim, Scalar::s8, rng)));
  }
  layer.attn_mask = std::make_shared<const sparse::BlockPattern>(
      sparse::make_attention_mask_pattern(kSeq, 8, 0.85, rng));
  return layer;
}

}  // namespace

int main() {
  Rng rng(0x5e12e);
  const std::vector<Layer> layers = {make_layer(rng), make_layer(rng)};

  // One giant embedding-projection weight, shared by every client's first
  // step: modeled runtime ~14 us on the A100 spec, above the 5 us shard
  // threshold configured below, so the pool splits it across both devices.
  const auto giant_pattern = std::make_shared<const sparse::BlockPattern>(
      sparse::make_uniform_pattern(2048, 1024, 8, 0.5, rng));
  const auto giant_weights = std::make_shared<const Matrix<std::int32_t>>(
      core::random_values(2048, 1024, Scalar::s8, rng));

  serve::DevicePoolConfig cfg;
  cfg.device_count = kDevices;
  cfg.shard_threshold_seconds = 5e-6;  // the knob: layer traffic stays whole
  cfg.linger = std::chrono::microseconds(200);
  serve::DevicePool pool(cfg);

  std::printf("serving %d clients x %d steps over %zu encoder layers "
              "(d=%zu, seq=%zu) on %zu simulated devices\n",
              kClients, kStepsPerClient, layers.size(), kDim, kSeq,
              kDevices);

  std::vector<std::thread> clients;
  std::vector<int> served(kClients, 0);
  // Execution-plan reuse accounting: every distinct (pattern, op) plans
  // once in the shared plan cache — 10 layer plans + the giant's sub-plans
  // from the first client to arrive; every later request must replay.
  std::vector<int> plan_builds(kClients, 0);
  std::vector<int> late_plan_builds(kClients, 0);
  std::vector<int> sharded_seen(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng client_rng(0xc11e07 + static_cast<std::uint64_t>(c));
      for (int step = 0; step < kStepsPerClient; ++step) {
        std::vector<std::future<serve::Response>> futures;
        if (step == 0) {
          // Prefill: the giant projection, sharded across the pool.
          serve::Request prefill;
          prefill.op = serve::OpKind::spmm;
          prefill.precision = precision::L8R8;
          prefill.pattern = giant_pattern;
          prefill.lhs_values = giant_weights;
          prefill.rhs_values =
              std::make_shared<const Matrix<std::int32_t>>(
                  core::random_values(1024, kSeq, Scalar::s8, client_rng));
          prefill.priority = 1;  // latency-sensitive: places first
          futures.push_back(pool.submit(std::move(prefill)));
        }
        for (std::size_t li = 0; li < layers.size(); ++li) {
          const Layer& layer = layers[li];
          // One activation batch feeds all four projections of this step:
          // the engine reuses its quantized form via rhs_id.
          const auto acts = std::make_shared<const Matrix<std::int32_t>>(
              core::random_values(kDim, kSeq, Scalar::s8, client_rng));
          const std::uint64_t acts_id =
              1 + static_cast<std::uint64_t>(c * 1000 + step * 10 +
                                             static_cast<int>(li));
          for (int p = 0; p < 4; ++p) {
            serve::Request req;
            req.op = serve::OpKind::spmm;
            req.precision = precision::L8R8;
            req.pattern = layer.proj_patterns[static_cast<std::size_t>(p)];
            req.lhs_values = layer.proj_weights[static_cast<std::size_t>(p)];
            req.rhs_values = acts;
            req.rhs_id = acts_id;
            futures.push_back(pool.submit(std::move(req)));
          }
          // Attention scores: SDDMM of quantized Q against K^T sampled on
          // the sparse mask, at the layer's second precision (L16-R8).
          serve::Request scores;
          scores.op = serve::OpKind::sddmm;
          scores.precision = precision::L16R8;
          scores.pattern = layer.attn_mask;
          scores.lhs_values = std::make_shared<const Matrix<std::int32_t>>(
              core::random_values(kSeq, kDim, Scalar::s16, client_rng));
          scores.rhs_values = std::make_shared<const Matrix<std::int32_t>>(
              core::random_values(kDim, kSeq, Scalar::s8, client_rng));
          futures.push_back(pool.submit(std::move(scores)));
        }
        for (auto& f : futures) {
          const serve::Response resp = f.get();
          served[c] += 1;
          const bool has_result = resp.op == serve::OpKind::spmm
                                      ? resp.spmm.has_value()
                                      : resp.sddmm.has_value();
          if (!has_result) {
            std::printf("client %d: missing %s result!\n", c,
                        serve::to_string(resp.op));
            std::exit(1);
          }
          if (resp.shards > 1) sharded_seen[c] += 1;
          if (!resp.plan_cache_hit) {
            plan_builds[c] += 1;
            if (step > 0) late_plan_builds[c] += 1;
          }
        }
      }
    });
  }
  // Elastic join: a 16-SM edge-class part enlists while the clients are
  // mid-stream. The heterogeneous argmin prices every request per spec, so
  // the slow part only absorbs work when its idle clock beats the A100s'
  // backlog — no configuration change on the client side.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::size_t edge_dev = pool.add_device(simt::edge());
  std::printf("device %zu joined mid-traffic: %s\n", edge_dev,
              pool.device_spec(edge_dev).name.c_str());

  for (auto& t : clients) t.join();
  pool.drain();

  int total = 0, sharded = 0;
  for (int c = 0; c < kClients; ++c) {
    total += served[c];
    sharded += sharded_seen[c];
  }
  const serve::DevicePoolStats ps = pool.stats();
  std::printf("requests served: %d (pool: %llu submitted, %llu completed, "
              "%llu failed; %llu sharded into %llu slices, %llu "
              "round-robin tie-breaks)\n",
              total, static_cast<unsigned long long>(ps.submitted),
              static_cast<unsigned long long>(ps.completed),
              static_cast<unsigned long long>(ps.failed),
              static_cast<unsigned long long>(ps.sharded_requests),
              static_cast<unsigned long long>(ps.shard_slices),
              static_cast<unsigned long long>(ps.tie_breaks));

  serve::CacheStats operand_stats;
  for (std::size_t d = 0; d < pool.device_count(); ++d) {
    const serve::DeviceStats& ds = ps.devices[d];
    const serve::CacheStats cs = pool.device_cache(d).stats();
    operand_stats += cs;
    std::printf("device %zu (%s): %llu placed + %llu slices, modeled busy "
                "%.1f us, cache %.1f%% hits, %.2f MiB resident\n",
                d, pool.device_spec(d).name.c_str(),
                static_cast<unsigned long long>(ds.placed),
                static_cast<unsigned long long>(ds.shard_slices),
                ds.modeled_busy_seconds * 1e6, 100.0 * cs.hit_rate(),
                static_cast<double>(pool.device_cache(d).bytes_cached()) /
                    (1024.0 * 1024.0));
  }
  std::printf("modeled makespan: %.1f us over %.1f us of total device time "
              "(parallel efficiency %.0f%%)\n",
              ps.modeled_makespan_seconds() * 1e6,
              ps.modeled_total_seconds() * 1e6,
              100.0 * ps.modeled_total_seconds() /
                  (ps.modeled_makespan_seconds() *
                   static_cast<double>(pool.device_count())));

  int builds = 0, late_builds = 0;
  for (int c = 0; c < kClients; ++c) {
    builds += plan_builds[c];
    late_builds += late_plan_builds[c];
  }
  // 8 projection patterns + 2 attention masks plan once in the shared plan
  // cache (concurrent first steps may race-build; the cache reconciles),
  // and the giant's first arrival builds its sub-plans (one non-hit
  // response). Any build after a client's first step means a plan was
  // rebuilt per call.
  std::printf("execution plans: %d responses built plans (>= 10 distinct "
              "layer plans + the giant, first-step races allowed), %d "
              "rebuilt after warmup\n",
              builds, late_builds);
  const bool plans_once = builds >= 10 && late_builds == 0;
  const bool resident =
      ps.failed == 0 && total > 0 && operand_stats.hit_rate() > 0.5;
  const bool devices_busy = ps.devices[0].placed + ps.devices[0].shard_slices >
                                0 &&
                            ps.devices[1].placed + ps.devices[1].shard_slices >
                                0;
  std::printf("weights stayed resident across clients: %s\n",
              resident ? "yes" : "NO");
  std::printf("layer plans built exactly once per pattern: %s\n",
              plans_once ? "yes" : "NO");
  std::printf("prefill sharded across devices: %s\n",
              sharded > 0 ? "yes" : "NO");
  std::printf("both devices served traffic: %s\n",
              devices_busy ? "yes" : "NO");

  // Every request carried a structured trace (queue -> price -> place ->
  // [shard] -> replay -> merge spans over modeled time); export the log
  // for offline inspection next to the binary.
  const bool traces_written =
      pool.traces().write_json("TRACE_serving_example.json");
  std::printf("wrote %zu per-request traces to TRACE_serving_example.json: "
              "%s\n",
              pool.traces().size(), traces_written ? "yes" : "NO");
  return resident && plans_once && sharded > 0 && devices_busy &&
                 traces_written
             ? 0
             : 1;
}
