// Unit tests for the common substrate: half-precision conversion, packed
// sub-byte storage, deterministic RNG, and the dense matrix container.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <set>
#include <vector>

#include "common/half.hpp"
#include "common/matrix.hpp"
#include "common/packed.hpp"
#include "common/precision.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace magicube {
namespace {

TEST(Half, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(float(half(static_cast<float>(i))), static_cast<float>(i));
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(half(1.0f).bits(), 0x3c00);
  EXPECT_EQ(half(-2.0f).bits(), 0xc000);
  EXPECT_EQ(half(0.5f).bits(), 0x3800);
  EXPECT_EQ(half(65504.0f).bits(), 0x7bff);  // max finite half
  EXPECT_EQ(half(0.0f).bits(), 0x0000);
}

TEST(Half, OverflowToInfinity) {
  EXPECT_EQ(half(1e6f).bits(), 0x7c00);
  EXPECT_EQ(half(-1e6f).bits(), 0xfc00);
}

TEST(Half, SubnormalRoundTrip) {
  const float smallest = 0x1p-24f;  // smallest positive subnormal
  EXPECT_EQ(float(half(smallest)), smallest);
  EXPECT_EQ(half(smallest * 0.25f).bits(), 0x0000);  // underflow to zero
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half; ties go to
  // even mantissa (1.0).
  EXPECT_EQ(half(1.0f + 0x1p-11f).bits(), half(1.0f).bits());
  // 1 + 3*2^-11 is halfway between the next two; ties to even rounds up.
  EXPECT_EQ(half(1.0f + 3 * 0x1p-11f).bits(),
            static_cast<std::uint16_t>(half(1.0f).bits() + 2));
}

TEST(Half, RoundTripAllFiniteBitPatterns) {
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto h = half::from_bits(static_cast<std::uint16_t>(bits));
    const float f = float(h);
    if (std::isnan(f)) continue;
    EXPECT_EQ(half(f).bits(), h.bits()) << "bits=" << bits;
  }
}

TEST(Packed, SignExtend) {
  EXPECT_EQ(sign_extend(0b1101, 4), -3);
  EXPECT_EQ(sign_extend(0b0101, 4), 5);
  EXPECT_EQ(sign_extend(0xed, 8), -19);
  EXPECT_EQ(sign_extend(0x7fff, 16), 32767);
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
}

TEST(Packed, EncodeDecodeRoundTrip) {
  for (int bits : {4, 8, 12, 16}) {
    const int lo = -(1 << (bits - 1)), hi = (1 << (bits - 1)) - 1;
    for (int v = lo; v <= hi; v += (bits <= 8 ? 1 : 37)) {
      EXPECT_EQ(sign_extend(encode_twos_complement(v, bits), bits), v);
    }
  }
}

class PackedBufferTest : public ::testing::TestWithParam<Scalar> {};

TEST_P(PackedBufferTest, SetGetRoundTrip) {
  const Scalar type = GetParam();
  Rng rng(7);
  PackedBuffer buf(257, type);
  std::vector<std::int32_t> expect(257);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    expect[i] = static_cast<std::int32_t>(
        rng.next_in(min_value(type), max_value(type)));
    buf.set(i, expect[i]);
  }
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf.get(i), expect[i]) << "i=" << i;
  }
}

TEST_P(PackedBufferTest, ByteSizeMatchesBitWidth) {
  const Scalar type = GetParam();
  PackedBuffer buf(64, type);
  EXPECT_EQ(buf.byte_size(), 64u * static_cast<unsigned>(bits_of(type)) / 8);
}

INSTANTIATE_TEST_SUITE_P(AllIntegerTypes, PackedBufferTest,
                         ::testing::Values(Scalar::u4, Scalar::s4, Scalar::u8,
                                           Scalar::s8, Scalar::s12,
                                           Scalar::u12, Scalar::s16,
                                           Scalar::u16),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Packed, NibbleHelpers) {
  const std::uint32_t n[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint32_t w = pack_nibbles8(n);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(nibble_of(w, i), n[i]);
  const std::uint32_t b[4] = {0xaa, 0xbb, 0xcc, 0xdd};
  const std::uint32_t wb = pack_bytes4(b);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(byte_of(wb, i), b[i]);
}

TEST(Precision, RangesAndBits) {
  EXPECT_EQ(bits_of(Scalar::s12), 12);
  EXPECT_EQ(min_value(Scalar::s4), -8);
  EXPECT_EQ(max_value(Scalar::s4), 7);
  EXPECT_EQ(min_value(Scalar::u8), 0);
  EXPECT_EQ(max_value(Scalar::u8), 255);
  EXPECT_EQ(min_value(Scalar::s16), -32768);
  EXPECT_TRUE(is_native(precision::L8R8));
  EXPECT_TRUE(is_native(precision::L4R4));
  EXPECT_FALSE(is_native(precision::L16R8));
  EXPECT_EQ(to_string(precision::L12R4), "L12-R4");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsProduceDistinctStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundsRespected) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Matrix, IndexingAndEquality) {
  Matrix<int> m(3, 4, 0);
  m(2, 3) = 7;
  EXPECT_EQ(m.row(2)[3], 7);
  Matrix<int> n = m;
  EXPECT_EQ(m, n);
  n(0, 0) = 1;
  EXPECT_FALSE(m == n);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100, [&](std::size_t i) {
        if (i == 57) throw Error("boom");
      }),
      Error);
}

TEST(ThreadPool, SubmitReturnsFutureValue) {
  auto f = ThreadPool::instance().submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  auto f = ThreadPool::instance().submit(
      []() -> int { throw Error("async boom"); });
  EXPECT_THROW(f.get(), Error);
}

// Regression for the reentrancy guard: a kernel-style parallel_for issued
// from inside a submitted task must complete (inline) even when every pool
// worker is occupied by such a task — the scheduler-inside-kernel scenario
// that would deadlock a naive help-less pool.
TEST(ThreadPool, NestedParallelForInsideSubmittedTasksCompletes) {
  auto& pool = ThreadPool::instance();
  const std::size_t tasks = 2 * pool.worker_count() + 1;
  std::vector<std::future<std::size_t>> futures;
  futures.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    futures.push_back(pool.submit([] {
      EXPECT_TRUE(ThreadPool::on_worker_thread());
      std::atomic<std::size_t> sum{0};
      parallel_for(100, [&](std::size_t i) {
        EXPECT_TRUE(ThreadPool::on_worker_thread());
        sum.fetch_add(i, std::memory_order_relaxed);
      });
      return sum.load();
    }));
  }
  for (auto& f : futures) EXPECT_EQ(f.get(), 4950u);
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ThreadPool, TrivialRangeOnNonPoolThreadDoesNotClaimWorkerStatus) {
  // A top-level parallel_for(1, ...) runs inline, but the calling thread is
  // not pool-owned: on_worker_thread() must stay false and an inner
  // parallel_for must still cover its whole range (and may fan out).
  std::vector<int> hits(256, 0);
  parallel_for(1, [&](std::size_t) {
    EXPECT_FALSE(ThreadPool::on_worker_thread());
    parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, NestedParallelForFromTopLevelBodyCompletes) {
  std::vector<int> hits(64 * 32, 0);
  parallel_for(64, [&](std::size_t outer) {
    parallel_for(32, [&](std::size_t inner) {
      hits[outer * 32 + inner] += 1;
    });
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, NestedParallelForStillPropagatesExceptions) {
  auto f = ThreadPool::instance().submit([] {
    parallel_for(10, [](std::size_t i) {
      if (i == 3) throw Error("nested boom");
    });
  });
  EXPECT_THROW(f.get(), Error);
}

TEST(Check, ThrowsWithContext) {
  try {
    MAGICUBE_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace magicube
