// Tests for the synthetic DLMC collection generator.

#include <gtest/gtest.h>

#include <set>

#include "dlmc/dlmc.hpp"

namespace magicube::dlmc {
namespace {

TEST(Dlmc, CollectionHas256MatricesPerSparsity) {
  for (double s : sparsity_levels()) {
    const auto specs = collection(s);
    EXPECT_EQ(specs.size(), 256u);
    for (const auto& spec : specs) {
      EXPECT_DOUBLE_EQ(spec.sparsity, s);
      EXPECT_GT(spec.rows, 0u);
      EXPECT_GT(spec.cols, 0u);
    }
  }
}

TEST(Dlmc, SixSparsityLevelsTotal1536) {
  std::size_t total = 0;
  for (double s : sparsity_levels()) total += collection(s).size();
  EXPECT_EQ(total, 1536u);
}

TEST(Dlmc, NamesAreUniqueWithinSparsity) {
  const auto specs = collection(0.9);
  std::set<std::string> names;
  for (const auto& spec : specs) names.insert(spec.name);
  EXPECT_EQ(names.size(), specs.size());
}

TEST(Dlmc, DeterministicAcrossCalls) {
  const auto a = collection(0.7);
  const auto b = collection(0.7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

class DlmcDilationTest : public ::testing::TestWithParam<int> {};

TEST_P(DlmcDilationTest, DilationMultipliesRows) {
  const int v = GetParam();
  const auto specs = collection(0.8, 8);
  for (const auto& spec : specs) {
    const auto pattern = instantiate(spec, v);
    EXPECT_EQ(pattern.rows, spec.rows * static_cast<std::size_t>(v));
    EXPECT_EQ(pattern.cols, spec.cols);
    EXPECT_EQ(pattern.vector_length, v);
    EXPECT_NEAR(pattern.sparsity(), spec.sparsity,
                1.0 / static_cast<double>(spec.cols) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(VectorLengths, DlmcDilationTest,
                         ::testing::Values(2, 4, 8),
                         [](const auto& info) {
                           return "V" + std::to_string(info.param);
                         });

TEST(Dlmc, InstantiationIsDeterministic) {
  const auto spec = collection(0.9, 4)[3];
  const auto p1 = instantiate(spec, 8);
  const auto p2 = instantiate(spec, 8);
  EXPECT_EQ(p1.col_idx, p2.col_idx);
  EXPECT_EQ(p1.row_ptr, p2.row_ptr);
}

TEST(Dlmc, MixesUniformAndBandedKinds) {
  const auto specs = collection(0.9);
  std::size_t uniform = 0, banded = 0;
  for (const auto& spec : specs) {
    (spec.kind == PatternKind::uniform ? uniform : banded) += 1;
  }
  EXPECT_GT(uniform, 64u);
  EXPECT_GT(banded, 64u);
}

TEST(Dlmc, AblationMatrixMatchesPaper) {
  const auto spec = ablation_matrix(0.7);
  EXPECT_EQ(spec.rows, 256u);
  EXPECT_EQ(spec.cols, 2304u);
}

}  // namespace
}  // namespace magicube::dlmc
