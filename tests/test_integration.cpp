// Cross-module integration and randomized property tests: full pipelines
// (SDDMM -> softmax -> SpMM), format interoperability, and seed-swept
// invariants that individual module tests cannot cover.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dense_gemm.hpp"
#include "core/api.hpp"
#include "dlmc/dlmc.hpp"
#include "transformer/attention.hpp"
#include "transformer/ops.hpp"

namespace magicube {
namespace {

// ---- Randomized sweep: every precision on random shapes/seeds -----------

struct SweepCase {
  std::uint64_t seed;
};

class RandomSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RandomSweepTest, SpmmAllPrecisionsExactOnRandomConfig) {
  Rng rng(GetParam().seed);
  const int v = 1 << rng.next_in(1, 3);  // 2, 4, 8
  const std::size_t scalar_rows = static_cast<std::size_t>(rng.next_in(2, 6));
  const std::size_t rows = scalar_rows * static_cast<std::size_t>(v);
  const std::size_t k = static_cast<std::size_t>(rng.next_in(3, 12)) * 8;
  const std::size_t n = 64 * static_cast<std::size_t>(rng.next_in(1, 3));
  const double sparsity = rng.next_double() * 0.95;
  const auto pattern = sparse::make_uniform_pattern(rows, k, v, sparsity, rng);

  for (const auto prec :
       {precision::L16R16, precision::L16R8, precision::L8R8,
        precision::L16R4, precision::L12R4, precision::L8R4,
        precision::L4R4}) {
    core::SpmmConfig cfg;
    cfg.precision = prec;
    const auto a_vals = core::random_values(rows, k, prec.lhs, rng);
    const auto b_vals = core::random_values(k, n, prec.rhs, rng);
    const auto a = core::prepare_spmm_lhs(pattern, a_vals, prec,
                                          core::needs_shuffle(cfg));
    const auto b = core::prepare_spmm_rhs(b_vals, prec);
    const auto result = core::spmm(a, b, cfg);
    ASSERT_EQ(result.c, core::reference_spmm(pattern, a_vals, b_vals))
        << to_string(prec) << " v=" << v << " k=" << k << " s=" << sparsity;
    const auto est = core::spmm_estimate(pattern, n, cfg);
    ASSERT_EQ(est.counters, result.run.counters) << to_string(prec);
  }
}

TEST_P(RandomSweepTest, SddmmAllPrecisionsExactOnRandomConfig) {
  Rng rng(GetParam().seed ^ 0xdddd);
  const int v = 1 << rng.next_in(1, 3);
  const std::size_t rows =
      static_cast<std::size_t>(rng.next_in(2, 5)) * static_cast<std::size_t>(v);
  const std::size_t n = static_cast<std::size_t>(rng.next_in(4, 10)) * 8;
  const std::size_t k = 64 * static_cast<std::size_t>(rng.next_in(1, 3));
  const double sparsity = rng.next_double() * 0.9;
  const auto pattern = sparse::make_uniform_pattern(rows, n, v, sparsity, rng);

  for (const auto prec :
       {precision::L16R16, precision::L8R8, precision::L4R4}) {
    const int chunk = bits_of(prec.rhs) <= 4 ? 4 : 8;
    const auto a_vals = core::random_values(rows, k, prec.lhs, rng);
    const auto b_vals = core::random_values(k, n, prec.rhs, rng);
    const auto a = core::prepare_dense(a_vals, prec.lhs, true, chunk);
    const auto b = core::prepare_dense(b_vals, prec.rhs, false, chunk);
    core::SddmmConfig cfg;
    cfg.precision = prec;
    const auto result = core::sddmm(a, b, pattern, cfg);
    const auto expect = core::reference_sddmm(pattern, a_vals, b_vals);
    ASSERT_EQ(result.c.values, expect.values) << to_string(prec);
    const auto est = core::sddmm_estimate(pattern, k, cfg);
    ASSERT_EQ(est.counters, result.run.counters) << to_string(prec);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomSweepTest,
    ::testing::Values(SweepCase{101}, SweepCase{202}, SweepCase{303},
                      SweepCase{404}, SweepCase{505}, SweepCase{606},
                      SweepCase{707}, SweepCase{808}),
    [](const auto& info) { return "seed" + std::to_string(info.param.seed); });

// ---- Full attention pipeline vs. composing the kernels by hand ----------

TEST(Pipeline, SddmmSoftmaxSpmmComposesLikeAttention) {
  // Run Fig. 16's schedule manually with core kernels and check it matches
  // the packaged magicube_8b_8b attention scheme.
  Rng rng(42);
  const std::size_t l = 64, dk = 64;
  const auto mask = sparse::make_attention_mask_pattern(l, 8, 0.8, rng);
  Matrix<float> q(l, dk), k(l, dk), v(l, dk);
  fill_normal(q, rng, 0.4);
  fill_normal(k, rng, 0.4);
  fill_normal(v, rng, 0.4);
  const auto packaged = transformer::attention_forward(
      q, k, v, mask, transformer::AttentionScheme::magicube_8b_8b);
  // The packaged path is itself validated against fp32 in test_transformer;
  // here we check the output is finite, mask-consistent and deterministic.
  const auto again = transformer::attention_forward(
      q, k, v, mask, transformer::AttentionScheme::magicube_8b_8b);
  ASSERT_EQ(packaged, again);
  for (std::size_t i = 0; i < packaged.size(); ++i) {
    ASSERT_TRUE(std::isfinite(packaged.data()[i]));
  }
}

// ---- Format interoperability ---------------------------------------------

TEST(Formats, AllFormatsAgreeOnTheSameMatrix) {
  Rng rng(7);
  const auto pattern = sparse::make_uniform_pattern(48, 80, 8, 0.65, rng);
  Matrix<std::int32_t> dense(48, 80, 0);
  const auto mask = sparse::pattern_to_dense_mask(pattern);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (mask.data()[i]) {
      dense.data()[i] = static_cast<std::int32_t>(rng.next_in(-128, 127));
    }
  }
  const auto bcrs = sparse::build_bcrs(pattern, dense);
  const auto sr = sparse::build_sr_bcrs(pattern, dense, Scalar::s8, 16);
  const auto sr_shuf = sparse::shuffle_columns(sr);
  const auto ell = sparse::build_blocked_ell(pattern, dense, 8);
  const auto crs = sparse::build_crs_from_pattern(pattern, dense);
  EXPECT_EQ(bcrs.to_dense(), dense);
  EXPECT_EQ(sr.to_dense(), dense);
  EXPECT_EQ(sr_shuf.to_dense(), dense);
  EXPECT_EQ(ell.to_dense(), dense);
  EXPECT_EQ(crs.to_dense(), dense);
}

TEST(Formats, DlmcMatrixThroughWholeStack) {
  // A real collection entry flows through prepare -> kernel -> reference.
  const auto spec = dlmc::collection(0.9, 8)[5];
  const auto pattern = dlmc::instantiate(spec, 4);
  Rng rng(spec.seed);
  core::SpmmConfig cfg;
  cfg.precision = precision::L8R8;
  // Keep the functional run small: slice the first 8 vector rows.
  sparse::BlockPattern small;
  small.rows = 32;
  small.cols = pattern.cols;
  small.vector_length = 4;
  small.row_ptr.assign(pattern.row_ptr.begin(), pattern.row_ptr.begin() + 9);
  small.col_idx.assign(pattern.col_idx.begin(),
                       pattern.col_idx.begin() + small.row_ptr.back());
  small.validate();
  const std::size_t n = 64;
  const auto a_vals =
      core::random_values(small.rows, small.cols, Scalar::s8, rng);
  const auto b_vals = core::random_values(small.cols, n, Scalar::s8, rng);
  const auto a =
      core::prepare_spmm_lhs(small, a_vals, cfg.precision, false);
  const auto b = core::prepare_spmm_rhs(b_vals, cfg.precision);
  const auto result = core::spmm(a, b, cfg);
  EXPECT_EQ(result.c, core::reference_spmm(small, a_vals, b_vals));
}

// ---- Cost-model sanity across modules ------------------------------------

TEST(CostSanity, SparserIsNeverSlowerForMagicube) {
  Rng rng(3);
  core::SpmmConfig cfg;
  cfg.precision = precision::L8R8;
  double prev = 1e9;
  for (double s : {0.5, 0.7, 0.9, 0.98}) {
    Rng prng(11);
    const auto pattern = sparse::make_uniform_pattern(512, 1024, 8, s, prng);
    const double t = simt::estimate_seconds(
        simt::a100(), core::spmm_estimate(pattern, 256, cfg));
    EXPECT_LT(t, prev) << "sparsity " << s;
    prev = t;
  }
}

TEST(CostSanity, UsefulThroughputBelowDatapathPeak) {
  // No configuration may exceed the calibrated peak of its datapath.
  Rng rng(4);
  for (double s : {0.5, 0.9}) {
    Rng prng(13);
    const auto pattern = sparse::make_uniform_pattern(2048, 2304, 8, s, prng);
    for (const auto prec : {precision::L8R8, precision::L4R4}) {
      core::SpmmConfig cfg;
      cfg.precision = prec;
      const double tops =
          static_cast<double>(core::spmm_useful_ops(pattern, 512)) /
          simt::estimate_seconds(simt::a100(),
                                 core::spmm_estimate(pattern, 512, cfg)) /
          1e12;
      const double peak = bits_of(prec.rhs) <= 4 ? 1248.0 : 624.0;
      EXPECT_LT(tops, peak);
      EXPECT_GT(tops, 0.5);  // and does real work
    }
  }
}

TEST(CostSanity, EmulatedPairsCostMoreThanNativeSameData) {
  Rng rng(5);
  const auto pattern = sparse::make_uniform_pattern(512, 512, 8, 0.8, rng);
  core::SpmmConfig native{precision::L8R8, core::SpmmVariant::full};
  core::SpmmConfig emulated{precision::L16R8, core::SpmmVariant::full};
  const double t_native = simt::estimate_seconds(
      simt::a100(), core::spmm_estimate(pattern, 256, native));
  const double t_emulated = simt::estimate_seconds(
      simt::a100(), core::spmm_estimate(pattern, 256, emulated));
  EXPECT_GT(t_emulated, t_native);
  EXPECT_LT(t_emulated, 2.5 * t_native);  // emulation is cheap (paper §V-A)
}

}  // namespace
}  // namespace magicube
