// Serving-engine suite (`serve` CTest label, also the TSan CI gate):
// operand-cache accounting and LRU eviction, batched execution bit-exact
// against sequential core:: calls across precision pairs, batch grouping,
// failure propagation, and a multi-threaded submit stress test.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/reference.hpp"
#include "serve/serve.hpp"

namespace magicube::serve {
namespace {

constexpr std::size_t kM = 64, kK = 64, kN = 64;

struct Problem {
  std::shared_ptr<const sparse::BlockPattern> pattern;
  std::shared_ptr<const Matrix<std::int32_t>> lhs;
  std::shared_ptr<const Matrix<std::int32_t>> rhs;
};

Problem make_problem(PrecisionPair prec, std::uint64_t seed,
                     double sparsity = 0.7, int v = 8) {
  Rng rng(seed);
  Problem p;
  p.pattern = std::make_shared<const sparse::BlockPattern>(
      sparse::make_uniform_pattern(kM, kK, v, sparsity, rng));
  p.lhs = std::make_shared<const Matrix<std::int32_t>>(
      core::random_values(kM, kK, prec.lhs, rng));
  p.rhs = std::make_shared<const Matrix<std::int32_t>>(
      core::random_values(kK, kN, prec.rhs, rng));
  return p;
}

Request spmm_request(const Problem& p, PrecisionPair prec) {
  Request req;
  req.op = OpKind::spmm;
  req.precision = prec;
  req.pattern = p.pattern;
  req.lhs_values = p.lhs;
  req.rhs_values = p.rhs;
  return req;
}

Request sddmm_request(const Problem& p, PrecisionPair prec) {
  // Reinterpret the problem as SDDMM: pattern samples the M x N output,
  // lhs is dense M x K A, rhs is K x N B (kK == kN keeps shapes valid).
  Request req;
  req.op = OpKind::sddmm;
  req.precision = prec;
  req.pattern = p.pattern;
  req.lhs_values = p.lhs;
  req.rhs_values = p.rhs;
  req.lhs_id = 0;  // anonymous activations
  return req;
}

// ---- OperandCache ---------------------------------------------------------

TEST(OperandCache, HitMissAccounting) {
  OperandCache cache(64ull << 20);
  const Problem p = make_problem(precision::L8R8, 1);

  bool hit = true;
  const auto first = cache.get_or_prepare_spmm_lhs(
      *p.pattern, *p.lhs, precision::L8R8, /*shuffle=*/false, 0, &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get_or_prepare_spmm_lhs(
      *p.pattern, *p.lhs, precision::L8R8, /*shuffle=*/false, 0, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // same cached preparation aliased

  CacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.bytes_cached(), first->footprint_bytes());
}

TEST(OperandCache, DistinctPrecisionOrShuffleAreDistinctEntries) {
  OperandCache cache(64ull << 20);
  const Problem p = make_problem(precision::L8R8, 2);

  // The same s8 weight served under two pairs: each (precision, shuffle)
  // combination has a different prepared layout, so each is its own entry.
  cache.get_or_prepare_spmm_lhs(*p.pattern, *p.lhs, precision::L8R8, false);
  cache.get_or_prepare_spmm_lhs(*p.pattern, *p.lhs, precision::L8R4, true);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(OperandCache, LruEvictionAtCapacity) {
  const Problem p = make_problem(precision::L8R8, 3);
  bool hit = false;
  // Size the capacity to hold exactly two prepared operands.
  OperandCache probe(1ull << 30);
  const auto one = probe.get_or_prepare_spmm_lhs(*p.pattern, *p.lhs,
                                                 precision::L8R8, false);
  const std::size_t entry_bytes = one->footprint_bytes();

  OperandCache cache(2 * entry_bytes + entry_bytes / 2);
  const Problem a = make_problem(precision::L8R8, 10);
  const Problem b = make_problem(precision::L8R8, 11);
  const Problem c = make_problem(precision::L8R8, 12);

  cache.get_or_prepare_spmm_lhs(*a.pattern, *a.lhs, precision::L8R8, false);
  cache.get_or_prepare_spmm_lhs(*b.pattern, *b.lhs, precision::L8R8, false);
  EXPECT_EQ(cache.entry_count(), 2u);

  // Touch A so B becomes least-recently-used, then insert C.
  cache.get_or_prepare_spmm_lhs(*a.pattern, *a.lhs, precision::L8R8, false,
                                0, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_prepare_spmm_lhs(*c.pattern, *c.lhs, precision::L8R8, false);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.entry_count(), 2u);

  // A survived (hit), B was evicted (miss), C is resident (hit).
  cache.get_or_prepare_spmm_lhs(*a.pattern, *a.lhs, precision::L8R8, false,
                                0, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_prepare_spmm_lhs(*c.pattern, *c.lhs, precision::L8R8, false,
                                0, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_prepare_spmm_lhs(*b.pattern, *b.lhs, precision::L8R8, false,
                                0, &hit);
  EXPECT_FALSE(hit);
}

TEST(OperandCache, StaleContentUnderUnchangedKeyThrows) {
  // The cache keys weights by pattern fingerprint (or client id): serving
  // different values under an unchanged key is a contract violation the
  // content probe must turn into a loud failure, not silent stale results.
  OperandCache cache(64ull << 20);
  const Problem p = make_problem(precision::L8R8, 6);
  cache.get_or_prepare_spmm_lhs(*p.pattern, *p.lhs, precision::L8R8, false);

  Matrix<std::int32_t> changed = *p.lhs;
  changed(0, 0) = changed(0, 0) == 0 ? 1 : 0;
  EXPECT_THROW(cache.get_or_prepare_spmm_lhs(*p.pattern, changed,
                                             precision::L8R8, false),
               Error);

  // Regression for probe sampling aliasing with the row length: a change
  // touching every column EXCEPT column 0 must also trip the guard (an
  // evenly strided sample over this power-of-two shape would only ever
  // read column 0 and miss it).
  Matrix<std::int32_t> off_column = *p.lhs;
  for (std::size_t r = 0; r < off_column.rows(); ++r) {
    for (std::size_t c = 1; c < off_column.cols(); ++c) {
      off_column(r, c) = off_column(r, c) == 0 ? 1 : 0;
    }
  }
  EXPECT_THROW(cache.get_or_prepare_spmm_lhs(*p.pattern, off_column,
                                             precision::L8R8, false),
               Error);

  Rng rng(99);
  const auto rhs2 = core::random_values(kK, kN, Scalar::s8, rng);
  cache.get_or_prepare_dense(OperandKind::spmm_rhs, *p.rhs, precision::L8R8,
                             /*id=*/5);
  EXPECT_THROW(cache.get_or_prepare_dense(OperandKind::spmm_rhs, rhs2,
                                          precision::L8R8, /*id=*/5),
               Error);
}

TEST(OperandCache, OversizedEntryServedUncached) {
  const Problem p = make_problem(precision::L8R8, 4);
  OperandCache cache(16);  // smaller than any prepared operand
  const auto handle =
      cache.get_or_prepare_spmm_lhs(*p.pattern, *p.lhs, precision::L8R8,
                                    false);
  ASSERT_TRUE(handle);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_cached(), 0u);
}

TEST(OperandCache, AnonymousDenseOperandsBypassCache) {
  const Problem p = make_problem(precision::L8R8, 5);
  OperandCache cache(64ull << 20);
  const auto one = cache.get_or_prepare_dense(OperandKind::spmm_rhs, *p.rhs,
                                              precision::L8R8, /*id=*/0);
  const auto two = cache.get_or_prepare_dense(OperandKind::spmm_rhs, *p.rhs,
                                              precision::L8R8, /*id=*/0);
  EXPECT_NE(one.get(), two.get());
  EXPECT_EQ(cache.stats().lookups, 0u);
  EXPECT_EQ(cache.entry_count(), 0u);

  bool hit = true;
  const auto named = cache.get_or_prepare_dense(OperandKind::spmm_rhs,
                                                *p.rhs, precision::L8R8,
                                                /*id=*/77, &hit);
  EXPECT_FALSE(hit);
  const auto again = cache.get_or_prepare_dense(OperandKind::spmm_rhs,
                                                *p.rhs, precision::L8R8,
                                                /*id=*/77, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(named.get(), again.get());
}

// Regression for the probe-identity collision: the old attention path
// coerced a zero content probe to 1 before keying the cache, so an operand
// that genuinely hashed to 0 shared an identity with any operand hashing to
// 1 — a silent wrong-operand hit. probe_identity is now a bijection with no
// special-cased value: probe 0 is an ordinary cached identity (never the
// anonymous-bypass sentinel) and distinct probes can never alias.
TEST(OperandCache, ZeroProbeIsAnOrdinaryCachedIdentity) {
  const Problem p = make_problem(precision::L8R8, 21);
  const Problem q = make_problem(precision::L8R8, 22);
  OperandCache cache(64ull << 20);

  // Force probe 0 through the explicit-probe seam: it must cache (not fall
  // into the id=0 anonymous bypass)...
  bool hit = true;
  const auto zero = cache.get_or_prepare_probed(
      OperandKind::spmm_rhs, *p.rhs, precision::L8R8, /*probe=*/0, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.entry_count(), 1u);

  // ...and stay distinct from the probe the old coercion folded it onto.
  const auto one = cache.get_or_prepare_probed(
      OperandKind::spmm_rhs, *q.rhs, precision::L8R8, /*probe=*/1, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_NE(zero.get(), one.get());

  // Re-requesting probe 0 with the same values is a genuine hit on the
  // same preparation.
  const auto again = cache.get_or_prepare_probed(
      OperandKind::spmm_rhs, *p.rhs, precision::L8R8, /*probe=*/0, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(again.get(), zero.get());
  EXPECT_EQ(cache.entry_count(), 2u);

  // The sampling overload round-trips too: same values, same identity.
  bool first_hit = true, second_hit = false;
  const auto sampled = cache.get_or_prepare_probed(
      OperandKind::sddmm_lhs, *p.lhs, precision::L8R8, &first_hit);
  const auto resampled = cache.get_or_prepare_probed(
      OperandKind::sddmm_lhs, *p.lhs, precision::L8R8, &second_hit);
  EXPECT_FALSE(first_hit);
  EXPECT_TRUE(second_hit);
  EXPECT_EQ(sampled.get(), resampled.get());
}

TEST(OperandCache, PinnedEntriesSurviveEvictionPressure) {
  // Pin semantics behind the sharded-request fix: a pinned entry is
  // skipped by LRU eviction (the insert may transiently exceed capacity),
  // and unpinning restores normal eviction order.
  const Problem p = make_problem(precision::L8R8, 7);
  OperandCache probe(1ull << 30);
  const auto one = probe.get_or_prepare_spmm_lhs(*p.pattern, *p.lhs,
                                                 precision::L8R8, false);
  const std::size_t entry_bytes = one->footprint_bytes();

  OperandCache cache(2 * entry_bytes + entry_bytes / 2);
  const Problem a = make_problem(precision::L8R8, 70);
  const Problem b = make_problem(precision::L8R8, 71);
  const Problem c = make_problem(precision::L8R8, 72);
  cache.get_or_prepare_spmm_lhs(*a.pattern, *a.lhs, precision::L8R8, false);
  cache.get_or_prepare_spmm_lhs(*b.pattern, *b.lhs, precision::L8R8, false);

  // Pin A (the LRU victim-to-be) and insert C: eviction must skip A and
  // take B instead.
  const OperandKey a_key =
      spmm_lhs_key(a.pattern->fingerprint(), precision::L8R8, false);
  {
    OperandCache::PinScope pins(cache);
    ASSERT_TRUE(pins.pin(a_key));
    EXPECT_EQ(cache.pinned_count(), 1u);
    cache.get_or_prepare_spmm_lhs(*c.pattern, *c.lhs, precision::L8R8,
                                  false);
    bool hit = false;
    cache.get_or_prepare_spmm_lhs(*a.pattern, *a.lhs, precision::L8R8,
                                  false, 0, &hit);
    EXPECT_TRUE(hit) << "pinned entry was evicted";
    cache.get_or_prepare_spmm_lhs(*b.pattern, *b.lhs, precision::L8R8,
                                  false, 0, &hit);
    EXPECT_FALSE(hit) << "unpinned LRU entry should have been the victim";
    EXPECT_GT(cache.stats().pin_skips, 0u);
  }
  // Scope released: A is evictable again.
  EXPECT_EQ(cache.pinned_count(), 0u);
  EXPECT_FALSE(cache.pin(spmm_lhs_key(12345, precision::L8R8, false)))
      << "pinning an absent key must fail, not insert";
}

TEST(OperandCache, PinnedOverflowDrainsAfterRelease) {
  // When everything resident is pinned, inserts overshoot the budget
  // rather than fail; the overshoot drains once pins release.
  const Problem p = make_problem(precision::L8R8, 8);
  OperandCache probe(1ull << 30);
  const std::size_t entry_bytes =
      probe.get_or_prepare_spmm_lhs(*p.pattern, *p.lhs, precision::L8R8,
                                    false)
          ->footprint_bytes();
  OperandCache cache(entry_bytes + entry_bytes / 2);

  const Problem a = make_problem(precision::L8R8, 80);
  const Problem b = make_problem(precision::L8R8, 81);
  cache.get_or_prepare_spmm_lhs(*a.pattern, *a.lhs, precision::L8R8, false);
  OperandCache::PinScope pins(cache);
  ASSERT_TRUE(pins.pin(
      spmm_lhs_key(a.pattern->fingerprint(), precision::L8R8, false)));
  cache.get_or_prepare_spmm_lhs(*b.pattern, *b.lhs, precision::L8R8, false);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_GT(cache.bytes_cached(), cache.capacity_bytes());

  pins.release();
  // Next insert evicts back under budget (A first: it is now LRU).
  const Problem c = make_problem(precision::L8R8, 82);
  cache.get_or_prepare_spmm_lhs(*c.pattern, *c.lhs, precision::L8R8, false);
  EXPECT_LE(cache.bytes_cached(), cache.capacity_bytes());
}

TEST(ServeRequest, SplitCachesAndPerDeviceCosting) {
  // The pool's serve body: operands land in the device cache, plans in the
  // shared plan cache, and modeled_seconds follows the device spec.
  const Problem p = make_problem(precision::L8R8, 9);
  OperandCache operands(64ull << 20);
  OperandCache plans(64ull << 20);

  const Response r1 =
      serve_request(spmm_request(p, precision::L8R8), operands, plans,
                    simt::a100());
  EXPECT_EQ(operands.entry_count(), 1u);  // the prepared LHS
  EXPECT_EQ(plans.entry_count(), 1u);     // the execution plan
  EXPECT_FALSE(r1.plan_cache_hit);

  // A half-clock device models a strictly slower run (every cycle-derived
  // term doubles; halving sm_count alone would not be strict — this
  // problem's 8-block grid underfills both SM counts).
  simt::DeviceSpec slow = simt::a100();
  slow.clock_ghz /= 2;
  const Response r2 =
      serve_request(spmm_request(p, precision::L8R8), operands, plans, slow);
  EXPECT_TRUE(r2.plan_cache_hit);
  EXPECT_TRUE(r2.lhs_cache_hit);
  EXPECT_GT(r2.modeled_seconds, r1.modeled_seconds);
  EXPECT_EQ(r1.spmm->c, r2.spmm->c);
}

// ---- BatchScheduler correctness ------------------------------------------

class ServePrecisionTest : public ::testing::TestWithParam<PrecisionPair> {};

TEST_P(ServePrecisionTest, BatchedSpmmBitExactVsSequential) {
  const PrecisionPair prec = GetParam();
  const Problem p = make_problem(prec, 21);

  core::SpmmConfig cfg;
  cfg.precision = prec;
  const auto lhs = core::prepare_spmm_lhs(*p.pattern, *p.lhs, prec,
                                          core::needs_shuffle(cfg));
  const auto rhs = core::prepare_spmm_rhs(*p.rhs, prec);
  const core::SpmmResult expect = core::spmm(lhs, rhs, cfg);

  BatchScheduler engine;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(engine.submit(spmm_request(p, prec)));
  }
  for (auto& f : futures) {
    const Response resp = f.get();
    ASSERT_TRUE(resp.spmm.has_value());
    EXPECT_EQ(resp.spmm->c, expect.c);
    EXPECT_EQ(resp.spmm->run.counters, expect.run.counters);
    EXPECT_GT(resp.modeled_seconds, 0.0);
  }
  // One preparation and one execution plan amortized over the burst: each
  // request looks up the LHS and the plan (12 lookups), with exactly one
  // winning insertion per kind; concurrent batch members that miss before
  // the winner lands re-prepare and discard (counted race_discards).
  const CacheStats cs = engine.cache().stats();
  EXPECT_EQ(cs.lookups, 12u);
  EXPECT_EQ(cs.hits + cs.misses, cs.lookups);
  EXPECT_EQ(cs.insertions, 2u);
  EXPECT_EQ(cs.misses, 2u + cs.race_discards);
  EXPECT_EQ(engine.cache().entry_count(), 2u);
}

TEST_P(ServePrecisionTest, BatchedSddmmBitExactVsSequential) {
  const PrecisionPair prec = GetParam();
  const Problem p = make_problem(prec, 22);

  core::SddmmConfig cfg;
  cfg.precision = prec;
  const int chunk = core::rhs_chunk_bits(prec);
  const auto a = core::prepare_dense(*p.lhs, prec.lhs, true, chunk);
  const auto b = core::prepare_dense(*p.rhs, prec.rhs, false, chunk);
  const core::SddmmResult expect = core::sddmm(a, b, *p.pattern, cfg);

  BatchScheduler engine;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(engine.submit(sddmm_request(p, prec)));
  }
  for (auto& f : futures) {
    const Response resp = f.get();
    ASSERT_TRUE(resp.sddmm.has_value());
    EXPECT_EQ(resp.sddmm->c.values, expect.c.values);
    EXPECT_EQ(resp.sddmm->run.counters, expect.run.counters);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionPairs, ServePrecisionTest,
    ::testing::Values(precision::L8R8, precision::L16R8, precision::L4R4,
                      precision::L16R16),
    [](const auto& info) {
      std::string s = to_string(info.param);
      for (auto& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s;
    });

TEST(BatchScheduler, CompatibleBurstSharesOneBatch) {
  BatchSchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.linger = std::chrono::milliseconds(1000);  // dispatch on fill, not time
  BatchScheduler engine(cfg);

  const Problem p = make_problem(precision::L8R8, 30);
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < cfg.max_batch; ++i) {
    futures.push_back(engine.submit(spmm_request(p, precision::L8R8)));
  }
  std::vector<Response> responses;
  for (auto& f : futures) responses.push_back(f.get());

  // All four were compatible and submitted within the linger window, so
  // they must have been dispatched as one full batch.
  for (const auto& r : responses) {
    EXPECT_EQ(r.batch_id, responses.front().batch_id);
    EXPECT_EQ(r.batch_size, cfg.max_batch);
  }
  const SchedulerStats ss = engine.stats();
  EXPECT_EQ(ss.batches, 1u);
  EXPECT_EQ(ss.batched_requests, cfg.max_batch);
  EXPECT_EQ(ss.max_batch_size, cfg.max_batch);
}

TEST(BatchScheduler, IncompatibleRequestsSplitBatches) {
  BatchSchedulerConfig cfg;
  cfg.max_batch = 8;
  cfg.linger = std::chrono::milliseconds(1000);
  BatchScheduler engine(cfg);

  const Problem p8 = make_problem(precision::L8R8, 31);
  const Problem p4 = make_problem(precision::L4R4, 32);
  auto f1 = engine.submit(spmm_request(p8, precision::L8R8));
  auto f2 = engine.submit(spmm_request(p4, precision::L4R4));
  auto f3 = engine.submit(sddmm_request(p8, precision::L8R8));
  const Response r1 = f1.get(), r2 = f2.get(), r3 = f3.get();

  EXPECT_NE(r1.batch_id, r2.batch_id);
  EXPECT_NE(r1.batch_id, r3.batch_id);
  EXPECT_EQ(engine.stats().batches, 3u);
}

TEST(BatchScheduler, MalformedRequestFailsItsFutureOnly) {
  BatchScheduler engine;
  const Problem p = make_problem(precision::L8R8, 33);

  Request bad = spmm_request(p, precision::L8R8);
  bad.rhs_values = nullptr;
  auto bad_future = engine.submit(std::move(bad));
  auto good_future = engine.submit(spmm_request(p, precision::L8R8));

  EXPECT_THROW(bad_future.get(), Error);
  EXPECT_TRUE(good_future.get().spmm.has_value());
  engine.drain();  // stats are final only once the engine is idle
  const SchedulerStats ss = engine.stats();
  EXPECT_EQ(ss.completed, 2u);
  EXPECT_EQ(ss.failed, 1u);
}

TEST(BatchScheduler, DrainCompletesAllSubmitted) {
  BatchScheduler engine;
  const Problem p = make_problem(precision::L8R8, 34);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(engine.submit(spmm_request(p, precision::L8R8)));
  }
  engine.drain();
  const SchedulerStats ss = engine.stats();
  EXPECT_EQ(ss.submitted, 20u);
  EXPECT_EQ(ss.completed, 20u);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

// ---- Execution-plan caching ----------------------------------------------

TEST(OperandCache, PlanBytesChargedToLruBudget) {
  OperandCache cache(64ull << 20);
  const Problem p = make_problem(precision::L8R8, 40);
  core::SpmmConfig cfg;
  cfg.precision = precision::L8R8;
  const auto lhs = core::prepare_spmm_lhs_shared(*p.pattern, *p.lhs,
                                                 cfg.precision,
                                                 core::needs_shuffle(cfg));

  bool hit = true;
  const auto plan =
      cache.get_or_build_spmm_plan(p.pattern, lhs, kN, cfg, 0, &hit);
  ASSERT_TRUE(plan);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.bytes_cached(), plan->footprint_bytes());
  EXPECT_GT(plan->footprint_bytes(), sizeof(core::SpmmPlan));

  const auto again =
      cache.get_or_build_spmm_plan(p.pattern, lhs, kN, cfg, 0, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(plan.get(), again.get());  // one plan aliased

  // A different N is a different schedule: its own entry.
  cache.get_or_build_spmm_plan(p.pattern, lhs, 2 * kN, cfg, 0, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.entry_count(), 2u);

  // Eviction accounting covers plan bytes: a capacity of one plan evicts
  // the older plan when the next is inserted, returning the evicted bytes.
  OperandCache tiny(plan->footprint_bytes() + plan->footprint_bytes() / 4);
  tiny.get_or_build_spmm_plan(p.pattern, lhs, kN, cfg);
  const std::size_t first_bytes = tiny.bytes_cached();
  EXPECT_GT(first_bytes, 0u);
  tiny.get_or_build_spmm_plan(p.pattern, lhs, 2 * kN, cfg);
  EXPECT_EQ(tiny.stats().evictions, 1u);
  EXPECT_EQ(tiny.stats().bytes_evicted, first_bytes);
}

TEST(OperandCache, PlanSharedAcrossWeightVersionsOfOnePattern) {
  // Plans depend only on the structure: distinct weight matrices pruned to
  // one pattern (distinct lhs_id) replay one cached plan.
  BatchScheduler engine;
  const Problem p = make_problem(precision::L8R8, 41);
  Rng rng(42);
  const auto other_weights = std::make_shared<const Matrix<std::int32_t>>(
      core::random_values(kM, kK, Scalar::s8, rng));

  Request first = spmm_request(p, precision::L8R8);
  first.lhs_id = 1;
  Request second = spmm_request(p, precision::L8R8);
  second.lhs_values = other_weights;
  second.lhs_id = 2;

  const Response r1 = engine.submit(std::move(first)).get();
  EXPECT_FALSE(r1.plan_cache_hit);
  const Response r2 = engine.submit(std::move(second)).get();
  EXPECT_TRUE(r2.plan_cache_hit);
  EXPECT_FALSE(r2.lhs_cache_hit);  // different weights, fresh preparation

  // Both results bit-exact against sequential execution of their own
  // weights (the shared plan routes values, it does not alias them).
  core::SpmmConfig cfg;
  cfg.precision = precision::L8R8;
  const auto lhs2 = core::prepare_spmm_lhs(*p.pattern, *other_weights,
                                           cfg.precision,
                                           core::needs_shuffle(cfg));
  const auto rhs = core::prepare_spmm_rhs(*p.rhs, cfg.precision);
  EXPECT_EQ(r2.spmm->c, core::spmm(lhs2, rhs, cfg).c);
}

// ---- Bounded submit queue -------------------------------------------------

TEST(BatchScheduler, BoundedQueueCompletesEverything) {
  BatchSchedulerConfig cfg;
  cfg.max_queue_depth = 2;
  cfg.max_batch = 2;
  cfg.linger = std::chrono::microseconds(50);
  BatchScheduler engine(cfg);

  const Problem p = make_problem(precision::L8R8, 50);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 16; ++i) {
    // submit() may block on backpressure; it must never drop or deadlock.
    futures.push_back(engine.submit(spmm_request(p, precision::L8R8)));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().spmm.has_value());
  engine.drain();  // stats are final only once the engine is idle
  const SchedulerStats ss = engine.stats();
  EXPECT_EQ(ss.submitted, 16u);
  EXPECT_EQ(ss.completed, 16u);
}

TEST(BatchScheduler, BoundedQueueBackpressureAcrossThreads) {
  BatchSchedulerConfig cfg;
  cfg.max_queue_depth = 1;  // every concurrent submitter contends
  cfg.linger = std::chrono::microseconds(0);
  BatchScheduler engine(cfg);

  const Problem p = make_problem(precision::L8R8, 51);
  constexpr int kThreads = 4, kEach = 8;
  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        auto f = engine.submit(spmm_request(p, precision::L8R8));
        if (f.get().spmm.has_value()) ok[t] += 1;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(ok[t], kEach);
  engine.drain();  // stats are final only once the engine is idle
  EXPECT_EQ(engine.stats().completed,
            static_cast<std::uint64_t>(kThreads) * kEach);
}

// ---- Multi-threaded stress ------------------------------------------------

TEST(BatchScheduler, MultiThreadedSubmitStress) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 32;
  const PrecisionPair precisions[] = {precision::L8R8, precision::L16R8,
                                      precision::L4R4};

  // Precompute sequential golden results per (problem, precision, op).
  struct Expected {
    Matrix<std::int32_t> spmm_c;
    std::vector<std::int32_t> sddmm_values;
  };
  std::vector<Problem> problems;
  std::vector<std::vector<Expected>> expected(3);
  for (int pi = 0; pi < 3; ++pi) {
    const PrecisionPair prec = precisions[pi];
    problems.push_back(make_problem(prec, 100 + static_cast<unsigned>(pi)));
    const Problem& p = problems.back();

    core::SpmmConfig scfg;
    scfg.precision = prec;
    const auto lhs = core::prepare_spmm_lhs(*p.pattern, *p.lhs, prec,
                                            core::needs_shuffle(scfg));
    const auto rhs = core::prepare_spmm_rhs(*p.rhs, prec);
    Expected e;
    e.spmm_c = core::spmm(lhs, rhs, scfg).c;

    core::SddmmConfig dcfg;
    dcfg.precision = prec;
    const int chunk = core::rhs_chunk_bits(prec);
    const auto a = core::prepare_dense(*p.lhs, prec.lhs, true, chunk);
    const auto b = core::prepare_dense(*p.rhs, prec.rhs, false, chunk);
    e.sddmm_values = core::sddmm(a, b, *p.pattern, dcfg).c.values;
    expected[static_cast<std::size_t>(pi)].push_back(std::move(e));
  }

  BatchSchedulerConfig cfg;
  cfg.linger = std::chrono::microseconds(100);
  BatchScheduler engine(cfg);

  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::pair<int, std::future<Response>>> futures;
      for (int i = 0; i < kPerClient; ++i) {
        const int pi = (t + i) % 3;
        const Problem& p = problems[static_cast<std::size_t>(pi)];
        const bool do_spmm = (i % 2) == 0;
        futures.emplace_back(
            pi, engine.submit(do_spmm ? spmm_request(p, precisions[pi])
                                      : sddmm_request(p, precisions[pi])));
      }
      for (auto& [pi, f] : futures) {
        const Response resp = f.get();
        const Expected& e = expected[static_cast<std::size_t>(pi)][0];
        if (resp.op == OpKind::spmm) {
          if (!(resp.spmm->c == e.spmm_c)) mismatches[t] += 1;
        } else {
          if (resp.sddmm->c.values != e.sddmm_values) mismatches[t] += 1;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  for (int t = 0; t < kClients; ++t) EXPECT_EQ(mismatches[t], 0) << t;

  engine.drain();  // stats are final only once the engine is idle
  const SchedulerStats ss = engine.stats();
  EXPECT_EQ(ss.submitted,
            static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(ss.completed, ss.submitted);
  EXPECT_EQ(ss.failed, 0u);

  const CacheStats cs = engine.cache().stats();
  EXPECT_EQ(cs.hits + cs.misses, cs.lookups);
  // Every request looks up its LHS (SpMM only) and its execution plan; only
  // the first per (problem, precision, kind) misses — 3 SpMM LHS + 3 SpMM
  // plans + 3 SDDMM plans (modulo prepare races, which the cache
  // reconciles).
  EXPECT_GE(cs.hits, cs.lookups - 9 - cs.race_discards);
}

}  // namespace
}  // namespace magicube::serve
