// Tests for the comparison baselines: functional correctness and the
// qualitative cost relationships the paper's figures rest on.

#include <gtest/gtest.h>

#include "baselines/cusparse_like.hpp"
#include "baselines/dense_gemm.hpp"
#include "baselines/vector_sparse_like.hpp"
#include "core/api.hpp"

namespace magicube::baselines {
namespace {

TEST(DenseGemm, Fp16MatchesFloatReference) {
  Rng rng(1);
  Matrix<float> af(16, 24), bf(24, 8);
  fill_normal(af, rng, 1.0);
  fill_normal(bf, rng, 1.0);
  Matrix<half> a(16, 24), b(24, 8);
  for (std::size_t i = 0; i < af.size(); ++i) a.data()[i] = half(af.data()[i]);
  for (std::size_t i = 0; i < bf.size(); ++i) b.data()[i] = half(bf.data()[i]);
  const auto r = dense_gemm_fp16(a, b);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      float expect = 0.0f;
      for (std::size_t k = 0; k < 24; ++k) {
        expect += float(a(i, k)) * float(b(k, j));
      }
      EXPECT_NEAR(float(r.c(i, j)), expect, 0.05f);
    }
  }
}

TEST(DenseGemm, Int8MatchesReference) {
  Rng rng(2);
  auto a = core::random_values(16, 32, Scalar::s8, rng);
  auto b = core::random_values(32, 8, Scalar::s8, rng);
  const auto r = dense_gemm_int8(a, b);
  EXPECT_EQ(r.c, core::reference_gemm(a, b));
}

TEST(DenseGemm, Int8SlowerThanFp16OnDlmcShapes) {
  // The paper's observation (Fig. 14): cuBLAS int8 loses to fp16 at these
  // sizes because of the layout-transform passes.
  const simt::DeviceSpec& dev = simt::a100();
  for (std::size_t m : {std::size_t{256}, std::size_t{2048}}) {
    const double t16 =
        simt::estimate_seconds(dev, dense_gemm_fp16_estimate(m, 256, 2304));
    const double t8 =
        simt::estimate_seconds(dev, dense_gemm_int8_estimate(m, 256, 2304));
    EXPECT_GT(t8, t16) << "m=" << m;
  }
}

TEST(DenseGemm, Fp16ApproachesPeakOnLargeShapes) {
  const simt::DeviceSpec& dev = simt::a100();
  const std::size_t m = 8192, n = 8192, k = 8192;
  const auto run = dense_gemm_fp16_estimate(m, n, k);
  const double tflops = 2.0 * static_cast<double>(m) * n * k /
                        simt::estimate_seconds(dev, run) / 1e12;
  EXPECT_GT(tflops, 200.0);  // > 64% of the 312 TF peak
  EXPECT_LT(tflops, 312.5);
}

TEST(BellPattern, MatchesRequestedSparsity) {
  Rng rng(3);
  const auto bell = make_bell_pattern(256, 512, 0.9, rng);
  const double density = static_cast<double>(bell.stored_elems()) /
                         static_cast<double>(256 * 512);
  EXPECT_NEAR(density, 0.1, 0.02);
  bell.validate();
}

TEST(BellSpmm, FunctionalMatchesReference) {
  Rng rng(4);
  const auto bell = make_bell_pattern(64, 128, 0.8, rng);
  auto b = core::random_values(128, 64, Scalar::s8, rng);
  const auto r = bell_spmm(bell, b, /*int8_path=*/true);
  EXPECT_EQ(r.c, core::reference_gemm(bell.to_dense(), b));
}

TEST(BellSpmm, PerformanceIndependentOfVectorLength) {
  // Blocked-ELL always works on 8x8 blocks; its cost depends on density,
  // not on the 1-D vector length of the Magicube operand it is compared
  // against (the flat cuSPARSE curves across the V panels of Fig. 14).
  const auto r1 = bell_spmm_estimate(512, 256, 1024, 2048, true);
  const auto r2 = bell_spmm_estimate(512, 256, 1024, 2048, true);
  EXPECT_EQ(simt::estimate_seconds(simt::a100(), r1),
            simt::estimate_seconds(simt::a100(), r2));
}

TEST(VectorSparse, SpmmMatchesHalfReference) {
  Rng rng(5);
  const auto pattern = sparse::make_uniform_pattern(32, 64, 8, 0.6, rng);
  Matrix<float> dense(32, 64, 0.0f);
  const auto mask = sparse::pattern_to_dense_mask(pattern);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (mask.data()[i]) dense.data()[i] = rng.next_float() - 0.5f;
  }
  Matrix<half> ah(32, 64);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    ah.data()[i] = half(dense.data()[i]);
  }
  const auto a = sparse::build_bcrs(pattern, ah);
  Matrix<half> b(64, 64);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = half(rng.next_float() - 0.5f);
  }
  const auto r = vs_spmm(a, b);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      float expect = 0.0f;
      for (std::size_t k = 0; k < 64; ++k) {
        expect += float(ah(i, k)) * float(b(k, j));
      }
      EXPECT_NEAR(float(r.c(i, j)), expect, 0.05f);
    }
  }
}

TEST(VectorSparse, SddmmMatchesReference) {
  Rng rng(6);
  const auto pattern = sparse::make_uniform_pattern(24, 48, 8, 0.5, rng);
  Matrix<half> a(24, 32), b(32, 48);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = half(rng.next_float() - 0.5f);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = half(rng.next_float() - 0.5f);
  }
  const auto r = vs_sddmm(a, b, pattern);
  const std::size_t v = 8;
  for (std::size_t rr = 0; rr < pattern.vector_rows(); ++rr) {
    for (std::uint32_t i = pattern.row_ptr[rr]; i < pattern.row_ptr[rr + 1];
         ++i) {
      for (std::size_t rb = 0; rb < v; ++rb) {
        float expect = 0.0f;
        for (std::size_t k = 0; k < 32; ++k) {
          expect += float(a(rr * v + rb, k)) *
                    float(b(k, pattern.col_idx[i]));
        }
        EXPECT_NEAR(float(r.c.values[i * v + rb]), expect, 0.05f);
      }
    }
  }
}

TEST(Baselines, MagicubeInt8BeatsSparseBaselinesAtModerateSparsity) {
  // The core comparative claim of Fig. 14 at V=8, sparsity 0.9.
  Rng rng(7);
  const auto pattern = sparse::make_uniform_pattern(2048, 2304, 8, 0.9, rng);
  const simt::DeviceSpec& dev = simt::a100();
  core::SpmmConfig cfg{precision::L8R8, core::SpmmVariant::full};
  const double t_mc =
      simt::estimate_seconds(dev, core::spmm_estimate(pattern, 256, cfg));
  const double t_vs =
      simt::estimate_seconds(dev, vs_spmm_estimate(pattern, 256));
  const std::uint64_t bell_blocks = (2048 / 8) * ((2304 / 8) / 10);
  const double t_cusparse = simt::estimate_seconds(
      dev, bell_spmm_estimate(2048, 256, 2304, bell_blocks, true));
  const double t_dense = simt::estimate_seconds(
      dev, dense_gemm_fp16_estimate(2048, 256, 2304));
  EXPECT_LT(t_mc, t_vs);
  EXPECT_LT(t_mc, t_cusparse);
  EXPECT_LT(t_mc, t_dense);
}

}  // namespace
}  // namespace magicube::baselines
